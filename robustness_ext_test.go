package gpuhms

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// untrainedAdvisor skips the (slow, irrelevant here) overlap training: the
// robustness contracts under test hold for any coefficient vector.
func untrainedAdvisor() *Advisor {
	cfg := MustLookupArch("k80")
	return &Advisor{Cfg: cfg, Model: NewModel(cfg, FullModelOptions())}
}

// TestRankContextCancelsPromptly pins the acceptance criterion: canceling
// RankContext returns ctx.Err() within 100ms even while the profiling
// simulation of a large kernel is in flight. mriq at scale 2 simulates for
// ~200ms of wall clock here, so the 5ms cancel lands mid-run.
func TestRankContextCancelsPromptly(t *testing.T) {
	adv := untrainedAdvisor()
	spec, err := Kernel("mriq")
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.Trace(2)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	ranked, err := adv.RankContext(ctx, tr, sample, RankOptions{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ranked != nil {
		t.Error("canceled RankContext returned partial results without a budget error")
	}
	if elapsed > 5*time.Millisecond+100*time.Millisecond {
		t.Errorf("cancellation took %v, want < 100ms after cancel", elapsed)
	}

	// Pre-canceled contexts fail before any work happens.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	start = time.Now()
	if _, err := adv.RankContext(done, tr, sample, RankOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: got %v", err)
	}
	if e := time.Since(start); e > 100*time.Millisecond {
		t.Errorf("pre-canceled RankContext took %v", e)
	}
}

// TestRankTopKAgreesWithFullRank pins the budget-K acceptance criterion on
// every bundled kernel: TopK ranking keeps at most K entries, stays sorted,
// and its winner is the unbudgeted Rank winner.
func TestRankTopKAgreesWithFullRank(t *testing.T) {
	adv := untrainedAdvisor()
	const k = 3
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			spec, err := Kernel(name)
			if err != nil {
				t.Fatal(err)
			}
			tr := spec.Trace(1)
			sample, err := spec.SamplePlacement(tr)
			if err != nil {
				t.Fatal(err)
			}
			full, err := adv.Rank(tr, sample)
			if err != nil {
				t.Fatalf("Rank: %v", err)
			}
			topk, err := adv.RankContext(context.Background(), tr, sample, RankOptions{TopK: k})
			if err != nil {
				t.Fatalf("RankContext TopK: %v", err)
			}
			if len(topk) > k {
				t.Fatalf("TopK=%d kept %d entries", k, len(topk))
			}
			if want := min(k, len(full)); len(topk) != want {
				t.Fatalf("TopK kept %d of %d, want %d", len(topk), len(full), want)
			}
			for i := range topk {
				if math.IsNaN(topk[i].PredictedNS) || topk[i].PredictedNS <= 0 {
					t.Fatalf("insane prediction %g", topk[i].PredictedNS)
				}
				// Ties may order differently; predicted times must match
				// the full ranking's head exactly.
				if topk[i].PredictedNS != full[i].PredictedNS {
					t.Fatalf("topk[%d] = %.6f ns, full[%d] = %.6f ns",
						i, topk[i].PredictedNS, i, full[i].PredictedNS)
				}
			}
			if !topk[0].Placement.Equal(full[0].Placement) &&
				topk[0].PredictedNS != full[0].PredictedNS {
				t.Fatalf("different winner: %v vs %v", topk[0].Placement, full[0].Placement)
			}
		})
	}
}

func TestRankBudgetReturnsTypedPartial(t *testing.T) {
	adv := untrainedAdvisor()
	spec, err := Kernel("stencil2d")
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := adv.RankContext(context.Background(), tr, sample, RankOptions{MaxCandidates: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if len(ranked) != 2 {
		t.Fatalf("partial ranking has %d entries, want 2", len(ranked))
	}
	for _, r := range ranked {
		if math.IsNaN(r.PredictedNS) || r.PredictedNS <= 0 {
			t.Fatalf("insane partial prediction %g", r.PredictedNS)
		}
	}

	_, evals, err := adv.BestGreedyContext(context.Background(), tr, sample, 2)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("BestGreedyContext: got %v, want ErrBudgetExceeded", err)
	}
	if evals != 2 {
		t.Errorf("BestGreedyContext spent %d evals, want 2", evals)
	}
}

// TestFacadeGuardConvertsPanics: a misassembled advisor (nil model) must
// surface as an error, not a panic escaping the public API.
func TestFacadeGuardConvertsPanics(t *testing.T) {
	adv := &Advisor{Cfg: MustLookupArch("k80")} // Model deliberately nil
	spec, err := Kernel("stencil2d")
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = adv.Rank(tr, sample)
	if err == nil {
		t.Fatal("nil-model advisor returned no error")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Errorf("panic not converted by the facade guard: %v", err)
	}
}

func TestAdvisorValidatesConfig(t *testing.T) {
	if _, err := NewAdvisor(nil); err == nil {
		t.Error("NewAdvisor(nil) returned no error")
	}
	bad := *MustLookupArch("k80")
	bad.WarpSize = 0
	if _, err := NewAdvisor(&bad); err == nil {
		t.Error("NewAdvisor with zero warp size returned no error")
	}

	spec, err := Kernel("stencil2d")
	if err != nil {
		t.Fatal(err)
	}
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	adv := &Advisor{Cfg: &bad, Model: NewModel(MustLookupArch("k80"), FullModelOptions())}
	if _, err := adv.Rank(tr, sample); err == nil {
		t.Error("Rank under an invalid config returned no error")
	}
}

func TestPredictorContextNilTrace(t *testing.T) {
	adv := untrainedAdvisor()
	if _, err := adv.Predictor(nil, nil); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("nil trace: got %v, want ErrInvalidTrace", err)
	}
}
