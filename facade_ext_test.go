package gpuhms

import (
	"bytes"
	"testing"
)

// TestAdvisorSaveLoadRoundTrip trains once, saves, reloads, and checks the
// reloaded advisor predicts identically.
func TestAdvisorSaveLoadRoundTrip(t *testing.T) {
	cfg := MustLookupArch("k80")
	adv, err := NewAdvisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := adv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewAdvisorFromSaved(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}

	spec, _ := Kernel("convolution")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	r1, err := adv.Rank(tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Rank(tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("rank lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].PredictedNS != r2[i].PredictedNS {
			t.Fatalf("prediction %d differs after reload: %g vs %g",
				i, r1[i].PredictedNS, r2[i].PredictedNS)
		}
	}

	// Architecture mismatch rejected.
	var buf2 bytes.Buffer
	if err := adv.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdvisorFromSaved(MustLookupArch("fermi"), &buf2); err == nil {
		t.Error("loading a K80 model for Fermi must fail")
	}
}

// TestGreedyAgreesWithExhaustiveTop exercises BestGreedy and requires its
// pick to be competitive with the exhaustive ranking's best.
func TestGreedyAgreesWithExhaustiveTop(t *testing.T) {
	cfg := MustLookupArch("k80")
	adv, err := NewAdvisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := Kernel("kmeans")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)

	ranked, err := adv.Rank(tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	best, evals, err := adv.BestGreedy(tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	if evals <= 0 || evals >= len(ranked) {
		t.Errorf("greedy used %d evals vs %d exhaustive", evals, len(ranked))
	}
	// Greedy may land in a local optimum, but within 10% of the global
	// predicted best for this separable-ish workload.
	if best.PredictedNS > ranked[0].PredictedNS*1.10 {
		t.Errorf("greedy pick %.0f ns, exhaustive best %.0f ns",
			best.PredictedNS, ranked[0].PredictedNS)
	}
}

// TestFermiEndToEnd runs the whole pipeline — simulate, train, predict —
// on the second architecture.
func TestFermiEndToEnd(t *testing.T) {
	cfg := MustLookupArch("fermi")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdvisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := Kernel("neuralnet")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	ranked, err := adv.Rank(tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 || ranked[0].PredictedNS <= 0 {
		t.Fatal("no usable Fermi predictions")
	}
	// Direction check: texture placement should still beat constant for
	// the divergent weights array.
	var texNS, constNS float64
	for _, r := range ranked {
		switch r.Placement.Format(tr) {
		case "weights:T,inputs:G,outputs:G":
			texNS = r.PredictedNS
		case "weights:C,inputs:G,outputs:G":
			constNS = r.PredictedNS
		}
	}
	if texNS == 0 || constNS == 0 {
		t.Fatal("expected placements missing from ranking")
	}
	if texNS >= constNS {
		t.Errorf("Fermi: texture (%.0f) should beat constant (%.0f) for divergent weights",
			texNS, constNS)
	}
}
