package memsys

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/placement"
	"gpuhms/internal/replay"
	"gpuhms/internal/trace"
)

// buildKernel returns a trace with one array and a single configurable
// memory instruction per pattern.
func buildKernel(t *testing.T, arr trace.Array, emit func(*trace.WarpBuilder, trace.ArrayID)) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder("k", trace.Launch{Blocks: 4, ThreadsPerBlock: 32, WarpSize: 32})
	id := b.DeclareArray(arr)
	emit(b.Warp(0, 0), id)
	return b.MustBuild()
}

func bind(cfg *gpu.Config, tr *trace.Trace, spec string) (*Binding, error) {
	sample := placement.New(len(tr.Arrays))
	target, err := placement.Parse(tr, spec)
	if err != nil {
		return nil, err
	}
	layout := placement.NewLayout(tr, sample)
	return NewBinding(cfg, tr, sample, layout, target), nil
}

func TestGlobalCoalescedAccess(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := buildKernel(t, trace.Array{Name: "a", Type: trace.F32, Len: 4096, ReadOnly: true},
		func(w *trace.WarpBuilder, id trace.ArrayID) { w.LoadCoalesced(id, 0, 32) })
	b, err := bind(cfg, tr, "")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)
	res := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)

	if res.Space != gpu.Global || res.Store {
		t.Errorf("space/store: %v %v", res.Space, res.Store)
	}
	if res.Transactions != 1 {
		t.Errorf("coalesced 32×4B should be 1 transaction, got %d", res.Transactions)
	}
	if res.Replays.Total() != 0 {
		t.Errorf("replays = %d", res.Replays.Total())
	}
	if res.L2Accesses != 1 || res.L2Misses != 1 {
		t.Errorf("L2: %d/%d", res.L2Accesses, res.L2Misses)
	}
	if len(res.DRAMLines) != 1 {
		t.Errorf("DRAM lines = %d", len(res.DRAMLines))
	}
}

func TestGlobalDivergentAccess(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := buildKernel(t, trace.Array{Name: "a", Type: trace.F32, Len: 1 << 16, ReadOnly: true},
		func(w *trace.WarpBuilder, id trace.ArrayID) {
			w.LoadStrided(id, 0, 32, 32) // lanes 128B apart → 32 lines
		})
	b, _ := bind(cfg, tr, "")
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)
	res := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
	if res.Transactions != 32 {
		t.Errorf("transactions = %d", res.Transactions)
	}
	if got := res.Replays.ByReason[replay.GlobalDivergence]; got != 31 {
		t.Errorf("divergence replays = %d", got)
	}
}

func TestConstantBroadcastVsDivergent(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := buildKernel(t, trace.Array{Name: "c", Type: trace.F32, Len: 1024, ReadOnly: true},
		func(w *trace.WarpBuilder, id trace.ArrayID) {
			w.LoadBroadcast(id, 5, 32)
			w.LoadStrided(id, 0, 1, 32) // 32 distinct words
		})
	b, _ := bind(cfg, tr, "c:C")
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)

	bc := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
	if bc.Replays.ByReason[replay.ConstantDivergence] != 0 {
		t.Errorf("broadcast divergence replays = %d", bc.Replays.ByReason[replay.ConstantDivergence])
	}
	if bc.ConstAccesses == 0 || bc.ConstMiss == 0 {
		t.Errorf("cold constant access: %d/%d", bc.ConstAccesses, bc.ConstMiss)
	}
	if bc.Replays.ByReason[replay.ConstantMiss] != int64(bc.ConstMiss) {
		t.Error("each constant-cache miss is one replay (cause 2)")
	}

	dv := h.Access(sm, b, &tr.Warps[0].Inst[1], nil)
	if got := dv.Replays.ByReason[replay.ConstantDivergence]; got != 31 {
		t.Errorf("divergent constant replays = %d", got)
	}
}

func TestSharedConflicts(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := buildKernel(t, trace.Array{Name: "s", Type: trace.F32, Len: 4096},
		func(w *trace.WarpBuilder, id trace.ArrayID) {
			w.LoadStrided(id, 0, 32, 32) // stride 32 words → 32-way conflict
		})
	b, _ := bind(cfg, tr, "s:S")
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)
	res := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
	if res.Space != gpu.Shared {
		t.Fatalf("space = %v", res.Space)
	}
	// 4096 floats over 4 blocks = 1024-element tile; lanes at stride 32
	// within the tile hit the same bank.
	if res.SharedConflicts != 31 {
		t.Errorf("shared conflicts = %d", res.SharedConflicts)
	}
	if len(res.DRAMLines) != 0 || res.L2Accesses != 0 {
		t.Error("shared accesses must not reach L2/DRAM")
	}
}

func TestTextureCachePath(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := buildKernel(t, trace.Array{Name: "x", Type: trace.F32, Len: 4096, ReadOnly: true},
		func(w *trace.WarpBuilder, id trace.ArrayID) {
			w.LoadCoalesced(id, 0, 32)
			w.LoadCoalesced(id, 0, 32) // repeat: tex hit, no L2 traffic
		})
	b, _ := bind(cfg, tr, "x:T")
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)
	first := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
	if first.TexAccesses != 1 || first.TexMiss != 1 || first.L2Accesses != 1 {
		t.Errorf("cold texture: %+v", first)
	}
	second := h.Access(sm, b, &tr.Warps[0].Inst[1], nil)
	if second.TexMiss != 0 || second.L2Accesses != 0 || len(second.DRAMLines) != 0 {
		t.Errorf("warm texture should stay in the tex cache: %+v", second)
	}
}

func TestTexture2DSwizzleChangesLines(t *testing.T) {
	cfg := gpu.KeplerK80()
	// A column access (stride = width): 1D placement touches 32 lines; the
	// 2D tiled layout packs 16-row tiles → fewer lines.
	const width = 64
	tr := buildKernel(t, trace.Array{Name: "m", Type: trace.F32, Len: width * 64, Width: width, ReadOnly: true},
		func(w *trace.WarpBuilder, id trace.ArrayID) {
			w.LoadStrided(id, 0, width, 32)
			w.LoadStrided(id, 0, width, 32)
		})
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)

	b1, _ := bind(cfg, tr, "m:T")
	lin := h.Access(sm, b1, &tr.Warps[0].Inst[0], nil)
	b2, _ := bind(cfg, tr, "m:2T")
	sw := h.Access(sm, b2, &tr.Warps[0].Inst[1], nil)
	if sw.Transactions >= lin.Transactions {
		t.Errorf("2D swizzle should reduce column-access lines: %d vs %d",
			sw.Transactions, lin.Transactions)
	}
}

func TestL2SharedAcrossSpaces(t *testing.T) {
	cfg := gpu.KeplerK80()
	// The same DRAM lines fetched via global then via texture: the second
	// fetch hits in L2 (texture, constant, and global share the L2).
	b := trace.NewBuilder("k", trace.Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	g := b.DeclareArray(trace.Array{Name: "g", Type: trace.F32, Len: 1024, ReadOnly: true})
	wb := b.Warp(0, 0)
	wb.LoadCoalesced(g, 0, 32)
	wb.LoadCoalesced(g, 0, 32)
	tr := b.MustBuild()

	// First access in global placement fills L2.
	sample := placement.New(1)
	layout := placement.NewLayout(tr, sample)
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)
	bG := NewBinding(cfg, tr, sample, layout, sample)
	h.Access(sm, bG, &tr.Warps[0].Inst[0], nil)

	// Second access via texture (same addresses: off-chip → off-chip keeps
	// the address, §III-E): tex misses but L2 hits → no DRAM.
	target, _ := placement.Parse(tr, "g:T")
	bT := NewBinding(cfg, tr, sample, layout, target)
	res := h.Access(sm, bT, &tr.Warps[0].Inst[1], nil)
	if res.TexMiss != 1 {
		t.Errorf("tex miss = %d", res.TexMiss)
	}
	if res.L2Misses != 0 || len(res.DRAMLines) != 0 {
		t.Errorf("texture fill should hit shared L2: %+v", res)
	}
}

func TestInactiveLanesProduceNoAddresses(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := buildKernel(t, trace.Array{Name: "a", Type: trace.F32, Len: 64, ReadOnly: true},
		func(w *trace.WarpBuilder, id trace.ArrayID) {
			idx := make([]int64, 32)
			for i := range idx {
				idx[i] = trace.Inactive
			}
			w.Load(id, idx)
		})
	b, _ := bind(cfg, tr, "")
	h := NewHierarchy(cfg)
	sm := NewSMCaches(cfg)
	res := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
	if res.Transactions != 1 || res.L2Accesses != 0 {
		t.Errorf("fully-masked access: %+v", res)
	}
}

func TestHierarchyReset(t *testing.T) {
	cfg := gpu.KeplerK80()
	h := NewHierarchy(cfg)
	tr := buildKernel(t, trace.Array{Name: "a", Type: trace.F32, Len: 64, ReadOnly: true},
		func(w *trace.WarpBuilder, id trace.ArrayID) { w.LoadCoalesced(id, 0, 32) })
	b, _ := bind(cfg, tr, "")
	sm := NewSMCaches(cfg)
	h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
	if h.L2.Misses() != 1 {
		t.Fatalf("L2 misses = %d", h.L2.Misses())
	}
	h.Reset()
	if h.L2.Misses() != 0 || h.L2.Accesses() != 0 {
		t.Error("reset must clear the L2")
	}
}
