// Package memsys resolves warp-level memory instructions against the HMS
// memory hierarchy: per-lane element indices become device or shared-memory
// addresses under a placement, coalesce into transactions, probe the
// appropriate caches, and finally yield the DRAM request stream. The same
// resolution drives both the analytical models (internal/core) and the
// ground-truth timing simulator (internal/sim), so the two disagree only
// about *timing*, never about which memory events occur.
package memsys

import (
	"gpuhms/internal/cache"
	"gpuhms/internal/gpu"
	"gpuhms/internal/placement"
	"gpuhms/internal/replay"
	"gpuhms/internal/sharedmem"
	"gpuhms/internal/trace"
)

// Hierarchy holds the system-wide cache level (L2) and configuration.
type Hierarchy struct {
	Cfg *gpu.Config
	L2  *cache.Cache
	Sh  sharedmem.Config
}

// NewHierarchy builds the shared level of the memory hierarchy.
func NewHierarchy(cfg *gpu.Config) *Hierarchy {
	return &Hierarchy{
		Cfg: cfg,
		L2:  cache.New(cfg.L2),
		Sh:  sharedmem.FromGPU(cfg),
	}
}

// SMCaches holds the per-SM cache level (constant and texture caches).
type SMCaches struct {
	Const *cache.Cache
	Tex   *cache.Cache
}

// NewSMCaches builds one SM's private caches.
func NewSMCaches(cfg *gpu.Config) *SMCaches {
	return &SMCaches{
		Const: cache.New(cfg.Constant),
		Tex:   cache.New(cfg.Texture),
	}
}

// Reset invalidates both private caches, returning the SM to its
// freshly-built state so one allocation can serve many runs.
func (s *SMCaches) Reset() {
	s.Const.Reset()
	s.Tex.Reset()
}

// Binding fixes a trace to a placement and layout so instructions can be
// resolved to addresses.
type Binding struct {
	Trace      *trace.Trace
	Place      *placement.Placement
	Layout     *placement.Layout
	Tex2DShift uint // log2 of the 2D texture tile edge
}

// NewBinding resolves the layout of a placement and returns the binding.
func NewBinding(cfg *gpu.Config, t *trace.Trace, sample *placement.Placement, sampleLayout *placement.Layout, target *placement.Placement) *Binding {
	return &Binding{
		Trace:      t,
		Place:      target,
		Layout:     placement.Retarget(t, sampleLayout, sample, target),
		Tex2DShift: cfg.TextureBlockShift,
	}
}

// Addresses resolves one memory instruction's active lanes into byte
// addresses: device addresses for off-chip spaces (with 2D-texture
// swizzling applied) or block-local addresses for shared memory. The
// returned slice is appended to buf to let callers reuse storage.
func (b *Binding) Addresses(in *trace.Inst, buf []uint64) []uint64 {
	sp := b.Place.Of(in.Array)
	arr := b.Trace.Array(in.Array)
	out := buf[:0]
	for _, ix := range in.Index {
		if ix == trace.Inactive {
			continue
		}
		switch sp.Base() {
		case gpu.Shared:
			out = append(out, b.Layout.SharedAddress(b.Trace, in.Array, ix))
		case gpu.Texture2D:
			sw := cache.Swizzle2D(ix, arr.Width, b.Tex2DShift)
			out = append(out, b.Layout.Base[in.Array]+uint64(sw)*uint64(arr.Type.Bytes()))
		default:
			out = append(out, b.Layout.Address(b.Trace, in.Array, ix))
		}
	}
	return out
}

// Result describes the memory-system consequences of one warp-level memory
// instruction.
type Result struct {
	Space gpu.MemSpace
	Store bool

	// Transactions is the number of first-level accesses the warp access
	// coalesced into (L2 transactions for global, texture-cache lines for
	// texture, constant words for constant, 1 for shared).
	Transactions int

	// Replays are the placement-dependent instruction replays (§III-B
	// causes (1)–(4)) triggered by this access.
	Replays replay.Breakdown

	// Cache events.
	L2Accesses, L2Misses     int
	ConstAccesses, ConstMiss int
	TexAccesses, TexMiss     int
	SharedConflicts          int

	// DRAMLines holds the line base addresses that missed all caches and
	// must be serviced by the DRAM system.
	DRAMLines []uint64
}

// Scratch holds the reusable per-caller buffers of AccessScratch: resolved
// addresses, coalesced line sets, and the DRAM miss list. One Scratch serves
// one caller's whole replay loop; the zero value is ready to use and the
// buffers grow to the high-water mark of the trace.
type Scratch struct {
	addrs []uint64
	lines []uint64
	words []uint64
	dram  []uint64
}

// Access resolves one memory instruction through the hierarchy, updating
// cache state, and reports all events. sm supplies the issuing SM's private
// caches; addrBuf is an optional reusable address buffer. The returned
// Result owns its DRAMLines. Hot loops that can tolerate a borrowed
// DRAMLines slice should use AccessScratch instead.
func (h *Hierarchy) Access(sm *SMCaches, b *Binding, in *trace.Inst, addrBuf []uint64) Result {
	sc := Scratch{addrs: addrBuf}
	return h.AccessScratch(sm, b, in, &sc)
}

// AccessScratch is Access with every intermediate buffer drawn from sc,
// making the per-instruction replay loop allocation-free once the buffers
// have grown. The returned Result's DRAMLines aliases sc's storage: consume
// it before the next AccessScratch call on the same Scratch.
func (h *Hierarchy) AccessScratch(sm *SMCaches, b *Binding, in *trace.Inst, sc *Scratch) Result {
	sp := b.Place.Of(in.Array)
	res := Result{Space: sp, Store: in.Op != trace.OpLoad}
	addrs := b.Addresses(in, sc.addrs)
	sc.addrs = addrs
	if len(addrs) == 0 {
		res.Transactions = 1
		return res
	}

	// Atomics serialize over same-address lanes regardless of the memory
	// space (§III-B replay cause (6)); the per-space effects below apply on
	// top.
	if in.Op == trace.OpAtomic {
		res.Replays.Add(replay.AtomicConflict, replay.AtomicConflictReplays(addrs))
	}

	switch sp.Base() {
	case gpu.Shared:
		res.Transactions = 1
		conflicts := replay.SharedConflictReplays(h.Sh, addrs)
		res.SharedConflicts = int(conflicts)
		res.Replays.Add(replay.SharedBankConflict, conflicts)

	case gpu.Global:
		lines := cache.LinesTouchedInto(sc.lines, addrs, h.Cfg.TransactionBytes)
		sc.lines = lines
		res.Transactions = len(lines)
		res.Replays.Add(replay.GlobalDivergence, int64(len(lines)-1))
		dram := sc.dram[:0]
		for _, ln := range lines {
			res.L2Accesses++
			if !h.L2.Access(ln) {
				res.L2Misses++
				dram = append(dram, ln)
			}
		}
		sc.dram = dram
		res.DRAMLines = dram

	case gpu.Constant:
		// Constant memory serializes over distinct words; each distinct
		// word beyond the first is a divergence replay (cause 3). Distinct
		// constant-cache lines are then probed; each miss is one replay
		// (cause 2) and one L2 access.
		words := cache.LinesTouchedInto(sc.words, addrs, b.Trace.Array(in.Array).Type.Bytes())
		sc.words = words
		res.Replays.Add(replay.ConstantDivergence, int64(len(words)-1))
		lines := cache.LinesTouchedInto(sc.lines, addrs, h.Cfg.Constant.LineBytes)
		sc.lines = lines
		res.Transactions = len(words)
		dram := sc.dram[:0]
		for _, ln := range lines {
			res.ConstAccesses++
			if !sm.Const.Access(ln) {
				res.ConstMiss++
				res.Replays.Add(replay.ConstantMiss, 1)
				res.L2Accesses++
				if !h.L2.Access(ln) {
					res.L2Misses++
					dram = append(dram, ln)
				}
			}
		}
		sc.dram = dram
		res.DRAMLines = dram

	case gpu.Texture1D, gpu.Texture2D:
		lines := cache.LinesTouchedInto(sc.lines, addrs, h.Cfg.Texture.LineBytes)
		sc.lines = lines
		res.Transactions = len(lines)
		dram := sc.dram[:0]
		for _, ln := range lines {
			res.TexAccesses++
			if !sm.Tex.Access(ln) {
				res.TexMiss++
				res.L2Accesses++
				if !h.L2.Access(ln) {
					res.L2Misses++
					dram = append(dram, ln)
				}
			}
		}
		sc.dram = dram
		res.DRAMLines = dram
	}
	return res
}

// Reset clears all cache state in the hierarchy (not the per-SM caches).
func (h *Hierarchy) Reset() { h.L2.Reset() }

// Resolved is the cache-independent half of resolving one memory access: the
// per-lane addresses coalesced into first-level transactions and the replays
// that depend only on the address pattern (divergence, shared bank conflicts,
// atomic serialization). It is a pure function of (instruction, space,
// address binding) — no cache state is read or written — so it can be
// computed once per binding and reused, with ProbeLines supplying the
// cache-dependent half per evaluation. ResolveScratch followed by ProbeLines
// on the same access reproduces AccessScratch exactly.
type Resolved struct {
	Space gpu.MemSpace

	// Transactions is the number of first-level accesses the warp access
	// coalesced into, exactly as in Result.
	Transactions int

	// Replays holds the cache-independent replay causes only: global and
	// constant divergence, shared bank conflicts, atomic conflicts. Constant
	// cache misses (cause (2)) are cache state and come from ProbeLines.
	Replays replay.Breakdown

	SharedConflicts int

	// Lines holds the first-level cache line addresses this access probes
	// (L2 transaction lines for global, constant-cache lines for constant,
	// texture-cache lines for texture); nil for shared memory, which never
	// reaches a cache. The slice aliases the Scratch — consume it before the
	// next ResolveScratch call on the same Scratch.
	Lines []uint64
}

// ResolveScratch computes the cache-independent resolution of one memory
// instruction: addresses, coalescing, and static replays, with the
// first-level line stream left unprobed. It reads no cache state, so it is
// safe to call concurrently on a shared Hierarchy (unlike AccessScratch).
func (h *Hierarchy) ResolveScratch(b *Binding, in *trace.Inst, sc *Scratch) Resolved {
	sp := b.Place.Of(in.Array)
	res := Resolved{Space: sp}
	addrs := b.Addresses(in, sc.addrs)
	sc.addrs = addrs
	if len(addrs) == 0 {
		res.Transactions = 1
		return res
	}

	if in.Op == trace.OpAtomic {
		res.Replays.Add(replay.AtomicConflict, replay.AtomicConflictReplays(addrs))
	}

	switch sp.Base() {
	case gpu.Shared:
		res.Transactions = 1
		conflicts := replay.SharedConflictReplays(h.Sh, addrs)
		res.SharedConflicts = int(conflicts)
		res.Replays.Add(replay.SharedBankConflict, conflicts)

	case gpu.Global:
		lines := cache.LinesTouchedInto(sc.lines, addrs, h.Cfg.TransactionBytes)
		sc.lines = lines
		res.Transactions = len(lines)
		res.Replays.Add(replay.GlobalDivergence, int64(len(lines)-1))
		res.Lines = lines

	case gpu.Constant:
		words := cache.LinesTouchedInto(sc.words, addrs, b.Trace.Array(in.Array).Type.Bytes())
		sc.words = words
		res.Replays.Add(replay.ConstantDivergence, int64(len(words)-1))
		lines := cache.LinesTouchedInto(sc.lines, addrs, h.Cfg.Constant.LineBytes)
		sc.lines = lines
		res.Transactions = len(words)
		res.Lines = lines

	case gpu.Texture1D, gpu.Texture2D:
		lines := cache.LinesTouchedInto(sc.lines, addrs, h.Cfg.Texture.LineBytes)
		sc.lines = lines
		res.Transactions = len(lines)
		res.Lines = lines
	}
	return res
}

// ProbeCounts are the cache-dependent outcomes of replaying one access's
// first-level lines through the shared caches.
type ProbeCounts struct {
	// ConstMisses counts constant-cache misses; each one is also an
	// instruction replay (§III-B cause (2)).
	ConstMisses int64
	TexMisses   int64
	L2Accesses  int64
	L2Misses    int64
}

// ProbeLines is the cache-dependent half of an access: it replays one
// access's first-level lines (Resolved.Lines) through the shared caches in
// line order, updating their state exactly as AccessScratch would, and
// appends the lines that miss everything — the DRAM requests — to dram.
// Shared-memory accesses have no lines and probe nothing. Because the caches
// are shared, the outcome depends on every access probed before this one:
// this is the cross-array cache interaction (one array evicting another's
// lines) that per-array resolution deliberately leaves out.
func (h *Hierarchy) ProbeLines(sm *SMCaches, sp gpu.MemSpace, lines []uint64, dram []uint64) (ProbeCounts, []uint64) {
	var pc ProbeCounts
	switch sp.Base() {
	case gpu.Global:
		for _, ln := range lines {
			pc.L2Accesses++
			if !h.L2.Access(ln) {
				pc.L2Misses++
				dram = append(dram, ln)
			}
		}
	case gpu.Constant:
		for _, ln := range lines {
			if !sm.Const.Access(ln) {
				pc.ConstMisses++
				pc.L2Accesses++
				if !h.L2.Access(ln) {
					pc.L2Misses++
					dram = append(dram, ln)
				}
			}
		}
	case gpu.Texture1D, gpu.Texture2D:
		for _, ln := range lines {
			if !sm.Tex.Access(ln) {
				pc.TexMisses++
				pc.L2Accesses++
				if !h.L2.Access(ln) {
					pc.L2Misses++
					dram = append(dram, ln)
				}
			}
		}
	}
	return pc, dram
}
