package memsys

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/replay"
	"gpuhms/internal/trace"
)

func TestAtomicConflictSerialization(t *testing.T) {
	cfg := gpu.KeplerK80()

	t.Run("all lanes same bin", func(t *testing.T) {
		tr := buildKernel(t, trace.Array{Name: "bins", Type: trace.F32, Len: 64},
			func(w *trace.WarpBuilder, id trace.ArrayID) {
				idx := make([]int64, 32) // everyone hits bin 0
				w.Atomic(id, idx)
			})
		b, _ := bind(cfg, tr, "")
		h := NewHierarchy(cfg)
		sm := NewSMCaches(cfg)
		res := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
		if got := res.Replays.ByReason[replay.AtomicConflict]; got != 31 {
			t.Errorf("fully-contended atomic replays = %d, want 31", got)
		}
		if !res.Store {
			t.Error("atomic should count as a write")
		}
	})

	t.Run("all lanes distinct bins", func(t *testing.T) {
		tr := buildKernel(t, trace.Array{Name: "bins", Type: trace.F32, Len: 64},
			func(w *trace.WarpBuilder, id trace.ArrayID) {
				idx := make([]int64, 32)
				for i := range idx {
					idx[i] = int64(i)
				}
				w.Atomic(id, idx)
			})
		b, _ := bind(cfg, tr, "")
		h := NewHierarchy(cfg)
		sm := NewSMCaches(cfg)
		res := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
		if got := res.Replays.ByReason[replay.AtomicConflict]; got != 0 {
			t.Errorf("conflict-free atomic replays = %d", got)
		}
	})

	t.Run("shared atomics combine with bank conflicts", func(t *testing.T) {
		tr := buildKernel(t, trace.Array{Name: "bins", Type: trace.F32, Len: 4096},
			func(w *trace.WarpBuilder, id trace.ArrayID) {
				idx := make([]int64, 32)
				for i := range idx {
					idx[i] = int64((i % 2) * 32) // two addresses, same bank
				}
				w.Atomic(id, idx)
			})
		b, _ := bind(cfg, tr, "bins:S")
		h := NewHierarchy(cfg)
		sm := NewSMCaches(cfg)
		res := h.Access(sm, b, &tr.Warps[0].Inst[0], nil)
		// 16 lanes per address → 15 atomic-conflict replays; the two words
		// share a bank → 1 bank-conflict replay.
		if got := res.Replays.ByReason[replay.AtomicConflict]; got != 15 {
			t.Errorf("atomic replays = %d, want 15", got)
		}
		if got := res.Replays.ByReason[replay.SharedBankConflict]; got != 1 {
			t.Errorf("bank replays = %d, want 1", got)
		}
	})
}

func TestAtomicConflictReplaysHelper(t *testing.T) {
	if got := replay.AtomicConflictReplays(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
	if got := replay.AtomicConflictReplays([]uint64{4, 4, 4, 8}); got != 2 {
		t.Errorf("3x one address = %d, want 2", got)
	}
}
