package sim

import (
	"math"
	"reflect"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

func simpleTrace(warps, insts int) *trace.Trace {
	b := trace.NewBuilder("t", trace.Launch{
		Blocks: warps, ThreadsPerBlock: 32, WarpSize: 32,
	})
	a := b.DeclareArray(trace.Array{Name: "a", Type: trace.F32, Len: warps * 32 * insts, ReadOnly: true})
	o := b.DeclareArray(trace.Array{Name: "o", Type: trace.F32, Len: warps * 32})
	for w := 0; w < warps; w++ {
		wb := b.Warp(w, 0)
		for i := 0; i < insts; i++ {
			wb.LoadCoalesced(a, int64((w*insts+i)*32), 32)
			wb.FP32(1)
		}
		wb.StoreCoalesced(o, int64(w*32), 32)
	}
	return b.MustBuild()
}

func run(t *testing.T, cfg *gpu.Config, tr *trace.Trace, spec string) *Measurement {
	t.Helper()
	sample := placement.New(len(tr.Arrays))
	target := sample
	if spec != "" {
		var err error
		target, err = placement.Parse(tr, spec)
		if err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(cfg).Run(tr, sample, target)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeterminism(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := kernels.MustGet("spmv").Trace(1)
	sample, _ := kernels.MustGet("spmv").SamplePlacement(tr)
	m1, err := New(cfg).Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg).Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	if m1.TimeNS != m2.TimeNS || !reflect.DeepEqual(m1.Events, m2.Events) {
		t.Error("simulation must be deterministic")
	}
}

func TestMoreWorkTakesLonger(t *testing.T) {
	cfg := gpu.KeplerK80()
	small := run(t, cfg, simpleTrace(64, 4), "")
	big := run(t, cfg, simpleTrace(64, 16), "")
	if big.Cycles <= small.Cycles {
		t.Errorf("4x instructions: %g vs %g cycles", big.Cycles, small.Cycles)
	}
	wide := run(t, cfg, simpleTrace(256, 4), "")
	if wide.Cycles <= small.Cycles {
		t.Errorf("4x warps: %g vs %g cycles", wide.Cycles, small.Cycles)
	}
}

func TestEventAccounting(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := simpleTrace(8, 4)
	m := run(t, cfg, tr, "")
	ev := m.Events

	// Per warp: 4 loads + 4 fp + 1 store = 9 executed, plus 2 addressing
	// instructions per global access (5 accesses).
	wantExec := int64(8 * (9 + 5*2))
	if ev.InstExecuted != wantExec {
		t.Errorf("executed = %d, want %d", ev.InstExecuted, wantExec)
	}
	if ev.InstIssued < ev.InstExecuted {
		t.Error("issued < executed")
	}
	if ev.IssueSlots < ev.InstIssued {
		t.Error("issue slots < issued")
	}
	if ev.GlobalRequests != 8*5 {
		t.Errorf("global requests = %d", ev.GlobalRequests)
	}
	if ev.DRAMRequests != ev.RowHits+ev.RowMisses+ev.RowConflicts {
		t.Error("DRAM outcome counts must sum to requests")
	}
	if ev.L2Misses > ev.L2Transactions {
		t.Error("L2 misses exceed transactions")
	}
	if ev.TotalReplays() != 0 {
		t.Errorf("coalesced kernel replays = %d", ev.TotalReplays())
	}
}

func TestIllegalPlacementRejected(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := simpleTrace(4, 2)
	sample := placement.New(len(tr.Arrays))
	bad, _ := placement.Parse(tr, "o:T") // written array in texture
	if _, err := New(cfg).Run(tr, sample, bad); err == nil {
		t.Error("illegal placement must be rejected")
	}
}

func TestSharedPlacementStagingCost(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := simpleTrace(16, 4)
	m := run(t, cfg, tr, "a:S")
	if m.StagingNS <= 0 {
		t.Error("shared placement must pay a staging cost")
	}
	wantBytes := placement.SharedStagingBytes(tr, mustParse(t, tr, "a:S"))
	if got := m.StagingNS * cfg.SharedCopyGBs; math.Abs(got-wantBytes) > 1 {
		t.Errorf("staging bytes = %g, want %g", got, wantBytes)
	}
	if m.TimeNS <= m.Cycles*cfg.NSPerCycle() {
		t.Error("TimeNS must include staging")
	}
	g := run(t, cfg, tr, "")
	if g.StagingNS != 0 {
		t.Error("global placement has no staging")
	}
}

func mustParse(t *testing.T, tr *trace.Trace, spec string) *placement.Placement {
	t.Helper()
	p, err := placement.Parse(tr, spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDivergentStoresCostReplays(t *testing.T) {
	cfg := gpu.KeplerK80()
	b := trace.NewBuilder("div", trace.Launch{Blocks: 16, ThreadsPerBlock: 32, WarpSize: 32})
	o := b.DeclareArray(trace.Array{Name: "o", Type: trace.F32, Len: 1 << 16})
	for w := 0; w < 16; w++ {
		wb := b.Warp(w, 0)
		wb.StoreStrided(o, int64(w*32), 64, 32) // 32 lines per store
		wb.FP32(1)
	}
	tr := b.MustBuild()
	m := run(t, cfg, tr, "")
	if m.Events.ReplayGlobalDiv != 16*31 {
		t.Errorf("divergence replays = %d, want %d", m.Events.ReplayGlobalDiv, 16*31)
	}
	if m.Events.InstIssued != m.Events.InstExecuted+m.Events.TotalReplays() {
		t.Error("issued = executed + replays must hold")
	}
}

func TestLatencyHidingAcrossWarps(t *testing.T) {
	// With many warps per SM, memory latency hides behind other warps'
	// issue: 8x the warps must cost far less than 8x the time of a
	// single-warp-per-SM run.
	cfg := gpu.KeplerK80()
	cfg.SMs = 1
	one := run(t, cfg, simpleTrace(1, 32), "")
	eight := run(t, cfg, simpleTrace(8, 32), "")
	if eight.Cycles > one.Cycles*4 {
		t.Errorf("8 warps took %.0f cycles vs %.0f for 1 — latency hiding broken",
			eight.Cycles, one.Cycles)
	}
}

func TestSyncDrainsPendingLoads(t *testing.T) {
	cfg := gpu.KeplerK80()
	b := trace.NewBuilder("sync", trace.Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	a := b.DeclareArray(trace.Array{Name: "a", Type: trace.F32, Len: 1024, ReadOnly: true})
	wb := b.Warp(0, 0)
	wb.LoadCoalesced(a, 0, 32)
	wb.Sync()
	tr := b.MustBuild()
	m := run(t, cfg, tr, "")
	// The sync waits for the DRAM load: total time must exceed the raw
	// miss latency.
	if m.TimeNS < cfg.DRAM.MissLatencyNS {
		t.Errorf("time %g ns < DRAM miss latency", m.TimeNS)
	}
}

func TestOccupancyCapQueuesWarps(t *testing.T) {
	cfg := gpu.KeplerK80()
	cfg.SMs = 1
	cfg.MaxWarpsPerSM = 2
	capped := run(t, cfg, simpleTrace(8, 16), "")
	cfg2 := gpu.KeplerK80()
	cfg2.SMs = 1
	cfg2.MaxWarpsPerSM = 64
	free := New(cfg2)
	tr := simpleTrace(8, 16)
	sample := placement.New(len(tr.Arrays))
	m2, err := free.Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Cycles <= m2.Cycles {
		t.Errorf("occupancy cap should slow execution: %g vs %g", capped.Cycles, m2.Cycles)
	}
}

func TestCollectArrivals(t *testing.T) {
	cfg := gpu.KeplerK80()
	s := New(cfg)
	s.CollectArrivals = true
	tr := simpleTrace(32, 8)
	sample := placement.New(len(tr.Arrays))
	m, err := s.Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(m.InterArrivals)) != m.Events.DRAMRequests-1 {
		t.Errorf("%d gaps for %d requests", len(m.InterArrivals), m.Events.DRAMRequests)
	}
	for _, g := range m.InterArrivals {
		if g < 0 {
			t.Fatal("negative inter-arrival gap")
		}
	}
	// Off by default.
	m2, _ := New(cfg).Run(tr, sample, sample)
	if m2.InterArrivals != nil {
		t.Error("arrivals collected without opt-in")
	}
}

// TestPlacementDirectionality pins qualitative placement effects the HMS
// literature predicts and the paper relies on.
func TestPlacementDirectionality(t *testing.T) {
	cfg := gpu.KeplerK80()

	t.Run("broadcast reads like constant memory", func(t *testing.T) {
		b := trace.NewBuilder("bc", trace.Launch{Blocks: 64, ThreadsPerBlock: 64, WarpSize: 32})
		c := b.DeclareArray(trace.Array{Name: "coef", Type: trace.F32, Len: 64, ReadOnly: true})
		o := b.DeclareArray(trace.Array{Name: "o", Type: trace.F32, Len: 64 * 64})
		for blk := 0; blk < 64; blk++ {
			for w := 0; w < 2; w++ {
				wb := b.Warp(blk, w)
				for k := 0; k < 16; k++ {
					wb.LoadBroadcast(c, int64(k), 32)
					wb.FP32(1)
				}
				wb.StoreCoalesced(o, int64(blk*64+w*32), 32)
			}
		}
		tr := b.MustBuild()
		g := run(t, cfg, tr, "")
		cm := run(t, cfg, tr, "coef:C")
		if cm.TimeNS >= g.TimeNS {
			t.Errorf("constant broadcast should beat global: %g vs %g", cm.TimeNS, g.TimeNS)
		}
	})

	t.Run("divergent indexed reads hate constant memory", func(t *testing.T) {
		tr := kernels.MustGet("neuralnet").Trace(1)
		sample, _ := kernels.MustGet("neuralnet").SamplePlacement(tr)
		g, _ := New(cfg).Run(tr, sample, sample)
		cPl, _ := placement.Parse(tr, "weights:C")
		c, _ := New(cfg).Run(tr, sample, cPl)
		if c.TimeNS <= g.TimeNS {
			t.Errorf("divergent constant should lose to global: %g vs %g", c.TimeNS, g.TimeNS)
		}
	})

	t.Run("2D locality likes 2D texture", func(t *testing.T) {
		tr := kernels.MustGet("qtc").Trace(1)
		spec := kernels.MustGet("qtc")
		sample, _ := spec.SamplePlacement(tr)
		g, _ := New(cfg).Run(tr, sample, sample)
		tp, _ := placement.Parse(tr, "distance_matrix:2T")
		tex, _ := New(cfg).Run(tr, sample, tp)
		// Column walks of a row-major matrix: the tiled texture layout must
		// not be dramatically worse, and the texture path removes
		// divergence replays.
		if tex.Events.ReplayGlobalDiv >= g.Events.ReplayGlobalDiv {
			t.Errorf("texture should remove divergence replays: %d vs %d",
				tex.Events.ReplayGlobalDiv, g.Events.ReplayGlobalDiv)
		}
	})
}

// TestPooledScratchReuse pins that reusing pooled run scratch across traces
// of different shapes and different placements never leaks state: replaying
// a run after arbitrary intervening runs reproduces it exactly.
func TestPooledScratchReuse(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := kernels.MustGet("spmv").Trace(1)
	sample, _ := kernels.MustGet("spmv").SamplePlacement(tr)
	s := New(cfg)

	first, err := s.Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	// Intervening runs with a different trace shape and a different target
	// placement dirty (and grow) the pooled scratch.
	run(t, cfg, simpleTrace(64, 8), "")
	var alt *placement.Placement
	placement.EnumerateSeq(tr, cfg, func(p *placement.Placement) bool {
		if !p.Equal(sample) {
			alt = p.Clone()
			return false
		}
		return true
	})
	if _, err := s.Run(tr, sample, alt); err != nil {
		t.Fatal(err)
	}

	again, err := s.Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	if first.TimeNS != again.TimeNS || first.Cycles != again.Cycles ||
		!reflect.DeepEqual(first.Events, again.Events) {
		t.Error("pooled-scratch reuse changed simulation results")
	}
}
