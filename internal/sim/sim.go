// Package sim is the ground-truth GPU timing simulator of the reproduction —
// the stand-in for the Tesla K80 the paper measures. It executes a
// placement-bound kernel trace on an event-driven model of the machine:
//
//   - per-SM in-order warps with greedy-oldest scheduling across SMs,
//   - one issue port per SM whose slots are consumed by executed
//     instructions, addressing-mode instructions, and instruction replays,
//   - a scoreboard allowing up to MaxPendingLoads outstanding loads per warp
//     (compute instructions consume and therefore wait for pending loads),
//   - the shared cache hierarchy of internal/memsys,
//   - the event-driven banked GDDR5 of internal/dram with true row-buffer
//     state and per-bank FIFO queuing.
//
// Because the simulator implements strictly more mechanism than any of the
// analytical models (real queues instead of Kingman's formula, real LRU
// state instead of miss ratios, per-cycle issue instead of throughput
// equations), model-vs-simulator error is a meaningful analogue of the
// paper's model-vs-hardware error.
package sim

import (
	"container/heap"
	"context"
	"fmt"

	"gpuhms/internal/addrmode"
	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/memsys"
	"gpuhms/internal/obs"
	"gpuhms/internal/perf"
	"gpuhms/internal/placement"
	"gpuhms/internal/replay"
	"gpuhms/internal/trace"
)

// Breakdown attributes a run's cycles to stall causes. All components are
// cycles averaged over the launch's active SMs, so they live on the same
// scale as Measurement.Cycles and their sum never exceeds it:
//
//   - IssueCycles: SM issue-port cycles consumed by first-issue slots,
//     including addressing-mode preambles (the §III-B instruction deltas).
//   - ReplayCycles: port cycles consumed by instruction replays other than
//     shared-memory bank conflicts (global divergence, constant misses and
//     divergence, atomic conflicts).
//   - BankConflictCycles: port cycles consumed by shared-memory
//     bank-conflict replays.
//   - MemStallCycles: issue-port idle cycles attributable to warps waiting
//     on outstanding loads (scoreboard waits and pending-load folds),
//     capped at the port's actual idle time.
//
// The residual Cycles − Total() is idle time with no attributed cause
// (tail effects, barrier skew, latency not hidden by other warps).
type Breakdown struct {
	IssueCycles        float64
	ReplayCycles       float64
	BankConflictCycles float64
	MemStallCycles     float64
}

// Total sums the attributed stall components; by construction it is ≤ the
// measurement's Cycles.
func (b *Breakdown) Total() float64 {
	return b.IssueCycles + b.ReplayCycles + b.BankConflictCycles + b.MemStallCycles
}

// Measurement is the simulator's output for one (trace, placement) pair.
type Measurement struct {
	Cycles    float64 // SM cycles until the last warp retires
	StagingNS float64 // one-time global→shared staging cost
	TimeNS    float64 // total: Cycles/clock + StagingNS
	Events    perf.Events

	// Breakdown attributes cycles to stall causes (issue, replay, memory,
	// bank conflict); see the type's invariants.
	Breakdown Breakdown

	// InterArrivals holds the DRAM request inter-arrival gaps (ns, in
	// request-issue order) when Simulator.CollectArrivals is set; the Fig 4
	// study's raw data. BankCaMean/Std are the per-bank c_a statistics.
	InterArrivals         []float64
	BankCaMean, BankCaStd float64
}

// Simulator holds reusable configuration for measuring many placements of
// many kernels.
type Simulator struct {
	Cfg     *gpu.Config
	Mapping dram.Mapping

	// CollectArrivals enables DRAM inter-arrival collection (Fig 4).
	CollectArrivals bool

	// Recorder receives run telemetry (warp spans, event counters, DRAM
	// latency histograms) when set and enabled; nil disables recording at
	// the cost of one predicted branch per hook site.
	Recorder obs.Recorder
}

// New builds a simulator with the architecture's default address mapping.
func New(cfg *gpu.Config) *Simulator {
	return &Simulator{Cfg: cfg, Mapping: dram.DefaultMapping(cfg.DRAM)}
}

// instruction latencies in cycles by op class.
func (s *Simulator) latency(op trace.Op) float64 {
	switch op {
	case trace.OpSFU:
		return s.Cfg.AvgInstLatency * 2
	case trace.OpFP64:
		return s.Cfg.AvgInstLatency * 2
	case trace.OpBranch:
		return 8
	default:
		return s.Cfg.AvgInstLatency
	}
}

type warpState struct {
	sm      int
	tr      *trace.WarpTrace
	pc      int
	ready   float64   // cycle at which the next instruction may issue
	pending []float64 // completion times of outstanding loads
	retired bool
	started float64 // cycle of the first issue (recorded warp spans)
}

// warpHeap orders active warps by their ready time (ties by index for
// determinism). Warp states are stored by value in one pooled array — a
// pointer per warp used to be a measurable share of a run's allocations.
type warpHeap struct {
	warps []warpState
	order []int
}

func (h *warpHeap) Len() int { return len(h.order) }
func (h *warpHeap) Less(i, j int) bool {
	wi, wj := &h.warps[h.order[i]], &h.warps[h.order[j]]
	if wi.ready != wj.ready {
		return wi.ready < wj.ready
	}
	return h.order[i] < h.order[j]
}
func (h *warpHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *warpHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *warpHeap) Pop() any {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// Measurer measures a (trace, placement) pair — the "hardware" of the
// reproduction. *Simulator is the real implementation; internal/faults wraps
// any Measurer to inject counter noise and degraded profiles.
type Measurer interface {
	Run(t *trace.Trace, sample, target *placement.Placement) (*Measurement, error)
	RunContext(ctx context.Context, t *trace.Trace, sample, target *placement.Placement) (*Measurement, error)
}

// Run measures the trace under the target placement. The sample placement
// (with its layout) defines address assignment per §III-E; measuring the
// sample itself is Run(t, sample, sample).
func (s *Simulator) Run(t *trace.Trace, sample, target *placement.Placement) (*Measurement, error) {
	return s.RunContext(context.Background(), t, sample, target)
}

// ctxCheckInterval is how many scheduler steps pass between context polls in
// RunContext's warp loop — frequent enough that cancellation lands well
// under 100ms even on the largest bundled kernels, rare enough to stay off
// the profile.
const ctxCheckInterval = 2048

// RunContext is Run with cancellation: the warp scheduling loop polls the
// context every few thousand steps and abandons the measurement with
// ctx.Err(). A canceled run never returns a partial Measurement.
func (s *Simulator) RunContext(ctx context.Context, t *trace.Trace, sample, target *placement.Placement) (*Measurement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := placement.Check(t, target, s.Cfg); err != nil {
		return nil, err
	}
	sampleLayout := placement.NewLayout(t, sample)
	binding := memsys.NewBinding(s.Cfg, t, sample, sampleLayout, target)

	// The run's working state — hierarchy, per-SM caches, DRAM system, warp
	// arrays — comes from a per-architecture pool; runs are deterministic
	// regardless of whether the scratch is fresh or reused (reset restores
	// the freshly-built state exactly). Returned on every exit path.
	sc := getScratch(s.Cfg, s.Mapping)
	defer putScratch(s.Cfg, s.Mapping, sc)
	hier := sc.hier
	smCaches := sc.smCaches
	dramSys := sc.dramSys

	// Distribute blocks round-robin over SMs; cap resident warps per SM.
	warps := sc.warpsFor(len(t.Warps))
	smQueue := sc.smQueue // per SM: indices of not-yet-resident warps
	smQHead := sc.smQHead // per SM: next admission cursor into smQueue
	smResident := sc.smResident
	h := &warpHeap{warps: warps, order: sc.order}
	for i := range t.Warps {
		sm := t.Warps[i].Block % s.Cfg.SMs
		warps[i].sm = sm
		warps[i].tr = &t.Warps[i]
		if smResident[sm] < s.Cfg.MaxWarpsPerSM {
			smResident[sm]++
			h.order = append(h.order, i)
		} else {
			smQueue[sm] = append(smQueue[sm], i)
		}
	}
	heap.Init(h)
	// heap operations re-slice h.order; hand the (possibly grown) buffer
	// back to the scratch so the pool keeps its capacity.
	defer func() { sc.order = h.order }()

	smFree := sc.smFree
	var ev perf.Events
	var endTime float64
	nsPerCycle := s.Cfg.NSPerCycle()
	var arrivals []float64
	lastArrival := -1.0

	// Recording is hoisted out of the loop: with no recorder the per-step
	// cost is a single predicted branch and zero allocations (pinned by
	// TestRunContextNopRecorderAddsNoAllocs).
	rec := obs.OrNop(s.Recorder)
	enabled := rec.Enabled()
	var smTrack []string
	if enabled {
		smTrack = make([]string, s.Cfg.SMs)
		for i := range smTrack {
			smTrack[i] = fmt.Sprintf("sim/sm%d", i)
		}
	}

	// memWaitCycles accumulates warp-cycles spent waiting on outstanding
	// loads (scoreboard waits and pending-load folds) — the raw material of
	// Breakdown.MemStallCycles.
	var memWaitCycles float64

	var steps int
	for h.Len() > 0 {
		steps++
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		wi := heap.Pop(h).(int)
		w := &warps[wi]
		if w.pc >= len(w.tr.Inst) {
			// Retire; admit a queued warp on this SM (smQHead is a cursor so
			// the pooled queue buffers keep their capacity across runs).
			w.retired = true
			if w.ready > endTime {
				endTime = w.ready
			}
			if enabled && len(w.tr.Inst) > 0 {
				rec.Span(smTrack[w.sm], fmt.Sprintf("warp%d b%d", wi, w.tr.Block),
					w.started*nsPerCycle, (w.ready-w.started)*nsPerCycle)
			}
			if q := smQueue[w.sm]; smQHead[w.sm] < len(q) {
				next := q[smQHead[w.sm]]
				smQHead[w.sm]++
				warps[next].ready = w.ready
				heap.Push(h, next)
			}
			continue
		}
		in := &w.tr.Inst[w.pc]
		st := w.ready
		if smFree[w.sm] > st {
			st = smFree[w.sm]
		}
		if w.pc == 0 {
			w.started = st
		}

		switch {
		case in.Op == trace.OpSync:
			// Barrier: consume pending loads (intra-warp approximation of
			// the block barrier). The pending wait was already folded into
			// w.ready when the previous instruction retired, so the port is
			// only held for the issue slot itself.
			w.pending = w.pending[:0]
			smFree[w.sm] = st + 1
			w.ready = st + 1
			ev.IssueSlots++
			ev.InstIssued++
			ev.InstExecuted++

		case !in.Op.IsMem():
			// Compute consumes loaded values. Its wait for pending loads was
			// folded into w.ready before the warp re-entered the scheduler
			// (see below), so st already reflects data readiness and the SM
			// port is never reserved across a stall.
			w.pending = w.pending[:0]
			slots := float64(in.Count)
			if in.Op == trace.OpFP64 {
				slots *= 2 // two-cycle issue of double-precision ops
			}
			smFree[w.sm] = st + slots
			w.ready = st + slots + s.latency(in.Op)
			ev.IssueSlots += int64(slots)
			ev.InstIssued += int64(in.Count)
			ev.InstExecuted += int64(in.Count)
			if in.Op == trace.OpInt {
				ev.InstInteger += int64(in.Count)
			}

		default:
			// Memory instruction: addressing-mode preamble, then the
			// load/store with its replays and data latency.
			space := target.Of(in.Array)
			k := addrmode.InstrPerAccess(space, t.Array(in.Array).Type)
			if k > 0 {
				smFree[w.sm] = st + float64(k)
				st = smFree[w.sm]
				ev.IssueSlots += int64(k)
				ev.InstIssued += int64(k)
				ev.InstExecuted += int64(k)
				ev.InstInteger += int64(k)
			}

			res := hier.AccessScratch(smCaches[w.sm], binding, in, &sc.mem)
			replays := res.Replays.Total()
			slots := 1 + float64(replays)
			issueEnd := st + slots
			smFree[w.sm] = issueEnd

			ev.IssueSlots += int64(slots)
			ev.InstIssued += 1 + replays
			ev.InstExecuted++
			ev.LdstIssued += 1 + replays
			countEvents(&ev, &res)

			var done float64
			if space == gpu.Shared {
				done = issueEnd + s.Cfg.SharedLatency + float64(res.SharedConflicts)
			} else {
				// Cache-hit portion. Remote-placed arrays (chiplet) add one
				// interposer crossing to every off-chip access, hit or miss.
				interposer := 0.0
				if space.Remote() {
					interposer = s.Cfg.Interposer.LatencyNS / nsPerCycle
				}
				lat := s.Cfg.CacheHitLatency + interposer
				// DRAM portion: service each missing line; completion is the
				// slowest line.
				stNS := st * nsPerCycle
				for _, line := range res.DRAMLines {
					if s.CollectArrivals {
						if lastArrival >= 0 {
							gap := stNS - lastArrival
							if gap < 0 {
								// Scheduling can locally reorder issue
								// timestamps across SMs.
								gap = 0
							}
							arrivals = append(arrivals, gap)
						}
						lastArrival = stNS
					}
					r := dramSys.Service(line, stNS)
					countRow(&ev, r.Outcome)
					latNS := r.Latency(stNS)
					if enabled {
						rec.Observe("sim_dram_latency_ns", latNS)
						if r.Outcome == dram.Conflict {
							rec.Instant("sim/dram", "row_conflict", stNS)
						}
					}
					if l := latNS/nsPerCycle + s.Cfg.CacheHitLatency + interposer; l > lat {
						lat = l
					}
				}
				done = issueEnd + lat
			}

			if in.Op == trace.OpLoad {
				// Scoreboard: cap outstanding loads per warp.
				if len(w.pending) >= s.Cfg.MaxPendingLoads {
					// Wait for the earliest outstanding load.
					minI := 0
					for i, p := range w.pending {
						if p < w.pending[minI] {
							minI = i
						}
					}
					if w.pending[minI] > issueEnd {
						memWaitCycles += w.pending[minI] - issueEnd
						issueEnd = w.pending[minI]
					}
					w.pending = append(w.pending[:minI], w.pending[minI+1:]...)
				}
				w.pending = append(w.pending, done)
				w.ready = issueEnd
			} else {
				// Stores retire from the warp's perspective at issue.
				w.ready = issueEnd
			}
		}

		w.pc++
		// If the warp's next instruction consumes loaded values (any
		// non-memory op), fold the pending-load wait into its ready time
		// now, so a data-stalled warp sits in the heap without holding the
		// SM issue port.
		if w.pc < len(w.tr.Inst) && !w.tr.Inst[w.pc].Op.IsMem() {
			for _, p := range w.pending {
				if p > w.ready {
					memWaitCycles += p - w.ready
					w.ready = p
				}
			}
		}
		heap.Push(h, wi)
	}

	// Shared staging preamble: each block copies its tile from global
	// memory; the paper estimates this from bandwidth and size.
	stagingNS := s.stagingNS(t, sample, target)

	ev.WarpsPerSM = residentWarps(t, s.Cfg)
	ev.DRAMRequests = ev.RowHits + ev.RowMisses + ev.RowConflicts

	m := &Measurement{
		Cycles:    endTime,
		StagingNS: stagingNS,
		TimeNS:    endTime*nsPerCycle + stagingNS,
		Events:    ev,
		Breakdown: stallBreakdown(&ev, endTime, memWaitCycles,
			float64(s.Cfg.ActiveSMs(t.Launch.Blocks))),
	}
	if enabled {
		s.record(rec, t, m, steps, nsPerCycle)
	}
	if s.CollectArrivals {
		m.InterArrivals = arrivals
		m.BankCaMean, m.BankCaStd = dramSys.MeanCa()
	}
	if m.TimeNS <= 0 {
		return nil, fmt.Errorf("sim: non-positive time for %s", t.Kernel)
	}
	return m, nil
}

// stallBreakdown attributes a run's cycles to stall causes. Port-slot
// components are exact (every issue slot has exactly one cause); the memory
// component is the accumulated pending-load wait capped at the port's
// actual idle time, so the components can never sum past endTime.
func stallBreakdown(ev *perf.Events, endTime, memWaitCycles, activeSMs float64) Breakdown {
	if activeSMs <= 0 {
		activeSMs = 1
	}
	totalSlots := float64(ev.IssueSlots)
	replays := float64(ev.TotalReplays())
	shared := float64(ev.ReplayShared)
	bd := Breakdown{
		IssueCycles:        (totalSlots - replays) / activeSMs,
		ReplayCycles:       (replays - shared) / activeSMs,
		BankConflictCycles: shared / activeSMs,
	}
	idle := endTime - totalSlots/activeSMs
	if idle < 0 {
		idle = 0
	}
	mem := memWaitCycles / activeSMs
	if mem > idle {
		mem = idle
	}
	bd.MemStallCycles = mem
	return bd
}

// record dumps a completed run into the recorder: the whole perf.Events
// vocabulary as counters, the stall breakdown and occupancy as gauges, and
// the run's spans on the "sim" track (simulated-time timebase).
func (s *Simulator) record(rec obs.Recorder, t *trace.Trace, m *Measurement, steps int, nsPerCycle float64) {
	rec.Add("sim_runs_total", 1)
	rec.Add("sim_steps_total", int64(steps))
	for _, nv := range m.Events.All() {
		rec.Add("sim_"+nv.Name+"_total", int64(nv.Value))
	}
	rec.Gauge("sim_warps_per_sm", m.Events.WarpsPerSM)
	rec.Gauge("sim_cycles", m.Cycles)
	rec.Gauge("sim_time_ns", m.TimeNS)
	rec.Gauge("sim_stall_issue_cycles", m.Breakdown.IssueCycles)
	rec.Gauge("sim_stall_replay_cycles", m.Breakdown.ReplayCycles)
	rec.Gauge("sim_stall_bank_conflict_cycles", m.Breakdown.BankConflictCycles)
	rec.Gauge("sim_stall_memory_cycles", m.Breakdown.MemStallCycles)
	rec.Span("sim", "run "+t.Kernel, 0, m.Cycles*nsPerCycle)
	if m.StagingNS > 0 {
		rec.Span("sim", "staging "+t.Kernel, m.Cycles*nsPerCycle, m.StagingNS)
	}
}

// stagingNS estimates the one-time global→shared copy for every array the
// target placement keeps in shared memory.
func (s *Simulator) stagingNS(t *trace.Trace, sample, target *placement.Placement) float64 {
	bytes := placement.SharedStagingBytes(t, target)
	if bytes == 0 {
		return 0
	}
	return bytes / s.Cfg.SharedCopyGBs // GB/s == bytes/ns
}

// residentWarps returns the average resident warps per active SM.
func residentWarps(t *trace.Trace, cfg *gpu.Config) float64 {
	per := float64(t.Launch.TotalWarps()) / float64(cfg.ActiveSMs(t.Launch.Blocks))
	if max := float64(cfg.MaxWarpsPerSM); per > max {
		return max
	}
	return per
}

func countEvents(ev *perf.Events, res *memsys.Result) {
	switch res.Space.Base() {
	case gpu.Global:
		ev.GlobalRequests++
	case gpu.Constant:
		ev.ConstantRequest++
	case gpu.Texture1D, gpu.Texture2D:
		ev.TextureRequests++
	case gpu.Shared:
		ev.SharedRequests++
	}
	ev.ReplayGlobalDiv += res.Replays.ByReason[replay.GlobalDivergence]
	ev.ReplayConstMiss += res.Replays.ByReason[replay.ConstantMiss]
	ev.ReplayConstDiv += res.Replays.ByReason[replay.ConstantDivergence]
	ev.ReplayShared += res.Replays.ByReason[replay.SharedBankConflict]
	ev.ReplayAtomic += res.Replays.ByReason[replay.AtomicConflict]
	ev.L2Transactions += int64(res.L2Accesses)
	ev.L2Misses += int64(res.L2Misses)
	ev.ConstAccesses += int64(res.ConstAccesses)
	ev.ConstMisses += int64(res.ConstMiss)
	ev.TexAccesses += int64(res.TexAccesses)
	ev.TexMisses += int64(res.TexMiss)
	ev.SharedBankConflicts += int64(res.SharedConflicts)
}

func countRow(ev *perf.Events, o dram.Outcome) {
	switch o {
	case dram.Hit:
		ev.RowHits++
	case dram.Miss:
		ev.RowMisses++
	default:
		ev.RowConflicts++
	}
}
