package sim

import (
	"context"
	"math"
	"strings"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
)

// TestBreakdownInvariant checks, over every bundled kernel and all of its
// placement targets, that the stall breakdown is non-negative and its
// components sum to no more than the measured cycles — the accounting that
// lets perf.Events and timing be cross-checked.
func TestBreakdownInvariant(t *testing.T) {
	cfg := gpu.KeplerK80()
	s := New(cfg)
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := kernels.MustGet(name)
			tr := spec.Trace(1)
			sample, err := spec.SamplePlacement(tr)
			if err != nil {
				t.Fatal(err)
			}
			targets, err := spec.Targets(tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, target := range append([]*placement.Placement{sample}, targets...) {
				m, err := s.Run(tr, sample, target)
				if err != nil {
					t.Fatalf("%s: %v", target.Format(tr), err)
				}
				bd := m.Breakdown
				for _, c := range []struct {
					name string
					v    float64
				}{
					{"issue", bd.IssueCycles},
					{"replay", bd.ReplayCycles},
					{"bank_conflict", bd.BankConflictCycles},
					{"memory", bd.MemStallCycles},
				} {
					if c.v < 0 {
						t.Fatalf("%s: %s component negative: %g", target.Format(tr), c.name, c.v)
					}
				}
				if sum := bd.Total(); sum > m.Cycles*(1+1e-9) {
					t.Fatalf("%s: breakdown sum %g exceeds cycles %g", target.Format(tr), sum, m.Cycles)
				}
				// Port-slot components must agree exactly with the event
				// counters they were derived from.
				activeSMs := float64(cfg.ActiveSMs(tr.Launch.Blocks))
				wantPort := float64(m.Events.IssueSlots) / activeSMs
				if got := bd.IssueCycles + bd.ReplayCycles + bd.BankConflictCycles; !close(got, wantPort) {
					t.Fatalf("%s: port components %g != issue slots per SM %g", target.Format(tr), got, wantPort)
				}
				if bd.IssueCycles == 0 {
					t.Fatalf("%s: zero issue cycles for a non-empty kernel", target.Format(tr))
				}
			}
		})
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

// TestRecorderCapturesRun checks the recorder hooks: counters mirror the
// measurement's events, the stall gauges mirror the breakdown, and the
// timeline holds the run span plus one span per warp.
func TestRecorderCapturesRun(t *testing.T) {
	cfg := gpu.KeplerK80()
	s := New(cfg)
	col := obs.NewCollectorWithClock(func() float64 { return 0 })
	s.Recorder = col

	spec := kernels.MustGet("matrixMul")
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}

	snap := col.Snapshot()
	if got := snap.Counter("sim_runs_total"); got != 1 {
		t.Errorf("sim_runs_total = %d, want 1", got)
	}
	if got := snap.Counter("sim_inst_executed_total"); got != m.Events.InstExecuted {
		t.Errorf("sim_inst_executed_total = %d, want %d", got, m.Events.InstExecuted)
	}
	if got := snap.Counter("sim_dram_requests_total"); got != m.Events.DRAMRequests {
		t.Errorf("sim_dram_requests_total = %d, want %d", got, m.Events.DRAMRequests)
	}
	if got := snap.GaugeValue("sim_stall_memory_cycles"); got != m.Breakdown.MemStallCycles {
		t.Errorf("sim_stall_memory_cycles = %g, want %g", got, m.Breakdown.MemStallCycles)
	}
	if m.Events.DRAMRequests > 0 {
		h := snap.Histogram("sim_dram_latency_ns")
		if h == nil || h.Count != m.Events.DRAMRequests {
			t.Errorf("sim_dram_latency_ns histogram missing or wrong count (events %d): %+v",
				m.Events.DRAMRequests, h)
		}
	}

	var runSpans, warpSpans int
	for _, e := range col.Timeline().Events() {
		switch {
		case e.Track == "sim" && strings.HasPrefix(e.Name, "run "):
			runSpans++
			if e.DurNS <= 0 {
				t.Errorf("run span has non-positive duration %g", e.DurNS)
			}
		case strings.HasPrefix(e.Track, "sim/sm"):
			warpSpans++
		}
	}
	if runSpans != 1 {
		t.Errorf("%d run spans, want 1", runSpans)
	}
	if warpSpans != len(tr.Warps) {
		t.Errorf("%d warp spans, want %d", warpSpans, len(tr.Warps))
	}
}

// TestRunContextNopRecorderAddsNoAllocs pins the observability contract:
// running with the explicit no-op recorder allocates exactly as much as
// running with no recorder at all — the instrumentation adds zero
// allocations when disabled.
func TestRunContextNopRecorderAddsNoAllocs(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("vecadd")
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(rec obs.Recorder) float64 {
		s := New(cfg)
		s.Recorder = rec
		// Stray background allocations (a GC refilling fmt's buffer pool,
		// runtime bookkeeping) can perturb any single sample by ±1; the
		// minimum over a few samples is the function's true allocation floor.
		best := math.MaxFloat64
		for i := 0; i < 5; i++ {
			n := testing.AllocsPerRun(5, func() {
				if _, err := s.RunContext(context.Background(), tr, sample, sample); err != nil {
					t.Fatal(err)
				}
			})
			if n < best {
				best = n
			}
		}
		return best
	}
	bare := measure(nil)
	nop := measure(obs.Nop())
	// One-sided on purpose: under heavy parallel load (the full -race
	// suite) GC pressure can evict pooled scratch during the bare
	// measurement and inflate its floor, so nop < bare is noise, not a
	// contract violation. Only the recorder *adding* allocations fails.
	if nop > bare {
		t.Errorf("no-op recorder adds allocations: %.0f with nop vs %.0f bare", nop, bare)
	}
}

// Benchmarks for the observability overhead budget: `none` is the seed
// baseline, `nop` must stay within 2% of it (checked offline via
// scripts/bench.sh → BENCH_obs.json), `collector` shows the enabled cost.
func BenchmarkRunContextRecorder(b *testing.B) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("matrixMul")
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, rec obs.Recorder) {
		s := New(cfg)
		s.Recorder = rec
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.RunContext(context.Background(), tr, sample, sample); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("none", func(b *testing.B) { run(b, nil) })
	b.Run("nop", func(b *testing.B) { run(b, obs.Nop()) })
	b.Run("collector", func(b *testing.B) { run(b, obs.NewCollector()) })
}
