package sim

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
)

// TestDebugEvents prints full event breakdowns for a few kernels (dev aid).
func TestDebugEvents(t *testing.T) {
	cfg := gpu.KeplerK80()
	s := New(cfg)
	for _, name := range []string{"md", "spmv", "fft", "vecadd"} {
		spec := kernels.MustGet(name)
		tr := spec.Trace(1)
		sample, _ := spec.SamplePlacement(tr)
		ms, err := s.Run(tr, sample, sample)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: time=%.0fns cycles=%.0f", name, ms.TimeNS, ms.Cycles)
		for _, ev := range ms.Events.All() {
			if ev.Value != 0 {
				t.Logf("   %-28s %12.0f", ev.Name, ev.Value)
			}
		}
	}
}
