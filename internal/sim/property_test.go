package sim

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// TestTimeMonotoneInLatencyParameters pins the simulator's directional
// behavior: making any latency parameter worse can only slow a kernel down.
func TestTimeMonotoneInLatencyParameters(t *testing.T) {
	base := gpu.KeplerK80()
	spec := kernels.MustGet("md")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	ref, err := New(base).Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}

	worse := []struct {
		name string
		mut  func(*gpu.Config)
	}{
		{"2x DRAM latency", func(c *gpu.Config) {
			c.DRAM.HitLatencyNS *= 2
			c.DRAM.MissLatencyNS *= 2
			c.DRAM.ConflictLatencyNS *= 2
		}},
		{"2x cache latency", func(c *gpu.Config) { c.CacheHitLatency *= 2 }},
		{"4x bus occupancy", func(c *gpu.Config) { c.DRAM.CtlBusyNS *= 4 }},
		{"2x instruction latency", func(c *gpu.Config) { c.AvgInstLatency *= 2 }},
		{"half the SMs", func(c *gpu.Config) { c.SMs = 6 }},
	}
	for _, w := range worse {
		t.Run(w.name, func(t *testing.T) {
			cfg := gpu.KeplerK80()
			w.mut(cfg)
			m, err := New(cfg).Run(tr, sample, sample)
			if err != nil {
				t.Fatal(err)
			}
			if m.Cycles < ref.Cycles {
				t.Errorf("worse hardware ran faster: %.0f vs %.0f cycles", m.Cycles, ref.Cycles)
			}
		})
	}
}

// TestEventsPlacementInvariants pins which event counters may and may not
// change when only the data placement changes.
func TestEventsPlacementInvariants(t *testing.T) {
	cfg := gpu.KeplerK80()
	s := New(cfg)
	spec := kernels.MustGet("convolution")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	base, err := s.Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	targets, _ := spec.Targets(tr)
	for _, target := range targets {
		m, err := s.Run(tr, sample, target)
		if err != nil {
			t.Fatal(err)
		}
		// Memory instructions per space may shuffle, but their total is the
		// trace's and cannot change.
		if m.Events.MemRequests() != base.Events.MemRequests() {
			t.Errorf("%s: total warp requests changed: %d vs %d",
				target.Format(tr), m.Events.MemRequests(), base.Events.MemRequests())
		}
		// Occupancy is a launch property, not a placement property.
		if m.Events.WarpsPerSM != base.Events.WarpsPerSM {
			t.Errorf("%s: warps/SM changed with placement", target.Format(tr))
		}
		// DRAM outcomes always partition DRAM requests.
		if m.Events.DRAMRequests != m.Events.RowHits+m.Events.RowMisses+m.Events.RowConflicts {
			t.Errorf("%s: row outcomes don't partition requests", target.Format(tr))
		}
	}
}

// TestAtomicContentionCostsTime pins replay cause (6) end to end: the
// contended scatter-add runs slower than a conflict-free variant of the
// same shape.
func TestAtomicContentionCostsTime(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("scatteradd")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	m, err := New(cfg).Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events.ReplayAtomic == 0 {
		t.Fatal("skewed scatter-add should produce atomic-conflict replays")
	}
	if m.Events.InstIssued != m.Events.InstExecuted+m.Events.TotalReplays() {
		t.Error("issued = executed + replays must include atomic replays")
	}

	// Rebuild the kernel shape with conflict-free bins: one bin per lane.
	cf := conflictFreeScatter(tr.Launch.Blocks)
	sample2 := placement.New(len(cf.Arrays))
	m2, err := New(cfg).Run(cf, sample2, sample2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Events.ReplayAtomic != 0 {
		t.Fatalf("conflict-free variant still has %d atomic replays", m2.Events.ReplayAtomic)
	}
	if m.Cycles <= m2.Cycles {
		t.Errorf("contended atomics (%.0f cycles) should cost more than conflict-free (%.0f)",
			m.Cycles, m2.Cycles)
	}
}

// conflictFreeScatter mirrors the scatteradd trace shape (same launch, same
// instruction mix) but every lane atomically updates its own bin.
func conflictFreeScatter(blocks int) *trace.Trace {
	const threadsPerBlock = 128
	n := blocks * threadsPerBlock
	b := trace.NewBuilder("scatterAddFree", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	in := b.DeclareArray(trace.Array{Name: "values", Type: trace.F32, Len: n, ReadOnly: true})
	bins := b.DeclareArray(trace.Array{Name: "bins", Type: trace.F32, Len: n})
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < threadsPerBlock/32; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			base := blk*threadsPerBlock + w*32
			wb.LoadCoalesced(in, int64(base), 32)
			wb.Int(2)
			for l := 0; l < 32; l++ {
				idx[l] = int64(base + l)
			}
			wb.Atomic(bins, idx)
		}
	}
	return b.MustBuild()
}
