package sim

import (
	"sync"

	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/memsys"
)

// runScratch is the per-run working state of RunContext — the cache
// hierarchy, per-SM caches, the event-driven DRAM system, and the warp
// scheduling arrays. Building it from scratch costs ~9MB and ~100k
// allocations per run, so completed runs return theirs to a pool keyed by
// (config, mapping) and the next run on the same architecture resets and
// reuses it.
type runScratch struct {
	hier       *memsys.Hierarchy
	smCaches   []*memsys.SMCaches
	dramSys    *dram.System
	warps      []warpState
	order      []int
	smQueue    [][]int
	smQHead    []int
	smResident []int
	smFree     []float64
	mem        memsys.Scratch
}

// scratchKey identifies the architecture a pooled scratch was built for.
// Config is keyed by pointer: the advisor and experiment layers thread one
// *gpu.Config through every simulator they build, and two distinct Config
// values simply maintain separate pools. Mapping is a comparable value
// struct, so a Simulator with a substituted mapping never reuses a default
// one's DRAM system.
type scratchKey struct {
	cfg     *gpu.Config
	mapping dram.Mapping
}

// scratchPools maps scratchKey to a *sync.Pool of *runScratch.
var scratchPools sync.Map

// getScratch returns run scratch for the architecture, reset and ready:
// either a pooled one or a freshly built one.
func getScratch(cfg *gpu.Config, mapping dram.Mapping) *runScratch {
	key := scratchKey{cfg: cfg, mapping: mapping}
	p, ok := scratchPools.Load(key)
	if !ok {
		p, _ = scratchPools.LoadOrStore(key, &sync.Pool{})
	}
	if sc, ok := p.(*sync.Pool).Get().(*runScratch); ok {
		sc.reset()
		return sc
	}
	sc := &runScratch{
		hier:       memsys.NewHierarchy(cfg),
		smCaches:   make([]*memsys.SMCaches, cfg.SMs),
		dramSys:    dram.NewSystem(cfg.DRAM, mapping),
		smQueue:    make([][]int, cfg.SMs),
		smQHead:    make([]int, cfg.SMs),
		smResident: make([]int, cfg.SMs),
		smFree:     make([]float64, cfg.SMs),
	}
	for i := range sc.smCaches {
		sc.smCaches[i] = memsys.NewSMCaches(cfg)
	}
	return sc
}

// putScratch returns scratch to its architecture's pool.
func putScratch(cfg *gpu.Config, mapping dram.Mapping, sc *runScratch) {
	p, ok := scratchPools.Load(scratchKey{cfg: cfg, mapping: mapping})
	if ok {
		p.(*sync.Pool).Put(sc)
	}
}

// reset returns pooled scratch to a fresh-run state: caches invalidated,
// DRAM system closed, scheduling arrays emptied (capacity kept).
func (sc *runScratch) reset() {
	sc.hier.Reset()
	for _, sm := range sc.smCaches {
		sm.Reset()
	}
	sc.dramSys.Reset()
	sc.order = sc.order[:0]
	for i := range sc.smQueue {
		sc.smQueue[i] = sc.smQueue[i][:0]
	}
	clear(sc.smQHead)
	clear(sc.smResident)
	clear(sc.smFree)
}

// warpsFor sizes the warp-state array for a run, reusing the pending-load
// slices that survived in place.
func (sc *runScratch) warpsFor(n int) []warpState {
	if cap(sc.warps) < n {
		sc.warps = make([]warpState, n)
	} else {
		sc.warps = sc.warps[:n]
		for i := range sc.warps {
			sc.warps[i] = warpState{pending: sc.warps[i].pending[:0]}
		}
	}
	return sc.warps
}
