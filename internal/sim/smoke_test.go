package sim

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
)

// TestSmokeAllKernels measures every kernel's sample placement and every
// placement test; times must be positive and finite, and events must be
// self-consistent.
func TestSmokeAllKernels(t *testing.T) {
	cfg := gpu.KeplerK80()
	s := New(cfg)
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := kernels.MustGet(name)
			tr := spec.Trace(1)
			sample, err := spec.SamplePlacement(tr)
			if err != nil {
				t.Fatalf("sample placement: %v", err)
			}
			if err := placement.Check(tr, sample, cfg); err != nil {
				t.Fatalf("sample placement illegal: %v", err)
			}
			targets, err := spec.Targets(tr)
			if err != nil {
				t.Fatalf("targets: %v", err)
			}
			ms, err := s.Run(tr, sample, sample)
			if err != nil {
				t.Fatalf("sim sample: %v", err)
			}
			t.Logf("%s sample: %.0f ns, issued=%d executed=%d replays=%d L2miss=%d dram=%d (rowhit=%d miss=%d conf=%d)",
				name, ms.TimeNS, ms.Events.InstIssued, ms.Events.InstExecuted,
				ms.Events.TotalReplays(), ms.Events.L2Misses, ms.Events.DRAMRequests,
				ms.Events.RowHits, ms.Events.RowMisses, ms.Events.RowConflicts)
			if ms.TimeNS <= 0 {
				t.Fatalf("non-positive sample time")
			}
			if ms.Events.InstIssued < ms.Events.InstExecuted {
				t.Fatalf("issued %d < executed %d", ms.Events.InstIssued, ms.Events.InstExecuted)
			}
			for i, target := range targets {
				mt, err := s.Run(tr, sample, target)
				if err != nil {
					t.Fatalf("target %d (%s): %v", i, target.Format(tr), err)
				}
				t.Logf("  %-40s %.0f ns (%.2fx)", target.Format(tr), mt.TimeNS, mt.TimeNS/ms.TimeNS)
				if mt.TimeNS <= 0 {
					t.Fatalf("target %d non-positive time", i)
				}
			}
		})
	}
}
