package advisor

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// searchStrategyReport is one strategy's row in BENCH_search.json: how much
// of the space it predicted, what it skipped, how long it took, and how far
// its best placement sits from the exhaustive optimum.
type searchStrategyReport struct {
	Evaluated int          `json:"evaluated"`
	Pruned    int          `json:"pruned,omitempty"`
	Total     int          `json:"total"`
	Wall      latencyStats `json:"wall"`
	Top1NS    float64      `json:"top1_ns"`
	// Top1Regret is top1_ns / exhaustive top1_ns (1.0 = found the optimum).
	Top1Regret float64 `json:"top1_regret"`
	// EvalFraction is evaluated/total — the point of sub-exhaustive search.
	EvalFraction float64 `json:"eval_fraction"`
}

// TestBenchSearchArtifact compares the search strategies on the largest
// bundled space (spmv, 288 legal placements): candidates evaluated and wall
// time per strategy, from one shared profiled sample so the comparison is
// search-only. Writes BENCH_search.json; gated by BENCH_SEARCH_OUT so the
// ordinary test run stays fast — scripts/bench_search.sh drives it.
//
// Asserted acceptance: greedy and beam-4 must evaluate under half the space
// while landing within 1% of the exhaustive top-1 prediction.
func TestBenchSearchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_SEARCH_OUT")
	if out == "" {
		t.Skip("set BENCH_SEARCH_OUT=/path/to/BENCH_search.json to run")
	}
	const kernel = "spmv"
	a, tr, sample := benchSetup(t, kernel)
	ctx := context.Background()
	pr, err := a.PredictorContext(ctx, tr, sample)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 10
	workers := runtime.NumCPU()
	reports := map[string]searchStrategyReport{}
	var exhaustiveTop1 float64
	for _, strat := range []Strategy{Exhaustive(), Greedy(), Beam(4)} {
		var res *RankResult
		wall := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			res, err = Search(ctx, a.Cfg, tr, pr,
				RankOptions{TopK: 10, Parallelism: workers, Strategy: strat}, nil)
			wall = append(wall, time.Since(start))
			if err != nil {
				t.Fatalf("%s: %v", strat.Spec(), err)
			}
		}
		r := searchStrategyReport{
			Evaluated:    res.Evaluated,
			Pruned:       res.Pruned,
			Total:        res.Total,
			Wall:         summarize(wall),
			Top1NS:       res.Ranked[0].PredictedNS,
			EvalFraction: float64(res.Evaluated) / float64(res.Total),
		}
		if strat.Spec() == "exhaustive" {
			exhaustiveTop1 = r.Top1NS
		}
		r.Top1Regret = r.Top1NS / exhaustiveTop1
		reports[strat.Spec()] = r
	}

	for spec, r := range reports {
		if spec == "exhaustive" {
			continue
		}
		if r.EvalFraction >= 0.5 {
			t.Errorf("%s evaluated %d of %d (%.0f%%) — want under half the space",
				spec, r.Evaluated, r.Total, 100*r.EvalFraction)
		}
		if r.Top1Regret > 1.01 {
			t.Errorf("%s top-1 regret %.4fx — want within 1%% of the exhaustive optimum",
				spec, r.Top1Regret)
		}
	}

	report := struct {
		Bench      string                          `json:"bench"`
		Kernel     string                          `json:"kernel"`
		NumCPU     int                             `json:"num_cpu"`
		Strategies map[string]searchStrategyReport `json:"strategies"`
	}{
		Bench:      "advisor_search_strategies",
		Kernel:     kernel,
		NumCPU:     workers,
		Strategies: reports,
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	ex, gr, bm := reports["exhaustive"], reports["greedy"], reports["beam-4"]
	t.Logf("wrote %s (exhaustive %d evals p50 %.2fms; greedy %d evals p50 %.2fms regret %.4fx; beam-4 %d evals (%d pruned) p50 %.2fms regret %.4fx)",
		out, ex.Evaluated, ex.Wall.P50NS/1e6,
		gr.Evaluated, gr.Wall.P50NS/1e6, gr.Top1Regret,
		bm.Evaluated, bm.Pruned, bm.Wall.P50NS/1e6, bm.Top1Regret)
}
