package advisor

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// searchStrategyReport is one strategy's row in BENCH_search.json: how much
// of the space it predicted, what it skipped, how long it took, and how far
// its best placement sits from the exhaustive optimum.
type searchStrategyReport struct {
	Evaluated int          `json:"evaluated"`
	Pruned    int          `json:"pruned,omitempty"`
	Deduped   int          `json:"deduped,omitempty"`
	Total     int          `json:"total"`
	Wall      latencyStats `json:"wall"`
	// PerEvalNS is the p50 wall divided by predictions run — the effective
	// per-candidate cost the strategy saw, deltas and cache reuse included.
	PerEvalNS float64 `json:"per_eval_ns"`
	Top1NS    float64 `json:"top1_ns"`
	// Top1Regret is top1_ns / exhaustive top1_ns (1.0 = found the optimum).
	Top1Regret float64 `json:"top1_regret"`
	// EvalFraction is evaluated/total — the point of sub-exhaustive search.
	EvalFraction float64 `json:"eval_fraction"`
}

// archSearchReport is one architecture's section of BENCH_search.json.
type archSearchReport struct {
	Arch      string       `json:"arch"`
	Total     int          `json:"total"`
	DeltaEval latencyStats `json:"delta_eval"`
	FullEval  latencyStats `json:"full_eval"`
	// DeltaSpeedup is full_eval p50 / delta_eval p50 — how much cheaper
	// one incremental prediction is than a from-scratch one.
	DeltaSpeedup float64                         `json:"delta_speedup"`
	Strategies   map[string]searchStrategyReport `json:"strategies"`
}

// TestBenchSearchArtifact compares the search strategies on the largest
// bundled space (spmv, 288 legal placements on the K80): candidates
// evaluated and wall time per strategy, from one shared profiled sample so
// the comparison is search-only. Writes BENCH_search.json; gated by
// BENCH_SEARCH_OUT so the ordinary test run stays fast —
// scripts/bench_search.sh drives it. BENCH_SEARCH_ARCHS selects the
// architectures swept (registry names, default "k80"): on the chiplet the
// remote space variants grow the same kernel's legal space several-fold
// (docs/ARCHES.md), which is exactly when the pruned strategies earn their
// keep.
//
// Asserted acceptance, per architecture: greedy and beam-4 must evaluate
// under half the space while landing within 1% of the exhaustive top-1
// prediction, greedy and beam-4 p50 wall must stay ≤50ms and exhaustive
// ≤500ms, and a delta evaluation must stay ≥5x cheaper than a
// cache-bypassing full one (the incremental-evaluation contract,
// docs/PERFORMANCE.md).
func TestBenchSearchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_SEARCH_OUT")
	if out == "" {
		t.Skip("set BENCH_SEARCH_OUT=/path/to/BENCH_search.json to run")
	}
	archNames := []string{"k80"}
	if env := os.Getenv("BENCH_SEARCH_ARCHS"); env != "" {
		archNames = strings.Split(env, ",")
	}
	var archReports []archSearchReport
	for _, arch := range archNames {
		arch = strings.TrimSpace(arch)
		t.Run(arch, func(t *testing.T) {
			archReports = append(archReports, benchSearchArch(t, arch))
		})
	}

	primary := archReports[0]
	report := struct {
		Bench     string       `json:"bench"`
		Kernel    string       `json:"kernel"`
		NumCPU    int          `json:"num_cpu"`
		DeltaEval latencyStats `json:"delta_eval"`
		FullEval  latencyStats `json:"full_eval"`
		// DeltaSpeedup is full_eval p50 / delta_eval p50 — how much cheaper
		// one incremental prediction is than a from-scratch one.
		DeltaSpeedup float64                         `json:"delta_speedup"`
		Strategies   map[string]searchStrategyReport `json:"strategies"`
		// Arches holds one full section per swept architecture (the
		// top-level fields mirror the first, for artifact compatibility).
		Arches []archSearchReport `json:"arches,omitempty"`
	}{
		Bench:        "advisor_search_strategies",
		Kernel:       benchSearchKernel,
		NumCPU:       runtime.NumCPU(),
		DeltaEval:    primary.DeltaEval,
		FullEval:     primary.FullEval,
		DeltaSpeedup: primary.DeltaSpeedup,
		Strategies:   primary.Strategies,
	}
	if len(archReports) > 1 {
		report.Arches = archReports
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d arch sections)", out, len(archReports))
}

const benchSearchKernel = "spmv"

// benchSearchArch runs the strategy comparison and the delta-vs-full
// microbench on one registry architecture and returns its artifact section.
func benchSearchArch(t *testing.T, arch string) archSearchReport {
	const kernel = benchSearchKernel
	var a *Advisor
	if arch == "k80" {
		a, _, _ = benchSetup(t, kernel)
	} else {
		var err error
		if a, err = New(gpu.MustLookup(arch)); err != nil {
			t.Fatal(err)
		}
	}
	k := kernels.MustGet(kernel)
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pr, err := a.PredictorContext(ctx, tr, sample)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 10
	workers := runtime.NumCPU()
	reports := map[string]searchStrategyReport{}
	var exhaustiveTop1 float64
	for _, strat := range []Strategy{Exhaustive(), Greedy(), Beam(4)} {
		var res *RankResult
		wall := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			res, err = Search(ctx, a.Cfg, tr, pr,
				RankOptions{TopK: 10, Parallelism: workers, Strategy: strat}, nil)
			wall = append(wall, time.Since(start))
			if err != nil {
				t.Fatalf("%s: %v", strat.Spec(), err)
			}
		}
		r := searchStrategyReport{
			Evaluated:    res.Evaluated,
			Pruned:       res.Pruned,
			Deduped:      res.Deduped,
			Total:        res.Total,
			Wall:         summarize(wall),
			Top1NS:       res.Ranked[0].PredictedNS,
			EvalFraction: float64(res.Evaluated) / float64(res.Total),
		}
		if r.Evaluated > 0 {
			r.PerEvalNS = r.Wall.P50NS / float64(r.Evaluated)
		}
		if strat.Spec() == "exhaustive" {
			exhaustiveTop1 = r.Top1NS
		}
		r.Top1Regret = r.Top1NS / exhaustiveTop1
		reports[strat.Spec()] = r
	}

	for spec, r := range reports {
		if spec == "exhaustive" {
			// The 500ms end-to-end target is calibrated to the K80's
			// 288-candidate spmv space; on chiplet architectures the remote
			// variants grow the same space ~12x, so larger spaces are held
			// to the equivalent per-evaluation cost instead.
			if r.Total <= 500 {
				if p50 := time.Duration(r.Wall.P50NS); p50 > 500*time.Millisecond {
					t.Errorf("exhaustive p50 wall %v — want ≤500ms end-to-end", p50)
				}
			} else if r.PerEvalNS > 2e6 {
				t.Errorf("exhaustive per-eval p50 %.2fms over %d candidates — want ≤2ms",
					r.PerEvalNS/1e6, r.Total)
			}
			continue
		}
		if r.EvalFraction >= 0.5 {
			t.Errorf("%s evaluated %d of %d (%.0f%%) — want under half the space",
				spec, r.Evaluated, r.Total, 100*r.EvalFraction)
		}
		if r.Top1Regret > 1.01 {
			t.Errorf("%s top-1 regret %.4fx — want within 1%% of the exhaustive optimum",
				spec, r.Top1Regret)
		}
		if p50 := time.Duration(r.Wall.P50NS); p50 > 50*time.Millisecond {
			t.Errorf("%s p50 wall %v — want ≤50ms end-to-end", spec, p50)
		}
	}

	// Per-eval delta-vs-full comparison: the steady-state cost of one delta
	// evaluation (every single-move contribution already cached, as inside
	// any search) against one cache-bypassing full evaluation of the same
	// placement.
	st := pr.SampleState()
	space := placement.NewSpace(tr, a.Cfg)
	var moveArrays []int
	var moveSpaces []gpu.MemSpace
	for j := 0; j < space.Arrays(); j++ {
		for _, sp := range space.ArrayOptions(j) {
			if sp == sample.Spaces[j] {
				continue
			}
			if placement.Check(tr, sample.WithMove(trace.ArrayID(j), sp), a.Cfg) != nil {
				continue
			}
			moveArrays, moveSpaces = append(moveArrays, j), append(moveSpaces, sp)
		}
	}
	const evalRounds = 20
	deltaWall := make([]time.Duration, 0, evalRounds)
	fullWall := make([]time.Duration, 0, evalRounds)
	target := sample.WithMove(trace.ArrayID(moveArrays[0]), moveSpaces[0])
	for i := 0; i < evalRounds; i++ {
		j := i % len(moveArrays)
		start := time.Now()
		if _, _, err := pr.PredictDelta(st, moveArrays[j], moveSpaces[j]); err != nil {
			t.Fatal(err)
		}
		deltaWall = append(deltaWall, time.Since(start))
		start = time.Now()
		if _, err := pr.PredictFull(target); err != nil {
			t.Fatal(err)
		}
		fullWall = append(fullWall, time.Since(start))
	}
	deltaStats, fullStats := summarize(deltaWall), summarize(fullWall)
	speedup := fullStats.P50NS / deltaStats.P50NS
	if speedup < 5 {
		t.Errorf("delta eval p50 %.2fms vs full %.2fms — %.1fx, want ≥5x",
			deltaStats.P50NS/1e6, fullStats.P50NS/1e6, speedup)
	}

	ex, gr, bm := reports["exhaustive"], reports["greedy"], reports["beam-4"]
	t.Logf("%s: exhaustive %d evals p50 %.2fms; greedy %d evals p50 %.2fms regret %.4fx; beam-4 %d evals (%d pruned, %d deduped) p50 %.2fms regret %.4fx; delta %.3fms vs full %.2fms per eval, %.0fx",
		arch, ex.Evaluated, ex.Wall.P50NS/1e6,
		gr.Evaluated, gr.Wall.P50NS/1e6, gr.Top1Regret,
		bm.Evaluated, bm.Pruned, bm.Deduped, bm.Wall.P50NS/1e6, bm.Top1Regret,
		deltaStats.P50NS/1e6, fullStats.P50NS/1e6, speedup)
	return archSearchReport{
		Arch:         arch,
		Total:        ex.Total,
		DeltaEval:    deltaStats,
		FullEval:     fullStats,
		DeltaSpeedup: speedup,
		Strategies:   reports,
	}
}
