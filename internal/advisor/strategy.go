package advisor

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"gpuhms/internal/core"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// Strategy selects how a ranking search covers the legal placement space.
// The built-in strategies — Exhaustive, Greedy, Beam — are the closed set of
// implementations (the interface has an unexported method); pick one by
// constructor or parse a wire spec with ParseStrategy.
//
// Every strategy preserves the engine contracts (docs/SEARCH.md): results are
// deterministic for any worker count, a MaxCandidates budget stops the search
// with a *hmserr.BudgetError carrying Evaluated/Total coverage, and a
// canceled context wins over every other stop cause. Sub-exhaustive
// strategies (greedy, beam) rank only the candidates they visit, so their
// rankings are a subset of the exhaustive one — the top-1 agrees on all
// bundled kernels (pinned in tests), but in general a sub-exhaustive search
// may return a near-optimal placement with bounded regret.
type Strategy interface {
	// Spec returns the canonical wire spelling of the strategy:
	// "exhaustive", "greedy", "beam-4". It is what the service echoes in
	// RankResponse.Coverage and keys its result cache on.
	Spec() string

	// run drives the shared ranking engine. Unexported: the strategy set is
	// closed so the engine contracts stay enforceable.
	run(e *engine)
}

// DefaultBeamWidth is the frontier width Beam uses when none is given; it is
// also the width the "beam" spec (no suffix) parses to.
const DefaultBeamWidth = 4

// MaxBeamWidth caps the frontier width accepted from wire specs, so a
// hostile "beam-1000000000" cannot turn a bounded search back into an
// exhaustive one with a giant frontier.
const MaxBeamWidth = 4096

// Exhaustive returns the complete-enumeration strategy: every legal
// placement is predicted, exactly the classic Rank semantics. It is the
// default when RankOptions.Strategy is nil.
func Exhaustive() Strategy { return exhaustive{} }

// Greedy returns per-array coordinate descent from the sample placement:
// each round evaluates every unseen single-array move from the current
// placement (in parallel) and takes the strictly best one; the search stops
// when no move improves. Evaluations are cached by enumeration index, so a
// placement is never predicted twice.
func Greedy() Strategy { return greedy{} }

// Beam returns a width-w beam search over arrays in declaration order: level
// L fixes array L's space across a frontier of at most w of the best states
// seen so far (suffix arrays keep the sample's spaces until their level).
// With TopK set, a model-derived admissible lower bound (core.PlacementBound)
// prunes branches that provably cannot beat the current top-K. Widths < 1
// become DefaultBeamWidth; widths above MaxBeamWidth are capped.
func Beam(width int) Strategy {
	if width < 1 {
		width = DefaultBeamWidth
	}
	if width > MaxBeamWidth {
		width = MaxBeamWidth
	}
	return beam{width: width}
}

// ParseStrategy converts a wire spec into a Strategy: "" or "exhaustive",
// "greedy", "beam" (DefaultBeamWidth), or "beam-W" for an explicit width.
// Unknown specs (and out-of-range widths) return an error wrapping
// hmserr.ErrUnknownStrategy — caller input, never an internal failure.
func ParseStrategy(spec string) (Strategy, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	switch s {
	case "", "exhaustive":
		return Exhaustive(), nil
	case "greedy":
		return Greedy(), nil
	case "beam":
		return Beam(DefaultBeamWidth), nil
	}
	if w, ok := strings.CutPrefix(s, "beam-"); ok {
		n, err := strconv.Atoi(w)
		if err == nil && n >= 1 {
			if n > MaxBeamWidth {
				return nil, hmserr.Wrap(hmserr.ErrUnknownStrategy,
					"beam width %d exceeds max %d", n, MaxBeamWidth)
			}
			return Beam(n), nil
		}
	}
	return nil, hmserr.Wrap(hmserr.ErrUnknownStrategy,
		"%q (want exhaustive, greedy, or beam-W)", spec)
}

// exhaustive is the complete search: every legal placement predicted exactly
// once. Workers split the raw mixed-radix space into contiguous blocks of a
// reflected-Gray walk, so within a block consecutive placements differ in a
// single array and each evaluation is a delta from the previous one; only
// block starts (and resumptions after a skipped illegal run) pay a
// standalone evaluation. Coverage and ranking are identical to a plain
// enumeration — only the visit order differs.
type exhaustive struct{}

func (exhaustive) Spec() string { return "exhaustive" }

func (exhaustive) run(e *engine) {
	// A complete enumeration visits every index exactly once: the eval cache
	// could never hit, and populating it would retain a DeltaState per legal
	// placement until the search ends. Delta chaining below uses the previous
	// evaluation's state directly and needs no cache.
	e.cacheEvals = false
	n := e.space.Arrays()
	if n == 0 {
		return
	}
	raw := e.space.RawSize()
	workers := int64(e.workers)
	runWorker := func(w int64) {
		lo, hi := w*raw/workers, (w+1)*raw/workers
		if lo >= hi {
			return
		}
		radix := make([]int64, n)
		for j := 0; j < n; j++ {
			radix[j] = int64(len(e.space.ArrayOptions(j)))
		}
		std := make([]int64, n) // standard mixed-radix digits of the position
		pl := placement.New(n)
		var prev *core.DeltaState
		for pos := lo; pos < hi; pos++ {
			// Reflected-Gray decode: digit j counts up or down depending on
			// the parity of the more significant standard digits, so
			// consecutive positions differ in exactly one digit (the
			// mixed-radix generalization of g = b XOR b>>1).
			for j, rem := n-1, pos; j >= 0; j-- {
				std[j] = rem % radix[j]
				rem /= radix[j]
			}
			parity := int64(0)
			for j := 0; j < n; j++ {
				d := std[j]
				if parity%2 != 0 {
					d = radix[j] - 1 - d
				}
				pl.Spaces[j] = e.space.ArrayOptions(j)[d]
				parity += std[j]
			}
			if placement.Check(e.t, pl, e.cfg) != nil {
				continue
			}
			idx, ok := e.space.IndexOf(pl)
			if !ok {
				continue
			}
			c := cand{idx: idx, pl: pl}
			// Delta from the previous evaluation when the walk has moved
			// exactly one array since then; a skipped illegal run can
			// accumulate multi-array differences, which fall back to a
			// standalone evaluation.
			if prev != nil {
				pp := prev.Placement()
				moved, diff := -1, 0
				for j := 0; j < n && diff < 2; j++ {
					if pp.Spaces[j] != pl.Spaces[j] {
						moved, diff = j, diff+1
					}
				}
				if diff == 1 {
					c.prev, c.array, c.space = prev, moved, pl.Spaces[moved]
				}
			}
			_, st, ok := e.evalOne(int(w), c)
			if !ok {
				return
			}
			prev = st
		}
	}
	if e.workers == 1 {
		runWorker(0)
		return
	}
	var wg sync.WaitGroup
	for w := int64(0); w < workers; w++ {
		wg.Add(1)
		go func(w int64) { defer wg.Done(); runWorker(w) }(w)
	}
	wg.Wait()
}

// greedy is per-array coordinate descent from the sample placement.
type greedy struct{}

func (greedy) Spec() string { return "greedy" }

func (greedy) run(e *engine) {
	if e.space.Arrays() == 0 {
		return
	}
	sample := e.preds[0].SamplePlacement()
	idx, ok := e.space.IndexOf(sample)
	if !ok {
		return
	}
	curNS, curSt, ok := e.evalOne(0, cand{idx: idx, pl: sample.Clone()})
	if !ok {
		return
	}
	cur := curSt.Placement()
	for {
		// One round: every legal single-array move from the current
		// placement, generated in deterministic (array, option) order, each
		// a delta from the current state. Moves already evaluated in earlier
		// rounds are resubmitted — the engine answers them from its cache for
		// free, and they can never win a round: a cached score was produced
		// when the descent's current prediction was no better than now, so
		// it is ≥ curNS and fails the strict-improvement test below.
		var batch []cand
		for j := 0; j < e.space.Arrays(); j++ {
			for _, sp := range e.space.ArrayOptions(j) {
				if sp == cur.Spaces[j] {
					continue
				}
				next := cur.WithMove(trace.ArrayID(j), sp)
				if placement.Check(e.t, next, e.cfg) != nil {
					continue
				}
				ni, ok := e.space.IndexOf(next)
				if !ok {
					continue
				}
				batch = append(batch, cand{idx: ni, pl: next, prev: curSt, array: j, space: sp})
			}
		}
		if len(batch) == 0 {
			return
		}
		res := e.evalBatch(batch)
		if e.stopping() {
			return
		}
		best := -1
		for i, r := range res {
			if !r.ok {
				continue
			}
			if best < 0 || r.ns < res[best].ns ||
				(r.ns == res[best].ns && batch[i].idx < batch[best].idx) {
				best = i
			}
		}
		// Move only on strict improvement: the current prediction strictly
		// decreases every round, so no placement ever repeats as current and
		// the descent terminates.
		if best < 0 || res[best].ns >= curNS {
			return
		}
		cur, curNS, curSt = batch[best].pl, res[best].ns, res[best].st
	}
}

// beam is a width-limited frontier search over arrays in declaration order,
// with admissible-bound pruning against the current top-K.
type beam struct{ width int }

func (b beam) Spec() string { return "beam-" + strconv.Itoa(b.width) }

func (b beam) run(e *engine) {
	n := e.space.Arrays()
	if n == 0 {
		return
	}
	sample := e.preds[0].SamplePlacement()
	rootIdx, ok := e.space.IndexOf(sample)
	if !ok {
		return
	}
	lower := core.NewPlacementBound(e.preds[0])

	type state struct {
		pl  *placement.Placement
		st  *core.DeltaState
		ns  float64
		idx int64
	}
	rootNS, rootSt, ok := e.evalOne(0, cand{idx: rootIdx, pl: sample.Clone()})
	if !ok {
		return
	}
	// Every frontier state is a fully legal placement: arrays below the
	// current level are decided, arrays at or above it still hold the
	// sample's spaces. The root is the sample itself.
	frontier := []state{{pl: sample.Clone(), st: rootSt, ns: rootNS, idx: rootIdx}}

	for level := 0; level < n; level++ {
		// The prune threshold is the current global k-th best prediction —
		// computed at the level barrier, where all prior evaluations have
		// completed, so it is identical for every worker count.
		worstNS, full := e.worstKept()
		// Children are deduplicated within the level (two frontier parents
		// differing only at this level generate the same child) and against
		// the current frontier; a child evaluated at an earlier level but
		// since truncated may re-enter — the engine's eval cache answers it
		// for free, so rediscovered states stay in contention at no cost.
		inFrontier := make(map[int64]bool, len(frontier))
		for _, st := range frontier {
			inFrontier[st.idx] = true
		}
		gen := map[int64]bool{}
		var batch []cand
		for _, st := range frontier {
			for _, sp := range e.space.ArrayOptions(level) {
				if sp == st.pl.Spaces[level] {
					continue // the unchanged child is the parent itself
				}
				child := st.pl.WithMove(trace.ArrayID(level), sp)
				if placement.Check(e.t, child, e.cfg) != nil {
					continue
				}
				ci, ok := e.space.IndexOf(child)
				if !ok || gen[ci] || inFrontier[ci] {
					continue
				}
				gen[ci] = true
				// Admissible bound on every completion of the child's fixed
				// prefix: if even the best case cannot beat the worst kept
				// candidate, neither the child nor any descendant can enter
				// the top-K. Strictly greater only — an equal-time completion
				// could still displace a higher-index candidate.
				if full && lower.Bound(child, level+1) > worstNS {
					e.pruned.Add(1)
					continue
				}
				batch = append(batch, cand{idx: ci, pl: child, prev: st.st, array: level, space: sp})
			}
		}
		if len(batch) > 0 {
			res := e.evalBatch(batch)
			if e.stopping() {
				return
			}
			for i, r := range res {
				if r.ok {
					frontier = append(frontier, state{pl: batch[i].pl, st: r.st, ns: r.ns, idx: batch[i].idx})
				}
			}
		}
		// Parents stay in contention (keeping the sample's space at this
		// level); the next frontier is the best width states overall.
		sort.Slice(frontier, func(i, j int) bool {
			if frontier[i].ns != frontier[j].ns {
				return frontier[i].ns < frontier[j].ns
			}
			return frontier[i].idx < frontier[j].idx
		})
		if len(frontier) > b.width {
			frontier = frontier[:b.width]
		}
	}
}
