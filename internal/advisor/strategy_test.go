package advisor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"gpuhms/internal/core"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
)

// goldenKernels is the kernel set of the cross-strategy suite: the full
// corpus, trimmed under the race detector where prediction is an order of
// magnitude slower.
func goldenKernels() []string {
	if raceEnabled {
		return []string{"fft", "kmeans", "nbody", "neuralnet", "pathfinder"}
	}
	return kernels.Names()
}

// strategies under test, by canonical spec.
func goldenStrategies() []Strategy {
	return []Strategy{Exhaustive(), Greedy(), Beam(4)}
}

// searchKernel runs one search for the golden suite.
func searchKernel(t *testing.T, a *Advisor, name string, opt RankOptions) (*RankResult, error) {
	t.Helper()
	k := kernels.MustGet(name)
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return a.RankPlacements(context.Background(), tr, sample, opt)
}

// TestStrategyDeterminism pins the tentpole guarantee across every strategy:
// for every bundled kernel and every strategy, the entire RankResult —
// placements, exact predicted times, enumeration indices, coverage — is
// byte-identical as JSON between a sequential and an 8-worker search.
func TestStrategyDeterminism(t *testing.T) {
	a := testAdvisor(t)
	for _, name := range goldenKernels() {
		for _, strat := range goldenStrategies() {
			base, err := searchKernel(t, a, name, RankOptions{TopK: 3, Parallelism: 1, Strategy: strat})
			if err != nil {
				t.Fatalf("%s/%s workers=1: %v", name, strat.Spec(), err)
			}
			want, err := json.Marshal(base)
			if err != nil {
				t.Fatal(err)
			}
			got8, err := searchKernel(t, a, name, RankOptions{TopK: 3, Parallelism: 8, Strategy: strat})
			if err != nil {
				t.Fatalf("%s/%s workers=8: %v", name, strat.Spec(), err)
			}
			got, err := json.Marshal(got8)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("%s/%s: 8-worker result differs from sequential:\n got %s\nwant %s",
					name, strat.Spec(), got, want)
			}
			if base.Strategy != strat.Spec() {
				t.Errorf("%s: result strategy %q, want %q", name, base.Strategy, strat.Spec())
			}
		}
	}
}

// greedyRegret pins the measured top-1 regret of the greedy strategy on the
// kernels where coordinate descent lands in a local minimum instead of the
// exhaustive optimum. Everywhere else greedy must agree exactly.
var greedyRegret = map[string]float64{
	"spmv": 1.007, // measured 9552.32 / 9494.25 ns = 1.0061
}

// TestStrategyTop1Agreement pins search quality: on every bundled kernel,
// beam-4 finds the exhaustive search's top-1 placement exactly, and greedy
// either agrees or stays within its pinned regret — while evaluating no more
// candidates than the exhaustive search.
func TestStrategyTop1Agreement(t *testing.T) {
	a := testAdvisor(t)
	for _, name := range goldenKernels() {
		ex, err := searchKernel(t, a, name, RankOptions{TopK: 1})
		if err != nil {
			t.Fatalf("%s exhaustive: %v", name, err)
		}
		best := ex.Ranked[0]
		for _, strat := range []Strategy{Greedy(), Beam(4)} {
			got, err := searchKernel(t, a, name, RankOptions{TopK: 1, Parallelism: 4, Strategy: strat})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, strat.Spec(), err)
			}
			if len(got.Ranked) == 0 {
				t.Fatalf("%s/%s: empty ranking", name, strat.Spec())
			}
			agrees := got.Ranked[0].Index == best.Index && got.Ranked[0].PredictedNS == best.PredictedNS
			if regret, ok := greedyRegret[name]; ok && strat.Spec() == "greedy" {
				if got.Ranked[0].PredictedNS > best.PredictedNS*regret {
					t.Errorf("%s/greedy: top-1 %.2f ns exceeds pinned regret %.3fx of exhaustive %.2f ns",
						name, got.Ranked[0].PredictedNS, regret, best.PredictedNS)
				}
			} else if !agrees {
				t.Errorf("%s/%s: top-1 index %d (%.2f ns), exhaustive %d (%.2f ns)",
					name, strat.Spec(), got.Ranked[0].Index, got.Ranked[0].PredictedNS,
					best.Index, best.PredictedNS)
			}
			if got.Evaluated > ex.Evaluated {
				t.Errorf("%s/%s: evaluated %d > exhaustive %d",
					name, strat.Spec(), got.Evaluated, ex.Evaluated)
			}
			if got.Total != ex.Total {
				t.Errorf("%s/%s: total %d, want %d", name, strat.Spec(), got.Total, ex.Total)
			}
		}
	}
}

// TestStrategyEvaluatesFewer pins the point of sub-exhaustive search: on the
// largest bundled space (spmv, 288 legal placements) greedy and beam-4
// evaluate a small fraction of the space.
func TestStrategyEvaluatesFewer(t *testing.T) {
	a := testAdvisor(t)
	name := "spmv"
	if raceEnabled {
		name = "blackscholes" // 216 legal placements, cheaper predictions
	}
	for _, strat := range []Strategy{Greedy(), Beam(4)} {
		res, err := searchKernel(t, a, name, RankOptions{TopK: 1, Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat.Spec(), err)
		}
		if res.Evaluated*2 >= res.Total {
			t.Errorf("%s on %s: evaluated %d of %d — expected under half the space",
				strat.Spec(), name, res.Evaluated, res.Total)
		}
	}
}

// TestStrategyBudget pins uniform budget semantics: under every strategy, a
// MaxCandidates budget stops the search after exactly that many predictions
// and surfaces a *hmserr.BudgetError with true coverage, alongside the
// partial result.
func TestStrategyBudget(t *testing.T) {
	a := testAdvisor(t)
	k := kernels.MustGet("kmeans")
	tr := k.Trace(1)
	total := placement.CountLegal(tr, a.Cfg)
	for _, strat := range goldenStrategies() {
		for _, workers := range []int{1, 4} {
			res, err := searchKernel(t, a, "kmeans",
				RankOptions{MaxCandidates: 3, Parallelism: workers, Strategy: strat})
			var be *hmserr.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("%s workers=%d: err = %v, want *hmserr.BudgetError", strat.Spec(), workers, err)
			}
			if be.Evaluated != 3 || be.Total != total {
				t.Errorf("%s workers=%d: coverage %d/%d, want 3/%d",
					strat.Spec(), workers, be.Evaluated, be.Total, total)
			}
			if res == nil || res.Evaluated != 3 || len(res.Ranked) != 3 {
				t.Errorf("%s workers=%d: partial result %+v, want 3 evaluated+ranked",
					strat.Spec(), workers, res)
			}
		}
	}
}

// TestStrategyPreCanceled pins cancellation precedence for every strategy: a
// pre-canceled context yields ctx.Err() and a nil result.
func TestStrategyPreCanceled(t *testing.T) {
	a := testAdvisor(t)
	k := kernels.MustGet("kmeans")
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := a.PredictorContext(context.Background(), tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range goldenStrategies() {
		res, err := Search(ctx, a.Cfg, tr, pr, RankOptions{Parallelism: 4, Strategy: strat}, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", strat.Spec(), err)
		}
		if res != nil {
			t.Errorf("%s: canceled search returned a result", strat.Spec())
		}
	}
}

// TestParseStrategy pins the wire-spec grammar and its error class.
func TestParseStrategy(t *testing.T) {
	good := []struct{ spec, want string }{
		{"", "exhaustive"},
		{"exhaustive", "exhaustive"},
		{" Exhaustive ", "exhaustive"},
		{"greedy", "greedy"},
		{"GREEDY", "greedy"},
		{"beam", "beam-4"},
		{"beam-1", "beam-1"},
		{"beam-16", "beam-16"},
		{fmt.Sprintf("beam-%d", MaxBeamWidth), fmt.Sprintf("beam-%d", MaxBeamWidth)},
	}
	for _, tc := range good {
		s, err := ParseStrategy(tc.spec)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", tc.spec, err)
			continue
		}
		if s.Spec() != tc.want {
			t.Errorf("ParseStrategy(%q).Spec() = %q, want %q", tc.spec, s.Spec(), tc.want)
		}
	}
	bad := []string{
		"annealing", "beam-", "beam-0", "beam--3", "beam-4x", "beam-4.5",
		fmt.Sprintf("beam-%d", MaxBeamWidth+1), "exhaustive greedy",
	}
	for _, spec := range bad {
		if _, err := ParseStrategy(spec); !errors.Is(err, hmserr.ErrUnknownStrategy) {
			t.Errorf("ParseStrategy(%q): err = %v, want ErrUnknownStrategy", spec, err)
		}
	}
	// Constructor clamping mirrors the parser's range.
	if got := Beam(0).Spec(); got != fmt.Sprintf("beam-%d", DefaultBeamWidth) {
		t.Errorf("Beam(0).Spec() = %q", got)
	}
	if got := Beam(MaxBeamWidth + 1).Spec(); got != fmt.Sprintf("beam-%d", MaxBeamWidth) {
		t.Errorf("Beam(max+1).Spec() = %q", got)
	}
}

// TestDeprecatedWrappersRoute pins that the legacy surface is a pure
// veneer: Rank equals an exhaustive RankPlacements, and BestGreedy equals a
// greedy top-1 RankPlacements.
func TestDeprecatedWrappersRoute(t *testing.T) {
	a := testAdvisor(t)
	k := kernels.MustGet("kmeans")
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RankPlacements(context.Background(), tr, sample, RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	old, err := a.Rank(tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != len(res.Ranked) {
		t.Fatalf("Rank: %d rows, RankPlacements: %d", len(old), len(res.Ranked))
	}
	for i := range old {
		if old[i].Index != res.Ranked[i].Index || old[i].PredictedNS != res.Ranked[i].PredictedNS {
			t.Fatalf("Rank row %d = {%v %d}, want {%v %d}", i,
				old[i].PredictedNS, old[i].Index, res.Ranked[i].PredictedNS, res.Ranked[i].Index)
		}
	}

	gres, err := a.RankPlacements(context.Background(), tr, sample,
		RankOptions{TopK: 1, Strategy: Greedy()})
	if err != nil {
		t.Fatal(err)
	}
	best, evals, err := a.BestGreedy(tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	if best.Index != gres.Ranked[0].Index || best.PredictedNS != gres.Ranked[0].PredictedNS {
		t.Errorf("BestGreedy = {%v %d}, want {%v %d}",
			best.PredictedNS, best.Index, gres.Ranked[0].PredictedNS, gres.Ranked[0].Index)
	}
	if evals != gres.Evaluated {
		t.Errorf("BestGreedy evals = %d, want %d", evals, gres.Evaluated)
	}
}

// TestMixedStrategyRace hammers one shared Advisor with concurrent searches
// under different strategies and worker counts — the service's steady state.
// Meaningful under -race; also asserts each search's determinism envelope
// (its strategy echo and a non-empty ranking).
func TestMixedStrategyRace(t *testing.T) {
	a := testAdvisor(t)
	name := "neuralnet"
	k := kernels.MustGet(name)
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, strat := range []Strategy{Exhaustive(), Greedy(), Beam(2), Beam(4), Exhaustive(), Greedy()} {
		wg.Add(1)
		go func(strat Strategy, workers int) {
			defer wg.Done()
			res, err := a.RankPlacements(context.Background(), tr, sample,
				RankOptions{TopK: 2, Parallelism: workers, Strategy: strat})
			if err != nil {
				t.Errorf("%s: %v", strat.Spec(), err)
				return
			}
			if res.Strategy != strat.Spec() || len(res.Ranked) == 0 {
				t.Errorf("%s: got strategy %q with %d rows", strat.Spec(), res.Strategy, len(res.Ranked))
			}
		}(strat, 1+i%3)
	}
	wg.Wait()
}

// TestPlacementBoundAdmissible pins the beam pruner's safety: for every
// bundled kernel and every legal placement, the bound never exceeds the
// predictor's actual time — with the whole placement fixed and with every
// proper prefix fixed (the form the beam search prunes on).
func TestPlacementBoundAdmissible(t *testing.T) {
	a := testAdvisor(t)
	names := goldenKernels()
	if raceEnabled {
		names = []string{"fft", "kmeans", "pathfinder"}
	}
	for _, name := range names {
		k := kernels.MustGet(name)
		tr := k.Trace(1)
		sample, err := k.SamplePlacement(tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pr, err := a.PredictorContext(context.Background(), tr, sample)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bound := core.NewPlacementBound(pr)
		checked := 0
		placement.EnumerateSeq(tr, a.Cfg, func(pl *placement.Placement) bool {
			p, err := pr.Predict(pl)
			if err != nil {
				t.Fatalf("%s: predict %s: %v", name, pl.Format(tr), err)
			}
			for fixed := 0; fixed <= len(pl.Spaces); fixed++ {
				if b := bound.Bound(pl, fixed); b > p.TimeNS {
					t.Fatalf("%s: bound(%s, fixed=%d) = %.4f ns > predicted %.4f ns",
						name, pl.Format(tr), fixed, b, p.TimeNS)
				}
			}
			checked++
			return true
		})
		if checked == 0 {
			t.Fatalf("%s: no legal placements enumerated", name)
		}
	}
}
