package advisor

import (
	"context"
	"errors"
	"sync"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/kernels"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
)

var (
	advOnce sync.Once
	advErr  error
	adv     *Advisor
)

// testAdvisor trains one advisor per test binary — training is the expensive
// part, and every ranking test can share the read-only trained model.
func testAdvisor(t *testing.T) *Advisor {
	t.Helper()
	advOnce.Do(func() { adv, advErr = New(gpu.MustLookup("k80")) })
	if advErr != nil {
		t.Fatal(advErr)
	}
	return adv
}

// TestRankParallelDeterminism pins the tentpole guarantee: for every bundled
// kernel, the parallel ranking — placements, predicted times (exact float
// equality), and enumeration indices — is identical to the sequential one
// for any worker count, including worker counts above the space size.
func TestRankParallelDeterminism(t *testing.T) {
	a := testAdvisor(t)
	ctx := context.Background()
	names := kernels.Names()
	if raceEnabled {
		// The full corpus under the race detector blows the package test
		// timeout on small machines; a subset spanning tiny-to-medium
		// spaces keeps the concurrency coverage.
		names = []string{"fft", "nbody", "neuralnet", "pathfinder"}
	}
	for _, name := range names {
		k := kernels.MustGet(name)
		tr := k.Trace(1)
		sample, err := k.SamplePlacement(tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pr, err := a.PredictorContext(ctx, tr, sample)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, topK := range []int{0, 3} {
			base, err := RankPredictor(ctx, a.Cfg, tr, pr, RankOptions{TopK: topK, Parallelism: 1}, nil)
			if err != nil {
				t.Fatalf("%s sequential: %v", name, err)
			}
			for _, workers := range []int{2, 8} {
				got, err := RankPredictor(ctx, a.Cfg, tr, pr, RankOptions{TopK: topK, Parallelism: workers}, nil)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				if len(got) != len(base) {
					t.Fatalf("%s workers=%d topK=%d: %d ranked, want %d",
						name, workers, topK, len(got), len(base))
				}
				for i := range base {
					if !got[i].Placement.Equal(base[i].Placement) ||
						got[i].PredictedNS != base[i].PredictedNS ||
						got[i].Index != base[i].Index {
						t.Fatalf("%s workers=%d topK=%d: rank %d = {%s %v %d}, want {%s %v %d}",
							name, workers, topK, i,
							got[i].Placement.Format(tr), got[i].PredictedNS, got[i].Index,
							base[i].Placement.Format(tr), base[i].PredictedNS, base[i].Index)
					}
				}
			}
		}
	}
}

// TestRankParallelBudget pins the shared-budget semantics: with N workers
// racing for MaxCandidates tokens, exactly MaxCandidates predictions run and
// the error carries Evaluated/Total coverage, same as the sequential search.
func TestRankParallelBudget(t *testing.T) {
	a := testAdvisor(t)
	ctx := context.Background()
	k := kernels.MustGet("spmv")
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := a.PredictorContext(ctx, tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewCollector()
	ranked, err := RankPredictor(ctx, a.Cfg, tr, pr,
		RankOptions{MaxCandidates: 5, Parallelism: 4}, rec)
	if !errors.Is(err, hmserr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	var be *hmserr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *hmserr.BudgetError", err)
	}
	total := placement.CountLegal(tr, a.Cfg)
	if be.Evaluated != 5 || be.Total != total {
		t.Errorf("coverage = %d/%d, want 5/%d", be.Evaluated, be.Total, total)
	}
	if len(ranked) != 5 {
		t.Errorf("ranked %d placements, want 5", len(ranked))
	}
	last := rec.Snapshot().Search
	if last == nil || !last.Done || last.Evaluated != 5 || last.Total != total {
		t.Errorf("final progress = %+v, want Done 5/%d", last, total)
	}
}

// TestRankParallelPreCanceled pins cancellation precedence: a canceled
// context yields ctx.Err() and no ranking, regardless of worker count.
func TestRankParallelPreCanceled(t *testing.T) {
	a := testAdvisor(t)
	k := kernels.MustGet("spmv")
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := a.PredictorContext(context.Background(), tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ranked, err := RankPredictor(ctx, a.Cfg, tr, pr, RankOptions{Parallelism: 4}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ranked != nil {
		t.Errorf("canceled rank returned %d placements", len(ranked))
	}
}

// TestRankParallelWhileServing hammers the advisor the way the service does:
// one parallel ranking in flight while other goroutines predict through
// their own predictors of the same trained model. Meaningful under -race.
func TestRankParallelWhileServing(t *testing.T) {
	a := testAdvisor(t)
	ctx := context.Background()
	name := "spmv"
	if raceEnabled {
		name = "neuralnet" // spmv's 288-candidate rank is minutes under -race
	}
	k := kernels.MustGet(name)
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, err := a.PredictorContext(ctx, tr, sample)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 20; j++ {
				if _, err := pr.Predict(sample); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	if _, err := a.RankContext(ctx, tr, sample, RankOptions{TopK: 5, Parallelism: 4}); err != nil {
		t.Error(err)
	}
	wg.Wait()
}
