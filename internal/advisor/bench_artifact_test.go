package advisor

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// benchSetup profiles a kernel's sample placement once and returns everything
// a ranking benchmark needs.
func benchSetup(tb testing.TB, kernel string) (*Advisor, *trace.Trace, *placement.Placement) {
	tb.Helper()
	advOnce.Do(func() { adv, advErr = New(gpu.MustLookup("k80")) })
	if advErr != nil {
		tb.Fatal(advErr)
	}
	k := kernels.MustGet(kernel)
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		tb.Fatal(err)
	}
	return adv, tr, sample
}

// BenchmarkRankParallel measures the ranking engine's scaling curve: the
// sample is profiled once, then each iteration ranks the full spmv space
// (the largest bundled space, 288 candidates) at the given worker count.
func BenchmarkRankParallel(b *testing.B) {
	a, tr, sample := benchSetup(b, "spmv")
	pr, err := a.PredictorContext(context.Background(), tr, sample)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RankPredictor(context.Background(), a.Cfg, tr, pr,
					RankOptions{TopK: 10, Parallelism: workers}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// latencyStats summarizes one measured population (mirrors the service
// bench artifact's shape so the two reports read alike).
type latencyStats struct {
	N      int     `json:"n"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	MeanNS float64 `json:"mean_ns"`
}

func summarize(samples []time.Duration) latencyStats {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return float64(samples[i].Nanoseconds())
	}
	return latencyStats{
		N:      len(samples),
		P50NS:  pct(0.50),
		P99NS:  pct(0.99),
		MeanNS: float64(sum.Nanoseconds()) / float64(len(samples)),
	}
}

// rankKernelReport is one kernel's sequential-versus-parallel comparison in
// BENCH_rank.json.
type rankKernelReport struct {
	Space      int          `json:"space"`
	Workers    int          `json:"workers"`
	Sequential latencyStats `json:"sequential"`
	Parallel   latencyStats `json:"parallel"`
	SpeedupP50 float64      `json:"speedup_p50"`
}

// TestBenchRankArtifact measures the cold rank path — profile the sample,
// predict and rank the whole legal space — sequentially versus with
// workers=NumCPU, and writes the BENCH_rank.json artifact. Gated by
// BENCH_RANK_OUT so the ordinary test run stays fast; scripts/bench_rank.sh
// drives it.
//
// The ≥2.5x acceptance bound only holds where there are cores to scale onto,
// so it is asserted when NumCPU >= 4; on smaller machines the test instead
// checks that the parallel path costs no more than 2x sequential (the
// engine must degrade gracefully, not collapse, without cores). The
// allocs-per-eval before/after figures record the allocation-lean loop: the
// "before" constants were measured at the pre-optimization commit with the
// same testing.AllocsPerRun harness.
func TestBenchRankArtifact(t *testing.T) {
	out := os.Getenv("BENCH_RANK_OUT")
	if out == "" {
		t.Skip("set BENCH_RANK_OUT=/path/to/BENCH_rank.json to run")
	}
	a, _, _ := benchSetup(t, "spmv")
	ctx := context.Background()
	workers := runtime.NumCPU()

	timeRank := func(tr *trace.Trace, sample *placement.Placement, parallelism int) time.Duration {
		start := time.Now()
		if _, err := a.RankContext(ctx, tr, sample, RankOptions{TopK: 10, Parallelism: parallelism}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	const rounds = 10
	kernelReports := map[string]rankKernelReport{}
	for _, name := range []string{"fft", "spmv"} {
		k := kernels.MustGet(name)
		tr := k.Trace(1)
		sample, err := k.SamplePlacement(tr)
		if err != nil {
			t.Fatal(err)
		}
		seq := make([]time.Duration, 0, rounds)
		par := make([]time.Duration, 0, rounds)
		for i := 0; i < rounds; i++ {
			seq = append(seq, timeRank(tr, sample, 1))
			par = append(par, timeRank(tr, sample, workers))
		}
		r := rankKernelReport{
			Space:      placement.CountLegal(tr, a.Cfg),
			Workers:    workers,
			Sequential: summarize(seq),
			Parallel:   summarize(par),
		}
		r.SpeedupP50 = r.Sequential.P50NS / r.Parallel.P50NS
		kernelReports[name] = r
	}

	// Allocation-lean eval loop: allocations of one prediction today versus
	// the pre-optimization commit (measured with the same harness).
	k := kernels.MustGet("spmv")
	tr := k.Trace(1)
	sample, err := k.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := a.PredictorContext(ctx, tr, sample)
	if err != nil {
		t.Fatal(err)
	}
	predictAllocs := testing.AllocsPerRun(10, func() {
		if _, err := pr.Predict(sample); err != nil {
			t.Fatal(err)
		}
	})

	report := struct {
		Bench            string                      `json:"bench"`
		NumCPU           int                         `json:"num_cpu"`
		GOMAXPROCS       int                         `json:"gomaxprocs"`
		Kernels          map[string]rankKernelReport `json:"kernels"`
		PredictAllocs    float64                     `json:"predict_allocs_per_op"`
		PredictAllocsPre float64                     `json:"predict_allocs_per_op_before"`
		SimAllocsPre     float64                     `json:"sim_run_allocs_per_op_before"`
		SimAllocsNote    string                      `json:"sim_run_allocs_note"`
	}{
		Bench:            "advisor_rank_sequential_vs_parallel",
		NumCPU:           workers,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Kernels:          kernelReports,
		PredictAllocs:    predictAllocs,
		PredictAllocsPre: 74895,
		SimAllocsPre:     99967,
		SimAllocsNote:    "profiling run now draws from the pooled scratch (~87 allocs steady-state, was ~99967)",
	}

	for name, r := range kernelReports {
		if workers >= 4 {
			if r.SpeedupP50 < 2.5 && name == "spmv" {
				t.Errorf("%s: parallel cold rank only %.2fx faster (want >= 2.5x on %d CPUs)",
					name, r.SpeedupP50, workers)
			}
		} else if r.SpeedupP50 < 0.5 {
			t.Errorf("%s: parallel cold rank %.2fx sequential — worse than 2x overhead on %d CPUs",
				name, r.SpeedupP50, workers)
		}
	}
	if predictAllocs > 1000 {
		t.Errorf("predict allocates %.0f objects per op — the allocation-lean loop regressed (was 48, pre-optimization 74895)",
			predictAllocs)
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (spmv seq p50 %.2fms, parallel p50 %.2fms on %d CPUs, %.2fx; predict %.0f allocs/op)",
		out, kernelReports["spmv"].Sequential.P50NS/1e6, kernelReports["spmv"].Parallel.P50NS/1e6,
		workers, kernelReports["spmv"].SpeedupP50, predictAllocs)
}
