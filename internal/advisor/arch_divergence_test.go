package advisor

import (
	"context"
	"errors"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
)

// rankTop1 trains an advisor for a registry arch and returns the
// tablelookup kernel's exhaustive top-1 placement spec.
func rankTop1(t *testing.T, arch string, parallelism int) string {
	t.Helper()
	cfg, err := gpu.Lookup(arch)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := kernels.MustGet("tablelookup")
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adv.RankPlacements(context.Background(), tr, sample, RankOptions{TopK: 1, Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) == 0 {
		t.Fatalf("%s: empty ranking", arch)
	}
	return res.Ranked[0].Placement.Format(tr)
}

// TestGoldenArchDivergence pins the multi-arch scenario the registry exists
// for: the tablelookup kernel's best placement provably differs between the
// K80 and the chiplet. The exact winners are golden — an unexplained change
// to either side means the cross-arch model behavior moved.
func TestGoldenArchDivergence(t *testing.T) {
	k80 := rankTop1(t, "k80", 1)
	chiplet := rankTop1(t, "chiplet", 1)
	t.Logf("k80 top-1: %s", k80)
	t.Logf("chiplet top-1: %s", chiplet)
	if k80 == chiplet {
		t.Fatalf("top-1 placements identical across k80 and chiplet: %s", k80)
	}
	if want := "table:T,in:S,out:S"; k80 != want {
		t.Errorf("k80 top-1 = %s, want %s", k80, want)
	}
	if want := "table:S,in:S,out:S"; chiplet != want {
		t.Errorf("chiplet top-1 = %s, want %s", chiplet, want)
	}
}

// TestTableConstantCapacityAsymmetry proves the capacity asymmetry behind
// the tablelookup scenario: the 60 KiB table fits the K80's 64 KiB constant
// memory but overflows the chiplet's 32 KiB local constant segment — where
// the 64 KiB remote constant segment across the interposer still takes it.
func TestTableConstantCapacityAsymmetry(t *testing.T) {
	tr := kernels.MustGet("tablelookup").Trace(1)
	place := func(spec string) (*placement.Placement, error) {
		pl, err := placement.Parse(tr, spec)
		if err != nil {
			t.Fatal(err)
		}
		return pl, nil
	}
	pl, _ := place("table:C")
	if err := placement.Check(tr, pl, gpu.MustLookup("k80")); err != nil {
		t.Errorf("table:C on k80: %v, want legal", err)
	}
	if err := placement.Check(tr, pl, gpu.MustLookup("chiplet")); !errors.Is(err, hmserr.ErrCapacityExceeded) {
		t.Errorf("table:C on chiplet: %v, want ErrCapacityExceeded", err)
	}
	rc, _ := place("table:rC")
	if err := placement.Check(tr, rc, gpu.MustLookup("chiplet")); err != nil {
		t.Errorf("table:rC on chiplet: %v, want legal", err)
	}
	if err := placement.Check(tr, rc, gpu.MustLookup("k80")); err == nil {
		t.Error("table:rC on k80: legal, want rejected (no remote stacks)")
	}
}

// TestChipletRankDeterminism re-ranks the chiplet's grown placement space
// (remote variants included) with 1 and 8 workers and requires identical
// rankings — the cross-worker determinism contract of docs/PERFORMANCE.md,
// extended to the remote spaces.
func TestChipletRankDeterminism(t *testing.T) {
	seq := rankTop1(t, "chiplet", 1)
	par := rankTop1(t, "chiplet", 8)
	if seq != par {
		t.Fatalf("chiplet top-1 differs across worker counts: %q (sequential) vs %q (8 workers)", seq, par)
	}
}
