// Package advisor implements the high-level placement advisor: a trained
// full model (Eq 1–12) plus the measurer used to profile sample placements,
// with cancellable, budgeted searches over the legal placement space.
//
// It used to live in the gpuhms facade; it is an internal package so that
// other internal layers — the advisory service (internal/service), the CLIs —
// can share one implementation without importing the public facade. The
// facade re-exports every type here as an alias, so the public API is
// unchanged.
package advisor

import (
	"context"
	"fmt"
	"io"

	"gpuhms/internal/baseline"
	"gpuhms/internal/core"
	"gpuhms/internal/experiments"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
	"gpuhms/internal/sim"
	"gpuhms/internal/trace"
)

// checkConfig validates an architecture before internals (which assume a
// screened Config) run on it.
func checkConfig(cfg *gpu.Config) error {
	if cfg == nil {
		return fmt.Errorf("gpuhms: nil Config")
	}
	return cfg.Validate()
}

// Advisor is the high-level placement advisor: a full model whose overlap
// coefficients were trained on the bundled training placements, plus the
// measurer used to profile sample placements.
//
// An Advisor is safe for concurrent use once constructed, provided its
// fields are not mutated afterwards and any substituted Measurer is itself
// concurrency-safe: every search builds its own predictor and (with a nil
// Measurer) its own simulator, and the trained model is read-only.
type Advisor struct {
	Cfg   *gpu.Config
	Model *core.Model

	// Measurer profiles sample placements and serves MeasureOn; nil uses a
	// fresh ground-truth simulator. Substituting a fault-injecting wrapper
	// (internal/faults) here exercises the advisor under degraded counters.
	Measurer sim.Measurer

	// Recorder receives the advisor's telemetry: profiling-run simulator
	// events, per-prediction model term breakdowns, per-placement eval
	// spans, and search progress (including the Evaluated/Total record of
	// a budget-limited ranking). Nil disables recording. When Measurer is
	// nil, the recorder is also threaded into the fresh simulator.
	Recorder obs.Recorder
}

// rec normalizes the advisor's optional recorder.
func (a *Advisor) rec() obs.Recorder { return obs.OrNop(a.Recorder) }

// New trains the full model on the bundled Table IV training placements and
// returns a ready-to-use advisor.
func New(cfg *gpu.Config) (adv *Advisor, err error) {
	defer hmserr.Guard(&err)
	if err := checkConfig(cfg); err != nil {
		return nil, err
	}
	ctx := experiments.NewContext(cfg, 1)
	m, err := ctx.Model(baseline.Ours())
	if err != nil {
		return nil, fmt.Errorf("gpuhms: training advisor: %w", err)
	}
	return &Advisor{Cfg: cfg, Model: m}, nil
}

// NewFromSaved reconstructs an advisor from a previously saved model,
// skipping the training runs. The saved architecture must match.
func NewFromSaved(cfg *gpu.Config, r io.Reader) (*Advisor, error) {
	opts, err := core.LoadOptions(r, cfg.Name)
	if err != nil {
		return nil, err
	}
	return &Advisor{Cfg: cfg, Model: core.NewModel(cfg, opts)}, nil
}

// measurer returns the configured Measurer or a fresh simulator carrying
// the advisor's recorder.
func (a *Advisor) measurer() sim.Measurer {
	if a.Measurer != nil {
		return a.Measurer
	}
	s := sim.New(a.Cfg)
	s.Recorder = a.Recorder
	return s
}

// Ranked is one candidate placement with its predicted time. Index is the
// candidate's raw index in the enumeration of the placement space
// (placement.Space); equal predictions sort by it, which is what makes a
// ranking reproducible regardless of how many workers produced it. Every
// strategy assigns it — sub-exhaustive searches encode the candidates they
// construct back to their enumeration index (placement.Space.IndexOf), so
// rankings from different strategies order ties identically.
type Ranked struct {
	Placement   *placement.Placement
	PredictedNS float64
	Index       int64
}

// rankHeap is a max-heap on (predicted time, enumeration index): the root is
// the worst kept candidate — slowest, then highest index among equal
// predictions — evicted first when a better one arrives. Using the full
// total order here (not just the time) keeps the kept set identical across
// worker counts even when predictions tie at the top-K boundary.
type rankHeap []Ranked

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].PredictedNS != h[j].PredictedNS {
		return h[i].PredictedNS > h[j].PredictedNS
	}
	return h[i].Index > h[j].Index
}
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x any)   { *h = append(*h, x.(Ranked)) }
func (h *rankHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// RankOptions bounds RankPlacements' search over the m^n placement space.
type RankOptions struct {
	// TopK keeps only the K fastest predictions; 0 keeps the whole ranking.
	// With TopK set, memory stays O(K) no matter how large the legal
	// placement space is.
	TopK int
	// MaxCandidates stops the search after predicting this many placements
	// (0 = unlimited). When it triggers, the ranking seen so far is returned
	// together with a *hmserr.BudgetError (wrapping ErrBudgetExceeded) —
	// partial results are never silently reported as complete.
	MaxCandidates int
	// Parallelism is the number of workers evaluating candidates; values
	// below 2 run sequentially. Each worker predicts on its own clone of the
	// profiled model, and results are merged under the (PredictedNS, Index)
	// total order, so the ranking is identical for every worker count. Only
	// the subset covered by a MaxCandidates budget depends on it (see
	// Search).
	Parallelism int
	// Strategy selects how the search covers the space: nil or Exhaustive()
	// predicts every legal placement; Greedy() and Beam(w) visit a
	// model-guided subset and rank only what they visit (docs/SEARCH.md).
	Strategy Strategy
}

// RankPlacements profiles the sample placement, searches the legal placement
// space of the trace under opt, and returns the kept candidates
// fastest-first together with the search's coverage (strategy, evaluated,
// pruned, total). It is the advisor's one ranking entry point; Rank,
// RankContext, BestGreedy, and BestGreedyContext are deprecated wrappers
// around it.
//
// A canceled context aborts the profiling run and the search promptly and
// returns ctx.Err(). The placement space is streamed, so only the kept
// candidates are ever resident. With opt.Parallelism > 1 evaluations fan out
// over that many workers, each predicting on its own clone of the profiled
// model; the result is identical to the sequential search for every worker
// count (see Search, the engine behind this method).
//
// With Advisor.Recorder set, each evaluation is recorded as a span, the
// best-so-far prediction as a gauge, and progress reports (including the
// strategy and pruned-candidate count) flow throughout. When the
// MaxCandidates budget stops the search, the partial result is returned with
// a *hmserr.BudgetError, and the final progress report carries Evaluated
// versus Total, so a partial ranking's coverage survives in the obs snapshot
// instead of being lost with the error.
func (a *Advisor) RankPlacements(ctx context.Context, t *trace.Trace, sample *placement.Placement, opt RankOptions) (res *RankResult, err error) {
	defer hmserr.Guard(&err)
	if err := checkConfig(a.Cfg); err != nil {
		return nil, err
	}
	pr, err := a.PredictorContext(ctx, t, sample)
	if err != nil {
		return nil, err
	}
	return Search(ctx, a.Cfg, t, pr, opt, a.rec())
}

// Rank profiles the sample placement on the simulator, predicts every legal
// placement of the trace, and returns them fastest-first.
//
// Deprecated: use RankPlacements, which adds cancellation, strategy
// selection, and coverage reporting. Rank remains as a thin wrapper and
// behaves exactly as before.
func (a *Advisor) Rank(t *trace.Trace, sample *placement.Placement) ([]Ranked, error) {
	return a.RankContext(context.Background(), t, sample, RankOptions{})
}

// RankContext is Rank with cancellation, budgets, and optional parallelism.
//
// Deprecated: use RankPlacements, which additionally reports the search's
// strategy, pruning, and coverage. RankContext remains as a thin wrapper
// returning just the ranked slice.
func (a *Advisor) RankContext(ctx context.Context, t *trace.Trace, sample *placement.Placement, opt RankOptions) ([]Ranked, error) {
	res, err := a.RankPlacements(ctx, t, sample, opt)
	if res == nil {
		return nil, err
	}
	return res.Ranked, err
}

// Predictor profiles the sample placement and returns a predictor for
// arbitrary target placements of the trace.
func (a *Advisor) Predictor(t *trace.Trace, sample *placement.Placement) (*core.Predictor, error) {
	return a.PredictorContext(context.Background(), t, sample)
}

// PredictorContext is Predictor with cancellation of the profiling run.
func (a *Advisor) PredictorContext(ctx context.Context, t *trace.Trace, sample *placement.Placement) (pr *core.Predictor, err error) {
	defer hmserr.Guard(&err)
	if err := checkConfig(a.Cfg); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, hmserr.Wrap(hmserr.ErrInvalidTrace, "nil trace")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	rec := a.rec()
	var start float64
	if rec.Enabled() {
		start = rec.Now()
	}
	prof, err := a.measurer().RunContext(ctx, t, sample, sample)
	if err != nil {
		return nil, fmt.Errorf("gpuhms: profiling sample placement: %w", err)
	}
	if rec.Enabled() {
		rec.Span("advisor", "profile "+sample.Format(t), start, rec.Now()-start)
	}
	p, err := core.NewPredictor(a.Model, t, sample,
		core.SampleProfile{TimeNS: prof.TimeNS, Events: prof.Events})
	if err != nil {
		return nil, err
	}
	p.SetRecorder(a.Recorder)
	return p, nil
}

// MeasureOn runs a placement on the ground-truth simulator (the "hardware"
// measurement of the reproduction).
func (a *Advisor) MeasureOn(t *trace.Trace, sample, target *placement.Placement) (*sim.Measurement, error) {
	return a.MeasureOnContext(context.Background(), t, sample, target)
}

// MeasureOnContext is MeasureOn with cancellation of the simulator run.
func (a *Advisor) MeasureOnContext(ctx context.Context, t *trace.Trace, sample, target *placement.Placement) (m *sim.Measurement, err error) {
	defer hmserr.Guard(&err)
	return a.measurer().RunContext(ctx, t, sample, target)
}

// Save persists the advisor's trained model (options + Eq 11 coefficients)
// as JSON, tagged with the architecture name.
func (a *Advisor) Save(w io.Writer) error {
	return a.Model.Save(w, a.Cfg.Name)
}

// BestGreedy finds a good placement by greedy single-array moves instead of
// enumerating the m^n space. Returns the placement, its predicted time, and
// the number of model evaluations spent.
//
// Deprecated: use RankPlacements with RankOptions{Strategy: Greedy(),
// TopK: 1}; RankResult carries the same evaluation count as Evaluated.
// BestGreedy remains as a thin wrapper routed through it.
func (a *Advisor) BestGreedy(t *trace.Trace, sample *placement.Placement) (Ranked, int, error) {
	return a.BestGreedyContext(context.Background(), t, sample, 0)
}

// BestGreedyContext is BestGreedy with cancellation and an optional model
// evaluation budget (maxEvals <= 0 means unlimited). When the budget runs
// out, the best placement found so far is returned together with an error
// wrapping ErrBudgetExceeded.
//
// Deprecated: use RankPlacements with RankOptions{Strategy: Greedy(),
// TopK: 1, MaxCandidates: maxEvals}. BestGreedyContext remains as a thin
// wrapper routed through it.
func (a *Advisor) BestGreedyContext(ctx context.Context, t *trace.Trace, sample *placement.Placement, maxEvals int) (Ranked, int, error) {
	res, err := a.RankPlacements(ctx, t, sample, RankOptions{
		TopK: 1, MaxCandidates: maxEvals, Strategy: Greedy(),
	})
	if res == nil {
		return Ranked{}, 0, err
	}
	if len(res.Ranked) == 0 {
		return Ranked{}, res.Evaluated, err
	}
	return res.Ranked[0], res.Evaluated, err
}
