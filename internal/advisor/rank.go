package advisor

import (
	"container/heap"
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"gpuhms/internal/core"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// RankResult is the outcome of a ranking search: the kept candidates
// fastest-first plus the search's own coverage record, so a caller (or the
// advisory service) can report what a sub-exhaustive or budget-stopped
// search actually looked at without re-deriving it.
type RankResult struct {
	// Ranked holds the kept candidates fastest-first, tie-broken by
	// enumeration index.
	Ranked []Ranked
	// Strategy is the canonical spec of the strategy that ran
	// ("exhaustive", "greedy", "beam-4").
	Strategy string
	// Evaluated is the number of candidate placements actually predicted.
	Evaluated int
	// Pruned counts candidates a bounded search skipped because the
	// admissible lower bound proved they could not enter the top-K; 0 for
	// exhaustive and greedy searches.
	Pruned int
	// Deduped counts candidates a strategy re-submitted that were answered
	// from the per-search eval cache — free: no prediction ran and no budget
	// token was spent.
	Deduped int
	// Total is the size of the legal placement space. For a complete
	// exhaustive search it equals Evaluated; sub-exhaustive and
	// budget-stopped searches count it separately so Evaluated/Total is
	// their true coverage.
	Total int
}

// engine is the shared ranking machinery every Strategy drives: the indexed
// placement space, per-worker predictor clones and top-K heaps, the shared
// budget token pool, cancellation, and obs recording. A strategy decides
// *which* candidates to evaluate (and in what structure); the engine owns
// *how* one candidate is evaluated and kept.
type engine struct {
	inner  context.Context
	cancel context.CancelFunc

	cfg     *gpu.Config
	t       *trace.Trace
	space   *placement.Space
	preds   []*core.Predictor
	opt     RankOptions
	spec    string
	rec     obs.Recorder
	enabled bool
	workers int
	limit   int64

	granted   atomic.Int64 // prediction tokens handed out (budget pool)
	budgetHit atomic.Bool
	pruned    atomic.Int64
	dedup     atomic.Int64
	failOnce  sync.Once
	firstErr  error

	// cache maps a candidate's space index to its evaluation, so a placement
	// reachable through several strategy paths (duplicate beam children,
	// greedy rounds regenerating old neighbors) is predicted at most once per
	// search. Entries also retain the DeltaState, the parent handle for delta
	// evaluation of the candidate's own neighbors. Strategies that never
	// revisit an index (exhaustive) turn the cache off via cacheEvals: they
	// gain nothing from it, and retaining a DeltaState per candidate over a
	// complete enumeration would hold O(|space|) states alive for no reader.
	cacheMu    sync.Mutex
	cache      map[int64]*evalEntry
	cacheEvals bool

	obsMu    sync.Mutex // serializes best-so-far tracking and recording
	bestNS   float64
	bestName string

	heaps []rankHeap
}

func (e *engine) fail(err error) {
	e.failOnce.Do(func() {
		e.firstErr = err
		e.cancel()
	})
}

// stopping reports whether the search must not continue past the current
// barrier: canceled, failed, or out of budget.
func (e *engine) stopping() bool {
	return e.inner.Err() != nil || e.budgetHit.Load()
}

// evalEntry is one eval-cache slot. once makes concurrent submissions of the
// same index collapse to a single evaluation (the contribCache pattern):
// whichever caller wins the race runs the prediction, every other caller
// blocks until it completes and reads the stored result. ok is false when the
// evaluation stopped instead of completing (budget, cancellation, error) —
// terminal states for the whole search, so a poisoned entry is never a
// problem.
type evalEntry struct {
	once sync.Once
	ns   float64
	st   *core.DeltaState
	ok   bool
}

// cand is one candidate submitted for evaluation: the placement, its
// canonical space index, and — when the strategy derived it from an already
// evaluated placement by a single-array move — the parent state plus the
// move, which routes the evaluation through the delta fast path.
type cand struct {
	idx   int64
	pl    *placement.Placement
	prev  *core.DeltaState // parent state; nil forces a standalone eval
	array int              // moved array, meaningful only with prev
	space gpu.MemSpace     // its new space, meaningful only with prev
}

// evalOne evaluates one candidate on worker w's predictor: it takes a budget
// token, predicts (via delta from the candidate's parent state when one is
// attached), records, and feeds worker w's top-K heap. A candidate whose
// index is already in the per-search cache is free — no budget token, no
// prediction, no duplicate heap entry; the cached score and state come back
// as-is. Cache hits are served only while the search may continue: once the
// budget is exhausted (or the search canceled) every call returns not-ok, so
// a strategy cannot keep advancing rounds on cached answers after a budget
// stop. The returned ok is false when the search must stop (cancellation,
// budget, or a prediction error already routed through fail).
//
// Submitting the same index twice within one batch is safe: concurrent
// duplicates collapse onto one evalEntry and exactly one of them runs the
// prediction (see evalEntry); which worker's heap receives the candidate is
// racy, but the final ranking is not — the merged global top-K is contained
// in the union of per-worker top-Ks for any assignment.
func (e *engine) evalOne(w int, c cand) (float64, *core.DeltaState, bool) {
	if e.inner.Err() != nil || e.budgetHit.Load() {
		return 0, nil, false
	}
	if !e.cacheEvals {
		return e.evalCand(w, c)
	}
	e.cacheMu.Lock()
	ent, hit := e.cache[c.idx]
	if !hit {
		ent = &evalEntry{}
		e.cache[c.idx] = ent
	}
	e.cacheMu.Unlock()
	ran := false
	ent.once.Do(func() {
		ent.ns, ent.st, ent.ok = e.evalCand(w, c)
		ran = true
	})
	if !ran && ent.ok {
		e.dedup.Add(1)
		if e.enabled {
			e.rec.Add("advisor_dedup_hits_total", 1)
		}
	}
	return ent.ns, ent.st, ent.ok
}

// evalCand is the uncached evaluation behind evalOne: budget token,
// prediction, recording, heap maintenance.
func (e *engine) evalCand(w int, c cand) (float64, *core.DeltaState, bool) {
	// Take a budget token before predicting; handing back an over-limit
	// grant keeps the total number of predictions across all workers exactly
	// at the limit.
	if e.granted.Add(1) > e.limit && e.limit > 0 {
		e.granted.Add(-1)
		e.budgetHit.Store(true)
		return 0, nil, false
	}
	var start float64
	if e.enabled {
		start = e.rec.Now()
	}
	var res *core.Prediction
	var st *core.DeltaState
	var err error
	if c.prev != nil {
		res, st, err = e.preds[w].PredictDelta(c.prev, c.array, c.space)
	} else {
		res, st, err = e.preds[w].PredictState(c.pl)
	}
	if err != nil {
		e.fail(err)
		return 0, nil, false
	}
	if e.enabled {
		e.obsMu.Lock()
		if e.bestNS == 0 || res.TimeNS < e.bestNS {
			e.bestNS = res.TimeNS
			e.bestName = c.pl.Format(e.t)
			e.rec.Gauge("advisor_best_ns", e.bestNS)
		}
		e.rec.Add("advisor_evals_total", 1)
		e.rec.Span("advisor", "eval "+c.pl.Format(e.t), start, e.rec.Now()-start)
		e.rec.ReportProgress(obs.Progress{
			Evaluated: int(e.granted.Load()), BestNS: e.bestNS, Best: e.bestName,
			Strategy: e.spec, Pruned: int(e.pruned.Load()),
		})
		e.obsMu.Unlock()
	}
	// The candidate may be enumeration scratch; the state always holds a
	// private clone of it, so the heap shares that instead of cloning again.
	kept := &e.heaps[w]
	r := Ranked{PredictedNS: res.TimeNS, Index: c.idx}
	switch {
	case e.opt.TopK > 0 && len(*kept) == e.opt.TopK:
		root := &(*kept)[0]
		if r.PredictedNS < root.PredictedNS ||
			(r.PredictedNS == root.PredictedNS && r.Index < root.Index) {
			r.Placement = st.Placement()
			(*kept)[0] = r
			heap.Fix(kept, 0)
		}
	default:
		r.Placement = st.Placement()
		heap.Push(kept, r)
	}
	return res.TimeNS, st, true
}

// scored is one evalBatch outcome; ok mirrors evalOne's.
type scored struct {
	ns float64
	st *core.DeltaState
	ok bool
}

// evalBatch evaluates a batch of candidates across the engine's workers
// (item i on worker i mod w) and returns their scores in batch order. Every
// item is evaluated unless the search is stopping, so batch results — and
// anything a strategy derives from them — are identical for every worker
// count.
func (e *engine) evalBatch(batch []cand) []scored {
	out := make([]scored, len(batch))
	w := e.workers
	if w > len(batch) {
		w = len(batch)
	}
	if w <= 1 {
		for i := range batch {
			ns, st, ok := e.evalOne(0, batch[i])
			out[i] = scored{ns: ns, st: st, ok: ok}
			if !ok {
				break
			}
		}
		return out
	}
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := wi; i < len(batch); i += w {
				ns, st, ok := e.evalOne(wi, batch[i])
				out[i] = scored{ns: ns, st: st, ok: ok}
				if !ok {
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	return out
}

// worstKept returns the current global k-th best prediction (the pruning
// threshold) and whether the kept set is full. Must be called at a barrier —
// no evaluation in flight. The union of the worker heaps always contains the
// global top-K of everything evaluated so far, so the answer is identical
// for every worker count.
func (e *engine) worstKept() (float64, bool) {
	if e.opt.TopK <= 0 {
		return 0, false
	}
	var all []Ranked
	for _, h := range e.heaps {
		all = append(all, h...)
	}
	if len(all) < e.opt.TopK {
		return 0, false
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].PredictedNS != all[j].PredictedNS {
			return all[i].PredictedNS < all[j].PredictedNS
		}
		return all[i].Index < all[j].Index
	})
	return all[e.opt.TopK-1].PredictedNS, true
}

// Search is the ranking engine behind Advisor.RankPlacements: it runs
// opt.Strategy (nil = Exhaustive) over the legal placement space of t
// through pr and returns the kept candidates fastest-first, tie-broken by
// enumeration index, together with the search's coverage.
//
// With opt.Parallelism > 1 candidate evaluations fan out over that many
// workers, each predicting on a private clone of pr with a private top-K
// heap; every ordering decision (heap eviction, frontier selection, final
// sort) uses the (PredictedNS, Index) total order, so the result is
// identical to the sequential search for every worker count. The only
// worker-count-dependent behavior is *which* placements a MaxCandidates
// budget covers: the budget is a shared atomic token pool, so exactly
// MaxCandidates predictions run, but the evaluated subset follows worker
// interleaving rather than a deterministic prefix.
//
// Cancellation and budget semantics are uniform across strategies: a
// canceled ctx wins over any other stop cause, a prediction error cancels
// the remaining work and is returned as-is, and a budget stop returns the
// partial result with a *hmserr.BudgetError carrying Evaluated/Total
// coverage.
func Search(ctx context.Context, cfg *gpu.Config, t *trace.Trace, pr *core.Predictor, opt RankOptions, rec obs.Recorder) (*RankResult, error) {
	rec = obs.OrNop(rec)
	strat := opt.Strategy
	if strat == nil {
		strat = Exhaustive()
	}
	space := placement.NewSpace(t, cfg)

	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}
	if raw := space.RawSize(); raw > 0 && int64(workers) > raw {
		workers = int(raw)
	}
	preds := make([]*core.Predictor, workers)
	preds[0] = pr
	for w := 1; w < workers; w++ {
		preds[w] = pr.Clone()
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	e := &engine{
		inner:   inner,
		cancel:  cancel,
		cfg:     cfg,
		t:       t,
		space:   space,
		preds:   preds,
		opt:     opt,
		spec:    strat.Spec(),
		rec:     rec,
		enabled: rec.Enabled(),
		workers: workers,
		limit:   int64(opt.MaxCandidates),
		heaps:   make([]rankHeap, workers),
		cache:   make(map[int64]*evalEntry),
		// Strategies that never resubmit an index opt out in their run (the
		// exhaustive enumeration); everyone else benefits from dedup.
		cacheEvals: true,
	}

	strat.run(e)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.firstErr != nil {
		return nil, e.firstErr
	}

	candidates := int(e.granted.Load())
	out := make([]Ranked, 0, candidates)
	for _, h := range e.heaps {
		out = append(out, h...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PredictedNS != out[j].PredictedNS {
			return out[i].PredictedNS < out[j].PredictedNS
		}
		return out[i].Index < out[j].Index
	})
	if opt.TopK > 0 && len(out) > opt.TopK {
		out = out[:opt.TopK]
	}
	// Recompute the final best from the merged ranking so the Done report is
	// deterministic (the in-flight gauge tracked arrival order, not index
	// order, among equal predictions).
	bestNS, bestName := 0.0, ""
	if len(out) > 0 {
		bestNS = out[0].PredictedNS
		bestName = out[0].Placement.Format(t)
	}

	res := &RankResult{
		Ranked:    out,
		Strategy:  e.spec,
		Evaluated: candidates,
		Pruned:    int(e.pruned.Load()),
		Deduped:   int(e.dedup.Load()),
	}
	budget := e.budgetHit.Load()
	if budget || e.spec != "exhaustive" {
		// The search did not (necessarily) cover the whole legal space:
		// count it so Evaluated/Total reports the true coverage. A complete
		// exhaustive search covered exactly what it evaluated.
		res.Total = placement.CountLegal(t, cfg)
	} else {
		res.Total = candidates
	}

	rec.ReportProgress(obs.Progress{
		Evaluated: candidates, Total: res.Total, BestNS: bestNS, Best: bestName,
		Strategy: e.spec, Pruned: res.Pruned, Done: true,
	})
	if e.enabled {
		rec.Gauge("advisor_rank_evaluated", float64(candidates))
		rec.Gauge("advisor_rank_total", float64(res.Total))
		if res.Pruned > 0 {
			rec.Add("advisor_pruned_total", int64(res.Pruned))
		}
	}
	if budget {
		return res, &hmserr.BudgetError{Evaluated: candidates, Total: res.Total, What: "candidate placements"}
	}
	return res, nil
}

// RankPredictor is the legacy engine entry point: Search flattened to the
// ranked slice.
//
// Deprecated: use Search, which also reports the strategy, pruning, and
// coverage of the run; RankPredictor remains for callers that only need the
// ranking.
func RankPredictor(ctx context.Context, cfg *gpu.Config, t *trace.Trace, pr *core.Predictor, opt RankOptions, rec obs.Recorder) ([]Ranked, error) {
	res, err := Search(ctx, cfg, t, pr, opt, rec)
	if res == nil {
		return nil, err
	}
	return res.Ranked, err
}
