package advisor

import (
	"container/heap"
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"gpuhms/internal/core"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// RankPredictor is the ranking engine behind Advisor.RankContext: it streams
// the legal placement space of t through pr and returns the candidates
// fastest-first, tie-broken by enumeration index.
//
// With opt.Parallelism > 1 the raw space is sharded by stride — worker w of n
// covers raw indices congruent to w mod n — and each worker evaluates its
// shard on a private clone of pr, keeping a private top-K heap. The shards
// partition the space exactly, and every ordering decision (heap eviction,
// final sort) uses the (PredictedNS, Index) total order, so the merged result
// is identical to the sequential ranking for every worker count. The only
// worker-count-dependent behavior is *which* placements a MaxCandidates
// budget covers: the budget is a shared atomic token pool, so exactly
// MaxCandidates predictions run, but the evaluated subset follows the shard
// interleaving rather than the sequential prefix.
//
// Cancellation and budget semantics match the sequential search: a canceled
// ctx wins over any other stop cause, a worker error cancels the remaining
// shards and is returned as-is, and a budget stop returns the partial ranking
// with a *hmserr.BudgetError carrying Evaluated/Total coverage.
func RankPredictor(ctx context.Context, cfg *gpu.Config, t *trace.Trace, pr *core.Predictor, opt RankOptions, rec obs.Recorder) ([]Ranked, error) {
	rec = obs.OrNop(rec)
	enabled := rec.Enabled()
	space := placement.NewSpace(t, cfg)

	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}
	if raw := space.RawSize(); raw > 0 && int64(workers) > raw {
		workers = int(raw)
	}

	preds := make([]*core.Predictor, workers)
	preds[0] = pr
	for w := 1; w < workers; w++ {
		preds[w] = pr.Clone()
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		granted   atomic.Int64 // prediction tokens handed out (budget pool)
		budgetHit atomic.Bool
		failOnce  sync.Once
		firstErr  error

		obsMu    sync.Mutex // serializes best-so-far tracking and recording
		bestNS   float64
		bestName string
	)
	limit := int64(opt.MaxCandidates)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	heaps := make([]rankHeap, workers)
	runWorker := func(w int) {
		p := preds[w]
		var kept rankHeap
		space.EnumerateShard(w, workers, func(idx int64, pl *placement.Placement) bool {
			if inner.Err() != nil {
				return false
			}
			// Take a budget token before predicting; handing back an
			// over-limit grant keeps the total number of predictions across
			// all workers exactly at the limit.
			if granted.Add(1) > limit && limit > 0 {
				granted.Add(-1)
				budgetHit.Store(true)
				return false
			}
			var start float64
			if enabled {
				start = rec.Now()
			}
			res, e := p.Predict(pl)
			if e != nil {
				fail(e)
				return false
			}
			if enabled {
				obsMu.Lock()
				if bestNS == 0 || res.TimeNS < bestNS {
					bestNS = res.TimeNS
					bestName = pl.Format(t)
					rec.Gauge("advisor_best_ns", bestNS)
				}
				rec.Add("advisor_evals_total", 1)
				rec.Span("advisor", "eval "+pl.Format(t), start, rec.Now()-start)
				rec.ReportProgress(obs.Progress{Evaluated: int(granted.Load()), BestNS: bestNS, Best: bestName})
				obsMu.Unlock()
			}
			// The yielded placement is the shard's scratch: clone only when
			// the candidate actually enters the heap.
			c := Ranked{PredictedNS: res.TimeNS, Index: idx}
			switch {
			case opt.TopK > 0 && len(kept) == opt.TopK:
				root := &kept[0]
				if c.PredictedNS < root.PredictedNS ||
					(c.PredictedNS == root.PredictedNS && c.Index < root.Index) {
					c.Placement = pl.Clone()
					kept[0] = c
					heap.Fix(&kept, 0)
				}
			default:
				c.Placement = pl.Clone()
				heap.Push(&kept, c)
			}
			return true
		})
		heaps[w] = kept
	}

	if workers == 1 {
		runWorker(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) { defer wg.Done(); runWorker(w) }(w)
		}
		wg.Wait()
	}

	if e := ctx.Err(); e != nil {
		return nil, e
	}
	if firstErr != nil {
		return nil, firstErr
	}

	candidates := int(granted.Load())
	out := make([]Ranked, 0, candidates)
	for _, h := range heaps {
		out = append(out, h...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PredictedNS != out[j].PredictedNS {
			return out[i].PredictedNS < out[j].PredictedNS
		}
		return out[i].Index < out[j].Index
	})
	if opt.TopK > 0 && len(out) > opt.TopK {
		out = out[:opt.TopK]
	}
	// Recompute the final best from the merged ranking so the Done report is
	// deterministic (the in-flight gauge tracked arrival order, not index
	// order, among equal predictions).
	bestNS, bestName = 0, ""
	if len(out) > 0 {
		bestNS = out[0].PredictedNS
		bestName = out[0].Placement.Format(t)
	}
	if budgetHit.Load() {
		// The search stopped on budget: count the legal space it would have
		// covered, so the partial ranking reports its coverage
		// (Evaluated/Total) instead of losing it.
		total := placement.CountLegal(t, cfg)
		stopErr := &hmserr.BudgetError{Evaluated: candidates, Total: total, What: "candidate placements"}
		rec.ReportProgress(obs.Progress{
			Evaluated: candidates, Total: total, BestNS: bestNS, Best: bestName, Done: true,
		})
		if enabled {
			rec.Gauge("advisor_rank_evaluated", float64(candidates))
			rec.Gauge("advisor_rank_total", float64(total))
		}
		return out, stopErr
	}
	if enabled {
		rec.Gauge("advisor_rank_evaluated", float64(candidates))
		rec.Gauge("advisor_rank_total", float64(candidates))
		rec.ReportProgress(obs.Progress{
			Evaluated: candidates, Total: candidates, BestNS: bestNS, Best: bestName, Done: true,
		})
	}
	return out, nil
}
