package advisor

import (
	"container/heap"
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"gpuhms/internal/core"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// RankResult is the outcome of a ranking search: the kept candidates
// fastest-first plus the search's own coverage record, so a caller (or the
// advisory service) can report what a sub-exhaustive or budget-stopped
// search actually looked at without re-deriving it.
type RankResult struct {
	// Ranked holds the kept candidates fastest-first, tie-broken by
	// enumeration index.
	Ranked []Ranked
	// Strategy is the canonical spec of the strategy that ran
	// ("exhaustive", "greedy", "beam-4").
	Strategy string
	// Evaluated is the number of candidate placements actually predicted.
	Evaluated int
	// Pruned counts candidates a bounded search skipped because the
	// admissible lower bound proved they could not enter the top-K; 0 for
	// exhaustive and greedy searches.
	Pruned int
	// Total is the size of the legal placement space. For a complete
	// exhaustive search it equals Evaluated; sub-exhaustive and
	// budget-stopped searches count it separately so Evaluated/Total is
	// their true coverage.
	Total int
}

// engine is the shared ranking machinery every Strategy drives: the indexed
// placement space, per-worker predictor clones and top-K heaps, the shared
// budget token pool, cancellation, and obs recording. A strategy decides
// *which* candidates to evaluate (and in what structure); the engine owns
// *how* one candidate is evaluated and kept.
type engine struct {
	inner  context.Context
	cancel context.CancelFunc

	cfg     *gpu.Config
	t       *trace.Trace
	space   *placement.Space
	preds   []*core.Predictor
	opt     RankOptions
	spec    string
	rec     obs.Recorder
	enabled bool
	workers int
	limit   int64

	granted   atomic.Int64 // prediction tokens handed out (budget pool)
	budgetHit atomic.Bool
	pruned    atomic.Int64
	failOnce  sync.Once
	firstErr  error

	obsMu    sync.Mutex // serializes best-so-far tracking and recording
	bestNS   float64
	bestName string

	heaps []rankHeap
}

func (e *engine) fail(err error) {
	e.failOnce.Do(func() {
		e.firstErr = err
		e.cancel()
	})
}

// stopping reports whether the search must not continue past the current
// barrier: canceled, failed, or out of budget.
func (e *engine) stopping() bool {
	return e.inner.Err() != nil || e.budgetHit.Load()
}

// evalOne evaluates one candidate on worker w's predictor: it takes a budget
// token, predicts, records, and feeds worker w's top-K heap. The returned ok
// is false when the search must stop (cancellation, budget, or a prediction
// error already routed through fail).
func (e *engine) evalOne(w int, idx int64, pl *placement.Placement) (float64, bool) {
	if e.inner.Err() != nil {
		return 0, false
	}
	// Take a budget token before predicting; handing back an over-limit
	// grant keeps the total number of predictions across all workers exactly
	// at the limit.
	if e.granted.Add(1) > e.limit && e.limit > 0 {
		e.granted.Add(-1)
		e.budgetHit.Store(true)
		return 0, false
	}
	var start float64
	if e.enabled {
		start = e.rec.Now()
	}
	res, err := e.preds[w].Predict(pl)
	if err != nil {
		e.fail(err)
		return 0, false
	}
	if e.enabled {
		e.obsMu.Lock()
		if e.bestNS == 0 || res.TimeNS < e.bestNS {
			e.bestNS = res.TimeNS
			e.bestName = pl.Format(e.t)
			e.rec.Gauge("advisor_best_ns", e.bestNS)
		}
		e.rec.Add("advisor_evals_total", 1)
		e.rec.Span("advisor", "eval "+pl.Format(e.t), start, e.rec.Now()-start)
		e.rec.ReportProgress(obs.Progress{
			Evaluated: int(e.granted.Load()), BestNS: e.bestNS, Best: e.bestName,
			Strategy: e.spec, Pruned: int(e.pruned.Load()),
		})
		e.obsMu.Unlock()
	}
	// The candidate may be enumeration scratch: clone only when it actually
	// enters the heap.
	kept := &e.heaps[w]
	c := Ranked{PredictedNS: res.TimeNS, Index: idx}
	switch {
	case e.opt.TopK > 0 && len(*kept) == e.opt.TopK:
		root := &(*kept)[0]
		if c.PredictedNS < root.PredictedNS ||
			(c.PredictedNS == root.PredictedNS && c.Index < root.Index) {
			c.Placement = pl.Clone()
			(*kept)[0] = c
			heap.Fix(kept, 0)
		}
	default:
		c.Placement = pl.Clone()
		heap.Push(kept, c)
	}
	return res.TimeNS, true
}

// scored is one evalBatch outcome; ok mirrors evalOne's.
type scored struct {
	ns float64
	ok bool
}

// evalBatch evaluates a batch of candidates across the engine's workers
// (item i on worker i mod w) and returns their scores in batch order. Every
// item is evaluated unless the search is stopping, so batch results — and
// anything a strategy derives from them — are identical for every worker
// count.
func (e *engine) evalBatch(idxs []int64, pls []*placement.Placement) []scored {
	out := make([]scored, len(pls))
	w := e.workers
	if w > len(pls) {
		w = len(pls)
	}
	if w <= 1 {
		for i := range pls {
			ns, ok := e.evalOne(0, idxs[i], pls[i])
			out[i] = scored{ns: ns, ok: ok}
			if !ok {
				break
			}
		}
		return out
	}
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := wi; i < len(pls); i += w {
				ns, ok := e.evalOne(wi, idxs[i], pls[i])
				out[i] = scored{ns: ns, ok: ok}
				if !ok {
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	return out
}

// worstKept returns the current global k-th best prediction (the pruning
// threshold) and whether the kept set is full. Must be called at a barrier —
// no evaluation in flight. The union of the worker heaps always contains the
// global top-K of everything evaluated so far, so the answer is identical
// for every worker count.
func (e *engine) worstKept() (float64, bool) {
	if e.opt.TopK <= 0 {
		return 0, false
	}
	var all []Ranked
	for _, h := range e.heaps {
		all = append(all, h...)
	}
	if len(all) < e.opt.TopK {
		return 0, false
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].PredictedNS != all[j].PredictedNS {
			return all[i].PredictedNS < all[j].PredictedNS
		}
		return all[i].Index < all[j].Index
	})
	return all[e.opt.TopK-1].PredictedNS, true
}

// Search is the ranking engine behind Advisor.RankPlacements: it runs
// opt.Strategy (nil = Exhaustive) over the legal placement space of t
// through pr and returns the kept candidates fastest-first, tie-broken by
// enumeration index, together with the search's coverage.
//
// With opt.Parallelism > 1 candidate evaluations fan out over that many
// workers, each predicting on a private clone of pr with a private top-K
// heap; every ordering decision (heap eviction, frontier selection, final
// sort) uses the (PredictedNS, Index) total order, so the result is
// identical to the sequential search for every worker count. The only
// worker-count-dependent behavior is *which* placements a MaxCandidates
// budget covers: the budget is a shared atomic token pool, so exactly
// MaxCandidates predictions run, but the evaluated subset follows worker
// interleaving rather than a deterministic prefix.
//
// Cancellation and budget semantics are uniform across strategies: a
// canceled ctx wins over any other stop cause, a prediction error cancels
// the remaining work and is returned as-is, and a budget stop returns the
// partial result with a *hmserr.BudgetError carrying Evaluated/Total
// coverage.
func Search(ctx context.Context, cfg *gpu.Config, t *trace.Trace, pr *core.Predictor, opt RankOptions, rec obs.Recorder) (*RankResult, error) {
	rec = obs.OrNop(rec)
	strat := opt.Strategy
	if strat == nil {
		strat = Exhaustive()
	}
	space := placement.NewSpace(t, cfg)

	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}
	if raw := space.RawSize(); raw > 0 && int64(workers) > raw {
		workers = int(raw)
	}
	preds := make([]*core.Predictor, workers)
	preds[0] = pr
	for w := 1; w < workers; w++ {
		preds[w] = pr.Clone()
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	e := &engine{
		inner:   inner,
		cancel:  cancel,
		cfg:     cfg,
		t:       t,
		space:   space,
		preds:   preds,
		opt:     opt,
		spec:    strat.Spec(),
		rec:     rec,
		enabled: rec.Enabled(),
		workers: workers,
		limit:   int64(opt.MaxCandidates),
		heaps:   make([]rankHeap, workers),
	}

	strat.run(e)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.firstErr != nil {
		return nil, e.firstErr
	}

	candidates := int(e.granted.Load())
	out := make([]Ranked, 0, candidates)
	for _, h := range e.heaps {
		out = append(out, h...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PredictedNS != out[j].PredictedNS {
			return out[i].PredictedNS < out[j].PredictedNS
		}
		return out[i].Index < out[j].Index
	})
	if opt.TopK > 0 && len(out) > opt.TopK {
		out = out[:opt.TopK]
	}
	// Recompute the final best from the merged ranking so the Done report is
	// deterministic (the in-flight gauge tracked arrival order, not index
	// order, among equal predictions).
	bestNS, bestName := 0.0, ""
	if len(out) > 0 {
		bestNS = out[0].PredictedNS
		bestName = out[0].Placement.Format(t)
	}

	res := &RankResult{
		Ranked:    out,
		Strategy:  e.spec,
		Evaluated: candidates,
		Pruned:    int(e.pruned.Load()),
	}
	budget := e.budgetHit.Load()
	if budget || e.spec != "exhaustive" {
		// The search did not (necessarily) cover the whole legal space:
		// count it so Evaluated/Total reports the true coverage. A complete
		// exhaustive search covered exactly what it evaluated.
		res.Total = placement.CountLegal(t, cfg)
	} else {
		res.Total = candidates
	}

	rec.ReportProgress(obs.Progress{
		Evaluated: candidates, Total: res.Total, BestNS: bestNS, Best: bestName,
		Strategy: e.spec, Pruned: res.Pruned, Done: true,
	})
	if e.enabled {
		rec.Gauge("advisor_rank_evaluated", float64(candidates))
		rec.Gauge("advisor_rank_total", float64(res.Total))
		if res.Pruned > 0 {
			rec.Add("advisor_pruned_total", int64(res.Pruned))
		}
	}
	if budget {
		return res, &hmserr.BudgetError{Evaluated: candidates, Total: res.Total, What: "candidate placements"}
	}
	return res, nil
}

// RankPredictor is the legacy engine entry point: Search flattened to the
// ranked slice.
//
// Deprecated: use Search, which also reports the strategy, pruning, and
// coverage of the run; RankPredictor remains for callers that only need the
// ranking.
func RankPredictor(ctx context.Context, cfg *gpu.Config, t *trace.Trace, pr *core.Predictor, opt RankOptions, rec obs.Recorder) ([]Ranked, error) {
	res, err := Search(ctx, cfg, t, pr, opt, rec)
	if res == nil {
		return nil, err
	}
	return res.Ranked, err
}
