//go:build race

package advisor

// raceEnabled mirrors the race detector's build tag so the heavyweight
// all-kernel sweeps can shrink to representative subsets under -race, where
// every memory access costs an order of magnitude more.
const raceEnabled = true
