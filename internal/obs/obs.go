// Package obs is the instrumentation layer of the reproduction: structured
// run tracing, a metrics registry, and span timelines, threaded through the
// simulator (internal/sim), the analytical model (internal/core), and the
// placement search (internal/placement, the gpuhms facade).
//
// The paper's whole methodology is observability of a GPU run — nvprof
// counters and SASSI traces feeding analytical models. This package gives
// the reproduction the same first-class telemetry: where simulated cycles
// go, how a search progresses, and why a prediction diverged from the
// simulator.
//
// The design splits into three pieces:
//
//   - Recorder: the interface instrumented code talks to. The no-op
//     recorder (Nop) costs a predicted branch and zero allocations, so
//     instrumentation can stay compiled into hot paths.
//   - Registry: named counters, gauges, and fixed-bucket histograms that
//     snapshot to a stable struct and render as Prometheus text or JSON.
//   - Timeline: completed spans and instants on named tracks, exportable
//     as Chrome trace_event JSON (chrome://tracing, Perfetto) or CSV.
//
// Collector implements Recorder over a Registry plus a Timeline and is what
// callers hand to the Simulator, Predictor, and Advisor. Everything here is
// dependency-free (standard library only) and safe for concurrent use.
//
// Metric naming convention: snake_case `<subsystem>_<quantity>_<unit>`,
// with a `_total` suffix for monotonic counters — e.g. `sim_issue_slots_total`,
// `model_tcomp_cycles`, `advisor_best_ns`. See docs/OBSERVABILITY.md.
package obs

// Recorder is the sink instrumented code reports into. Implementations must
// be safe for concurrent use. Hot paths guard recording with Enabled(), so
// the disabled path is a single predictable branch:
//
//	if rec.Enabled() {
//		rec.Add("sim_steps_total", steps)
//	}
type Recorder interface {
	// Enabled reports whether recording has any effect. Callers may hoist
	// the answer out of loops; it must not change over a Recorder's life.
	Enabled() bool

	// Now returns nanoseconds since the recorder started — the wall-clock
	// timebase for spans recorded by the model and search layers. (The
	// simulator records in simulated nanoseconds instead; the two live on
	// separate tracks.) The no-op recorder returns 0.
	Now() float64

	// Add increments the named monotonic counter.
	Add(name string, delta int64)

	// Gauge sets the named gauge to its latest value.
	Gauge(name string, v float64)

	// Observe records one sample into the named histogram.
	Observe(name string, v float64)

	// Span records a completed span [startNS, startNS+durNS) on a track.
	Span(track, name string, startNS, durNS float64)

	// Instant records an instantaneous event on a track.
	Instant(track, name string, tsNS float64)

	// ReportProgress publishes search progress (best-so-far, budget
	// consumption). The latest value is kept and surfaced in snapshots.
	ReportProgress(p Progress)
}

// Progress is a search's progress report: how much of the candidate space
// has been covered and the best result so far. It is what survives a
// budget-limited search (ErrBudgetExceeded) instead of being lost.
type Progress struct {
	// Evaluated is the number of candidate placements actually predicted.
	Evaluated int `json:"evaluated"`
	// Total is the number of legal candidates in the enumerated space;
	// 0 while still unknown (streaming enumeration).
	Total int `json:"total,omitempty"`
	// BestNS is the best (lowest) predicted time seen so far, ns.
	BestNS float64 `json:"best_ns,omitempty"`
	// Best names the best placement seen so far (Placement.Format).
	Best string `json:"best,omitempty"`
	// Strategy names the search strategy producing this report ("exhaustive",
	// "greedy", "beam-4"); empty for searches predating strategy selection.
	Strategy string `json:"strategy,omitempty"`
	// Pruned counts candidate placements a bounded search skipped because an
	// admissible lower bound proved they could not enter the current top-K.
	// Always 0 for exhaustive searches.
	Pruned int `json:"pruned,omitempty"`
	// Done marks the final report of a search (complete or stopped).
	Done bool `json:"done,omitempty"`
}

// nop is the disabled recorder: every method is an empty body the compiler
// can see through, and the value carries no state, so instrumented code
// pays no allocation and no synchronization.
type nop struct{}

func (nop) Enabled() bool                         { return false }
func (nop) Now() float64                          { return 0 }
func (nop) Add(string, int64)                     {}
func (nop) Gauge(string, float64)                 {}
func (nop) Observe(string, float64)               {}
func (nop) Span(string, string, float64, float64) {}
func (nop) Instant(string, string, float64)       {}
func (nop) ReportProgress(Progress)               {}

// Nop returns the shared no-op Recorder. It is the default everywhere a
// recorder is optional: nil recorder fields normalize to Nop().
func Nop() Recorder { return nopRecorder }

var nopRecorder Recorder = nop{}

// OrNop normalizes an optional recorder: nil becomes Nop().
func OrNop(r Recorder) Recorder {
	if r == nil {
		return nopRecorder
	}
	return r
}
