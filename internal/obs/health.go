package obs

import (
	"runtime"
	"sort"
)

// Runtime health gauges, sampled at scrape time by the hook
// RegisterRuntimeHealth installs. They answer the first three questions of
// any "is this process healthy" triage — is it leaking goroutines, is the
// heap growing, is GC stalling requests — without a sidecar exporter.
const (
	// MetricRuntimeGoroutines gauges the live goroutine count. The soak
	// harness asserts it returns to baseline after a drain (no leaks).
	MetricRuntimeGoroutines = "runtime_goroutines"
	// MetricRuntimeHeapBytes gauges live heap allocations (HeapAlloc).
	MetricRuntimeHeapBytes = "runtime_heap_alloc_bytes"
	// MetricRuntimeGCPauseP99NS gauges the p99 of the last (up to) 256
	// stop-the-world GC pauses.
	MetricRuntimeGCPauseP99NS = "runtime_gc_pause_p99_ns"
	// MetricRuntimeGCTotal gauges completed GC cycles since process start.
	MetricRuntimeGCTotal = "runtime_gc_cycles_total"
)

// RegisterRuntimeHealth installs a scrape hook publishing the runtime
// health gauges above. Sampling happens at scrape time, not on a timer:
// an unscraped process pays nothing, and every scrape sees current values.
func RegisterRuntimeHealth(c *Collector) {
	c.AddScrapeHook(func(reg *Registry) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		reg.Gauge(MetricRuntimeGoroutines, float64(runtime.NumGoroutine()))
		reg.Gauge(MetricRuntimeHeapBytes, float64(ms.HeapAlloc))
		reg.Gauge(MetricRuntimeGCPauseP99NS, gcPauseP99(&ms))
		reg.Gauge(MetricRuntimeGCTotal, float64(ms.NumGC))
	})
}

// gcPauseP99 computes the p99 of the pauses retained in MemStats' circular
// PauseNs buffer (the most recent min(NumGC, 256) cycles).
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]float64, n)
	for i := 0; i < n; i++ {
		pauses[i] = float64(ms.PauseNs[i])
	}
	sort.Float64s(pauses)
	return quantile(pauses, 0.99)
}
