package obs

// Canonical metric names of the placement-advisory service (internal/service,
// cmd/hmsserved), following the package naming convention
// `<subsystem>_<quantity>_<unit>` with `_total` for monotonic counters.
// They are defined here, next to the registry, so the service, its tests,
// and the documentation (docs/SERVICE.md) agree on one spelling.
const (
	// MetricServiceRequestsTotal counts HTTP requests by the service,
	// whatever their outcome.
	MetricServiceRequestsTotal = "service_requests_total"
	// MetricServiceErrorsTotal counts requests answered with a 5xx status.
	MetricServiceErrorsTotal = "service_errors_total"
	// MetricServiceRejectedTotal counts requests shed with 429 because the
	// worker queue was full (the backpressure path).
	MetricServiceRejectedTotal = "service_rejected_total"
	// MetricServiceSearchesTotal counts ranking searches actually executed
	// (cache misses that reached an Advisor), the denominator of the
	// cache/singleflight effectiveness ratio.
	MetricServiceSearchesTotal = "service_searches_total"
	// MetricServiceCacheHitsTotal counts rank requests served from the LRU
	// result cache.
	MetricServiceCacheHitsTotal = "service_cache_hits_total"
	// MetricServiceCacheMissesTotal counts rank requests that missed the
	// cache (and either led a search or joined one in flight).
	MetricServiceCacheMissesTotal = "service_cache_misses_total"
	// MetricServiceCacheEvictionsTotal counts LRU evictions.
	MetricServiceCacheEvictionsTotal = "service_cache_evictions_total"
	// MetricServiceSingleflightSharedTotal counts requests that joined an
	// identical search already in flight instead of starting their own.
	MetricServiceSingleflightSharedTotal = "service_singleflight_shared_total"
	// MetricServiceQueueDepth gauges the worker pool's queued (not yet
	// running) jobs.
	MetricServiceQueueDepth = "service_queue_depth"
	// MetricServiceInflight gauges the jobs currently running on workers.
	MetricServiceInflight = "service_inflight"
	// MetricServiceQueueWaitNS is the histogram of time jobs spent queued
	// before a worker picked them up.
	MetricServiceQueueWaitNS = "service_queue_wait_ns"
	// MetricServiceRequestNS is the histogram of whole-request latencies
	// (decode to response) of the compute endpoints.
	MetricServiceRequestNS = "service_request_ns"
	// MetricServiceShedDeadlineTotal counts requests shed with 504 because
	// their remaining deadline budget could not cover the observed median
	// service time (doomed work rejected before wasting a worker).
	MetricServiceShedDeadlineTotal = "service_shed_deadline_total"
	// MetricServiceReady gauges readiness: 1 once every advisor is trained
	// and any snapshot restore has finished (GET /readyz flips to 200).
	MetricServiceReady = "service_ready"
	// MetricServiceSnapshotRestoredTotal counts warm-boot entries (cached
	// responses, trained models) restored from a snapshot.
	MetricServiceSnapshotRestoredTotal = "service_snapshot_entries_restored_total"
	// MetricServiceSnapshotSkippedTotal counts snapshot entries dropped by
	// checksum, framing, version, or schema validation. Nonzero after a boot
	// means the snapshot was damaged and the service degraded toward a cold
	// start instead of failing.
	MetricServiceSnapshotSkippedTotal = "service_snapshot_entries_skipped_total"
	// MetricServiceSnapshotWritesTotal counts successful snapshot writes
	// (periodic, SIGHUP-triggered, and shutdown-drain).
	MetricServiceSnapshotWritesTotal = "service_snapshot_writes_total"
	// MetricServiceSnapshotWriteErrorsTotal counts failed snapshot writes;
	// the previous on-disk snapshot stays intact when one fails.
	MetricServiceSnapshotWriteErrorsTotal = "service_snapshot_write_errors_total"
	// MetricServiceSnapshotBytes gauges the size of the last snapshot
	// successfully written.
	MetricServiceSnapshotBytes = "service_snapshot_bytes"
	// MetricServiceTraceSampledTotal counts requests whose per-stage spans
	// were recorded into the Chrome-trace timeline (every Nth request, per
	// the trace-sampling option). Every request gets an access-log line and
	// an X-Request-ID regardless.
	MetricServiceTraceSampledTotal = "service_trace_sampled_total"
	// MetricServiceFleetSolvesTotal counts fleet placement solves actually
	// executed (cache hits and joined singleflights excluded).
	MetricServiceFleetSolvesTotal = "service_fleet_solves_total"
)

// ServiceLatencyBuckets is the bucket layout of the service latency
// histograms: decades from 1µs to 100s (in nanoseconds). Queue waits sit in
// the low decades, cold searches in the high ones; DefaultBuckets tops out
// at ~16ms and would fold every slow search into +Inf.
var ServiceLatencyBuckets = []float64{
	1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
}

// RegisterServiceMetrics pre-registers the service histograms with the
// latency bucket layout (counters and gauges need no registration).
func RegisterServiceMetrics(r *Registry) {
	r.RegisterHistogram(MetricServiceQueueWaitNS, ServiceLatencyBuckets)
	r.RegisterHistogram(MetricServiceRequestNS, ServiceLatencyBuckets)
}

// FineLatencyBuckets returns a 1-2-5 log-spaced bucket layout from 1µs to
// 10s (in nanoseconds) — fine enough for a load generator's
// coordinated-omission-safe latency histograms, where the decade-wide
// ServiceLatencyBuckets would hide a p99 regression inside one bucket.
func FineLatencyBuckets() []float64 {
	var out []float64
	for decade := 1e3; decade <= 1e10; decade *= 10 {
		for _, m := range []float64{1, 2, 5} {
			out = append(out, decade*m)
		}
	}
	return out
}
