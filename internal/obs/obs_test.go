package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Add("a_total", 2)
	r.Add("a_total", 3)
	r.Gauge("g", 1.5)
	r.RegisterHistogram("h_ns", []float64{10, 100})
	r.Observe("h_ns", 5)
	r.Observe("h_ns", 50)
	r.Observe("h_ns", 500)

	s := r.Snapshot()
	if got := s.Counter("a_total"); got != 5 {
		t.Errorf("counter a_total = %d, want 5", got)
	}
	if got := s.GaugeValue("g"); got != 1.5 {
		t.Errorf("gauge g = %g, want 1.5", got)
	}
	h := s.Histogram("h_ns")
	if h == nil {
		t.Fatal("histogram h_ns missing from snapshot")
	}
	if h.Count != 3 || h.Sum != 555 {
		t.Errorf("histogram count/sum = %d/%g, want 3/555", h.Count, h.Sum)
	}
	want := []int64{1, 1, 1} // ≤10, ≤100, +Inf
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if got := h.Mean(); got != 185 {
		t.Errorf("mean = %g, want 185", got)
	}
}

func TestRegistryDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	r.Observe("x", 3)
	h := r.Snapshot().Histogram("x")
	if h == nil {
		t.Fatal("histogram x missing")
	}
	if len(h.Bounds) != len(DefaultBuckets) || len(h.Counts) != len(DefaultBuckets)+1 {
		t.Fatalf("default layout: %d bounds, %d counts", len(h.Bounds), len(h.Counts))
	}
}

func TestSnapshotPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Add("sim_steps_total", 7)
	r.Gauge("advisor_best_ns", 123.25)
	r.RegisterHistogram("model_tcomp_cycles", []float64{10, 100})
	r.Observe("model_tcomp_cycles", 42)

	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_steps_total counter\nsim_steps_total 7\n",
		"# TYPE advisor_best_ns gauge\nadvisor_best_ns 123.25\n",
		"# TYPE model_tcomp_cycles histogram\n",
		"model_tcomp_cycles_bucket{le=\"10\"} 0\n",
		"model_tcomp_cycles_bucket{le=\"100\"} 1\n",
		"model_tcomp_cycles_bucket{le=\"+Inf\"} 1\n",
		"model_tcomp_cycles_sum 42\n",
		"model_tcomp_cycles_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus text missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 1)
	r.Gauge("g", 2)
	r.Observe("h", 3)
	var b bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if s.Counter("c") != 1 || s.GaugeValue("g") != 2 || s.Histogram("h") == nil {
		t.Errorf("round-tripped snapshot lost data: %+v", s)
	}
}

func TestCollectorProgress(t *testing.T) {
	c := NewCollectorWithClock(func() float64 { return 0 })
	var seen []Progress
	c.OnProgress = func(p Progress) { seen = append(seen, p) }
	c.ReportProgress(Progress{Evaluated: 3, Total: 10, BestNS: 99})
	c.ReportProgress(Progress{Evaluated: 10, Total: 10, BestNS: 42, Done: true})
	if len(seen) != 2 {
		t.Fatalf("OnProgress called %d times, want 2", len(seen))
	}
	p, ok := c.Progress()
	if !ok || p.Evaluated != 10 || !p.Done {
		t.Errorf("latest progress = %+v (ok=%v)", p, ok)
	}
	s := c.Snapshot()
	if s.Search == nil || s.Search.BestNS != 42 {
		t.Errorf("snapshot did not carry progress: %+v", s.Search)
	}
}

func TestCollectorConcurrentUse(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("n_total", 1)
				c.Observe("h", float64(j))
				c.Span("t", "s", float64(j), 1)
				c.ReportProgress(Progress{Evaluated: j})
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Counter("n_total"); got != 800 {
		t.Errorf("n_total = %d, want 800", got)
	}
	if got := c.Timeline().Len(); got != 800 {
		t.Errorf("timeline has %d events, want 800", got)
	}
}

func TestTimelineCapDropsAndCounts(t *testing.T) {
	tl := NewTimeline()
	tl.MaxEvents = 4
	for i := 0; i < 10; i++ {
		tl.Span("t", "s", float64(i), 1)
	}
	if tl.Len() != 4 || tl.Dropped() != 6 {
		t.Errorf("len=%d dropped=%d, want 4/6", tl.Len(), tl.Dropped())
	}
}

// TestNopRecorderZeroAllocs pins the contract the simulator's hot loop
// relies on: the disabled recorder allocates nothing on any path.
func TestNopRecorderZeroAllocs(t *testing.T) {
	rec := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		if rec.Enabled() {
			t.Fatal("nop recorder claims enabled")
		}
		rec.Add("c", 1)
		rec.Gauge("g", 1)
		rec.Observe("h", 1)
		rec.Span("t", "s", 0, 1)
		rec.Instant("t", "i", 0)
		rec.ReportProgress(Progress{})
		_ = rec.Now()
	})
	if allocs != 0 {
		t.Errorf("no-op recorder path allocates %.1f per run, want 0", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil) != Nop() {
		t.Error("OrNop(nil) is not the shared nop")
	}
	c := NewCollector()
	if OrNop(c) != Recorder(c) {
		t.Error("OrNop did not pass through a live recorder")
	}
}

func TestPromFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{{1, "1"}, {1.5, "1.5"}, {0.25, "0.25"}, {math.Inf(1), "+Inf"}} {
		if got := promFloat(tc.v); got != tc.want {
			t.Errorf("promFloat(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
