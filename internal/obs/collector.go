package obs

import (
	"io"
	"sync"
	"time"
)

// Collector is the live Recorder: a metrics Registry plus a span Timeline
// and the latest search Progress, with export helpers for every artifact
// the CLI emits (-trace-out, -metrics-out). Hand one Collector to the
// Simulator, Predictor, and Advisor of a session and it accumulates the
// whole run.
type Collector struct {
	reg *Registry
	tl  *Timeline

	// OnProgress, when set, is called synchronously with every progress
	// report — the hook behind `hmsplace -progress`. Set it before the run
	// starts; the callback must not call back into the Collector's
	// progress path.
	OnProgress func(Progress)

	clock func() float64 // ns since start

	mu          sync.Mutex
	progress    Progress
	hasProgress bool

	hookMu sync.Mutex
	hooks  []func(*Registry)
}

// NewCollector returns a Collector on the wall clock.
func NewCollector() *Collector {
	start := time.Now()
	return newCollector(func() float64 { return float64(time.Since(start).Nanoseconds()) })
}

// NewCollectorWithClock returns a Collector whose Now() is the given clock
// (nanoseconds since an arbitrary start) — deterministic timelines for
// tests and golden files.
func NewCollectorWithClock(clock func() float64) *Collector {
	return newCollector(clock)
}

func newCollector(clock func() float64) *Collector {
	return &Collector{reg: NewRegistry(), tl: NewTimeline(), clock: clock}
}

// Registry exposes the collector's metrics registry (histogram layout
// registration, direct snapshots).
func (c *Collector) Registry() *Registry { return c.reg }

// Timeline exposes the collector's span timeline (event caps, raw access).
func (c *Collector) Timeline() *Timeline { return c.tl }

// Enabled implements Recorder: a Collector always records.
func (c *Collector) Enabled() bool { return true }

// Now implements Recorder with the collector's clock.
func (c *Collector) Now() float64 { return c.clock() }

// Add implements Recorder.
func (c *Collector) Add(name string, delta int64) { c.reg.Add(name, delta) }

// Gauge implements Recorder.
func (c *Collector) Gauge(name string, v float64) { c.reg.Gauge(name, v) }

// Observe implements Recorder.
func (c *Collector) Observe(name string, v float64) { c.reg.Observe(name, v) }

// Span implements Recorder.
func (c *Collector) Span(track, name string, startNS, durNS float64) {
	c.tl.Span(track, name, startNS, durNS)
}

// Instant implements Recorder.
func (c *Collector) Instant(track, name string, tsNS float64) {
	c.tl.Instant(track, name, tsNS)
}

// ReportProgress implements Recorder: the latest report is kept (surfaced
// by Snapshot) and forwarded to OnProgress.
func (c *Collector) ReportProgress(p Progress) {
	c.mu.Lock()
	c.progress = p
	c.hasProgress = true
	cb := c.OnProgress
	c.mu.Unlock()
	if cb != nil {
		cb(p)
	}
}

// Progress returns the latest progress report and whether one was made.
func (c *Collector) Progress() (Progress, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progress, c.hasProgress
}

// AddScrapeHook registers a function run at the start of every Snapshot
// (and therefore every /metrics scrape), before the registry is copied.
// Hooks publish values that are only worth computing on demand — runtime
// health gauges, rolling-window SLO quantiles — instead of on every
// request. Hooks must be safe for concurrent use and fast: they run inline
// with the scrape.
func (c *Collector) AddScrapeHook(fn func(*Registry)) {
	c.hookMu.Lock()
	c.hooks = append(c.hooks, fn)
	c.hookMu.Unlock()
}

// Snapshot copies the collector's metrics, attaching the latest search
// progress and the timeline's bookkeeping gauges. Scrape hooks run first,
// so sampled-at-scrape gauges are current in the copy.
func (c *Collector) Snapshot() *Snapshot {
	c.hookMu.Lock()
	hooks := make([]func(*Registry), len(c.hooks))
	copy(hooks, c.hooks)
	c.hookMu.Unlock()
	for _, fn := range hooks {
		fn(c.reg)
	}
	c.reg.Gauge("obs_timeline_events", float64(c.tl.Len()))
	if d := c.tl.Dropped(); d > 0 {
		c.reg.Gauge("obs_timeline_dropped", float64(d))
	}
	s := c.reg.Snapshot()
	c.mu.Lock()
	if c.hasProgress {
		p := c.progress
		s.Search = &p
	}
	c.mu.Unlock()
	return s
}

// WriteMetricsText renders the current snapshot as Prometheus text.
func (c *Collector) WriteMetricsText(w io.Writer) error {
	return c.Snapshot().WritePrometheus(w)
}

// WriteMetricsJSON renders the current snapshot as JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	return c.Snapshot().WriteJSON(w)
}

// WriteChromeTrace renders the timeline as Chrome trace_event JSON.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return c.tl.WriteChromeTrace(w)
}

// WriteCSV renders the timeline as CSV.
func (c *Collector) WriteCSV(w io.Writer) error {
	return c.tl.WriteCSV(w)
}
