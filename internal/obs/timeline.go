package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// DefaultMaxEvents bounds a Timeline's retained events so an instrumented
// simulator run over a huge kernel cannot exhaust memory; later events are
// counted but dropped. Override with Timeline.MaxEvents before recording.
const DefaultMaxEvents = 1 << 20

// EventKind distinguishes timeline records.
type EventKind byte

const (
	// SpanEvent is a completed interval (Chrome "X" complete event).
	SpanEvent EventKind = 'X'
	// InstantEvent is a point in time (Chrome "i" instant event).
	InstantEvent EventKind = 'i'
	// FlowStartEvent opens a flow arrow (Chrome "s" event): a causal link
	// from this track to the FlowEndEvent sharing its ID — e.g. a service
	// request handing a search off to a pool worker.
	FlowStartEvent EventKind = 's'
	// FlowEndEvent terminates a flow arrow (Chrome "f" event).
	FlowEndEvent EventKind = 'f'
)

// Event is one timeline record. Timestamps and durations are nanoseconds on
// the track's own timebase (simulated time for simulator tracks, wall time
// since the collector started for model/search tracks).
type Event struct {
	Track string
	Name  string
	Kind  EventKind
	TsNS  float64
	DurNS float64
	// ID pairs a FlowStartEvent with its FlowEndEvent; ignored for spans
	// and instants.
	ID uint64
}

// Timeline accumulates spans and instants for export. Safe for concurrent
// use.
type Timeline struct {
	mu sync.Mutex
	// MaxEvents caps retained events (0 means DefaultMaxEvents). Set it
	// before recording; changing it mid-run is racy.
	MaxEvents int
	events    []Event
	dropped   int64
}

// NewTimeline returns an empty timeline with the default event cap.
func NewTimeline() *Timeline { return &Timeline{} }

func (t *Timeline) add(e Event) {
	t.mu.Lock()
	max := t.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	if len(t.events) >= max {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// Span records a completed span.
func (t *Timeline) Span(track, name string, startNS, durNS float64) {
	if startNS < 0 {
		startNS = 0
	}
	if durNS < 0 {
		durNS = 0
	}
	t.add(Event{Track: track, Name: name, Kind: SpanEvent, TsNS: startNS, DurNS: durNS})
}

// Instant records a point event.
func (t *Timeline) Instant(track, name string, tsNS float64) {
	if tsNS < 0 {
		tsNS = 0
	}
	t.add(Event{Track: track, Name: name, Kind: InstantEvent, TsNS: tsNS})
}

// FlowStart opens a flow arrow on a track. The arrow renders in
// Perfetto/chrome://tracing from here to the FlowEnd recorded with the same
// id (and the same name), visualizing a handoff between tracks — the
// service uses it to link a request's submit to the pool worker that picked
// the search up.
func (t *Timeline) FlowStart(track, name string, id uint64, tsNS float64) {
	if tsNS < 0 {
		tsNS = 0
	}
	t.add(Event{Track: track, Name: name, Kind: FlowStartEvent, TsNS: tsNS, ID: id})
}

// FlowEnd terminates the flow arrow opened by FlowStart with the same id.
func (t *Timeline) FlowEnd(track, name string, id uint64, tsNS float64) {
	if tsNS < 0 {
		tsNS = 0
	}
	t.add(Event{Track: track, Name: name, Kind: FlowEndEvent, TsNS: tsNS, ID: id})
}

// Len returns the number of retained events.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded past MaxEvents.
func (t *Timeline) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the retained events sorted by (TsNS, Track,
// Name) — the stable order both exporters use.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TsNS != evs[j].TsNS {
			return evs[i].TsNS < evs[j].TsNS
		}
		if evs[i].Track != evs[j].Track {
			return evs[i].Track < evs[j].Track
		}
		return evs[i].Name < evs[j].Name
	})
	return evs
}

// chromeEvent is the trace_event JSON shape (ts/dur in microseconds, as the
// Chrome trace format specifies).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// tracePid is the single process id all tracks share; tracks map to
// Chrome/Perfetto threads.
const tracePid = 1

// WriteChromeTrace renders the timeline as Chrome trace_event JSON, loadable
// in chrome://tracing and Perfetto (ui.perfetto.dev). Tracks become named
// threads (thread_name metadata events); spans are complete "X" events and
// instants "i" events, emitted in non-decreasing ts order.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()

	// Assign tids to tracks in sorted-name order so output is deterministic.
	trackSet := map[string]int{}
	var tracks []string
	for _, e := range evs {
		if _, ok := trackSet[e.Track]; !ok {
			trackSet[e.Track] = 0
			tracks = append(tracks, e.Track)
		}
	}
	sort.Strings(tracks)
	for i, name := range tracks {
		trackSet[name] = i + 1
	}

	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: make([]chromeEvent, 0, len(evs)+len(tracks))}
	for _, name := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: trackSet[name],
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name,
			Ph:   string(rune(e.Kind)),
			Ts:   e.TsNS / 1e3, // ns → µs
			Pid:  tracePid,
			Tid:  trackSet[e.Track],
		}
		switch e.Kind {
		case SpanEvent:
			ce.Dur = e.DurNS / 1e3
		case InstantEvent:
			ce.S = "t" // thread-scoped instant
		case FlowStartEvent:
			ce.ID = strconv.FormatUint(e.ID, 16)
		case FlowEndEvent:
			ce.ID = strconv.FormatUint(e.ID, 16)
			ce.BP = "e" // bind to the enclosing slice, so the arrow lands on the span
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteCSV renders the timeline as CSV with the header
// track,name,kind,ts_ns,dur_ns, rows in non-decreasing ts_ns order.
func (t *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"track", "name", "kind", "ts_ns", "dur_ns"}); err != nil {
		return err
	}
	for _, e := range t.Events() {
		rec := []string{
			e.Track,
			e.Name,
			string(rune(e.Kind)),
			strconv.FormatFloat(e.TsNS, 'f', -1, 64),
			strconv.FormatFloat(e.DurNS, 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("obs: csv export: %w", err)
	}
	return nil
}
