package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// DefaultBuckets is the fixed bucket layout histograms are created with
// unless RegisterHistogram chose another: powers of four from 1 up to ~16M,
// wide enough to cover cycle counts, nanosecond latencies, and event counts
// without per-metric tuning. Values beyond the last bound land in the
// implicit +Inf bucket.
var DefaultBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// Registry is a set of named counters, gauges, and histograms. All methods
// are safe for concurrent use; metrics are created on first touch.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// histogram is a fixed-bucket cumulative-free histogram (per-bucket counts;
// cumulative sums are computed at render time, Prometheus-style).
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []int64   // len(bounds)+1, last is the +Inf bucket
	sum    float64
	n      int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Add increments a counter.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets a gauge to its latest value.
func (r *Registry) Gauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// RegisterHistogram creates (or replaces) a histogram with an explicit
// bucket layout; bounds must be ascending upper edges. Observe on an
// unregistered name uses DefaultBuckets.
func (r *Registry) RegisterHistogram(name string, bounds []float64) {
	h := &histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]int64, len(h.bounds)+1)
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Observe records a sample into a histogram.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histogram{bounds: DefaultBuckets, counts: make([]int64, len(DefaultBuckets)+1)}
		r.hists[name] = h
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	r.mu.Unlock()
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistSnap is one histogram in a Snapshot. Counts[i] holds the samples with
// value ≤ Bounds[i]; the final entry of Counts is the +Inf bucket.
type HistSnap struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Mean returns the histogram's sample mean (0 when empty).
func (h *HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a stable, renderable copy of a registry's state, with every
// section sorted by metric name.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`

	// Search carries the latest search progress report, when a Collector
	// produced the snapshot and a search published one (the
	// Evaluated/Total record of a budget-limited ranking).
	Search *Progress `json:"search,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	for name, v := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: v})
	}
	for name, v := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: v})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistSnap{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promFloat formats a float the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as single samples, histograms with cumulative
// `_bucket{le=...}` samples plus `_sum` and `_count`.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", g.Name, g.Name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", h.Name)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", h.Name, promFloat(bound), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", h.Name, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", h.Name, h.Count)
	}
	if s.Search != nil {
		fmt.Fprintf(&b, "# TYPE search_evaluated gauge\nsearch_evaluated %d\n", s.Search.Evaluated)
		fmt.Fprintf(&b, "# TYPE search_total gauge\nsearch_total %d\n", s.Search.Total)
		if s.Search.BestNS > 0 {
			fmt.Fprintf(&b, "# TYPE search_best_ns gauge\nsearch_best_ns %s\n", promFloat(s.Search.BestNS))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Counter returns a counter's current value (0 if absent) — a test and
// report convenience.
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// GaugeValue returns a gauge's current value (0 if absent).
func (s *Snapshot) GaugeValue(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns a histogram snapshot by name (nil if absent).
func (s *Snapshot) Histogram(name string) *HistSnap {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}
