package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenTimeline builds a deterministic timeline resembling a small advisor
// session: a simulator track with warp spans and DRAM instants, plus
// model/search tracks on a fake wall clock.
func goldenTimeline() *Timeline {
	tl := NewTimeline()
	tl.Span("sim", "run matrixMul", 0, 1200)
	tl.Span("sim/sm0", "warp0 b0", 0, 480)
	tl.Span("sim/sm0", "warp1 b0", 16, 512)
	tl.Span("sim/sm1", "warp2 b1", 8, 640)
	tl.Instant("sim/dram", "row_conflict", 96)
	tl.Instant("sim/dram", "row_conflict", 400)
	tl.Span("model", "predict", 1500, 120)
	tl.Span("model", "predict", 1700, 110)
	tl.Span("advisor", "eval a:G,b:S", 1500, 140)
	tl.Span("advisor", "eval a:T,b:S", 1690, 130)
	return tl
}

func TestChromeTraceGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTimeline().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file %s:\n%s", path, b.String())
	}
}

// TestChromeTraceWellFormed checks the structural invariants every Chrome
// trace consumer assumes: valid JSON, monotonically non-decreasing ts over
// the emitted event order, and only complete (X), instant (i), or metadata
// (M) phases — no unbalanced B/E pairs.
func TestChromeTraceWellFormed(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTimeline().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	begins := 0
	lastTs := -1.0
	for i, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			continue // metadata events carry no timestamp
		case "B":
			begins++
		case "E":
			begins--
			if begins < 0 {
				t.Fatalf("event %d: E without matching B", i)
			}
		case "X", "i":
			// complete/instant events are always balanced
		default:
			t.Fatalf("event %d: unexpected phase %q", i, e.Ph)
		}
		if e.Ts < lastTs {
			t.Fatalf("event %d (%s): ts %g decreases from %g", i, e.Name, e.Ts, lastTs)
		}
		lastTs = e.Ts
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("event %d: negative ts/dur", i)
		}
		if e.Pid != tracePid || e.Tid <= 0 {
			t.Fatalf("event %d: bad pid/tid %d/%d", i, e.Pid, e.Tid)
		}
	}
	if begins != 0 {
		t.Fatalf("%d unbalanced B events", begins)
	}
}

func TestCSVExport(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTimeline().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	if len(rows) != goldenTimeline().Len()+1 {
		t.Fatalf("%d rows, want %d", len(rows), goldenTimeline().Len()+1)
	}
	wantHeader := []string{"track", "name", "kind", "ts_ns", "dur_ns"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Errorf("header[%d] = %q, want %q", i, rows[0][i], h)
		}
	}
}
