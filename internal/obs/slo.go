package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SLO metric names (see docs/OBSERVABILITY.md for the full catalogue).
// Quantile gauges are per key — `service_slo_p99_ns_rank`,
// `service_slo_p99_ns_rank_hit` — built by SLOQuantileGauge; the burn
// gauges measure how fast the error budget is being consumed: a value of 1
// means the budget burns exactly as fast as the SLO allows, above 1 the
// service is out of budget over the rolling window.
const (
	// MetricServiceSLOLatencyBurnPrefix + route gauges the latency
	// error-budget burn rate of one route: the fraction of windowed
	// requests slower than the p99 target, divided by the 1% the SLO
	// allows.
	MetricServiceSLOLatencyBurnPrefix = "service_slo_latency_burn_"
	// MetricServiceSLOAvailabilityBurn gauges the availability budget burn:
	// the 5xx fraction over the window divided by the allowed fraction
	// (1 - availability target).
	MetricServiceSLOAvailabilityBurn = "service_slo_availability_burn"
	// MetricServiceSLOWindowRequests gauges how many requests the rolling
	// window currently holds (the denominator of every burn rate).
	MetricServiceSLOWindowRequests = "service_slo_window_requests"
	// MetricServiceSLOTargetP99MS echoes the configured latency target so a
	// dashboard can draw the threshold without knowing the server's flags.
	MetricServiceSLOTargetP99MS = "service_slo_target_p99_ms"
	// MetricServiceSLOTargetAvailability echoes the availability target.
	MetricServiceSLOTargetAvailability = "service_slo_target_availability"
)

// SLOQuantileGauge names the rolling-window latency quantile gauge of one
// key: SLOQuantileGauge("rank_hit", 99) = "service_slo_p99_ns_rank_hit".
func SLOQuantileGauge(key string, pct int) string {
	return fmt.Sprintf("service_slo_p%d_ns_%s", pct, key)
}

// sloRingCap bounds the samples kept per key: at high request rates the
// window is effectively "the last sloRingCap samples inside the window",
// which is plenty for a p99 estimate; at low rates the time bound governs.
const sloRingCap = 4096

// sloSample is one recorded request.
type sloSample struct {
	at time.Time
	ns float64
	ok bool // false for 5xx (availability SLO violations)
}

// sloRing is a fixed-capacity ring of the most recent samples for one key.
type sloRing struct {
	buf  [sloRingCap]sloSample
	next int
	n    int // filled entries, capped at sloRingCap
}

func (r *sloRing) add(s sloSample) {
	r.buf[r.next] = s
	r.next = (r.next + 1) % sloRingCap
	if r.n < sloRingCap {
		r.n++
	}
}

// windowed appends the latencies of samples newer than cutoff to dst and
// counts total and failed samples.
func (r *sloRing) windowed(cutoff time.Time, dst []float64) (lat []float64, total, failed int) {
	lat = dst
	for i := 0; i < r.n; i++ {
		s := &r.buf[i]
		if s.at.Before(cutoff) {
			continue
		}
		total++
		if !s.ok {
			failed++
		}
		lat = append(lat, s.ns)
	}
	return lat, total, failed
}

// SLOOptions configures an SLOTracker. The zero value gets a 60s window, a
// 250ms p99 target, 99.9% availability, and the wall clock.
type SLOOptions struct {
	// Window is the rolling time window quantiles and burn rates cover.
	Window time.Duration
	// TargetP99 is the latency SLO: 99% of a route's windowed requests
	// should finish faster than this.
	TargetP99 time.Duration
	// TargetAvailability is the availability SLO (fraction of non-5xx
	// responses), e.g. 0.999.
	TargetAvailability float64
	// Now is the tracker's clock; tests inject a fake one.
	Now func() time.Time
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Window <= 0 {
		o.Window = 60 * time.Second
	}
	if o.TargetP99 <= 0 {
		o.TargetP99 = 250 * time.Millisecond
	}
	if o.TargetAvailability <= 0 || o.TargetAvailability >= 1 {
		o.TargetAvailability = 0.999
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// SLOTracker keeps rolling-window latency distributions per key (a route,
// or a route×cache-state pair) and renders p50/p95/p99 quantiles plus
// error-budget burn gauges into a Registry at scrape time. Recording is a
// ring-buffer store under one mutex — cheap enough for the request hot
// path — while quantile sorting happens only in Publish. All methods are
// safe for concurrent use; the clock is injectable so windows are testable
// without sleeping.
type SLOTracker struct {
	opt SLOOptions

	mu   sync.Mutex
	keys map[string]*sloRing
}

// NewSLOTracker returns a tracker with the given options (zero value OK).
func NewSLOTracker(opt SLOOptions) *SLOTracker {
	return &SLOTracker{opt: opt.withDefaults(), keys: make(map[string]*sloRing)}
}

// Targets reports the tracker's effective SLO targets.
func (t *SLOTracker) Targets() (p99 time.Duration, availability float64) {
	return t.opt.TargetP99, t.opt.TargetAvailability
}

// Record stores one request outcome under the route key and, when
// cacheState is non-empty, under the route_cacheState key too — so
// /metrics can answer both "what is rank's p99" and "what is rank's p99
// for cache hits".
func (t *SLOTracker) Record(route, cacheState string, latencyNS float64, ok bool) {
	s := sloSample{at: t.opt.Now(), ns: latencyNS, ok: ok}
	t.mu.Lock()
	t.ring(route).add(s)
	if cacheState != "" {
		t.ring(route + "_" + cacheState).add(s)
	}
	t.mu.Unlock()
}

// ring returns (creating if needed) the ring of one key; caller holds t.mu.
func (t *SLOTracker) ring(key string) *sloRing {
	r := t.keys[key]
	if r == nil {
		r = &sloRing{}
		t.keys[key] = r
	}
	return r
}

// quantile returns the pth quantile (0..1) of sorted samples.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// Stats summarizes one key's rolling window.
type SLOStats struct {
	Requests int
	Failed   int
	P50NS    float64
	P95NS    float64
	P99NS    float64
	// OverTarget counts windowed requests slower than the p99 target.
	OverTarget int
}

// WindowStats computes one key's rolling-window summary (zero value when
// the key has no samples in the window).
func (t *SLOTracker) WindowStats(key string) SLOStats {
	cutoff := t.opt.Now().Add(-t.opt.Window)
	t.mu.Lock()
	r := t.keys[key]
	var lat []float64
	var total, failed int
	if r != nil {
		lat, total, failed = r.windowed(cutoff, nil)
	}
	t.mu.Unlock()
	return t.stats(lat, total, failed)
}

func (t *SLOTracker) stats(lat []float64, total, failed int) SLOStats {
	sort.Float64s(lat)
	st := SLOStats{
		Requests: total,
		Failed:   failed,
		P50NS:    quantile(lat, 0.50),
		P95NS:    quantile(lat, 0.95),
		P99NS:    quantile(lat, 0.99),
	}
	target := float64(t.opt.TargetP99.Nanoseconds())
	st.OverTarget = len(lat) - sort.SearchFloat64s(lat, target)
	return st
}

// Publish renders the rolling-window quantiles and burn gauges into reg.
// It is the scrape hook the service registers on its Collector: quantile
// sorting and window filtering cost nothing until someone actually scrapes
// /metrics. Keys with no windowed samples keep their last published gauge
// (gauges are latest-value; an idle route's numbers go stale rather than
// vanishing mid-dashboard).
func (t *SLOTracker) Publish(reg *Registry) {
	cutoff := t.opt.Now().Add(-t.opt.Window)
	type keyed struct {
		key           string
		lat           []float64
		total, failed int
		isRoute       bool // burn gauges are per route, not per cache state
	}
	t.mu.Lock()
	snaps := make([]keyed, 0, len(t.keys))
	for key, r := range t.keys {
		lat, total, failed := r.windowed(cutoff, nil)
		if total == 0 {
			continue
		}
		snaps = append(snaps, keyed{key: key, lat: lat, total: total, failed: failed, isRoute: !hasCacheSuffix(key)})
	}
	t.mu.Unlock()

	allowedSlow := 0.01 // the "99" in p99: 1% of requests may exceed the target
	allowedFail := 1 - t.opt.TargetAvailability
	windowTotal, windowFailed := 0, 0
	for _, k := range snaps {
		st := t.stats(k.lat, k.total, k.failed)
		reg.Gauge(SLOQuantileGauge(k.key, 50), st.P50NS)
		reg.Gauge(SLOQuantileGauge(k.key, 95), st.P95NS)
		reg.Gauge(SLOQuantileGauge(k.key, 99), st.P99NS)
		if k.isRoute {
			windowTotal += st.Requests
			windowFailed += st.Failed
			burn := float64(st.OverTarget) / float64(st.Requests) / allowedSlow
			reg.Gauge(MetricServiceSLOLatencyBurnPrefix+k.key, burn)
		}
	}
	if windowTotal > 0 {
		reg.Gauge(MetricServiceSLOAvailabilityBurn, float64(windowFailed)/float64(windowTotal)/allowedFail)
	}
	reg.Gauge(MetricServiceSLOWindowRequests, float64(windowTotal))
	reg.Gauge(MetricServiceSLOTargetP99MS, float64(t.opt.TargetP99.Milliseconds()))
	reg.Gauge(MetricServiceSLOTargetAvailability, t.opt.TargetAvailability)
}

// hasCacheSuffix reports whether key is a route×cache-state key
// ("rank_hit") rather than a plain route key ("rank").
func hasCacheSuffix(key string) bool {
	for _, suffix := range []string{"_hit", "_miss", "_shared", "_none"} {
		if len(key) > len(suffix) && key[len(key)-len(suffix):] == suffix {
			return true
		}
	}
	return false
}
