package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable SLO clock tests advance by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func newTestTracker(clk *fakeClock) *SLOTracker {
	return NewSLOTracker(SLOOptions{
		Window:             time.Minute,
		TargetP99:          time.Millisecond,
		TargetAvailability: 0.99,
		Now:                clk.now,
	})
}

func TestSLOWindowStats(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk)
	// 100 samples: 1..100µs, the top two over the 1ms... no — target is 1ms;
	// make 98 fast (100µs) and 2 slow (2ms), one of them a failure.
	for i := 0; i < 98; i++ {
		tr.Record("rank", "hit", 100e3, true)
	}
	tr.Record("rank", "miss", 2e6, true)
	tr.Record("rank", "miss", 2e6, false)

	st := tr.WindowStats("rank")
	if st.Requests != 100 || st.Failed != 1 {
		t.Fatalf("requests %d failed %d, want 100/1", st.Requests, st.Failed)
	}
	if st.P50NS != 100e3 {
		t.Fatalf("p50 %v, want 100µs", st.P50NS)
	}
	if st.P99NS != 2e6 {
		t.Fatalf("p99 %v, want 2ms", st.P99NS)
	}
	if st.OverTarget != 2 {
		t.Fatalf("over-target %d, want 2", st.OverTarget)
	}
	// The route×cache keys were fed too.
	if hit := tr.WindowStats("rank_hit"); hit.Requests != 98 {
		t.Fatalf("rank_hit requests %d, want 98", hit.Requests)
	}
	if miss := tr.WindowStats("rank_miss"); miss.Requests != 2 || miss.Failed != 1 {
		t.Fatalf("rank_miss %+v", miss)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk)
	tr.Record("rank", "", 5e6, true)
	if st := tr.WindowStats("rank"); st.Requests != 1 {
		t.Fatalf("fresh sample not counted: %+v", st)
	}
	// Advance past the window: the sample ages out without any new traffic.
	clk.advance(2 * time.Minute)
	if st := tr.WindowStats("rank"); st.Requests != 0 {
		t.Fatalf("expired sample still counted: %+v", st)
	}
}

func TestSLOPublishGauges(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk)
	// 90 fast OK + 10 slow (over the 1ms target), 5 of those failures:
	// latency burn = (10/100)/0.01 = 10; availability burn = (5/100)/0.01 = 5.
	for i := 0; i < 90; i++ {
		tr.Record("rank", "hit", 100e3, true)
	}
	for i := 0; i < 10; i++ {
		tr.Record("rank", "miss", 5e6, i >= 5)
	}
	reg := NewRegistry()
	tr.Publish(reg)
	gauges := map[string]float64{}
	for _, g := range reg.Snapshot().Gauges {
		gauges[g.Name] = g.Value
	}
	checks := map[string]float64{
		SLOQuantileGauge("rank", 50):               100e3,
		SLOQuantileGauge("rank", 99):               5e6,
		SLOQuantileGauge("rank_hit", 99):           100e3,
		SLOQuantileGauge("rank_miss", 99):          5e6,
		MetricServiceSLOLatencyBurnPrefix + "rank": 10,
		MetricServiceSLOAvailabilityBurn:           5,
		MetricServiceSLOWindowRequests:             100,
		MetricServiceSLOTargetP99MS:                1,
		MetricServiceSLOTargetAvailability:         0.99,
	}
	for name, want := range checks {
		got, ok := gauges[name]
		if !ok {
			t.Errorf("gauge %s not published", name)
			continue
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("gauge %s = %v, want %v", name, got, want)
		}
	}
	// Burn gauges are per route: no burn gauge for route×cache keys.
	if _, ok := gauges[MetricServiceSLOLatencyBurnPrefix+"rank_hit"]; ok {
		t.Error("latency burn published for a cache-state key")
	}
}

func TestSLORingCap(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk)
	for i := 0; i < sloRingCap+100; i++ {
		tr.Record("rank", "", float64(i), true)
	}
	if st := tr.WindowStats("rank"); st.Requests != sloRingCap {
		t.Fatalf("ring holds %d, want cap %d", st.Requests, sloRingCap)
	}
}

func TestSLOScrapeHook(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracker(clk)
	col := NewCollector()
	col.AddScrapeHook(tr.Publish)
	tr.Record("rank", "hit", 100e3, true)
	for _, g := range col.Snapshot().Gauges {
		if g.Name == SLOQuantileGauge("rank", 99) {
			return
		}
	}
	t.Fatal("scrape did not publish SLO gauges")
}

func TestRuntimeHealthGauges(t *testing.T) {
	col := NewCollector()
	RegisterRuntimeHealth(col)
	gauges := map[string]float64{}
	for _, g := range col.Snapshot().Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges[MetricRuntimeGoroutines] < 1 {
		t.Fatalf("goroutine gauge %v", gauges[MetricRuntimeGoroutines])
	}
	if gauges[MetricRuntimeHeapBytes] <= 0 {
		t.Fatalf("heap gauge %v", gauges[MetricRuntimeHeapBytes])
	}
	if _, ok := gauges[MetricRuntimeGCPauseP99NS]; !ok {
		t.Fatal("gc pause gauge missing")
	}
}

func TestTimelineFlowEvents(t *testing.T) {
	tl := NewTimeline()
	tl.FlowStart("req/abc", "handoff", 0xdeadbeef, 100)
	tl.FlowEnd("pool", "handoff", 0xdeadbeef, 200)
	var buf strings.Builder
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph": "s"`, `"ph": "f"`, `"bp": "e"`, `"id": "deadbeef"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, out)
		}
	}
}
