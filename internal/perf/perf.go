// Package perf defines the performance-event counter set shared by the
// ground-truth simulator and the analytical models. It plays the role nvprof
// events play in the paper: a common vocabulary of countable hardware events
// (issue slots, issued/executed instructions, per-space memory requests,
// cache misses, L2 transactions, row-buffer outcomes, …) whose variation
// across data placements drives both event selection (§II-B, Table I) and
// the T_overlap model (Eq 11).
package perf

import (
	"fmt"
	"math"
	"reflect"
)

// Events is one execution's (or one prediction's) event counters.
type Events struct {
	// Issue accounting.
	IssueSlots   int64 // issue slots consumed, including replays
	InstIssued   int64 // issued warp instructions incl. replays
	InstExecuted int64 // executed warp instructions (no replays)
	InstInteger  int64 // integer instructions incl. addressing-mode ops
	LdstIssued   int64 // issued load/store instructions incl. replays

	// Replays by placement-dependent cause (§III-B (1)-(4)) plus atomic
	// address conflicts (cause (6), placement-independent).
	ReplayGlobalDiv int64
	ReplayConstMiss int64
	ReplayConstDiv  int64
	ReplayShared    int64
	ReplayAtomic    int64

	// Warp-level memory requests by space.
	GlobalRequests  int64
	ConstantRequest int64
	TextureRequests int64
	SharedRequests  int64

	// Cache traffic.
	L2Transactions int64
	L2Misses       int64
	ConstAccesses  int64
	ConstMisses    int64
	TexAccesses    int64
	TexMisses      int64

	// Shared memory.
	SharedBankConflicts int64

	// DRAM.
	DRAMRequests int64
	RowHits      int64
	RowMisses    int64
	RowConflicts int64

	// Occupancy.
	WarpsPerSM float64
}

// Validate rejects counter sets no real profiler could emit: negative or
// non-finite values, or more executed than issued instructions (replays can
// only add issues). Fault-injected or corrupted profiles fail here before
// they can seed predictions.
func (e *Events) Validate() error {
	v := reflect.ValueOf(*e)
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int64:
			if f.Int() < 0 {
				return fmt.Errorf("perf: counter %s is negative (%d)", typ.Field(i).Name, f.Int())
			}
		case reflect.Float64:
			if x := f.Float(); math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				return fmt.Errorf("perf: counter %s is %g", typ.Field(i).Name, x)
			}
		}
	}
	if e.InstExecuted > e.InstIssued {
		return fmt.Errorf("perf: %d instructions executed but only %d issued",
			e.InstExecuted, e.InstIssued)
	}
	return nil
}

// AddCounts accumulates every integer counter of o into e. The float-valued
// occupancy field (WarpsPerSM) is a property of the launch, not a countable
// event, so it is left untouched — callers set it directly. Iterating the
// struct by reflection keeps the sum complete if counters are added later.
func (e *Events) AddCounts(o *Events) {
	ev := reflect.ValueOf(e).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < ev.NumField(); i++ {
		if f := ev.Field(i); f.Kind() == reflect.Int64 {
			f.SetInt(f.Int() + ov.Field(i).Int())
		}
	}
}

// TotalReplays returns all modeled replays (causes (1)-(4) and (6)).
func (e *Events) TotalReplays() int64 {
	return e.ReplayGlobalDiv + e.ReplayConstMiss + e.ReplayConstDiv +
		e.ReplayShared + e.ReplayAtomic
}

// MemRequests returns all warp-level memory requests.
func (e *Events) MemRequests() int64 {
	return e.GlobalRequests + e.ConstantRequest + e.TextureRequests + e.SharedRequests
}

// Named is one named counter value, for event-selection studies.
type Named struct {
	Name  string
	Value float64
}

// All returns every counter with its nvprof-style name, in a fixed order.
func (e *Events) All() []Named {
	return []Named{
		{"issue_slots", float64(e.IssueSlots)},
		{"inst_issued", float64(e.InstIssued)},
		{"inst_executed", float64(e.InstExecuted)},
		{"inst_integer", float64(e.InstInteger)},
		{"ldst_issued", float64(e.LdstIssued)},
		{"global_replay", float64(e.ReplayGlobalDiv)},
		{"const_cache_miss_replay", float64(e.ReplayConstMiss)},
		{"const_divergence_replay", float64(e.ReplayConstDiv)},
		{"shared_conflict_replay", float64(e.ReplayShared)},
		{"atomic_conflict_replay", float64(e.ReplayAtomic)},
		{"gld_gst_request", float64(e.GlobalRequests)},
		{"const_request", float64(e.ConstantRequest)},
		{"tex_request", float64(e.TextureRequests)},
		{"shared_request", float64(e.SharedRequests)},
		{"L2_transactions", float64(e.L2Transactions)},
		{"L2_misses", float64(e.L2Misses)},
		{"const_cache_accesses", float64(e.ConstAccesses)},
		{"const_cache_misses", float64(e.ConstMisses)},
		{"tex_cache_accesses", float64(e.TexAccesses)},
		{"tex_cache_misses", float64(e.TexMisses)},
		{"shared_bank_conflict", float64(e.SharedBankConflicts)},
		{"dram_requests", float64(e.DRAMRequests)},
		{"row_buffer_hits", float64(e.RowHits)},
		{"row_buffer_misses", float64(e.RowMisses)},
		{"row_buffer_conflicts", float64(e.RowConflicts)},
	}
}

// Transactions returns all first-level memory transactions: L2 accesses
// from global traffic plus constant-cache, texture-cache and shared-memory
// accesses. It is the normalizer of the Eq 11 event ratios.
func (e *Events) Transactions() int64 {
	n := e.L2Transactions + e.ConstAccesses + e.TexAccesses + e.SharedRequests
	if n == 0 {
		return 1
	}
	return n
}

// OverlapFeatures returns the Eq 11 feature vector, normalized by total
// first-level memory transactions so each ratio is bounded and the fitted
// coefficients transfer across applications ("calculating T_overlap_ratio
// makes models independent of applications"), plus the per-SM warp count
// and a constant term:
//
//	[ e_g, e_c, e_t, e_s, e_r, #warps, 1 ]
//
// where e_g = L2 misses + global requests, e_c = constant-cache misses +
// constant requests, e_t = texture-cache misses + texture requests,
// e_s = bank conflicts + shared requests, e_r = row-buffer misses+conflicts.
func (e *Events) OverlapFeatures() []float64 {
	norm := float64(e.Transactions())
	return []float64{
		(float64(e.L2Misses) + float64(e.GlobalRequests)) / norm,
		(float64(e.ConstMisses) + float64(e.ConstantRequest)) / norm,
		(float64(e.TexMisses) + float64(e.TextureRequests)) / norm,
		(float64(e.SharedBankConflicts) + float64(e.SharedRequests)) / norm,
		(float64(e.RowMisses) + float64(e.RowConflicts)) / norm,
		e.WarpsPerSM / 64,
		1,
	}
}

// OverlapFeatureNames labels OverlapFeatures entries (coefficient names of
// Eq 11).
func OverlapFeatureNames() []string {
	return []string{"g(global)", "c(constant)", "t(texture)", "s(shared)", "r(rowbuf)", "w(warps)", "const"}
}
