package perf

import (
	"testing"
)

func TestDerivedCounters(t *testing.T) {
	e := Events{
		ReplayGlobalDiv: 3, ReplayConstMiss: 2, ReplayConstDiv: 1, ReplayShared: 4,
		GlobalRequests: 10, ConstantRequest: 5, TextureRequests: 2, SharedRequests: 3,
	}
	if e.TotalReplays() != 10 {
		t.Errorf("replays = %d", e.TotalReplays())
	}
	if e.MemRequests() != 20 {
		t.Errorf("mem requests = %d", e.MemRequests())
	}
}

func TestTransactionsNormalizer(t *testing.T) {
	e := Events{L2Transactions: 10, ConstAccesses: 5, TexAccesses: 3, SharedRequests: 2}
	if e.Transactions() != 20 {
		t.Errorf("transactions = %d", e.Transactions())
	}
	var zero Events
	if zero.Transactions() != 1 {
		t.Error("zero events must normalize to 1 (division guard)")
	}
}

func TestAllNamesUniqueAndComplete(t *testing.T) {
	e := Events{}
	all := e.All()
	if len(all) < 20 {
		t.Errorf("only %d named events", len(all))
	}
	seen := map[string]bool{}
	for _, n := range all {
		if n.Name == "" {
			t.Error("unnamed event")
		}
		if seen[n.Name] {
			t.Errorf("duplicate event name %s", n.Name)
		}
		seen[n.Name] = true
	}
	// The Table I representative events must be present.
	for _, want := range []string{"issue_slots", "inst_issued", "inst_integer", "ldst_issued", "L2_transactions"} {
		if !seen[want] {
			t.Errorf("missing representative event %s", want)
		}
	}
}

func TestAllReflectsValues(t *testing.T) {
	e := Events{IssueSlots: 7, L2Misses: 3}
	for _, n := range e.All() {
		switch n.Name {
		case "issue_slots":
			if n.Value != 7 {
				t.Errorf("issue_slots = %g", n.Value)
			}
		case "L2_misses":
			if n.Value != 3 {
				t.Errorf("L2_misses = %g", n.Value)
			}
		}
	}
}

func TestOverlapFeatures(t *testing.T) {
	e := Events{
		L2Misses: 5, GlobalRequests: 15, // e_g numerator 20
		L2Transactions: 20, // normalizer contribution
		WarpsPerSM:     32,
	}
	f := e.OverlapFeatures()
	if len(f) != len(OverlapFeatureNames()) {
		t.Fatalf("feature/name arity: %d vs %d", len(f), len(OverlapFeatureNames()))
	}
	if f[0] != 1.0 { // (5+15)/20
		t.Errorf("e_g = %g", f[0])
	}
	if f[5] != 0.5 { // 32/64
		t.Errorf("warp feature = %g", f[5])
	}
	if f[len(f)-1] != 1 {
		t.Error("constant term must be 1")
	}
	for i, v := range f {
		if v < 0 {
			t.Errorf("feature %d negative: %g", i, v)
		}
	}
}
