// Package loadgen is an open-loop load generator for the placement-advisory
// service (cmd/hmsbench drives it; scripts/bench_load.sh turns its output
// into BENCH_load.json). Arrivals follow a Poisson process at the offered
// rate, independent of how fast the service answers — the open-loop model —
// and every latency is measured from the request's *scheduled* arrival
// time, not from when the sender got around to issuing it. A generator that
// measures from send time silently excuses the server: when responses slow
// down, a closed-loop sender issues fewer requests and the stall never
// shows up in the histogram (coordinated omission). Measuring from the
// schedule charges every queued nanosecond to the server, where it belongs.
package loadgen

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpuhms/internal/obs"
)

// Op is one request template of a workload.
type Op struct {
	// Name labels the op in reports ("rank-hit", "predict").
	Name string
	// Method and Path route the request.
	Method string
	Path   string
	// Body is the JSON payload (nil for GETs).
	Body []byte
	// Weight is the op's relative frequency in the mix (default 1).
	Weight int
}

// Workload is a weighted mix of ops.
type Workload struct {
	ops []Op
	cum []int // cumulative weights
	sum int
}

// NewWorkload builds a workload from a weighted op mix.
func NewWorkload(ops []Op) *Workload {
	w := &Workload{ops: ops, cum: make([]int, len(ops))}
	for i, op := range ops {
		weight := op.Weight
		if weight <= 0 {
			weight = 1
		}
		w.sum += weight
		w.cum[i] = w.sum
	}
	return w
}

// Ops returns the workload's op templates (the prewarm pass replays each
// unique op once before measuring).
func (w *Workload) Ops() []Op { return w.ops }

// pick selects one op by weight.
func (w *Workload) pick(rng *rand.Rand) *Op {
	n := rng.Intn(w.sum)
	i := sort.SearchInts(w.cum, n+1)
	return &w.ops[i]
}

// Response is what the generator needs back from one request: enough to
// classify the outcome and to prove traceability (every response must carry
// a request ID).
type Response struct {
	Status    int
	Cache     string // X-HMS-Cache, "" when absent
	RequestID string // X-Request-ID, "" when absent
}

// Target executes one request. Implementations must be safe for concurrent
// use: the open-loop scheduler dispatches every arrival on its own
// goroutine.
type Target interface {
	Do(op *Op) Response
}

// HandlerTarget dispatches requests in-process, straight into an
// http.Handler — the full mux/middleware/handler stack without kernel
// sockets. On a single-CPU box this is the only way an offered load in the
// tens of thousands of requests per second measures the service instead of
// the loopback stack.
type HandlerTarget struct {
	Handler http.Handler
}

// nullWriter is a header-capturing, body-discarding ResponseWriter. The
// generator classifies responses by status and headers; decoding or storing
// bodies at 40k req/s would measure the generator's allocator, not the
// service.
type nullWriter struct {
	header http.Header
	status int
	n      int64
}

func (w *nullWriter) Header() http.Header { return w.header }
func (w *nullWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}
func (w *nullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += int64(len(p))
	return len(p), nil
}

var writerPool = sync.Pool{New: func() any { return &nullWriter{} }}

// Do implements Target.
func (t *HandlerTarget) Do(op *Op) Response {
	w := writerPool.Get().(*nullWriter)
	w.header = make(http.Header, 8)
	w.status = 0
	w.n = 0
	req := &http.Request{
		Method:     op.Method,
		URL:        &url.URL{Path: op.Path},
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{},
		Host:       "loadgen",
		RemoteAddr: "127.0.0.1:0",
	}
	if op.Body != nil {
		req.Body = io.NopCloser(bytes.NewReader(op.Body))
		req.ContentLength = int64(len(op.Body))
	} else {
		req.Body = http.NoBody
	}
	req = req.WithContext(context.Background())
	t.Handler.ServeHTTP(w, req)
	resp := Response{
		Status:    w.status,
		Cache:     w.header.Get("X-HMS-Cache"),
		RequestID: w.header.Get("X-Request-ID"),
	}
	writerPool.Put(w)
	return resp
}

// HTTPTarget dispatches requests to a live server over TCP.
type HTTPTarget struct {
	Base   string // "http://127.0.0.1:8080"
	Client *http.Client
}

// Do implements Target.
func (t *HTTPTarget) Do(op *Op) Response {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	var body io.Reader
	if op.Body != nil {
		body = bytes.NewReader(op.Body)
	}
	req, err := http.NewRequest(op.Method, t.Base+op.Path, body)
	if err != nil {
		return Response{Status: 0}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return Response{Status: 0} // transport failure, reported as status "0"
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return Response{
		Status:    resp.StatusCode,
		Cache:     resp.Header.Get("X-HMS-Cache"),
		RequestID: resp.Header.Get("X-Request-ID"),
	}
}

// Options configures one open-loop run.
type Options struct {
	// Rate is the offered arrival rate in requests per second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Seed makes the arrival process and op mix reproducible.
	Seed int64
	// MaxOutstanding bounds concurrently in-flight requests (default 4096).
	// An arrival finding the limit exhausted is *not* sent and is counted in
	// Report.Overflow — by then the server is so far behind that the
	// generator itself would become the bottleneck, and a nonzero overflow
	// marks the rate as saturated.
	MaxOutstanding int
}

// rec is one completed request's record slot.
type rec struct {
	latencyNS float64
	status    int
	cache     string
	hasID     bool
}

// LatencySummary are the quantiles of one run's CO-safe latencies.
type LatencySummary struct {
	N      int     `json:"n"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P90NS  float64 `json:"p90_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
	MaxNS  float64 `json:"max_ns"`
}

// Report summarizes one open-loop run.
type Report struct {
	// OfferedRPS is the configured Poisson arrival rate.
	OfferedRPS float64 `json:"offered_rps"`
	// AchievedRPS is completed requests over measured wall time.
	AchievedRPS float64 `json:"achieved_rps"`
	// DurationS is the measured wall time (arrival window + drain).
	DurationS float64 `json:"duration_s"`
	// Sent counts dispatched requests; Overflow counts arrivals dropped at
	// the MaxOutstanding valve (never sent).
	Sent     int `json:"sent"`
	Overflow int `json:"overflow"`
	// Status counts responses by exact status code (key is the decimal
	// code; "0" is a transport failure).
	Status map[string]int `json:"status"`
	// Shed counts 429 responses; Errors5xx counts status >= 500.
	Shed      int `json:"shed"`
	Errors5xx int `json:"errors_5xx"`
	// MissingID counts responses without an X-Request-ID header — the
	// traceability invariant says this stays zero.
	MissingID int `json:"missing_id"`
	// ByCache counts responses by X-HMS-Cache value ("" omitted).
	ByCache map[string]int `json:"by_cache,omitempty"`
	// Latency holds the coordinated-omission-safe quantiles: each sample is
	// completion time minus *scheduled* arrival time.
	Latency LatencySummary `json:"latency"`
	// Histogram is the same population in obs.FineLatencyBuckets form.
	Histogram obs.HistSnap `json:"histogram"`
}

// latencyHist is the registry name the run's histogram is recorded under.
const latencyHist = "load_latency_ns"

// Run executes one open-loop run against target. The scheduler draws
// exponential inter-arrival gaps (a Poisson process at opt.Rate), sleeps
// until each scheduled instant, and dispatches the request on its own
// goroutine; it never waits for responses, so a slow server faces the full
// offered rate. Latency is measured from the scheduled instant.
func Run(target Target, wl *Workload, opt Options) *Report {
	if opt.MaxOutstanding <= 0 {
		opt.MaxOutstanding = 4096
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	expected := int(opt.Rate*opt.Duration.Seconds()*3/2) + 1024
	recs := make([]rec, expected)
	var next atomic.Int64
	var overflow atomic.Int64
	sem := make(chan struct{}, opt.MaxOutstanding)
	var wg sync.WaitGroup

	start := time.Now()
	offset := time.Duration(0)
	sent := 0
	for {
		// Exponential gap between Poisson arrivals at the offered rate.
		gap := time.Duration(rng.ExpFloat64() / opt.Rate * float64(time.Second))
		offset += gap
		if offset >= opt.Duration {
			break
		}
		op := wl.pick(rng)
		scheduled := start.Add(offset)
		waitUntil(scheduled)
		select {
		case sem <- struct{}{}:
		default:
			overflow.Add(1)
			continue
		}
		sent++
		wg.Add(1)
		go func(op *Op, scheduled time.Time) {
			defer wg.Done()
			resp := target.Do(op)
			latency := time.Since(scheduled)
			<-sem
			if slot := next.Add(1) - 1; int(slot) < len(recs) {
				recs[slot] = rec{
					latencyNS: float64(latency.Nanoseconds()),
					status:    resp.Status,
					cache:     resp.Cache,
					hasID:     resp.RequestID != "",
				}
			}
		}(op, scheduled)
	}
	wg.Wait()
	wall := time.Since(start)

	n := int(next.Load())
	if n > len(recs) {
		n = len(recs)
	}
	return aggregate(recs[:n], opt.Rate, wall, sent, int(overflow.Load()))
}

// waitUntil pauses the scheduler until the next scheduled arrival. A plain
// time.Sleep wakes up to a millisecond late on Linux, and since latency is
// measured from the *scheduled* instant, every microsecond of scheduler
// lateness would be charged to the server — at low rates that floor
// dominates the real sub-100µs cache-hit latencies. So the tail of each
// wait spins, yielding the processor so in-flight handler goroutines keep
// running (on a single-CPU box the generator and the service share it).
func waitUntil(scheduled time.Time) {
	if d := time.Until(scheduled); d > 2*time.Millisecond {
		time.Sleep(d - time.Millisecond)
	}
	for time.Now().Before(scheduled) {
		runtime.Gosched()
	}
}

// aggregate folds the run's records into a Report.
func aggregate(recs []rec, rate float64, wall time.Duration, sent, overflow int) *Report {
	rep := &Report{
		OfferedRPS: rate,
		DurationS:  wall.Seconds(),
		Sent:       sent,
		Overflow:   overflow,
		Status:     make(map[string]int),
		ByCache:    make(map[string]int),
	}
	reg := obs.NewRegistry()
	reg.RegisterHistogram(latencyHist, obs.FineLatencyBuckets())
	lat := make([]float64, 0, len(recs))
	var sum float64
	for i := range recs {
		r := &recs[i]
		rep.Status[itoa(r.status)]++
		switch {
		case r.status == http.StatusTooManyRequests:
			rep.Shed++
		case r.status >= 500:
			rep.Errors5xx++
		}
		if !r.hasID {
			rep.MissingID++
		}
		if r.cache != "" {
			rep.ByCache[r.cache]++
		}
		reg.Observe(latencyHist, r.latencyNS)
		lat = append(lat, r.latencyNS)
		sum += r.latencyNS
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	rep.Latency = LatencySummary{
		N:     len(lat),
		P50NS: pct(0.50),
		P90NS: pct(0.90),
		P95NS: pct(0.95),
		P99NS: pct(0.99),
		MaxNS: pct(1.0),
	}
	if len(lat) > 0 {
		rep.Latency.MeanNS = sum / float64(len(lat))
		rep.AchievedRPS = float64(len(lat)) / wall.Seconds()
	}
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == latencyHist {
			rep.Histogram = h
		}
	}
	return rep
}

// itoa is strconv.Itoa for the three-digit status codes without the import.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
