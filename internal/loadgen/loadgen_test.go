package loadgen

import (
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"
)

// stubHandler answers instantly with a request ID and a cache header, with
// an optional fixed service delay (serialized — a one-lane server that
// queues), and an optional always-shed mode.
type stubHandler struct {
	delay time.Duration
	shed  bool
	mu    sync.Mutex
}

func (h *stubHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.delay > 0 {
		h.mu.Lock()
		time.Sleep(h.delay)
		h.mu.Unlock()
	}
	w.Header().Set("X-Request-ID", "stub-id")
	w.Header().Set("X-HMS-Cache", "hit")
	if h.shed {
		w.WriteHeader(http.StatusTooManyRequests)
		return
	}
	w.Write([]byte(`{}`))
}

func TestRunBasics(t *testing.T) {
	target := &HandlerTarget{Handler: &stubHandler{}}
	wl := NewWorkload([]Op{{Name: "a", Method: "POST", Path: "/v1/rank", Body: []byte(`{}`), Weight: 3}})
	rep := Run(target, wl, Options{Rate: 500, Duration: 300 * time.Millisecond, Seed: 42})
	if rep.Latency.N == 0 {
		t.Fatal("no requests completed")
	}
	if rep.MissingID != 0 {
		t.Fatalf("%d responses missing request id", rep.MissingID)
	}
	if rep.Errors5xx != 0 || rep.Shed != 0 || rep.Overflow != 0 {
		t.Fatalf("unexpected failures: %+v", rep)
	}
	if rep.Status["200"] != rep.Latency.N {
		t.Fatalf("status map %v != N %d", rep.Status, rep.Latency.N)
	}
	if rep.ByCache["hit"] != rep.Latency.N {
		t.Fatalf("cache map %v", rep.ByCache)
	}
	if rep.Histogram.Count != int64(rep.Latency.N) {
		t.Fatalf("histogram count %d != N %d", rep.Histogram.Count, rep.Latency.N)
	}
	if rep.Latency.P50NS <= 0 || rep.Latency.P99NS < rep.Latency.P50NS {
		t.Fatalf("implausible quantiles: %+v", rep.Latency)
	}
}

// TestRunIsReproducible: identical seeds must produce identical arrival
// counts and op picks (latencies differ — they're wall-clock).
func TestRunIsReproducible(t *testing.T) {
	target := &HandlerTarget{Handler: &stubHandler{}}
	wl := NewWorkload([]Op{{Name: "a", Method: "GET", Path: "/x"}, {Name: "b", Method: "GET", Path: "/y"}})
	a := Run(target, wl, Options{Rate: 400, Duration: 200 * time.Millisecond, Seed: 7})
	b := Run(target, wl, Options{Rate: 400, Duration: 200 * time.Millisecond, Seed: 7})
	if a.Sent != b.Sent {
		t.Fatalf("same seed, different arrivals: %d vs %d", a.Sent, b.Sent)
	}
}

// TestCoordinatedOmissionSafety: with one slow in-flight cap the generator
// keeps offering load, so queued arrivals are charged their full scheduled
// wait. A closed-loop generator would report ~the service time; the CO-safe
// p99 must be far above it.
func TestCoordinatedOmissionSafety(t *testing.T) {
	const delay = 20 * time.Millisecond
	target := &HandlerTarget{Handler: &stubHandler{delay: delay}}
	wl := NewWorkload([]Op{{Name: "slow", Method: "GET", Path: "/x"}})
	// 200 req/s against a 20ms server = 4x oversubscribed on one lane.
	rep := Run(target, wl, Options{Rate: 200, Duration: 300 * time.Millisecond, Seed: 1})
	if rep.Latency.N == 0 {
		t.Fatal("no samples")
	}
	if p99 := time.Duration(rep.Latency.P99NS); p99 < 2*delay {
		t.Fatalf("p99 %v does not reflect queueing behind a %v server — coordinated omission", p99, delay)
	}
}

func TestSweepStopsAtSaturation(t *testing.T) {
	target := &HandlerTarget{Handler: &stubHandler{shed: true}}
	wl := NewWorkload([]Op{{Name: "a", Method: "GET", Path: "/x"}})
	res := Sweep(target, wl, SweepOptions{
		StartRPS: 100, StepRPS: 100, MaxRPS: 1000,
		StepDuration: 100 * time.Millisecond, Seed: 1,
	})
	if !res.Saturated {
		t.Fatal("all-shed target not reported as saturated")
	}
	if len(res.Steps) != 1 {
		t.Fatalf("sweep ran %d steps past saturation", len(res.Steps))
	}
	if res.SaturationRPS != 0 || res.SustainedRPS != 0 {
		t.Fatalf("sustained rate nonzero despite immediate saturation: %+v", res)
	}
}

func TestSweepCompletesWhenUnderThreshold(t *testing.T) {
	target := &HandlerTarget{Handler: &stubHandler{}}
	wl := NewWorkload([]Op{{Name: "a", Method: "GET", Path: "/x"}})
	res := Sweep(target, wl, SweepOptions{
		StartRPS: 100, StepRPS: 100, MaxRPS: 300,
		StepDuration: 100 * time.Millisecond, Seed: 1,
	})
	if res.Saturated {
		t.Fatalf("healthy target reported saturated: %+v", res)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("ran %d steps, want 3", len(res.Steps))
	}
	if res.SaturationRPS != 300 {
		t.Fatalf("saturation rate %v, want 300 (the ramp top)", res.SaturationRPS)
	}
}

func TestWorkloadPickRespectsWeights(t *testing.T) {
	wl := NewWorkload([]Op{
		{Name: "common", Weight: 9},
		{Name: "rare", Weight: 1},
	})
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[wl.pick(rng).Name]++
	}
	if counts["common"] < 8500 || counts["rare"] < 500 {
		t.Fatalf("weighted pick off: %v", counts)
	}
}
