package loadgen

import "time"

// SweepOptions configures a saturation sweep: a ramp of open-loop runs at
// increasing offered rates that stops once the service starts shedding more
// than the threshold fraction.
type SweepOptions struct {
	// StartRPS, StepRPS, MaxRPS define the offered-rate ramp (inclusive).
	StartRPS float64
	StepRPS  float64
	MaxRPS   float64
	// StepDuration is the arrival window of each step.
	StepDuration time.Duration
	// Seed makes every step reproducible (step i uses Seed+i).
	Seed int64
	// ShedThreshold is the shed fraction — (429s + overflow) over sent+overflow
	// — above which the sweep declares saturation and stops (default 0.01).
	ShedThreshold float64
	// MaxOutstanding is passed through to each step's run.
	MaxOutstanding int
	// OnStep, when set, observes each step's report as it completes
	// (progress output for the CLI).
	OnStep func(*Report)
}

// SweepResult is the outcome of a saturation sweep.
type SweepResult struct {
	// Steps holds every executed step, in ramp order — including the
	// saturated one that stopped the sweep, so the knee is visible in the
	// artifact.
	Steps []*Report `json:"steps"`
	// SaturationRPS is the highest offered rate that stayed under the shed
	// threshold (0 when even the first step saturated).
	SaturationRPS float64 `json:"saturation_rps"`
	// SustainedRPS is the achieved throughput at that rate.
	SustainedRPS float64 `json:"sustained_rps"`
	// SustainedP99NS is the CO-safe p99 latency at that rate.
	SustainedP99NS float64 `json:"sustained_p99_ns"`
	// Saturated reports whether the ramp actually found the knee (false
	// means the service absorbed MaxRPS without shedding).
	Saturated bool `json:"saturated"`
}

// shedFraction is the step's shed-or-dropped share of offered arrivals.
func shedFraction(r *Report) float64 {
	offered := r.Sent + r.Overflow
	if offered == 0 {
		return 0
	}
	return float64(r.Shed+r.Overflow) / float64(offered)
}

// Sweep ramps the offered rate from StartRPS to MaxRPS in StepRPS
// increments, running one open-loop step at each rate, and stops at the
// first step whose shed fraction exceeds the threshold. The last
// under-threshold step defines the sustained throughput.
func Sweep(target Target, wl *Workload, opt SweepOptions) *SweepResult {
	threshold := opt.ShedThreshold
	if threshold <= 0 {
		threshold = 0.01
	}
	res := &SweepResult{}
	step := 0
	for rate := opt.StartRPS; rate <= opt.MaxRPS+1e-9; rate += opt.StepRPS {
		rep := Run(target, wl, Options{
			Rate:           rate,
			Duration:       opt.StepDuration,
			Seed:           opt.Seed + int64(step),
			MaxOutstanding: opt.MaxOutstanding,
		})
		res.Steps = append(res.Steps, rep)
		if opt.OnStep != nil {
			opt.OnStep(rep)
		}
		if shedFraction(rep) > threshold {
			res.Saturated = true
			break
		}
		res.SaturationRPS = rate
		res.SustainedRPS = rep.AchievedRPS
		res.SustainedP99NS = rep.Latency.P99NS
		step++
		if opt.StepRPS <= 0 {
			break
		}
	}
	return res
}
