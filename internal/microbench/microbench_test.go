package microbench

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
)

func TestDetectRecoversDefaultMapping(t *testing.T) {
	topo := gpu.KeplerK80().DRAM
	m := dram.DefaultMapping(topo)
	res := Detect(topo, m, 0, m.RowLo+m.RowBits)

	if res.HitLatencyNS != topo.HitLatencyNS {
		t.Errorf("hit latency = %g, want %g", res.HitLatencyNS, topo.HitLatencyNS)
	}
	if res.MissLatencyNS != topo.MissLatencyNS {
		t.Errorf("miss latency = %g, want %g", res.MissLatencyNS, topo.MissLatencyNS)
	}
	if res.ConflictLatencyNS != topo.ConflictLatencyNS {
		t.Errorf("conflict latency = %g, want %g", res.ConflictLatencyNS, topo.ConflictLatencyNS)
	}

	for bit := uint(0); bit < m.RowLo+m.RowBits; bit++ {
		var want BitClass
		switch {
		case m.IsRowBit(bit):
			want = RowBit
		case m.IsBankBit(bit):
			want = BankBit
		default:
			want = ColumnBit
		}
		if res.Classes[bit] != want {
			t.Errorf("bit %d classified %v, want %v", bit, res.Classes[bit], want)
		}
	}
}

// Property: the detection recovers arbitrary (valid) bit-sliced mappings —
// the algorithm does not depend on the particular K80 layout.
func TestDetectRecoversRandomMappings(t *testing.T) {
	topo := gpu.KeplerK80().DRAM
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colLo := uint(3 + r.Intn(4))
		colBits := uint(3 + r.Intn(5))
		bankBits := uint(7)
		m := dram.Mapping{
			ColLo: colLo, ColBits: colBits,
			BankLo: colLo + colBits, BankBits: bankBits,
			RowLo: colLo + colBits + bankBits, RowBits: uint(10 + r.Intn(10)),
			TotalBanks: topo.TotalBanks(),
		}
		if m.Validate() != nil {
			return true // skip invalid combinations
		}
		res := Detect(topo, m, 0, m.RowLo+m.RowBits)
		for bit := uint(0); bit < m.RowLo+m.RowBits; bit++ {
			var want BitClass
			switch {
			case m.IsRowBit(bit):
				want = RowBit
			case m.IsBankBit(bit):
				want = BankBit
			default:
				want = ColumnBit
			}
			if res.Classes[bit] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBitsAndFormat(t *testing.T) {
	topo := gpu.KeplerK80().DRAM
	m := dram.DefaultMapping(topo)
	res := Detect(topo, m, 0, m.RowLo+m.RowBits)
	cols := res.Bits(ColumnBit)
	if len(cols) == 0 || cols[0] != 0 {
		t.Errorf("column bits = %v", cols)
	}
	rows := res.Bits(RowBit)
	if len(rows) != int(m.RowBits) || rows[0] != m.RowLo {
		t.Errorf("row bits = %v", rows)
	}
	out := res.Format()
	for _, want := range []string{"row-buffer hit latency", "row bits", "bank (other) bits"} {
		if !contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBitClassString(t *testing.T) {
	if ColumnBit.String() != "column" || RowBit.String() != "row" || BankBit.String() != "bank/other" {
		t.Error("bit class names")
	}
}

func TestRangesCompaction(t *testing.T) {
	for _, tc := range []struct {
		bits []uint
		want string
	}{
		{nil, "(none)"},
		{[]uint{3}, "3"},
		{[]uint{3, 4, 5}, "3-5"},
		{[]uint{0, 1, 5, 7, 8}, "0-1,5,7-8"},
	} {
		if got := ranges(tc.bits); got != tc.want {
			t.Errorf("ranges(%v) = %q, want %q", tc.bits, got, tc.want)
		}
	}
}
