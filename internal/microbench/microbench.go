// Package microbench implements Algorithm 1 of the paper: detection of the
// DRAM address-mapping scheme (which address bits select the row and which
// select the column) and measurement of the row-buffer hit, miss and
// conflict latencies — by issuing pairs of uncached single-thread loads
// whose addresses differ in exactly one bit and classifying the second
// access's latency.
//
// The paper runs the probe kernel on a real K80 ("ld.global.cs" loads); here
// the probe drives the event-driven DRAM model, validating that the
// detection algorithm recovers whatever mapping the hardware implements.
package microbench

import (
	"fmt"
	"sort"
	"strings"

	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
)

// BitClass is the detected role of one address bit.
type BitClass uint8

const (
	// ColumnBit: flipping the bit stays in the open row (shortest latency).
	// Byte-offset bits within one column classify identically; like the
	// paper, the probe does not distinguish them.
	ColumnBit BitClass = iota
	// RowBit: flipping the bit changes the row within the same bank —
	// a row conflict, the longest latency.
	RowBit
	// BankBit: flipping the bit lands in a different (idle) bank — a plain
	// row-buffer miss.
	BankBit
)

// String names the class.
func (c BitClass) String() string {
	switch c {
	case ColumnBit:
		return "column"
	case RowBit:
		return "row"
	default:
		return "bank/other"
	}
}

// Result is the detection outcome.
type Result struct {
	Classes []BitClass // index = address bit
	// Measured latencies, ns.
	HitLatencyNS      float64
	MissLatencyNS     float64
	ConflictLatencyNS float64
}

// Detect runs Algorithm 1 against a fresh DRAM system for the topology and
// mapping, probing address bits [lo, hi).
func Detect(topo gpu.DRAMTopology, mapping dram.Mapping, lo, hi uint) *Result {
	res := &Result{Classes: make([]BitClass, hi)}

	// One fresh DRAM state per bit experiment: the first access is then
	// guaranteed to be a first-touch row-buffer miss, and probes are spaced
	// 1 ms apart in time so no queuing pollutes the measurement.
	latencies := make([]float64, 0, hi-lo)
	type sample struct {
		bit uint
		lat float64
	}
	var samples []sample
	const base uint64 = 1 << 40
	for bit := lo; bit < hi; bit++ {
		sys := dram.NewSystem(topo, mapping)
		probe := func(addr uint64, at float64) float64 {
			r := sys.Service(addr, at)
			return r.Latency(at)
		}
		probe(base, 0)                   // always a row-buffer miss
		lat := probe(base^(1<<bit), 1e6) // classify by this latency
		samples = append(samples, sample{bit, lat})
		latencies = append(latencies, lat)
	}

	// Classify into three groups by latency: shortest = column bits,
	// longest = row bits, middle = bank/other (the paper's "classify the
	// address bits into three groups according to the access latency").
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	min, max := sorted[0], sorted[len(sorted)-1]
	for _, s := range samples {
		switch {
		case s.lat == min:
			res.Classes[s.bit] = ColumnBit
		case s.lat == max && max > min:
			res.Classes[s.bit] = RowBit
		default:
			res.Classes[s.bit] = BankBit
		}
	}
	res.HitLatencyNS = min
	res.ConflictLatencyNS = max

	// The plain-miss latency comes from any first-touch access.
	sys2 := dram.NewSystem(topo, mapping)
	r := sys2.Service(1<<39, 0)
	res.MissLatencyNS = r.Latency(0)
	return res
}

// Bits returns the detected bit positions of one class, ascending.
func (r *Result) Bits(c BitClass) []uint {
	var out []uint
	for b, cl := range r.Classes {
		if cl == c {
			out = append(out, uint(b))
		}
	}
	return out
}

// Format renders the detection like the paper reports it ("the row and
// column address bits are …").
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "row-buffer hit latency:      %6.0f ns\n", r.HitLatencyNS)
	fmt.Fprintf(&b, "row-buffer miss latency:     %6.0f ns\n", r.MissLatencyNS)
	fmt.Fprintf(&b, "row-conflict latency:        %6.0f ns\n", r.ConflictLatencyNS)
	fmt.Fprintf(&b, "column/byte bits:            %s\n", ranges(r.Bits(ColumnBit)))
	fmt.Fprintf(&b, "row bits:                    %s\n", ranges(r.Bits(RowBit)))
	fmt.Fprintf(&b, "bank (other) bits:           %s\n", ranges(r.Bits(BankBit)))
	return b.String()
}

// ranges compacts a sorted bit list into "a-b,c" notation.
func ranges(bits []uint) string {
	if len(bits) == 0 {
		return "(none)"
	}
	var parts []string
	start, prev := bits[0], bits[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, b := range bits[1:] {
		if b == prev+1 {
			prev = b
			continue
		}
		flush()
		start, prev = b, b
	}
	flush()
	return strings.Join(parts, ",")
}
