package kernels

import "gpuhms/internal/trace"

func init() {
	register(Spec{
		Name:        "md",
		Suite:       "SHOC",
		KernelName:  "compute_lj_force",
		Description: "Lennard-Jones force: coalesced neighbor-list reads, clumped random position gathers",
		Generate:    genMD,
		Sample:      "d_position:T",
		PlacementTests: []string{
			"d_position:G",
			"neighList:T",
			"d_position:G,neighList:T",
			"d_position:C",
		},
		Training: true,
	})
	register(Spec{
		Name:        "cfd",
		Suite:       "SDK",
		KernelName:  "cuda_compute_flux",
		Description: "unstructured-mesh flux: coalesced connectivity, gathered neighbor state",
		Generate:    genCFD,
		Sample:      "",
		PlacementTests: []string{
			"variables:T",
		},
		Training: true,
	})
	register(Spec{
		Name:        "s3d",
		Suite:       "SHOC",
		KernelName:  "gr_base",
		Description: "chemical rate evaluation: pressure + per-species mass fraction streams, SFU-heavy",
		Generate:    genS3D,
		Sample:      "",
		PlacementTests: []string{
			"gpu_p:T",
			"gpu_y:T",
			"gpu_p:T,gpu_y:T",
		},
		Training: false,
	})
}

// genMD emits the SHOC MD Lennard-Jones force kernel: one thread per atom,
// j-major neighbor list (coalesced reads), position gathers at random
// neighbor indices, heavy FP per pair.
func genMD(scale int) *trace.Trace {
	const (
		threadsPerBlock = 128
		maxNeighbors    = 32
	)
	nAtoms := 4096 * scale
	r := rng("md", scale)

	// Neighbor indices: random atoms, deterministic.
	neigh := make([]int64, nAtoms*maxNeighbors)
	for i := range neigh {
		neigh[i] = int64(r.Intn(nAtoms))
	}

	blocks := nAtoms / threadsPerBlock
	b := trace.NewBuilder("compute_lj_force", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	pos := b.DeclareArray(trace.Array{Name: "d_position", Type: trace.F32, Len: nAtoms, ReadOnly: true})
	nl := b.DeclareArray(trace.Array{Name: "neighList", Type: trace.I32, Len: nAtoms * maxNeighbors, ReadOnly: true})
	force := b.DeclareArray(trace.Array{Name: "d_force", Type: trace.F32, Len: nAtoms})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			atom0 := blk*threadsPerBlock + w*32
			// Own position.
			wb.LoadCoalesced(pos, int64(atom0), 32)
			for j := 0; j < maxNeighbors; j++ {
				// neighList is j-major: neighList[j*nAtoms + i].
				wb.LoadCoalesced(nl, int64(j*nAtoms+atom0), 32)
				for l := 0; l < 32; l++ {
					idx[l] = neigh[j*nAtoms+atom0+l]
				}
				wb.Load(pos, idx)
				wb.Int(1)
				wb.FP32(8) // r², r⁻⁶, force accumulation
			}
			wb.StoreCoalesced(force, int64(atom0), 32)
		}
	}
	return b.MustBuild()
}

// genCFD emits the Rodinia/SDK CFD flux kernel: per element, four
// neighbors' state variables are gathered through a connectivity array while
// face normals stream coalesced.
func genCFD(scale int) *trace.Trace {
	const (
		threadsPerBlock = 128
		nNeighbors      = 4
	)
	nElem := 4096 * scale
	r := rng("cfd", scale)

	surr := make([]int64, nElem*nNeighbors)
	for i := range surr {
		surr[i] = int64(r.Intn(nElem))
	}

	blocks := nElem / threadsPerBlock
	b := trace.NewBuilder("cuda_compute_flux", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	ese := b.DeclareArray(trace.Array{Name: "elements_surrounding", Type: trace.I32, Len: nElem * nNeighbors, ReadOnly: true})
	normals := b.DeclareArray(trace.Array{Name: "normals", Type: trace.F32, Len: nElem * nNeighbors * 3, ReadOnly: true})
	vars := b.DeclareArray(trace.Array{Name: "variables", Type: trace.F32, Len: nElem * 4, ReadOnly: true})
	fluxes := b.DeclareArray(trace.Array{Name: "fluxes", Type: trace.F32, Len: nElem * 4})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			elem0 := blk*threadsPerBlock + w*32
			// Own state: density, momentum, energy.
			for v := 0; v < 3; v++ {
				wb.LoadCoalesced(vars, int64(v*nElem+elem0), 32)
			}
			for j := 0; j < nNeighbors; j++ {
				wb.LoadCoalesced(ese, int64(j*nElem+elem0), 32)
				for v := 0; v < 3; v++ {
					for l := 0; l < 32; l++ {
						idx[l] = int64(v*nElem) + surr[j*nElem+elem0+l]
					}
					wb.Load(vars, idx)
				}
				for v := 0; v < 3; v++ {
					wb.LoadCoalesced(normals, int64((j*3+v)*nElem+elem0), 32)
				}
				wb.Int(2)
				wb.FP32(15)
				wb.SFU(1) // sqrt in the speed-of-sound term
			}
			for v := 0; v < 4; v++ {
				wb.StoreCoalesced(fluxes, int64(v*nElem+elem0), 32)
			}
		}
	}
	return b.MustBuild()
}

// genS3D emits the S3D gr_base rate kernel: per grid point, the pressure
// and 22 species mass fractions stream in coalesced, with SFU-heavy
// Arrhenius evaluations.
func genS3D(scale int) *trace.Trace {
	const (
		threadsPerBlock = 128
		nSpecies        = 22
	)
	n := 4096 * scale
	blocks := n / threadsPerBlock
	b := trace.NewBuilder("gr_base", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	p := b.DeclareArray(trace.Array{Name: "gpu_p", Type: trace.F32, Len: n, ReadOnly: true})
	y := b.DeclareArray(trace.Array{Name: "gpu_y", Type: trace.F32, Len: n * nSpecies, Width: n, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "gpu_wdot", Type: trace.F32, Len: n})

	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			i0 := blk*threadsPerBlock + w*32
			wb.LoadCoalesced(p, int64(i0), 32)
			wb.FP32(4)
			for s := 0; s < nSpecies; s++ {
				wb.LoadCoalesced(y, int64(s*n+i0), 32)
				wb.FP32(6)
				wb.SFU(2) // exp/log in the Arrhenius terms
				wb.Int(1)
			}
			wb.StoreCoalesced(out, int64(i0), 32)
		}
	}
	return b.MustBuild()
}
