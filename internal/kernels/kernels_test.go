package kernels

import (
	"reflect"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	// The Table IV roster plus the micro and extension corpora.
	want := []string{
		"bfs", "blackscholes", "cfd", "convolution", "dct8x8", "fft",
		"histogram", "kmeans", "matrixMul", "md", "md5hash", "mriq",
		"nbody", "neuralnet", "pathfinder", "qtc", "reduction", "s3d",
		"scan", "scatteradd", "sort", "spmv", "stencil2d", "tablelookup",
		"transpose", "triad", "vecadd",
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kernel roster:\n got %v\nwant %v", got, want)
	}
	if _, ok := Get("bogus"); ok {
		t.Error("unknown kernel should not resolve")
	}
	// Table IV kernels carry their original suite; extensions are marked.
	for _, n := range []string{"nbody", "kmeans", "blackscholes", "pathfinder", "dct8x8", "mriq", "histogram", "scatteradd"} {
		if MustGet(n).Suite != "ext" {
			t.Errorf("%s should be in the extension corpus", n)
		}
	}
}

func TestTrainingEvalSplit(t *testing.T) {
	training := map[string]bool{}
	for _, n := range TrainingNames() {
		training[n] = true
	}
	// Table IV bottom half.
	for _, n := range []string{"convolution", "md", "matrixMul", "spmv", "transpose", "cfd", "triad", "qtc"} {
		if !training[n] {
			t.Errorf("%s should be a training kernel", n)
		}
	}
	// Table IV top half.
	for _, n := range []string{"bfs", "fft", "neuralnet", "reduction", "scan", "sort", "stencil2d", "md5hash", "s3d"} {
		if training[n] {
			t.Errorf("%s should be an evaluation kernel", n)
		}
	}
	if len(TrainingNames())+len(EvalNames()) != len(Names()) {
		t.Error("split must partition the roster")
	}
}

// TestAllKernelsProduceValidLegalTraces exercises every generator: the trace
// validates, the sample placement and all placement tests are legal, and
// generation is deterministic.
func TestAllKernelsProduceValidLegalTraces(t *testing.T) {
	cfg := gpu.KeplerK80()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := MustGet(name)
			tr := spec.Trace(1)
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if tr.Launch.TotalWarps() != len(tr.Warps) {
				t.Errorf("launch says %d warps, trace has %d",
					tr.Launch.TotalWarps(), len(tr.Warps))
			}
			sample, err := spec.SamplePlacement(tr)
			if err != nil {
				t.Fatalf("sample: %v", err)
			}
			if err := placement.Check(tr, sample, cfg); err != nil {
				t.Fatalf("sample illegal: %v", err)
			}
			targets, err := spec.Targets(tr)
			if err != nil {
				t.Fatalf("targets: %v", err)
			}
			if len(targets) != len(spec.PlacementTests) {
				t.Errorf("%d targets for %d tests", len(targets), len(spec.PlacementTests))
			}
			for i, target := range targets {
				if err := placement.Check(tr, target, cfg); err != nil {
					t.Errorf("test %d (%s) illegal: %v", i, spec.PlacementTests[i], err)
				}
				if target.Equal(sample) {
					t.Errorf("test %d equals the sample placement", i)
				}
			}

			// Determinism: regeneration yields an identical trace.
			tr2 := spec.Trace(1)
			if !reflect.DeepEqual(tr, tr2) {
				t.Error("generator is not deterministic")
			}
		})
	}
}

func TestTargetsApplyOnlyNamedOverrides(t *testing.T) {
	spec := MustGet("spmv")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	targets, err := spec.Targets(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Test "rowD:S,d_vec:G": only rowD and d_vec may differ from sample.
	target := targets[0]
	rowD, _ := tr.ArrayByName("rowD")
	dvec, _ := tr.ArrayByName("d_vec")
	for i := range tr.Arrays {
		id := trace.ArrayID(i)
		if id == rowD || id == dvec {
			continue
		}
		if target.Of(id) != sample.Of(id) {
			t.Errorf("array %s changed unexpectedly", tr.Arrays[i].Name)
		}
	}
	if target.Of(rowD) != gpu.Shared || target.Of(dvec) != gpu.Global {
		t.Errorf("overrides not applied: rowD=%v d_vec=%v", target.Of(rowD), target.Of(dvec))
	}
}

func TestScaleGrowsProblems(t *testing.T) {
	for _, name := range []string{"vecadd", "matrixMul", "spmv"} {
		small := MustGet(name).Trace(1)
		big := MustGet(name).Trace(2)
		if len(big.Warps) <= len(small.Warps) {
			t.Errorf("%s: scale 2 has %d warps vs %d", name, len(big.Warps), len(small.Warps))
		}
	}
	// Scale < 1 clamps to 1.
	if got := MustGet("vecadd").Trace(0); len(got.Warps) != len(MustGet("vecadd").Trace(1).Warps) {
		t.Error("scale 0 should clamp to 1")
	}
}

// Structural spot checks: the generators must reproduce the access-pattern
// features the paper's analysis depends on.
func TestKernelStructuralProperties(t *testing.T) {
	t.Run("transpose stores are fully strided", func(t *testing.T) {
		tr := MustGet("transpose").Trace(1)
		var store *trace.Inst
		for i := range tr.Warps[0].Inst {
			if tr.Warps[0].Inst[i].Op == trace.OpStore {
				store = &tr.Warps[0].Inst[i]
				break
			}
		}
		if store == nil {
			t.Fatal("no store found")
		}
		// Adjacent lanes within a row of the tile are a full matrix column
		// apart after transposition.
		dim := tr.Arrays[0].Width
		if store.Index[1]-store.Index[0] != int64(dim) {
			t.Errorf("store lane stride = %d, want %d", store.Index[1]-store.Index[0], dim)
		}
	})

	t.Run("neuralnet weight rows are lane-strided", func(t *testing.T) {
		tr := MustGet("neuralnet").Trace(1)
		wID, _ := tr.ArrayByName("weights")
		nIn := int64(tr.Arrays[wID].Width)
		for i := range tr.Warps[0].Inst {
			in := &tr.Warps[0].Inst[i]
			if in.Op == trace.OpLoad && in.Array == wID {
				if in.Index[1]-in.Index[0] != nIn {
					t.Errorf("weights lane stride = %d, want %d", in.Index[1]-in.Index[0], nIn)
				}
				return
			}
		}
		t.Fatal("no weights load found")
	})

	t.Run("fft exchanges through the scratch buffer conflict", func(t *testing.T) {
		tr := MustGet("fft").Trace(1)
		sID, _ := tr.ArrayByName("smem")
		found := false
		for i := range tr.Warps[0].Inst {
			in := &tr.Warps[0].Inst[i]
			if in.Op == trace.OpStore && in.Array == sID {
				// Stride-8 words on 32 banks → multi-way conflicts.
				if (in.Index[1]-in.Index[0])%8 == 0 && in.Index[1] != in.Index[0] {
					found = true
				}
				break
			}
		}
		if !found {
			t.Error("fft scratch stores should be power-of-two strided")
		}
	})

	t.Run("md neighbor list is j-major coalesced", func(t *testing.T) {
		tr := MustGet("md").Trace(1)
		nlID, _ := tr.ArrayByName("neighList")
		for i := range tr.Warps[0].Inst {
			in := &tr.Warps[0].Inst[i]
			if in.Op == trace.OpLoad && in.Array == nlID {
				if in.Index[1]-in.Index[0] != 1 {
					t.Errorf("neighList loads should be unit stride, got %d",
						in.Index[1]-in.Index[0])
				}
				return
			}
		}
		t.Fatal("no neighList load found")
	})

	t.Run("md5hash is compute-dominated", func(t *testing.T) {
		st := trace.ComputeStats(MustGet("md5hash").Trace(1))
		if st.MemInsts()*20 > st.Executed() {
			t.Errorf("md5hash should be >95%% compute: mem=%d exec=%d",
				st.MemInsts(), st.Executed())
		}
	})

	t.Run("convolution filter reads broadcast", func(t *testing.T) {
		tr := MustGet("convolution").Trace(1)
		kID, _ := tr.ArrayByName("c_Kernel")
		for i := range tr.Warps[0].Inst {
			in := &tr.Warps[0].Inst[i]
			if in.Op == trace.OpLoad && in.Array == kID {
				for l := 1; l < 32; l++ {
					if in.Index[l] != in.Index[0] {
						t.Fatal("filter load should broadcast one element")
					}
				}
				return
			}
		}
		t.Fatal("no filter load found")
	})
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet of unknown kernel should panic")
		}
	}()
	MustGet("nope")
}
