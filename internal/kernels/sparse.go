package kernels

import "gpuhms/internal/trace"

func init() {
	register(Spec{
		Name:        "spmv",
		Suite:       "SHOC",
		KernelName:  "spmv_csr_scalar_kernel",
		Description: "CSR sparse matrix-vector multiply: divergent row walks and random gathers of the dense vector",
		Generate:    genSpmv,
		Sample:      "d_vec:T",
		PlacementTests: []string{
			"rowD:S,d_vec:G",
			"rowD:C,d_vec:G",
			"rowD:T,d_vec:G",
			"rowD:S",
			"val:T,d_vec:G",
			"rowD:T,d_vec:C",
			"val:T,cols:T,rowD:C,d_vec:G",
			"val:T,cols:T",
			"d_vec:G",
		},
		Training: true,
	})
	register(Spec{
		Name:        "bfs",
		Suite:       "SHOC",
		KernelName:  "BFS_kernel_warp",
		Description: "level-synchronous BFS: coalesced offsets, scattered edge and cost gathers",
		Generate:    genBFS,
		Sample:      "",
		PlacementTests: []string{
			"edgeArray:T",
		},
		Training: false,
	})
	register(Spec{
		Name:        "qtc",
		Suite:       "SHOC",
		KernelName:  "QTC_device",
		Description: "quality-threshold clustering: column walks of a dense distance matrix",
		Generate:    genQTC,
		Sample:      "",
		PlacementTests: []string{
			"distance_matrix:2T",
		},
		Training: true,
	})
}

// genSpmv emits the SHOC CSR scalar kernel: one thread per matrix row. Row
// lengths vary, so per-iteration val/cols loads are scattered across lanes
// and the dense-vector gather is effectively random.
func genSpmv(scale int) *trace.Trace {
	const threadsPerBlock = 128
	nRows := 4096 * scale
	r := rng("spmv", scale)

	// Build a deterministic CSR structure: 4..36 nonzeros per row.
	rowStart := make([]int64, nRows+1)
	for i := 0; i < nRows; i++ {
		rowStart[i+1] = rowStart[i] + int64(4+r.Intn(33))
	}
	nnz := int(rowStart[nRows])

	blocks := nRows / threadsPerBlock
	b := trace.NewBuilder("spmv_csr_scalar_kernel", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	val := b.DeclareArray(trace.Array{Name: "val", Type: trace.F32, Len: nnz, ReadOnly: true})
	cols := b.DeclareArray(trace.Array{Name: "cols", Type: trace.I32, Len: nnz, ReadOnly: true})
	rowD := b.DeclareArray(trace.Array{Name: "rowD", Type: trace.I32, Len: nRows + 1, ReadOnly: true})
	vec := b.DeclareArray(trace.Array{Name: "d_vec", Type: trace.F32, Len: nRows, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "out", Type: trace.F32, Len: nRows})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			row0 := blk*threadsPerBlock + w*32
			// Load row delimiters: myRow and myRow+1 (approximated as one
			// 33-wide coalesced pair of loads).
			wb.LoadCoalesced(rowD, int64(row0), 32)
			wb.LoadCoalesced(rowD, int64(row0)+1, 32)

			maxLen := int64(0)
			for l := 0; l < 32; l++ {
				if n := rowStart[row0+l+1] - rowStart[row0+l]; n > maxLen {
					maxLen = n
				}
			}
			for j := int64(0); j < maxLen; j++ {
				anyActive := false
				for l := 0; l < 32; l++ {
					start, end := rowStart[row0+l], rowStart[row0+l+1]
					if start+j < end {
						idx[l] = start + j
						anyActive = true
					} else {
						idx[l] = trace.Inactive
					}
				}
				if !anyActive {
					break
				}
				wb.Branch(1)
				wb.Load(val, append([]int64(nil), idx...))
				wb.Load(cols, append([]int64(nil), idx...))
				// Gather the dense vector at the column index: a
				// deterministic pseudo-random column per nonzero.
				for l := 0; l < 32; l++ {
					if idx[l] != trace.Inactive {
						idx[l] = (idx[l]*2654435761 + 11) % int64(nRows)
					}
				}
				wb.Load(vec, idx)
				wb.Int(1)
				wb.FP32(2)
			}
			wb.StoreCoalesced(out, int64(row0), 32)
		}
	}
	return b.MustBuild()
}

// genBFS emits a warp-per-node-chunk BFS level sweep over a random graph.
func genBFS(scale int) *trace.Trace {
	const threadsPerBlock = 128
	nNodes := 4096 * scale
	r := rng("bfs", scale)

	degree := make([]int, nNodes)
	offsets := make([]int64, nNodes+1)
	for i := 0; i < nNodes; i++ {
		degree[i] = 2 + r.Intn(12)
		offsets[i+1] = offsets[i] + int64(degree[i])
	}
	nEdges := int(offsets[nNodes])

	blocks := nNodes / threadsPerBlock
	b := trace.NewBuilder("BFS_kernel_warp", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	offs := b.DeclareArray(trace.Array{Name: "edgeOffsets", Type: trace.I32, Len: nNodes + 1, ReadOnly: true})
	edges := b.DeclareArray(trace.Array{Name: "edgeArray", Type: trace.I32, Len: nEdges, ReadOnly: true})
	costs := b.DeclareArray(trace.Array{Name: "costs", Type: trace.I32, Len: nNodes})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			node0 := blk*threadsPerBlock + w*32
			wb.LoadCoalesced(offs, int64(node0), 32)
			wb.LoadCoalesced(costs, int64(node0), 32)

			maxDeg := 0
			for l := 0; l < 32; l++ {
				if degree[node0+l] > maxDeg {
					maxDeg = degree[node0+l]
				}
			}
			for j := 0; j < maxDeg; j++ {
				for l := 0; l < 32; l++ {
					if j < degree[node0+l] {
						idx[l] = offsets[node0+l] + int64(j)
					} else {
						idx[l] = trace.Inactive
					}
				}
				wb.Branch(1)
				wb.Load(edges, append([]int64(nil), idx...))
				for l := 0; l < 32; l++ {
					if idx[l] != trace.Inactive {
						idx[l] = (idx[l]*40503 + 7) % int64(nNodes)
					}
				}
				wb.Load(costs, append([]int64(nil), idx...))
				wb.Int(2)
			}
			wb.StoreCoalesced(costs, int64(node0), 32)
		}
	}
	return b.MustBuild()
}

// genQTC emits the QTC clustering inner loop: each lane owns a seed point
// and walks a *column* of the seed's distance-matrix row block, so lanes
// stride by the matrix dimension — poor 1D locality, good 2D tile locality.
func genQTC(scale int) *trace.Trace {
	const threadsPerBlock = 64
	dim := 256
	seeds := 2048 * scale
	blocks := seeds / threadsPerBlock
	b := trace.NewBuilder("QTC_device", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	dm := b.DeclareArray(trace.Array{Name: "distance_matrix", Type: trace.F32, Len: dim * dim, Width: dim, ReadOnly: true})
	cand := b.DeclareArray(trace.Array{Name: "candidates", Type: trace.I32, Len: seeds})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			seed0 := blk*threadsPerBlock + w*32
			for j := 0; j < 64; j++ {
				for l := 0; l < 32; l++ {
					row := (seed0 + l) % dim
					idx[l] = int64(row)*int64(dim) + int64(j)
				}
				wb.Load(dm, idx)
				wb.FP32(1)
				wb.Int(1)
			}
			wb.StoreCoalesced(cand, int64(seed0), 32)
		}
	}
	return b.MustBuild()
}
