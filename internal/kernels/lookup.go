package kernels

import "gpuhms/internal/trace"

func init() {
	register(Spec{
		Name:       "tablelookup",
		Suite:      "micro",
		KernelName: "table_lookup",
		Description: "broadcast gather through a 60 KiB read-only coefficient table; " +
			"the table fits K80 constant memory (64 KiB) but not the chiplet's local " +
			"constant segment (32 KiB), so the best placement differs across architectures",
		Generate: genTableLookup,
		Sample:   "",
		PlacementTests: []string{
			"table:C",
			"table:T",
		},
		Training: false,
	})
}

// genTableLookup emits a coefficient-table kernel: every warp streams its
// input slice, and each element selects a table entry that all 32 lanes read
// together (the broadcast pattern constant memory is built for). The table
// is 15360 float32 = 60 KiB regardless of scale — placement capacity is an
// architectural property, not a workload one — sized between the chiplet's
// 32 KiB local constant segment and the K80's 64 KiB one, which is what
// makes its best placement architecture-dependent (docs/ARCHES.md).
func genTableLookup(scale int) *trace.Trace {
	const threadsPerBlock = 256
	const tableLen = 15360 // 60 KiB of float32
	n := 8192 * scale
	blocks := n / threadsPerBlock
	b := trace.NewBuilder("table_lookup", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	table := b.DeclareArray(trace.Array{Name: "table", Type: trace.F32, Len: tableLen, ReadOnly: true})
	in := b.DeclareArray(trace.Array{Name: "in", Type: trace.F32, Len: n, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "out", Type: trace.F32, Len: n})
	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wid := blk*warpsPerBlock + w
			base := int64(wid * 32)
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1) // id = blockIdx*blockDim + threadIdx; bounds check
			wb.LoadCoalesced(in, base, 32)
			// 32 table probes per warp over one warp-selected 16-entry row
			// (a single 64-byte line), each entry read twice: the broadcast-
			// with-reuse pattern constant memory is built for.
			for k := 0; k < 32; k++ {
				idx := int64((wid*16 + k/2%16) % tableLen)
				wb.Int(2) // index arithmetic: scale + wrap
				wb.LoadBroadcast(table, idx, 32)
				wb.FP32(2) // fused multiply-add against the streamed element
			}
			wb.StoreCoalesced(out, base, 32)
		}
	}
	return b.MustBuild()
}
