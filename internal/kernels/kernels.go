// Package kernels provides the workload generators of the reproduction:
// placement-neutral traces whose array structure and per-warp memory access
// patterns follow the SHOC and CUDA-SDK kernels evaluated in the paper
// (Table IV). Each kernel declares its sample data placement and the data
// placement tests run against it.
//
// The generators replace the paper's SASSI-instrumented CUDA binaries: they
// emit the same information — per-warp instruction streams with per-lane
// element indices — for faithful re-creations of the kernels' access
// patterns (coalesced streams, strided and gather accesses, broadcast
// constant reads, shared-memory butterflies, …).
package kernels

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// Spec describes one benchmark kernel.
type Spec struct {
	// Name is the registry key ("matrixMul", "spmv", …).
	Name string
	// Suite is the benchmark's origin in the paper ("SHOC", "SDK", "micro").
	Suite string
	// KernelName is the GPU kernel function the paper instruments
	// ("vector_kernel", "compute_lj_force", …).
	KernelName string
	// Description summarizes the access pattern.
	Description string

	// Generate produces the trace at a given scale (1 = test scale; larger
	// values grow the problem size). Generators are deterministic.
	Generate func(scale int) *trace.Trace

	// Sample is the kernel's existing data placement in Table IV notation
	// ("d_position:T"); unlisted arrays are in global memory.
	Sample string

	// PlacementTests are the target data placements evaluated against the
	// sample, each as comma-separated overrides of the sample placement
	// ("weights:C", "A:2T,B:2T"). The sample itself is test 0 and is not
	// listed.
	PlacementTests []string

	// Training marks kernels whose placements train the T_overlap model
	// (Table IV bottom half); the rest form the evaluation set.
	Training bool
}

// Trace generates the kernel's trace at the given scale.
func (s Spec) Trace(scale int) *trace.Trace {
	if scale < 1 {
		scale = 1
	}
	return s.Generate(scale)
}

// SamplePlacement parses the kernel's sample placement for a trace.
func (s Spec) SamplePlacement(t *trace.Trace) (*placement.Placement, error) {
	return placement.Parse(t, s.Sample)
}

// Targets parses every placement test into a full target placement
// (sample placement with the test's overrides applied).
func (s Spec) Targets(t *trace.Trace) ([]*placement.Placement, error) {
	sample, err := s.SamplePlacement(t)
	if err != nil {
		return nil, err
	}
	out := make([]*placement.Placement, 0, len(s.PlacementTests))
	for _, spec := range s.PlacementTests {
		ov, err := placement.Parse(t, spec)
		if err != nil {
			return nil, fmt.Errorf("kernel %s test %q: %w", s.Name, spec, err)
		}
		target := sample.Clone()
		// Apply only the overrides actually named in the spec: re-parse to
		// know which arrays were mentioned.
		applied, err := applyOverrides(t, sample, spec, ov)
		if err != nil {
			return nil, err
		}
		target = applied
		out = append(out, target)
	}
	return out, nil
}

func applyOverrides(t *trace.Trace, sample *placement.Placement, spec string, parsed *placement.Placement) (*placement.Placement, error) {
	target := sample.Clone()
	named, err := namedArrays(t, spec)
	if err != nil {
		return nil, err
	}
	for _, id := range named {
		target.Spaces[id] = parsed.Spaces[id]
	}
	return target, nil
}

func namedArrays(t *trace.Trace, spec string) ([]trace.ArrayID, error) {
	var ids []trace.ArrayID
	for _, part := range strings.Split(spec, ",") {
		name, _, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("kernels: bad placement element %q", part)
		}
		id, found := t.ArrayByName(strings.TrimSpace(name))
		if !found {
			return nil, fmt.Errorf("kernels: unknown array %q in %q", name, spec)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

var registry = map[string]Spec{}

// Register validates and adds a workload to the registry. It rejects
// duplicates, unnamed specs, and specs without a generator, so external
// callers extending the corpus get errors rather than panics or silently
// broken lookups.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("kernels: spec has no name")
	}
	if s.Generate == nil {
		return fmt.Errorf("kernels: kernel %s has no generator", s.Name)
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("kernels: duplicate kernel %s", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// register is Register for the statically-correct built-in corpus
// (init-time registration, where a failure is a programming bug).
func register(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get looks up a kernel by name.
func Get(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// MustGet looks up a kernel and panics when absent (for experiment drivers
// whose kernel lists are static).
func MustGet(name string) Spec {
	s, ok := registry[name]
	if !ok {
		panic("kernels: unknown kernel " + name)
	}
	return s
}

// Names returns all registered kernel names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TrainingNames returns the kernels whose placements train T_overlap.
func TrainingNames() []string {
	var out []string
	for _, n := range Names() {
		if registry[n].Training {
			out = append(out, n)
		}
	}
	return out
}

// EvalNames returns the evaluation kernels (Table IV top half).
func EvalNames() []string {
	var out []string
	for _, n := range Names() {
		if !registry[n].Training {
			out = append(out, n)
		}
	}
	return out
}

// rng returns a deterministic per-kernel random source.
func rng(kernel string, scale int) *rand.Rand {
	var seed int64 = 0x5eed
	for _, c := range kernel {
		seed = seed*131 + int64(c)
	}
	return rand.New(rand.NewSource(seed + int64(scale)*7919))
}
