package kernels

import "gpuhms/internal/trace"

func init() {
	register(Spec{
		Name:        "convolution",
		Suite:       "SDK",
		KernelName:  "convolutionRowsKernel",
		Description: "separable row convolution: sliding coalesced window + broadcast filter taps",
		Generate:    genConvolutionRows,
		Sample:      "c_Kernel:C",
		PlacementTests: []string{
			"d_Src:2T",
			"d_Src:T",
			"c_Kernel:G",
			"c_Kernel:T",
		},
		Training: true,
	})
	register(Spec{
		Name:        "stencil2d",
		Suite:       "SHOC",
		KernelName:  "StencilKernel",
		Description: "9-point 2D stencil with strong 2D spatial locality",
		Generate:    genStencil2D,
		Sample:      "",
		PlacementTests: []string{
			"data:T",
		},
		Training: false,
	})
}

// genConvolutionRows emits the SDK separable convolution's row pass: one
// thread per pixel, a radius-8 filter. Every tap loads a shifted coalesced
// window of d_Src and broadcasts one filter coefficient.
func genConvolutionRows(scale int) *trace.Trace {
	const (
		radius          = 8
		threadsPerBlock = 256
	)
	width := 256
	height := 64 * scale
	n := width * height
	blocks := n / threadsPerBlock
	b := trace.NewBuilder("convolutionRowsKernel", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	src := b.DeclareArray(trace.Array{Name: "d_Src", Type: trace.F32, Len: n, Width: width, ReadOnly: true})
	kern := b.DeclareArray(trace.Array{Name: "c_Kernel", Type: trace.F32, Len: 2*radius + 1, ReadOnly: true})
	dst := b.DeclareArray(trace.Array{Name: "d_Dst", Type: trace.F32, Len: n, Width: width})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			base := blk*threadsPerBlock + w*32
			y := base / width
			x0 := base % width
			for k := -radius; k <= radius; k++ {
				for l := 0; l < 32; l++ {
					x := x0 + l + k
					if x < 0 {
						x = 0
					}
					if x >= width {
						x = width - 1
					}
					idx[l] = int64(y*width + x)
				}
				wb.Int(1)
				wb.Load(src, idx)
				wb.LoadBroadcast(kern, int64(k+radius), 32)
				wb.FP32(2)
			}
			wb.StoreCoalesced(dst, int64(base), 32)
		}
	}
	return b.MustBuild()
}

// genStencil2D emits the SHOC 2D 9-point stencil: each output reads its 3x3
// neighborhood; rows above/below the warp's row give the access 2D locality
// that the texture cache exploits.
func genStencil2D(scale int) *trace.Trace {
	dim := 128 * scale
	const threadsPerBlock = 256
	n := dim * dim
	blocks := n / threadsPerBlock
	b := trace.NewBuilder("StencilKernel", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	data := b.DeclareArray(trace.Array{Name: "data", Type: trace.F32, Len: n, Width: dim, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "out", Type: trace.F32, Len: n, Width: dim})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v >= hi {
			return hi - 1
		}
		return v
	}
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			base := blk*threadsPerBlock + w*32
			y := base / dim
			x0 := base % dim
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					yy := clamp(y+dy, dim)
					for l := 0; l < 32; l++ {
						xx := clamp(x0+l+dx, dim)
						idx[l] = int64(yy*dim + xx)
					}
					wb.Load(data, idx)
					wb.FP32(1)
				}
			}
			wb.FP32(2)
			wb.StoreCoalesced(out, int64(base), 32)
		}
	}
	return b.MustBuild()
}
