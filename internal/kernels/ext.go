package kernels

import "gpuhms/internal/trace"

// The extension corpus: workloads beyond the paper's Table IV roster, kept
// out of the reproduced figures (suite "ext") but available to the advisor,
// the CLI, and the test suite. They cover placement-sensitive patterns the
// paper's set under-represents: broadcast-dominated all-pairs loops,
// centroid tables, option-pricing streams, DP row sweeps, 8x8 block
// transforms, non-uniform trigonometric tables, and privatized histograms.
func init() {
	register(Spec{
		Name:        "nbody",
		Suite:       "ext",
		KernelName:  "integrateBodies",
		Description: "all-pairs N-body tile loop: every interaction broadcasts one body's position",
		Generate:    genNBody,
		Sample:      "",
		PlacementTests: []string{
			"pos:C",
			"pos:T",
			"pos:S",
		},
	})
	register(Spec{
		Name:        "kmeans",
		Suite:       "ext",
		KernelName:  "findNearestCluster",
		Description: "k-means assignment: coalesced point reads against broadcast centroid table",
		Generate:    genKMeans,
		Sample:      "",
		PlacementTests: []string{
			"centroids:C",
			"centroids:S",
			"points:T",
			"centroids:C,points:T",
		},
		// Joins the T_overlap training corpus (broadcast-table pattern).
		Training: true,
	})
	register(Spec{
		Name:        "blackscholes",
		Suite:       "ext",
		KernelName:  "BlackScholesGPU",
		Description: "option pricing: three coalesced input streams, SFU-heavy math, two output streams",
		Generate:    genBlackScholes,
		Sample:      "",
		PlacementTests: []string{
			"price:T,strike:T,years:T",
			"years:S",
		},
	})
	register(Spec{
		Name:        "pathfinder",
		Suite:       "ext",
		KernelName:  "dynproc_kernel",
		Description: "DP row sweep: shifted coalesced reads of the previous row and the 2D wall",
		Generate:    genPathfinder,
		Sample:      "",
		PlacementTests: []string{
			"wall:T",
			"wall:2T",
		},
	})
	register(Spec{
		Name:        "dct8x8",
		Suite:       "ext",
		KernelName:  "CUDAkernel1DCT",
		Description: "8x8 block DCT: row-and-column passes over tiles with strong 2D locality",
		Generate:    genDCT8x8,
		Sample:      "",
		PlacementTests: []string{
			"src:2T",
			"src:T",
		},
	})
	register(Spec{
		Name:        "mriq",
		Suite:       "ext",
		KernelName:  "ComputeQ_GPU",
		Description: "MRI Q computation: trajectory-sample broadcasts with sin/cos per iteration",
		Generate:    genMRIQ,
		Sample:      "kx:C,ky:C,kz:C",
		PlacementTests: []string{
			"kx:G,ky:G,kz:G",
			"kx:T,ky:T,kz:T",
			"kx:S,ky:S,kz:S",
		},
	})
	register(Spec{
		Name:        "histogram",
		Suite:       "ext",
		KernelName:  "histogram64Kernel",
		Description: "privatized 64-bin histogram: coalesced reads, data-dependent scratch updates",
		Generate:    genHistogram,
		Sample:      "s_Hist:S",
		PlacementTests: []string{
			"s_Hist:G",
		},
		// Joins the T_overlap training corpus: the Table IV training set
		// has no shared-scratch-heavy pattern, which starves the Eq 11
		// regression of e_s variation.
		Training: true,
	})
	register(Spec{
		Name:        "scatteradd",
		Suite:       "ext",
		KernelName:  "scatterAddKernel",
		Description: "atomic scatter-add into a hot bin table: same-address lanes serialize (replay cause 6)",
		Generate:    genScatterAdd,
		Sample:      "",
		PlacementTests: []string{
			"bins:S",
		},
	})
}

// genScatterAdd emits a contended atomic accumulation: each lane atomically
// adds into one of a few dozen bins with a heavily skewed distribution, so
// warps routinely have many lanes on the same bin.
func genScatterAdd(scale int) *trace.Trace {
	const (
		threadsPerBlock = 128
		bins            = 48
	)
	n := 16384 * scale
	r := rng("scatteradd", scale)
	blocks := n / threadsPerBlock

	target := make([]int64, n)
	for i := range target {
		// Zipf-ish skew: bin 0 is the hottest.
		target[i] = int64(r.Intn(bins) * r.Intn(bins) * r.Intn(bins) / (bins * bins))
	}

	b := trace.NewBuilder("scatterAddKernel", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	in := b.DeclareArray(trace.Array{Name: "values", Type: trace.F32, Len: n, ReadOnly: true})
	bn := b.DeclareArray(trace.Array{Name: "bins", Type: trace.F32, Len: bins * blocks})

	idx := make([]int64, 32)
	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			base := blk*threadsPerBlock + w*32
			wb.LoadCoalesced(in, int64(base), 32)
			wb.Int(2)
			for l := 0; l < 32; l++ {
				idx[l] = int64(blk*bins) + target[base+l]
			}
			wb.Atomic(bn, idx)
		}
	}
	return b.MustBuild()
}

// genNBody emits the tile-based all-pairs N-body loop: each iteration
// broadcasts one body's position to the whole warp and accumulates forces.
func genNBody(scale int) *trace.Trace {
	const threadsPerBlock = 128
	bodies := 512 * scale
	blocks := bodies / threadsPerBlock
	b := trace.NewBuilder("integrateBodies", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	pos := b.DeclareArray(trace.Array{Name: "pos", Type: trace.F32, Len: bodies, ReadOnly: true})
	acc := b.DeclareArray(trace.Array{Name: "acc", Type: trace.F32, Len: bodies})

	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			i0 := blk*threadsPerBlock + w*32
			wb.LoadCoalesced(pos, int64(i0), 32) // own position
			for j := 0; j < bodies; j += 4 {
				// Unrolled by 4: one broadcast per interaction.
				for u := 0; u < 4; u++ {
					wb.LoadBroadcast(pos, int64(j+u), 32)
					wb.FP32(6) // dx, r², r⁻³ (rsqrt folded), accumulate
				}
				wb.SFU(1)
				wb.Branch(1)
			}
			wb.StoreCoalesced(acc, int64(i0), 32)
		}
	}
	return b.MustBuild()
}

// genKMeans emits the assignment step: each point (one thread) compares its
// coordinates against every centroid; centroid reads broadcast.
func genKMeans(scale int) *trace.Trace {
	const (
		threadsPerBlock = 128
		k               = 16
		dims            = 4
	)
	points := 4096 * scale
	blocks := points / threadsPerBlock
	b := trace.NewBuilder("findNearestCluster", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	pts := b.DeclareArray(trace.Array{Name: "points", Type: trace.F32, Len: points * dims, Width: points, ReadOnly: true})
	cent := b.DeclareArray(trace.Array{Name: "centroids", Type: trace.F32, Len: k * dims, ReadOnly: true})
	member := b.DeclareArray(trace.Array{Name: "membership", Type: trace.I32, Len: points})

	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			p0 := blk*threadsPerBlock + w*32
			// Own coordinates, dimension-major (coalesced per dimension).
			for d := 0; d < dims; d++ {
				wb.LoadCoalesced(pts, int64(d*points+p0), 32)
			}
			for c := 0; c < k; c++ {
				for d := 0; d < dims; d++ {
					wb.LoadBroadcast(cent, int64(c*dims+d), 32)
					wb.FP32(2) // diff², accumulate
				}
				wb.Int(2) // argmin bookkeeping
				wb.Branch(1)
			}
			wb.StoreCoalesced(member, int64(p0), 32)
		}
	}
	return b.MustBuild()
}

// genBlackScholes emits the SDK option-pricing kernel: pure streaming with
// heavy special-function math.
func genBlackScholes(scale int) *trace.Trace {
	const threadsPerBlock = 256
	n := 16384 * scale
	blocks := n / threadsPerBlock
	b := trace.NewBuilder("BlackScholesGPU", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	price := b.DeclareArray(trace.Array{Name: "price", Type: trace.F32, Len: n, ReadOnly: true})
	strike := b.DeclareArray(trace.Array{Name: "strike", Type: trace.F32, Len: n, ReadOnly: true})
	years := b.DeclareArray(trace.Array{Name: "years", Type: trace.F32, Len: n, ReadOnly: true})
	call := b.DeclareArray(trace.Array{Name: "call", Type: trace.F32, Len: n})
	put := b.DeclareArray(trace.Array{Name: "put", Type: trace.F32, Len: n})

	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			base := int64(blk*threadsPerBlock + w*32)
			wb.LoadCoalesced(price, base, 32)
			wb.LoadCoalesced(strike, base, 32)
			wb.LoadCoalesced(years, base, 32)
			wb.FP32(14) // d1/d2 arithmetic
			wb.SFU(4)   // sqrt, log, exp, CND polynomials
			wb.FP32(8)
			wb.StoreCoalesced(call, base, 32)
			wb.StoreCoalesced(put, base, 32)
		}
	}
	return b.MustBuild()
}

// genPathfinder emits the Rodinia DP sweep: each row reads the previous
// result row at offsets −1/0/+1 and the current wall row.
func genPathfinder(scale int) *trace.Trace {
	const threadsPerBlock = 256
	cols := 4096
	rows := 16 * scale
	blocks := cols / threadsPerBlock
	b := trace.NewBuilder("dynproc_kernel", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	wall := b.DeclareArray(trace.Array{Name: "wall", Type: trace.I32, Len: cols * rows, Width: cols, ReadOnly: true})
	result := b.DeclareArray(trace.Array{Name: "result", Type: trace.I32, Len: cols * 2})

	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		if v >= int64(cols) {
			return int64(cols) - 1
		}
		return v
	}
	idx := make([]int64, 32)
	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			x0 := int64(blk*threadsPerBlock + w*32)
			for r := 0; r < rows; r++ {
				src := int64((r % 2) * cols)
				dst := int64(((r + 1) % 2) * cols)
				for _, off := range []int64{-1, 0, 1} {
					for l := 0; l < 32; l++ {
						idx[l] = src + clamp(x0+int64(l)+off)
					}
					wb.Load(result, idx)
					wb.Int(1) // min()
				}
				wb.LoadCoalesced(wall, int64(r*cols)+x0, 32)
				wb.Int(1)
				wb.StoreCoalesced(result, dst+x0, 32)
				wb.Sync()
			}
		}
	}
	return b.MustBuild()
}

// genDCT8x8 emits the SDK 8x8 DCT: a row pass then a column pass over each
// tile — textbook 2D spatial locality.
func genDCT8x8(scale int) *trace.Trace {
	const threadsPerBlock = 64 // one 8x8 tile per warp pair
	dim := 128 * scale
	tiles := (dim / 8) * (dim / 8)
	blocks := tiles * 8 * 8 / threadsPerBlock
	b := trace.NewBuilder("CUDAkernel1DCT", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	src := b.DeclareArray(trace.Array{Name: "src", Type: trace.F32, Len: dim * dim, Width: dim, ReadOnly: true})
	dst := b.DeclareArray(trace.Array{Name: "dst", Type: trace.F32, Len: dim * dim, Width: dim})

	tilesPerRow := dim / 8
	idx := make([]int64, 32)
	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(4).Branch(1)
			// Each warp covers 4 rows of one 8x8 tile (8 lanes per row).
			tile := (blk*warpsPerBlock + w) / 2
			half := (blk*warpsPerBlock + w) % 2
			ty, tx := tile/tilesPerRow, tile%tilesPerRow
			baseY, baseX := ty*8+half*4, tx*8
			// Row pass: 4 rows × 8 lanes, coalesced within rows.
			for l := 0; l < 32; l++ {
				y := baseY + l/8
				x := baseX + l%8
				idx[l] = int64(y*dim + x)
			}
			wb.Load(src, append([]int64(nil), idx...))
			wb.FP32(16) // 8-point butterfly
			// Column pass: 4 columns × 8 rows per warp; lanes stride by dim
			// within a column.
			for l := 0; l < 32; l++ {
				y := ty*8 + l%8
				x := baseX + half*4 + l/8
				idx[l] = int64(y*dim + x)
			}
			wb.Load(src, append([]int64(nil), idx...))
			wb.FP32(16)
			for l := 0; l < 32; l++ {
				y := baseY + l/8
				x := baseX + l%8
				idx[l] = int64(y*dim + x)
			}
			wb.Store(dst, idx)
		}
	}
	return b.MustBuild()
}

// genMRIQ emits the Parboil MRI-Q inner loop: per voxel, every trajectory
// sample's k-space coordinates broadcast, followed by sin/cos.
func genMRIQ(scale int) *trace.Trace {
	const (
		threadsPerBlock = 128
		kSamples        = 256
	)
	voxels := 2048 * scale
	blocks := voxels / threadsPerBlock
	b := trace.NewBuilder("ComputeQ_GPU", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	kx := b.DeclareArray(trace.Array{Name: "kx", Type: trace.F32, Len: kSamples, ReadOnly: true})
	ky := b.DeclareArray(trace.Array{Name: "ky", Type: trace.F32, Len: kSamples, ReadOnly: true})
	kz := b.DeclareArray(trace.Array{Name: "kz", Type: trace.F32, Len: kSamples, ReadOnly: true})
	q := b.DeclareArray(trace.Array{Name: "Qr", Type: trace.F32, Len: voxels})

	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			v0 := int64(blk*threadsPerBlock + w*32)
			for s := 0; s < kSamples; s++ {
				wb.LoadBroadcast(kx, int64(s), 32)
				wb.LoadBroadcast(ky, int64(s), 32)
				wb.LoadBroadcast(kz, int64(s), 32)
				wb.FP32(5) // phase accumulation
				wb.SFU(2)  // sin, cos
			}
			wb.StoreCoalesced(q, v0, 32)
		}
	}
	return b.MustBuild()
}

// genHistogram emits the privatized 64-bin histogram: coalesced data reads,
// data-dependent updates of a per-block scratch table (bank conflicts when
// values collide).
func genHistogram(scale int) *trace.Trace {
	const (
		threadsPerBlock = 128
		bins            = 64
	)
	n := 32768 * scale
	r := rng("histogram", scale)
	blocks := n / threadsPerBlock
	data := make([]int64, n)
	for i := range data {
		// Skewed distribution: low bins are hot → same-bank pile-ups.
		data[i] = int64(r.Intn(bins) * r.Intn(bins) / bins)
	}

	b := trace.NewBuilder("histogram64Kernel", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	in := b.DeclareArray(trace.Array{Name: "d_Data", Type: trace.I32, Len: n, ReadOnly: true})
	hist := b.DeclareArray(trace.Array{Name: "s_Hist", Type: trace.I32, Len: bins * blocks})

	idx := make([]int64, 32)
	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			base := blk*threadsPerBlock + w*32
			wb.LoadCoalesced(in, int64(base), 32)
			wb.Int(2) // bin extraction
			for l := 0; l < 32; l++ {
				idx[l] = int64(blk*bins) + data[base+l]
			}
			wb.Load(hist, append([]int64(nil), idx...))
			wb.Int(1)
			wb.Store(hist, idx)
		}
	}
	return b.MustBuild()
}
