package kernels

import "gpuhms/internal/trace"

func init() {
	register(Spec{
		Name:        "vecadd",
		Suite:       "micro",
		KernelName:  "vecAdd",
		Description: "v = a + b; the Fig 2 running example with fully coalesced streams",
		Generate:    genVecAdd,
		Sample:      "",
		PlacementTests: []string{
			"a:T,b:T",
			"a:C",
			"a:S,b:S",
		},
		Training: false,
	})
	register(Spec{
		Name:        "triad",
		Suite:       "SHOC",
		KernelName:  "triad",
		Description: "C = A + s*B streaming triad",
		Generate:    genTriad,
		Sample:      "",
		PlacementTests: []string{
			"B:S",
		},
		Training: true,
	})
}

// genVecAdd emits the vector-addition kernel of Fig 2: one thread per
// element, unit-stride loads of a and b, one FP add, unit-stride store of v.
func genVecAdd(scale int) *trace.Trace {
	const threadsPerBlock = 256
	n := 16384 * scale
	blocks := n / threadsPerBlock
	b := trace.NewBuilder("vecAdd", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	a := b.DeclareArray(trace.Array{Name: "a", Type: trace.F32, Len: n, ReadOnly: true})
	bb := b.DeclareArray(trace.Array{Name: "b", Type: trace.F32, Len: n, ReadOnly: true})
	v := b.DeclareArray(trace.Array{Name: "v", Type: trace.F32, Len: n})
	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			base := int64(blk*threadsPerBlock + w*32)
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1) // id = blockIdx*blockDim + threadIdx; bounds check
			wb.LoadCoalesced(a, base, 32)
			wb.LoadCoalesced(bb, base, 32)
			wb.FP32(1)
			wb.StoreCoalesced(v, base, 32)
		}
	}
	return b.MustBuild()
}

// genTriad emits the SHOC triad kernel: C = A + s*B.
func genTriad(scale int) *trace.Trace {
	const threadsPerBlock = 256
	n := 16384 * scale
	blocks := n / threadsPerBlock
	b := trace.NewBuilder("triad", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	A := b.DeclareArray(trace.Array{Name: "A", Type: trace.F32, Len: n, ReadOnly: true})
	B := b.DeclareArray(trace.Array{Name: "B", Type: trace.F32, Len: n, ReadOnly: true})
	C := b.DeclareArray(trace.Array{Name: "C", Type: trace.F32, Len: n})
	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			base := int64(blk*threadsPerBlock + w*32)
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			wb.LoadCoalesced(A, base, 32)
			wb.LoadCoalesced(B, base, 32)
			wb.FP32(2) // mul + add
			wb.StoreCoalesced(C, base, 32)
		}
	}
	return b.MustBuild()
}
