package kernels

import "gpuhms/internal/trace"

func init() {
	register(Spec{
		Name:        "matrixMul",
		Suite:       "SDK",
		KernelName:  "matrixMul",
		Description: "C = A×B; per-iteration row broadcast of A, coalesced row of B",
		Generate:    genMatrixMul,
		Sample:      "",
		PlacementTests: []string{
			"A:2T,B:2T",
			"A:2T",
			"A:T",
			"A:T,B:2T",
			"B:2T",
			"A:T,B:T",
			"B:T",
		},
		Training: true,
	})
	register(Spec{
		Name:        "transpose",
		Suite:       "SDK",
		KernelName:  "transposeNaive",
		Description: "out[x][y] = in[y][x]; coalesced reads, fully strided writes",
		Generate:    genTranspose,
		Sample:      "",
		PlacementTests: []string{
			"idata:2T",
			"idata:T",
		},
		Training: true,
	})
}

// genMatrixMul emits a 16x16-thread-block matrix multiply: thread (tx,ty) of
// block (bx,by) computes C[by*16+ty][bx*16+tx]. A warp covers two rows of
// the block. Each k iteration loads A[row][k] (two distinct elements per
// warp, broadcast within a row of lanes) and B[k][col] (16 contiguous
// elements shared by both lane rows).
func genMatrixMul(scale int) *trace.Trace {
	dim := 64 * scale
	const tile = 16
	blocksPerDim := dim / tile
	blocks := blocksPerDim * blocksPerDim
	b := trace.NewBuilder("matrixMul", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: tile * tile, WarpSize: 32,
	})
	A := b.DeclareArray(trace.Array{Name: "A", Type: trace.F32, Len: dim * dim, Width: dim, ReadOnly: true})
	B := b.DeclareArray(trace.Array{Name: "B", Type: trace.F32, Len: dim * dim, Width: dim, ReadOnly: true})
	C := b.DeclareArray(trace.Array{Name: "C", Type: trace.F32, Len: dim * dim, Width: dim})

	warpsPerBlock := tile * tile / 32 // 8: each warp is two lane-rows
	aIdx := make([]int64, 32)
	bIdx := make([]int64, 32)
	cIdx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		by, bx := blk/blocksPerDim, blk%blocksPerDim
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(4).Branch(1) // row/col index setup
			row0 := int64(by*tile + w*2)
			col0 := int64(bx * tile)
			for k := 0; k < dim; k++ {
				for l := 0; l < 32; l++ {
					r := row0 + int64(l/tile)
					c := col0 + int64(l%tile)
					aIdx[l] = r*int64(dim) + int64(k)
					bIdx[l] = int64(k)*int64(dim) + c
				}
				wb.Int(2)
				wb.Load(A, aIdx)
				wb.Load(B, bIdx)
				wb.FP32(2) // fused multiply-add pair
			}
			for l := 0; l < 32; l++ {
				r := row0 + int64(l/tile)
				c := col0 + int64(l%tile)
				cIdx[l] = r*int64(dim) + c
			}
			wb.Store(C, cIdx)
		}
	}
	return b.MustBuild()
}

// genTranspose emits the SDK naive transpose: 16x16 thread blocks read a
// tile of idata with unit stride and write odata with stride dim — the
// classic fully-diverged store.
func genTranspose(scale int) *trace.Trace {
	dim := 96 * scale // 96x96 fp32 keeps idata within constant-memory capacity at scale 1
	const tile = 16
	blocksPerDim := dim / tile
	blocks := blocksPerDim * blocksPerDim
	b := trace.NewBuilder("transposeNaive", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: tile * tile, WarpSize: 32,
	})
	in := b.DeclareArray(trace.Array{Name: "idata", Type: trace.F32, Len: dim * dim, Width: dim, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "odata", Type: trace.F32, Len: dim * dim, Width: dim})

	warpsPerBlock := tile * tile / 32
	rIdx := make([]int64, 32)
	wIdx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		by, bx := blk/blocksPerDim, blk%blocksPerDim
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(4).Branch(1)
			for l := 0; l < 32; l++ {
				y := int64(by*tile + w*2 + l/tile)
				x := int64(bx*tile + l%tile)
				rIdx[l] = y*int64(dim) + x
				wIdx[l] = x*int64(dim) + y
			}
			wb.Load(in, rIdx)
			wb.Store(out, wIdx)
		}
	}
	return b.MustBuild()
}
