package kernels

import "gpuhms/internal/trace"

func init() {
	register(Spec{
		Name:        "fft",
		Suite:       "SHOC",
		KernelName:  "FFT512_device",
		Description: "512-point FFT per block: radix-8 butterflies through a shared-memory exchange buffer",
		Generate:    genFFT,
		Sample:      "smem:S",
		PlacementTests: []string{
			"smem:G",
		},
		Training: false,
	})
	register(Spec{
		Name:        "reduction",
		Suite:       "SHOC",
		KernelName:  "reduce",
		Description: "tree reduction through a per-block scratch array",
		Generate:    genReduction,
		Sample:      "sdata:S",
		PlacementTests: []string{
			"sdata:G",
		},
		Training: false,
	})
	register(Spec{
		Name:        "scan",
		Suite:       "SHOC",
		KernelName:  "reduce",
		Description: "scan's block-sum phase: wide coalesced reads of a 2D-shaped input",
		Generate:    genScanReduce,
		Sample:      "",
		PlacementTests: []string{
			"g_idata:2T",
		},
		Training: false,
	})
	register(Spec{
		Name:        "sort",
		Suite:       "SHOC",
		KernelName:  "reorderData",
		Description: "radix-sort reorder: coalesced key reads, digit-indexed offset lookups, scattered writes",
		Generate:    genSortReorder,
		Sample:      "sBlockOffsets:S",
		PlacementTests: []string{
			"sBlockOffsets:G",
		},
		Training: false,
	})
	register(Spec{
		Name:        "md5hash",
		Suite:       "SHOC",
		KernelName:  "FindKeyWithDigest_Kernel",
		Description: "brute-force MD5 keyspace search: almost pure integer compute",
		Generate:    genMD5Hash,
		Sample:      "",
		PlacementTests: []string{
			"foundKey:S",
		},
		Training: false,
	})
	register(Spec{
		Name:        "neuralnet",
		Suite:       "SHOC",
		KernelName:  "kernelFeedForward1",
		Description: "fully-connected feed-forward layer: per-lane weight rows (stride nIn) and broadcast inputs",
		Generate:    genNeuralNet,
		Sample:      "",
		PlacementTests: []string{
			"weights:C",
			"weights:S",
			"weights:T",
			"weights:2T",
		},
		Training: false,
	})
}

// genFFT emits the SHOC FFT512 kernel: blocks of 64 threads process 512
// points. Data streams in/out of global memory coalesced; three radix-8
// stages exchange values through the scratch buffer with power-of-two
// strides that conflict heavily when the buffer lives in shared memory.
func genFFT(scale int) *trace.Trace {
	const (
		threadsPerBlock = 64
		pointsPerBlock  = 512
	)
	blocks := 64 * scale
	n := blocks * pointsPerBlock
	b := trace.NewBuilder("FFT512_device", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	data := b.DeclareArray(trace.Array{Name: "work", Type: trace.F32, Len: 2 * n, Width: 0})
	smem := b.DeclareArray(trace.Array{Name: "smem", Type: trace.F32, Len: n})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(4).Branch(1)
			lane0 := w * 32
			base := blk * pointsPerBlock
			// Each thread loads 8 points, stride 64 (coalesced per load);
			// the loads are independent and issue back-to-back before the
			// twiddle computation consumes them, as the real kernel's
			// hoisted loads do.
			for k := 0; k < 8; k++ {
				wb.LoadCoalesced(data, int64(2*(base+k*threadsPerBlock+lane0)), 32)
			}
			wb.FP32(16)
			// Three radix-8 exchange stages with strides 64, 8, 1.
			for _, stride := range []int{64, 8, 1} {
				// Write phase: thread t writes its 8 values at t*8..t*8+7
				// reshuffled by the stage stride → same-bank pile-ups.
				for k := 0; k < 8; k++ {
					for l := 0; l < 32; l++ {
						t := lane0 + l
						off := (t*8 + k*stride) % pointsPerBlock
						idx[l] = int64(base + off)
					}
					wb.Store(smem, idx)
				}
				wb.Sync()
				for k := 0; k < 8; k++ {
					for l := 0; l < 32; l++ {
						t := lane0 + l
						off := (t + k*threadsPerBlock) % pointsPerBlock
						idx[l] = int64(base + off)
					}
					wb.Load(smem, idx)
				}
				wb.Sync()
				wb.FP32(24) // radix-8 butterfly twiddles
				wb.Int(4)
			}
			for k := 0; k < 8; k++ {
				wb.StoreCoalesced(data, int64(2*(base+k*threadsPerBlock+lane0)), 32)
			}
		}
	}
	return b.MustBuild()
}

// genReduction emits the SHOC reduce kernel with interleaved addressing:
// two coalesced input loads, then a tree of scratch-array exchanges with
// progressively sparser active lanes.
func genReduction(scale int) *trace.Trace {
	const threadsPerBlock = 256
	n := 65536 * scale
	blocks := n / (threadsPerBlock * 2)
	b := trace.NewBuilder("reduce", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	in := b.DeclareArray(trace.Array{Name: "g_idata", Type: trace.F32, Len: n, ReadOnly: true})
	sdata := b.DeclareArray(trace.Array{Name: "sdata", Type: trace.F32, Len: threadsPerBlock * blocks})
	out := b.DeclareArray(trace.Array{Name: "g_odata", Type: trace.F32, Len: blocks})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			t0 := w * 32
			gbase := blk*threadsPerBlock*2 + t0
			sbase := blk*threadsPerBlock + t0
			wb.LoadCoalesced(in, int64(gbase), 32)
			wb.LoadCoalesced(in, int64(gbase+threadsPerBlock), 32)
			wb.FP32(1)
			wb.StoreCoalesced(sdata, int64(sbase), 32)
			wb.Sync()
			// Interleaved tree: stride s halves; active lanes are those with
			// tid % (2s) == 0.
			for s := 1; s < threadsPerBlock; s *= 2 {
				active := 0
				for l := 0; l < 32; l++ {
					tid := t0 + l
					if tid%(2*s) == 0 && tid+s < threadsPerBlock {
						idx[l] = int64(blk*threadsPerBlock + tid + s)
						active++
					} else {
						idx[l] = trace.Inactive
					}
				}
				wb.Branch(1)
				if active > 0 {
					wb.Load(sdata, idx)
					wb.FP32(1)
					st := make([]int64, 32)
					for l := 0; l < 32; l++ {
						if idx[l] != trace.Inactive {
							st[l] = int64(blk*threadsPerBlock + t0 + l)
						} else {
							st[l] = trace.Inactive
						}
					}
					wb.Store(sdata, st)
				}
				wb.Sync()
			}
			if w == 0 {
				one := make([]int64, 32)
				for l := range one {
					one[l] = trace.Inactive
				}
				one[0] = int64(blk)
				wb.Store(out, one)
			}
		}
	}
	return b.MustBuild()
}

// genScanReduce emits the block-sum phase of SHOC scan: four coalesced
// loads per warp of a 2D-shaped input, a few adds, one block result.
func genScanReduce(scale int) *trace.Trace {
	const threadsPerBlock = 256
	width := 256
	n := 65536 * scale
	blocks := n / (threadsPerBlock * 4)
	b := trace.NewBuilder("scan_reduce", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	in := b.DeclareArray(trace.Array{Name: "g_idata", Type: trace.F32, Len: n, Width: width, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "g_odata", Type: trace.F32, Len: blocks})

	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			base := blk*threadsPerBlock*4 + w*32
			for k := 0; k < 4; k++ {
				wb.LoadCoalesced(in, int64(base+k*threadsPerBlock), 32)
				wb.FP32(1)
			}
			wb.Int(2)
			if w == 0 {
				one := make([]int64, 32)
				for l := range one {
					one[l] = trace.Inactive
				}
				one[0] = int64(blk)
				wb.Store(out, one)
			}
		}
	}
	return b.MustBuild()
}

// genSortReorder emits the radix-sort reorder pass: coalesced key reads, a
// digit-indexed lookup into the per-block offset table, and scattered key
// writes.
func genSortReorder(scale int) *trace.Trace {
	const (
		threadsPerBlock = 256
		radixBuckets    = 16
	)
	n := 32768 * scale
	r := rng("sort", scale)
	blocks := n / threadsPerBlock

	digits := make([]int64, n)
	targets := make([]int64, n)
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		digits[i] = int64(r.Intn(radixBuckets))
		targets[i] = int64(perm[i])
	}

	b := trace.NewBuilder("reorderData", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	keysIn := b.DeclareArray(trace.Array{Name: "keysIn", Type: trace.I32, Len: n, ReadOnly: true})
	keysOut := b.DeclareArray(trace.Array{Name: "keysOut", Type: trace.I32, Len: n})
	offsets := b.DeclareArray(trace.Array{Name: "sBlockOffsets", Type: trace.I32, Len: radixBuckets * blocks})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	st := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			base := blk*threadsPerBlock + w*32
			wb.LoadCoalesced(keysIn, int64(base), 32)
			wb.Int(3) // digit extraction
			for l := 0; l < 32; l++ {
				idx[l] = int64(blk*radixBuckets) + digits[base+l]
				st[l] = targets[base+l]
			}
			wb.Load(offsets, idx)
			wb.Int(2)
			wb.Store(keysOut, st)
		}
	}
	return b.MustBuild()
}

// genMD5Hash emits the keyspace search: long integer-only rounds with a
// single tiny result write — performance is issue-bound, so placement
// changes barely matter (a useful null case for the models).
func genMD5Hash(scale int) *trace.Trace {
	const threadsPerBlock = 256
	keys := 16384 * scale
	blocks := keys / threadsPerBlock
	b := trace.NewBuilder("FindKeyWithDigest_Kernel", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	digest := b.DeclareArray(trace.Array{Name: "searchDigest", Type: trace.I32, Len: 4, ReadOnly: true})
	found := b.DeclareArray(trace.Array{Name: "foundKey", Type: trace.I32, Len: 8})

	warpsPerBlock := threadsPerBlock / 32
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(4).Branch(1)
			for round := 0; round < 4; round++ {
				wb.Int(64) // 16 MD5 steps × ~4 integer ops
				wb.Branch(1)
			}
			wb.LoadBroadcast(digest, 0, 32)
			wb.LoadBroadcast(digest, 1, 32)
			wb.Int(4)
			// One lane conditionally records a hit.
			one := make([]int64, 32)
			for l := range one {
				one[l] = trace.Inactive
			}
			one[0] = int64((blk*warpsPerBlock + w) % 8)
			wb.Store(found, one)
		}
	}
	return b.MustBuild()
}

// genNeuralNet emits kernelFeedForward1: each lane owns an output neuron and
// walks its weight row (stride nIn across lanes — 32 separate lines per
// load), while the input activation is a pure broadcast. Batched over
// samples so the weight traffic repeats.
func genNeuralNet(scale int) *trace.Trace {
	const (
		threadsPerBlock = 64
		nIn             = 64
		nOut            = 256
		nSamples        = 16
	)
	_ = scale // the layer shape is fixed by constant-memory capacity
	blocks := nOut / threadsPerBlock
	b := trace.NewBuilder("kernelFeedForward1", trace.Launch{
		Blocks: blocks, ThreadsPerBlock: threadsPerBlock, WarpSize: 32,
	})
	weights := b.DeclareArray(trace.Array{Name: "weights", Type: trace.F32, Len: nOut * nIn, Width: nIn, ReadOnly: true})
	inputs := b.DeclareArray(trace.Array{Name: "inputs", Type: trace.F32, Len: nSamples * nIn, ReadOnly: true})
	outputs := b.DeclareArray(trace.Array{Name: "outputs", Type: trace.F32, Len: nSamples * nOut})

	warpsPerBlock := threadsPerBlock / 32
	idx := make([]int64, 32)
	for blk := 0; blk < blocks; blk++ {
		for w := 0; w < warpsPerBlock; w++ {
			wb := b.Warp(blk, w)
			wb.Int(3).Branch(1)
			o0 := blk*threadsPerBlock + w*32
			for s := 0; s < nSamples; s++ {
				for i := 0; i < nIn; i++ {
					for l := 0; l < 32; l++ {
						idx[l] = int64((o0+l)*nIn + i)
					}
					wb.Load(weights, idx)
					wb.LoadBroadcast(inputs, int64(s*nIn+i), 32)
					wb.FP32(2)
				}
				wb.SFU(1) // sigmoid
				wb.StoreCoalesced(outputs, int64(s*nOut+o0), 32)
			}
		}
	}
	return b.MustBuild()
}
