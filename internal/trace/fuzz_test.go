package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON feeds arbitrary bytes to the trace reader: it must never
// panic, and anything it accepts must be a valid trace that survives a
// write/read round trip.
func FuzzReadJSON(f *testing.F) {
	// Seed with a real serialized trace and a few mutations.
	b := NewBuilder("seed", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	a := b.DeclareArray(Array{Name: "a", Type: F32, Len: 64, ReadOnly: true})
	b.Warp(0, 0).LoadCoalesced(a, 0, 32).FP32(1)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, b.MustBuild()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"kernel":"k","launch":{"WarpSize":32},"arrays":[],"warps":[]}`)
	f.Add(strings.Replace(buf.String(), "LD", "ST", 1))
	f.Add(strings.Replace(buf.String(), `"len":64`, `"len":-1`, 1))
	// Hostile shapes: absurd lengths (bytes overflow int64 when multiplied by
	// the element size), zero lengths, duplicate and empty array names,
	// unknown dtypes, and warp-size extremes.
	f.Add(strings.Replace(buf.String(), `"len":64`, `"len":9223372036854775807`, 1))
	f.Add(strings.Replace(buf.String(), `"len":64`, `"len":1099511627777`, 1))
	f.Add(strings.Replace(buf.String(), `"len":64`, `"len":0`, 1))
	f.Add(strings.Replace(buf.String(), `"name":"a"`, `"name":""`, 1))
	two := strings.Replace(buf.String(), `"arrays":[`, `"arrays":[{"name":"a","type":"f32","len":8},`, 1)
	f.Add(two) // duplicate array name
	f.Add(strings.Replace(buf.String(), `"type":"f32"`, `"type":"f128"`, 1))
	f.Add(strings.Replace(buf.String(), `"WarpSize":32`, `"WarpSize":-32`, 1))
	f.Add(strings.Replace(buf.String(), `"WarpSize":32`, `"WarpSize":1048576`, 1))

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := WriteJSON(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		if _, err := ReadJSON(&out); err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
	})
}
