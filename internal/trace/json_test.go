package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("round trip changed the trace")
	}
}

func TestJSONRoundTripWithMaskedLanes(t *testing.T) {
	b := NewBuilder("m", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	a := b.DeclareArray(Array{Name: "a", Type: F64, Len: 128, ReadOnly: true})
	idx := make([]int64, 32)
	for i := range idx {
		if i%3 == 0 {
			idx[i] = int64(i)
		} else {
			idx[i] = Inactive
		}
	}
	b.Warp(0, 0).Load(a, idx).FP64(2)
	tr := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("masked lanes lost in round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{oops")); err == nil {
		t.Error("garbage must be rejected")
	}
	// Well-formed JSON, invalid trace (index out of range).
	bad := `{"kernel":"k","launch":{"Blocks":1,"ThreadsPerBlock":32,"WarpSize":32},
	  "arrays":[{"name":"a","type":"float","len":4}],
	  "warps":[{"block":0,"warp":0,"inst":[{"op":"LD","array":0,
	  "index":[9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9,9]}]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("out-of-range index must be rejected by validation")
	}
	badOp := `{"kernel":"k","launch":{"Blocks":1,"ThreadsPerBlock":32,"WarpSize":32},
	  "arrays":[],"warps":[{"block":0,"warp":0,"inst":[{"op":"XYZZY","count":1}]}]}`
	if _, err := ReadJSON(strings.NewReader(badOp)); err == nil {
		t.Error("unknown op must be rejected")
	}
	badType := `{"kernel":"k","launch":{"Blocks":1,"ThreadsPerBlock":32,"WarpSize":32},
	  "arrays":[{"name":"a","type":"quaternion","len":4}],"warps":[]}`
	if _, err := ReadJSON(strings.NewReader(badType)); err == nil {
		t.Error("unknown dtype must be rejected")
	}
}
