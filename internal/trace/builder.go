package trace

import "gpuhms/internal/hmserr"

// Builder incrementally constructs a Trace. It is the API workload
// generators use to emit per-warp instruction streams.
//
// Emission errors (bad array lengths, wrong lane counts) do not panic:
// the builder records the first one and Build returns it, so fluent
// emission chains stay uncluttered while hostile or buggy generators are
// still rejected at the boundary.
type Builder struct {
	t        *Trace
	warpSize int
	err      error
}

// NewBuilder starts a trace for the named kernel.
func NewBuilder(kernel string, launch Launch) *Builder {
	if launch.WarpSize == 0 {
		launch.WarpSize = 32
	}
	return &Builder{
		t:        &Trace{Kernel: kernel, Launch: launch},
		warpSize: launch.WarpSize,
	}
}

// fail records the first emission error; later calls keep it.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = hmserr.Wrap(hmserr.ErrInvalidTrace, format, args...)
	}
}

// Err returns the first emission error recorded so far.
func (b *Builder) Err() error { return b.err }

// DeclareArray registers a data object and returns its ID.
func (b *Builder) DeclareArray(a Array) ArrayID {
	if a.Len <= 0 {
		b.fail("array %s has length %d", a.Name, a.Len)
	}
	b.t.Arrays = append(b.t.Arrays, a)
	return ArrayID(len(b.t.Arrays) - 1)
}

// Warp opens the instruction stream of one warp. Streams may be built in any
// order; the builder appends them as opened.
func (b *Builder) Warp(block, warp int) *WarpBuilder {
	b.t.Warps = append(b.t.Warps, WarpTrace{Block: block, Warp: warp})
	return &WarpBuilder{
		w:        &b.t.Warps[len(b.t.Warps)-1],
		warpSize: b.warpSize,
		arrays:   b.t.Arrays,
		owner:    b,
	}
}

// Build finalizes and validates the trace. The first emission error, if
// any, takes precedence over whole-trace validation.
func (b *Builder) Build() (*Trace, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.t.Validate(); err != nil {
		return nil, err
	}
	return b.t, nil
}

// MustBuild is Build for generators with statically-correct emission.
func (b *Builder) MustBuild() *Trace {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// WarpBuilder appends instructions to one warp stream.
type WarpBuilder struct {
	w        *WarpTrace
	warpSize int
	arrays   []Array
	owner    *Builder
}

func (w *WarpBuilder) compute(op Op, n int) *WarpBuilder {
	if n <= 0 {
		return w
	}
	// Merge with a preceding identical compute op to keep traces compact.
	if k := len(w.w.Inst); k > 0 && w.w.Inst[k-1].Op == op && !op.IsMem() {
		w.w.Inst[k-1].Count += n
		return w
	}
	w.w.Inst = append(w.w.Inst, Inst{Op: op, Count: n})
	return w
}

// Int emits n integer ALU instructions.
func (w *WarpBuilder) Int(n int) *WarpBuilder { return w.compute(OpInt, n) }

// FP32 emits n single-precision FP instructions.
func (w *WarpBuilder) FP32(n int) *WarpBuilder { return w.compute(OpFP32, n) }

// FP64 emits n double-precision FP instructions.
func (w *WarpBuilder) FP64(n int) *WarpBuilder { return w.compute(OpFP64, n) }

// SFU emits n special-function instructions.
func (w *WarpBuilder) SFU(n int) *WarpBuilder { return w.compute(OpSFU, n) }

// Branch emits n control-flow instructions.
func (w *WarpBuilder) Branch(n int) *WarpBuilder { return w.compute(OpBranch, n) }

// Sync emits a barrier.
func (w *WarpBuilder) Sync() *WarpBuilder { return w.compute(OpSync, 1) }

func (w *WarpBuilder) mem(op Op, a ArrayID, idx []int64) *WarpBuilder {
	if len(idx) != w.warpSize {
		w.owner.fail("memory op with %d lane indices, warp size %d",
			len(idx), w.warpSize)
		return w
	}
	cp := make([]int64, len(idx))
	copy(cp, idx)
	w.w.Inst = append(w.w.Inst, Inst{Op: op, Count: 1, Array: a, Index: cp})
	return w
}

// Load emits a warp load of array a with the given per-lane element indices
// (Inactive for masked lanes).
func (w *WarpBuilder) Load(a ArrayID, idx []int64) *WarpBuilder {
	return w.mem(OpLoad, a, idx)
}

// Store emits a warp store.
func (w *WarpBuilder) Store(a ArrayID, idx []int64) *WarpBuilder {
	return w.mem(OpStore, a, idx)
}

// Atomic emits a warp read-modify-write; lanes addressing the same element
// serialize (the paper's replay cause (6)).
func (w *WarpBuilder) Atomic(a ArrayID, idx []int64) *WarpBuilder {
	return w.mem(OpAtomic, a, idx)
}

// LoadCoalesced emits a load where lane L accesses element base+L for lanes
// [0, active).
func (w *WarpBuilder) LoadCoalesced(a ArrayID, base int64, active int) *WarpBuilder {
	return w.mem(OpLoad, a, Coalesced(w.warpSize, base, active))
}

// StoreCoalesced is the store counterpart of LoadCoalesced.
func (w *WarpBuilder) StoreCoalesced(a ArrayID, base int64, active int) *WarpBuilder {
	return w.mem(OpStore, a, Coalesced(w.warpSize, base, active))
}

// LoadBroadcast emits a load where every active lane reads the same element,
// the access pattern constant memory is optimized for.
func (w *WarpBuilder) LoadBroadcast(a ArrayID, elem int64, active int) *WarpBuilder {
	idx := make([]int64, w.warpSize)
	for l := range idx {
		if l < active {
			idx[l] = elem
		} else {
			idx[l] = Inactive
		}
	}
	return w.mem(OpLoad, a, idx)
}

// LoadStrided emits a load where lane L accesses base + L*stride.
func (w *WarpBuilder) LoadStrided(a ArrayID, base, stride int64, active int) *WarpBuilder {
	idx := make([]int64, w.warpSize)
	for l := range idx {
		if l < active {
			idx[l] = base + int64(l)*stride
		} else {
			idx[l] = Inactive
		}
	}
	return w.mem(OpLoad, a, idx)
}

// StoreStrided is the store counterpart of LoadStrided.
func (w *WarpBuilder) StoreStrided(a ArrayID, base, stride int64, active int) *WarpBuilder {
	idx := make([]int64, w.warpSize)
	for l := range idx {
		if l < active {
			idx[l] = base + int64(l)*stride
		} else {
			idx[l] = Inactive
		}
	}
	return w.mem(OpStore, a, idx)
}

// Coalesced builds a unit-stride index vector: lane L gets base+L for
// L < active, Inactive otherwise.
func Coalesced(warpSize int, base int64, active int) []int64 {
	idx := make([]int64, warpSize)
	for l := range idx {
		if l < active {
			idx[l] = base + int64(l)
		} else {
			idx[l] = Inactive
		}
	}
	return idx
}
