// Package trace represents GPU kernel executions as placement-neutral
// warp-level instruction traces.
//
// The paper instruments the sample data placement with SASSI to obtain an
// instruction trace and a memory trace, then *transforms* the memory trace
// for each target placement (accommodating addressing-mode differences)
// instead of re-running the kernel. This package makes that transformation
// trivial by construction: memory references are recorded as
// (array, element index per lane) rather than raw addresses. A data placement
// later binds each array to a memory space and a base address, at which point
// indices resolve to addresses.
package trace

import (
	"fmt"
	"sort"

	"gpuhms/internal/hmserr"
)

// ArrayID names a data object (a kernel array) within a trace.
type ArrayID int

// DType is the element type of an array, used by the addressing-mode
// analysis (the instruction count to form an effective address depends on
// the element size and memory space).
type DType uint8

const (
	F32 DType = iota // 32-bit float
	F64              // 64-bit float
	I32              // 32-bit integer
	U8               // byte
)

// Bytes returns the element size of the data type.
func (d DType) Bytes() int {
	switch d {
	case F64:
		return 8
	case U8:
		return 1
	default:
		return 4
	}
}

// String returns the CUDA-style type name.
func (d DType) String() string {
	switch d {
	case F32:
		return "float"
	case F64:
		return "double"
	case I32:
		return "int"
	case U8:
		return "uchar"
	}
	return fmt.Sprintf("DType(%d)", uint8(d))
}

// Array declares a kernel data object whose placement can be varied.
type Array struct {
	Name  string
	Type  DType
	Len   int // elements
	Width int // for logically-2D arrays: row length in elements; 0 for 1D
	// ReadOnly marks arrays the kernel never stores to. Only read-only
	// arrays may be placed in constant or texture memory.
	ReadOnly bool
}

// Bytes returns the array footprint in bytes.
func (a Array) Bytes() int { return a.Len * a.Type.Bytes() }

// Is2D reports whether the array has a declared 2D shape.
func (a Array) Is2D() bool { return a.Width > 0 }

// Height returns the number of rows for a 2D array (Len/Width).
func (a Array) Height() int {
	if a.Width == 0 {
		return 1
	}
	return a.Len / a.Width
}

// Op classifies a warp-level instruction.
type Op uint8

const (
	OpInt    Op = iota // integer ALU
	OpFP32             // single-precision floating point
	OpFP64             // double-precision floating point (two-cycle issue)
	OpSFU              // special function unit (rsqrt, exp, ...)
	OpLoad             // load from a placed array
	OpStore            // store to a placed array
	OpSync             // barrier / __syncthreads
	OpBranch           // control flow
	OpAtomic           // read-modify-write on a placed array; lanes hitting
	// the same address serialize (the paper's replay cause (6))

	// NumOps is the number of op classes.
	NumOps = 9
)

// String names the op class.
func (o Op) String() string {
	switch o {
	case OpInt:
		return "INT"
	case OpFP32:
		return "FP32"
	case OpFP64:
		return "FP64"
	case OpSFU:
		return "SFU"
	case OpLoad:
		return "LD"
	case OpStore:
		return "ST"
	case OpSync:
		return "BAR"
	case OpBranch:
		return "BRA"
	case OpAtomic:
		return "ATOM"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMem reports whether the op references a placed array.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore || o == OpAtomic }

// Inactive marks a lane that does not participate in a memory access.
const Inactive int64 = -1

// Inst is one warp-level instruction. Compute instructions may carry
// Count > 1 to represent a run of identical ops compactly. Memory
// instructions carry the referenced array and one element index per lane
// (Inactive for masked-off lanes).
type Inst struct {
	Op    Op
	Count int     // repetition for compute ops; 1 for memory ops
	Array ArrayID // valid when Op.IsMem()
	Index []int64 // len == WarpSize when Op.IsMem(); element indices
}

// ActiveLanes returns the number of participating lanes of a memory
// instruction.
func (in *Inst) ActiveLanes() int {
	n := 0
	for _, ix := range in.Index {
		if ix != Inactive {
			n++
		}
	}
	return n
}

// WarpTrace is the instruction stream of one warp.
type WarpTrace struct {
	Block int // thread block ID
	Warp  int // warp ID within the block
	Inst  []Inst
}

// Launch describes the kernel launch configuration.
type Launch struct {
	Blocks          int
	ThreadsPerBlock int
	WarpSize        int
}

// WarpsPerBlock returns ceil(ThreadsPerBlock / WarpSize).
func (l Launch) WarpsPerBlock() int {
	return (l.ThreadsPerBlock + l.WarpSize - 1) / l.WarpSize
}

// TotalWarps returns the total warp count of the launch.
func (l Launch) TotalWarps() int { return l.Blocks * l.WarpsPerBlock() }

// Trace is a complete placement-neutral kernel execution record.
type Trace struct {
	Kernel string
	Launch Launch
	Arrays []Array
	Warps  []WarpTrace
}

// Array returns the declaration for id.
func (t *Trace) Array(id ArrayID) Array { return t.Arrays[id] }

// ArrayByName finds an array by name.
func (t *Trace) ArrayByName(name string) (ArrayID, bool) {
	for i, a := range t.Arrays {
		if a.Name == name {
			return ArrayID(i), true
		}
	}
	return 0, false
}

// maxArrayBytes bounds a single array's footprint (1 TiB), far beyond any
// modeled GPU; it keeps hostile traces from overflowing byte arithmetic.
const maxArrayBytes = 1 << 40

// invalidf builds a validation error wrapping hmserr.ErrInvalidTrace.
func invalidf(format string, args ...any) error {
	return hmserr.Wrap(hmserr.ErrInvalidTrace, format, args...)
}

// Validate checks internal consistency: arrays have unique names and sane
// positive footprints, memory instructions have per-lane indices of the
// right length and in range, compute instructions have positive counts.
// All failures wrap hmserr.ErrInvalidTrace.
func (t *Trace) Validate() error {
	if t.Launch.WarpSize <= 0 || t.Launch.WarpSize > 1024 {
		return invalidf("trace %s: warp size %d", t.Kernel, t.Launch.WarpSize)
	}
	if t.Launch.Blocks < 0 || t.Launch.ThreadsPerBlock < 0 {
		return invalidf("trace %s: launch %d blocks x %d threads",
			t.Kernel, t.Launch.Blocks, t.Launch.ThreadsPerBlock)
	}
	names := make(map[string]bool, len(t.Arrays))
	for i, a := range t.Arrays {
		if a.Name == "" {
			return invalidf("trace %s: array %d has no name", t.Kernel, i)
		}
		if names[a.Name] {
			return invalidf("trace %s: duplicate array name %q", t.Kernel, a.Name)
		}
		names[a.Name] = true
		if a.Len <= 0 || int64(a.Len) > maxArrayBytes/int64(a.Type.Bytes()) {
			return invalidf("trace %s: array %s has length %d", t.Kernel, a.Name, a.Len)
		}
		if a.Width < 0 || a.Width > a.Len {
			return invalidf("trace %s: array %s has width %d for length %d",
				t.Kernel, a.Name, a.Width, a.Len)
		}
	}
	for wi := range t.Warps {
		for ii := range t.Warps[wi].Inst {
			in := &t.Warps[wi].Inst[ii]
			if in.Op.IsMem() {
				if len(in.Index) != t.Launch.WarpSize {
					return invalidf("trace %s: warp %d inst %d: %d lane indices, warp size %d",
						t.Kernel, wi, ii, len(in.Index), t.Launch.WarpSize)
				}
				if int(in.Array) < 0 || int(in.Array) >= len(t.Arrays) {
					return invalidf("trace %s: warp %d inst %d: array %d out of range",
						t.Kernel, wi, ii, in.Array)
				}
				a := t.Arrays[in.Array]
				for lane, ix := range in.Index {
					if ix == Inactive {
						continue
					}
					if ix < 0 || ix >= int64(a.Len) {
						return invalidf("trace %s: warp %d inst %d lane %d: index %d out of [0,%d)",
							t.Kernel, wi, ii, lane, ix, a.Len)
					}
				}
				if (in.Op == OpStore || in.Op == OpAtomic) && a.ReadOnly {
					return invalidf("trace %s: %s to read-only array %s", t.Kernel, in.Op, a.Name)
				}
			} else if in.Count <= 0 {
				return invalidf("trace %s: warp %d inst %d: compute count %d",
					t.Kernel, wi, ii, in.Count)
			}
		}
	}
	return nil
}

// Stats aggregates instruction counts over a trace.
type Stats struct {
	PerOp        [NumOps]int64     // executed instructions by op class
	LoadsByArray map[ArrayID]int64 // warp-level load instructions per array
	StoresByArr  map[ArrayID]int64 // warp-level store instructions per array
	Warps        int
}

// Executed returns total executed warp instructions (compute counts expanded,
// excluding addressing-mode instructions, which are placement-dependent).
func (s *Stats) Executed() int64 {
	var n int64
	for _, c := range s.PerOp {
		n += c
	}
	return n
}

// MemInsts returns warp-level memory instructions (loads + stores).
func (s *Stats) MemInsts() int64 { return s.PerOp[OpLoad] + s.PerOp[OpStore] }

// Accesses returns loads+stores for one array.
func (s *Stats) Accesses(id ArrayID) int64 {
	return s.LoadsByArray[id] + s.StoresByArr[id]
}

// ComputeStats scans the trace once and aggregates counts.
func ComputeStats(t *Trace) *Stats {
	s := &Stats{
		LoadsByArray: make(map[ArrayID]int64),
		StoresByArr:  make(map[ArrayID]int64),
		Warps:        len(t.Warps),
	}
	for wi := range t.Warps {
		for ii := range t.Warps[wi].Inst {
			in := &t.Warps[wi].Inst[ii]
			if in.Op.IsMem() {
				s.PerOp[in.Op]++
				if in.Op == OpLoad {
					s.LoadsByArray[in.Array]++
				} else {
					s.StoresByArr[in.Array]++
				}
			} else {
				s.PerOp[in.Op] += int64(in.Count)
			}
		}
	}
	return s
}

// ArraysSortedBySize returns array IDs ordered by descending footprint,
// breaking ties by name; useful for deterministic placement heuristics.
func (t *Trace) ArraysSortedBySize() []ArrayID {
	ids := make([]ArrayID, len(t.Arrays))
	for i := range ids {
		ids[i] = ArrayID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		ai, aj := t.Arrays[ids[i]], t.Arrays[ids[j]]
		if ai.Bytes() != aj.Bytes() {
			return ai.Bytes() > aj.Bytes()
		}
		return ai.Name < aj.Name
	})
	return ids
}
