package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDTypeBytes(t *testing.T) {
	for dt, want := range map[DType]int{F32: 4, F64: 8, I32: 4, U8: 1} {
		if got := dt.Bytes(); got != want {
			t.Errorf("%s.Bytes() = %d, want %d", dt, got, want)
		}
	}
}

func TestArrayGeometry(t *testing.T) {
	a := Array{Name: "m", Type: F32, Len: 64 * 32, Width: 64}
	if a.Bytes() != 8192 {
		t.Errorf("bytes = %d", a.Bytes())
	}
	if !a.Is2D() || a.Height() != 32 {
		t.Errorf("2D geometry: is2D=%v height=%d", a.Is2D(), a.Height())
	}
	b := Array{Name: "v", Type: F64, Len: 10}
	if b.Is2D() || b.Height() != 1 {
		t.Errorf("1D geometry: is2D=%v height=%d", b.Is2D(), b.Height())
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("loads/stores are memory ops")
	}
	for _, op := range []Op{OpInt, OpFP32, OpFP64, OpSFU, OpSync, OpBranch} {
		if op.IsMem() {
			t.Errorf("%s should not be a memory op", op)
		}
	}
}

func TestLaunchMath(t *testing.T) {
	l := Launch{Blocks: 10, ThreadsPerBlock: 100, WarpSize: 32}
	if l.WarpsPerBlock() != 4 {
		t.Errorf("warps per block = %d (ceil(100/32))", l.WarpsPerBlock())
	}
	if l.TotalWarps() != 40 {
		t.Errorf("total warps = %d", l.TotalWarps())
	}
}

func buildSmall(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder("k", Launch{Blocks: 2, ThreadsPerBlock: 64, WarpSize: 32})
	a := b.DeclareArray(Array{Name: "a", Type: F32, Len: 256, ReadOnly: true})
	o := b.DeclareArray(Array{Name: "o", Type: F32, Len: 256})
	for blk := 0; blk < 2; blk++ {
		for w := 0; w < 2; w++ {
			wb := b.Warp(blk, w)
			wb.Int(2).Branch(1)
			wb.LoadCoalesced(a, int64(blk*64+w*32), 32)
			wb.FP32(3)
			wb.StoreCoalesced(o, int64(blk*64+w*32), 32)
			wb.Sync()
		}
	}
	return b.MustBuild()
}

func TestBuilderProducesValidTrace(t *testing.T) {
	tr := buildSmall(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Warps) != 4 {
		t.Errorf("warps = %d", len(tr.Warps))
	}
}

func TestBuilderMergesComputeRuns(t *testing.T) {
	b := NewBuilder("k", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	wb := b.Warp(0, 0)
	wb.Int(2).Int(3).FP32(1).FP32(1)
	tr := b.MustBuild()
	insts := tr.Warps[0].Inst
	if len(insts) != 2 {
		t.Fatalf("runs not merged: %d insts", len(insts))
	}
	if insts[0].Op != OpInt || insts[0].Count != 5 {
		t.Errorf("int run: %+v", insts[0])
	}
	if insts[1].Op != OpFP32 || insts[1].Count != 2 {
		t.Errorf("fp run: %+v", insts[1])
	}
}

func TestBuilderCopiesIndexSlices(t *testing.T) {
	b := NewBuilder("k", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	a := b.DeclareArray(Array{Name: "a", Type: F32, Len: 64, ReadOnly: true})
	idx := make([]int64, 32)
	wb := b.Warp(0, 0)
	wb.Load(a, idx)
	idx[0] = 63 // mutate after emission
	tr := b.MustBuild()
	if tr.Warps[0].Inst[0].Index[0] != 0 {
		t.Error("builder must copy index slices")
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	mk := func() (*Builder, ArrayID) {
		b := NewBuilder("k", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
		a := b.DeclareArray(Array{Name: "a", Type: F32, Len: 16, ReadOnly: true})
		return b, a
	}

	t.Run("index out of range", func(t *testing.T) {
		b, a := mk()
		idx := make([]int64, 32)
		idx[5] = 16 // == Len
		b.Warp(0, 0).Load(a, idx)
		if _, err := b.Build(); err == nil {
			t.Error("expected range error")
		}
	})
	t.Run("store to read-only", func(t *testing.T) {
		b, a := mk()
		b.Warp(0, 0).Store(a, make([]int64, 32))
		if _, err := b.Build(); err == nil {
			t.Error("expected read-only error")
		}
	})
	t.Run("wrong lane count fails at Build", func(t *testing.T) {
		b, a := mk()
		b.Warp(0, 0).Load(a, make([]int64, 16))
		if _, err := b.Build(); err == nil {
			t.Error("expected lane-count error")
		} else if b.Err() == nil {
			t.Error("builder did not record the error")
		}
	})
	t.Run("zero-length array fails at Build", func(t *testing.T) {
		b := NewBuilder("k", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
		b.DeclareArray(Array{Name: "z", Type: F32, Len: 0})
		if _, err := b.Build(); err == nil {
			t.Error("expected length error")
		}
	})
	t.Run("first error wins", func(t *testing.T) {
		b, a := mk()
		b.DeclareArray(Array{Name: "z", Type: F32, Len: -3})
		b.Warp(0, 0).Load(a, make([]int64, 7))
		_, err := b.Build()
		if err == nil || !strings.Contains(err.Error(), "length -3") {
			t.Errorf("expected the first recorded error, got %v", err)
		}
	})
}

func TestActiveLanes(t *testing.T) {
	in := Inst{Op: OpLoad, Index: []int64{1, Inactive, 3, Inactive}}
	if got := in.ActiveLanes(); got != 2 {
		t.Errorf("active lanes = %d", got)
	}
}

func TestComputeStats(t *testing.T) {
	tr := buildSmall(t)
	st := ComputeStats(tr)
	// Per warp: 2 int + 1 branch + 1 load + 3 fp + 1 store + 1 sync.
	if st.PerOp[OpInt] != 8 || st.PerOp[OpFP32] != 12 || st.PerOp[OpSync] != 4 {
		t.Errorf("per-op: %+v", st.PerOp)
	}
	if st.Executed() != 9*4 {
		t.Errorf("executed = %d", st.Executed())
	}
	if st.MemInsts() != 8 {
		t.Errorf("mem insts = %d", st.MemInsts())
	}
	aID, _ := tr.ArrayByName("a")
	oID, _ := tr.ArrayByName("o")
	if st.LoadsByArray[aID] != 4 || st.StoresByArr[oID] != 4 {
		t.Errorf("per-array: loads=%v stores=%v", st.LoadsByArray, st.StoresByArr)
	}
	if st.Accesses(aID) != 4 {
		t.Errorf("accesses(a) = %d", st.Accesses(aID))
	}
}

func TestArrayByName(t *testing.T) {
	tr := buildSmall(t)
	if _, ok := tr.ArrayByName("a"); !ok {
		t.Error("array a should exist")
	}
	if _, ok := tr.ArrayByName("zzz"); ok {
		t.Error("array zzz should not exist")
	}
}

func TestArraysSortedBySize(t *testing.T) {
	b := NewBuilder("k", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	b.DeclareArray(Array{Name: "small", Type: F32, Len: 4})
	b.DeclareArray(Array{Name: "big", Type: F32, Len: 400})
	b.DeclareArray(Array{Name: "mid", Type: F64, Len: 40})
	b.Warp(0, 0).Int(1)
	tr := b.MustBuild()
	order := tr.ArraysSortedBySize()
	names := []string{tr.Arrays[order[0]].Name, tr.Arrays[order[1]].Name, tr.Arrays[order[2]].Name}
	if names[0] != "big" || names[1] != "mid" || names[2] != "small" {
		t.Errorf("order = %v", names)
	}
}

// Property: Coalesced produces base+lane for active lanes and Inactive
// beyond, and the strided helpers respect their stride.
func TestIndexHelpers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := int64(r.Intn(1000))
		active := 1 + r.Intn(32)
		idx := Coalesced(32, base, active)
		for l := 0; l < 32; l++ {
			if l < active && idx[l] != base+int64(l) {
				return false
			}
			if l >= active && idx[l] != Inactive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStridedAndBroadcastHelpers(t *testing.T) {
	b := NewBuilder("k", Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	a := b.DeclareArray(Array{Name: "a", Type: F32, Len: 4096})
	wb := b.Warp(0, 0)
	wb.LoadStrided(a, 10, 3, 16)
	wb.LoadBroadcast(a, 7, 32)
	wb.StoreStrided(a, 0, 64, 32)
	tr := b.MustBuild()

	ld := tr.Warps[0].Inst[0]
	if ld.Index[0] != 10 || ld.Index[15] != 10+45 || ld.Index[16] != Inactive {
		t.Errorf("strided load: %v", ld.Index[:17])
	}
	bc := tr.Warps[0].Inst[1]
	for l := 0; l < 32; l++ {
		if bc.Index[l] != 7 {
			t.Fatalf("broadcast lane %d = %d", l, bc.Index[l])
		}
	}
	st := tr.Warps[0].Inst[2]
	if st.Op != OpStore || st.Index[31] != 31*64 {
		t.Errorf("strided store: %v", st.Index[28:])
	}
}
