package core

import (
	"fmt"
	"strings"
)

// Explain renders the Eq 1 decomposition of a prediction as a human-readable
// report — what the placement advisor shows a programmer asking *why* a
// placement is predicted fast or slow.
func (p *Prediction) Explain(nsPerCycle float64) string {
	var b strings.Builder
	total := p.Cycles
	pct := func(x float64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * x / total
	}
	fmt.Fprintf(&b, "predicted time: %.0f ns (%.0f cycles", p.TimeNS, p.Cycles)
	if p.StagingNS > 0 {
		fmt.Fprintf(&b, " + %.0f ns shared staging", p.StagingNS)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  T_comp    %10.0f cycles (%5.1f%% of T)\n", p.TComp, pct(p.TComp))
	fmt.Fprintf(&b, "  T_mem     %10.0f cycles (%5.1f%%)\n", p.TMem, pct(p.TMem))
	fmt.Fprintf(&b, "  T_overlap %10.0f cycles hidden (%.0f%% of T_mem)\n",
		p.TOverlap, safePct(p.TOverlap, p.TMem))

	an := p.Analysis
	if an != nil {
		fmt.Fprintf(&b, "instructions: %d executed", an.Executed)
		if an.Replays14 > 0 {
			fmt.Fprintf(&b, " + %d replays", an.Replays14)
			var parts []string
			for r, n := range map[string]int64{
				"global divergence":   an.Events.ReplayGlobalDiv,
				"constant misses":     an.Events.ReplayConstMiss,
				"constant divergence": an.Events.ReplayConstDiv,
				"bank conflicts":      an.Events.ReplayShared,
			} {
				if n > 0 {
					parts = append(parts, fmt.Sprintf("%s %d", r, n))
				}
			}
			if len(parts) > 0 {
				fmt.Fprintf(&b, " (%s)", strings.Join(sortStrings(parts), ", "))
			}
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "memory: %d warp requests; AMAT %.0f cycles; DRAM %.0f ns (%.0f ns queuing)\n",
			an.MemInsts, p.AMAT, p.DRAMLatNS, p.QueueDelayNS)
		rc := an.RowCounts
		if rc.Total() > 0 {
			h, m, c := rc.Ratios()
			fmt.Fprintf(&b, "row buffers: %.0f%% hit / %.0f%% miss / %.0f%% conflict over %d requests\n",
				100*h, 100*m, 100*c, rc.Total())
		}
	}
	return b.String()
}

func safePct(x, of float64) float64 {
	if of == 0 {
		return 0
	}
	return 100 * x / of
}

func sortStrings(xs []string) []string {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}
