package core

// T_comp (§III-B, Eq 2 and Appendix Eq 13–16):
//
//	T_comp = (#inst × #total_warps / #active_SMs) × Effective_instruction_throughput + W_serial
//
// where #inst is the number of *issued* instructions per warp — the paper's
// key departure from prior models, which use executed instructions. Issued
// instructions are estimated as the target's executed instructions
// (including addressing-mode instructions, which differ per memory space)
// plus the target's replays per Eq 3:
//
//	inst_replay_target = inst_replay_sample − inst_replay_sample_(1-4) + inst_replay_target_(1-4)

// syncCost is the modeled issue-pipeline cost of one barrier, cycles; part
// of O_sync in Eq 16. Serialization overheads are assumed identical across
// placements (§Appendix), so the value only shifts every prediction equally.
const syncCost = 2

// warpILP is the per-warp instruction-level parallelism assumed by Eq 14:
// GPU kernels issue short runs of independent instructions (index
// arithmetic, back-to-back loads) between dependences.
const warpILP = 2.5

// effectiveThroughput is Eq 13–15: the effective instruction throughput
// (cycles per executed instruction per SM) at a resident-warp count. ITILP =
// min(ILP×N, ITILP_max) with ITILP_max = avg_inst_lat /
// (warp_size/SIMD_width). Replayed instructions re-issue already-computed
// work, so they consume one issue slot each but no pipeline latency. The
// result is clamped to ≥ 1 cycle per instruction; the resident-warp count
// does not depend on placement, so neither does the throughput — which is
// what lets PlacementBound treat it as a constant factor.
func (m *Model) effectiveThroughput(warpsPerSM float64) float64 {
	cfg := m.Cfg
	itilpMax := cfg.AvgInstLatency / (float64(cfg.WarpSize) / float64(cfg.SIMDWidth))
	itilp := warpILP * warpsPerSM
	if itilp > itilpMax {
		itilp = itilpMax
	}
	if itilp < 1 {
		itilp = 1
	}
	throughput := cfg.AvgInstLatency / itilp
	if throughput < 1 {
		throughput = 1
	}
	return throughput
}

func (m *Model) tcomp(an, sampleAn *Analysis, prof *SampleProfile) float64 {
	activeSMs := float64(an.ActiveSMs)

	var executed, replays float64
	if m.Opts.InstrCounting {
		// Eq 3: start from the sample's *measured* replays (all ten causes),
		// remove the model's estimate of the sample's placement-dependent
		// replays, add the target's.
		executed = float64(an.Executed)
		replays = float64(prof.Events.TotalReplays()) -
			float64(sampleAn.Replays14) + float64(an.Replays14)
		if replays < 0 {
			replays = 0
		}
	} else {
		// Prior-work instruction counting: the sample's executed count is
		// assumed to hold for every placement, and replays are not modeled.
		executed = float64(prof.Events.InstExecuted)
	}

	throughput := m.effectiveThroughput(an.Events.WarpsPerSM)

	// Eq 16: serialization overhead; only the barrier term varies with the
	// kernel, and none of it varies with placement.
	wSerial := float64(an.Syncs) / activeSMs * syncCost

	// An SM is bounded by whichever is larger: its issue bandwidth
	// (every issued slot, replays included, costs one slot) or the
	// dependency stalls its resident warps cannot hide (executed
	// instructions at the effective throughput). Replays re-issue
	// ready operands and thus add no dependency stalls of their own.
	issueBound := executed + replays
	stallBound := executed * throughput
	perSM := issueBound
	if stallBound > perSM {
		perSM = stallBound
	}
	return perSM/activeSMs*an.Imbalance + wSerial
}
