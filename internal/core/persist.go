package core

import (
	"encoding/json"
	"fmt"
	"io"

	"gpuhms/internal/hmserr"
	"gpuhms/internal/perf"
	"gpuhms/internal/queuing"
)

// SavedModel is the JSON-serializable form of a trained model
// configuration: the mechanism switches and the fitted Eq 11 coefficients.
// Training the overlap model costs dozens of simulator runs, so tools save
// it once and reload it across sessions.
type SavedModel struct {
	// Architecture names the configuration the coefficients were trained
	// against; loading verifies it.
	Architecture string `json:"architecture"`

	InstrCounting  bool   `json:"instr_counting"`
	Queuing        bool   `json:"queuing"`
	AddressMapping bool   `json:"address_mapping"`
	QueueVariant   string `json:"queue_variant"`
	HongKimOverlap bool   `json:"hongkim_overlap"`

	OverlapCoeffs []float64 `json:"overlap_coeffs"`
	FeatureNames  []string  `json:"feature_names"`
}

// Save writes the model's configuration and trained coefficients as JSON.
func (m *Model) Save(w io.Writer, architecture string) error {
	sm := SavedModel{
		Architecture:   architecture,
		InstrCounting:  m.Opts.InstrCounting,
		Queuing:        m.Opts.Queuing,
		AddressMapping: m.Opts.AddressMapping,
		QueueVariant:   m.Opts.Variant.String(),
		HongKimOverlap: m.Opts.HongKimOverlap,
		OverlapCoeffs:  m.Opts.OverlapCoeffs,
		FeatureNames:   perf.OverlapFeatureNames(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sm)
}

// LoadOptions reads a SavedModel and reconstructs the model options,
// verifying the architecture name and coefficient arity.
func LoadOptions(r io.Reader, architecture string) (Options, error) {
	var sm SavedModel
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return Options{}, fmt.Errorf("core: decoding saved model: %w", err)
	}
	if sm.Architecture != architecture {
		return Options{}, hmserr.Wrap(hmserr.ErrArchMismatch,
			"saved model trained for %q, loading for %q", sm.Architecture, architecture)
	}
	if n := len(sm.OverlapCoeffs); n != 0 && n != len(perf.OverlapFeatureNames()) {
		return Options{}, fmt.Errorf("core: saved model has %d coefficients, want %d",
			n, len(perf.OverlapFeatureNames()))
	}
	variant, err := parseVariant(sm.QueueVariant)
	if err != nil {
		return Options{}, err
	}
	return Options{
		InstrCounting:  sm.InstrCounting,
		Queuing:        sm.Queuing,
		AddressMapping: sm.AddressMapping,
		Variant:        variant,
		HongKimOverlap: sm.HongKimOverlap,
		OverlapCoeffs:  sm.OverlapCoeffs,
	}, nil
}

func parseVariant(name string) (queuing.Variant, error) {
	for _, v := range []queuing.Variant{queuing.PaperKingman, queuing.ClassicKingman, queuing.MM1} {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("core: unknown queue variant %q", name)
}
