package core

import (
	"gpuhms/internal/gpu"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// PlacementBound is a model-derived admissible lower bound on the predicted
// time of any placement, used by bounded searches (beam) to prune branches
// that cannot beat the candidates already kept.
//
// It is admissible — never above the predictor's actual TimeNS — because it
// keeps only the terms of the prediction that are provably floors of Eq 1:
//
//   - predictFrom clamps Cycles ≥ T_comp, so TimeNS ≥ T_comp·ns/cycle +
//     StagingNS regardless of what the memory and overlap terms do.
//   - In tcomp, perSM = max(executed+replays, executed·throughput) ≥
//     executed·throughput (replays ≥ 0, throughput clamped ≥ 1), so
//     T_comp ≥ executed·throughput/activeSMs·Imbalance + W_serial.
//   - executed decomposes exactly into a placement-independent base (non-mem
//     instruction counts plus one slot per memory access) and per-array
//     addressing-mode instructions, accesses_j · InstrPerAccess(space_j),
//     each term ≥ 0.
//   - StagingNS is an exact per-array sum: shared-placed arrays stage
//     footprint·blocks bytes at the staging bandwidth, other spaces stage 0.
//
// Throughput, active SMs, imbalance, and W_serial depend only on the launch,
// never on the placement, so they are constants of the bound. For models
// without detailed instruction counting (Opts.InstrCounting false) the
// executed count is the sample's measured constant, and only the staging term
// varies per array — still admissible, just looser.
type PlacementBound struct {
	t        *trace.Trace
	cfg      *gpu.Config
	counting bool

	baseNS   float64   // placement-independent floor, ns
	scaleNS  float64   // ns per executed instruction (throughput/SMs·imbalance·ns/cycle)
	accesses []float64 // memory-instruction records per array
	minFree  []float64 // min per-array cost over the array's legal spaces
	suffix   []float64 // suffix[j] = Σ_{i≥j} minFree[i]; suffix[n] = 0
}

// NewPlacementBound derives the bound from a predictor's model, trace, and
// sample profile. The result is immutable and safe for concurrent use.
func NewPlacementBound(p *Predictor) *PlacementBound {
	m, t, cfg := p.model, p.trace, p.model.Cfg
	b := &PlacementBound{t: t, cfg: cfg, counting: m.Opts.InstrCounting}

	activeSMs := float64(cfg.ActiveSMs(t.Launch.Blocks))
	imbalance := 1.0
	if blocks := t.Launch.Blocks; float64(blocks) > activeSMs {
		perSM := float64(blocks) / activeSMs
		worst := float64((blocks + int(activeSMs) - 1) / int(activeSMs))
		imbalance = worst / perSM
	}
	nsPerCycle := cfg.NSPerCycle()
	throughput := m.effectiveThroughput(residentWarps(t, cfg))
	b.scaleNS = throughput / activeSMs * imbalance * nsPerCycle

	// One pass over the trace: placement-independent executed instructions
	// (non-mem counts plus one slot per memory access), barriers, and the
	// per-array memory-access counts the addressing-mode term scales.
	b.accesses = make([]float64, len(t.Arrays))
	var baseExec float64
	var syncs int64
	for wi := range t.Warps {
		for ii := range t.Warps[wi].Inst {
			in := &t.Warps[wi].Inst[ii]
			if in.Op.IsMem() {
				b.accesses[in.Array]++
				baseExec++
				continue
			}
			baseExec += float64(in.Count)
			if in.Op == trace.OpSync {
				syncs++
			}
		}
	}
	if !b.counting {
		// Prior-work counting holds the sample's executed count fixed for
		// every placement; the addressing term is then constant too, so the
		// per-array instruction component drops out of the bound.
		baseExec = float64(p.profile.Events.InstExecuted)
	}
	b.baseNS = baseExec*b.scaleNS + float64(syncs)/activeSMs*syncCost*nsPerCycle

	b.minFree = make([]float64, len(t.Arrays))
	b.suffix = make([]float64, len(t.Arrays)+1)
	for j := range t.Arrays {
		first := true
		for _, sp := range placement.Options(t, trace.ArrayID(j), cfg) {
			c := b.costOf(j, sp)
			if first || c < b.minFree[j] {
				b.minFree[j] = c
				first = false
			}
		}
	}
	for j := len(t.Arrays) - 1; j >= 0; j-- {
		b.suffix[j] = b.suffix[j+1] + b.minFree[j]
	}
	return b
}

// costOf is the per-array floor of placing array j in sp: addressing-mode
// instructions at the effective throughput plus shared-staging time.
func (b *PlacementBound) costOf(j int, sp gpu.MemSpace) float64 {
	var ns float64
	if b.counting {
		ns = b.accesses[j] * float64(addrModeInstrs(sp, b.t.Array(trace.ArrayID(j)).Type)) * b.scaleNS
	}
	if sp == gpu.Shared {
		ns += float64(placement.SharedFootprint(b.t, trace.ArrayID(j))*b.t.Launch.Blocks) / b.cfg.SharedCopyGBs
	}
	return ns
}

// Bound returns a lower bound (ns) on the predicted time of every placement
// that agrees with pl on arrays [0, fixed) — the first `fixed` arrays take
// pl's spaces, the rest range over their legal options. fixed = len(Spaces)
// bounds pl itself; fixed = 0 bounds the whole space.
func (b *PlacementBound) Bound(pl *placement.Placement, fixed int) float64 {
	if fixed > len(pl.Spaces) {
		fixed = len(pl.Spaces)
	}
	ns := b.baseNS + b.suffix[fixed]
	for j := 0; j < fixed; j++ {
		ns += b.costOf(j, pl.Spaces[j])
	}
	return ns
}
