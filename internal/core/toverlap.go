package core

import "gpuhms/internal/stats"

// T_overlap (§III-D, Eq 11–12): how much of the memory cost hides behind
// computation of other warps. The paper fits a linear model over
// per-memory-space event counts (plus row-buffer events and occupancy) to
// the overlap *ratio*, then sets T_overlap = ratio × T_mem.

// maxOverlapRatio bounds the predicted ratio: overlap can hide at most the
// whole memory cost, and in practice never quite all of it.
const maxOverlapRatio = 0.95

func (m *Model) toverlap(an *Analysis, tcomp, tmem, amat float64) float64 {
	if tmem <= 0 {
		return 0
	}
	if m.Opts.HongKimOverlap {
		return m.hongKimOverlap(an, tcomp, tmem, amat)
	}
	if len(m.Opts.OverlapCoeffs) == 0 {
		return 0
	}
	ratio := stats.Predict(m.Opts.OverlapCoeffs, an.Events.OverlapFeatures())
	if ratio < 0 {
		ratio = 0
	}
	if ratio > maxOverlapRatio {
		ratio = maxOverlapRatio
	}
	return ratio * tmem // Eq 12
}

// hongKimOverlap reproduces the CWP/MWP overlap formulation of [6] used by
// the Sim-et-al comparator [7]: when enough memory warps run in parallel
// (MWP ≥ CWP) the kernel is compute-bound and memory time hides behind
// computation; otherwise computation hides behind memory in proportion to
// MWP/CWP.
func (m *Model) hongKimOverlap(an *Analysis, tcomp, tmem, amat float64) float64 {
	mwp, cwp := m.mwpCwp(an, amat)
	smaller := tmem
	if tcomp < smaller {
		smaller = tcomp
	}
	n := an.Events.WarpsPerSM
	if n < 1 {
		n = 1
	}
	var ov float64
	if mwp >= cwp {
		ov = smaller * (n - 1) / n
	} else {
		ov = smaller * mwp / cwp
	}
	if ov > maxOverlapRatio*tmem {
		ov = maxOverlapRatio * tmem
	}
	return ov
}

// OverlapSample is one training observation for the Eq 11 regression.
type OverlapSample struct {
	Kernel    string
	Placement string
	Features  []float64
	Ratio     float64
}

// OverlapObservation derives a training observation from a zero-overlap
// prediction (OverlapCoeffs nil) and the measured time of the same
// placement: the true overlap is T_comp + T_mem − T_measured (Eq 1 solved
// for T_overlap), expressed as a ratio of T_mem and clamped to [0,1].
func (m *Model) OverlapObservation(pred *Prediction, measuredNS float64) OverlapSample {
	measCycles := (measuredNS - pred.StagingNS) * m.Cfg.CyclesPerNS()
	ratio := 0.0
	if pred.TMem > 0 {
		ratio = (pred.TComp + pred.TMem - measCycles) / pred.TMem
	}
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	return OverlapSample{Features: pred.Events.OverlapFeatures(), Ratio: ratio}
}

// FitOverlap fits the Eq 11 coefficients by ordinary least squares over the
// training observations.
func FitOverlap(samples []OverlapSample) ([]float64, error) {
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = s.Features
		y[i] = s.Ratio
	}
	return stats.OLS(x, y)
}
