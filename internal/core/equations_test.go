package core

import (
	"math"
	"strings"
	"testing"

	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/perf"
	"gpuhms/internal/queuing"
)

// synthetic builds a minimal Analysis for unit-testing the equations
// without a trace walk.
func synthetic(mod func(*Analysis)) *Analysis {
	a := &Analysis{
		IssueSlots:      10000,
		Executed:        10000,
		MemInsts:        1000,
		OffchipReqs:     1000,
		TransPerOffchip: 1,
		MLP:             2,
		ActiveSMs:       13,
		Imbalance:       1,
	}
	a.Events.WarpsPerSM = 32
	a.Events.L2Misses = 500
	a.Events.GlobalRequests = 1000
	a.Events.L2Transactions = 1000
	if mod != nil {
		mod(a)
	}
	return a
}

func TestTcompIssueBoundWhenSaturated(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	a := synthetic(nil)
	prof := &SampleProfile{}
	got := m.tcomp(a, a, prof)
	// 32 warps/SM saturate ITILP → throughput 1 cycle/inst → issue bound.
	want := float64(a.Executed) / 13
	if math.Abs(got-want) > 1 {
		t.Errorf("tcomp = %g, want ≈ %g", got, want)
	}
}

func TestTcompStallBoundAtLowOccupancy(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	a := synthetic(func(a *Analysis) { a.Events.WarpsPerSM = 2 })
	prof := &SampleProfile{}
	got := m.tcomp(a, a, prof)
	// ITILP = 2.5×2 = 5 → throughput 18/5 = 3.6 cycles per instruction.
	want := float64(a.Executed) * (cfg.AvgInstLatency / (warpILP * 2)) / 13
	if math.Abs(got-want) > 1 {
		t.Errorf("tcomp = %g, want ≈ %g", got, want)
	}
}

func TestTcompReplaysAddSlotsNotStalls(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	base := synthetic(nil)
	prof := &SampleProfile{}
	prof.Events.InstExecuted = base.Executed

	withReplays := synthetic(func(a *Analysis) { a.Replays14 = 5000 })
	t0 := m.tcomp(base, base, prof)
	t1 := m.tcomp(withReplays, base, prof)
	// Eq 3 with a zero-replay sample: the target's replays add one slot
	// each, divided over the active SMs.
	want := t0 + 5000.0/13
	if math.Abs(t1-want) > 1 {
		t.Errorf("tcomp with replays = %g, want %g", t1, want)
	}
}

func TestTcompEq3UsesSampleMeasuredReplays(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	a := synthetic(func(a *Analysis) { a.Replays14 = 100 })
	// The sample measured 1000 replays total; the model attributes 100 of
	// them to placement-dependent causes; a target with 100 such replays
	// must therefore inherit 1000 total.
	prof := &SampleProfile{}
	prof.Events.ReplayGlobalDiv = 1000
	sampleAn := synthetic(func(s *Analysis) { s.Replays14 = 100 })
	t1 := m.tcomp(a, sampleAn, prof)

	// With a zero-replay sample profile, Eq 3 gives 0−100+100 = 0 replays;
	// with the 1000-replay profile it gives 1000−100+100 = 1000. The
	// difference is the full measured-replay carry-over.
	profZero := &SampleProfile{}
	t0 := m.tcomp(a, sampleAn, profZero)
	if diff := t1 - t0; math.Abs(diff-1000.0/13) > 1 {
		t.Errorf("Eq 3 residue = %g, want %g", diff, 1000.0/13)
	}
}

func TestTcompImbalanceScales(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	bal := synthetic(nil)
	imb := synthetic(func(a *Analysis) { a.Imbalance = 1.5 })
	prof := &SampleProfile{}
	if got, want := m.tcomp(imb, imb, prof), 1.5*m.tcomp(bal, bal, prof); math.Abs(got-want) > 1 {
		t.Errorf("imbalance scaling: %g vs %g", got, want)
	}
}

func TestAMATComposition(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	a := synthetic(func(a *Analysis) {
		a.MemInsts = 1000
		a.OffchipReqs = 600
		a.Events.L2Misses = 300
		a.Events.SharedRequests = 400
	})
	dramNS := 500.0
	got := m.amat(a, dramNS)
	want := dramNS*cfg.CyclesPerNS()*0.3 + // DRAM trips per inst
		cfg.CacheHitLatency*0.6 + // off-chip fraction
		cfg.SharedLatency*0.4 // shared fraction
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AMAT = %g, want %g", got, want)
	}
	// No memory instructions → zero.
	empty := synthetic(func(a *Analysis) { a.MemInsts = 0 })
	if m.amat(empty, dramNS) != 0 {
		t.Error("AMAT of memory-free kernel should be 0")
	}
}

func TestTmemScalesWithRequestsAndLatency(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	a := synthetic(nil)
	lo := m.tmem(a, 100)
	hi := m.tmem(a, 400)
	if hi <= lo {
		t.Errorf("tmem must grow with AMAT: %g vs %g", hi, lo)
	}
	busy := synthetic(func(x *Analysis) { x.MemInsts = 4000 })
	if m.tmem(busy, 100) <= lo {
		t.Error("tmem must grow with request count")
	}
	empty := synthetic(func(x *Analysis) { x.MemInsts = 0 })
	if m.tmem(empty, 100) != 0 {
		t.Error("tmem of memory-free kernel should be 0")
	}
}

func TestDramLatencyVariants(t *testing.T) {
	cfg := gpu.KeplerK80()

	// Constant-latency model: the microbenchmark row-miss value.
	mc := NewModel(cfg, Options{InstrCounting: true})
	a := synthetic(nil)
	lat, q := mc.dramLatency(a, 1000)
	if lat != cfg.DRAM.MissLatencyNS || q != 0 {
		t.Errorf("constant model: %g/%g", lat, q)
	}

	// Queuing model with no DRAM traffic falls back to the constant.
	mq := NewModel(cfg, FullOptions())
	lat, _ = mq.dramLatency(a, 1000)
	if lat != cfg.DRAM.MissLatencyNS {
		t.Errorf("no-traffic queuing model: %g", lat)
	}

	// With bank streams, the latency includes queuing and respects the
	// uncontended floor.
	withStreams := synthetic(func(x *Analysis) {
		x.RawSpanNS = 1000
		x.RowCounts.Hits = 900
		x.RowCounts.Misses = 100
		x.BankStreams = []queuing.Stream{{
			TauA: 10, SigmaA: 30, TauS: 8, SigmaS: 2,
			AccessNS: 400, Batch: 4, N: 500,
		}}
	})
	lat, q = mq.dramLatency(withStreams, 2000)
	if q <= 0 {
		t.Errorf("expected queuing delay, got %g", q)
	}
	if lat < withStreams.RowCounts.AvgServiceNS(cfg.DRAM) {
		t.Errorf("latency %g below the uncontended service floor", lat)
	}

	// Slower span (more spread arrivals) must not increase the latency.
	lat2, _ := mq.dramLatency(withStreams, 20000)
	if lat2 > lat+1e-9 {
		t.Errorf("latency must not grow as arrivals spread: %g vs %g", lat2, lat)
	}
}

func TestMwpCwpBounds(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	a := synthetic(nil)
	mwp, cwp := m.mwpCwp(a, 400)
	n := a.Events.WarpsPerSM
	if mwp < 1 || mwp > n || mwp > cfg.MWPPeakBW {
		t.Errorf("MWP %g out of bounds", mwp)
	}
	if cwp < 1 || cwp > n {
		t.Errorf("CWP %g out of bounds", cwp)
	}
}

func TestExplainMentionsComponents(t *testing.T) {
	cfg := gpu.KeplerK80()
	p := &Prediction{
		TimeNS: 1234, Cycles: 1000, TComp: 600, TMem: 500, TOverlap: 100,
		AMAT: 42, DRAMLatNS: 500, QueueDelayNS: 100,
		Analysis: synthetic(func(a *Analysis) {
			a.Replays14 = 10
			a.Events.ReplayShared = 10
			a.RowCounts = dram.OutcomeCounts{Hits: 8, Misses: 1, Conflicts: 1}
		}),
	}
	out := p.Explain(cfg.NSPerCycle())
	for _, want := range []string{"T_comp", "T_mem", "T_overlap", "replays", "row buffers", "bank conflicts 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	ev := perf.Events{}
	_ = ev
}
