package core

import "gpuhms/internal/queuing"

// T_mem (§III-C, Eq 4–10 and Appendix Eq 17–19):
//
//	T_mem = Effective_memory_requests_per_SM × AMAT            (Eq 4)
//	AMAT  = DRAM_lat × miss_ratio + hit_lat + shmem_lat × shmem_ratio  (Eq 5)
//
// DRAM_lat comes from the per-bank G/G/1 queuing model (Eq 6–9) over the
// request distribution determined by the address mapping (§III-C2), with
// row-buffer-aware service times (Eq 8). Prior models instead assume a
// constant off-chip latency; Options.Queuing=false reproduces that.

// dramLatency returns the system-wide average DRAM access latency and its
// queuing component, both in nanoseconds.
//
// The analysis pass timestamps requests with an instruction-count proxy (the
// paper approximates inter-arrival times by the number of instructions
// between requests). That proxy assumes full-rate issue; the real span is
// stretched by the very memory stalls being modeled. predictFrom therefore
// iterates: given the previous iterate's predicted span, all inter-arrival
// statistics are scaled by span/rawSpan — a pure time-dilation that
// preserves every c_a (Eq 10) — and the Kingman delay is re-evaluated.
// spanNS == 0 selects the first iterate: uncontended row-aware service time.
func (m *Model) dramLatency(an *Analysis, spanNS float64) (lat, queue float64) {
	topo := m.Cfg.DRAM
	if !m.Opts.Queuing {
		// Constant off-chip latency, as measured by a pointer-chase
		// microbenchmark on an idle machine (a closed-row access).
		return topo.MissLatencyNS, 0
	}
	if an.RowCounts.Total() == 0 {
		return topo.MissLatencyNS, 0
	}
	service := an.RowCounts.AvgServiceNS(topo)
	if spanNS <= 0 || an.RawSpanNS <= 0 || len(an.BankStreams) == 0 {
		return service, 0
	}
	factor := spanNS / an.RawSpanNS
	scaled := make([]queuing.Stream, len(an.BankStreams))
	for i, s := range an.BankStreams {
		s.TauA *= factor
		s.SigmaA *= factor
		scaled[i] = s
	}
	lat = queuing.SystemLatency(scaled, m.Opts.Variant)

	// Second queuing stage: the memory controllers' data buses. The network
	// is composable — the controller's queuing delay simply adds to every
	// request's latency.
	var ctlN, ctlDelay float64
	for _, s := range an.CtlStreams {
		s.TauA *= factor
		s.SigmaA *= factor
		ctlDelay += float64(s.N) * queuing.QueuingDelay(s, m.Opts.Variant)
		ctlN += float64(s.N)
	}
	if ctlN > 0 {
		lat += ctlDelay / ctlN
	}

	if lat < service {
		lat = service
	}
	return lat, lat - service
}

// amat evaluates Eq 5 in cycles per warp-level memory instruction.
// miss_ratio generalizes to DRAM trips per memory instruction (it exceeds 1
// for divergent warps whose transactions all miss — "counting them should
// consider the difference in memory request size").
func (m *Model) amat(an *Analysis, dramNS float64) float64 {
	if an.MemInsts == 0 {
		return 0
	}
	cfg := m.Cfg
	mem := float64(an.MemInsts)
	dramTripsPerInst := float64(an.Events.L2Misses) / mem
	offchipRatio := float64(an.OffchipReqs) / mem
	sharedRatio := float64(an.Events.SharedRequests) / mem
	remoteRatio := float64(an.RemoteReqs) / mem

	dramCycles := dramNS * cfg.CyclesPerNS()
	// Remote-placed arrays (chiplet architectures) add one interposer
	// crossing per off-chip request on top of the normal cache/DRAM path.
	interposerCycles := cfg.Interposer.LatencyNS * cfg.CyclesPerNS()
	return dramCycles*dramTripsPerInst +
		cfg.CacheHitLatency*offchipRatio +
		cfg.SharedLatency*sharedRatio +
		interposerCycles*remoteRatio
}

// mwpCwp evaluates the Hong–Kim style warp-parallelism quantities used by
// Eq 18–19 (and by the Sim-et-al overlap formulation).
func (m *Model) mwpCwp(an *Analysis, amat float64) (mwp, cwp float64) {
	cfg := m.Cfg
	n := an.Events.WarpsPerSM
	if n < 1 {
		n = 1
	}
	departure := an.TransPerOffchip
	if departure < 1 {
		departure = 1
	}
	mwp = amat / departure
	if mwp > cfg.MWPPeakBW {
		mwp = cfg.MWPPeakBW
	}
	if mwp > n {
		mwp = n
	}
	if mwp < 1 {
		mwp = 1
	}

	compPerMem := 1.0
	if an.MemInsts > 0 {
		c := float64(an.IssueSlots-an.MemInsts-an.Replays14) / float64(an.MemInsts)
		if c > compPerMem {
			compPerMem = c
		}
	}
	cwp = (compPerMem + amat) / compPerMem
	if cwp > n {
		cwp = n
	}
	if cwp < 1 {
		cwp = 1
	}
	return mwp, cwp
}

// tmem evaluates Eq 4 with the Eq 17–19 effective-request reduction.
func (m *Model) tmem(an *Analysis, amat float64) float64 {
	if an.MemInsts == 0 {
		return 0
	}
	cfg := m.Cfg
	mwp, cwp := m.mwpCwp(an, amat)

	// Eq 19: MWP_cp = min(max(1, CWP−1), MWP).
	mwpCP := cwp - 1
	if mwpCP < 1 {
		mwpCP = 1
	}
	if mwpCP > mwp {
		mwpCP = mwp
	}
	// Refinement of Eq 18's lower range: even when few warps are resident
	// (CWP capped at a small N), every resident warp whose memory period is
	// longer than its compute gap overlaps the others, so at least
	// min(N, AMAT/departure) warps' periods run concurrently.
	n := an.Events.WarpsPerSM
	departure := an.TransPerOffchip
	if departure < 1 {
		departure = 1
	}
	if raw := amat / departure; raw < n {
		n = raw
	}
	if n > mwpCP {
		mwpCP = n
	}
	// Eq 18: ITMLP = min(MLP × MWP_cp, MWP_peak_bw).
	itmlp := an.MLP * mwpCP
	if itmlp > cfg.MWPPeakBW {
		itmlp = cfg.MWPPeakBW
	}
	if itmlp < 1 {
		itmlp = 1
	}
	// Eq 17, with the straggler factor of uneven block scheduling.
	effReqPerSM := float64(an.MemInsts) / (float64(an.ActiveSMs) * itmlp)
	return effReqPerSM * amat * an.Imbalance
}
