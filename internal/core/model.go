package core

import (
	"fmt"
	"math"
	"sync"

	"gpuhms/internal/addrmode"
	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/memsys"
	"gpuhms/internal/obs"
	"gpuhms/internal/perf"
	"gpuhms/internal/placement"
	"gpuhms/internal/queuing"
	"gpuhms/internal/trace"
)

func addrModeInstrs(space gpu.MemSpace, dt trace.DType) int {
	return addrmode.InstrPerAccess(space, dt)
}

// Options selects the model variant. The zero value is the "baseline" of
// §V-B: no detailed instruction counting, constant DRAM latency, even
// request distribution, Eq 11 overlap.
type Options struct {
	// InstrCounting enables the detailed issued-instruction estimation of
	// §III-B: addressing-mode deltas and instruction-replay quantification
	// (Eq 3). When false, T_comp uses the sample placement's executed
	// instruction count for every placement, as in prior work [6][7].
	InstrCounting bool

	// Queuing enables the G/G/1 queuing model of §III-C for the DRAM access
	// latency. When false a constant off-chip latency (the row-miss latency
	// a microbenchmark would measure) is assumed, as in prior work.
	Queuing bool

	// AddressMapping distributes memory requests over banks using the
	// detected address mapping scheme; when false, requests are spread
	// evenly (the Fig 8 ablation).
	AddressMapping bool

	// Variant selects the queuing approximation (paper Eq 9 by default).
	Variant queuing.Variant

	// OverlapCoeffs are the trained Eq 11 coefficients (see Train). Nil
	// predicts zero overlap.
	OverlapCoeffs []float64

	// HongKimOverlap replaces the Eq 11 overlap model with the MWP/CWP
	// formulation of [6], used by the Sim-et-al baseline [7].
	HongKimOverlap bool
}

// FullOptions returns the paper's complete model (coefficients must still be
// trained).
func FullOptions() Options {
	return Options{InstrCounting: true, Queuing: true, AddressMapping: true}
}

// Model predicts kernel execution times under data placements.
type Model struct {
	Cfg     *gpu.Config
	Mapping dram.Mapping
	Opts    Options
}

// NewModel builds a model with the architecture's default address mapping.
func NewModel(cfg *gpu.Config, opts Options) *Model {
	return &Model{Cfg: cfg, Mapping: dram.DefaultMapping(cfg.DRAM), Opts: opts}
}

// SampleProfile is what profiling the sample placement provides: its
// measured execution time and hardware event counters (nvprof in the paper;
// the ground-truth simulator here).
type SampleProfile struct {
	TimeNS float64
	Events perf.Events
}

// Validate rejects profiles that cannot seed predictions — non-finite or
// non-positive sample times, and negative, non-finite, or inconsistent
// counters. Failures wrap hmserr.ErrInvalidProfile: a noisy profiler (or a
// fault injector) surfaces here as a typed error, never as NaN predictions.
func (p *SampleProfile) Validate() error {
	if math.IsNaN(p.TimeNS) || math.IsInf(p.TimeNS, 0) || p.TimeNS <= 0 {
		return hmserr.Wrap(hmserr.ErrInvalidProfile, "sample time %g ns", p.TimeNS)
	}
	if err := p.Events.Validate(); err != nil {
		return hmserr.Wrap(hmserr.ErrInvalidProfile, "%v", err)
	}
	return nil
}

// Prediction is one placement's predicted performance, with the Eq 1
// decomposition exposed for ablation studies.
type Prediction struct {
	TimeNS    float64
	Cycles    float64
	TComp     float64 // cycles
	TMem      float64 // cycles
	TOverlap  float64 // cycles
	StagingNS float64

	AMAT         float64 // cycles per memory instruction
	DRAMLatNS    float64 // average DRAM access latency (Eq 7)
	QueueDelayNS float64 // average queuing component of DRAMLatNS
	Events       perf.Events
	Analysis     *Analysis

	// FixedPointIters counts the bisection steps spent finding the
	// self-consistent execution span of the queuing model (0 when the
	// queuing model is off) — a convergence observable for the obs layer.
	FixedPointIters int
}

// Predictor holds the per-kernel state: the sample placement's layout, the
// model's own analysis of the sample, the sample profile, and the decomposed
// evaluator — the placement-independent program plus the shared contribution
// cache that makes repeated and delta evaluations cheap (delta.go).
//
// A Predictor is safe for concurrent use: the fields set at construction are
// read-only, the contribution cache is internally synchronized, and the
// reusable merge scratch is guarded by a mutex. For parallel ranking, prefer
// one Clone per worker — clones share the immutable state and the
// contribution cache but carry private merge scratch, so they never contend
// on the lock.
type Predictor struct {
	model        *Model
	trace        *trace.Trace
	sample       *placement.Placement
	sampleLayout *placement.Layout
	sampleAn     *Analysis
	sampleState  *DeltaState
	profile      SampleProfile
	rec          obs.Recorder

	prog  *program
	cache *contribCache

	// mu guards scr, the lazily-built reusable merge scratch (shared cache
	// hierarchy, per-SM caches, DRAM analyzer) that makes repeated
	// evaluations allocation-lean — one set per predictor instead of per
	// prediction.
	mu  sync.Mutex
	scr *mergeScratch
}

// Clone returns a predictor sharing this one's immutable state (model,
// trace, program, contribution cache, sample analysis, profile, recorder)
// but with private merge scratch — the per-worker handle of a parallel
// ranking. Clones produce bit-identical predictions to the original, and
// contributions built by one clone are visible to all.
func (p *Predictor) Clone() *Predictor {
	return &Predictor{
		model:        p.model,
		trace:        p.trace,
		sample:       p.sample,
		sampleLayout: p.sampleLayout,
		sampleAn:     p.sampleAn,
		sampleState:  p.sampleState,
		profile:      p.profile,
		rec:          p.rec,
		prog:         p.prog,
		cache:        p.cache,
	}
}

// SetRecorder attaches an instrumentation recorder: every Predict reports
// its Eq 1 term breakdown (T_comp/T_mem/T_overlap inputs and outputs) and a
// wall-clock span. A nil recorder disables recording.
func (p *Predictor) SetRecorder(rec obs.Recorder) { p.rec = obs.OrNop(rec) }

// NewPredictor analyzes the sample placement and prepares target
// predictions. The sample profile is validated first: non-finite, negative,
// or inconsistent profiles are rejected with hmserr.ErrInvalidProfile.
// Construction builds the placement-independent program, seeds the
// contribution cache with the sample's contributions, and retains the
// sample's DeltaState as the canonical root for delta evaluations.
func NewPredictor(m *Model, t *trace.Trace, sample *placement.Placement, prof SampleProfile) (*Predictor, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if err := placement.Check(t, sample, m.Cfg); err != nil {
		return nil, fmt.Errorf("core: sample placement: %w", err)
	}
	prog := newProgram(m.Cfg, t)
	p := &Predictor{
		model:        m,
		trace:        t,
		sample:       sample,
		sampleLayout: placement.NewLayout(t, sample),
		profile:      prof,
		prog:         prog,
		cache:        newContribCache(prog),
	}
	an, st, _, _ := p.evalState(sample, nil, -1, true)
	p.sampleAn = an
	p.sampleState = st
	return p, nil
}

func (m *Model) distMode() dram.DistributionMode {
	if m.Opts.AddressMapping {
		return dram.Mapped
	}
	return dram.Even
}

// Sample returns the model's analysis of the sample placement.
func (p *Predictor) Sample() *Analysis { return p.sampleAn }

// SamplePlacement returns the profiled sample placement — the canonical
// starting point for local searches (greedy coordinate descent). Callers must
// not mutate it; Clone before modifying.
func (p *Predictor) SamplePlacement() *placement.Placement { return p.sample }

// AnalyzePlacement runs the §IV trace analysis of one placement under this
// model's mapping and distribution mode, optionally collecting the global
// DRAM inter-arrival samples (the Fig 4 study). It runs the same decomposed
// evaluation as Predict, but standalone: the program and every contribution
// are built fresh and nothing is cached.
func (m *Model) AnalyzePlacement(t *trace.Trace, sample, target *placement.Placement, collectArrivals bool) *Analysis {
	prog := newProgram(m.Cfg, t)
	layout := placement.Retarget(t, placement.NewLayout(t, sample), sample, target)
	resolver := memsys.NewHierarchy(m.Cfg)
	contribs := make([]*contribution, len(t.Arrays))
	for i := range t.Arrays {
		sp := target.Spaces[i]
		contribs[i] = prog.buildContribution(resolver, trace.ArrayID(i), sp, addrKeyOf(layout, sp, i))
	}
	return prog.merge(target, contribs, newMergeScratch(m.Cfg, m.Mapping, m.distMode()), collectArrivals, nil)
}

// evalState runs the decomposed evaluation of a target placement: resolve the
// layout, gather one contribution per array — reusing prev's where the move
// left an array's binding untouched, then the shared cache, then a fresh
// build — and run the DRAM merge pass. With useCache false every contribution
// not taken from prev is rebuilt from scratch: the full-evaluation fallback,
// identical math at cold-start cost. Returns the analysis, the reusable
// state, and the contribution cache hit/build tallies for the caller's
// telemetry.
func (p *Predictor) evalState(target *placement.Placement, prev *DeltaState, moved int, useCache bool) (*Analysis, *DeltaState, int64, int64) {
	layout := placement.Retarget(p.trace, p.sampleLayout, p.sample, target)
	contribs := make([]*contribution, len(target.Spaces))
	var hits, builds int64
	for i := range contribs {
		sp := target.Spaces[i]
		addr := addrKeyOf(layout, sp, i)
		// Fast path: an array the move did not touch, whose binding the
		// layout retargeting also left alone, keeps its contribution without
		// even a cache lookup. Retargeting can shift untouched arrays — a
		// neighbor crossing the on-chip/off-chip boundary moves shared
		// offsets and heap ranges — and those fall through to the cache.
		if prev != nil && i != moved && prev.place.Spaces[i] == sp &&
			addrKeyOf(prev.layout, sp, i) == addr {
			contribs[i] = prev.contribs[i]
			continue
		}
		if !useCache {
			contribs[i] = p.prog.buildContribution(p.cache.resolver, trace.ArrayID(i), sp, addr)
			builds++
			continue
		}
		c, hit := p.cache.get(trace.ArrayID(i), sp, addr)
		contribs[i] = c
		if hit {
			hits++
		} else {
			builds++
		}
	}
	// PredictFull bypasses the group-sim cache too: cache-distrusting
	// evaluations rebuild every memoized input.
	var groups *groupCache
	if useCache {
		groups = &p.cache.groups
	}
	p.mu.Lock()
	if p.scr == nil {
		p.scr = newMergeScratch(p.model.Cfg, p.model.Mapping, p.model.distMode())
	} else {
		p.scr.reset()
	}
	an := p.prog.merge(target, contribs, p.scr, false, groups)
	p.mu.Unlock()
	st := &DeltaState{place: target.Clone(), layout: layout, contribs: contribs}
	return an, st, hits, builds
}

// recordPrediction emits the per-prediction telemetry shared by every
// evaluation entry point.
func (p *Predictor) recordPrediction(rec obs.Recorder, pred *Prediction, span string, hits, builds int64, startNS float64) {
	rec.Add("model_predictions_total", 1)
	rec.Add("model_fixedpoint_iters_total", int64(pred.FixedPointIters))
	if hits > 0 {
		rec.Add("model_contrib_cache_hits_total", hits)
	}
	if builds > 0 {
		rec.Add("model_contrib_builds_total", builds)
	}
	rec.Observe("model_tcomp_cycles", pred.TComp)
	rec.Observe("model_tmem_cycles", pred.TMem)
	rec.Observe("model_toverlap_cycles", pred.TOverlap)
	rec.Observe("model_amat_cycles", pred.AMAT)
	rec.Observe("model_dram_latency_ns", pred.DRAMLatNS)
	rec.Observe("model_queue_delay_ns", pred.QueueDelayNS)
	rec.Observe("model_predicted_ns", pred.TimeNS)
	rec.Span("model", span, startNS, rec.Now()-startNS)
}

// Predict returns the predicted performance of a target placement. It runs
// the decomposed evaluation with the contribution cache on, so repeated
// predictions against one predictor pay only the merge pass for arrays whose
// bindings have been seen before.
func (p *Predictor) Predict(target *placement.Placement) (*Prediction, error) {
	pred, _, err := p.PredictState(target)
	return pred, err
}

// PredictState is Predict returning also the reusable DeltaState of the
// evaluated placement — the starting point for PredictDelta.
func (p *Predictor) PredictState(target *placement.Placement) (*Prediction, *DeltaState, error) {
	return p.predictVia(target, nil, -1, true, "predict")
}

// PredictDelta predicts the placement obtained by moving one array of a
// previously evaluated placement to a new space, reusing every untouched
// per-array contribution from prev. The result is byte-identical to
// Predict of the same placement — delta and full evaluation share one code
// path and differ only in cache temperature — which the equivalence suite
// pins. A delta evaluation still validates placement legality, so capacity
// and read-only violations surface exactly as they do from Predict.
func (p *Predictor) PredictDelta(prev *DeltaState, arrayIdx int, newSpace gpu.MemSpace) (*Prediction, *DeltaState, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("core: PredictDelta: nil previous state")
	}
	target, err := prev.place.WithMoveChecked(trace.ArrayID(arrayIdx), newSpace)
	if err != nil {
		return nil, nil, err
	}
	return p.predictVia(target, prev, arrayIdx, true, "predict_delta")
}

// PredictFull is Predict with the contribution cache bypassed: every
// per-array contribution is rebuilt from scratch. It is the documented
// fallback when cached state cannot be trusted (and the honest baseline for
// delta-speedup benchmarks); the math is identical to Predict, only slower.
func (p *Predictor) PredictFull(target *placement.Placement) (*Prediction, error) {
	pred, _, err := p.predictVia(target, nil, -1, false, "predict_full")
	return pred, err
}

// SampleState returns the DeltaState of the profiled sample placement — the
// canonical root for local searches that explore single-array moves.
func (p *Predictor) SampleState() *DeltaState { return p.sampleState }

// predictVia is the shared evaluation path behind Predict, PredictState,
// PredictDelta, and PredictFull.
func (p *Predictor) predictVia(target *placement.Placement, prev *DeltaState, moved int, useCache bool, span string) (*Prediction, *DeltaState, error) {
	if err := placement.Check(p.trace, target, p.model.Cfg); err != nil {
		return nil, nil, err
	}
	rec := obs.OrNop(p.rec)
	enabled := rec.Enabled()
	var start float64
	if enabled {
		start = rec.Now()
	}
	an, st, hits, builds := p.evalState(target, prev, moved, useCache)
	pred, err := p.model.predictFrom(an, p.sampleAn, &p.profile)
	if err != nil {
		return nil, nil, err
	}
	if enabled {
		if span == "predict_delta" {
			rec.Add("model_delta_predictions_total", 1)
		}
		p.recordPrediction(rec, pred, span, hits, builds, start)
	}
	return pred, st, nil
}

// predictFrom assembles the Eq 1 prediction from a target analysis.
func (m *Model) predictFrom(an, sampleAn *Analysis, prof *SampleProfile) (*Prediction, error) {
	cfg := m.Cfg
	pred := &Prediction{Events: an.Events, Analysis: an, StagingNS: an.StagingNS}

	tcomp := m.tcomp(an, sampleAn, prof)
	pred.TComp = tcomp

	// The queuing model needs the kernel's execution span to turn the
	// instruction-count arrival proxy into arrival rates; the span in turn
	// depends on the memory cost the queuing model produces. The map
	// span → predicted span is decreasing (spreading arrivals lowers
	// utilization and queuing delay), so the self-consistent span is the
	// unique fixed point, found by bisection.
	eval := func(spanNS float64) (total, tmem, toverlap, amat, dramNS, queueNS float64) {
		dramNS, queueNS = m.dramLatency(an, spanNS)
		amat = m.amat(an, dramNS)
		tmem = m.tmem(an, amat)
		toverlap = m.toverlap(an, tcomp, tmem, amat)
		total = tcomp + tmem - toverlap
		if total < tcomp {
			total = tcomp
		}
		return total, tmem, toverlap, amat, dramNS, queueNS
	}

	nsPerCycle := cfg.NSPerCycle()
	var tmem, amat, dramNS, queueNS, toverlap float64
	if !m.Opts.Queuing || len(an.BankStreams) == 0 {
		_, tmem, toverlap, amat, dramNS, queueNS = eval(0)
	} else {
		// Bracket the fixed point: lo is the no-memory-cost span, hi is
		// doubled until the predicted span falls below it.
		uncontended, _, _, _, _, _ := eval(0)
		lo := tcomp * nsPerCycle
		if lo <= 0 {
			lo = 1
		}
		hi := uncontended * nsPerCycle
		if hi < lo {
			hi = lo
		}
		for i := 0; i < 60; i++ {
			total, _, _, _, _, _ := eval(hi)
			if total*nsPerCycle <= hi {
				break
			}
			hi *= 2
			pred.FixedPointIters++
		}
		for i := 0; i < 50 && hi-lo > 1e-3*hi; i++ {
			mid := (lo + hi) / 2
			total, _, _, _, _, _ := eval(mid)
			if total*nsPerCycle > mid {
				lo = mid
			} else {
				hi = mid
			}
			pred.FixedPointIters++
		}
		_, tmem, toverlap, amat, dramNS, queueNS = eval(hi)
	}
	pred.TMem = tmem
	pred.TOverlap = toverlap
	pred.AMAT = amat
	pred.DRAMLatNS = dramNS
	pred.QueueDelayNS = queueNS

	pred.Cycles = tcomp + tmem - toverlap
	if pred.Cycles < tcomp {
		pred.Cycles = tcomp
	}
	pred.TimeNS = pred.Cycles*cfg.NSPerCycle() + an.StagingNS
	if math.IsNaN(pred.TimeNS) || pred.TimeNS <= 0 {
		return nil, fmt.Errorf("core: degenerate prediction (%.3f ns)", pred.TimeNS)
	}
	return pred, nil
}
