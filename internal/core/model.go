package core

import (
	"fmt"
	"math"
	"sync"

	"gpuhms/internal/addrmode"
	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/memsys"
	"gpuhms/internal/obs"
	"gpuhms/internal/perf"
	"gpuhms/internal/placement"
	"gpuhms/internal/queuing"
	"gpuhms/internal/trace"
)

func addrModeInstrs(space gpu.MemSpace, dt trace.DType) int {
	return addrmode.InstrPerAccess(space, dt)
}

// Options selects the model variant. The zero value is the "baseline" of
// §V-B: no detailed instruction counting, constant DRAM latency, even
// request distribution, Eq 11 overlap.
type Options struct {
	// InstrCounting enables the detailed issued-instruction estimation of
	// §III-B: addressing-mode deltas and instruction-replay quantification
	// (Eq 3). When false, T_comp uses the sample placement's executed
	// instruction count for every placement, as in prior work [6][7].
	InstrCounting bool

	// Queuing enables the G/G/1 queuing model of §III-C for the DRAM access
	// latency. When false a constant off-chip latency (the row-miss latency
	// a microbenchmark would measure) is assumed, as in prior work.
	Queuing bool

	// AddressMapping distributes memory requests over banks using the
	// detected address mapping scheme; when false, requests are spread
	// evenly (the Fig 8 ablation).
	AddressMapping bool

	// Variant selects the queuing approximation (paper Eq 9 by default).
	Variant queuing.Variant

	// OverlapCoeffs are the trained Eq 11 coefficients (see Train). Nil
	// predicts zero overlap.
	OverlapCoeffs []float64

	// HongKimOverlap replaces the Eq 11 overlap model with the MWP/CWP
	// formulation of [6], used by the Sim-et-al baseline [7].
	HongKimOverlap bool
}

// FullOptions returns the paper's complete model (coefficients must still be
// trained).
func FullOptions() Options {
	return Options{InstrCounting: true, Queuing: true, AddressMapping: true}
}

// Model predicts kernel execution times under data placements.
type Model struct {
	Cfg     *gpu.Config
	Mapping dram.Mapping
	Opts    Options
}

// NewModel builds a model with the architecture's default address mapping.
func NewModel(cfg *gpu.Config, opts Options) *Model {
	return &Model{Cfg: cfg, Mapping: dram.DefaultMapping(cfg.DRAM), Opts: opts}
}

// SampleProfile is what profiling the sample placement provides: its
// measured execution time and hardware event counters (nvprof in the paper;
// the ground-truth simulator here).
type SampleProfile struct {
	TimeNS float64
	Events perf.Events
}

// Validate rejects profiles that cannot seed predictions — non-finite or
// non-positive sample times, and negative, non-finite, or inconsistent
// counters. Failures wrap hmserr.ErrInvalidProfile: a noisy profiler (or a
// fault injector) surfaces here as a typed error, never as NaN predictions.
func (p *SampleProfile) Validate() error {
	if math.IsNaN(p.TimeNS) || math.IsInf(p.TimeNS, 0) || p.TimeNS <= 0 {
		return hmserr.Wrap(hmserr.ErrInvalidProfile, "sample time %g ns", p.TimeNS)
	}
	if err := p.Events.Validate(); err != nil {
		return hmserr.Wrap(hmserr.ErrInvalidProfile, "%v", err)
	}
	return nil
}

// Prediction is one placement's predicted performance, with the Eq 1
// decomposition exposed for ablation studies.
type Prediction struct {
	TimeNS    float64
	Cycles    float64
	TComp     float64 // cycles
	TMem      float64 // cycles
	TOverlap  float64 // cycles
	StagingNS float64

	AMAT         float64 // cycles per memory instruction
	DRAMLatNS    float64 // average DRAM access latency (Eq 7)
	QueueDelayNS float64 // average queuing component of DRAMLatNS
	Events       perf.Events
	Analysis     *Analysis

	// FixedPointIters counts the bisection steps spent finding the
	// self-consistent execution span of the queuing model (0 when the
	// queuing model is off) — a convergence observable for the obs layer.
	FixedPointIters int
}

// Predictor holds the per-kernel state: the sample placement's layout, the
// model's own analysis of the sample, and the sample profile.
//
// A Predictor is safe for concurrent use: the fields set at construction are
// read-only, and the reusable analysis scratch is guarded by a mutex. For
// parallel ranking, prefer one Clone per worker — clones share the immutable
// state but carry private scratch, so they never contend on the lock.
type Predictor struct {
	model        *Model
	trace        *trace.Trace
	sample       *placement.Placement
	sampleLayout *placement.Layout
	sampleAn     *Analysis
	profile      SampleProfile
	rec          obs.Recorder

	// mu guards scr, the lazily-built reusable analysis scratch that makes
	// repeated Predict calls allocation-lean (one cache hierarchy and DRAM
	// analyzer per predictor instead of per prediction).
	mu  sync.Mutex
	scr *analysisScratch
}

// Clone returns a predictor sharing this one's immutable state (model,
// trace, sample analysis, profile, recorder) but with private analysis
// scratch — the per-worker handle of a parallel ranking. Clones produce
// bit-identical predictions to the original.
func (p *Predictor) Clone() *Predictor {
	return &Predictor{
		model:        p.model,
		trace:        p.trace,
		sample:       p.sample,
		sampleLayout: p.sampleLayout,
		sampleAn:     p.sampleAn,
		profile:      p.profile,
		rec:          p.rec,
	}
}

// SetRecorder attaches an instrumentation recorder: every Predict reports
// its Eq 1 term breakdown (T_comp/T_mem/T_overlap inputs and outputs) and a
// wall-clock span. A nil recorder disables recording.
func (p *Predictor) SetRecorder(rec obs.Recorder) { p.rec = obs.OrNop(rec) }

// NewPredictor analyzes the sample placement and prepares target
// predictions. The sample profile is validated first: non-finite, negative,
// or inconsistent profiles are rejected with hmserr.ErrInvalidProfile.
func NewPredictor(m *Model, t *trace.Trace, sample *placement.Placement, prof SampleProfile) (*Predictor, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if err := placement.Check(t, sample, m.Cfg); err != nil {
		return nil, fmt.Errorf("core: sample placement: %w", err)
	}
	layout := placement.NewLayout(t, sample)
	binding := memsys.NewBinding(m.Cfg, t, sample, layout, sample)
	return &Predictor{
		model:        m,
		trace:        t,
		sample:       sample,
		sampleLayout: layout,
		sampleAn:     analyze(m.Cfg, m.Mapping, m.distMode(), binding),
		profile:      prof,
	}, nil
}

func (m *Model) distMode() dram.DistributionMode {
	if m.Opts.AddressMapping {
		return dram.Mapped
	}
	return dram.Even
}

// Sample returns the model's analysis of the sample placement.
func (p *Predictor) Sample() *Analysis { return p.sampleAn }

// SamplePlacement returns the profiled sample placement — the canonical
// starting point for local searches (greedy coordinate descent). Callers must
// not mutate it; Clone before modifying.
func (p *Predictor) SamplePlacement() *placement.Placement { return p.sample }

// AnalyzePlacement runs the §IV trace analysis of one placement under this
// model's mapping and distribution mode, optionally collecting the global
// DRAM inter-arrival samples (the Fig 4 study).
func (m *Model) AnalyzePlacement(t *trace.Trace, sample, target *placement.Placement, collectArrivals bool) *Analysis {
	layout := placement.NewLayout(t, sample)
	binding := memsys.NewBinding(m.Cfg, t, sample, layout, target)
	return analyzeCollect(m.Cfg, m.Mapping, m.distMode(), binding, collectArrivals)
}

// Predict returns the predicted performance of a target placement.
func (p *Predictor) Predict(target *placement.Placement) (*Prediction, error) {
	if err := placement.Check(p.trace, target, p.model.Cfg); err != nil {
		return nil, err
	}
	rec := obs.OrNop(p.rec)
	enabled := rec.Enabled()
	var start float64
	if enabled {
		start = rec.Now()
	}
	binding := memsys.NewBinding(p.model.Cfg, p.trace, p.sample, p.sampleLayout, target)
	// The analysis runs on the predictor's reusable scratch; the lock makes
	// a shared Predictor safe (its cost is noise next to the analysis), and
	// per-worker Clones avoid even that.
	p.mu.Lock()
	if p.scr == nil {
		p.scr = newAnalysisScratch(p.model.Cfg, p.model.Mapping, p.model.distMode())
	}
	an := analyzeScratch(p.model.Cfg, p.model.Mapping, p.model.distMode(), binding, false, p.scr)
	p.mu.Unlock()
	pred, err := p.model.predictFrom(an, p.sampleAn, &p.profile)
	if enabled && err == nil {
		rec.Add("model_predictions_total", 1)
		rec.Add("model_fixedpoint_iters_total", int64(pred.FixedPointIters))
		rec.Observe("model_tcomp_cycles", pred.TComp)
		rec.Observe("model_tmem_cycles", pred.TMem)
		rec.Observe("model_toverlap_cycles", pred.TOverlap)
		rec.Observe("model_amat_cycles", pred.AMAT)
		rec.Observe("model_dram_latency_ns", pred.DRAMLatNS)
		rec.Observe("model_queue_delay_ns", pred.QueueDelayNS)
		rec.Observe("model_predicted_ns", pred.TimeNS)
		rec.Span("model", "predict", start, rec.Now()-start)
	}
	return pred, err
}

// predictFrom assembles the Eq 1 prediction from a target analysis.
func (m *Model) predictFrom(an, sampleAn *Analysis, prof *SampleProfile) (*Prediction, error) {
	cfg := m.Cfg
	pred := &Prediction{Events: an.Events, Analysis: an, StagingNS: an.StagingNS}

	tcomp := m.tcomp(an, sampleAn, prof)
	pred.TComp = tcomp

	// The queuing model needs the kernel's execution span to turn the
	// instruction-count arrival proxy into arrival rates; the span in turn
	// depends on the memory cost the queuing model produces. The map
	// span → predicted span is decreasing (spreading arrivals lowers
	// utilization and queuing delay), so the self-consistent span is the
	// unique fixed point, found by bisection.
	eval := func(spanNS float64) (total, tmem, toverlap, amat, dramNS, queueNS float64) {
		dramNS, queueNS = m.dramLatency(an, spanNS)
		amat = m.amat(an, dramNS)
		tmem = m.tmem(an, amat)
		toverlap = m.toverlap(an, tcomp, tmem, amat)
		total = tcomp + tmem - toverlap
		if total < tcomp {
			total = tcomp
		}
		return total, tmem, toverlap, amat, dramNS, queueNS
	}

	nsPerCycle := cfg.NSPerCycle()
	var tmem, amat, dramNS, queueNS, toverlap float64
	if !m.Opts.Queuing || len(an.BankStreams) == 0 {
		_, tmem, toverlap, amat, dramNS, queueNS = eval(0)
	} else {
		// Bracket the fixed point: lo is the no-memory-cost span, hi is
		// doubled until the predicted span falls below it.
		uncontended, _, _, _, _, _ := eval(0)
		lo := tcomp * nsPerCycle
		if lo <= 0 {
			lo = 1
		}
		hi := uncontended * nsPerCycle
		if hi < lo {
			hi = lo
		}
		for i := 0; i < 60; i++ {
			total, _, _, _, _, _ := eval(hi)
			if total*nsPerCycle <= hi {
				break
			}
			hi *= 2
			pred.FixedPointIters++
		}
		for i := 0; i < 50 && hi-lo > 1e-3*hi; i++ {
			mid := (lo + hi) / 2
			total, _, _, _, _, _ := eval(mid)
			if total*nsPerCycle > mid {
				lo = mid
			} else {
				hi = mid
			}
			pred.FixedPointIters++
		}
		_, tmem, toverlap, amat, dramNS, queueNS = eval(hi)
	}
	pred.TMem = tmem
	pred.TOverlap = toverlap
	pred.AMAT = amat
	pred.DRAMLatNS = dramNS
	pred.QueueDelayNS = queueNS

	pred.Cycles = tcomp + tmem - toverlap
	if pred.Cycles < tcomp {
		pred.Cycles = tcomp
	}
	pred.TimeNS = pred.Cycles*cfg.NSPerCycle() + an.StagingNS
	if math.IsNaN(pred.TimeNS) || pred.TimeNS <= 0 {
		return nil, fmt.Errorf("core: degenerate prediction (%.3f ns)", pred.TimeNS)
	}
	return pred, nil
}
