package core

// The decomposed evaluator. The §IV trace analysis used to be one monolithic
// lockstep walk per (placement) evaluation; here it is split into three parts
// so single-array placement moves are cheap (ROADMAP item 1):
//
//   - program: everything placement-independent — the lockstep instruction
//     schedule, the issue-slot sequence of non-memory instructions, barrier
//     counts, the per-warp MLP statistic, and the non-memory event counters.
//     Built once per trace.
//
//   - contribution: one array's accesses resolved under one (space, address)
//     binding, cache-independently: per-lane addresses coalesced into
//     first-level transactions, the replays that depend only on the address
//     pattern (divergence, shared bank conflicts, atomic serialization), and
//     the aggregated counters those imply. A contribution is a pure function
//     of (array, space, address key) — it reads no cache state — so it is
//     built once and cached. This is where the expensive work lives: per-lane
//     address generation, coalescing sorts, replay math.
//
//   - merge: the interaction term. Per-array contributions are stitched back
//     together in lockstep order and replayed through ONE shared cache
//     hierarchy (L2, constant, texture) plus the DRAM analyzer — the same
//     state evolution as the monolithic walk, so cross-array cache contention
//     (one array evicting another's lines) and the shared bank/row-buffer
//     statistics are modeled with full fidelity. The proxy clock is advanced
//     by exactly the same sequence of floating-point additions as the
//     monolithic walk, so merged analyses are byte-identical to it, not
//     merely close. This is the only per-evaluation cost: cache probes per
//     first-level line, never per lane.
//
// Predict, PredictDelta, and Model.AnalyzePlacement all run through this one
// path, which is what makes delta and full evaluations byte-identical: a
// "delta" differs only in how many contributions come from cache instead of
// being rebuilt, never in the math.

import (
	"sync"

	"gpuhms/internal/cache"
	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/memsys"
	"gpuhms/internal/perf"
	"gpuhms/internal/placement"
	"gpuhms/internal/replay"
	"gpuhms/internal/trace"
)

// memRef is one warp-level memory instruction of the lockstep schedule.
type memRef struct {
	inst    *trace.Inst
	array   trace.ArrayID
	ordinal int32 // position in the array's own access sequence
}

// program is the placement-independent part of the §IV analysis: the lockstep
// schedule of the trace with every quantity that no placement can change.
// It is immutable once built and shared by all clones of a Predictor.
type program struct {
	cfg *gpu.Config
	t   *trace.Trace

	// refs lists memory instructions in lockstep order (the round-robin
	// warp interleaving of the hardware scheduler).
	refs []memRef
	// slotSeq holds the issue slots of each non-memory instruction record in
	// lockstep order (FP64 double-issue included). merge replays it addition
	// by addition so the proxy clock accumulates in exactly the monolithic
	// walk's floating-point order.
	slotSeq []int32
	// refPre[i] is the number of slotSeq entries issued before ref i.
	refPre []int32
	// arrayInsts[id] lists one array's memory instructions in lockstep
	// order; contributions are built by walking it.
	arrayInsts [][]*trace.Inst

	baseSlots  int64 // non-memory issue slots (FP64 double-issue included)
	baseExec   int64 // non-memory executed instructions
	baseEvents perf.Events
	syncs      int64
	mlp        float64
	activeSMs  int
	imbalance  float64
	warpsPerSM float64
	slotNS     float64

	// l2x is the L2's address decomposition, used to reason about set
	// occupancy analytically (the eviction-free fast merge).
	l2x cache.Indexer
}

// newProgram runs the placement-independent lockstep walk once. Warps advance
// in lockstep (one instruction per warp per round), exactly as the old
// monolithic analysis did; see merge for how the proxy clock is recovered.
func newProgram(cfg *gpu.Config, t *trace.Trace) *program {
	p := &program{cfg: cfg, t: t, activeSMs: cfg.ActiveSMs(t.Launch.Blocks)}
	p.slotNS = cfg.NSPerCycle() / float64(p.activeSMs)
	p.l2x = cache.NewIndexer(cfg.L2)
	p.arrayInsts = make([][]*trace.Inst, len(t.Arrays))
	counts := make([]int32, len(t.Arrays))

	pcs := make([]int, len(t.Warps))
	inRun := make([]bool, len(t.Warps)) // per-warp consecutive-load run state
	remaining := len(t.Warps)
	var loadRuns, loadsInRuns int64

	for remaining > 0 {
		for wi := range t.Warps {
			pc := pcs[wi]
			if pc >= len(t.Warps[wi].Inst) {
				continue
			}
			in := &t.Warps[wi].Inst[pc]
			pcs[wi]++
			if pcs[wi] == len(t.Warps[wi].Inst) {
				remaining--
			}

			if !in.Op.IsMem() {
				inRun[wi] = false
				slots := int64(in.Count)
				if in.Op == trace.OpFP64 {
					slots *= 2
				}
				if in.Op == trace.OpSync {
					p.syncs++
				}
				p.baseSlots += slots
				p.baseExec += int64(in.Count)
				p.baseEvents.InstExecuted += int64(in.Count)
				p.baseEvents.InstIssued += int64(in.Count)
				p.baseEvents.IssueSlots += slots
				if in.Op == trace.OpInt {
					p.baseEvents.InstInteger += int64(in.Count)
				}
				p.slotSeq = append(p.slotSeq, int32(slots))
				continue
			}

			p.refs = append(p.refs, memRef{inst: in, array: in.Array, ordinal: counts[in.Array]})
			counts[in.Array]++
			p.arrayInsts[in.Array] = append(p.arrayInsts[in.Array], in)
			p.refPre = append(p.refPre, int32(len(p.slotSeq)))

			// The consecutive-load run statistic (MLP) depends only on the op
			// sequence, never on where arrays live.
			if in.Op == trace.OpLoad {
				if inRun[wi] {
					loadsInRuns++
				} else {
					inRun[wi] = true
					loadRuns++
					loadsInRuns++
				}
			} else {
				inRun[wi] = false
			}
		}
	}

	p.mlp = 1
	if loadRuns > 0 {
		p.mlp = float64(loadsInRuns) / float64(loadRuns)
	}
	p.warpsPerSM = residentWarps(t, cfg)
	p.imbalance = 1
	if blocks := t.Launch.Blocks; blocks > p.activeSMs {
		perSM := float64(blocks) / float64(p.activeSMs)
		worst := float64((blocks + p.activeSMs - 1) / p.activeSMs)
		p.imbalance = worst / perSM
	}
	return p
}

// contribution is one array's cache-independent share of the analysis under
// one (space, address key) binding: per-access first-level line streams,
// static replays (divergence, shared conflicts, atomics), and the aggregated
// counters those imply. Nothing here touches cache state — cache hits and
// misses depend on what every other array did before, and are resolved by
// merge — which is what makes a contribution a pure function of its key,
// reusable across every placement that binds the array the same way.
type contribution struct {
	space gpu.MemSpace
	// addr is the address binding the contribution was resolved at (device
	// base for off-chip spaces, block-local offset for shared memory); with
	// space it identifies the binding in group-sim cache keys.
	addr uint64
	// k is the addressing-mode preamble: integer instructions issued before
	// each of this array's accesses under this space.
	k int64
	// staticReplays[o] is the o-th access's cache-independent replays:
	// divergence, shared bank conflicts, atomic serialization. Constant-cache
	// miss replays are cache state and come from the merge probe.
	staticReplays []int32
	// lines holds the first-level cache line addresses of all accesses back
	// to back; access o owns lines[lineOff[o]:lineOff[o+1]]. nil for shared
	// memory, which never reaches a cache.
	lines   []uint64
	lineOff []int32

	events     perf.Events // cache-independent event counters, preambles included
	executed   int64       // executed instructions: preamble + 1 per access
	issueSlots int64       // executed + static replays
	replays14  int64       // static part of placement-dependent replays
	offchip    int64       // accesses counted as off-chip requests
	transOff   int64       // first-level transactions of off-chip accesses

	// The remaining fields feed the eviction-free fast merge (see merge): as
	// long as no L2 set ever fills past its associativity, an L2 access hits
	// iff its line was probed before, and since the layout never packs two
	// arrays into one L2 line, "probed before" is a per-array (or per-group)
	// property — precomputable, no cache simulation needed per evaluation.
	//
	// minTag/maxTag bound the tag interval of every first-level line of any
	// off-chip contribution (empty when minTag > maxTag), for the cross-array
	// disjointness screen. The rest exist only for global-space contributions,
	// whose accesses reach the L2 directly: dramLines lists the first-touch
	// lines (one per distinct L2 tag, at its first probe, in probe order) with
	// access o owning dramLines[dramOff[o]:dramOff[o+1]], and setCounts counts
	// distinct L2 tags per L2 set (saturating). Constant/texture arrays get
	// the equivalent tables from their space's groupSim, which knows which
	// first-level accesses miss and forward to the L2.
	dramLines []uint64
	dramOff   []int32
	setCounts []uint16
	minTag    uint64
	maxTag    uint64
	l2Acc     int64 // L2 probes: one per first-level line
	l2Miss    int64 // distinct L2 tags: misses when no set ever evicts
}

// countResolvedEvents maps the cache-independent resolution of one memory
// access onto the prediction's event counters; merge adds the cache-dependent
// counters (misses, L2 traffic, constant-miss replays) per evaluation.
func countResolvedEvents(ev *perf.Events, res *memsys.Resolved, staticReplays int64) {
	ev.InstIssued += 1 + staticReplays
	ev.InstExecuted++
	ev.LdstIssued += 1 + staticReplays
	ev.IssueSlots += 1 + staticReplays
	switch res.Space.Base() {
	case gpu.Global:
		ev.GlobalRequests++
	case gpu.Constant:
		ev.ConstantRequest++
		ev.ConstAccesses += int64(len(res.Lines))
	case gpu.Texture1D, gpu.Texture2D:
		ev.TextureRequests++
		ev.TexAccesses += int64(len(res.Lines))
	case gpu.Shared:
		ev.SharedRequests++
	}
	ev.ReplayGlobalDiv += res.Replays.ByReason[replay.GlobalDivergence]
	ev.ReplayConstDiv += res.Replays.ByReason[replay.ConstantDivergence]
	ev.ReplayShared += res.Replays.ByReason[replay.SharedBankConflict]
	ev.ReplayAtomic += res.Replays.ByReason[replay.AtomicConflict]
	ev.SharedBankConflicts += int64(res.SharedConflicts)
}

// buildContribution resolves one array's accesses under (space, addr),
// cache-independently. addr is the array's device base address for off-chip
// spaces or its block-local byte offset for shared memory. resolver supplies
// geometry only; its cache state is neither read nor written.
func (p *program) buildContribution(resolver *memsys.Hierarchy, array trace.ArrayID, space gpu.MemSpace, addr uint64) *contribution {
	t := p.t
	n := len(t.Arrays)
	pl := placement.New(n)
	pl.Spaces[array] = space
	lay := &placement.Layout{Base: make([]uint64, n), SharedOff: make([]uint64, n)}
	if space == gpu.Shared {
		lay.SharedOff[array] = addr
	} else {
		lay.Base[array] = addr
	}
	b := &memsys.Binding{Trace: t, Place: pl, Layout: lay, Tex2DShift: p.cfg.TextureBlockShift}
	var sc memsys.Scratch

	insts := p.arrayInsts[array]
	c := &contribution{
		space:         space,
		addr:          addr,
		k:             int64(addrModeInstrs(space, t.Array(array).Type)),
		staticReplays: make([]int32, len(insts)),
	}
	offchip := space != gpu.Shared
	if offchip {
		c.lineOff = make([]int32, len(insts)+1)
	}
	c.minTag = ^uint64(0)
	var seenTags map[uint64]struct{}
	if space.Base() == gpu.Global {
		c.dramOff = make([]int32, len(insts)+1)
		c.setCounts = make([]uint16, p.l2x.NumSets())
		seenTags = make(map[uint64]struct{})
	}
	for o, in := range insts {
		res := resolver.ResolveScratch(b, in, &sc)
		replays := res.Replays.Total()
		c.staticReplays[o] = int32(replays)

		// Addressing preamble: k integer instructions per access.
		c.events.InstExecuted += c.k
		c.events.InstIssued += c.k
		c.events.InstInteger += c.k
		c.events.IssueSlots += c.k
		countResolvedEvents(&c.events, &res, replays)

		c.executed += c.k + 1
		c.issueSlots += c.k + 1 + replays
		c.replays14 += replays
		if offchip {
			c.offchip++
			c.transOff += int64(res.Transactions)
			c.lines = append(c.lines, res.Lines...)
			c.lineOff[o+1] = int32(len(c.lines))
			// The touched-tag interval covers every first-level line, not just
			// forwarded ones, so the disjointness screen can reason per array
			// regardless of which cache sits in front of the L2.
			for _, ln := range res.Lines {
				tag := p.l2x.Tag(ln)
				if tag < c.minTag {
					c.minTag = tag
				}
				if tag > c.maxTag {
					c.maxTag = tag
				}
			}
		}
		if space.Base() == gpu.Global {
			c.l2Acc += int64(len(res.Lines))
			for _, ln := range res.Lines {
				tag := p.l2x.Tag(ln)
				if _, ok := seenTags[tag]; ok {
					continue
				}
				seenTags[tag] = struct{}{}
				c.dramLines = append(c.dramLines, ln)
				if s := p.l2x.Set(tag); c.setCounts[s] != ^uint16(0) {
					c.setCounts[s]++
				}
				c.l2Miss++
			}
			c.dramOff[o+1] = int32(len(c.dramLines))
		}
	}
	return c
}

// groupSim is the memoized cache simulation of one per-SM cache space — the
// constant cache or the texture cache (both texture flavors share one). The
// per-SM caches see only their own space's accesses, so their hit/miss
// outcomes are a pure function of the ordered access stream of the arrays
// occupying that space: the "group". A groupSim replays that stream once
// through a private cache instance and records, per group access in lockstep
// order, the first-level miss count and the first-touch L2 lines the misses
// forward — everything the eviction-free fast merge needs. Multi-array groups
// capture intra-space contention (two texture arrays evicting each other)
// exactly.
type groupSim struct {
	missPerRef []int32  // first-level misses per group access
	dramLines  []uint64 // first-touch forwarded L2 lines, per group access
	dramOff    []int32  // access i owns dramLines[dramOff[i]:dramOff[i+1]]
	setCounts  []uint16 // distinct forwarded L2 tags per L2 set (saturating)
	misses     int64    // total first-level misses (= L2 probes of this group)
	l2Miss     int64    // distinct forwarded L2 tags
}

// buildGroupSim replays the group's accesses — refs of arrays whose
// contribution lives in the group's space — through a fresh private cache.
// member[i] selects arrays; isConst picks the constant geometry, otherwise
// texture.
func (p *program) buildGroupSim(isConst bool, member []bool, contribs []*contribution) *groupSim {
	g := &groupSim{
		setCounts: make([]uint16, p.l2x.NumSets()),
		dramOff:   []int32{0},
	}
	geom := p.cfg.Texture
	if isConst {
		geom = p.cfg.Constant
	}
	pc := cache.New(geom)
	seen := make(map[uint64]struct{})
	for i := range p.refs {
		r := &p.refs[i]
		if !member[r.array] {
			continue
		}
		c := contribs[r.array]
		var miss int32
		if c.lineOff != nil {
			lo, hi := c.lineOff[r.ordinal], c.lineOff[r.ordinal+1]
			for _, ln := range c.lines[lo:hi] {
				if pc.Access(ln) {
					continue
				}
				miss++
				tag := p.l2x.Tag(ln)
				if _, ok := seen[tag]; ok {
					continue
				}
				seen[tag] = struct{}{}
				g.dramLines = append(g.dramLines, ln)
				if s := p.l2x.Set(tag); g.setCounts[s] != ^uint16(0) {
					g.setCounts[s]++
				}
				g.l2Miss++
			}
		}
		g.misses += int64(miss)
		g.missPerRef = append(g.missPerRef, miss)
		g.dramOff = append(g.dramOff, int32(len(g.dramLines)))
	}
	return g
}

// mergeScratch holds the per-evaluation mutable state of the merge pass: the
// shared cache hierarchy, one SM's private caches (the lockstep walk models a
// single scheduler), the DRAM analyzer, and the per-access DRAM line buffer.
// One scratch serves one evaluation at a time; reset returns it to the
// fresh-analysis state so a Predictor reuses a single allocation.
type mergeScratch struct {
	hier *memsys.Hierarchy
	sm   *memsys.SMCaches
	an   *dram.Analyzer
	dram []uint64
	// sumCounts is the per-L2-set occupancy accumulator of the eviction-free
	// feasibility screen.
	sumCounts []int32
}

func newMergeScratch(cfg *gpu.Config, mapping dram.Mapping, mode dram.DistributionMode) *mergeScratch {
	return &mergeScratch{
		hier:      memsys.NewHierarchy(cfg),
		sm:        memsys.NewSMCaches(cfg),
		an:        dram.NewAnalyzer(cfg.DRAM, mapping, mode),
		sumCounts: make([]int32, cache.NewIndexer(cfg.L2).NumSets()),
	}
}

func (s *mergeScratch) reset() {
	s.hier.Reset()
	s.sm.Reset()
	s.an.Reset()
}

// merge is the interaction term: it stitches per-array contributions back
// into one Analysis with exactly the same state evolution as the monolithic
// lockstep walk — one shared L2, one set of per-SM caches, one DRAM analyzer,
// and a proxy clock advanced by the identical sequence of floating-point
// additions, so merged analyses are byte-identical to the monolithic
// analysis, not merely close. Cross-array cache contention is modeled with
// full fidelity: per-SM caches see their whole space's interleaved stream
// (via group sims or live probing), and the L2 sees every off-chip line.
//
// Two implementations produce that result:
//
//   - mergeExact probes every first-level line through the shared caches in
//     lockstep order — the general path, always correct.
//   - mergeFast skips per-evaluation cache simulation. It applies when the L2
//     provably cannot evict a valid line (l2EvictionFree): the evaluation's
//     sources touch pairwise-disjoint L2 tag ranges and no L2 set's
//     distinct-tag count exceeds its associativity. Then every L2 access hits
//     iff its tag was probed before, first touches are per-source properties
//     computed once at contribution/groupSim build time, and per-evaluation
//     work drops to the proxy-clock chain plus one dram.Analyzer.Add per DRAM
//     request. Per-SM outcomes come from group sims, which replay each
//     space's full interleaved stream — intra-space contention included.
//
// Both walks execute the same float additions in the same order and feed the
// analyzer the same (line, arrival) sequence, so the choice is invisible in
// the output; the equivalence suite and the search goldens pin this.
//
// groups may be nil (cache-bypassing evaluations); group sims are then built
// for this call only. scr must be freshly built or reset; the returned
// Analysis owns all of its data.
func (p *program) merge(pl *placement.Placement, contribs []*contribution, scr *mergeScratch, collectArrivals bool, groups *groupCache) *Analysis {
	var constSim, texSim *groupSim
	if hasSpace(contribs, true) {
		constSim = p.groupFor(groups, true, contribs)
	}
	if hasSpace(contribs, false) {
		texSim = p.groupFor(groups, false, contribs)
	}
	if p.l2EvictionFree(contribs, constSim, texSim, scr) {
		return p.mergeFast(pl, contribs, constSim, texSim, scr, collectArrivals)
	}
	return p.mergeExact(pl, contribs, scr, collectArrivals)
}

// hasSpace reports whether any contribution lives in the constant space
// (wantConst) or either texture space (!wantConst).
func hasSpace(contribs []*contribution, wantConst bool) bool {
	for _, c := range contribs {
		if c == nil {
			continue
		}
		if wantConst && c.space.Base() == gpu.Constant {
			return true
		}
		if b := c.space.Base(); !wantConst && (b == gpu.Texture1D || b == gpu.Texture2D) {
			return true
		}
	}
	return false
}

// groupFor resolves the group sim of one per-SM cache space, through the
// group cache when one is supplied (search workloads revisit the same handful
// of space groups constantly) or built ad hoc otherwise.
func (p *program) groupFor(groups *groupCache, isConst bool, contribs []*contribution) *groupSim {
	member := make([]bool, len(contribs))
	for i, c := range contribs {
		if c == nil {
			continue
		}
		if b := c.space.Base(); isConst {
			member[i] = b == gpu.Constant
		} else {
			member[i] = b == gpu.Texture1D || b == gpu.Texture2D
		}
	}
	if groups == nil {
		return p.buildGroupSim(isConst, member, contribs)
	}
	return groups.get(p, isConst, member, contribs)
}

// l2EvictionFree is the feasibility screen of the fast merge: it proves that
// replaying this evaluation's L2 stream can never evict a valid line. The L2
// starts every evaluation empty, and LRU fill only evicts once a set holds
// more distinct tags than ways — so eviction is impossible when
//
//  1. no two arrays ever touch the same L2 tag: checked as pairwise
//     disjointness of the per-array touched-tag intervals (the layout
//     allocates arrays at ≥ line alignment and never interleaves two arrays'
//     bytes, so the interval check is exact for this repo's layouts while
//     staying safe for any other), and
//  2. no L2 set accumulates more distinct tags than ways: checked by summing
//     the per-set distinct-tag counts of every L2 traffic source — global
//     contributions plus the const/tex group sims, whose forwarded tags are
//     subsets of their member arrays' intervals.
//
// Then every hit/miss outcome reduces to first-touch. Any saturated set
// counter, interval overlap, or set overflow just means the exact walk runs —
// the screen is conservative, never wrong.
func (p *program) l2EvictionFree(contribs []*contribution, constSim, texSim *groupSim, scr *mergeScratch) bool {
	type iv struct{ min, max uint64 }
	ivs := make([]iv, 0, len(contribs))
	for _, c := range contribs {
		if c == nil || c.minTag > c.maxTag {
			continue
		}
		ivs = append(ivs, iv{c.minTag, c.maxTag})
	}
	for i := range ivs {
		for j := 0; j < i; j++ {
			if ivs[i].min <= ivs[j].max && ivs[j].min <= ivs[i].max {
				return false
			}
		}
	}
	sum := scr.sumCounts
	for i := range sum {
		sum[i] = 0
	}
	const saturated = ^uint16(0)
	ways := int32(p.l2x.Ways())
	addCounts := func(counts []uint16) bool {
		for s, cnt := range counts {
			if cnt == 0 {
				continue
			}
			if cnt == saturated {
				return false
			}
			v := sum[s] + int32(cnt)
			if v > ways {
				return false
			}
			sum[s] = v
		}
		return true
	}
	for _, c := range contribs {
		if c != nil && c.space.Base() == gpu.Global && c.l2Miss > 0 && !addCounts(c.setCounts) {
			return false
		}
	}
	if constSim != nil && constSim.l2Miss > 0 && !addCounts(constSim.setCounts) {
		return false
	}
	if texSim != nil && texSim.l2Miss > 0 && !addCounts(texSim.setCounts) {
		return false
	}
	return true
}

// analysisHeader builds the Analysis skeleton shared by both merge walks:
// the placement-independent base plus every contribution's static sums.
func (p *program) analysisHeader(contribs []*contribution) *Analysis {
	a := &Analysis{
		ActiveSMs:  p.activeSMs,
		Imbalance:  p.imbalance,
		MLP:        p.mlp,
		Syncs:      p.syncs,
		Events:     p.baseEvents,
		IssueSlots: p.baseSlots,
		Executed:   p.baseExec,
		MemInsts:   int64(len(p.refs)),
	}
	for _, c := range contribs {
		a.IssueSlots += c.issueSlots
		a.Executed += c.executed
		a.Replays14 += c.replays14
		a.OffchipReqs += c.offchip
		a.TransPerOffchip += float64(c.transOff)
		if c.space.Remote() {
			// Every off-chip request to a remote-placed array crosses the
			// interposer; the count is placement-static, so summing it here
			// keeps mergeExact and mergeFast byte-identical.
			a.RemoteReqs += c.offchip
		}
		a.Events.AddCounts(&c.events)
	}
	if a.OffchipReqs > 0 {
		a.TransPerOffchip /= float64(a.OffchipReqs)
	}
	return a
}

// finishAnalysis recovers the analyzer statistics and closes the Analysis,
// identically for both walks.
func (p *program) finishAnalysis(a *Analysis, an *dram.Analyzer, pl *placement.Placement, proxyNS float64) *Analysis {
	a.BankStreams = an.Streams()
	a.CtlStreams = an.CtlStreams()
	a.RawSpanNS = proxyNS
	a.RowCounts = an.Counts()
	a.Events.RowHits = an.Counts().Hits
	a.Events.RowMisses = an.Counts().Misses
	a.Events.RowConflicts = an.Counts().Conflicts
	a.Events.DRAMRequests = an.Counts().Total()
	a.Events.WarpsPerSM = p.warpsPerSM
	a.BankCaMean, a.BankCaStd = an.MeanCa()
	a.StagingNS = placement.SharedStagingBytes(p.t, pl) / p.cfg.SharedCopyGBs
	return a
}

// mergeExact replays every first-level line through the shared caches in
// lockstep order — the general merge walk; see merge.
func (p *program) mergeExact(pl *placement.Placement, contribs []*contribution, scr *mergeScratch, collectArrivals bool) *Analysis {
	a := p.analysisHeader(contribs)

	slotNS := p.slotNS
	proxyNS := 0.0
	gi := 0
	lastArrival := -1.0
	an := scr.an
	for i := range p.refs {
		r := &p.refs[i]
		for ; gi < int(p.refPre[i]); gi++ {
			proxyNS += float64(p.slotSeq[gi]) * slotNS
		}
		c := contribs[r.array]
		proxyNS += float64(c.k) * slotNS

		var pc memsys.ProbeCounts
		dramLines := scr.dram[:0]
		if c.lineOff != nil {
			lo, hi := c.lineOff[r.ordinal], c.lineOff[r.ordinal+1]
			if lo < hi {
				pc, dramLines = scr.hier.ProbeLines(scr.sm, c.space, c.lines[lo:hi], dramLines)
			}
		}
		scr.dram = dramLines

		// Constant-cache misses are the one cache-dependent replay cause:
		// they stretch this access's issue slots, shifting every later
		// access's DRAM arrival, exactly as in the monolithic walk.
		if pc.ConstMisses > 0 {
			a.IssueSlots += pc.ConstMisses
			a.Replays14 += pc.ConstMisses
			a.Events.InstIssued += pc.ConstMisses
			a.Events.LdstIssued += pc.ConstMisses
			a.Events.IssueSlots += pc.ConstMisses
			a.Events.ReplayConstMiss += pc.ConstMisses
		}
		a.Events.ConstMisses += pc.ConstMisses
		a.Events.TexMisses += pc.TexMisses
		a.Events.L2Transactions += pc.L2Accesses
		a.Events.L2Misses += pc.L2Misses

		replays := int64(c.staticReplays[r.ordinal]) + pc.ConstMisses
		proxyNS += float64(1+replays) * slotNS

		for _, line := range dramLines {
			if collectArrivals {
				if lastArrival >= 0 {
					a.InterArrivals = append(a.InterArrivals, proxyNS-lastArrival)
				}
				lastArrival = proxyNS
			}
			an.Add(line, proxyNS)
		}
	}
	for ; gi < len(p.slotSeq); gi++ {
		proxyNS += float64(p.slotSeq[gi]) * slotNS
	}
	return p.finishAnalysis(a, an, pl, proxyNS)
}

// mergeFast is the eviction-free merge walk: cache outcomes come from
// contribution and groupSim tables, so the per-evaluation work is the
// proxy-clock float chain plus one analyzer Add per DRAM request. Only valid
// after l2EvictionFree proves no L2 eviction can occur; see merge for why the
// output is then bit-for-bit the exact walk's.
func (p *program) mergeFast(pl *placement.Placement, contribs []*contribution, constSim, texSim *groupSim, scr *mergeScratch, collectArrivals bool) *Analysis {
	a := p.analysisHeader(contribs)

	// Cache-dependent event counters, summed up front: integer totals don't
	// depend on interleaving order.
	var constMisses, texMisses, l2Acc, l2Miss int64
	for _, c := range contribs {
		if c != nil && c.space.Base() == gpu.Global {
			l2Acc += c.l2Acc
			l2Miss += c.l2Miss
		}
	}
	if constSim != nil {
		constMisses = constSim.misses
		l2Acc += constSim.misses
		l2Miss += constSim.l2Miss
	}
	if texSim != nil {
		texMisses = texSim.misses
		l2Acc += texSim.misses
		l2Miss += texSim.l2Miss
	}
	if constMisses > 0 {
		a.IssueSlots += constMisses
		a.Replays14 += constMisses
		a.Events.InstIssued += constMisses
		a.Events.LdstIssued += constMisses
		a.Events.IssueSlots += constMisses
		a.Events.ReplayConstMiss += constMisses
	}
	a.Events.ConstMisses += constMisses
	a.Events.TexMisses += texMisses
	a.Events.L2Transactions += l2Acc
	a.Events.L2Misses += l2Miss

	slotNS := p.slotNS
	proxyNS := 0.0
	gi := 0
	lastArrival := -1.0
	an := scr.an
	constCur, texCur := 0, 0
	for i := range p.refs {
		r := &p.refs[i]
		for ; gi < int(p.refPre[i]); gi++ {
			proxyNS += float64(p.slotSeq[gi]) * slotNS
		}
		c := contribs[r.array]
		proxyNS += float64(c.k) * slotNS

		var cm int64
		var dlines []uint64
		switch c.space.Base() {
		case gpu.Global:
			lo, hi := c.dramOff[r.ordinal], c.dramOff[r.ordinal+1]
			dlines = c.dramLines[lo:hi]
		case gpu.Constant:
			cm = int64(constSim.missPerRef[constCur])
			lo, hi := constSim.dramOff[constCur], constSim.dramOff[constCur+1]
			dlines = constSim.dramLines[lo:hi]
			constCur++
		case gpu.Texture1D, gpu.Texture2D:
			lo, hi := texSim.dramOff[texCur], texSim.dramOff[texCur+1]
			dlines = texSim.dramLines[lo:hi]
			texCur++
		}

		replays := int64(c.staticReplays[r.ordinal]) + cm
		proxyNS += float64(1+replays) * slotNS

		for _, line := range dlines {
			if collectArrivals {
				if lastArrival >= 0 {
					a.InterArrivals = append(a.InterArrivals, proxyNS-lastArrival)
				}
				lastArrival = proxyNS
			}
			an.Add(line, proxyNS)
		}
	}
	for ; gi < len(p.slotSeq); gi++ {
		proxyNS += float64(p.slotSeq[gi]) * slotNS
	}
	return p.finishAnalysis(a, an, pl, proxyNS)
}

// contribKey identifies a reusable contribution: the array, its space, and
// its address binding (device base for off-chip spaces, block-local offset
// for shared memory). The address is part of the key because layout
// retargeting can move an array's neighbors: a placement that pushes other
// arrays across the on-chip/off-chip boundary shifts this array's offset or
// heap range, and a contribution is only valid for the addresses it was
// resolved at.
type contribKey struct {
	array trace.ArrayID
	space gpu.MemSpace
	addr  uint64
}

// contribEntry is one cache slot; once makes concurrent builders of the same
// key collapse to a single build.
type contribEntry struct {
	once sync.Once
	c    *contribution
}

// contribCache shares built contributions across every clone of a Predictor.
// Values are immutable after construction and a pure function of their key,
// so concurrent lookups from parallel ranking workers are deterministic: any
// worker that builds a key builds the same value. The resolver hierarchy is
// shared by all builds: ResolveScratch reads only its geometry, never its
// cache state.
type contribCache struct {
	prog     *program
	resolver *memsys.Hierarchy
	mu       sync.Mutex
	m        map[contribKey]*contribEntry

	// groups memoizes per-SM cache space group sims across the same clones
	// (see groupCache); searches revisit the same few space groups for every
	// placement they evaluate.
	groups groupCache
}

func newContribCache(prog *program) *contribCache {
	return &contribCache{
		prog:     prog,
		resolver: memsys.NewHierarchy(prog.cfg),
		m:        make(map[contribKey]*contribEntry),
		groups:   groupCache{m: make(map[string]*groupEntry)},
	}
}

// groupEntry is one group-sim cache slot; once collapses concurrent builders
// of the same group to a single build.
type groupEntry struct {
	once sync.Once
	g    *groupSim
}

// groupCache memoizes groupSims by the exact inputs they are a pure function
// of: the cache flavor and the ordered (array, space, addr) bindings of the
// member contributions. A kernel's searches bind each space to a handful of
// array groups, so entries are few and hit rates near one. Safe for
// concurrent use; values are immutable after construction.
type groupCache struct {
	mu sync.Mutex
	m  map[string]*groupEntry
}

// groupKeyOf encodes the group identity. Member order is the array index
// order, which is deterministic, so equal groups encode equally.
func groupKeyOf(isConst bool, member []bool, contribs []*contribution) string {
	buf := make([]byte, 0, 1+len(member)*11)
	if isConst {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for i, in := range member {
		if !in {
			continue
		}
		c := contribs[i]
		buf = append(buf, byte(i), byte(i>>8), byte(c.space))
		a := c.addr
		buf = append(buf, byte(a), byte(a>>8), byte(a>>16), byte(a>>24),
			byte(a>>32), byte(a>>40), byte(a>>48), byte(a>>56))
	}
	return string(buf)
}

func (gc *groupCache) get(p *program, isConst bool, member []bool, contribs []*contribution) *groupSim {
	key := groupKeyOf(isConst, member, contribs)
	gc.mu.Lock()
	e, ok := gc.m[key]
	if !ok {
		e = &groupEntry{}
		gc.m[key] = e
	}
	gc.mu.Unlock()
	e.once.Do(func() { e.g = p.buildGroupSim(isConst, member, contribs) })
	return e.g
}

// get returns the contribution for key, building it on first use. hit reports
// whether the value was already resident (the delta fast path).
func (cc *contribCache) get(array trace.ArrayID, space gpu.MemSpace, addr uint64) (c *contribution, hit bool) {
	key := contribKey{array: array, space: space, addr: addr}
	cc.mu.Lock()
	e, ok := cc.m[key]
	if !ok {
		e = &contribEntry{}
		cc.m[key] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.c = cc.prog.buildContribution(cc.resolver, array, space, addr) })
	return e.c, ok
}

// DeltaState is a reusable snapshot of one evaluated placement: the placement
// itself, its resolved layout, and the per-array contributions that produced
// its Analysis. PredictDelta starts from it to re-resolve only what a single
// move actually changes. States are immutable and safe to share across
// goroutines; holding one alive only pins contributions that the predictor's
// cache retains anyway.
type DeltaState struct {
	place    *placement.Placement
	layout   *placement.Layout
	contribs []*contribution
}

// Placement returns the placement this state describes. Callers must not
// mutate it.
func (s *DeltaState) Placement() *placement.Placement { return s.place }

// addrKeyOf returns the address-binding component of an array's contribution
// key under a layout.
func addrKeyOf(l *placement.Layout, sp gpu.MemSpace, i int) uint64 {
	if sp == gpu.Shared {
		return l.SharedOff[i]
	}
	return l.Base[i]
}
