package core

// The decomposed evaluator. The §IV trace analysis used to be one monolithic
// lockstep walk per (placement) evaluation; here it is split into three parts
// so single-array placement moves are cheap (ROADMAP item 1):
//
//   - program: everything placement-independent — the lockstep instruction
//     schedule, base issue-slot prefix sums, barrier counts, the per-warp MLP
//     statistic, and the non-memory event counters. Built once per trace.
//
//   - contribution: one array's accesses resolved under one (space, address)
//     binding against its own private cache hierarchy — per-access extra
//     issue slots (addressing preamble + replays), the DRAM line stream, and
//     aggregated event counters. A contribution is a pure function of
//     (array, space, address key), so it is built once and cached.
//
//   - merge: the interaction term. Per-array contributions are stitched back
//     together in lockstep order: extra-slot prefix sums recover each DRAM
//     request's arrival proxy, and the merged line stream drives the shared
//     bank/row-buffer/controller statistics (dram.Analyzer) that couple
//     arrays to each other. This is the only per-evaluation cost.
//
// Predict, PredictDelta, and Model.AnalyzePlacement all run through this one
// path, which is what makes delta and full evaluations byte-identical: a
// "delta" differs only in how many contributions come from cache instead of
// being rebuilt, never in the math.

import (
	"sync"

	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/memsys"
	"gpuhms/internal/perf"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// memRef is one warp-level memory instruction of the lockstep schedule.
type memRef struct {
	inst    *trace.Inst
	array   trace.ArrayID
	ordinal int32 // position in the array's own access sequence
}

// program is the placement-independent part of the §IV analysis: the lockstep
// schedule of the trace with every quantity that no placement can change.
// It is immutable once built and shared by all clones of a Predictor.
type program struct {
	cfg *gpu.Config
	t   *trace.Trace

	// refs lists memory instructions in lockstep order (the round-robin
	// warp interleaving of the hardware scheduler).
	refs []memRef
	// basePrefix[i] is the issue slots consumed up to and including ref i's
	// base slot, counting non-memory slots plus one slot per memory
	// instruction — everything except the placement-dependent extras
	// (addressing preambles and replays), which merge adds by prefix sum.
	basePrefix []int64
	// arrayInsts[id] lists one array's memory instructions in lockstep
	// order; contributions are built by walking it.
	arrayInsts [][]*trace.Inst

	baseSlots  int64 // non-memory issue slots (FP64 double-issue included)
	baseExec   int64 // non-memory executed instructions
	baseEvents perf.Events
	syncs      int64
	mlp        float64
	activeSMs  int
	imbalance  float64
	warpsPerSM float64
	slotNS     float64
}

// newProgram runs the placement-independent lockstep walk once. Warps advance
// in lockstep (one instruction per warp per round), exactly as the old
// monolithic analysis did; see merge for how the proxy clock is recovered.
func newProgram(cfg *gpu.Config, t *trace.Trace) *program {
	p := &program{cfg: cfg, t: t, activeSMs: cfg.ActiveSMs(t.Launch.Blocks)}
	p.slotNS = cfg.NSPerCycle() / float64(p.activeSMs)
	p.arrayInsts = make([][]*trace.Inst, len(t.Arrays))
	counts := make([]int32, len(t.Arrays))

	pcs := make([]int, len(t.Warps))
	inRun := make([]bool, len(t.Warps)) // per-warp consecutive-load run state
	remaining := len(t.Warps)
	var loadRuns, loadsInRuns int64

	for remaining > 0 {
		for wi := range t.Warps {
			pc := pcs[wi]
			if pc >= len(t.Warps[wi].Inst) {
				continue
			}
			in := &t.Warps[wi].Inst[pc]
			pcs[wi]++
			if pcs[wi] == len(t.Warps[wi].Inst) {
				remaining--
			}

			if !in.Op.IsMem() {
				inRun[wi] = false
				slots := int64(in.Count)
				if in.Op == trace.OpFP64 {
					slots *= 2
				}
				if in.Op == trace.OpSync {
					p.syncs++
				}
				p.baseSlots += slots
				p.baseExec += int64(in.Count)
				p.baseEvents.InstExecuted += int64(in.Count)
				p.baseEvents.InstIssued += int64(in.Count)
				p.baseEvents.IssueSlots += slots
				if in.Op == trace.OpInt {
					p.baseEvents.InstInteger += int64(in.Count)
				}
				continue
			}

			p.refs = append(p.refs, memRef{inst: in, array: in.Array, ordinal: counts[in.Array]})
			counts[in.Array]++
			p.arrayInsts[in.Array] = append(p.arrayInsts[in.Array], in)
			p.basePrefix = append(p.basePrefix, p.baseSlots+int64(len(p.refs)))

			// The consecutive-load run statistic (MLP) depends only on the op
			// sequence, never on where arrays live.
			if in.Op == trace.OpLoad {
				if inRun[wi] {
					loadsInRuns++
				} else {
					inRun[wi] = true
					loadRuns++
					loadsInRuns++
				}
			} else {
				inRun[wi] = false
			}
		}
	}

	p.mlp = 1
	if loadRuns > 0 {
		p.mlp = float64(loadsInRuns) / float64(loadRuns)
	}
	p.warpsPerSM = residentWarps(t, cfg)
	p.imbalance = 1
	if blocks := t.Launch.Blocks; blocks > p.activeSMs {
		perSM := float64(blocks) / float64(p.activeSMs)
		worst := float64((blocks + p.activeSMs - 1) / p.activeSMs)
		p.imbalance = worst / perSM
	}
	return p
}

// contribution is one array's share of the analysis under one
// (space, address key) binding: per-access extra issue slots, the DRAM line
// stream, and aggregated counters. The array's accesses run against a private
// cache hierarchy — each array is analyzed as if it ran alone on cold caches,
// and cross-array contention is modeled entirely by the merged DRAM pass —
// which is what makes a contribution a pure function of its key, reusable
// across every placement that binds the array the same way.
type contribution struct {
	// extra[o] is the o-th access's extra issue slots: addressing-mode
	// preamble plus replays. merge prefix-sums these to recover proxy time.
	extra []int32
	// lines holds the DRAM line addresses of all accesses back to back;
	// access o owns lines[lineOff[o]:lineOff[o+1]]. nil for shared memory,
	// which never reaches DRAM.
	lines   []uint64
	lineOff []int32

	events     perf.Events // memory-side event counters, preambles included
	executed   int64       // executed instructions: preamble + 1 per access
	issueSlots int64       // executed + replays
	replays14  int64       // placement-dependent replays (§III-B (1)-(4), (6))
	offchip    int64       // accesses counted as off-chip requests
	transOff   int64       // first-level transactions of off-chip accesses
}

// buildContribution resolves one array's accesses under (space, addr) against
// a fresh private cache hierarchy. addr is the array's device base address
// for off-chip spaces or its block-local byte offset for shared memory.
func (p *program) buildContribution(array trace.ArrayID, space gpu.MemSpace, addr uint64) *contribution {
	t := p.t
	n := len(t.Arrays)
	pl := placement.New(n)
	pl.Spaces[array] = space
	lay := &placement.Layout{Base: make([]uint64, n), SharedOff: make([]uint64, n)}
	if space == gpu.Shared {
		lay.SharedOff[array] = addr
	} else {
		lay.Base[array] = addr
	}
	b := &memsys.Binding{Trace: t, Place: pl, Layout: lay, Tex2DShift: p.cfg.TextureBlockShift}
	hier := memsys.NewHierarchy(p.cfg)
	sm := memsys.NewSMCaches(p.cfg)
	var sc memsys.Scratch

	insts := p.arrayInsts[array]
	k := int64(addrModeInstrs(space, t.Array(array).Type))
	c := &contribution{extra: make([]int32, len(insts))}
	offchip := space != gpu.Shared
	if offchip {
		c.lineOff = make([]int32, len(insts)+1)
	}
	for o, in := range insts {
		res := hier.AccessScratch(sm, b, in, &sc)
		replays := res.Replays.Total()
		c.extra[o] = int32(k + replays)

		// Addressing preamble: k integer instructions per access.
		c.events.InstExecuted += k
		c.events.InstIssued += k
		c.events.InstInteger += k
		c.events.IssueSlots += k
		countAnalysisEvents(&c.events, &res, replays)

		c.executed += k + 1
		c.issueSlots += k + 1 + replays
		c.replays14 += replays
		if offchip {
			c.offchip++
			c.transOff += int64(res.Transactions)
			c.lines = append(c.lines, res.DRAMLines...)
			c.lineOff[o+1] = int32(len(c.lines))
		}
	}
	return c
}

// merge is the interaction term: it stitches per-array contributions back
// into one Analysis. Aggregate counters are plain sums; the DRAM statistics
// need the lockstep order — each request's arrival proxy is the issue slots
// consumed before it, recovered as basePrefix plus the running prefix sum of
// every array's extra slots (so one array's replays still shift every later
// array's DRAM arrivals, exactly as in the monolithic walk). an must be
// freshly built or Reset; the returned Analysis owns all of its data.
func (p *program) merge(pl *placement.Placement, contribs []*contribution, an *dram.Analyzer, collectArrivals bool) *Analysis {
	t, cfg := p.t, p.cfg
	a := &Analysis{
		ActiveSMs:  p.activeSMs,
		Imbalance:  p.imbalance,
		MLP:        p.mlp,
		Syncs:      p.syncs,
		Events:     p.baseEvents,
		IssueSlots: p.baseSlots,
		Executed:   p.baseExec,
		MemInsts:   int64(len(p.refs)),
	}
	for _, c := range contribs {
		a.IssueSlots += c.issueSlots
		a.Executed += c.executed
		a.Replays14 += c.replays14
		a.OffchipReqs += c.offchip
		a.TransPerOffchip += float64(c.transOff)
		a.Events.AddCounts(&c.events)
	}
	if a.OffchipReqs > 0 {
		a.TransPerOffchip /= float64(a.OffchipReqs)
	}

	var runningExtra int64
	lastArrival := -1.0
	for i := range p.refs {
		r := &p.refs[i]
		c := contribs[r.array]
		runningExtra += int64(c.extra[r.ordinal])
		if c.lineOff == nil {
			continue
		}
		lo, hi := c.lineOff[r.ordinal], c.lineOff[r.ordinal+1]
		if lo == hi {
			continue
		}
		at := p.slotNS * float64(p.basePrefix[i]+runningExtra)
		for _, line := range c.lines[lo:hi] {
			if collectArrivals {
				if lastArrival >= 0 {
					a.InterArrivals = append(a.InterArrivals, at-lastArrival)
				}
				lastArrival = at
			}
			an.Add(line, at)
		}
	}

	a.BankStreams = an.Streams()
	a.CtlStreams = an.CtlStreams()
	a.RawSpanNS = p.slotNS * float64(a.IssueSlots)
	a.RowCounts = an.Counts()
	a.Events.RowHits = an.Counts().Hits
	a.Events.RowMisses = an.Counts().Misses
	a.Events.RowConflicts = an.Counts().Conflicts
	a.Events.DRAMRequests = an.Counts().Total()
	a.Events.WarpsPerSM = p.warpsPerSM
	a.BankCaMean, a.BankCaStd = an.MeanCa()
	a.StagingNS = placement.SharedStagingBytes(t, pl) / cfg.SharedCopyGBs
	return a
}

// contribKey identifies a reusable contribution: the array, its space, and
// its address binding (device base for off-chip spaces, block-local offset
// for shared memory). The address is part of the key because layout
// retargeting can move an array's neighbors: a placement that pushes other
// arrays across the on-chip/off-chip boundary shifts this array's offset or
// heap range, and a contribution is only valid for the addresses it was
// resolved at.
type contribKey struct {
	array trace.ArrayID
	space gpu.MemSpace
	addr  uint64
}

// contribEntry is one cache slot; once makes concurrent builders of the same
// key collapse to a single build.
type contribEntry struct {
	once sync.Once
	c    *contribution
}

// contribCache shares built contributions across every clone of a Predictor.
// Values are immutable after construction and a pure function of their key,
// so concurrent lookups from parallel ranking workers are deterministic: any
// worker that builds a key builds the same value.
type contribCache struct {
	prog *program
	mu   sync.Mutex
	m    map[contribKey]*contribEntry
}

func newContribCache(prog *program) *contribCache {
	return &contribCache{prog: prog, m: make(map[contribKey]*contribEntry)}
}

// get returns the contribution for key, building it on first use. hit reports
// whether the value was already resident (the delta fast path).
func (cc *contribCache) get(array trace.ArrayID, space gpu.MemSpace, addr uint64) (c *contribution, hit bool) {
	key := contribKey{array: array, space: space, addr: addr}
	cc.mu.Lock()
	e, ok := cc.m[key]
	if !ok {
		e = &contribEntry{}
		cc.m[key] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.c = cc.prog.buildContribution(array, space, addr) })
	return e.c, ok
}

// DeltaState is a reusable snapshot of one evaluated placement: the placement
// itself, its resolved layout, and the per-array contributions that produced
// its Analysis. PredictDelta starts from it to re-resolve only what a single
// move actually changes. States are immutable and safe to share across
// goroutines; holding one alive only pins contributions that the predictor's
// cache retains anyway.
type DeltaState struct {
	place    *placement.Placement
	layout   *placement.Layout
	contribs []*contribution
}

// Placement returns the placement this state describes. Callers must not
// mutate it.
func (s *DeltaState) Placement() *placement.Placement { return s.place }

// addrKeyOf returns the address-binding component of an array's contribution
// key under a layout.
func addrKeyOf(l *placement.Layout, sp gpu.MemSpace, i int) uint64 {
	if sp == gpu.Shared {
		return l.SharedOff[i]
	}
	return l.Base[i]
}
