package core

import (
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// legalMoves returns every legal single-array move from pl, in deterministic
// (array, option) order.
func legalMoves(tr *trace.Trace, cfg *gpu.Config, pl *placement.Placement) (arrays []int, spaces []gpu.MemSpace) {
	space := placement.NewSpace(tr, cfg)
	for j := 0; j < space.Arrays(); j++ {
		for _, sp := range space.ArrayOptions(j) {
			if sp == pl.Spaces[j] {
				continue
			}
			next := pl.WithMove(trace.ArrayID(j), sp)
			if placement.Check(tr, next, cfg) != nil {
				continue
			}
			arrays = append(arrays, j)
			spaces = append(spaces, sp)
		}
	}
	return arrays, spaces
}

func mustEqualPrediction(t *testing.T, kernel, what string, got, want *Prediction) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: %s diverges from full evaluation:\n got: %+v\nwant: %+v", kernel, what, got, want)
	}
}

// TestDeltaEquivalence pins the tentpole invariant: PredictDelta returns a
// byte-identical Prediction — the full struct, including the embedded
// Analysis — to Predict and to the cache-bypassing PredictFull, for every
// bundled kernel, across every legal single-array move from the sample and
// along a seeded random walk. A chained check re-evaluates the walk's final
// placement on a fresh predictor, so drift accumulated across N deltas (or
// contamination through shared cache state) cannot hide.
func TestDeltaEquivalence(t *testing.T) {
	cfg := gpu.KeplerK80()
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := kernels.MustGet(name)
			tr := spec.Trace(1)
			sample, err := spec.SamplePlacement(tr)
			if err != nil {
				t.Fatal(err)
			}
			m := NewModel(cfg, FullOptions())
			pr, err := NewPredictor(m, tr, sample, profile(t, cfg, tr, sample))
			if err != nil {
				t.Fatal(err)
			}

			// Every legal single-array move from the sample.
			root := pr.SampleState()
			arrays, spaces := legalMoves(tr, cfg, sample)
			for i := range arrays {
				target := sample.WithMove(trace.ArrayID(arrays[i]), spaces[i])
				dp, _, err := pr.PredictDelta(root, arrays[i], spaces[i])
				if err != nil {
					t.Fatal(err)
				}
				fp, err := pr.Predict(target)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualPrediction(t, name, "delta "+target.Format(tr), dp, fp)
				if i == 0 {
					up, err := pr.PredictFull(target)
					if err != nil {
						t.Fatal(err)
					}
					mustEqualPrediction(t, name, "uncached "+target.Format(tr), up, fp)
				}
			}

			// Seeded random walk of chained deltas, each step checked against
			// a full evaluation on the same predictor.
			rng := rand.New(rand.NewSource(9))
			st := root
			for step := 0; step < 12; step++ {
				cur := st.Placement()
				arrays, spaces := legalMoves(tr, cfg, cur)
				if len(arrays) == 0 {
					break
				}
				i := rng.Intn(len(arrays))
				dp, next, err := pr.PredictDelta(st, arrays[i], spaces[i])
				if err != nil {
					t.Fatal(err)
				}
				target := cur.WithMove(trace.ArrayID(arrays[i]), spaces[i])
				fp, err := pr.Predict(target)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualPrediction(t, name, "walk step", dp, fp)
				st = next
			}

			// Chained-delta drift check: the walk's final placement evaluated
			// by a predictor that has never seen any intermediate state.
			fresh, err := NewPredictor(m, tr, sample, SampleProfile{TimeNS: pr.profile.TimeNS, Events: pr.profile.Events})
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Predict(st.Placement())
			if err != nil {
				t.Fatal(err)
			}
			got, err := pr.Predict(st.Placement())
			if err != nil {
				t.Fatal(err)
			}
			mustEqualPrediction(t, name, "chained walk end", got, want)
		})
	}
}

// TestPredictDeltaRejectsIllegalMoves pins that the delta path validates
// exactly like Predict: an illegal move fails, with no state returned.
func TestPredictDeltaRejectsIllegalMoves(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("spmv")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	pr, err := NewPredictor(NewModel(cfg, FullOptions()), tr, sample, profile(t, cfg, tr, sample))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pr.PredictDelta(nil, 0, gpu.Shared); err == nil {
		t.Error("nil previous state must be rejected")
	}
	// spmv's output array is written: read-only spaces are illegal for it,
	// exactly as Predict would reject the same placement.
	st := pr.SampleState()
	out := len(tr.Arrays) - 1
	if _, _, err := pr.PredictDelta(st, out, gpu.Constant); err == nil {
		t.Error("moving a written array to constant memory must be rejected")
	}
}

// TestDeltaSpeedup is the verify.sh smoke: on spmv, a delta evaluation must
// be at least 5x faster than a cache-bypassing full evaluation, so the fast
// path cannot silently regress to the slow one. Gated behind an env var
// because wall-clock assertions are hostile to loaded CI machines.
func TestDeltaSpeedup(t *testing.T) {
	if os.Getenv("DELTA_SPEEDUP") == "" {
		t.Skip("set DELTA_SPEEDUP=1 to run the wall-clock smoke")
	}
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("spmv")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	pr, err := NewPredictor(NewModel(cfg, FullOptions()), tr, sample, profile(t, cfg, tr, sample))
	if err != nil {
		t.Fatal(err)
	}
	arrays, spaces := legalMoves(tr, cfg, sample)
	st := pr.SampleState()
	target := sample.WithMove(trace.ArrayID(arrays[0]), spaces[0])

	// Warm both paths so neither pays one-time setup inside the clock: the
	// smoke compares steady-state delta serving (every single-move
	// contribution already cached, as after any search's first round)
	// against the full evaluation's unavoidable per-call rebuild cost.
	for j := range arrays {
		if _, _, err := pr.PredictDelta(st, arrays[j], spaces[j]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pr.PredictFull(target); err != nil {
		t.Fatal(err)
	}

	const rounds = 5
	startFull := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := pr.PredictFull(target); err != nil {
			t.Fatal(err)
		}
	}
	full := time.Since(startFull)

	startDelta := time.Now()
	for i := 0; i < rounds; i++ {
		j := i % len(arrays)
		if _, _, err := pr.PredictDelta(st, arrays[j], spaces[j]); err != nil {
			t.Fatal(err)
		}
	}
	delta := time.Since(startDelta)

	speedup := float64(full) / float64(delta)
	t.Logf("spmv: full %v, delta %v per %d evals — %.1fx", full, delta, rounds, speedup)
	if speedup < 5 {
		t.Errorf("delta speedup %.1fx < 5x — fast path regressed", speedup)
	}
}

func benchPredictor(b *testing.B) (*Predictor, *placement.Placement, []int, []gpu.MemSpace) {
	b.Helper()
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("spmv")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	pr, err := NewPredictor(NewModel(cfg, FullOptions()), tr, sample, profile(b, cfg, tr, sample))
	if err != nil {
		b.Fatal(err)
	}
	arrays, spaces := legalMoves(tr, cfg, sample)
	return pr, sample, arrays, spaces
}

// BenchmarkPredictDelta measures the per-move cost of the delta fast path on
// spmv — the number bench_search.sh reports next to the full-eval baseline.
func BenchmarkPredictDelta(b *testing.B) {
	pr, _, arrays, spaces := benchPredictor(b)
	st := pr.SampleState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(arrays)
		if _, _, err := pr.PredictDelta(st, arrays[j], spaces[j]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictFull measures the cache-bypassing full evaluation the
// delta path is compared against.
func BenchmarkPredictFull(b *testing.B) {
	pr, sample, arrays, spaces := benchPredictor(b)
	target := sample.WithMove(trace.ArrayID(arrays[0]), spaces[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.PredictFull(target); err != nil {
			b.Fatal(err)
		}
	}
}
