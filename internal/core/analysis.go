// Package core implements the paper's contribution: performance models that
// predict the execution time of a GPU kernel under arbitrary data placements
// from a single profiled sample placement (Huang & Li, CLUSTER 2017).
//
// The model decomposes execution time as
//
//	T = T_comp + T_mem − T_overlap                         (Eq 1)
//
// where T_comp is computed from *issued* instructions — executed
// instructions plus addressing-mode differences plus instruction replays
// (Eq 2–3, §III-B) — T_mem from effective memory requests times an average
// memory access latency whose DRAM component comes from a per-bank G/G/1
// queuing model with row-buffer-aware service times (Eq 4–10, §III-C), and
// T_overlap from an empirically trained linear model over memory events
// (Eq 11–12, §III-D). Appendix equations 13–19 supply instruction and memory
// throughput terms.
package core

import (
	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/memsys"
	"gpuhms/internal/perf"
	"gpuhms/internal/queuing"
	"gpuhms/internal/replay"
	"gpuhms/internal/trace"
)

// Analysis is the output of the §IV framework for one (trace, placement)
// pair: the instruction trace is replayed through the cache models, memory
// events are counted, and the DRAM request stream is reduced to per-bank
// arrival/service statistics. Unlike the simulator this pass computes no
// timing — arrival "times" are an instruction-count proxy.
//
// The analysis is produced by the decomposed evaluator (see delta.go): a
// placement-independent program, per-array contributions against private
// caches, and a merged DRAM interaction pass. Every entry point — Predict,
// PredictDelta, Model.AnalyzePlacement — assembles an Analysis through that
// one path, so the same placement always yields a byte-identical Analysis no
// matter how it was reached.
type Analysis struct {
	Events perf.Events

	// Instruction aggregates (whole kernel).
	IssueSlots  int64 // executed + addressing + replays
	Executed    int64 // executed incl. addressing-mode instructions
	Replays14   int64 // replays from placement-dependent causes (1)-(4)
	MemInsts    int64 // warp-level loads+stores
	OffchipReqs int64 // mem insts to off-chip spaces
	RemoteReqs  int64 // off-chip mem insts to remote-placed arrays (chiplet)
	Syncs       int64

	// Memory shape.
	TransPerOffchip float64 // avg first-level transactions per off-chip inst
	MLP             float64 // mean consecutive-load run length per warp

	// DRAM statistics in proxy time (ns at nominal full issue rate).
	BankStreams []queuing.Stream
	CtlStreams  []queuing.Stream
	RawSpanNS   float64
	RowCounts   dram.OutcomeCounts

	// Per-bank arrival burstiness: mean and cross-bank standard deviation of
	// the inter-arrival coefficient of variation c_a (the Fig 4 statistics).
	BankCaMean, BankCaStd float64

	// InterArrivals holds the global DRAM inter-arrival proxy samples when
	// collection was requested (Fig 4 histograms); nil otherwise.
	InterArrivals []float64

	// Staging.
	StagingNS float64

	// ActiveSMs is the number of SMs the launch occupies (Eq 2).
	ActiveSMs int

	// Imbalance is the straggler factor of block scheduling: with B blocks
	// over S SMs, the busiest SM runs ceil(B/S) blocks while the average is
	// B/S, so the kernel finishes ceil(B/S)·S/B later than a perfectly
	// balanced launch would.
	Imbalance float64
}

// countAnalysisEvents maps one resolved memory access onto the prediction's
// event counters.
func countAnalysisEvents(ev *perf.Events, res *memsys.Result, replays int64) {
	ev.InstIssued += 1 + replays
	ev.InstExecuted++
	ev.LdstIssued += 1 + replays
	ev.IssueSlots += 1 + replays
	switch res.Space.Base() {
	case gpu.Global:
		ev.GlobalRequests++
	case gpu.Constant:
		ev.ConstantRequest++
	case gpu.Texture1D, gpu.Texture2D:
		ev.TextureRequests++
	case gpu.Shared:
		ev.SharedRequests++
	}
	ev.ReplayGlobalDiv += res.Replays.ByReason[replay.GlobalDivergence]
	ev.ReplayConstMiss += res.Replays.ByReason[replay.ConstantMiss]
	ev.ReplayConstDiv += res.Replays.ByReason[replay.ConstantDivergence]
	ev.ReplayShared += res.Replays.ByReason[replay.SharedBankConflict]
	ev.ReplayAtomic += res.Replays.ByReason[replay.AtomicConflict]
	ev.L2Transactions += int64(res.L2Accesses)
	ev.L2Misses += int64(res.L2Misses)
	ev.ConstAccesses += int64(res.ConstAccesses)
	ev.ConstMisses += int64(res.ConstMiss)
	ev.TexAccesses += int64(res.TexAccesses)
	ev.TexMisses += int64(res.TexMiss)
	ev.SharedBankConflicts += int64(res.SharedConflicts)
}

// residentWarps mirrors the simulator's resident-warp estimate.
func residentWarps(t *trace.Trace, cfg *gpu.Config) float64 {
	per := float64(t.Launch.TotalWarps()) / float64(cfg.ActiveSMs(t.Launch.Blocks))
	if max := float64(cfg.MaxWarpsPerSM); per > max {
		return max
	}
	return per
}
