// Package core implements the paper's contribution: performance models that
// predict the execution time of a GPU kernel under arbitrary data placements
// from a single profiled sample placement (Huang & Li, CLUSTER 2017).
//
// The model decomposes execution time as
//
//	T = T_comp + T_mem − T_overlap                         (Eq 1)
//
// where T_comp is computed from *issued* instructions — executed
// instructions plus addressing-mode differences plus instruction replays
// (Eq 2–3, §III-B) — T_mem from effective memory requests times an average
// memory access latency whose DRAM component comes from a per-bank G/G/1
// queuing model with row-buffer-aware service times (Eq 4–10, §III-C), and
// T_overlap from an empirically trained linear model over memory events
// (Eq 11–12, §III-D). Appendix equations 13–19 supply instruction and memory
// throughput terms.
package core

import (
	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/memsys"
	"gpuhms/internal/perf"
	"gpuhms/internal/placement"
	"gpuhms/internal/queuing"
	"gpuhms/internal/replay"
	"gpuhms/internal/trace"
)

// Analysis is the output of the §IV framework for one (trace, placement)
// pair: the instruction trace is replayed through the cache models, memory
// events are counted, and the DRAM request stream is reduced to per-bank
// arrival/service statistics. Unlike the simulator this pass computes no
// timing — arrival "times" are an instruction-count proxy.
type Analysis struct {
	Events perf.Events

	// Instruction aggregates (whole kernel).
	IssueSlots  int64 // executed + addressing + replays
	Executed    int64 // executed incl. addressing-mode instructions
	Replays14   int64 // replays from placement-dependent causes (1)-(4)
	MemInsts    int64 // warp-level loads+stores
	OffchipReqs int64 // mem insts to off-chip spaces
	Syncs       int64

	// Memory shape.
	TransPerOffchip float64 // avg first-level transactions per off-chip inst
	MLP             float64 // mean consecutive-load run length per warp

	// DRAM statistics in proxy time (ns at nominal full issue rate).
	BankStreams []queuing.Stream
	CtlStreams  []queuing.Stream
	RawSpanNS   float64
	RowCounts   dram.OutcomeCounts

	// Per-bank arrival burstiness: mean and cross-bank standard deviation of
	// the inter-arrival coefficient of variation c_a (the Fig 4 statistics).
	BankCaMean, BankCaStd float64

	// InterArrivals holds the global DRAM inter-arrival proxy samples when
	// collection was requested (Fig 4 histograms); nil otherwise.
	InterArrivals []float64

	// Staging.
	StagingNS float64

	// ActiveSMs is the number of SMs the launch occupies (Eq 2).
	ActiveSMs int

	// Imbalance is the straggler factor of block scheduling: with B blocks
	// over S SMs, the busiest SM runs ceil(B/S) blocks while the average is
	// B/S, so the kernel finishes ceil(B/S)·S/B later than a perfectly
	// balanced launch would.
	Imbalance float64
}

// analysisScratch holds the per-analysis allocations — the cache hierarchy,
// one SM's private caches (the lockstep walk models a single scheduler), the
// DRAM analyzer, and the per-warp walk state — so a Predictor evaluating
// thousands of candidate placements reuses one set instead of rebuilding
// ~75k allocations per prediction. Reset between analyses by analyzeScratch.
type analysisScratch struct {
	hier  *memsys.Hierarchy
	sm    *memsys.SMCaches
	an    *dram.Analyzer
	pcs   []int
	inRun []bool
	mem   memsys.Scratch
}

// newAnalysisScratch builds scratch bound to one (config, mapping,
// distribution mode) triple — a Predictor's model never changes these.
func newAnalysisScratch(cfg *gpu.Config, mapping dram.Mapping, mode dram.DistributionMode) *analysisScratch {
	return &analysisScratch{
		hier: memsys.NewHierarchy(cfg),
		sm:   memsys.NewSMCaches(cfg),
		an:   dram.NewAnalyzer(cfg.DRAM, mapping, mode),
	}
}

// reset returns the scratch to a fresh-analysis state for nWarps warps.
func (s *analysisScratch) reset(nWarps int) {
	s.hier.Reset()
	s.sm.Reset()
	s.an.Reset()
	if cap(s.pcs) < nWarps {
		s.pcs = make([]int, nWarps)
		s.inRun = make([]bool, nWarps)
	} else {
		s.pcs = s.pcs[:nWarps]
		s.inRun = s.inRun[:nWarps]
		clear(s.pcs)
		clear(s.inRun)
	}
}

// analyze replays the trace under a binding. Warps advance in lockstep
// (one instruction per warp per round) to approximate the round-robin
// interleaving of the hardware scheduler; the proxy clock advances by
// issue-slots/#SMs per slot, i.e. the stream is timed as if every SM issued
// one slot per cycle with no stalls. The queuing model later rescales this
// proxy to the predicted execution span (see tmem.go).
func analyze(cfg *gpu.Config, mapping dram.Mapping, mode dram.DistributionMode, b *memsys.Binding) *Analysis {
	return analyzeCollect(cfg, mapping, mode, b, false)
}

func analyzeCollect(cfg *gpu.Config, mapping dram.Mapping, mode dram.DistributionMode, b *memsys.Binding, collectArrivals bool) *Analysis {
	return analyzeScratch(cfg, mapping, mode, b, collectArrivals,
		newAnalysisScratch(cfg, mapping, mode))
}

// analyzeScratch is analyzeCollect drawing every reusable buffer from scr,
// which must have been built for the same (cfg, mapping, mode). The returned
// Analysis owns all of its data — nothing aliases the scratch — so the
// scratch is free for the next analysis as soon as this one returns.
func analyzeScratch(cfg *gpu.Config, mapping dram.Mapping, mode dram.DistributionMode, b *memsys.Binding, collectArrivals bool, scr *analysisScratch) *Analysis {
	t := b.Trace
	scr.reset(len(t.Warps))
	hier, sm, an := scr.hier, scr.sm, scr.an

	a := &Analysis{ActiveSMs: cfg.ActiveSMs(t.Launch.Blocks)}
	nsPerCycle := cfg.NSPerCycle()
	proxyNS := 0.0
	slotNS := nsPerCycle / float64(a.ActiveSMs)

	// Per-warp program counters for the lockstep walk.
	pcs := scr.pcs
	remaining := len(t.Warps)

	loadRuns, loadsInRuns := int64(0), int64(0)
	inRun := scr.inRun // per-warp consecutive-load run state
	lastArrival := -1.0

	for remaining > 0 {
		for wi := range t.Warps {
			pc := pcs[wi]
			if pc >= len(t.Warps[wi].Inst) {
				continue
			}
			in := &t.Warps[wi].Inst[pc]
			pcs[wi]++
			if pcs[wi] == len(t.Warps[wi].Inst) {
				remaining--
			}

			if !in.Op.IsMem() {
				inRun[wi] = false
				slots := int64(in.Count)
				if in.Op == trace.OpFP64 {
					slots *= 2
				}
				if in.Op == trace.OpSync {
					a.Syncs++
				}
				a.IssueSlots += slots
				a.Executed += int64(in.Count)
				a.Events.InstExecuted += int64(in.Count)
				a.Events.InstIssued += int64(in.Count)
				a.Events.IssueSlots += slots
				if in.Op == trace.OpInt {
					a.Events.InstInteger += int64(in.Count)
				}
				proxyNS += float64(slots) * slotNS
				continue
			}

			// Memory instruction: addressing preamble + access.
			space := b.Place.Of(in.Array)
			k := int64(addrModeInstrs(space, t.Array(in.Array).Type))
			a.IssueSlots += k
			a.Executed += k
			a.Events.InstExecuted += k
			a.Events.InstIssued += k
			a.Events.InstInteger += k
			a.Events.IssueSlots += k
			proxyNS += float64(k) * slotNS

			res := hier.AccessScratch(sm, b, in, &scr.mem)
			replays := res.Replays.Total()
			a.IssueSlots += 1 + replays
			a.Executed++
			a.Replays14 += replays
			a.MemInsts++
			countAnalysisEvents(&a.Events, &res, replays)
			proxyNS += float64(1+replays) * slotNS

			if in.Op == trace.OpLoad {
				if inRun[wi] {
					loadsInRuns++
				} else {
					inRun[wi] = true
					loadRuns++
					loadsInRuns++
				}
			} else {
				inRun[wi] = false
			}

			if space != gpu.Shared {
				a.OffchipReqs++
				a.TransPerOffchip += float64(res.Transactions)
				for _, line := range res.DRAMLines {
					if collectArrivals {
						if lastArrival >= 0 {
							a.InterArrivals = append(a.InterArrivals, proxyNS-lastArrival)
						}
						lastArrival = proxyNS
					}
					an.Add(line, proxyNS)
				}
			}
		}
	}

	if a.OffchipReqs > 0 {
		a.TransPerOffchip /= float64(a.OffchipReqs)
	}
	if loadRuns > 0 {
		a.MLP = float64(loadsInRuns) / float64(loadRuns)
	} else {
		a.MLP = 1
	}
	a.BankStreams = an.Streams()
	a.CtlStreams = an.CtlStreams()
	a.RawSpanNS = proxyNS
	a.RowCounts = an.Counts()
	a.Events.RowHits = an.Counts().Hits
	a.Events.RowMisses = an.Counts().Misses
	a.Events.RowConflicts = an.Counts().Conflicts
	a.Events.DRAMRequests = an.Counts().Total()
	a.Events.WarpsPerSM = residentWarps(t, cfg)
	a.BankCaMean, a.BankCaStd = an.MeanCa()

	a.StagingNS = placement.SharedStagingBytes(t, b.Place) / cfg.SharedCopyGBs
	a.Imbalance = 1
	if blocks := t.Launch.Blocks; blocks > a.ActiveSMs {
		perSM := float64(blocks) / float64(a.ActiveSMs)
		worst := float64((blocks + a.ActiveSMs - 1) / a.ActiveSMs)
		a.Imbalance = worst / perSM
	}
	return a
}

func countAnalysisEvents(ev *perf.Events, res *memsys.Result, replays int64) {
	ev.InstIssued += 1 + replays
	ev.InstExecuted++
	ev.LdstIssued += 1 + replays
	ev.IssueSlots += 1 + replays
	switch res.Space {
	case gpu.Global:
		ev.GlobalRequests++
	case gpu.Constant:
		ev.ConstantRequest++
	case gpu.Texture1D, gpu.Texture2D:
		ev.TextureRequests++
	case gpu.Shared:
		ev.SharedRequests++
	}
	ev.ReplayGlobalDiv += res.Replays.ByReason[replay.GlobalDivergence]
	ev.ReplayConstMiss += res.Replays.ByReason[replay.ConstantMiss]
	ev.ReplayConstDiv += res.Replays.ByReason[replay.ConstantDivergence]
	ev.ReplayShared += res.Replays.ByReason[replay.SharedBankConflict]
	ev.ReplayAtomic += res.Replays.ByReason[replay.AtomicConflict]
	ev.L2Transactions += int64(res.L2Accesses)
	ev.L2Misses += int64(res.L2Misses)
	ev.ConstAccesses += int64(res.ConstAccesses)
	ev.ConstMisses += int64(res.ConstMiss)
	ev.TexAccesses += int64(res.TexAccesses)
	ev.TexMisses += int64(res.TexMiss)
	ev.SharedBankConflicts += int64(res.SharedConflicts)
}

// residentWarps mirrors the simulator's resident-warp estimate.
func residentWarps(t *trace.Trace, cfg *gpu.Config) float64 {
	per := float64(t.Launch.TotalWarps()) / float64(cfg.ActiveSMs(t.Launch.Blocks))
	if max := float64(cfg.MaxWarpsPerSM); per > max {
		return max
	}
	return per
}
