package core

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/obs"
)

// TestPredictorRecordsTermBreakdown checks that an attached recorder sees
// every Predict as a model span plus the Eq 1 term observations, and that
// attaching one does not change the prediction itself.
func TestPredictorRecordsTermBreakdown(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("matrixMul")
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(cfg, FullOptions())
	prof := profile(t, cfg, tr, sample)

	bare, err := NewPredictor(m, tr, sample, prof)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := NewPredictor(m, tr, sample, prof)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollectorWithClock(func() float64 { return 0 })
	instrumented.SetRecorder(col)

	targets, err := spec.Targets(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range targets {
		want, err := bare.Predict(target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := instrumented.Predict(target)
		if err != nil {
			t.Fatal(err)
		}
		if got.TimeNS != want.TimeNS || got.TComp != want.TComp || got.TMem != want.TMem {
			t.Fatalf("recorder changed prediction of %s: %+v vs %+v", target.Format(tr), got, want)
		}
	}

	snap := col.Snapshot()
	if got := snap.Counter("model_predictions_total"); got != int64(len(targets)) {
		t.Errorf("model_predictions_total = %d, want %d", got, len(targets))
	}
	for _, name := range []string{
		"model_tcomp_cycles", "model_tmem_cycles", "model_toverlap_cycles",
		"model_amat_cycles", "model_predicted_ns",
	} {
		h := snap.Histogram(name)
		if h == nil || h.Count != int64(len(targets)) {
			t.Errorf("histogram %s missing or wrong count: %+v", name, h)
		}
	}
	spans := 0
	for _, e := range col.Timeline().Events() {
		if e.Track == "model" && e.Name == "predict" {
			spans++
		}
	}
	if spans != len(targets) {
		t.Errorf("%d model spans, want %d", spans, len(targets))
	}
	// The full model runs the queuing fixed point, so iterations were spent.
	if got := snap.Counter("model_fixedpoint_iters_total"); got <= 0 {
		t.Errorf("model_fixedpoint_iters_total = %d, want > 0", got)
	}
}
