package core

import (
	"bytes"
	"strings"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/queuing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := gpu.KeplerK80()
	opts := FullOptions()
	opts.Variant = queuing.ClassicKingman
	opts.OverlapCoeffs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	m := NewModel(cfg, opts)

	var buf bytes.Buffer
	if err := m.Save(&buf, cfg.Name); err != nil {
		t.Fatal(err)
	}
	got, err := LoadOptions(&buf, cfg.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !got.InstrCounting || !got.Queuing || !got.AddressMapping {
		t.Errorf("flags lost: %+v", got)
	}
	if got.Variant != queuing.ClassicKingman {
		t.Errorf("variant = %v", got.Variant)
	}
	if len(got.OverlapCoeffs) != 7 || got.OverlapCoeffs[3] != 0.4 {
		t.Errorf("coefficients lost: %v", got.OverlapCoeffs)
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	var buf bytes.Buffer
	if err := m.Save(&buf, cfg.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOptions(&buf, "some other GPU"); err == nil {
		t.Error("architecture mismatch must be rejected")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	if _, err := LoadOptions(strings.NewReader("{not json"), "x"); err == nil {
		t.Error("garbage must be rejected")
	}
	bad := `{"architecture":"x","queue_variant":"paper-kingman","overlap_coeffs":[1,2,3]}`
	if _, err := LoadOptions(strings.NewReader(bad), "x"); err == nil {
		t.Error("wrong coefficient arity must be rejected")
	}
	badVariant := `{"architecture":"x","queue_variant":"warp-drive"}`
	if _, err := LoadOptions(strings.NewReader(badVariant), "x"); err == nil {
		t.Error("unknown variant must be rejected")
	}
}
