package core

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/sim"
)

// TestCalibration prints predicted vs simulated times for a few kernels to
// keep the model's raw (untrained-overlap) error visible during development.
func TestCalibration(t *testing.T) {
	cfg := gpu.KeplerK80()
	s := sim.New(cfg)
	for _, name := range []string{"vecadd", "triad", "md", "neuralnet", "matrixMul", "spmv", "fft"} {
		spec := kernels.MustGet(name)
		tr := spec.Trace(1)
		sample, err := spec.SamplePlacement(tr)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := s.Run(tr, sample, sample)
		if err != nil {
			t.Fatal(err)
		}
		model := NewModel(cfg, FullOptions())
		pr, err := NewPredictor(model, tr, sample, SampleProfile{TimeNS: ms.TimeNS, Events: ms.Events})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := pr.Predict(sample)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-10s sample: measured=%8.0f ns predicted=%8.0f ns (%.2fx)  Tc=%6.0f Tm=%6.0f To=%6.0f cyc  AMAT=%5.0f dram=%4.0fns q=%4.0fns",
			name, ms.TimeNS, pred.TimeNS, pred.TimeNS/ms.TimeNS,
			pred.TComp, pred.TMem, pred.TOverlap, pred.AMAT, pred.DRAMLatNS, pred.QueueDelayNS)

		targets, err := spec.Targets(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range targets {
			mt, err := s.Run(tr, sample, target)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := pr.Predict(target)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("  %-40s measured=%8.0f predicted=%8.0f (%.2fx)",
				target.Format(tr), mt.TimeNS, pt.TimeNS, pt.TimeNS/mt.TimeNS)
		}
	}
}
