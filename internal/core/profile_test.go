package core

import (
	"errors"
	"math"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/kernels"
)

// TestPredictorRejectsCorruptProfiles pins the acceptance criterion: a
// profile carrying NaN, Inf, negative, or inconsistent values is refused with
// ErrInvalidProfile — it never seeds predictions.
func TestPredictorRejectsCorruptProfiles(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("stencil2d")
	tr := spec.Trace(1)
	sample, err := spec.SamplePlacement(tr)
	if err != nil {
		t.Fatal(err)
	}
	good := profile(t, cfg, tr, sample)
	m := NewModel(cfg, FullOptions())

	corrupt := []struct {
		name string
		mut  func(*SampleProfile)
	}{
		{"nan time", func(p *SampleProfile) { p.TimeNS = math.NaN() }},
		{"+inf time", func(p *SampleProfile) { p.TimeNS = math.Inf(1) }},
		{"-inf time", func(p *SampleProfile) { p.TimeNS = math.Inf(-1) }},
		{"negative time", func(p *SampleProfile) { p.TimeNS = -p.TimeNS }},
		{"zero time", func(p *SampleProfile) { p.TimeNS = 0 }},
		{"negative counter", func(p *SampleProfile) { p.Events.L2Misses = -1 }},
		{"nan occupancy", func(p *SampleProfile) { p.Events.WarpsPerSM = math.NaN() }},
		{"executed exceeds issued", func(p *SampleProfile) { p.Events.InstExecuted = p.Events.InstIssued + 1 }},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			prof := good
			tc.mut(&prof)
			if _, err := NewPredictor(m, tr, sample, prof); !errors.Is(err, hmserr.ErrInvalidProfile) {
				t.Errorf("NewPredictor: got %v, want ErrInvalidProfile", err)
			}
		})
	}

	// The untouched profile must still be accepted.
	if _, err := NewPredictor(m, tr, sample, good); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}
