package core

import (
	"math"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/queuing"
	"gpuhms/internal/sim"
	"gpuhms/internal/trace"
)

func profile(t testing.TB, cfg *gpu.Config, tr *trace.Trace, sample *placement.Placement) SampleProfile {
	t.Helper()
	m, err := sim.New(cfg).Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	return SampleProfile{TimeNS: m.TimeNS, Events: m.Events}
}

func TestPredictorRejectsIllegalPlacements(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("vecadd")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	m := NewModel(cfg, FullOptions())
	pr, err := NewPredictor(m, tr, sample, profile(t, cfg, tr, sample))
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := placement.Parse(tr, "v:T")
	if _, err := pr.Predict(bad); err == nil {
		t.Error("illegal target must be rejected")
	}
	if _, err := NewPredictor(m, tr, bad, SampleProfile{}); err == nil {
		t.Error("illegal sample must be rejected")
	}
}

// TestPredictionsFiniteForAllKernels sweeps every kernel's placements
// through every model variant and requires finite, positive, decomposable
// predictions.
func TestPredictionsFiniteForAllKernels(t *testing.T) {
	cfg := gpu.KeplerK80()
	variants := []Options{
		{},
		{InstrCounting: true},
		{InstrCounting: true, Queuing: true},
		FullOptions(),
		{HongKimOverlap: true},
		{InstrCounting: true, Queuing: true, AddressMapping: true, Variant: queuing.ClassicKingman},
	}
	for _, name := range kernels.Names() {
		spec := kernels.MustGet(name)
		tr := spec.Trace(1)
		sample, err := spec.SamplePlacement(tr)
		if err != nil {
			t.Fatal(err)
		}
		prof := profile(t, cfg, tr, sample)
		targets, err := spec.Targets(tr)
		if err != nil {
			t.Fatal(err)
		}
		all := append([]*placement.Placement{sample}, targets...)
		for vi, opts := range variants {
			m := NewModel(cfg, opts)
			pr, err := NewPredictor(m, tr, sample, prof)
			if err != nil {
				t.Fatalf("%s variant %d: %v", name, vi, err)
			}
			for _, pl := range all {
				pred, err := pr.Predict(pl)
				if err != nil {
					t.Fatalf("%s variant %d %s: %v", name, vi, pl.Format(tr), err)
				}
				if math.IsNaN(pred.TimeNS) || math.IsInf(pred.TimeNS, 0) || pred.TimeNS <= 0 {
					t.Fatalf("%s variant %d %s: time %g", name, vi, pl.Format(tr), pred.TimeNS)
				}
				if pred.TComp < 0 || pred.TMem < 0 || pred.TOverlap < 0 {
					t.Fatalf("%s: negative component %+v", name, pred)
				}
				if pred.TOverlap > pred.TMem+1e-6 {
					t.Fatalf("%s: overlap %g exceeds Tmem %g", name, pred.TOverlap, pred.TMem)
				}
				// T ≥ T_comp: overlap can only hide memory time.
				if pred.Cycles+1e-6 < pred.TComp {
					t.Fatalf("%s: total %g below Tcomp %g", name, pred.Cycles, pred.TComp)
				}
			}
		}
	}
}

func TestInstrCountingSeesAddressingModes(t *testing.T) {
	// Moving a heavily-accessed array G→T reduces the full model's T_comp;
	// the no-instruction-counting baseline cannot see the difference.
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("matrixMul")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	prof := profile(t, cfg, tr, sample)
	target, _ := placement.Parse(tr, "A:T,B:T")

	full := NewModel(cfg, FullOptions())
	prFull, _ := NewPredictor(full, tr, sample, prof)
	pSample, _ := prFull.Predict(sample)
	pTarget, _ := prFull.Predict(target)
	if pTarget.TComp >= pSample.TComp {
		t.Errorf("texture addressing should reduce Tcomp: %g vs %g",
			pTarget.TComp, pSample.TComp)
	}

	base := NewModel(cfg, Options{})
	prBase, _ := NewPredictor(base, tr, sample, prof)
	bSample, _ := prBase.Predict(sample)
	bTarget, _ := prBase.Predict(target)
	if bTarget.TComp != bSample.TComp {
		t.Errorf("baseline Tcomp should be placement-invariant: %g vs %g",
			bTarget.TComp, bSample.TComp)
	}
}

func TestReplayQuantificationDrivesTcomp(t *testing.T) {
	// neuralnet's weights:C placement explodes constant-divergence replays;
	// the full model's Tcomp must grow accordingly.
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("neuralnet")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	prof := profile(t, cfg, tr, sample)
	m := NewModel(cfg, FullOptions())
	pr, _ := NewPredictor(m, tr, sample, prof)

	pG, _ := pr.Predict(sample)
	cPl, _ := placement.Parse(tr, "weights:C")
	pC, _ := pr.Predict(cPl)
	if pC.TComp <= pG.TComp {
		t.Errorf("constant divergence should raise Tcomp: %g vs %g", pC.TComp, pG.TComp)
	}
	tPl, _ := placement.Parse(tr, "weights:T")
	pT, _ := pr.Predict(tPl)
	if pT.TComp >= pG.TComp {
		t.Errorf("texture should remove replays and lower Tcomp: %g vs %g", pT.TComp, pG.TComp)
	}
}

func TestQueuingRaisesDRAMLatencyUnderLoad(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("vecadd") // bandwidth-hungry streaming
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	prof := profile(t, cfg, tr, sample)

	q := NewModel(cfg, Options{InstrCounting: true, Queuing: true, AddressMapping: true})
	prQ, _ := NewPredictor(q, tr, sample, prof)
	pQ, _ := prQ.Predict(sample)
	if pQ.QueueDelayNS <= 0 {
		t.Error("streaming kernel should see queuing delay")
	}
	if pQ.DRAMLatNS <= cfg.DRAM.HitLatencyNS {
		t.Errorf("DRAM latency %g below the hit latency", pQ.DRAMLatNS)
	}

	c := NewModel(cfg, Options{InstrCounting: true})
	prC, _ := NewPredictor(c, tr, sample, prof)
	pC, _ := prC.Predict(sample)
	if pC.DRAMLatNS != cfg.DRAM.MissLatencyNS {
		t.Errorf("constant-latency model uses %g, want %g", pC.DRAMLatNS, cfg.DRAM.MissLatencyNS)
	}
	if pC.QueueDelayNS != 0 {
		t.Error("constant-latency model has no queue")
	}
}

func TestOverlapObservationClamps(t *testing.T) {
	cfg := gpu.KeplerK80()
	m := NewModel(cfg, FullOptions())
	pred := &Prediction{TComp: 1000, TMem: 500, StagingNS: 0}
	pred.Events.WarpsPerSM = 8

	// Measured exactly Tc+Tm → zero overlap.
	obs := m.OverlapObservation(pred, 1500*cfg.NSPerCycle())
	if obs.Ratio != 0 {
		t.Errorf("ratio = %g, want 0", obs.Ratio)
	}
	// Measured Tc → full overlap (ratio 1).
	obs = m.OverlapObservation(pred, 1000*cfg.NSPerCycle())
	if obs.Ratio != 1 {
		t.Errorf("ratio = %g, want 1", obs.Ratio)
	}
	// Measured below Tc → clamped to 1.
	obs = m.OverlapObservation(pred, 100*cfg.NSPerCycle())
	if obs.Ratio != 1 {
		t.Errorf("ratio = %g, want clamp 1", obs.Ratio)
	}
	// Measured above Tc+Tm → clamped to 0.
	obs = m.OverlapObservation(pred, 9000*cfg.NSPerCycle())
	if obs.Ratio != 0 {
		t.Errorf("ratio = %g, want clamp 0", obs.Ratio)
	}
}

func TestFitOverlapRecoversPlantedModel(t *testing.T) {
	// Observations generated from known coefficients must be recovered.
	coeffs := []float64{0.1, 0, 0.2, 0.05, 0.3, 0.1, 0.2}
	var samples []OverlapSample
	for i := 0; i < 40; i++ {
		f := []float64{
			float64(i%5) / 5, float64(i%3) / 3, float64(i%7) / 7,
			float64(i%2) / 2, float64(i%4) / 4, float64(i%6) / 6, 1,
		}
		y := 0.0
		for j := range coeffs {
			y += coeffs[j] * f[j]
		}
		samples = append(samples, OverlapSample{Features: f, Ratio: y})
	}
	got, err := FitOverlap(samples)
	if err != nil {
		t.Fatal(err)
	}
	for j := range coeffs {
		if math.Abs(got[j]-coeffs[j]) > 1e-6 {
			t.Errorf("coeff %d = %g, want %g", j, got[j], coeffs[j])
		}
	}
}

func TestTrainedOverlapReducesError(t *testing.T) {
	// Fitting the overlap on a kernel's own placements must reduce its
	// prediction error versus zero overlap (sanity of the Eq 11 pipeline).
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("s3d")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	prof := profile(t, cfg, tr, sample)
	zero := NewModel(cfg, FullOptions())
	pr, _ := NewPredictor(zero, tr, sample, prof)

	targets, _ := spec.Targets(tr)
	all := append([]*placement.Placement{sample}, targets...)
	var samples []OverlapSample
	var errZero float64
	meas := make([]float64, len(all))
	for i, pl := range all {
		p, err := pr.Predict(pl)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(cfg).Run(tr, sample, pl)
		if err != nil {
			t.Fatal(err)
		}
		meas[i] = m.TimeNS
		errZero += math.Abs(p.TimeNS-m.TimeNS) / m.TimeNS
		samples = append(samples, zero.OverlapObservation(p, m.TimeNS))
	}
	coeffs, err := FitOverlap(samples)
	if err != nil {
		t.Fatal(err)
	}

	opts := FullOptions()
	opts.OverlapCoeffs = coeffs
	trained := NewModel(cfg, opts)
	prT, _ := NewPredictor(trained, tr, sample, prof)
	var errTrained float64
	for i, pl := range all {
		p, err := prT.Predict(pl)
		if err != nil {
			t.Fatal(err)
		}
		errTrained += math.Abs(p.TimeNS-meas[i]) / meas[i]
	}
	if errTrained >= errZero {
		t.Errorf("training should help in-sample: %g vs %g", errTrained, errZero)
	}
}

func TestAnalysisEventParityWithSimulator(t *testing.T) {
	// The model's trace analysis and the simulator resolve memory through
	// the same machinery; structural event counts must agree exactly for a
	// single-SM workload (identical cache interleaving).
	cfg := gpu.KeplerK80()
	cfg.SMs = 1
	spec := kernels.MustGet("vecadd")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	m, err := sim.New(cfg).Run(tr, sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(cfg, FullOptions())
	an := model.AnalyzePlacement(tr, sample, sample, false)

	if an.Events.InstExecuted != m.Events.InstExecuted {
		t.Errorf("executed: analysis %d vs sim %d", an.Events.InstExecuted, m.Events.InstExecuted)
	}
	if an.Events.GlobalRequests != m.Events.GlobalRequests {
		t.Errorf("global requests: %d vs %d", an.Events.GlobalRequests, m.Events.GlobalRequests)
	}
	if an.Events.L2Transactions != m.Events.L2Transactions {
		t.Errorf("L2 transactions: %d vs %d", an.Events.L2Transactions, m.Events.L2Transactions)
	}
	if an.Events.TotalReplays() != m.Events.TotalReplays() {
		t.Errorf("replays: %d vs %d", an.Events.TotalReplays(), m.Events.TotalReplays())
	}
}

func TestStagingCarriesIntoPrediction(t *testing.T) {
	cfg := gpu.KeplerK80()
	spec := kernels.MustGet("triad")
	tr := spec.Trace(1)
	sample, _ := spec.SamplePlacement(tr)
	prof := profile(t, cfg, tr, sample)
	m := NewModel(cfg, FullOptions())
	pr, _ := NewPredictor(m, tr, sample, prof)
	sh, _ := placement.Parse(tr, "B:S")
	p, err := pr.Predict(sh)
	if err != nil {
		t.Fatal(err)
	}
	if p.StagingNS <= 0 {
		t.Error("shared placement prediction must include staging")
	}
}
