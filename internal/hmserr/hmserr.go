// Package hmserr defines the structured error taxonomy of the library.
//
// Every error crossing the public gpuhms API wraps exactly one of the
// sentinels below, so callers branch with errors.Is instead of string
// matching, and the facade can guarantee that internal panics never escape:
// anything that is not one of these classes is a bug, not an input problem.
//
//   - ErrIllegalPlacement: a placement violates legality rules (capacity,
//     read-only spaces, 2D-texture shape, out-of-range array IDs) or a
//     placement spec fails to parse.
//   - ErrCapacityExceeded: the capacity sub-class of ErrIllegalPlacement — a
//     placement's aggregate demand overflows a memory space's byte budget
//     (shared per block, constant total, bounded DRAM). It wraps
//     ErrIllegalPlacement, so errors.Is(err, ErrIllegalPlacement) still
//     holds; callers that care specifically about capacity (the advisory
//     service maps it to 422, the fleet solvers to infeasibility) test the
//     narrower sentinel first.
//   - ErrInvalidTrace: a kernel trace is internally inconsistent (lane
//     counts, index ranges, stores to read-only arrays, duplicate array
//     names, non-positive or overflowing lengths).
//   - ErrInvalidProfile: a sample profile carries non-finite, negative, or
//     inconsistent counters and cannot seed predictions.
//   - ErrBudgetExceeded: a search stopped because its evaluation or
//     placement budget ran out; partial results accompany this error and
//     are never silently returned as complete.
//   - ErrArchMismatch: a persisted model or profile targets a different
//     architecture than the one it is being used with.
//   - ErrUnknownStrategy: a search-strategy spec does not name a known
//     strategy (exhaustive, greedy, beam-W); a caller input problem, never
//     an internal failure.
package hmserr

import (
	"errors"
	"fmt"
)

// Sentinel errors of the gpuhms error taxonomy. They are compared with
// errors.Is; concrete errors wrap them via Wrap.
var (
	ErrIllegalPlacement = errors.New("illegal placement")
	ErrInvalidTrace     = errors.New("invalid trace")
	ErrInvalidProfile   = errors.New("invalid sample profile")
	ErrBudgetExceeded   = errors.New("search budget exceeded")
	ErrArchMismatch     = errors.New("architecture mismatch")
	ErrUnknownStrategy  = errors.New("unknown search strategy")

	// ErrCapacityExceeded is the capacity sub-class of ErrIllegalPlacement:
	// it chains onto the broader sentinel, so both
	// errors.Is(err, ErrCapacityExceeded) and
	// errors.Is(err, ErrIllegalPlacement) hold for capacity overflows.
	ErrCapacityExceeded = fmt.Errorf("placement capacity exceeded: %w", ErrIllegalPlacement)
)

// Wrap attaches detail to a sentinel so errors.Is(err, sentinel) holds while
// the message carries the specifics.
func Wrap(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{sentinel}, args...)...)
}

// Guard converts an internal panic into an error at an API boundary, so no
// panic ever crosses a public surface (the gpuhms facade, the advisory
// service). Anything caught here is a library bug, not caller misuse — the
// message says so. Use as `defer hmserr.Guard(&err)`.
func Guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("gpuhms: internal error (please report): %v", r)
	}
}

// BudgetError is the concrete error of a search stopped by its candidate
// budget. It wraps ErrBudgetExceeded (errors.Is still branches on the
// sentinel) while carrying the search's coverage as data, so callers such as
// the advisory service can report "Evaluated of Total" without parsing the
// message.
type BudgetError struct {
	// Evaluated is the number of candidates actually predicted.
	Evaluated int
	// Total is the size of the legal candidate space (0 when unknown).
	Total int
	// What names the budgeted quantity ("candidate placements",
	// "model evaluations").
	What string
}

// Error renders the coverage, matching the historical Wrap message.
func (e *BudgetError) Error() string {
	if e.Total > 0 {
		return fmt.Sprintf("%v: %d of %d legal %s predicted", ErrBudgetExceeded, e.Evaluated, e.Total, e.What)
	}
	return fmt.Sprintf("%v: %d %s", ErrBudgetExceeded, e.Evaluated, e.What)
}

// Unwrap ties the error into the taxonomy: errors.Is(e, ErrBudgetExceeded).
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }
