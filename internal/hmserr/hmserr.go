// Package hmserr defines the structured error taxonomy of the library.
//
// Every error crossing the public gpuhms API wraps exactly one of the
// sentinels below, so callers branch with errors.Is instead of string
// matching, and the facade can guarantee that internal panics never escape:
// anything that is not one of these classes is a bug, not an input problem.
//
//   - ErrIllegalPlacement: a placement violates legality rules (capacity,
//     read-only spaces, 2D-texture shape, out-of-range array IDs) or a
//     placement spec fails to parse.
//   - ErrInvalidTrace: a kernel trace is internally inconsistent (lane
//     counts, index ranges, stores to read-only arrays, duplicate array
//     names, non-positive or overflowing lengths).
//   - ErrInvalidProfile: a sample profile carries non-finite, negative, or
//     inconsistent counters and cannot seed predictions.
//   - ErrBudgetExceeded: a search stopped because its evaluation or
//     placement budget ran out; partial results accompany this error and
//     are never silently returned as complete.
//   - ErrArchMismatch: a persisted model or profile targets a different
//     architecture than the one it is being used with.
package hmserr

import (
	"errors"
	"fmt"
)

// Sentinel errors of the gpuhms error taxonomy. They are compared with
// errors.Is; concrete errors wrap them via Wrap.
var (
	ErrIllegalPlacement = errors.New("illegal placement")
	ErrInvalidTrace     = errors.New("invalid trace")
	ErrInvalidProfile   = errors.New("invalid sample profile")
	ErrBudgetExceeded   = errors.New("search budget exceeded")
	ErrArchMismatch     = errors.New("architecture mismatch")
)

// Wrap attaches detail to a sentinel so errors.Is(err, sentinel) holds while
// the message carries the specifics.
func Wrap(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{sentinel}, args...)...)
}
