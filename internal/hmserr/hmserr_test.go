package hmserr

import (
	"errors"
	"testing"
)

func TestWrapPreservesSentinel(t *testing.T) {
	sentinels := []error{
		ErrIllegalPlacement, ErrInvalidTrace, ErrInvalidProfile,
		ErrBudgetExceeded, ErrArchMismatch, ErrUnknownStrategy,
	}
	for _, s := range sentinels {
		w := Wrap(s, "kernel %s, array %d", "fft", 3)
		if !errors.Is(w, s) {
			t.Errorf("Wrap(%v) lost the sentinel", s)
		}
		if got := w.Error(); got != s.Error()+": kernel fft, array 3" {
			t.Errorf("Wrap message = %q", got)
		}
		// Sentinels are pairwise distinct.
		for _, other := range sentinels {
			if other != s && errors.Is(w, other) {
				t.Errorf("Wrap(%v) matches unrelated sentinel %v", s, other)
			}
		}
	}
}

func TestCapacityExceededChainsOntoIllegalPlacement(t *testing.T) {
	err := Wrap(ErrCapacityExceeded, "shared overflow: %d > %d", 100, 48)
	if !errors.Is(err, ErrCapacityExceeded) {
		t.Error("wrapped error must match ErrCapacityExceeded")
	}
	if !errors.Is(err, ErrIllegalPlacement) {
		t.Error("ErrCapacityExceeded must chain onto ErrIllegalPlacement")
	}
	if errors.Is(ErrIllegalPlacement, ErrCapacityExceeded) {
		t.Error("the broad sentinel must not match the narrow one")
	}
}
