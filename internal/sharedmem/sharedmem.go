// Package sharedmem models the on-chip shared memory: a banked scratchpad
// where a warp access serializes when multiple lanes touch different words
// in the same bank (a bank conflict). Bank conflicts are instruction-replay
// reason (4) of §III-B and feed both the replay quantification and the
// T_overlap event model.
package sharedmem

import "gpuhms/internal/gpu"

// Config describes the shared memory organization.
type Config struct {
	Banks     int // number of banks (32 on Kepler)
	BankBytes int // word width per bank per cycle (4 bytes on Kepler)
}

// FromGPU extracts the shared-memory configuration.
func FromGPU(c *gpu.Config) Config {
	return Config{Banks: c.SharedBanks, BankBytes: c.SharedBankBytes}
}

// ConflictDegree returns the serialization degree of one warp access: the
// maximum, over banks, of the number of *distinct* words the warp's active
// lanes address in that bank. Lanes reading the same word broadcast and do
// not conflict. A conflict-free access has degree 1; an access with degree d
// replays d−1 times.
//
// addrs holds block-local shared-memory byte addresses; active[i] reports
// whether lane i participates. active may be nil (all lanes active).
func (c Config) ConflictDegree(addrs []uint64, active []bool) int {
	// words[bank] collects the distinct word addresses seen per bank.
	// Warp sizes are small; small slices beat maps here.
	type bankWords struct {
		words [4]uint64
		n     int
		over  map[uint64]struct{}
	}
	banks := make([]bankWords, c.Banks)
	degree := 0
	for i, a := range addrs {
		if active != nil && !active[i] {
			continue
		}
		word := a / uint64(c.BankBytes)
		bank := int(word % uint64(c.Banks))
		bw := &banks[bank]
		dup := false
		for j := 0; j < bw.n && j < len(bw.words); j++ {
			if bw.words[j] == word {
				dup = true
				break
			}
		}
		if !dup && bw.over != nil {
			_, dup = bw.over[word]
		}
		if dup {
			continue
		}
		if bw.n < len(bw.words) {
			bw.words[bw.n] = word
		} else {
			if bw.over == nil {
				bw.over = make(map[uint64]struct{})
			}
			bw.over[word] = struct{}{}
		}
		bw.n++
		if bw.n > degree {
			degree = bw.n
		}
	}
	if degree == 0 {
		return 1 // an access with no active lanes still issues once
	}
	return degree
}

// Conflicts returns the number of bank-conflict replays of one warp access:
// ConflictDegree − 1.
func (c Config) Conflicts(addrs []uint64, active []bool) int {
	return c.ConflictDegree(addrs, active) - 1
}
