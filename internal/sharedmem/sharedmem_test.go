package sharedmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpuhms/internal/gpu"
)

func kepler() Config { return FromGPU(gpu.KeplerK80()) }

func addrs(stride, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i * stride)
	}
	return out
}

func TestConflictFreeUnitStride(t *testing.T) {
	c := kepler()
	// 32 lanes × consecutive 4-byte words → one word per bank.
	if d := c.ConflictDegree(addrs(4, 32), nil); d != 1 {
		t.Errorf("unit stride degree = %d", d)
	}
	if r := c.Conflicts(addrs(4, 32), nil); r != 0 {
		t.Errorf("unit stride replays = %d", r)
	}
}

func TestBroadcastIsConflictFree(t *testing.T) {
	c := kepler()
	same := make([]uint64, 32)
	for i := range same {
		same[i] = 128
	}
	if d := c.ConflictDegree(same, nil); d != 1 {
		t.Errorf("broadcast degree = %d", d)
	}
}

func TestPowerOfTwoStrides(t *testing.T) {
	c := kepler()
	// Classic result: stride s (in words) on 32 banks gives
	// gcd(s,32)-way conflicts.
	for _, tc := range []struct {
		strideWords int
		degree      int
	}{
		{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {32, 32}, {3, 1}, {5, 1}, {33, 1},
	} {
		got := c.ConflictDegree(addrs(tc.strideWords*4, 32), nil)
		if got != tc.degree {
			t.Errorf("stride %d words: degree = %d, want %d", tc.strideWords, got, tc.degree)
		}
	}
}

func TestPaddingRemovesConflicts(t *testing.T) {
	c := kepler()
	// The classic padding trick: stride 32 words conflicts 32-way; stride
	// 33 words is conflict-free.
	if d := c.ConflictDegree(addrs(32*4, 32), nil); d != 32 {
		t.Errorf("unpadded degree = %d", d)
	}
	if d := c.ConflictDegree(addrs(33*4, 32), nil); d != 1 {
		t.Errorf("padded degree = %d", d)
	}
}

func TestInactiveLanesIgnored(t *testing.T) {
	c := kepler()
	a := addrs(32*4, 32) // all lanes same bank
	active := make([]bool, 32)
	active[0], active[7] = true, true
	if d := c.ConflictDegree(a, active); d != 2 {
		t.Errorf("two active lanes degree = %d", d)
	}
	none := make([]bool, 32)
	if d := c.ConflictDegree(a, none); d != 1 {
		t.Errorf("no active lanes degree = %d (an access still issues once)", d)
	}
}

func TestSameWordDifferentLanesBroadcasts(t *testing.T) {
	c := kepler()
	// Half the warp reads word 0, half reads word 32 (same bank, different
	// words): 2-way conflict, not 32-way.
	a := make([]uint64, 32)
	for i := range a {
		if i%2 == 0 {
			a[i] = 0
		} else {
			a[i] = 32 * 4
		}
	}
	if d := c.ConflictDegree(a, nil); d != 2 {
		t.Errorf("two-word same-bank degree = %d", d)
	}
}

// Property: degree is between 1 and the number of active lanes, and equals
// the true maximum per-bank distinct-word count computed by a reference
// implementation.
func TestConflictDegreeMatchesReference(t *testing.T) {
	c := kepler()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		a := make([]uint64, n)
		for i := range a {
			a[i] = uint64(r.Intn(2048)) * 4
		}
		got := c.ConflictDegree(a, nil)

		// Reference: map bank → set of words.
		banks := make(map[int]map[uint64]bool)
		for _, addr := range a {
			word := addr / uint64(c.BankBytes)
			bank := int(word % uint64(c.Banks))
			if banks[bank] == nil {
				banks[bank] = make(map[uint64]bool)
			}
			banks[bank][word] = true
		}
		want := 1
		for _, words := range banks {
			if len(words) > want {
				want = len(words)
			}
		}
		return got == want && got >= 1 && got <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManyDistinctWordsPerBankOverflowPath(t *testing.T) {
	c := Config{Banks: 2, BankBytes: 4}
	// 8 distinct words all in bank 0 exercises the small-array overflow
	// into the map.
	a := make([]uint64, 8)
	for i := range a {
		a[i] = uint64(i) * 2 * 4 // even words → bank 0
	}
	if d := c.ConflictDegree(a, nil); d != 8 {
		t.Errorf("degree = %d, want 8", d)
	}
	// Duplicates in the overflow region must still broadcast.
	a = append(a, a[5], a[6])
	if d := c.ConflictDegree(a, nil); d != 8 {
		t.Errorf("degree with dups = %d, want 8", d)
	}
}
