// Package gpu describes the modeled GPU architecture: streaming
// multiprocessors, the programmable memory spaces of a heterogeneous memory
// system (HMS), cache geometry, and the GDDR5 DRAM topology.
//
// The default configuration approximates an NVIDIA Tesla K80 (Kepler), the
// platform evaluated by Huang & Li (CLUSTER 2017). All other packages take a
// *Config so alternative HMS designs can be described without code changes.
package gpu

import "fmt"

// MemSpace identifies one of the programmable memory components of the HMS.
// The data placement problem assigns each data array to one MemSpace.
type MemSpace uint8

const (
	// Global is off-chip GDDR DRAM cached only by the L2.
	Global MemSpace = iota
	// Shared is on-chip scratchpad memory, banked, scoped to a thread block.
	Shared
	// Constant is off-chip DRAM behind the per-SM constant cache; read-only,
	// optimized for broadcast (all lanes reading one address).
	Constant
	// Texture1D is off-chip DRAM behind the per-SM texture cache with a
	// linear (1D) layout.
	Texture1D
	// Texture2D is off-chip DRAM behind the texture cache with a 2D
	// block-swizzled layout giving 2D spatial locality.
	Texture2D

	// GlobalRemote is global memory on a different chiplet's stack, reached
	// across the interposer. Same cache path as Global, plus one interposer
	// crossing per off-chip request. Only legal on configs with HasRemote().
	GlobalRemote
	// ConstantRemote is constant memory backed by a remote stack.
	ConstantRemote
	// Texture1DRemote is linear texture memory backed by a remote stack.
	Texture1DRemote
	// Texture2DRemote is block-swizzled texture memory backed by a remote
	// stack.
	Texture2DRemote

	// NumSpaces is the number of memory spaces.
	NumSpaces = 9
)

// Spaces lists every memory space in declaration order.
var Spaces = [NumSpaces]MemSpace{
	Global, Shared, Constant, Texture1D, Texture2D,
	GlobalRemote, ConstantRemote, Texture1DRemote, Texture2DRemote,
}

// String returns the short name used throughout the paper's tables
// (G, S, C, T, 2T).
func (s MemSpace) String() string {
	switch s {
	case Global:
		return "G"
	case Shared:
		return "S"
	case Constant:
		return "C"
	case Texture1D:
		return "T"
	case Texture2D:
		return "2T"
	case GlobalRemote:
		return "rG"
	case ConstantRemote:
		return "rC"
	case Texture1DRemote:
		return "rT"
	case Texture2DRemote:
		return "r2T"
	}
	return fmt.Sprintf("MemSpace(%d)", uint8(s))
}

// LongString returns the full memory space name.
func (s MemSpace) LongString() string {
	switch s {
	case Global:
		return "global"
	case Shared:
		return "shared"
	case Constant:
		return "constant"
	case Texture1D:
		return "texture1D"
	case Texture2D:
		return "texture2D"
	case GlobalRemote:
		return "globalRemote"
	case ConstantRemote:
		return "constantRemote"
	case Texture1DRemote:
		return "texture1DRemote"
	case Texture2DRemote:
		return "texture2DRemote"
	}
	return fmt.Sprintf("MemSpace(%d)", uint8(s))
}

// OffChip reports whether the space is backed by off-chip GDDR DRAM.
func (s MemSpace) OffChip() bool { return s != Shared }

// Remote reports whether the space lives on another chiplet's memory stack,
// reached across the interposer. Remote spaces behave exactly like their
// Base() counterpart through the cache hierarchy; they only add the
// interposer crossing to each off-chip request.
func (s MemSpace) Remote() bool { return s >= GlobalRemote && s <= Texture2DRemote }

// Base returns the local counterpart of a remote space (GlobalRemote →
// Global, …) and the space itself for local spaces. Cache-path, address-mode,
// and coalescing logic switch on Base(); only capacity checks and the
// interposer latency term distinguish remote from local.
func (s MemSpace) Base() MemSpace {
	switch s {
	case GlobalRemote:
		return Global
	case ConstantRemote:
		return Constant
	case Texture1DRemote:
		return Texture1D
	case Texture2DRemote:
		return Texture2D
	}
	return s
}

// Writable reports whether a kernel may store to the space.
// Constant and texture memories are read-only from device code.
func (s MemSpace) Writable() bool {
	b := s.Base()
	return b == Global || b == Shared
}

// ParseSpace converts a short or long space name ("G", "2T", "rG",
// "shared", …).
func ParseSpace(name string) (MemSpace, error) {
	switch name {
	case "G", "g", "global":
		return Global, nil
	case "S", "s", "shared":
		return Shared, nil
	case "C", "c", "constant":
		return Constant, nil
	case "T", "t", "texture", "texture1D", "1T":
		return Texture1D, nil
	case "2T", "2t", "texture2D":
		return Texture2D, nil
	case "rG", "rg", "globalRemote":
		return GlobalRemote, nil
	case "rC", "rc", "constantRemote":
		return ConstantRemote, nil
	case "rT", "rt", "textureRemote", "texture1DRemote":
		return Texture1DRemote, nil
	case "r2T", "r2t", "texture2DRemote":
		return Texture2DRemote, nil
	}
	return Global, fmt.Errorf("gpu: unknown memory space %q", name)
}

// CacheGeometry describes one set-associative cache.
type CacheGeometry struct {
	SizeBytes int // total capacity
	LineBytes int // line (transaction) size
	Ways      int // associativity
}

// Sets returns the number of cache sets.
func (g CacheGeometry) Sets() int { return g.SizeBytes / (g.LineBytes * g.Ways) }

// DRAMTopology describes the GDDR5 organization visible to the models:
// a set of memory controllers (channels), each with one rank of independent
// banks, each bank fronted by a row buffer.
type DRAMTopology struct {
	Controllers int // M in the paper (6 for Kepler/Fermi)
	BanksPerCtl int // B in the paper (16 for GDDR5)
	RowBytes    int // bytes per DRAM row (row buffer size)
	ColumnBytes int // bytes per column access (burst)

	// Row buffer access latencies, nanoseconds, as a pointer-chase
	// microbenchmark observes them (Algorithm 1 on the K80): hit 352 ns,
	// miss 742 ns, conflict (dirty-row writeback + activate) 1008 ns.
	// These are end-to-end latencies of one isolated request.
	HitLatencyNS      float64
	MissLatencyNS     float64
	ConflictLatencyNS float64

	// Bank occupancy times, nanoseconds: how long the bank is busy per
	// request before it can serve the next one (tCCD-scale for row hits,
	// tRC-scale for activates). Occupancy, not latency, bounds bandwidth.
	BusyHitNS      float64
	BusyMissNS     float64
	BusyConflictNS float64

	// CtlBusyNS is the memory controller's data-bus occupancy per serviced
	// line; it caps per-channel bandwidth (LineBytes / CtlBusyNS).
	CtlBusyNS float64
}

// TotalBanks returns the number of independent banks in the system
// (NB in the paper's Eq 7).
func (d DRAMTopology) TotalBanks() int { return d.Controllers * d.BanksPerCtl }

// Interposer describes the chiplet interconnect of a multi-die package
// (Chung & Kim style): every off-chip request to a remote-placed array pays
// one crossing of LatencyNS on top of the normal DRAM path, and remote
// placements draw from the remote stacks' capacity pools rather than the
// local ones. The zero value means "no remote stacks" — a monolithic die.
//
// The model deliberately keeps one DRAM bank pool for local and remote
// traffic: the remote stack has its own banks in silicon, but merging them
// only makes the queueing term pessimistic for remote-heavy placements,
// which is the conservative direction for an advisor.
type Interposer struct {
	// LatencyNS is the one-way interposer crossing latency charged per
	// warp-level off-chip request to a remote-placed array.
	LatencyNS float64
	// RemoteGlobalBytes is the DRAM capacity of the remote stacks available
	// to global/texture placements; 0 disables remote placement entirely.
	RemoteGlobalBytes int
	// RemoteConstantBytes is the constant-segment capacity reachable on
	// remote stacks.
	RemoteConstantBytes int
}

// Config is a complete architecture description.
type Config struct {
	Name string

	// SM / execution parameters.
	SMs            int     // streaming multiprocessors
	WarpSize       int     // threads per warp
	SIMDWidth      int     // lanes issued per cycle per scheduler group
	ClockGHz       float64 // SM clock, GHz
	MaxWarpsPerSM  int     // occupancy ceiling
	AvgInstLatency float64 // pipeline depth proxy, cycles (FP latency, per [7])

	// Issue-slot cost of complicated (two-cycle) instructions such as DFMA.
	DoubleIssueOps bool

	// Memory transaction size for coalescing analysis (bytes loadable in one
	// cycle for a warp-level request).
	TransactionBytes int

	// Cache geometry. L2 is shared by global/constant/texture traffic;
	// constant and texture caches are per SM.
	L2       CacheGeometry
	Constant CacheGeometry
	Texture  CacheGeometry

	// Cache hit latency, cycles. The paper assumes a single cache hit latency
	// (the L2 latency) for all caches.
	CacheHitLatency float64

	// Shared memory.
	SharedBanks      int // banks (32 on Kepler)
	SharedBankBytes  int // bank word width in bytes (4 or 8)
	SharedLatency    float64
	SharedBytesPerSM int
	ConstantBytes    int // total constant memory (64 KiB)
	// GlobalBytes is the device DRAM capacity backing the global and texture
	// spaces; 0 means unbounded (capacity checks on DRAM-backed spaces are
	// skipped).
	GlobalBytes       int
	SharedCopyGBs     float64 // global→shared staging bandwidth, GB/s
	TextureBlockShift uint    // log2 of the 2D texture tile edge, in elements

	DRAM DRAMTopology

	// Interposer describes the chiplet interconnect; the zero value means a
	// monolithic die with no remote memory spaces.
	Interposer Interposer

	// MWPPeakBW caps memory warp parallelism by bandwidth (per [6]).
	MWPPeakBW float64
	// MaxPendingLoads bounds outstanding loads per warp in the timing
	// simulator (an MSHR/scoreboard proxy).
	MaxPendingLoads int
}

// KeplerK80 returns the default Tesla-K80-like configuration used throughout
// the reproduction. One GK210 die: 13 SMX, 6 memory controllers.
func KeplerK80() *Config {
	return &Config{
		Name:           "Tesla K80 (GK210, modeled)",
		SMs:            13,
		WarpSize:       32,
		SIMDWidth:      32,
		ClockGHz:       0.823,
		MaxWarpsPerSM:  64,
		AvgInstLatency: 18,

		TransactionBytes: 128,

		L2:       CacheGeometry{SizeBytes: 1536 << 10, LineBytes: 128, Ways: 16},
		Constant: CacheGeometry{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4},
		Texture:  CacheGeometry{SizeBytes: 12 << 10, LineBytes: 128, Ways: 4},

		CacheHitLatency: 36,

		SharedBanks:       32,
		SharedBankBytes:   4,
		SharedLatency:     3,
		SharedBytesPerSM:  48 << 10,
		ConstantBytes:     64 << 10,
		GlobalBytes:       12 << 30, // 12 GiB per GK210 die
		SharedCopyGBs:     160,
		TextureBlockShift: 4, // 16x16-element tiles

		DRAM: DRAMTopology{
			Controllers:       6,
			BanksPerCtl:       16,
			RowBytes:          2048,
			ColumnBytes:       32,
			HitLatencyNS:      352,
			MissLatencyNS:     742,
			ConflictLatencyNS: 1008,
			BusyHitNS:         8,
			BusyMissNS:        44,
			BusyConflictNS:    64,
			CtlBusyNS:         4,
		},

		MWPPeakBW:       48,
		MaxPendingLoads: 6,
	}
}

// ActiveSMs returns the number of SMs a launch with the given block count
// occupies (Eq 2's #active_SMs): launches with fewer blocks than SMs leave
// the rest idle.
func (c *Config) ActiveSMs(blocks int) int {
	if blocks < 1 {
		return 1
	}
	if blocks < c.SMs {
		return blocks
	}
	return c.SMs
}

// FermiC2050 returns a Tesla-C2050-like (Fermi) configuration — the GPU the
// paper's GPGPUSim inter-arrival study uses. It demonstrates that the models
// are architecture-parametric: fewer, smaller SMs, a smaller L2, and the
// same six-controller GDDR5 organization.
func FermiC2050() *Config {
	c := KeplerK80()
	c.Name = "Tesla C2050 (Fermi, modeled)"
	c.SMs = 14
	c.ClockGHz = 1.15
	c.MaxWarpsPerSM = 48
	c.AvgInstLatency = 22
	c.L2 = CacheGeometry{SizeBytes: 768 << 10, LineBytes: 128, Ways: 16}
	c.Texture = CacheGeometry{SizeBytes: 8 << 10, LineBytes: 128, Ways: 4}
	c.GlobalBytes = 3 << 30 // 3 GiB GDDR5
	c.MWPPeakBW = 32
	return c
}

// HBMClass returns a P100-generation configuration with a stacked-DRAM
// memory system: many more SMs, a 4 MiB L2, and 32 narrow HBM2 channels
// whose rows are smaller but far more numerous than GDDR5's, trading
// per-access latency for massive bank-level parallelism (Khairy et al.,
// PAPERS.md). It exercises the model where the memory-system bottleneck
// shifts from latency to parallelism.
func HBMClass() *Config {
	return &Config{
		Name:           "HBM-class (P100-like, modeled)",
		SMs:            56,
		WarpSize:       32,
		SIMDWidth:      32,
		ClockGHz:       1.328,
		MaxWarpsPerSM:  64,
		AvgInstLatency: 16,

		TransactionBytes: 128,

		L2:       CacheGeometry{SizeBytes: 4096 << 10, LineBytes: 128, Ways: 16},
		Constant: CacheGeometry{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4},
		Texture:  CacheGeometry{SizeBytes: 24 << 10, LineBytes: 128, Ways: 4},

		CacheHitLatency: 32,

		SharedBanks:       32,
		SharedBankBytes:   4,
		SharedLatency:     3,
		SharedBytesPerSM:  64 << 10,
		ConstantBytes:     64 << 10,
		GlobalBytes:       16 << 30, // 16 GiB HBM2
		SharedCopyGBs:     480,
		TextureBlockShift: 4,

		DRAM: DRAMTopology{
			Controllers:       32, // 4 stacks x 8 channels
			BanksPerCtl:       16,
			RowBytes:          1024, // HBM2 pseudo-channel row
			ColumnBytes:       32,
			HitLatencyNS:      222,
			MissLatencyNS:     404,
			ConflictLatencyNS: 545,
			BusyHitNS:         4,
			BusyMissNS:        28,
			BusyConflictNS:    42,
			CtlBusyNS:         2,
		},

		MWPPeakBW:       80,
		MaxPendingLoads: 8,
	}
}

// Chiplet returns a two-chiplet HBM package (Chung & Kim, PAPERS.md): each
// die owns a local HBM stack, and every off-chip space additionally exists
// in a remote variant backed by the other die's stack across the interposer.
// The local pools are deliberately tight — half the HBM stacks, a 32 KiB
// local constant segment — so placements that fit comfortably on a
// monolithic die face real capacity pressure here and the remote spaces
// become load-bearing, not decorative.
func Chiplet() *Config {
	c := HBMClass()
	c.Name = "Chiplet 2-die HBM (modeled)"
	c.SMs = 28                 // one die's share of the package
	c.L2.SizeBytes = 2048 << 10
	c.ConstantBytes = 32 << 10 // local constant segment, half of K80's
	c.GlobalBytes = 8 << 30    // local stack only
	c.DRAM.Controllers = 16    // local stack's channels
	c.Interposer = Interposer{
		LatencyNS:           96, // one crossing, each way amortized in
		RemoteGlobalBytes:   8 << 30,
		RemoteConstantBytes: 64 << 10,
	}
	return c
}

// CapacityBytes returns the byte capacity of one memory space on this
// architecture, or -1 when the space is unbounded for placement purposes:
// shared memory is the per-SM (per-block) scratchpad size, constant memory
// the total constant segment, and the DRAM-backed spaces (global, both
// textures) share the device memory size (unbounded when GlobalBytes is 0).
// It is the geometry source for placement capacity checks and for the fleet
// subsystem's default per-space budgets.
func (c *Config) CapacityBytes(s MemSpace) int {
	switch s {
	case Shared:
		return c.SharedBytesPerSM
	case Constant:
		return c.ConstantBytes
	case ConstantRemote:
		return c.Interposer.RemoteConstantBytes
	case GlobalRemote, Texture1DRemote, Texture2DRemote:
		return c.Interposer.RemoteGlobalBytes
	default: // Global, Texture1D, Texture2D: device DRAM
		if c.GlobalBytes > 0 {
			return c.GlobalBytes
		}
		return -1
	}
}

// HasRemote reports whether this architecture exposes remote memory spaces:
// a chiplet design with at least one reachable remote stack. Placement
// enumeration only offers the *Remote spaces when this is true.
func (c *Config) HasRemote() bool {
	return c.Interposer.RemoteGlobalBytes > 0 || c.Interposer.RemoteConstantBytes > 0
}

// CyclesPerNS converts nanoseconds into SM cycles.
func (c *Config) CyclesPerNS() float64 { return c.ClockGHz }

// NSPerCycle converts SM cycles into nanoseconds.
func (c *Config) NSPerCycle() float64 { return 1 / c.ClockGHz }

// Validate reports configuration inconsistencies.
func (c *Config) Validate() error {
	switch {
	case c.SMs <= 0:
		return fmt.Errorf("gpu: SMs must be positive, got %d", c.SMs)
	case c.WarpSize <= 0 || c.WarpSize&(c.WarpSize-1) != 0:
		return fmt.Errorf("gpu: warp size must be a positive power of two, got %d", c.WarpSize)
	case c.ClockGHz <= 0:
		return fmt.Errorf("gpu: clock must be positive, got %g", c.ClockGHz)
	case c.DRAM.Controllers <= 0 || c.DRAM.BanksPerCtl <= 0:
		return fmt.Errorf("gpu: DRAM topology %d controllers x %d banks invalid",
			c.DRAM.Controllers, c.DRAM.BanksPerCtl)
	case c.DRAM.RowBytes <= 0 || c.DRAM.RowBytes&(c.DRAM.RowBytes-1) != 0:
		return fmt.Errorf("gpu: DRAM row bytes must be a power of two, got %d", c.DRAM.RowBytes)
	case c.DRAM.ColumnBytes <= 0 || c.DRAM.ColumnBytes&(c.DRAM.ColumnBytes-1) != 0:
		return fmt.Errorf("gpu: DRAM column bytes must be a power of two, got %d", c.DRAM.ColumnBytes)
	case c.L2.SizeBytes < c.L2.LineBytes*c.L2.Ways:
		return fmt.Errorf("gpu: L2 geometry %+v has no sets", c.L2)
	case c.Constant.SizeBytes < c.Constant.LineBytes*c.Constant.Ways:
		return fmt.Errorf("gpu: constant cache geometry %+v has no sets", c.Constant)
	case c.Texture.SizeBytes < c.Texture.LineBytes*c.Texture.Ways:
		return fmt.Errorf("gpu: texture cache geometry %+v has no sets", c.Texture)
	case c.SharedBanks <= 0 || c.SharedBankBytes <= 0:
		return fmt.Errorf("gpu: shared memory %d banks x %d bytes invalid",
			c.SharedBanks, c.SharedBankBytes)
	case c.Interposer.LatencyNS < 0:
		return fmt.Errorf("gpu: interposer latency must be non-negative, got %g",
			c.Interposer.LatencyNS)
	case c.Interposer.RemoteGlobalBytes < 0 || c.Interposer.RemoteConstantBytes < 0:
		return fmt.Errorf("gpu: interposer remote capacities %d/%d must be non-negative",
			c.Interposer.RemoteGlobalBytes, c.Interposer.RemoteConstantBytes)
	case c.HasRemote() && c.Interposer.LatencyNS <= 0:
		return fmt.Errorf("gpu: chiplet config exposes remote stacks but has no interposer latency")
	}
	return nil
}
