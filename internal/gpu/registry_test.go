package gpu

import (
	"errors"
	"strings"
	"testing"
)

func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	want := []string{"chiplet", "fermi", "hbm", "k80"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	for _, w := range want {
		cfg, err := Lookup(w)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", w, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", w, err)
		}
		if Describe(w) == "" {
			t.Errorf("%s: empty description", w)
		}
	}
	// Lookup returns fresh configs: mutating one must not leak into the next.
	a := MustLookup("k80")
	a.L2.SizeBytes = 1
	if b := MustLookup("k80"); b.L2.SizeBytes == 1 {
		t.Error("Lookup returned an aliased Config")
	}
}

func TestRegistryAliases(t *testing.T) {
	for alias, canon := range map[string]string{
		"  Tesla-K80 ": "k80",
		"KEPLER":       "k80",
		"c2050":        "fermi",
		"p100":         "hbm",
		"mcm":          "chiplet",
		"chiplet":      "chiplet", // canonical names resolve to themselves
	} {
		got, err := Canonical(alias)
		if err != nil {
			t.Errorf("Canonical(%q): %v", alias, err)
			continue
		}
		if got != canon {
			t.Errorf("Canonical(%q) = %q, want %q", alias, got, canon)
		}
	}
}

func TestRegistryUnknownArch(t *testing.T) {
	for _, name := range []string{"", "gtx-9000", "k81"} {
		_, err := Lookup(name)
		if !errors.Is(err, ErrUnknownArch) {
			t.Errorf("Lookup(%q) = %v, want ErrUnknownArch", name, err)
		}
		if err != nil && !strings.Contains(err.Error(), "k80") {
			t.Errorf("Lookup(%q) error %q does not list available arches", name, err)
		}
	}
}

func TestRegisterRejectsCollisions(t *testing.T) {
	if err := Register(Entry{Name: "synthetic-arch", Build: KeplerK80}); err != nil {
		t.Fatal(err)
	}
	defer Unregister("synthetic-arch")
	if _, err := Lookup("synthetic-arch"); err != nil {
		t.Fatal(err)
	}
	for _, e := range []Entry{
		{Name: "k80", Build: KeplerK80},                             // duplicate canonical
		{Name: "kepler", Build: KeplerK80},                          // canonical colliding with alias
		{Name: "other", Aliases: []string{"k80"}, Build: KeplerK80}, // alias colliding with canonical
		{Name: "other", Aliases: []string{"mcm"}, Build: KeplerK80}, // alias colliding with alias
		{Name: "", Build: KeplerK80},                                // empty name
		{Name: "other"},                                             // nil Build
	} {
		if err := Register(e); err == nil {
			t.Errorf("Register(%+v) succeeded, want error", e)
			Unregister(e.Name)
		}
	}
}

func TestNewProfilesValidate(t *testing.T) {
	hbm := HBMClass()
	if err := hbm.Validate(); err != nil {
		t.Errorf("HBMClass: %v", err)
	}
	if hbm.HasRemote() {
		t.Error("HBMClass reports remote stacks")
	}
	ch := Chiplet()
	if err := ch.Validate(); err != nil {
		t.Errorf("Chiplet: %v", err)
	}
	if !ch.HasRemote() {
		t.Fatal("Chiplet reports no remote stacks")
	}
	// A chiplet with remote capacity but no interposer latency is a modeling
	// hole Validate must catch.
	broken := Chiplet()
	broken.Interposer.LatencyNS = 0
	if err := broken.Validate(); err == nil {
		t.Error("Validate accepted remote stacks with zero interposer latency")
	}
	neg := Chiplet()
	neg.Interposer.RemoteGlobalBytes = -1
	if err := neg.Validate(); err == nil {
		t.Error("Validate accepted negative remote capacity")
	}
}

func TestRemoteSpaceProperties(t *testing.T) {
	pairs := map[MemSpace]MemSpace{
		GlobalRemote:    Global,
		ConstantRemote:  Constant,
		Texture1DRemote: Texture1D,
		Texture2DRemote: Texture2D,
	}
	for remote, local := range pairs {
		if !remote.Remote() {
			t.Errorf("%s.Remote() = false", remote.LongString())
		}
		if remote.Base() != local {
			t.Errorf("%s.Base() = %s, want %s", remote.LongString(), remote.Base(), local)
		}
		// Round-trip through both spellings.
		for _, s := range []string{remote.String(), remote.LongString()} {
			got, err := ParseSpace(s)
			if err != nil || got != remote {
				t.Errorf("ParseSpace(%q) = %v, %v, want %s", s, got, err, remote.LongString())
			}
		}
	}
	for _, sp := range []MemSpace{Global, Shared, Constant, Texture1D, Texture2D} {
		if sp.Remote() {
			t.Errorf("%s.Remote() = true", sp.LongString())
		}
		if sp.Base() != sp {
			t.Errorf("%s.Base() = %s, want itself", sp.LongString(), sp.Base())
		}
	}
	if GlobalRemote.Writable() != Global.Writable() || ConstantRemote.Writable() {
		t.Error("remote writability does not mirror the local counterpart")
	}
}

func TestChipletRemoteCapacities(t *testing.T) {
	ch := Chiplet()
	if got := ch.CapacityBytes(ConstantRemote); got != ch.Interposer.RemoteConstantBytes {
		t.Errorf("CapacityBytes(ConstantRemote) = %d, want %d", got, ch.Interposer.RemoteConstantBytes)
	}
	for _, sp := range []MemSpace{GlobalRemote, Texture1DRemote, Texture2DRemote} {
		if got := ch.CapacityBytes(sp); got != ch.Interposer.RemoteGlobalBytes {
			t.Errorf("CapacityBytes(%s) = %d, want %d", sp.LongString(), got, ch.Interposer.RemoteGlobalBytes)
		}
	}
	if ch.ConstantBytes >= MustLookup("k80").ConstantBytes {
		t.Error("chiplet local constant segment is not smaller than the K80's")
	}
}
