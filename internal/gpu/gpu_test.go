package gpu

import (
	"math"
	"testing"
)

func TestKeplerK80Valid(t *testing.T) {
	cfg := KeplerK80()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.SMs != 13 || cfg.WarpSize != 32 {
		t.Errorf("unexpected SM/warp config: %d/%d", cfg.SMs, cfg.WarpSize)
	}
	if cfg.DRAM.Controllers != 6 {
		t.Errorf("controllers = %d, want 6 (M=6 for Kepler)", cfg.DRAM.Controllers)
	}
	if cfg.DRAM.TotalBanks() != 96 {
		t.Errorf("total banks = %d, want 96", cfg.DRAM.TotalBanks())
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.SMs = 0 }},
		{"warp not power of two", func(c *Config) { c.WarpSize = 33 }},
		{"zero clock", func(c *Config) { c.ClockGHz = 0 }},
		{"no controllers", func(c *Config) { c.DRAM.Controllers = 0 }},
		{"row bytes not pow2", func(c *Config) { c.DRAM.RowBytes = 3000 }},
		{"column bytes zero", func(c *Config) { c.DRAM.ColumnBytes = 0 }},
		{"L2 no sets", func(c *Config) { c.L2 = CacheGeometry{SizeBytes: 64, LineBytes: 128, Ways: 4} }},
		{"const no sets", func(c *Config) { c.Constant = CacheGeometry{SizeBytes: 1, LineBytes: 64, Ways: 4} }},
		{"tex no sets", func(c *Config) { c.Texture = CacheGeometry{SizeBytes: 1, LineBytes: 128, Ways: 4} }},
		{"no shared banks", func(c *Config) { c.SharedBanks = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := KeplerK80()
			m.mut(cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestMemSpaceProperties(t *testing.T) {
	if !Shared.Writable() || !Global.Writable() {
		t.Error("global and shared must be writable")
	}
	if Constant.Writable() || Texture1D.Writable() || Texture2D.Writable() {
		t.Error("constant and texture must be read-only")
	}
	if Shared.OffChip() {
		t.Error("shared memory is on-chip")
	}
	for _, sp := range []MemSpace{Global, Constant, Texture1D, Texture2D} {
		if !sp.OffChip() {
			t.Errorf("%s should be off-chip", sp.LongString())
		}
	}
}

func TestMemSpaceStrings(t *testing.T) {
	want := map[MemSpace][2]string{
		Global:    {"G", "global"},
		Shared:    {"S", "shared"},
		Constant:  {"C", "constant"},
		Texture1D: {"T", "texture1D"},
		Texture2D: {"2T", "texture2D"},
	}
	for sp, names := range want {
		if sp.String() != names[0] || sp.LongString() != names[1] {
			t.Errorf("%d: %q/%q", sp, sp.String(), sp.LongString())
		}
	}
	if MemSpace(99).String() != "MemSpace(99)" {
		t.Error("unknown space string")
	}
}

func TestParseSpaceRoundTrip(t *testing.T) {
	for _, sp := range Spaces {
		for _, name := range []string{sp.String(), sp.LongString()} {
			got, err := ParseSpace(name)
			if err != nil || got != sp {
				t.Errorf("ParseSpace(%q) = %v, %v", name, got, err)
			}
		}
	}
	if _, err := ParseSpace("bogus"); err == nil {
		t.Error("bogus space should error")
	}
}

func TestCacheGeometrySets(t *testing.T) {
	g := CacheGeometry{SizeBytes: 1536 << 10, LineBytes: 128, Ways: 16}
	if got := g.Sets(); got != 768 {
		t.Errorf("sets = %d", got)
	}
}

func TestActiveSMs(t *testing.T) {
	cfg := KeplerK80()
	for blocks, want := range map[int]int{0: 1, 1: 1, 5: 5, 13: 13, 64: 13} {
		if got := cfg.ActiveSMs(blocks); got != want {
			t.Errorf("ActiveSMs(%d) = %d, want %d", blocks, got, want)
		}
	}
}

func TestClockConversions(t *testing.T) {
	cfg := KeplerK80()
	if math.Abs(cfg.CyclesPerNS()*cfg.NSPerCycle()-1) > 1e-12 {
		t.Error("cycle/ns conversions must be inverses")
	}
}

func TestCapacityBytes(t *testing.T) {
	cfg := KeplerK80()
	if got := cfg.CapacityBytes(Shared); got != 48<<10 {
		t.Errorf("shared capacity = %d", got)
	}
	if got := cfg.CapacityBytes(Constant); got != 64<<10 {
		t.Errorf("constant capacity = %d", got)
	}
	for _, sp := range []MemSpace{Global, Texture1D, Texture2D} {
		if got := cfg.CapacityBytes(sp); got != 12<<30 {
			t.Errorf("%s capacity = %d, want device DRAM size", sp.LongString(), got)
		}
	}
	if got := FermiC2050().CapacityBytes(Global); got != 3<<30 {
		t.Errorf("fermi global capacity = %d", got)
	}
	cfg.GlobalBytes = 0
	if got := cfg.CapacityBytes(Global); got != -1 {
		t.Errorf("zero GlobalBytes must report unbounded (-1), got %d", got)
	}
}
