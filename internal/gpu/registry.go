package gpu

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownArch is the sentinel wrapped by Lookup for names the registry
// does not know. Callers map it to a 404 at the service boundary; the
// wrapped message always lists the available canonical names.
var ErrUnknownArch = errors.New("gpu: unknown architecture")

// Entry describes one registered architecture: a canonical name, optional
// aliases (all matched case-insensitively after trimming), a one-line
// description for listings, and a constructor. Build must return a fresh
// *Config on every call — callers mutate their copies freely.
type Entry struct {
	Name        string
	Aliases     []string
	Description string
	Build       func() *Config
}

var (
	regMu    sync.RWMutex
	registry = map[string]Entry{} // canonical name -> entry
	aliases  = map[string]string{} // normalized alias -> canonical name
)

func init() {
	for _, e := range []Entry{
		{
			Name:        "k80",
			Aliases:     []string{"kepler", "keplerk80", "tesla-k80"},
			Description: "Tesla K80 (GK210): 13 SMX, 1.5 MiB L2, 6-channel GDDR5 — the paper's platform",
			Build:       KeplerK80,
		},
		{
			Name:        "fermi",
			Aliases:     []string{"c2050", "fermic2050", "tesla-c2050"},
			Description: "Tesla C2050 (Fermi): 14 SMs, 768 KiB L2, 3 GiB GDDR5",
			Build:       FermiC2050,
		},
		{
			Name:        "hbm",
			Aliases:     []string{"p100", "hbm2", "hbmclass"},
			Description: "HBM-class (P100-like): 56 SMs, 4 MiB L2, 32-channel HBM2",
			Build:       HBMClass,
		},
		{
			Name:        "chiplet",
			Aliases:     []string{"chiplet2", "mcm"},
			Description: "2-die chiplet HBM: local+remote variants of every off-chip space across an interposer",
			Build:       Chiplet,
		},
	} {
		if err := Register(e); err != nil {
			panic(err)
		}
	}
}

// normalize maps user-facing arch strings onto registry keys: trimmed,
// lowercased. The empty result is never a key.
func normalize(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds an architecture to the registry. The canonical name and
// every alias must normalize to non-empty strings that are not already
// taken. Intended for builtins (at init) and for tests registering
// synthetic architectures.
func Register(e Entry) error {
	if e.Build == nil {
		return fmt.Errorf("gpu: register %q: nil Build", e.Name)
	}
	canon := normalize(e.Name)
	if canon == "" {
		return fmt.Errorf("gpu: register: empty architecture name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[canon]; dup {
		return fmt.Errorf("gpu: register %q: already registered", canon)
	}
	if prev, dup := aliases[canon]; dup {
		return fmt.Errorf("gpu: register %q: already an alias of %q", canon, prev)
	}
	for _, a := range e.Aliases {
		na := normalize(a)
		if na == "" {
			return fmt.Errorf("gpu: register %q: empty alias", canon)
		}
		if prev, dup := aliases[na]; dup {
			return fmt.Errorf("gpu: register %q: alias %q already maps to %q", canon, na, prev)
		}
		if _, dup := registry[na]; dup {
			return fmt.Errorf("gpu: register %q: alias %q is already a canonical name", canon, na)
		}
	}
	e.Name = canon
	registry[canon] = e
	for _, a := range e.Aliases {
		aliases[normalize(a)] = canon
	}
	return nil
}

// Unregister removes a registered architecture and its aliases. For tests
// that Register synthetic entries; builtins should never be unregistered.
func Unregister(name string) {
	canon := normalize(name)
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[canon]
	if !ok {
		return
	}
	delete(registry, canon)
	for _, a := range e.Aliases {
		delete(aliases, normalize(a))
	}
}

// Canonical resolves a name or alias to its canonical registry name,
// wrapping ErrUnknownArch (with the available names in the message) when
// nothing matches.
func Canonical(name string) (string, error) {
	n := normalize(name)
	regMu.RLock()
	defer regMu.RUnlock()
	if _, ok := registry[n]; ok {
		return n, nil
	}
	if canon, ok := aliases[n]; ok {
		return canon, nil
	}
	return "", fmt.Errorf("%w: %q (have %s)", ErrUnknownArch, name, strings.Join(namesLocked(), ", "))
}

// Lookup resolves a name or alias and builds a fresh, validated *Config.
// This is the single production path to a *Config: every layer — facade,
// CLI, service boot — obtains architectures here, so a profile that fails
// Validate can never be served.
func Lookup(name string) (*Config, error) {
	n := normalize(name)
	regMu.RLock()
	e, ok := registry[n]
	if !ok {
		if canon, aok := aliases[n]; aok {
			e, ok = registry[canon], true
		}
	}
	regMu.RUnlock()
	if !ok {
		regMu.RLock()
		avail := strings.Join(namesLocked(), ", ")
		regMu.RUnlock()
		return nil, fmt.Errorf("%w: %q (have %s)", ErrUnknownArch, name, avail)
	}
	cfg := e.Build()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("gpu: architecture %q: %w", e.Name, err)
	}
	return cfg, nil
}

// MustLookup is Lookup for registered builtins in examples and tests;
// it panics on error.
func MustLookup(name string) *Config {
	cfg, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Names returns the sorted canonical names of every registered
// architecture.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns the registered entry's one-line description, or "" for
// unknown names.
func Describe(name string) string {
	n := normalize(name)
	regMu.RLock()
	defer regMu.RUnlock()
	if canon, ok := aliases[n]; ok {
		n = canon
	}
	return registry[n].Description
}
