package cache

// Swizzle2D converts a linear element index of a logically-2D array into the
// block-swizzled element offset used when the array is bound to a 2D
// texture. Elements are grouped into square tiles of edge 1<<blockShift laid
// out row-major by tile, row-major within a tile. Accesses with 2D spatial
// locality (neighboring rows of a small window) then land in the same or
// adjacent cache lines — the "2D spatial locality" caching the paper
// attributes to texture memory.
//
// width is the array's row length in elements. Rows are padded up to a whole
// number of tiles, so the swizzled address space is slightly larger than the
// array; padding offsets are never produced for in-range inputs of aligned
// widths and are harmless (they only spread lines) otherwise.
func Swizzle2D(index int64, width int, blockShift uint) int64 {
	if width <= 0 || blockShift == 0 {
		return index
	}
	edge := int64(1) << blockShift
	x := index % int64(width)
	y := index / int64(width)

	tilesPerRow := (int64(width) + edge - 1) / edge
	tx, ox := x>>blockShift, x&(edge-1)
	ty, oy := y>>blockShift, y&(edge-1)

	tile := ty*tilesPerRow + tx
	return tile*edge*edge + oy*edge + ox
}
