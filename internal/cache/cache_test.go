package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpuhms/internal/gpu"
)

func smallGeom() gpu.CacheGeometry {
	return gpu.CacheGeometry{SizeBytes: 1024, LineBytes: 64, Ways: 4} // 4 sets
}

func TestColdMissThenHit(t *testing.T) {
	c := New(smallGeom())
	if c.Access(0x100) {
		t.Error("first access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access should hit")
	}
	if !c.Access(0x13f) {
		t.Error("same line should hit")
	}
	if c.Access(0x140) {
		t.Error("next line should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if mr := c.MissRatio(); mr != 0.5 {
		t.Errorf("miss ratio = %g", mr)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallGeom()) // 4 sets × 4 ways, 64B lines; set stride 256B
	// Five lines mapping to the same set: the first must be evicted.
	addrs := []uint64{0, 256, 512, 768, 1024}
	for _, a := range addrs {
		c.Access(a)
	}
	if c.Probe(0) {
		t.Error("LRU line should have been evicted")
	}
	for _, a := range addrs[1:] {
		if !c.Probe(a) {
			t.Errorf("line %#x should be resident", a)
		}
	}
	// Touching 256 makes 512 the LRU victim for the next fill.
	c.Access(256)
	c.Access(1280)
	if c.Probe(256) == false || c.Probe(512) {
		t.Error("LRU order not respected after touch")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New(smallGeom())
	c.Access(0)
	h, m := c.Hits(), c.Misses()
	c.Probe(0)
	c.Probe(4096)
	if c.Hits() != h || c.Misses() != m {
		t.Error("Probe must not change counters")
	}
}

func TestReset(t *testing.T) {
	c := New(smallGeom())
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.Accesses() != 0 {
		t.Error("counters must clear on reset")
	}
	if c.Probe(0) {
		t.Error("lines must be invalidated on reset")
	}
	if c.MissRatio() != 0 {
		t.Error("miss ratio of empty cache should be 0")
	}
}

// Property: a working set no larger than one set's ways, confined to one
// set, hits forever after the first touch — regardless of access order.
func TestWorkingSetFitsAlwaysHits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(smallGeom())
		// Four lines in set 1.
		lines := []uint64{64, 64 + 256, 64 + 512, 64 + 768}
		for _, a := range lines {
			c.Access(a)
		}
		for i := 0; i < 200; i++ {
			a := lines[r.Intn(len(lines))] + uint64(r.Intn(64))
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses equals accesses; miss count never decreases.
func TestCounterConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(gpu.CacheGeometry{SizeBytes: 4096, LineBytes: 128, Ways: 2})
		for i := 0; i < 500; i++ {
			c.Access(uint64(r.Intn(1 << 16)))
		}
		return c.Hits()+c.Misses() == c.Accesses() && c.Accesses() == 500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNonPowerOfTwoSetsRoundsDown(t *testing.T) {
	// 3 sets worth of capacity rounds down to 2 sets; the cache must still
	// behave correctly.
	c := New(gpu.CacheGeometry{SizeBytes: 3 * 64 * 2, LineBytes: 64, Ways: 2})
	if c.Access(0) {
		t.Error("cold miss expected")
	}
	if !c.Access(0) {
		t.Error("hit expected")
	}
}

func TestNewPanicsOnDegenerateGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-set geometry")
		}
	}()
	New(gpu.CacheGeometry{SizeBytes: 64, LineBytes: 64, Ways: 4})
}

func TestLinesTouched(t *testing.T) {
	tests := []struct {
		name  string
		addrs []uint64
		line  int
		want  []uint64
	}{
		{"empty", nil, 128, nil},
		{"single", []uint64{130}, 128, []uint64{128}},
		{"coalesced warp", seq(0, 32, 4), 128, []uint64{0}},
		{"two lines", []uint64{0, 127, 128}, 128, []uint64{0, 128}},
		{"strided", []uint64{0, 256, 512}, 128, []uint64{0, 256, 512}},
		{"unsorted dup", []uint64{300, 10, 310, 20}, 128, []uint64{0, 256}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := LinesTouched(tc.addrs, tc.line)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func seq(base uint64, n int, stride uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*stride
	}
	return out
}

// Property: LinesTouched returns sorted, deduplicated, line-aligned
// addresses covering every input address.
func TestLinesTouchedProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(r.Intn(1 << 14))
		}
		const line = 128
		got := LinesTouched(addrs, line)
		for i, l := range got {
			if l%line != 0 {
				return false
			}
			if i > 0 && got[i-1] >= l {
				return false
			}
		}
		for _, a := range addrs {
			found := false
			for _, l := range got {
				if a >= l && a < l+line {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwizzle2DIdentityCases(t *testing.T) {
	// blockShift 0 or non-2D width: identity.
	if Swizzle2D(37, 0, 4) != 37 {
		t.Error("width 0 should be identity")
	}
	if Swizzle2D(37, 64, 0) != 37 {
		t.Error("shift 0 should be identity")
	}
}

func TestSwizzle2DTileLocality(t *testing.T) {
	// A 2x2 pixel window must land within one tile's contiguous range when
	// aligned, i.e. swizzled offsets within edge² of each other.
	const width, shift = 64, 4
	edge := int64(1) << shift
	x, y := int64(16), int64(32) // tile-aligned corner
	base := Swizzle2D(y*width+x, width, shift)
	for dy := int64(0); dy < 2; dy++ {
		for dx := int64(0); dx < 2; dx++ {
			s := Swizzle2D((y+dy)*width+(x+dx), width, shift)
			if s < base || s >= base+edge*edge {
				t.Errorf("(%d,%d) swizzled to %d, outside tile [%d,%d)",
					x+dx, y+dy, s, base, base+edge*edge)
			}
		}
	}
}

// Property: for tile-aligned widths the swizzle is a bijection on the array
// index range.
func TestSwizzle2DBijection(t *testing.T) {
	const width, height, shift = 64, 32, 4
	seen := make(map[int64]int64)
	for i := int64(0); i < width*height; i++ {
		s := Swizzle2D(i, width, shift)
		if s < 0 || s >= width*height {
			t.Fatalf("index %d swizzled out of range: %d", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("collision: %d and %d both swizzle to %d", prev, i, s)
		}
		seen[s] = i
	}
}

// Property: row-major neighbors within a tile stay adjacent after swizzle.
func TestSwizzle2DWithinTileRowAdjacency(t *testing.T) {
	const width, shift = 128, 4
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edge := int64(1) << shift
		tx := int64(r.Intn(width / int(edge)))
		ty := int64(r.Intn(8))
		ox := int64(r.Intn(int(edge) - 1))
		oy := int64(r.Intn(int(edge)))
		x, y := tx*edge+ox, ty*edge+oy
		a := Swizzle2D(y*width+x, width, shift)
		b := Swizzle2D(y*width+x+1, width, shift)
		return b == a+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
