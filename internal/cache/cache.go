// Package cache provides the set-associative cache models of the framework:
// the shared L2, the per-SM constant cache, and the per-SM texture cache
// (with 2D block swizzling for 2D textures). These are the "cache models
// based on the cache models in GPGPUSim" of §IV: they take a memory trace,
// filter it, and report hit/miss outcomes plus event counts.
package cache

import (
	"fmt"

	"gpuhms/internal/gpu"
)

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	lineBytes uint64
	lineShift uint // log2(lineBytes) when a power of two, else 0 with lineBytes > 1
	ways      int
	setMask   uint64

	// sets is laid out as sets*ways entries; within a set, tags are kept in
	// recency order (most-recently-used first), so the LRU victim is always
	// the last way. valid is tracked by tag != invalidTag, and invalid ways
	// only ever occupy the tail of a set.
	tags []uint64

	hits   int64
	misses int64
}

const invalidTag = ^uint64(0)

// NewChecked builds a cache from its geometry, rejecting geometries that
// describe no sets (zero or negative sizes, lines, or ways).
func NewChecked(g gpu.CacheGeometry) (*Cache, error) {
	if g.LineBytes <= 0 || g.Ways <= 0 {
		return nil, fmt.Errorf("cache: geometry %+v has no lines or ways", g)
	}
	sets := g.Sets()
	if sets <= 0 {
		return nil, fmt.Errorf("cache: geometry %+v has no sets", g)
	}
	// Round sets down to a power of two so indexing is a mask; geometry in
	// this repo always is one.
	for sets&(sets-1) != 0 {
		sets &^= sets & (-sets)
	}
	c := &Cache{
		lineBytes: uint64(g.LineBytes),
		ways:      g.Ways,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*g.Ways),
	}
	if lb := c.lineBytes; lb&(lb-1) == 0 {
		for lb > 1 {
			c.lineShift++
			lb >>= 1
		}
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c, nil
}

// New is NewChecked for geometries already screened by gpu.Config.Validate
// (every facade entry point validates the Config first); it panics on an
// invalid geometry.
func New(g gpu.CacheGeometry) *Cache {
	c, err := NewChecked(g)
	if err != nil {
		panic(err)
	}
	return c
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return int(c.lineBytes) }

// Access looks up the line containing addr, updating LRU state and counters;
// on a miss the line is filled. Returns true on hit.
//
// LRU is tracked by keeping each set's tags in recency order, so a hit is a
// rotate-to-front and a miss evicts the tail — the same hit/miss sequence as
// timestamped true-LRU without a second metadata array to scan.
func (c *Cache) Access(addr uint64) bool {
	var tag uint64
	if c.lineShift != 0 {
		tag = addr >> c.lineShift
	} else {
		tag = addr / c.lineBytes
	}
	base := int(tag&c.setMask) * c.ways
	set := c.tags[base : base+c.ways : base+c.ways]
	if set[0] == tag {
		c.hits++
		return true
	}
	for i := 1; i < len(set); i++ {
		if set[i] == tag {
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			return true
		}
	}
	c.misses++
	copy(set[1:], set[:len(set)-1])
	set[0] = tag
	return false
}

// Probe reports whether the line containing addr is resident without
// touching LRU state or counters.
func (c *Cache) Probe(addr uint64) bool {
	var tag uint64
	if c.lineShift != 0 {
		tag = addr >> c.lineShift
	} else {
		tag = addr / c.lineBytes
	}
	base := int(tag&c.setMask) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Hits returns the hit count since the last Reset.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the miss count since the last Reset.
func (c *Cache) Misses() int64 { return c.misses }

// Accesses returns hits+misses.
func (c *Cache) Accesses() int64 { return c.hits + c.misses }

// MissRatio returns misses/accesses (0 when no accesses).
func (c *Cache) MissRatio() float64 {
	n := c.Accesses()
	if n == 0 {
		return 0
	}
	return float64(c.misses) / float64(n)
}

// Reset invalidates all lines and clears counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	c.hits, c.misses = 0, 0
}

// Indexer exposes a cache geometry's address decomposition — line tag and
// set index — without any cache state. It applies exactly the rounding rules
// of NewChecked (sets rounded down to a power of two), so Indexer and Cache
// built from the same geometry agree on every address: two addresses collide
// in the Cache iff the Indexer gives them the same tag or the same set. This
// is what lets callers reason about set occupancy analytically (e.g. prove a
// walk can never evict) instead of simulating.
type Indexer struct {
	lineBytes uint64
	lineShift uint
	ways      int
	setMask   uint64
}

// NewIndexer derives the address decomposition of a geometry. Like New, it
// panics on geometries gpu.Config.Validate would reject.
func NewIndexer(g gpu.CacheGeometry) Indexer {
	c := New(g)
	return Indexer{lineBytes: c.lineBytes, lineShift: c.lineShift, ways: c.ways, setMask: c.setMask}
}

// Tag returns the line tag of an address — equal tags mean the same cache
// line.
func (x Indexer) Tag(addr uint64) uint64 {
	if x.lineShift != 0 {
		return addr >> x.lineShift
	}
	return addr / x.lineBytes
}

// Set returns the set index a tag maps to.
func (x Indexer) Set(tag uint64) int { return int(tag & x.setMask) }

// Ways returns the geometry's associativity.
func (x Indexer) Ways() int { return x.ways }

// NumSets returns the number of sets after power-of-two rounding.
func (x Indexer) NumSets() int { return int(x.setMask) + 1 }

// LinesTouched returns the distinct line base addresses referenced by a set
// of byte addresses, ascending. This is the warp-level coalescing unit: each
// distinct line is one memory transaction.
func LinesTouched(addrs []uint64, lineBytes int) []uint64 {
	if len(addrs) == 0 {
		return nil
	}
	return LinesTouchedInto(make([]uint64, 0, 4), addrs, lineBytes)
}

// LinesTouchedInto is LinesTouched appending into dst's storage (dst is
// truncated first), so per-access hot loops can reuse one buffer instead of
// allocating: pass the previous call's result re-sliced to [:0], or any
// scratch slice. The returned slice aliases dst's array when it fits.
func LinesTouchedInto(dst, addrs []uint64, lineBytes int) []uint64 {
	out := dst[:0]
	if len(addrs) == 0 {
		return out
	}
	lb := uint64(lineBytes)
	for _, a := range addrs {
		out = append(out, a/lb*lb)
	}
	// Insertion sort: warp-sized inputs (≤ 32 lanes) are far below the
	// crossover where sort.Slice's interface-boxing overhead pays off, and
	// this keeps the hot path allocation-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	// Deduplicate in place.
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
