// Package cache provides the set-associative cache models of the framework:
// the shared L2, the per-SM constant cache, and the per-SM texture cache
// (with 2D block swizzling for 2D textures). These are the "cache models
// based on the cache models in GPGPUSim" of §IV: they take a memory trace,
// filter it, and report hit/miss outcomes plus event counts.
package cache

import (
	"fmt"

	"gpuhms/internal/gpu"
)

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	lineBytes uint64
	ways      int
	setMask   uint64

	// sets is laid out as sets*ways entries; tags[i] holds the line tag,
	// stamp[i] the LRU timestamp. valid is tracked by tag != invalidTag.
	tags  []uint64
	stamp []uint64
	tick  uint64

	hits   int64
	misses int64
}

const invalidTag = ^uint64(0)

// NewChecked builds a cache from its geometry, rejecting geometries that
// describe no sets (zero or negative sizes, lines, or ways).
func NewChecked(g gpu.CacheGeometry) (*Cache, error) {
	if g.LineBytes <= 0 || g.Ways <= 0 {
		return nil, fmt.Errorf("cache: geometry %+v has no lines or ways", g)
	}
	sets := g.Sets()
	if sets <= 0 {
		return nil, fmt.Errorf("cache: geometry %+v has no sets", g)
	}
	// Round sets down to a power of two so indexing is a mask; geometry in
	// this repo always is one.
	for sets&(sets-1) != 0 {
		sets &^= sets & (-sets)
	}
	c := &Cache{
		lineBytes: uint64(g.LineBytes),
		ways:      g.Ways,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*g.Ways),
		stamp:     make([]uint64, sets*g.Ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c, nil
}

// New is NewChecked for geometries already screened by gpu.Config.Validate
// (every facade entry point validates the Config first); it panics on an
// invalid geometry.
func New(g gpu.CacheGeometry) *Cache {
	c, err := NewChecked(g)
	if err != nil {
		panic(err)
	}
	return c
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return int(c.lineBytes) }

// Access looks up the line containing addr, updating LRU state and counters;
// on a miss the line is filled. Returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	tag := addr / c.lineBytes
	set := int(tag & c.setMask)
	base := set * c.ways
	c.tick++

	victim, oldest := base, c.stamp[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamp[i] = c.tick
			c.hits++
			return true
		}
		if c.tags[i] == invalidTag {
			// Prefer empty ways as victims.
			victim, oldest = i, 0
		} else if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.misses++
	c.tags[victim] = tag
	c.stamp[victim] = c.tick
	return false
}

// Probe reports whether the line containing addr is resident without
// touching LRU state or counters.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr / c.lineBytes
	base := int(tag&c.setMask) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Hits returns the hit count since the last Reset.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the miss count since the last Reset.
func (c *Cache) Misses() int64 { return c.misses }

// Accesses returns hits+misses.
func (c *Cache) Accesses() int64 { return c.hits + c.misses }

// MissRatio returns misses/accesses (0 when no accesses).
func (c *Cache) MissRatio() float64 {
	n := c.Accesses()
	if n == 0 {
		return 0
	}
	return float64(c.misses) / float64(n)
}

// Reset invalidates all lines and clears counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.stamp[i] = 0
	}
	c.tick, c.hits, c.misses = 0, 0, 0
}

// LinesTouched returns the distinct line base addresses referenced by a set
// of byte addresses, ascending. This is the warp-level coalescing unit: each
// distinct line is one memory transaction.
func LinesTouched(addrs []uint64, lineBytes int) []uint64 {
	if len(addrs) == 0 {
		return nil
	}
	return LinesTouchedInto(make([]uint64, 0, 4), addrs, lineBytes)
}

// LinesTouchedInto is LinesTouched appending into dst's storage (dst is
// truncated first), so per-access hot loops can reuse one buffer instead of
// allocating: pass the previous call's result re-sliced to [:0], or any
// scratch slice. The returned slice aliases dst's array when it fits.
func LinesTouchedInto(dst, addrs []uint64, lineBytes int) []uint64 {
	out := dst[:0]
	if len(addrs) == 0 {
		return out
	}
	lb := uint64(lineBytes)
	for _, a := range addrs {
		out = append(out, a/lb*lb)
	}
	// Insertion sort: warp-sized inputs (≤ 32 lanes) are far below the
	// crossover where sort.Slice's interface-boxing overhead pays off, and
	// this keeps the hot path allocation-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	// Deduplicate in place.
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
