// Package queuing implements the G/G/1 queuing approximation the paper uses
// for per-bank DRAM queuing delay (§III-C3, Eq 9–10), plus reference M/M/1
// and classical-Kingman variants for comparison.
//
// Each DRAM bank is modeled as a single server fed by a general arrival
// stream (GPU memory requests arrive in clumps; their inter-arrival
// coefficient of variation c_a can be well above 1) with general service
// times (clustered at the row-buffer hit / miss / conflict latencies).
package queuing

import (
	"fmt"

	"gpuhms/internal/stats"
)

// Variant selects the queuing-delay approximation.
type Variant uint8

const (
	// PaperKingman is Eq 9 exactly as printed in the paper:
	//   W_q ≈ ((c_a + c_s)/2) · (ρ/(1−ρ)) · τ_a
	PaperKingman Variant = iota
	// ClassicKingman is Kingman's standard heavy-traffic approximation:
	//   W_q ≈ ((c_a² + c_s²)/2) · (ρ/(1−ρ)) · τ_s
	ClassicKingman
	// MM1 is the Markovian reference (c_a = c_s = 1):
	//   W_q = (ρ/(1−ρ)) · τ_s
	MM1
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case PaperKingman:
		return "paper-kingman"
	case ClassicKingman:
		return "classic-kingman"
	case MM1:
		return "mm1"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// MaxUtilization caps ρ so the (1−ρ) denominator stays finite: a bank driven
// beyond saturation in the trace is reported as deeply congested rather than
// infinitely slow, matching the closed system (bounded outstanding requests
// per SM) the formula approximates.
const MaxUtilization = 0.995

// Stream summarizes the arrival and service processes observed at one
// server (one memory bank): mean and standard deviation of inter-arrival
// times (τ_a, σ_a) and service times (τ_s, σ_s), in any consistent time
// unit.
type Stream struct {
	TauA, SigmaA float64 // inter-arrival mean / stddev
	TauS, SigmaS float64 // service (occupancy) mean / stddev
	// AccessNS is the mean end-to-end access latency of the server's
	// requests (row-buffer-dependent, Eq 8). For DRAM banks the occupancy
	// TauS bounds throughput and hence queuing, while AccessNS is what a
	// request experiences once served. Zero means "use TauS".
	AccessNS float64
	// Batch is the mean arrival batch size: GPU memory requests "arrive in
	// clumps" (§III-C3); a batch of B requests hitting an idle server still
	// waits (B−1)/2 services on average, a delay the heavy-traffic Kingman
	// term misses at low utilization.
	Batch float64
	N     int64 // number of requests observed
}

// StreamFromSamples computes a Stream summary from raw samples.
func StreamFromSamples(interArrival, service []float64) Stream {
	return Stream{
		TauA:   stats.Mean(interArrival),
		SigmaA: stats.StdDev(interArrival),
		TauS:   stats.Mean(service),
		SigmaS: stats.StdDev(service),
		N:      int64(len(service)),
	}
}

// Ca returns the coefficient of variation of the inter-arrival times
// (Eq 10).
func (s Stream) Ca() float64 {
	if s.TauA == 0 {
		return 0
	}
	return s.SigmaA / s.TauA
}

// Cs returns the coefficient of variation of the service times (Eq 10).
func (s Stream) Cs() float64 {
	if s.TauS == 0 {
		return 0
	}
	return s.SigmaS / s.TauS
}

// Lambda returns the average arrival rate λ = 1/τ_a.
func (s Stream) Lambda() float64 {
	if s.TauA == 0 {
		return 0
	}
	return 1 / s.TauA
}

// Rho returns the server utilization ρ = τ_s/τ_a, capped at MaxUtilization.
func (s Stream) Rho() float64 {
	if s.TauA == 0 {
		return 0
	}
	rho := s.TauS / s.TauA
	if rho > MaxUtilization {
		rho = MaxUtilization
	}
	if rho < 0 {
		rho = 0
	}
	return rho
}

// QueuingDelay returns the average queuing delay W_q for the stream under
// the chosen variant, in the stream's time unit.
func QueuingDelay(s Stream, v Variant) float64 {
	if s.N == 0 || s.TauA == 0 || s.TauS == 0 {
		return 0
	}
	rho := s.Rho()
	congestion := rho / (1 - rho)
	// Batch-arrival correction (M[X]/G/1-style): each request in a batch of
	// B waits on average (B−1)/2 services of its batch-mates, regardless of
	// long-run utilization.
	batch := 0.0
	if s.Batch > 1 {
		batch = (s.Batch - 1) / 2 * s.TauS
	}
	// The heavy-traffic term diverges as ρ approaches the cap; physically, a
	// request can never wait longer than the server's entire backlog over
	// the observation window, N services.
	backlog := float64(s.N) * s.TauS
	var w float64
	switch v {
	case PaperKingman:
		w = (s.Ca() + s.Cs()) / 2 * congestion * s.TauA
	case ClassicKingman:
		ca, cs := s.Ca(), s.Cs()
		w = (ca*ca + cs*cs) / 2 * congestion * s.TauS
	case MM1:
		return congestion * s.TauS
	}
	if w > backlog {
		w = backlog
	}
	// Burstiness drives both terms — the heavy-traffic term through c_a and
	// the batch term directly — so summing them double-counts; the larger
	// one dominates the wait.
	if batch > w {
		return batch
	}
	return w
}

// BankLatency returns the average memory access latency of one bank:
// queuing delay plus average service latency (Eq 6).
func BankLatency(s Stream, v Variant) float64 {
	access := s.AccessNS
	if access == 0 {
		access = s.TauS
	}
	return QueuingDelay(s, v) + access
}

// SystemLatency combines per-bank latencies into the system-wide average
// DRAM access latency, weighting each bank by its arrival rate (Eq 7).
// Over a common observation window the arrival rate λ_i is proportional to
// the bank's request count, so the weights are the per-bank N values — this
// avoids over-weighting banks whose few requests arrive in one tight burst.
func SystemLatency(banks []Stream, v Variant) float64 {
	var sumN, acc float64
	for _, b := range banks {
		sumN += float64(b.N)
	}
	if sumN == 0 {
		return 0
	}
	for _, b := range banks {
		if b.N == 0 {
			continue
		}
		acc += float64(b.N) / sumN * BankLatency(b, v)
	}
	return acc
}
