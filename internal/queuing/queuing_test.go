package queuing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamDerivedQuantities(t *testing.T) {
	s := Stream{TauA: 10, SigmaA: 5, TauS: 4, SigmaS: 2, N: 100}
	if got := s.Ca(); got != 0.5 {
		t.Errorf("Ca = %g", got)
	}
	if got := s.Cs(); got != 0.5 {
		t.Errorf("Cs = %g", got)
	}
	if got := s.Lambda(); got != 0.1 {
		t.Errorf("Lambda = %g", got)
	}
	if got := s.Rho(); got != 0.4 {
		t.Errorf("Rho = %g", got)
	}
}

func TestRhoCap(t *testing.T) {
	// Overloaded server: ρ computed > 1 must be capped below 1 so the
	// congestion term stays finite.
	s := Stream{TauA: 1, TauS: 10, N: 10}
	if rho := s.Rho(); rho != MaxUtilization {
		t.Errorf("Rho = %g, want cap %g", rho, MaxUtilization)
	}
	if w := QueuingDelay(s, PaperKingman); math.IsInf(w, 1) || math.IsNaN(w) {
		t.Errorf("overloaded delay = %g", w)
	}
}

func TestZeroStreams(t *testing.T) {
	if w := QueuingDelay(Stream{}, PaperKingman); w != 0 {
		t.Errorf("empty stream delay = %g", w)
	}
	if w := QueuingDelay(Stream{TauA: 5, N: 3}, PaperKingman); w != 0 {
		t.Errorf("no-service stream delay = %g", w)
	}
}

func TestMM1MatchesClosedForm(t *testing.T) {
	// M/M/1: W_q = ρ/(1−ρ)·τ_s.
	s := Stream{TauA: 10, SigmaA: 10, TauS: 5, SigmaS: 5, N: 1000}
	want := 0.5 / 0.5 * 5.0
	if got := QueuingDelay(s, MM1); math.Abs(got-want) > 1e-12 {
		t.Errorf("MM1 delay = %g, want %g", got, want)
	}
}

func TestPaperKingmanFormula(t *testing.T) {
	// Eq 9 as printed: ((c_a+c_s)/2)·(ρ/(1−ρ))·τ_a, below the backlog cap.
	s := Stream{TauA: 10, SigmaA: 10, TauS: 5, SigmaS: 0, N: 1000}
	// c_a=1, c_s=0, ρ=0.5 → 0.5·1·10 = 5.
	if got := QueuingDelay(s, PaperKingman); math.Abs(got-5) > 1e-12 {
		t.Errorf("paper Kingman delay = %g, want 5", got)
	}
}

func TestClassicKingmanFormula(t *testing.T) {
	// ((c_a²+c_s²)/2)·(ρ/(1−ρ))·τ_s.
	s := Stream{TauA: 10, SigmaA: 10, TauS: 5, SigmaS: 0, N: 1000}
	// (1+0)/2 · 1 · 5 = 2.5.
	if got := QueuingDelay(s, ClassicKingman); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("classic Kingman delay = %g, want 2.5", got)
	}
}

func TestBacklogCap(t *testing.T) {
	// Extremely bursty arrivals with few requests: the congestion term must
	// not exceed N·τ_s.
	s := Stream{TauA: 0.001, SigmaA: 10, TauS: 5, SigmaS: 0, N: 8}
	w := QueuingDelay(s, PaperKingman)
	if w > float64(s.N)*s.TauS+1e-9 {
		t.Errorf("delay %g exceeds backlog bound %g", w, float64(s.N)*s.TauS)
	}
}

func TestBatchTerm(t *testing.T) {
	// A batch of B arrivals at an idle server waits (B−1)/2 services on
	// average even at negligible utilization.
	s := Stream{TauA: 1000, SigmaA: 0, TauS: 4, SigmaS: 0, Batch: 9, N: 900}
	w := QueuingDelay(s, PaperKingman)
	want := 4.0 * 4 // (9−1)/2 × 4
	if math.Abs(w-want) > 0.5 {
		t.Errorf("batch delay = %g, want ≈ %g", w, want)
	}
	// Batch ≤ 1 adds nothing.
	s.Batch = 1
	if w := QueuingDelay(s, PaperKingman); w > 0.1 {
		t.Errorf("no-batch delay = %g", w)
	}
}

// Property: queuing delay is non-negative and, for fixed service process,
// non-decreasing as arrivals speed up (τ_a shrinks).
func TestDelayMonotoneInArrivalRate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tauS := 1 + r.Float64()*10
		sigmaS := r.Float64() * tauS
		sigmaA := r.Float64() * 20
		n := int64(10 + r.Intn(1000))
		prev := -1.0
		for _, tauA := range []float64{100, 50, 25, 12, 6, 3} {
			s := Stream{TauA: tauA, SigmaA: sigmaA, TauS: tauS, SigmaS: sigmaS, N: n}
			w := QueuingDelay(s, ClassicKingman)
			if w < 0 || w+1e-9 < prev {
				return false
			}
			prev = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBankLatencyUsesAccessLatency(t *testing.T) {
	// With a separate access latency set, the bank latency is Wq + access,
	// not Wq + occupancy.
	s := Stream{TauA: 100, SigmaA: 0, TauS: 8, SigmaS: 0, AccessNS: 352, N: 50}
	wq := QueuingDelay(s, PaperKingman)
	if got := BankLatency(s, PaperKingman); math.Abs(got-(wq+352)) > 1e-9 {
		t.Errorf("BankLatency = %g, want %g", got, wq+352)
	}
	// Without AccessNS, fall back to TauS.
	s.AccessNS = 0
	if got := BankLatency(s, PaperKingman); math.Abs(got-(wq+8)) > 1e-9 {
		t.Errorf("BankLatency fallback = %g, want %g", got, wq+8)
	}
}

func TestSystemLatencyWeighting(t *testing.T) {
	// Eq 7: banks weighted by their request counts.
	a := Stream{TauA: 100, TauS: 8, AccessNS: 300, N: 300}
	b := Stream{TauA: 100, TauS: 8, AccessNS: 600, N: 100}
	got := SystemLatency([]Stream{a, b}, MM1)
	la, lb := BankLatency(a, MM1), BankLatency(b, MM1)
	want := 0.75*la + 0.25*lb
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SystemLatency = %g, want %g", got, want)
	}
	if SystemLatency(nil, MM1) != 0 {
		t.Error("empty system should be 0")
	}
	if SystemLatency([]Stream{{N: 0}}, MM1) != 0 {
		t.Error("all-idle system should be 0")
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		PaperKingman:   "paper-kingman",
		ClassicKingman: "classic-kingman",
		MM1:            "mm1",
		Variant(9):     "Variant(9)",
	} {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
}

func TestStreamFromSamples(t *testing.T) {
	s := StreamFromSamples([]float64{2, 4, 6}, []float64{1, 1, 1, 1})
	if s.TauA != 4 || s.TauS != 1 || s.N != 4 {
		t.Errorf("unexpected stream %+v", s)
	}
	if s.SigmaS != 0 {
		t.Errorf("constant service stddev = %g", s.SigmaS)
	}
}
