package experiments

import "testing"

// TestValidateSweep runs the whole-corpus acceptance sweep: every kernel's
// placements predicted and measured, with bounded error and mostly-correct
// best-placement picks.
func TestValidateSweep(t *testing.T) {
	rep, err := sharedCtx.Validate()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	if len(rep.Rows) < 20 {
		t.Fatalf("only %d kernels swept", len(rep.Rows))
	}
	if mean := rep.MeanError(); mean > 30 {
		t.Errorf("grand mean error %.1f%% too high", mean)
	}
	if rate := rep.BestAgreementRate(); rate < 0.5 {
		t.Errorf("best-placement agreement %.0f%% too low", 100*rate)
	}
	for _, row := range rep.Rows {
		if row.Placements < 2 {
			t.Errorf("%s swept only %d placements", row.Kernel, row.Placements)
		}
		if row.MaxErrPct > 150 {
			t.Errorf("%s max error %.1f%% — model diverged", row.Kernel, row.MaxErrPct)
		}
	}
}

// TestSensitivitySweep checks the HMS design-space exploration: across
// perturbed architectures the advisor's picks must mostly match the
// simulated hardware's best, and never cost much when they don't.
func TestSensitivitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("re-trains per architecture; skipped in -short")
	}
	rep, err := sharedCtx.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	if len(rep.Rows) != len(SensitivityKernels)*5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rate := rep.AgreementRate(); rate < 0.6 {
		t.Errorf("agreement rate %.0f%% too low", 100*rate)
	}
	if regret := rep.MeanRegret(); regret > 15 {
		t.Errorf("mean regret %.1f%% too high", regret)
	}
	if regret := rep.MaxRegret(); regret > 30 {
		t.Errorf("worst regret %.1f%% too high", regret)
	}
}
