package experiments

import (
	"testing"

	"gpuhms/internal/gpu"
)

// TestAblations checks the §V-B ordering: each added modeling technique
// reduces mean prediction error, and the combination beats each alone.
func TestAblations(t *testing.T) {
	c := NewContext(gpu.KeplerK80(), 1)

	fig7, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", fig7.Render())
	base := fig7.MeanError("baseline")
	ic := fig7.MeanError("baseline+instr-counting")
	t.Logf("Fig7: baseline=%.1f%% +IC=%.1f%% improvement=%.1f%%", 100*base, 100*ic, 100*fig7.Improvement("baseline", "baseline+instr-counting"))
	if ic >= base {
		t.Errorf("instruction counting should improve on the baseline (%.1f%% vs %.1f%%)", 100*ic, 100*base)
	}

	fig8, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", fig8.Render())
	qe := fig8.MeanError("baseline+ic+queue(even)")
	full := fig8.MeanError("our-model")
	t.Logf("Fig8: +queue(even)=%.1f%% full=%.1f%%", 100*qe, 100*full)
	if full >= qe {
		t.Errorf("address mapping should improve on even distribution (%.1f%% vs %.1f%%)", 100*full, 100*qe)
	}
	if qe >= base {
		t.Errorf("queuing(even)+IC should improve on baseline (%.1f%% vs %.1f%%)", 100*qe, 100*base)
	}

	fig9, err := c.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", fig9.Render())
	q := fig9.MeanError("baseline+queue")
	t.Logf("Fig9: baseline=%.1f%% +queue=%.1f%% full=%.1f%%", 100*base, 100*q, 100*full)
	if q >= base {
		t.Errorf("queuing alone should improve on baseline (%.1f%% vs %.1f%%)", 100*q, 100*base)
	}
	if full >= q {
		t.Errorf("full model should beat queuing alone (%.1f%% vs %.1f%%)", 100*full, 100*q)
	}
}
