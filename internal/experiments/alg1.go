package experiments

import (
	"fmt"
	"strings"

	"gpuhms/internal/microbench"
)

// Alg1Report is the address-mapping detection outcome together with the
// ground-truth mapping it should recover.
type Alg1Report struct {
	Detection *microbench.Result
	Truth     string
	// Correct reports whether every probed bit was classified according to
	// the configured mapping.
	Correct bool
	// Mismatches lists mis-classified bits, if any.
	Mismatches []uint
}

// Alg1 runs Algorithm 1 against the modeled DRAM and cross-checks the
// detected row/column bits against the configured mapping. The paper's K80
// measurement (hit 352 ns, miss 742 ns, conflict 1008 ns) is the calibration
// source of the DRAM latencies, so the latencies must round-trip exactly.
func (c *Context) Alg1() (*Alg1Report, error) {
	mapping := c.DefaultMapping()
	hi := mapping.RowLo + mapping.RowBits
	det := microbench.Detect(c.Cfg.DRAM, mapping, 0, hi)

	rep := &Alg1Report{Detection: det, Truth: mapping.String(), Correct: true}
	for bit := uint(0); bit < hi; bit++ {
		var want microbench.BitClass
		switch {
		case mapping.IsRowBit(bit):
			want = microbench.RowBit
		case mapping.IsBankBit(bit):
			want = microbench.BankBit
		default:
			// Column bits and byte-offset bits both keep the open row.
			want = microbench.ColumnBit
		}
		if det.Classes[bit] != want {
			rep.Correct = false
			rep.Mismatches = append(rep.Mismatches, bit)
		}
	}
	return rep, nil
}

// Render prints the detection like §III-C2 reports it.
func (r *Alg1Report) Render() string {
	var b strings.Builder
	b.WriteString("Algorithm 1: address-mapping detection via one-bit-apart probe pairs\n")
	b.WriteString(r.Detection.Format())
	fmt.Fprintf(&b, "configured mapping:          %s\n", r.Truth)
	if r.Correct {
		b.WriteString("detection matches the configured mapping for every probed bit\n")
	} else {
		fmt.Fprintf(&b, "MISMATCHED bits: %v\n", r.Mismatches)
	}
	return b.String()
}
