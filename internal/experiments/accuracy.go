package experiments

import (
	"fmt"
	"math"
	"strings"

	"gpuhms/internal/baseline"
	"gpuhms/internal/core"
	"gpuhms/internal/stats"
)

// AccuracyRow is one data placement's measured time and per-variant
// predictions.
type AccuracyRow struct {
	Label      string
	Kernel     string
	Placement  string
	MeasuredNS float64
	Predicted  map[string]float64 // by variant name
}

// Normalized returns predicted/measured for one variant — the y-axis of
// Figs 5 and 7–9.
func (r *AccuracyRow) Normalized(variant string) float64 {
	if r.MeasuredNS == 0 {
		return 0
	}
	return r.Predicted[variant] / r.MeasuredNS
}

// AccuracyReport is the outcome of one model-accuracy experiment.
type AccuracyReport struct {
	Title    string
	Variants []string
	Rows     []AccuracyRow
}

// MeanError returns the arithmetic average prediction error of a variant
// (the paper's "arithmetic average prediction error is 9.9%").
func (r *AccuracyReport) MeanError(variant string) float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	s := 0.0
	for _, row := range r.Rows {
		s += stats.RelError(row.Predicted[variant], row.MeasuredNS)
	}
	return s / float64(len(r.Rows))
}

// Improvement returns the mean-error reduction of variant b relative to
// variant a, as a fraction of a's error (the paper's "improve performance
// prediction accuracy by 17.6%" style of statement).
func (r *AccuracyReport) Improvement(a, b string) float64 {
	ea, eb := r.MeanError(a), r.MeanError(b)
	if ea == 0 {
		return 0
	}
	return (ea - eb) / ea
}

// Render prints the report as a fixed-width table of normalized predictions
// plus the per-variant mean errors.
func (r *AccuracyReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-16s %-34s %12s", "case", "placement", "measured(ns)")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, " %22s", v)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-34s %12.0f", row.Label, row.Placement, row.MeasuredNS)
		for _, v := range r.Variants {
			fmt.Fprintf(&b, " %13.0f (%5.2fx)", row.Predicted[v], row.Normalized(v))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-64s", "arithmetic mean prediction error")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, " %21.1f%%", 100*r.MeanError(v))
	}
	b.WriteByte('\n')
	return b.String()
}

// RunAccuracy evaluates the given model variants on the evaluation
// placements (Table IV top half).
func (c *Context) RunAccuracy(title string, variants []baseline.Variant) (*AccuracyReport, error) {
	cases, err := c.Cases(EvalKernels(), false)
	if err != nil {
		return nil, err
	}
	if err := c.Prewarm(cases); err != nil {
		return nil, err
	}
	rep := &AccuracyReport{Title: title}
	models := make([]*core.Model, len(variants))
	for i, v := range variants {
		rep.Variants = append(rep.Variants, v.Name)
		m, err := c.Model(v)
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.Name, err)
		}
		models[i] = m
	}

	// One predictor per (kernel, variant).
	type pk struct{ kernel, variant string }
	predictors := make(map[pk]*core.Predictor)
	for _, cs := range cases {
		meas, err := c.Measure(cs.Kernel, cs.Sample, cs.Target)
		if err != nil {
			return nil, err
		}
		row := AccuracyRow{
			Label:      cs.Label,
			Kernel:     cs.Kernel,
			Placement:  cs.Target.Format(cs.Trace),
			MeasuredNS: meas.TimeNS,
			Predicted:  make(map[string]float64, len(variants)),
		}
		for i, v := range variants {
			key := pk{cs.Kernel, v.Name}
			pr, ok := predictors[key]
			if !ok {
				prof, err := c.Measure(cs.Kernel, cs.Sample, cs.Sample)
				if err != nil {
					return nil, err
				}
				pr, err = core.NewPredictor(models[i], cs.Trace, cs.Sample,
					core.SampleProfile{TimeNS: prof.TimeNS, Events: prof.Events})
				if err != nil {
					return nil, err
				}
				predictors[key] = pr
			}
			pred, err := pr.Predict(cs.Target)
			if err != nil {
				return nil, err
			}
			if math.IsNaN(pred.TimeNS) {
				return nil, fmt.Errorf("%s/%s: NaN prediction", cs.Label, v.Name)
			}
			row.Predicted[v.Name] = pred.TimeNS
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Fig5 compares the full model against Sim et al. [7] on the evaluation
// placements (paper: 9.9% average error; 17.6% average improvement).
func (c *Context) Fig5() (*AccuracyReport, error) {
	return c.RunAccuracy("Fig 5: predicted performance normalized to measured — ours vs [7]",
		[]baseline.Variant{baseline.Ours(), baseline.SimEtAl()})
}

// Fig7 isolates the detailed instruction counting (paper: +17% accuracy).
func (c *Context) Fig7() (*AccuracyReport, error) {
	return c.RunAccuracy("Fig 7: impact of detailed instruction counting",
		[]baseline.Variant{baseline.Baseline(), baseline.BaselineIC()})
}

// Fig8 adds the queuing model on top of instruction counting, without and
// with address mapping (paper: +31% over baseline; address mapping adds
// 8.1%).
func (c *Context) Fig8() (*AccuracyReport, error) {
	return c.RunAccuracy("Fig 8: impact of the queuing model (instruction counting in place)",
		[]baseline.Variant{baseline.Baseline(), baseline.BaselineIC(),
			baseline.BaselineICQueueEven(), baseline.Ours()})
}

// Fig9 isolates the queuing model without instruction counting (paper:
// +13.8% alone; both techniques combine to +39.1%).
func (c *Context) Fig9() (*AccuracyReport, error) {
	return c.RunAccuracy("Fig 9: impact of the queuing model alone",
		[]baseline.Variant{baseline.Baseline(), baseline.BaselineQueue(), baseline.Ours()})
}
