package experiments

import (
	"math"
	"strings"
	"testing"
)

func sampleReport() *AccuracyReport {
	return &AccuracyReport{
		Title:    "t",
		Variants: []string{"a", "b"},
		Rows: []AccuracyRow{
			{Label: "x", Placement: "p1", MeasuredNS: 100,
				Predicted: map[string]float64{"a": 110, "b": 150}},
			{Label: "y", Placement: "p2", MeasuredNS: 200,
				Predicted: map[string]float64{"a": 180, "b": 100}},
		},
	}
}

func TestAccuracyRowNormalized(t *testing.T) {
	r := sampleReport().Rows[0]
	if got := r.Normalized("a"); got != 1.1 {
		t.Errorf("normalized = %g", got)
	}
	zero := AccuracyRow{MeasuredNS: 0, Predicted: map[string]float64{"a": 5}}
	if zero.Normalized("a") != 0 {
		t.Error("zero measured must normalize to 0")
	}
}

func TestAccuracyMeanErrorAndImprovement(t *testing.T) {
	rep := sampleReport()
	// a: |10|/100 and |20|/200 → (0.10+0.10)/2 = 0.10
	// b: |50|/100 and |100|/200 → (0.5+0.5)/2 = 0.50
	if got := rep.MeanError("a"); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("mean error a = %g", got)
	}
	if got := rep.MeanError("b"); math.Abs(got-0.50) > 1e-12 {
		t.Errorf("mean error b = %g", got)
	}
	if got := rep.Improvement("b", "a"); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("improvement = %g", got)
	}
	empty := &AccuracyReport{}
	if empty.MeanError("a") != 0 || empty.Improvement("a", "b") != 0 {
		t.Error("empty report must report zeros")
	}
}

func TestAccuracyRender(t *testing.T) {
	out := sampleReport().Render()
	for _, want := range []string{"t\n", "p1", "p2", "1.10x", "mean prediction error"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSensitivityHelpers(t *testing.T) {
	rep := &SensitivityReport{Rows: []SensitivityRow{
		{Agree: true, RegretPct: 0},
		{Agree: false, RegretPct: 5},
		{Agree: true, RegretPct: 0},
		{Agree: false, RegretPct: 12},
	}}
	if got := rep.AgreementRate(); got != 0.5 {
		t.Errorf("agreement = %g", got)
	}
	if got := rep.MaxRegret(); got != 12 {
		t.Errorf("max regret = %g", got)
	}
	out := rep.Render()
	if !strings.Contains(out, "agreement 50%") || !strings.Contains(out, "worst regret 12.0%") {
		t.Errorf("sensitivity render:\n%s", out)
	}
	empty := &SensitivityReport{}
	if empty.AgreementRate() != 0 || empty.MaxRegret() != 0 {
		t.Error("empty sensitivity report must report zeros")
	}
}

func TestValidateHelpers(t *testing.T) {
	rep := &ValidateReport{Rows: []ValidateRow{
		{Kernel: "a", MeanErrPct: 10, BestAgree: true},
		{Kernel: "b", MeanErrPct: 30, BestAgree: false},
	}}
	if got := rep.MeanError(); got != 20 {
		t.Errorf("grand mean = %g", got)
	}
	if got := rep.BestAgreementRate(); got != 0.5 {
		t.Errorf("best agreement = %g", got)
	}
	if !strings.Contains(rep.Render(), "grand mean error 20.0%") {
		t.Error("validate render missing summary")
	}
	empty := &ValidateReport{}
	if empty.MeanError() != 0 || empty.BestAgreementRate() != 0 {
		t.Error("empty validate report must report zeros")
	}
}

func TestRankOrderStable(t *testing.T) {
	xs := []float64{3, 1, 2, 1}
	order := rankOrder(xs, func(x float64) float64 { return x })
	want := []int{1, 3, 2, 0} // ties keep input order (stable)
	if !equalInts(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	if equalInts([]int{1}, []int{1, 2}) {
		t.Error("length mismatch should be unequal")
	}
}
