package experiments

import (
	"fmt"
	"strings"

	"gpuhms/internal/kernels"
	"gpuhms/internal/trace"
)

// Table4Row is one benchmark's inventory entry.
type Table4Row struct {
	Kernel     string
	Suite      string
	KernelName string
	Sample     string
	Tests      []string
	Arrays     []trace.Array
	Warps      int
	Training   bool
}

// Table4Report reproduces Table IV: the benchmark and data placement test
// inventory, split into evaluation and training halves.
type Table4Report struct {
	Rows []Table4Row
}

// Table4 enumerates every registered kernel.
func (c *Context) Table4() (*Table4Report, error) {
	rep := &Table4Report{}
	for _, name := range kernels.Names() {
		spec := kernels.MustGet(name)
		t := c.Trace(name)
		rep.Rows = append(rep.Rows, Table4Row{
			Kernel:     name,
			Suite:      spec.Suite,
			KernelName: spec.KernelName,
			Sample:     orDefault(spec.Sample, "(all global)"),
			Tests:      spec.PlacementTests,
			Arrays:     t.Arrays,
			Warps:      t.Launch.TotalWarps(),
			Training:   spec.Training,
		})
	}
	return rep, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// Render prints the inventory in Table IV's split.
func (r *Table4Report) Render() string {
	var b strings.Builder
	b.WriteString("Table IV: benchmarks and data placement tests (count includes the sample placement)\n")
	section := func(training bool, title string) {
		fmt.Fprintf(&b, "\n%s\n", title)
		for _, row := range r.Rows {
			if row.Training != training {
				continue
			}
			fmt.Fprintf(&b, "%s:%s(%d)  kernel=%s  sample=%s  warps=%d\n",
				row.Suite, row.Kernel, len(row.Tests)+1, row.KernelName, row.Sample, row.Warps)
			var arrays []string
			for _, a := range row.Arrays {
				tag := ""
				if a.ReadOnly {
					tag = " ro"
				}
				if a.Is2D() {
					tag += fmt.Sprintf(" %dx%d", a.Height(), a.Width)
				}
				arrays = append(arrays, fmt.Sprintf("%s(%s %dB%s)", a.Name, a.Type, a.Bytes(), tag))
			}
			fmt.Fprintf(&b, "    arrays: %s\n", strings.Join(arrays, ", "))
			for _, tst := range row.Tests {
				fmt.Fprintf(&b, "    test: %s\n", tst)
			}
		}
	}
	section(false, "Benchmarks for evaluation")
	section(true, "Benchmarks for training T_overlap")
	return b.String()
}
