package experiments

import (
	"strings"
	"testing"

	"gpuhms/internal/baseline"
	"gpuhms/internal/gpu"
	"gpuhms/internal/stats"
)

// sharedCtx memoizes measurements across the experiment tests in this file.
var sharedCtx = NewContext(gpu.KeplerK80(), 1)

func TestTable1(t *testing.T) {
	rep, err := sharedCtx.Table1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	if len(rep.Rows) != len(Table1Kernels) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// The paper's finding: issued instructions and issue slots track the
	// execution-time variation across placements for most kernels.
	passIssued := 0
	for _, row := range rep.Rows {
		if row.Placements < 2 {
			t.Errorf("%s has %d placements", row.Kernel, row.Placements)
		}
		for ev, v := range row.Sim {
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s/%s similarity %g out of [0,1]", row.Kernel, ev, v)
			}
		}
		if row.Sim["inst_issued"] >= Table1Threshold {
			passIssued++
		}
	}
	if passIssued < len(rep.Rows)-1 {
		t.Errorf("inst_issued above threshold for only %d/%d kernels",
			passIssued, len(rep.Rows))
	}
	// Mean similarity of the five representative events must be high.
	for _, ev := range Table1Events {
		if m := stats.Mean(rep.AllEvents[ev]); m < 0.85 {
			t.Errorf("representative event %s mean similarity %g", ev, m)
		}
	}
}

func TestFig2(t *testing.T) {
	rep, err := sharedCtx.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	// The Fig 2 counts.
	if rep.PerAccess[gpu.Global][0] != 2 || rep.PerAccess[gpu.Texture1D][0] != 0 {
		t.Error("global/texture addressing counts wrong")
	}
	// The analytical executed-instruction delta must equal the simulator's
	// measured delta for every vecAdd placement (no algorithm change).
	for _, row := range rep.VecAddRows {
		if row.ExecutedDelta != row.MeasuredDelta {
			t.Errorf("%s: model Δ %d vs measured Δ %d",
				row.Placement, row.ExecutedDelta, row.MeasuredDelta)
		}
	}
}

func TestAlg1(t *testing.T) {
	rep, err := sharedCtx.Alg1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	if !rep.Correct {
		t.Errorf("detection mismatched bits %v", rep.Mismatches)
	}
	d := rep.Detection
	if d.HitLatencyNS != 352 || d.MissLatencyNS != 742 || d.ConflictLatencyNS != 1008 {
		t.Errorf("latencies %g/%g/%g, want the paper's 352/742/1008",
			d.HitLatencyNS, d.MissLatencyNS, d.ConflictLatencyNS)
	}
}

func TestFig4(t *testing.T) {
	rep, err := sharedCtx.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Samples < 100 {
			t.Errorf("%s has only %d samples", row.Kernel, row.Samples)
		}
		// The paper's core claim: GPU inter-arrival streams are bursty —
		// c_a well above the exponential's 1 for at least the gather-heavy
		// kernels.
		if row.Kernel == "md" && row.CaMean < 1.2 {
			t.Errorf("md c_a = %g, expected clearly > 1", row.CaMean)
		}
	}
}

func TestFig6(t *testing.T) {
	rep, err := sharedCtx.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	oursExact, _ := rep.RankAccuracy(func(r Fig6Row) int { return r.OursRank })
	if !oursExact {
		t.Error("our model must rank the five placements exactly (the Fig 6 claim)")
	}
	porpleExact, porpleFoot := rep.RankAccuracy(func(r Fig6Row) int { return r.PORPLERank })
	if porpleExact {
		t.Error("PORPLE ranking exactly would contradict the Fig 6 narrative")
	}
	if porpleFoot == 0 {
		t.Error("PORPLE footrule distance should be positive")
	}
}

func TestTable4(t *testing.T) {
	rep, err := sharedCtx.Table4()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	t.Logf("\n%s", out)
	if !strings.Contains(out, "Benchmarks for evaluation") ||
		!strings.Contains(out, "Benchmarks for training T_overlap") {
		t.Error("Table IV must show both halves")
	}
	if !strings.Contains(out, "SHOC:spmv(10)") {
		t.Error("spmv should list 10 placements including the sample")
	}
	if !strings.Contains(out, "kernelFeedForward1") {
		t.Error("neuralnet kernel name missing")
	}
}

func TestRunRegistry(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Errorf("registry has %d experiments", len(names))
	}
	var sb strings.Builder
	if err := Run(sharedCtx, "fig2", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "==== fig2 ====") {
		t.Error("render missing banner")
	}
	if err := Run(sharedCtx, "nope", &sb); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestCasesEnumeration(t *testing.T) {
	cases, err := sharedCtx.Cases([]string{"neuralnet"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 5 { // sample + 4 tests
		t.Fatalf("cases = %d", len(cases))
	}
	if !cases[0].IsSample {
		t.Error("first case should be the sample")
	}
	labels := map[string]bool{}
	for _, cs := range cases[1:] {
		labels[cs.Label] = true
	}
	for _, want := range []string{"NN_C", "NN_S", "NN_T", "NN_2T"} {
		if !labels[want] {
			t.Errorf("missing label %s (have %v)", want, labels)
		}
	}
}

func TestTrainingMemoization(t *testing.T) {
	v := struct{ a, b []float64 }{}
	var err error
	v.a, err = sharedCtx.TrainOverlap(baseline.Ours())
	if err != nil {
		t.Fatal(err)
	}
	v.b, err = sharedCtx.TrainOverlap(baseline.Ours())
	if err != nil {
		t.Fatal(err)
	}
	if &v.a[0] != &v.b[0] {
		t.Error("training should be memoized per variant")
	}
	if len(v.a) != 7 {
		t.Errorf("coefficient count = %d, want 7 (Eq 11)", len(v.a))
	}
}
