package experiments

import (
	"testing"

	"gpuhms/internal/baseline"
	"gpuhms/internal/core"
	"gpuhms/internal/gpu"
)

// TestDebugComponents dumps the Eq 1 decomposition of the worst-predicted
// evaluation rows (development aid, kept as a living diagnostic).
func TestDebugComponents(t *testing.T) {
	c := NewContext(gpu.KeplerK80(), 1)
	m, err := c.Model(baseline.Ours())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coeffs=%v", m.Opts.OverlapCoeffs)
	cases, err := c.Cases([]string{"reduction", "neuralnet", "s3d", "fft", "sort"}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range cases {
		prof, err := c.Measure(cs.Kernel, cs.Sample, cs.Sample)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := core.NewPredictor(m, cs.Trace, cs.Sample,
			core.SampleProfile{TimeNS: prof.TimeNS, Events: prof.Events})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := pr.Predict(cs.Target)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := c.Measure(cs.Kernel, cs.Sample, cs.Target)
		if err != nil {
			t.Fatal(err)
		}
		an := pred.Analysis
		t.Logf("%-14s meas=%8.0f pred=%8.0f (%.2fx) Tc=%7.0f Tm=%7.0f To=%7.0f AMAT=%5.0f dram=%5.0f q=%4.0f exec=%d rep=%d mem=%d mlp=%.1f feats=%v",
			cs.Label, meas.TimeNS, pred.TimeNS, pred.TimeNS/meas.TimeNS,
			pred.TComp, pred.TMem, pred.TOverlap, pred.AMAT, pred.DRAMLatNS, pred.QueueDelayNS,
			an.Executed, an.Replays14, an.MemInsts, an.MLP, pred.Events.OverlapFeatures())
	}
}
