package experiments

import (
	"testing"

	"gpuhms/internal/gpu"
)

// TestFig5 checks the headline result's shape: the full model is more
// accurate on the evaluation placements than the Sim-et-al comparator.
func TestFig5(t *testing.T) {
	c := NewContext(gpu.KeplerK80(), 1)
	rep, err := c.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	ours := rep.MeanError("our-model")
	theirs := rep.MeanError("sim-etal-ppopp12")
	t.Logf("mean error ours=%.1f%% sim-etal=%.1f%% improvement=%.1f%%",
		100*ours, 100*theirs, 100*rep.Improvement("sim-etal-ppopp12", "our-model"))
	if ours >= theirs {
		t.Errorf("full model (%.1f%%) should beat Sim et al. (%.1f%%)", 100*ours, 100*theirs)
	}
	if ours > 0.35 {
		t.Errorf("full model error %.1f%% too high", 100*ours)
	}
}
