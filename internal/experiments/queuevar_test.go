package experiments

import "testing"

// TestQueueVariants checks the §III-C3 argument quantitatively: the G/G/1
// treatments (paper Eq 9 and classical Kingman) must beat the Markovian
// M/M/1 reference on the evaluation set, because GPU arrival streams are
// bursty (c_a ≫ 1).
func TestQueueVariants(t *testing.T) {
	rep, err := sharedCtx.QueueVariants()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Render())
	paper := rep.MeanError("ours+paper-kingman")
	classic := rep.MeanError("ours+classic-kingman")
	mm1 := rep.MeanError("ours+mm1")
	t.Logf("paper=%.1f%% classic=%.1f%% mm1=%.1f%%", 100*paper, 100*classic, 100*mm1)
	if paper >= mm1 {
		t.Errorf("paper Kingman (%.1f%%) should beat M/M/1 (%.1f%%)", 100*paper, 100*mm1)
	}
	if classic >= mm1 {
		t.Errorf("classical Kingman (%.1f%%) should beat M/M/1 (%.1f%%)", 100*classic, 100*mm1)
	}
}
