// Package experiments reproduces every table and figure of the paper's
// evaluation (§II-B Table I, §III Fig 2/Algorithm 1/Fig 4, §V Figs 5–9,
// Table IV). Each experiment is a function on a Context that returns a
// structured report with a Render method printing the same rows/series the
// paper reports.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gpuhms/internal/baseline"
	"gpuhms/internal/core"
	"gpuhms/internal/dram"
	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/sim"
	"gpuhms/internal/trace"
)

// Context carries the architecture, the ground-truth simulator, and a
// memoization layer so each (kernel, placement) pair is measured once per
// session. Measurement is safe for concurrent use; Prewarm fans simulator
// runs out over the CPUs.
type Context struct {
	Cfg   *gpu.Config
	Sim   *sim.Simulator
	Scale int

	mu       sync.Mutex
	traces   map[string]*trace.Trace
	measures map[string]*sim.Measurement
	coeffs   map[string][]float64 // trained Eq 11 coefficients per variant
}

// NewContext builds an experiment context at the given workload scale
// (1 = the scale used throughout the paper reproduction).
func NewContext(cfg *gpu.Config, scale int) *Context {
	if scale < 1 {
		scale = 1
	}
	return &Context{
		Cfg:      cfg,
		Sim:      sim.New(cfg),
		Scale:    scale,
		traces:   make(map[string]*trace.Trace),
		measures: make(map[string]*sim.Measurement),
		coeffs:   make(map[string][]float64),
	}
}

// specOf looks up a kernel spec (thin wrapper for experiment files).
func specOf(kernel string) (kernels.Spec, bool) { return kernels.Get(kernel) }

// Trace returns the (memoized) trace of a kernel.
func (c *Context) Trace(kernel string) *trace.Trace {
	c.mu.Lock()
	if t, ok := c.traces[kernel]; ok {
		c.mu.Unlock()
		return t
	}
	c.mu.Unlock()
	// Generate outside the lock (generation is deterministic, so a racing
	// duplicate is identical and harmless).
	t := kernels.MustGet(kernel).Trace(c.Scale)
	c.mu.Lock()
	if prev, ok := c.traces[kernel]; ok {
		t = prev
	} else {
		c.traces[kernel] = t
	}
	c.mu.Unlock()
	return t
}

// Measure returns the (memoized) ground-truth measurement of a placement.
func (c *Context) Measure(kernel string, sample, target *placement.Placement) (*sim.Measurement, error) {
	key := kernel + "|" + target.String()
	c.mu.Lock()
	if m, ok := c.measures[key]; ok {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	m, err := c.Sim.Run(c.Trace(kernel), sample, target)
	if err != nil {
		return nil, fmt.Errorf("measure %s %s: %w", kernel, target, err)
	}
	c.mu.Lock()
	if prev, ok := c.measures[key]; ok {
		m = prev // simulation is deterministic; keep the first
	} else {
		c.measures[key] = m
	}
	c.mu.Unlock()
	return m, nil
}

// Prewarm measures the cases' placements (and their samples) concurrently,
// one worker per CPU, so subsequent Measure calls hit the memo. Simulation
// is deterministic, so parallel warming cannot change any result.
func (c *Context) Prewarm(cases []Case) error {
	jobs := make(chan Case)
	errs := make(chan error, 1)
	var failed sync.Once
	var wg sync.WaitGroup
	report := func(err error) {
		failed.Do(func() { errs <- err })
	}
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Keep draining after a failure so the producer never blocks.
			for cs := range jobs {
				if len(errs) > 0 {
					continue
				}
				if _, err := c.Measure(cs.Kernel, cs.Sample, cs.Sample); err != nil {
					report(err)
					continue
				}
				if _, err := c.Measure(cs.Kernel, cs.Sample, cs.Target); err != nil {
					report(err)
				}
			}
		}()
	}
	for _, cs := range cases {
		jobs <- cs
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// Case is one data placement test of Table IV.
type Case struct {
	Kernel   string
	Label    string // the paper's bar label, e.g. "NN_C", "SCAN_2"
	Spec     kernels.Spec
	Trace    *trace.Trace
	Sample   *placement.Placement
	Target   *placement.Placement
	IsSample bool
}

// shortName maps kernel registry names to the label prefixes used in the
// paper's figures.
var shortName = map[string]string{
	"neuralnet": "NN",
	"reduction": "Reduction",
	"scan":      "SCAN",
	"stencil2d": "stencil",
	"md5hash":   "md5hash",
	"s3d":       "S3D",
}

func label(kernel string, sample, target *placement.Placement, idx int) string {
	short, ok := shortName[kernel]
	if !ok {
		short = kernel
	}
	// Single-array moves get the moved array's destination space in the
	// label (the paper's NN_C / NN_S style); multi-moves get an index.
	var moved []int
	for i := range target.Spaces {
		if target.Spaces[i] != sample.Spaces[i] {
			moved = append(moved, i)
		}
	}
	if len(moved) == 1 {
		return fmt.Sprintf("%s_%s", short, target.Spaces[moved[0]])
	}
	return fmt.Sprintf("%s_%d", short, idx+1)
}

// Cases enumerates the placement tests of the named kernels, optionally
// including each kernel's sample placement as a case.
func (c *Context) Cases(names []string, includeSamples bool) ([]Case, error) {
	var out []Case
	for _, name := range names {
		spec := kernels.MustGet(name)
		t := c.Trace(name)
		sample, err := spec.SamplePlacement(t)
		if err != nil {
			return nil, err
		}
		targets, err := spec.Targets(t)
		if err != nil {
			return nil, err
		}
		if includeSamples {
			out = append(out, Case{
				Kernel: name, Label: name + "_sample", Spec: spec, Trace: t,
				Sample: sample, Target: sample, IsSample: true,
			})
		}
		for i, target := range targets {
			out = append(out, Case{
				Kernel: name, Label: label(name, sample, target, i),
				Spec: spec, Trace: t, Sample: sample, Target: target,
			})
		}
	}
	return out, nil
}

// Model builds a trained model for a variant: variants using the Eq 11
// overlap are fit (once, memoized) on the Table IV training placements.
func (c *Context) Model(v baseline.Variant) (*core.Model, error) {
	opts := v.Opts
	if v.NeedsTraining {
		coeffs, err := c.TrainOverlap(v)
		if err != nil {
			return nil, err
		}
		opts.OverlapCoeffs = coeffs
	}
	return core.NewModel(c.Cfg, opts), nil
}

// TrainOverlap fits the Eq 11 coefficients for a variant on the training
// kernels' placements (Table IV bottom), memoized per variant name.
func (c *Context) TrainOverlap(v baseline.Variant) ([]float64, error) {
	c.mu.Lock()
	coeffs, ok := c.coeffs[v.Name]
	c.mu.Unlock()
	if ok {
		return coeffs, nil
	}
	untrained := core.NewModel(c.Cfg, v.Opts) // zero-overlap predictions
	var samples []core.OverlapSample
	cases, err := c.Cases(kernels.TrainingNames(), true)
	if err != nil {
		return nil, err
	}
	if err := c.Prewarm(cases); err != nil {
		return nil, err
	}
	predictors := make(map[string]*core.Predictor)
	for _, cs := range cases {
		pr, ok := predictors[cs.Kernel]
		if !ok {
			prof, err := c.Measure(cs.Kernel, cs.Sample, cs.Sample)
			if err != nil {
				return nil, err
			}
			pr, err = core.NewPredictor(untrained, cs.Trace, cs.Sample,
				core.SampleProfile{TimeNS: prof.TimeNS, Events: prof.Events})
			if err != nil {
				return nil, err
			}
			predictors[cs.Kernel] = pr
		}
		pred, err := pr.Predict(cs.Target)
		if err != nil {
			return nil, err
		}
		meas, err := c.Measure(cs.Kernel, cs.Sample, cs.Target)
		if err != nil {
			return nil, err
		}
		obs := untrained.OverlapObservation(pred, meas.TimeNS)
		obs.Kernel, obs.Placement = cs.Kernel, cs.Target.Format(cs.Trace)
		samples = append(samples, obs)
	}
	coeffs, err = core.FitOverlap(samples)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.coeffs[v.Name] = coeffs
	c.mu.Unlock()
	return coeffs, nil
}

// EvalKernels returns the evaluation kernel names (Table IV top half),
// sorted. Micro-suite kernels (demonstrations) and extension-corpus kernels
// (beyond the paper's roster) are excluded so the reproduced figures match
// the paper's benchmark set.
func EvalKernels() []string {
	var names []string
	for _, n := range kernels.EvalNames() {
		switch kernels.MustGet(n).Suite {
		case "micro", "ext":
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultMapping is the architecture's DRAM address mapping used across
// experiments.
func (c *Context) DefaultMapping() dram.Mapping { return dram.DefaultMapping(c.Cfg.DRAM) }
