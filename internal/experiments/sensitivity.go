package experiments

import (
	"fmt"
	"strings"

	"gpuhms/internal/baseline"
	"gpuhms/internal/core"
	"gpuhms/internal/gpu"
	"gpuhms/internal/placement"
)

// SensitivityRow records, for one (architecture, kernel) pair, whether the
// model's recommended placement matches the simulator's true best among the
// kernel's Table IV placements.
type SensitivityRow struct {
	Arch           string
	Kernel         string
	ModelBest      string
	MeasuredBest   string
	Agree          bool
	ModelBestNS    float64 // measured time of the model's pick
	MeasuredBestNS float64 // measured time of the true best
	// RegretPct is how much slower the model's pick runs than the true
	// best, in percent (0 when they agree).
	RegretPct float64
}

// SensitivityReport is the HMS design-space exploration: the paper claims
// the models "provide foundation to explore other HMS systems"; this
// experiment re-trains and re-evaluates the advisor on perturbed memory
// systems and checks that its recommendations still track the (simulated)
// hardware.
type SensitivityReport struct {
	Rows []SensitivityRow
}

// sensitivityConfigs returns the architecture variants swept: registry
// profiles plus perturbed copies of the paper's platform (Lookup returns a
// fresh Config per call, so the mutations never alias).
func sensitivityConfigs() []*gpu.Config {
	base := gpu.MustLookup("k80")

	smallL2 := gpu.MustLookup("k80")
	smallL2.Name = "K80 with 256KB L2"
	smallL2.L2.SizeBytes = 256 << 10

	slowDRAM := gpu.MustLookup("k80")
	slowDRAM.Name = "K80 with 2x DRAM latency"
	slowDRAM.DRAM.HitLatencyNS *= 2
	slowDRAM.DRAM.MissLatencyNS *= 2
	slowDRAM.DRAM.ConflictLatencyNS *= 2

	narrowBus := gpu.MustLookup("k80")
	narrowBus.Name = "K80 with 4x bus occupancy"
	narrowBus.DRAM.CtlBusyNS *= 4
	narrowBus.DRAM.BusyHitNS *= 4
	narrowBus.DRAM.BusyMissNS *= 4
	narrowBus.DRAM.BusyConflictNS *= 4

	return []*gpu.Config{base, smallL2, slowDRAM, narrowBus, gpu.MustLookup("fermi")}
}

// SensitivityKernels are the kernels evaluated per architecture.
var SensitivityKernels = []string{"neuralnet", "spmv", "convolution"}

// Sensitivity sweeps the architecture variants.
func (c *Context) Sensitivity() (*SensitivityReport, error) {
	rep := &SensitivityReport{}
	for _, cfg := range sensitivityConfigs() {
		// Fresh context per architecture: measurements and training are
		// architecture-specific.
		ctx := NewContext(cfg, c.Scale)
		model, err := ctx.Model(baseline.Ours())
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s: %w", cfg.Name, err)
		}
		for _, kernel := range SensitivityKernels {
			row, err := sensitivityCase(ctx, model, cfg, kernel)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, *row)
		}
	}
	return rep, nil
}

func sensitivityCase(ctx *Context, model *core.Model, cfg *gpu.Config, kernel string) (*SensitivityRow, error) {
	spec, _ := specOf(kernel)
	t := ctx.Trace(kernel)
	sample, err := spec.SamplePlacement(t)
	if err != nil {
		return nil, err
	}
	targets, err := spec.Targets(t)
	if err != nil {
		return nil, err
	}
	placements := append([]*placement.Placement{sample}, targets...)

	prof, err := ctx.Measure(kernel, sample, sample)
	if err != nil {
		return nil, err
	}
	pr, err := core.NewPredictor(model, t, sample,
		core.SampleProfile{TimeNS: prof.TimeNS, Events: prof.Events})
	if err != nil {
		return nil, err
	}

	row := &SensitivityRow{Arch: cfg.Name, Kernel: kernel}
	var bestPredNS, bestMeasNS float64
	var modelPick *placement.Placement
	measured := make(map[string]float64, len(placements))
	for _, pl := range placements {
		p, err := pr.Predict(pl)
		if err != nil {
			return nil, err
		}
		m, err := ctx.Measure(kernel, sample, pl)
		if err != nil {
			return nil, err
		}
		key := pl.Format(t)
		measured[key] = m.TimeNS
		if modelPick == nil || p.TimeNS < bestPredNS {
			modelPick, bestPredNS = pl, p.TimeNS
			row.ModelBest = key
		}
		if row.MeasuredBest == "" || m.TimeNS < bestMeasNS {
			bestMeasNS = m.TimeNS
			row.MeasuredBest = key
		}
	}
	row.MeasuredBestNS = bestMeasNS
	row.ModelBestNS = measured[row.ModelBest]
	row.Agree = row.ModelBest == row.MeasuredBest
	if bestMeasNS > 0 {
		row.RegretPct = 100 * (row.ModelBestNS - bestMeasNS) / bestMeasNS
	}
	return row, nil
}

// AgreementRate returns the fraction of (arch, kernel) cases where the
// model picked the true best placement.
func (r *SensitivityReport) AgreementRate() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.Agree {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// MaxRegret returns the worst regret across all cases.
func (r *SensitivityReport) MaxRegret() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.RegretPct > worst {
			worst = row.RegretPct
		}
	}
	return worst
}

// MeanRegret returns the average regret across all cases — the expected cost
// of trusting the model's pick on a perturbed architecture.
func (r *SensitivityReport) MeanRegret() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, row := range r.Rows {
		sum += row.RegretPct
	}
	return sum / float64(len(r.Rows))
}

// Render prints the sweep.
func (r *SensitivityReport) Render() string {
	var b strings.Builder
	b.WriteString("HMS design-space sensitivity: does the model's placement pick track the hardware?\n")
	fmt.Fprintf(&b, "%-28s %-12s %-34s %-34s %6s %8s\n",
		"architecture", "kernel", "model pick", "measured best", "agree", "regret")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %-12s %-34s %-34s %6v %7.1f%%\n",
			row.Arch, row.Kernel, row.ModelBest, row.MeasuredBest, row.Agree, row.RegretPct)
	}
	fmt.Fprintf(&b, "agreement %.0f%%, worst regret %.1f%%\n",
		100*r.AgreementRate(), r.MaxRegret())
	return b.String()
}
