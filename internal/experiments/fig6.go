package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gpuhms/internal/baseline"
	"gpuhms/internal/core"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// Fig6Row is one neuralnet placement with its measured time and the two
// models' scores and ranks.
type Fig6Row struct {
	Label        string
	Placement    string
	MeasuredNS   float64
	OursNS       float64
	PORPLEScore  float64
	MeasuredRank int
	OursRank     int
	PORPLERank   int
}

// Fig6Report reproduces the PORPLE ranking comparison on the neuralnet
// kernelFeedForward1's five data placements.
type Fig6Report struct {
	Rows []Fig6Row
}

// RankAccuracy reports whether a model's ranking matches the measured
// ranking exactly, and Spearman's footrule distance otherwise.
func (r *Fig6Report) RankAccuracy(rank func(Fig6Row) int) (exact bool, footrule int) {
	exact = true
	for _, row := range r.Rows {
		d := rank(row) - row.MeasuredRank
		if d < 0 {
			d = -d
		}
		footrule += d
		if d != 0 {
			exact = false
		}
	}
	return exact, footrule
}

// Fig6 ranks the five neuralnet placements by measured time, by the full
// model's prediction, and by the PORPLE-style score.
func (c *Context) Fig6() (*Fig6Report, error) {
	const kernel = "neuralnet"
	spec, _ := specOf(kernel)
	t := c.Trace(kernel)
	sample, err := spec.SamplePlacement(t)
	if err != nil {
		return nil, err
	}
	targets, err := spec.Targets(t)
	if err != nil {
		return nil, err
	}
	placements := append([]*placement.Placement{sample}, targets...)

	model, err := c.Model(baseline.Ours())
	if err != nil {
		return nil, err
	}
	prof, err := c.Measure(kernel, sample, sample)
	if err != nil {
		return nil, err
	}
	pr, err := core.NewPredictor(model, t, sample,
		core.SampleProfile{TimeNS: prof.TimeNS, Events: prof.Events})
	if err != nil {
		return nil, err
	}
	porple := &baseline.PORPLE{Cfg: c.Cfg}
	st := trace.ComputeStats(t)

	rep := &Fig6Report{}
	for i, pl := range placements {
		m, err := c.Measure(kernel, sample, pl)
		if err != nil {
			return nil, err
		}
		pred, err := pr.Predict(pl)
		if err != nil {
			return nil, err
		}
		lbl := "NN_sample"
		if i > 0 {
			lbl = label(kernel, sample, pl, i-1)
		}
		rep.Rows = append(rep.Rows, Fig6Row{
			Label:       lbl,
			Placement:   pl.Format(t),
			MeasuredNS:  m.TimeNS,
			OursNS:      pred.TimeNS,
			PORPLEScore: porple.Score(t, st, pl),
		})
	}
	assignRanks(rep.Rows, func(r Fig6Row) float64 { return r.MeasuredNS },
		func(r *Fig6Row, k int) { r.MeasuredRank = k })
	assignRanks(rep.Rows, func(r Fig6Row) float64 { return r.OursNS },
		func(r *Fig6Row, k int) { r.OursRank = k })
	assignRanks(rep.Rows, func(r Fig6Row) float64 { return r.PORPLEScore },
		func(r *Fig6Row, k int) { r.PORPLERank = k })
	return rep, nil
}

func assignRanks(rows []Fig6Row, key func(Fig6Row) float64, set func(*Fig6Row, int)) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return key(rows[idx[a]]) < key(rows[idx[b]]) })
	for rank, i := range idx {
		set(&rows[i], rank+1)
	}
}

// Render prints the ranking duel.
func (r *Fig6Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 6: placement ranking for neuralnet kernelFeedForward1 — ours vs PORPLE\n")
	fmt.Fprintf(&b, "%-12s %-32s %12s %5s %12s %5s %14s %5s\n",
		"case", "placement", "measured(ns)", "rank", "ours(ns)", "rank", "porple(score)", "rank")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-32s %12.0f %5d %12.0f %5d %14.0f %5d\n",
			row.Label, row.Placement, row.MeasuredNS, row.MeasuredRank,
			row.OursNS, row.OursRank, row.PORPLEScore, row.PORPLERank)
	}
	oursExact, oursFoot := r.RankAccuracy(func(x Fig6Row) int { return x.OursRank })
	porpleExact, porpleFoot := r.RankAccuracy(func(x Fig6Row) int { return x.PORPLERank })
	fmt.Fprintf(&b, "our model ranking exact: %v (footrule %d); PORPLE ranking exact: %v (footrule %d)\n",
		oursExact, oursFoot, porpleExact, porpleFoot)
	return b.String()
}
