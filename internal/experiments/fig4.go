package experiments

import (
	"fmt"
	"strings"

	"gpuhms/internal/sim"
	"gpuhms/internal/stats"
)

// Fig4Kernels are the three kernels of the inter-arrival-time study.
var Fig4Kernels = []string{"spmv", "md", "matrixMul"}

// Fig4Row is one kernel's inter-arrival statistics.
type Fig4Row struct {
	Kernel string
	// Hist is the empirical inter-arrival histogram; MeanNS the sample
	// mean, the parameter of the theoretical exponential overlay.
	Hist   *stats.Histogram
	MeanNS float64
	// KS is the Kolmogorov–Smirnov distance between the empirical CDF and
	// the exponential CDF with the same mean; small = Markov-like.
	KS float64
	// CaMean/CaStd are the per-bank c_a statistics the paper reports
	// ("the average c_a of all memory banks is 1.11, 2.22, and 1.72").
	CaMean, CaStd float64
	Samples       int
}

// Fig4Report reproduces the Fig 4 study: do DRAM inter-arrival times follow
// an exponential distribution?
type Fig4Report struct {
	Rows []Fig4Row
}

// Fig4 collects each kernel's DRAM inter-arrival stream (default
// placements, timing from the detailed simulator — the paper used
// GPGPUSim for the same purpose) and compares it against the exponential
// reference.
func (c *Context) Fig4() (*Fig4Report, error) {
	collector := sim.New(c.Cfg)
	collector.CollectArrivals = true
	rep := &Fig4Report{}
	for _, kernel := range Fig4Kernels {
		t := c.Trace(kernel)
		spec, _ := specOf(kernel)
		sample, err := spec.SamplePlacement(t)
		if err != nil {
			return nil, err
		}
		m, err := collector.Run(t, sample, sample)
		if err != nil {
			return nil, err
		}
		mean := stats.Mean(m.InterArrivals)
		// Bin width: an eighth of the mean, 64 bins, covers 8 means.
		width := mean / 8
		if width <= 0 {
			width = 1
		}
		h := stats.NewHistogram(width, 64)
		for _, x := range m.InterArrivals {
			h.Add(x)
		}
		rep.Rows = append(rep.Rows, Fig4Row{
			Kernel:  kernel,
			Hist:    h,
			MeanNS:  mean,
			KS:      h.KSDistanceFromExponential(mean),
			CaMean:  m.BankCaMean,
			CaStd:   m.BankCaStd,
			Samples: len(m.InterArrivals),
		})
	}
	return rep, nil
}

// Render prints the c_a table and the ASCII histograms with the exponential
// overlay.
func (r *Fig4Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 4: DRAM inter-arrival time distribution vs exponential reference\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %10s %8s\n",
		"kernel", "mean ca", "std ca", "mean gap ns", "KS dist", "samples")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.2f %10.2f %12.2f %10.3f %8d\n",
			row.Kernel, row.CaMean, row.CaStd, row.MeanNS, row.KS, row.Samples)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "\n%s ('#' measured, '.' exponential, '*' both):\n", row.Kernel)
		b.WriteString(row.Hist.Render(row.MeanNS, 48))
	}
	return b.String()
}
