package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is the common surface of experiment reports.
type Renderer interface {
	Render() string
}

// Runner executes one named experiment.
type Runner func(*Context) (Renderer, error)

// Registry maps experiment names (as accepted by `cmd/experiments -run`) to
// their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":      func(c *Context) (Renderer, error) { return c.Table1() },
		"fig2":        func(c *Context) (Renderer, error) { return c.Fig2() },
		"alg1":        func(c *Context) (Renderer, error) { return c.Alg1() },
		"fig4":        func(c *Context) (Renderer, error) { return c.Fig4() },
		"fig5":        func(c *Context) (Renderer, error) { return c.Fig5() },
		"fig6":        func(c *Context) (Renderer, error) { return c.Fig6() },
		"fig7":        func(c *Context) (Renderer, error) { return c.Fig7() },
		"fig8":        func(c *Context) (Renderer, error) { return c.Fig8() },
		"fig9":        func(c *Context) (Renderer, error) { return c.Fig9() },
		"table4":      func(c *Context) (Renderer, error) { return c.Table4() },
		"queuevar":    func(c *Context) (Renderer, error) { return c.QueueVariants() },
		"sensitivity": func(c *Context) (Renderer, error) { return c.Sensitivity() },
		"validate":    func(c *Context) (Renderer, error) { return c.Validate() },
	}
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment and writes its rendering.
func Run(c *Context, name string, w io.Writer) error {
	runner, ok := Registry()[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	rep, err := runner(c)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	fmt.Fprintf(w, "==== %s ====\n%s\n", name, rep.Render())
	return nil
}
