package experiments

import (
	"fmt"
	"strings"

	"gpuhms/internal/addrmode"
	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// Fig2Report reproduces the Fig 2 addressing-mode study: the per-space
// instruction cost of forming an element address, and the resulting
// executed-instruction difference of the vecAdd kernel's four placements.
type Fig2Report struct {
	// PerAccess[space][dtype] = addressing instructions per element access.
	PerAccess map[gpu.MemSpace]map[trace.DType]int
	// VecAdd rows: placement label → total executed instructions.
	VecAddRows []Fig2Row
}

// Fig2Row is one vecAdd placement's instruction accounting.
type Fig2Row struct {
	Placement      string
	AddrInstrs     int64 // addressing-mode instructions over the kernel
	ExecutedDelta  int64 // vs the all-global placement, from addrmode.TraceDelta
	MeasuredDelta  int64 // vs the all-global placement, from the simulator
	MeasuredInstrs int64
}

// Fig2 analyzes the vecAdd kernel of Fig 2 under its placements.
func (c *Context) Fig2() (*Fig2Report, error) {
	rep := &Fig2Report{PerAccess: make(map[gpu.MemSpace]map[trace.DType]int)}
	for _, sp := range gpu.Spaces {
		rep.PerAccess[sp] = make(map[trace.DType]int)
		for _, dt := range []trace.DType{trace.F32, trace.F64, trace.I32} {
			rep.PerAccess[sp][dt] = addrmode.InstrPerAccess(sp, dt)
		}
	}

	spec := kernels.MustGet("vecadd")
	t := c.Trace("vecadd")
	sample, err := spec.SamplePlacement(t)
	if err != nil {
		return nil, err
	}
	st := trace.ComputeStats(t)
	base, err := c.Measure("vecadd", sample, sample)
	if err != nil {
		return nil, err
	}
	targets, err := spec.Targets(t)
	if err != nil {
		return nil, err
	}
	all := append([]*placement.Placement{sample}, targets...)
	for _, pl := range all {
		m, err := c.Measure("vecadd", sample, pl)
		if err != nil {
			return nil, err
		}
		var addrInstrs int64
		for i := range t.Arrays {
			addrInstrs += int64(addrmode.InstrPerAccess(pl.Of(trace.ArrayID(i)), t.Arrays[i].Type)) *
				st.Accesses(trace.ArrayID(i))
		}
		rep.VecAddRows = append(rep.VecAddRows, Fig2Row{
			Placement:      pl.Format(t),
			AddrInstrs:     addrInstrs,
			ExecutedDelta:  addrmode.TraceDelta(st, t, sample.Spaces, pl.Spaces),
			MeasuredDelta:  m.Events.InstExecuted - base.Events.InstExecuted,
			MeasuredInstrs: m.Events.InstExecuted,
		})
	}
	return rep, nil
}

// Render prints the Fig 2 summary.
func (r *Fig2Report) Render() string {
	var b strings.Builder
	b.WriteString("Fig 2: addressing-mode instructions per element access (SASS analysis)\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "space", "float", "double", "int")
	for _, sp := range gpu.Spaces {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d\n", sp.LongString(),
			r.PerAccess[sp][trace.F32], r.PerAccess[sp][trace.F64], r.PerAccess[sp][trace.I32])
	}
	b.WriteString("\nvecAdd (v = a + b) executed-instruction accounting per placement:\n")
	fmt.Fprintf(&b, "%-24s %12s %14s %14s %12s\n",
		"placement", "addr instrs", "model Δexec", "measured Δexec", "measured")
	for _, row := range r.VecAddRows {
		fmt.Fprintf(&b, "%-24s %12d %14d %14d %12d\n",
			row.Placement, row.AddrInstrs, row.ExecutedDelta, row.MeasuredDelta, row.MeasuredInstrs)
	}
	return b.String()
}
