package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gpuhms/internal/stats"
)

// Table1Kernels are the six benchmarks of the §II-B event-selection study.
var Table1Kernels = []string{"cfd", "convolution", "md", "matrixMul", "spmv", "transpose"}

// Table1Events are the five representative performance events of Table I.
var Table1Events = []string{"issue_slots", "inst_issued", "inst_integer", "ldst_issued", "L2_transactions"}

// Table1Threshold is the cosine-similarity cutoff of §II-B.
const Table1Threshold = 0.94

// Table1Row is one kernel's cosine similarities.
type Table1Row struct {
	Kernel string
	// Sim maps event name → cosine similarity between the event vector and
	// the execution-time vector across the kernel's data placements.
	Sim map[string]float64
	// Placements is the number of data placements in the vectors.
	Placements int
}

// Table1Report is the reproduction of Table I.
type Table1Report struct {
	Rows []Table1Row
	// AllEvents carries the similarity of every counted event, for the
	// event-selection narrative beyond the five representative columns.
	AllEvents map[string][]float64
}

// Table1 runs every placement of the six study kernels through the
// simulator, builds the time vector and one vector per performance event,
// and reports their cosine similarities (§II-B).
func (c *Context) Table1() (*Table1Report, error) {
	rep := &Table1Report{AllEvents: make(map[string][]float64)}
	warm, err := c.Cases(Table1Kernels, true)
	if err != nil {
		return nil, err
	}
	if err := c.Prewarm(warm); err != nil {
		return nil, err
	}
	for _, kernel := range Table1Kernels {
		cases, err := c.Cases([]string{kernel}, true)
		if err != nil {
			return nil, err
		}
		var times []float64
		vectors := make(map[string][]float64)
		for _, cs := range cases {
			m, err := c.Measure(cs.Kernel, cs.Sample, cs.Target)
			if err != nil {
				return nil, err
			}
			times = append(times, m.TimeNS)
			for _, ev := range m.Events.All() {
				vectors[ev.Name] = append(vectors[ev.Name], ev.Value)
			}
		}
		row := Table1Row{Kernel: kernel, Sim: make(map[string]float64), Placements: len(times)}
		for name, vec := range vectors {
			cs, err := stats.CosineSimilarity(times, vec)
			if err != nil {
				return nil, err
			}
			row.Sim[name] = cs
			rep.AllEvents[name] = append(rep.AllEvents[name], cs)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Render prints the Table I layout: similarities below the threshold print
// as N/A, exactly like the paper.
func (r *Table1Report) Render() string {
	var b strings.Builder
	b.WriteString("Table I: cosine similarity between execution time and performance events\n")
	fmt.Fprintf(&b, "%-14s", "GPU kernel")
	for _, ev := range Table1Events {
		fmt.Fprintf(&b, " %16s", ev)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s", row.Kernel)
		for _, ev := range Table1Events {
			v, ok := row.Sim[ev]
			if !ok || v < Table1Threshold {
				fmt.Fprintf(&b, " %16s", "N/A")
			} else {
				fmt.Fprintf(&b, " %16.3f", v)
			}
		}
		b.WriteByte('\n')
	}

	// Event-selection summary: mean similarity of every event, descending.
	type agg struct {
		name string
		mean float64
	}
	var all []agg
	for name, sims := range r.AllEvents {
		all = append(all, agg{name, stats.Mean(sims)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mean > all[j].mean })
	b.WriteString("\nAll events by mean similarity across kernels:\n")
	for _, a := range all {
		fmt.Fprintf(&b, "  %-28s %6.3f\n", a.name, a.mean)
	}
	return b.String()
}
