package experiments

import (
	"gpuhms/internal/baseline"
	"gpuhms/internal/queuing"
)

// QueueVariants compares the queuing approximations inside the full model:
// the paper's Eq 9 as printed, the classical Kingman formula, and the
// Markovian M/M/1 the paper argues is inappropriate for GPU arrival streams
// (§III-C3). An extension beyond the paper's own figures: it quantifies how
// much the choice of approximation matters once everything else is in
// place.
func (c *Context) QueueVariants() (*AccuracyReport, error) {
	return c.RunAccuracy("Queuing-variant ablation: Eq 9 (paper) vs classical Kingman vs M/M/1",
		[]baseline.Variant{
			baseline.QueueVariant(queuing.PaperKingman),
			baseline.QueueVariant(queuing.ClassicKingman),
			baseline.QueueVariant(queuing.MM1),
		})
}
