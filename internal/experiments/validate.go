package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gpuhms/internal/baseline"
	"gpuhms/internal/core"
	"gpuhms/internal/kernels"
	"gpuhms/internal/placement"
	"gpuhms/internal/stats"
)

// ValidateRow summarizes model-vs-simulator agreement for one kernel across
// all of its data placement tests.
type ValidateRow struct {
	Kernel     string
	Suite      string
	Placements int
	MeanErrPct float64 // mean |pred−meas|/meas over placements
	MaxErrPct  float64
	RankExact  bool // does the predicted ordering match the measured one?
	BestAgree  bool // does the predicted best match the measured best?
}

// ValidateReport is the acceptance sweep: every registered kernel —
// Table IV roster, micro, and extension corpus — through the trained full
// model, with error and ranking agreement per kernel. This is the summary a
// release would gate on.
type ValidateReport struct {
	Rows []ValidateRow
}

// Validate runs the sweep on the context's architecture.
func (c *Context) Validate() (*ValidateReport, error) {
	model, err := c.Model(baseline.Ours())
	if err != nil {
		return nil, err
	}
	warm, err := c.Cases(kernels.Names(), true)
	if err != nil {
		return nil, err
	}
	if err := c.Prewarm(warm); err != nil {
		return nil, err
	}
	rep := &ValidateReport{}
	for _, kernel := range kernels.Names() {
		spec := kernels.MustGet(kernel)
		t := c.Trace(kernel)
		sample, err := spec.SamplePlacement(t)
		if err != nil {
			return nil, err
		}
		targets, err := spec.Targets(t)
		if err != nil {
			return nil, err
		}
		placements := append([]*placement.Placement{sample}, targets...)

		prof, err := c.Measure(kernel, sample, sample)
		if err != nil {
			return nil, err
		}
		pr, err := core.NewPredictor(model, t, sample,
			core.SampleProfile{TimeNS: prof.TimeNS, Events: prof.Events})
		if err != nil {
			return nil, err
		}

		row := ValidateRow{Kernel: kernel, Suite: spec.Suite, Placements: len(placements)}
		type pair struct{ pred, meas float64 }
		pairs := make([]pair, 0, len(placements))
		for _, pl := range placements {
			p, err := pr.Predict(pl)
			if err != nil {
				return nil, err
			}
			m, err := c.Measure(kernel, sample, pl)
			if err != nil {
				return nil, err
			}
			e := 100 * stats.RelError(p.TimeNS, m.TimeNS)
			row.MeanErrPct += e
			if e > row.MaxErrPct {
				row.MaxErrPct = e
			}
			pairs = append(pairs, pair{p.TimeNS, m.TimeNS})
		}
		row.MeanErrPct /= float64(len(placements))

		byPred := rankOrder(pairs, func(p pair) float64 { return p.pred })
		byMeas := rankOrder(pairs, func(p pair) float64 { return p.meas })
		row.RankExact = equalInts(byPred, byMeas)
		row.BestAgree = byPred[0] == byMeas[0]
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func rankOrder[T any](xs []T, key func(T) float64) []int {
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return key(xs[order[a]]) < key(xs[order[b]]) })
	return order
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MeanError returns the grand mean error over all kernels.
func (r *ValidateReport) MeanError() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	s := 0.0
	for _, row := range r.Rows {
		s += row.MeanErrPct
	}
	return s / float64(len(r.Rows))
}

// BestAgreementRate returns the fraction of kernels whose predicted best
// placement is the measured best.
func (r *ValidateReport) BestAgreementRate() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.BestAgree {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// Render prints the sweep.
func (r *ValidateReport) Render() string {
	var b strings.Builder
	b.WriteString("Validation sweep: full model vs simulator across the entire kernel corpus\n")
	fmt.Fprintf(&b, "%-14s %-6s %6s %10s %10s %10s %10s\n",
		"kernel", "suite", "cases", "mean err", "max err", "rank ok", "best ok")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-6s %6d %9.1f%% %9.1f%% %10v %10v\n",
			row.Kernel, row.Suite, row.Placements, row.MeanErrPct, row.MaxErrPct,
			row.RankExact, row.BestAgree)
	}
	fmt.Fprintf(&b, "grand mean error %.1f%%; best-placement agreement %.0f%%\n",
		r.MeanError(), 100*r.BestAgreementRate())
	return b.String()
}
