// Package fleet solves capacity-constrained multi-kernel placement: N
// tenant kernels, each with its own trained predictor (via the advisor),
// compete for the finite per-space byte capacities of one GPU
// (gpu.Config.CapacityBytes). A single-kernel ranking assumes an empty
// machine; the fleet problem asks which placement each tenant should get so
// that everyone fits and nobody is starved — formally, minimize the maximum
// (or weighted sum of) predicted slowdown versus each tenant's unconstrained
// best placement, subject to per-space byte budgets.
//
// The subsystem reuses the single-kernel Strategy engine end-to-end: each
// tenant's candidate menu is the Pareto frontier over (predicted time,
// per-space demand) of an exhaustive advisor.Search, and the fleet solvers
// (lookahead greedy, bounded beam — solver.go) inherit its contracts:
// deterministic results for any worker count, shared MaxCandidates budget →
// *hmserr.BudgetError, ctx-cancel precedence, obs progress and metrics.
// docs/FLEET.md describes the model, objectives, and wire format.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"gpuhms/internal/advisor"
	"gpuhms/internal/core"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/kernels"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
	"gpuhms/internal/trace"
)

// Sentinels of the fleet subsystem's input taxonomy. The advisory service
// maps both to 404 (like its own unknown-kernel error); hmsplace exits with
// its distinct unknown-name code on them.
var (
	// ErrUnknownKernel: a tenant names a kernel the registry does not have.
	ErrUnknownKernel = errors.New("fleet: unknown kernel")
	// ErrUnknownMix: a request names a bundled tenant mix that does not exist.
	ErrUnknownMix = errors.New("fleet: unknown mix")
)

// Unbounded marks a per-space budget with no limit.
const Unbounded int64 = -1

// DefaultMenuSize bounds a tenant's candidate menu (the Pareto frontier of
// its exhaustive ranking) when Options.MenuSize is zero. Frontiers of the
// bundled kernels are far smaller; the cap exists so a hostile request
// cannot make the assignment search quadratic in an enormous menu.
const DefaultMenuSize = 64

// MaxMenuSize caps Options.MenuSize from wire input.
const MaxMenuSize = 512

// Tenant is one kernel in a fleet problem, as specified by the caller.
type Tenant struct {
	// Name identifies the tenant in results ("t0", "t1", … when empty).
	Name string
	// Kernel is the bundled workload name (kernels.Names).
	Kernel string
	// Scale is the workload scale factor (default 1).
	Scale int
	// Sample overrides the kernel's sample placement ("name:space,…").
	Sample string
	// Weight scales the tenant's slowdown in the objective (default 1).
	Weight float64
}

// Demand is a per-space byte demand vector, indexed by gpu.MemSpace. Shared
// entries are per-block footprints (placement.SharedFootprint); the others
// are raw array bytes.
type Demand [gpu.NumSpaces]int64

// Plus returns the element-wise sum.
func (d Demand) Plus(o Demand) Demand {
	for i := range d {
		d[i] += o[i]
	}
	return d
}

// Minus returns the element-wise difference.
func (d Demand) Minus(o Demand) Demand {
	for i := range d {
		d[i] -= o[i]
	}
	return d
}

// DemandOf computes the per-space demand of one placement: shared-placed
// arrays cost their per-block footprint, every other space costs the array's
// raw bytes against that space's budget.
func DemandOf(t *trace.Trace, p *placement.Placement) Demand {
	var d Demand
	for i, sp := range p.Spaces {
		if sp == gpu.Shared {
			d[gpu.Shared] += int64(placement.SharedFootprint(t, trace.ArrayID(i)))
		} else {
			d[sp] += int64(t.Arrays[i].Bytes())
		}
	}
	return d
}

// Budgets holds the per-space byte capacities of a fleet problem, indexed by
// gpu.MemSpace; Unbounded (-1) disables the check for a space.
type Budgets [gpu.NumSpaces]int64

// DefaultBudgets derives budgets from the architecture's geometry
// (gpu.Config.CapacityBytes): shared per block, constant total, device DRAM
// for the global and texture spaces (each individually, Unbounded when the
// config leaves DRAM unbounded).
func DefaultBudgets(cfg *gpu.Config) Budgets {
	var b Budgets
	for i, sp := range gpu.Spaces {
		if c := cfg.CapacityBytes(sp); c >= 0 {
			b[i] = int64(c)
		} else {
			b[i] = Unbounded
		}
	}
	return b
}

// Fits reports whether used+extra stays within every bounded space.
func (b Budgets) Fits(used, extra Demand) bool {
	for i := range b {
		if b[i] >= 0 && used[i]+extra[i] > b[i] {
			return false
		}
	}
	return true
}

// String renders the bounded budgets deterministically ("shared=12288,…").
func (b Budgets) String() string {
	var sb strings.Builder
	for i, sp := range gpu.Spaces {
		if b[i] < 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%d", sp.LongString(), b[i])
	}
	return sb.String()
}

// Objective selects how per-tenant slowdowns aggregate.
type Objective uint8

const (
	// MinMax minimizes the worst weighted slowdown across tenants (the
	// fairness objective; the default).
	MinMax Objective = iota
	// WeightedSum minimizes the sum of weighted slowdowns (the throughput
	// objective).
	WeightedSum
)

// String returns the canonical wire spelling.
func (o Objective) String() string {
	if o == WeightedSum {
		return "weighted"
	}
	return "minmax"
}

// ParseObjective converts a wire spec into an Objective ("" = MinMax).
// Unknown specs wrap hmserr.ErrUnknownStrategy — caller input, never 5xx.
func ParseObjective(spec string) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "minmax", "min-max":
		return MinMax, nil
	case "weighted", "weighted-sum", "sum":
		return WeightedSum, nil
	}
	return MinMax, hmserr.Wrap(hmserr.ErrUnknownStrategy,
		"unknown fleet objective %q (want minmax or weighted)", spec)
}

// objAcc accumulates weighted slowdowns under one objective.
type objAcc struct {
	o Objective
	v float64
}

func (a *objAcc) add(s float64) {
	if a.o == MinMax {
		if s > a.v {
			a.v = s
		}
	} else {
		a.v += s
	}
}

// Candidate is one menu entry of a tenant: a placement, its predicted time,
// its enumeration index (the engine's tie-break order), and its demand.
type Candidate struct {
	Placement   *placement.Placement
	PredictedNS float64
	Index       int64
	Demand      Demand
}

// TenantState is a tenant with its built menu: the Pareto frontier of its
// exhaustive ranking over (time, bounded-space demand), fastest first. Menu
// entry 0 is the unconstrained best; the final entry is the frontier's
// minimum-demand fallback, kept even under truncation so feasibility under
// tight budgets survives.
type TenantState struct {
	Tenant
	Trace *trace.Trace
	Menu  []Candidate
	// BestNS is the unconstrained best prediction (Menu[0]); slowdowns are
	// measured against it.
	BestNS float64
	// FloorNS is the admissible core.PlacementBound floor over the whole
	// placement space — the beam solver's per-tenant completion bound.
	FloorNS float64
	// MenuEvaluated / MenuTotal record the menu-building search's coverage.
	MenuEvaluated int
	MenuTotal     int
}

// Options configures a fleet solve.
type Options struct {
	// Budgets overrides the architecture-derived DefaultBudgets.
	Budgets *Budgets
	// Objective selects MinMax (default) or WeightedSum.
	Objective Objective
	// MenuSize caps each tenant's Pareto menu (0 = DefaultMenuSize, capped
	// at MaxMenuSize).
	MenuSize int
	// MaxCandidates bounds the total model evaluations spent building menus
	// across all tenants (0 = unlimited). Exhaustion returns a
	// *hmserr.BudgetError — a fleet problem with half-built menus has no
	// meaningful partial answer, so unlike single-kernel ranking this is an
	// error, not a partial result.
	MaxCandidates int
	// Parallelism is the per-tenant ranking worker count (advisor.Search).
	// Results are identical for every value.
	Parallelism int
	// Solver picks the assignment search (nil = Greedy()).
	Solver Solver
	// Recorder receives menu/solve telemetry; nil falls back to the
	// advisor's recorder.
	Recorder obs.Recorder
}

// Problem is a built fleet instance: tenants with menus, budgets, and an
// objective. Build with NewProblem (the expensive step — one exhaustive
// ranking per tenant), solve with Solve, possibly several times with
// different solvers.
type Problem struct {
	Cfg       *gpu.Config
	Tenants   []*TenantState
	Budgets   Budgets
	Objective Objective
	// MenuEvaluated / MenuTotal aggregate menu-building coverage.
	MenuEvaluated int
	MenuTotal     int
}

// Assignment is one tenant's placement in a Result.
type Assignment struct {
	Tenant      string
	Kernel      string
	Scale       int
	Weight      float64
	Placement   *placement.Placement
	Spec        string // Placement formatted with array names
	PredictedNS float64
	BestNS      float64
	Slowdown    float64 // PredictedNS / BestNS (unweighted)
}

// Baseline is the naive independent-per-kernel reference: each tenant takes
// its own fastest placement that still fits, first-fit in input order, with
// no lookahead — what N independent single-kernel rankings would do.
type Baseline struct {
	// UnconstrainedFits reports whether every tenant's unconstrained best
	// fits simultaneously (capacity not binding; the fleet answer matches
	// independent ranking).
	UnconstrainedFits bool
	// Feasible reports whether first-fit found any feasible assignment.
	Feasible bool
	// ObjectiveValue is the first-fit assignment's objective (0 when
	// infeasible).
	ObjectiveValue float64
}

// Result is a solved fleet problem.
type Result struct {
	Solver         string
	Objective      Objective
	ObjectiveValue float64
	Assignments    []Assignment // input order
	Usage          Demand
	Budgets        Budgets
	Independent    Baseline
	MenuEvaluated  int
	MenuTotal      int
	// AssignEvaluated counts objective evaluations the solver spent.
	AssignEvaluated int
	// Pruned counts beam children discarded by width or bound.
	Pruned int
}

// NewProblem builds a fleet instance: it resolves each tenant's kernel,
// profiles its sample placement, ranks its legal placement space
// exhaustively through the Strategy engine (inheriting cancellation and the
// shared MaxCandidates budget), and keeps the Pareto frontier over
// (predicted time, bounded-space demand) as the tenant's menu.
func NewProblem(ctx context.Context, adv *advisor.Advisor, tenants []Tenant, opt Options) (p *Problem, err error) {
	defer hmserr.Guard(&err)
	if adv == nil || adv.Cfg == nil {
		return nil, fmt.Errorf("fleet: nil advisor")
	}
	if len(tenants) == 0 {
		return nil, hmserr.Wrap(hmserr.ErrInvalidTrace, "fleet problem with no tenants")
	}
	rec := obs.OrNop(opt.Recorder)
	if opt.Recorder == nil {
		rec = obs.OrNop(adv.Recorder)
	}
	budgets := DefaultBudgets(adv.Cfg)
	if opt.Budgets != nil {
		budgets = *opt.Budgets
	}
	menuSize := opt.MenuSize
	if menuSize <= 0 {
		menuSize = DefaultMenuSize
	}
	if menuSize > MaxMenuSize {
		menuSize = MaxMenuSize
	}

	p = &Problem{Cfg: adv.Cfg, Budgets: budgets, Objective: opt.Objective}
	names := make(map[string]bool, len(tenants))
	for i, t := range tenants {
		if t.Name == "" {
			t.Name = fmt.Sprintf("t%d", i)
		}
		if names[t.Name] {
			return nil, hmserr.Wrap(hmserr.ErrInvalidTrace, "duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
		if t.Scale == 0 {
			t.Scale = 1
		}
		if t.Weight <= 0 {
			t.Weight = 1
		}
		spec, ok := kernels.Get(t.Kernel)
		if !ok {
			return nil, fmt.Errorf("%w: %q (tenant %q)", ErrUnknownKernel, t.Kernel, t.Name)
		}
		tr := spec.Trace(t.Scale)
		var sample *placement.Placement
		if t.Sample != "" {
			sample, err = placement.Parse(tr, t.Sample)
		} else {
			sample, err = spec.SamplePlacement(tr)
		}
		if err != nil {
			return nil, fmt.Errorf("fleet tenant %q: %w", t.Name, err)
		}
		if err := placement.Check(tr, sample, adv.Cfg); err != nil {
			return nil, fmt.Errorf("fleet tenant %q: %w", t.Name, err)
		}

		// The per-tenant menu search draws from one shared eval budget, like
		// the engine's own token pool across workers.
		remaining := 0
		if opt.MaxCandidates > 0 {
			remaining = opt.MaxCandidates - p.MenuEvaluated
			if remaining <= 0 {
				return nil, &hmserr.BudgetError{Evaluated: p.MenuEvaluated, What: "fleet menu evaluations"}
			}
		}
		var menuStart float64
		if rec.Enabled() {
			menuStart = rec.Now()
		}
		pr, err := adv.PredictorContext(ctx, tr, sample)
		if err != nil {
			return nil, fmt.Errorf("fleet tenant %q: %w", t.Name, err)
		}
		res, err := advisor.Search(ctx, adv.Cfg, tr, pr, advisor.RankOptions{
			MaxCandidates: remaining,
			Parallelism:   opt.Parallelism,
		}, rec)
		if err != nil {
			if errors.Is(err, hmserr.ErrBudgetExceeded) {
				evaluated := p.MenuEvaluated
				if res != nil {
					evaluated += res.Evaluated
				}
				return nil, &hmserr.BudgetError{Evaluated: evaluated, What: "fleet menu evaluations"}
			}
			return nil, err
		}
		ts := &TenantState{
			Tenant:        t,
			Trace:         tr,
			Menu:          paretoMenu(tr, res.Ranked, budgets, menuSize),
			MenuEvaluated: res.Evaluated,
			MenuTotal:     res.Total,
		}
		if len(ts.Menu) == 0 || ts.Menu[0].PredictedNS <= 0 {
			return nil, hmserr.Wrap(hmserr.ErrIllegalPlacement,
				"tenant %q (%s) has no legal placements", t.Name, t.Kernel)
		}
		ts.BestNS = ts.Menu[0].PredictedNS
		ts.FloorNS = core.NewPlacementBound(pr).Bound(sample, 0)
		p.Tenants = append(p.Tenants, ts)
		p.MenuEvaluated += res.Evaluated
		p.MenuTotal += res.Total
		if rec.Enabled() {
			rec.Add("fleet_menu_evals_total", int64(res.Evaluated))
			rec.Span("fleet", fmt.Sprintf("menu %s (%s): %d candidates", t.Name, t.Kernel, len(ts.Menu)),
				menuStart, rec.Now()-menuStart)
		}
	}
	return p, nil
}

// paretoMenu keeps, from a fastest-first ranking, the placements on the
// (time, bounded-space demand) Pareto frontier: an entry survives only when
// no faster (or equal-and-earlier) entry demands no more of every bounded
// space. The frontier is scanned in ranking order, so it stays sorted
// fastest-first with strictly loosening demand; the final entry is the
// cheapest-to-fit fallback, kept even when size truncates the middle.
func paretoMenu(tr *trace.Trace, ranked []advisor.Ranked, budgets Budgets, size int) []Candidate {
	var menu []Candidate
	for _, r := range ranked {
		d := DemandOf(tr, r.Placement)
		dominated := false
		for _, k := range menu {
			if demandLE(k.Demand, d, budgets) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		menu = append(menu, Candidate{
			Placement:   r.Placement.Clone(),
			PredictedNS: r.PredictedNS,
			Index:       r.Index,
			Demand:      d,
		})
	}
	if len(menu) > size {
		tail := menu[len(menu)-1]
		menu = append(menu[:size-1:size-1], tail)
	}
	return menu
}

// demandLE reports a ≤ b element-wise over the bounded spaces.
func demandLE(a, b Demand, budgets Budgets) bool {
	for i := range a {
		if budgets[i] >= 0 && a[i] > b[i] {
			return false
		}
	}
	return true
}

// bestFitting returns the index of the tenant's fastest menu entry that fits
// the remaining capacity, or -1 when none does. Menus are fastest-first, so
// the first fit is the best fit.
func bestFitting(ts *TenantState, used Demand, b Budgets) int {
	for mi := range ts.Menu {
		if b.Fits(used, ts.Menu[mi].Demand) {
			return mi
		}
	}
	return -1
}

// baseline computes the naive independent reference: first-fit own-best in
// input order, no lookahead.
func (p *Problem) baseline() Baseline {
	var all Demand
	for _, ts := range p.Tenants {
		all = all.Plus(ts.Menu[0].Demand)
	}
	bl := Baseline{UnconstrainedFits: p.Budgets.Fits(Demand{}, all), Feasible: true}
	chosen, ok := p.baselineChosen()
	if !ok {
		bl.Feasible = false
		return bl
	}
	acc := objAcc{o: p.Objective}
	for i, ts := range p.Tenants {
		acc.add(ts.Weight * ts.Menu[chosen[i]].PredictedNS / ts.BestNS)
	}
	bl.ObjectiveValue = acc.v
	return bl
}

// objectiveOf is the exact objective of a complete assignment.
func (p *Problem) objectiveOf(chosen []int) float64 {
	acc := objAcc{o: p.Objective}
	for i, ts := range p.Tenants {
		acc.add(ts.Weight * ts.Menu[chosen[i]].PredictedNS / ts.BestNS)
	}
	return acc.v
}

// baselineChosen returns the first-fit assignment in menu-index space, or
// ok=false when some tenant has no fitting entry under it.
func (p *Problem) baselineChosen() ([]int, bool) {
	chosen := make([]int, len(p.Tenants))
	var used Demand
	for i, ts := range p.Tenants {
		mi := bestFitting(ts, used, p.Budgets)
		if mi < 0 {
			return nil, false
		}
		chosen[i] = mi
		used = used.Plus(ts.Menu[mi].Demand)
	}
	return chosen, true
}

// Solve runs one assignment search over the built problem. Solving is cheap
// relative to NewProblem (no model evaluations — menus carry the
// predictions), deterministic, and reusable: the same Problem can be solved
// under several solvers.
func (p *Problem) Solve(ctx context.Context, solver Solver, rec obs.Recorder) (res *Result, err error) {
	defer hmserr.Guard(&err)
	if solver == nil {
		solver = Greedy()
	}
	rec = obs.OrNop(rec)
	e := &engine{ctx: ctx, p: p, chosen: make([]int, len(p.Tenants))}
	for i := range e.chosen {
		e.chosen[i] = -1
	}
	e.order = p.solveOrder()
	if err := solver.solve(e); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The heuristics can occasionally land above the naive first-fit baseline
	// (a different local optimum). When they do, restart from the baseline
	// assignment and polish it — the fleet answer is then never worse than
	// independent ranking whenever independent ranking is feasible.
	if bc, ok := p.baselineChosen(); ok {
		if blObj := p.objectiveOf(bc); blObj < e.objectiveWith(-1, -1) {
			copy(e.chosen, bc)
			e.used = Demand{}
			for i, ts := range p.Tenants {
				e.used = e.used.Plus(ts.Menu[bc[i]].Demand)
			}
			e.polish()
		}
	}

	res = &Result{
		Solver:          solver.Spec(),
		Objective:       p.Objective,
		Budgets:         p.Budgets,
		Independent:     p.baseline(),
		MenuEvaluated:   p.MenuEvaluated,
		MenuTotal:       p.MenuTotal,
		AssignEvaluated: e.evals,
		Pruned:          e.pruned,
	}
	acc := objAcc{o: p.Objective}
	for i, ts := range p.Tenants {
		c := ts.Menu[e.chosen[i]]
		acc.add(ts.Weight * c.PredictedNS / ts.BestNS)
		res.Usage = res.Usage.Plus(c.Demand)
		res.Assignments = append(res.Assignments, Assignment{
			Tenant:      ts.Name,
			Kernel:      ts.Kernel,
			Scale:       ts.Scale,
			Weight:      ts.Weight,
			Placement:   c.Placement,
			Spec:        c.Placement.Format(ts.Trace),
			PredictedNS: c.PredictedNS,
			BestNS:      ts.BestNS,
			Slowdown:    c.PredictedNS / ts.BestNS,
		})
	}
	res.ObjectiveValue = acc.v
	if rec.Enabled() {
		rec.Add("fleet_assign_evals_total", int64(e.evals))
		rec.Gauge("fleet_objective", res.ObjectiveValue)
	}
	rec.ReportProgress(obs.Progress{
		Evaluated: e.evals,
		Strategy:  "fleet:" + solver.Spec(),
		Pruned:    e.pruned,
		Done:      true,
	})
	return res, nil
}

// solveOrder ranks tenants hardest-first: descending weighted worst-case
// slowdown (what the tenant suffers when starved down to its minimum-demand
// fallback), then descending bounded demand of its best placement, then
// input order. Placing hard tenants first is the PRISM-style heuristic both
// solvers share.
func (p *Problem) solveOrder() []int {
	type h struct {
		i      int
		spread float64
		demand int64
	}
	hs := make([]h, len(p.Tenants))
	for i, ts := range p.Tenants {
		worst := ts.Menu[len(ts.Menu)-1]
		var dem int64
		for si := range p.Budgets {
			if p.Budgets[si] >= 0 {
				dem += ts.Menu[0].Demand[si]
			}
		}
		hs[i] = h{i: i, spread: ts.Weight * worst.PredictedNS / ts.BestNS, demand: dem}
	}
	order := make([]int, len(hs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if hs[a].spread != hs[b].spread {
			return hs[a].spread > hs[b].spread
		}
		if hs[a].demand != hs[b].demand {
			return hs[a].demand > hs[b].demand
		}
		return a < b
	})
	return order
}

// Solve builds the problem and runs one solver — the convenience entry point
// the service and CLI use.
func Solve(ctx context.Context, adv *advisor.Advisor, tenants []Tenant, opt Options) (*Result, error) {
	p, err := NewProblem(ctx, adv, tenants, opt)
	if err != nil {
		return nil, err
	}
	rec := opt.Recorder
	if rec == nil && adv != nil {
		rec = adv.Recorder
	}
	return p.Solve(ctx, opt.Solver, rec)
}
