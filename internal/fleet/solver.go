package fleet

import (
	"context"
	"math"
	"sort"
	"strconv"
	"strings"

	"gpuhms/internal/hmserr"
)

// Solver picks one menu entry per tenant subject to the budgets. Like the
// single-kernel Strategy set, the interface is closed (unexported solve) so
// the contracts — determinism for any caller concurrency, ctx-cancel
// precedence, capacity infeasibility as hmserr.ErrCapacityExceeded — stay
// enforceable. Pick by constructor or parse a wire spec with ParseSolver.
type Solver interface {
	// Spec returns the canonical wire spelling ("greedy", "beam-4"): what
	// the service echoes in responses and keys its fleet cache on.
	Spec() string

	solve(e *engine) error
}

// DefaultBeamWidth is the frontier width Beam uses when none is given; also
// what the bare "beam" spec parses to.
const DefaultBeamWidth = 4

// MaxBeamWidth caps the frontier width accepted from wire specs.
const MaxBeamWidth = 4096

// Greedy returns the lookahead-greedy solver (the PRISM/ShinkaEvolve shape):
// tenants are visited hardest-first; each candidate assignment is scored by
// the objective that *results* from it — assigned tenants exact, unassigned
// tenants optimistically at their best still-fitting entry — and the
// candidate minimizing that future objective wins (preferring candidates
// that strand fewer unassigned tenants, ties to the faster menu entry). A
// deterministic local-search polish then applies single-tenant reassignments
// that strictly improve the exact objective, to a fixed point.
func Greedy() Solver { return greedySolver{} }

// Beam returns a width-w beam over tenants hardest-first. Each frontier
// state holds a partial assignment; children are ranked by an admissible
// completion bound — assigned tenants exact, each unassigned tenant at the
// larger of its core.PlacementBound floor and its best entry fitting the
// remaining capacity alone (capacity only shrinks, so neither underestimate
// can exceed the true eventual slowdown) — and the best w survive. Discards
// are counted as pruned.
func Beam(width int) Solver {
	if width < 1 {
		width = DefaultBeamWidth
	}
	if width > MaxBeamWidth {
		width = MaxBeamWidth
	}
	return beamSolver{width: width}
}

// ParseSolver converts a wire spec into a Solver: "" or "greedy", "beam"
// (DefaultBeamWidth), or "beam-W". Unknown specs wrap
// hmserr.ErrUnknownStrategy, like advisor.ParseStrategy.
func ParseSolver(spec string) (Solver, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	switch s {
	case "", "greedy":
		return Greedy(), nil
	case "beam":
		return Beam(DefaultBeamWidth), nil
	}
	if w, ok := strings.CutPrefix(s, "beam-"); ok {
		n, err := strconv.Atoi(w)
		if err == nil && n >= 1 {
			if n > MaxBeamWidth {
				return nil, hmserr.Wrap(hmserr.ErrUnknownStrategy,
					"fleet beam width %d exceeds max %d", n, MaxBeamWidth)
			}
			return Beam(n), nil
		}
	}
	return nil, hmserr.Wrap(hmserr.ErrUnknownStrategy,
		"%q (want greedy or beam-W)", spec)
}

// engine is the shared assignment-search state: the problem, the visit
// order, the chosen menu index per tenant (-1 = unassigned), committed
// usage, and the solver's eval/prune counters.
type engine struct {
	ctx    context.Context
	p      *Problem
	order  []int
	chosen []int
	used   Demand
	evals  int
	pruned int
}

// infeasiblef is the typed capacity-infeasibility error of both solvers.
func infeasiblef(name string) error {
	return hmserr.Wrap(hmserr.ErrCapacityExceeded,
		"no capacity-feasible placement for tenant %q under the fleet budgets", name)
}

// objectiveWith is the exact objective over the assigned tenants, with
// tenant ti overridden to menu entry mi (mi < 0 leaves ti out).
func (e *engine) objectiveWith(ti, mi int) float64 {
	acc := objAcc{o: e.p.Objective}
	for i, ts := range e.p.Tenants {
		ci := e.chosen[i]
		if i == ti {
			ci = mi
		}
		if ci < 0 {
			continue
		}
		acc.add(ts.Weight * ts.Menu[ci].PredictedNS / ts.BestNS)
	}
	return acc.v
}

// lookahead scores assigning menu entry mi to tenant ti: the objective that
// results when already-assigned tenants keep their exact entries and each
// still-unassigned tenant optimistically takes its best entry fitting the
// hypothetical remaining capacity alone. The second return counts unassigned
// tenants with no fitting entry at all — candidates stranding fewer tenants
// always win.
func (e *engine) lookahead(ti, mi int) (float64, int) {
	p := e.p
	hyp := e.used.Plus(p.Tenants[ti].Menu[mi].Demand)
	acc := objAcc{o: p.Objective}
	stranded := 0
	for i, ts := range p.Tenants {
		switch {
		case i == ti:
			acc.add(ts.Weight * ts.Menu[mi].PredictedNS / ts.BestNS)
		case e.chosen[i] >= 0:
			acc.add(ts.Weight * ts.Menu[e.chosen[i]].PredictedNS / ts.BestNS)
		default:
			fi := bestFitting(ts, hyp, p.Budgets)
			if fi < 0 {
				stranded++
				continue
			}
			acc.add(ts.Weight * ts.Menu[fi].PredictedNS / ts.BestNS)
		}
	}
	return acc.v, stranded
}

// greedySolver is the lookahead greedy with local-search polish.
type greedySolver struct{}

func (greedySolver) Spec() string { return "greedy" }

func (greedySolver) solve(e *engine) error {
	p := e.p
	for _, ti := range e.order {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		ts := p.Tenants[ti]
		bestMi := -1
		bestScore := math.Inf(1)
		bestStranded := math.MaxInt
		for mi := range ts.Menu {
			if !p.Budgets.Fits(e.used, ts.Menu[mi].Demand) {
				continue
			}
			e.evals++
			score, stranded := e.lookahead(ti, mi)
			// Menus are fastest-first, so strict improvement keeps the
			// faster entry on ties — the deterministic tie-break.
			if stranded < bestStranded || (stranded == bestStranded && score < bestScore) {
				bestMi, bestScore, bestStranded = mi, score, stranded
			}
		}
		if bestMi < 0 {
			return infeasiblef(ts.Name)
		}
		e.chosen[ti] = bestMi
		e.used = e.used.Plus(ts.Menu[bestMi].Demand)
	}
	e.polish()
	return nil
}

// polish is the exemplars' local-search step: scan tenants in input order
// for single-tenant reassignments that strictly lower the exact objective,
// repeating until a full pass finds none. Strict improvement on a finite
// menu space guarantees termination; the pass cap is a safety net.
func (e *engine) polish() {
	p := e.p
	for pass := 0; pass < 8*len(p.Tenants)+8; pass++ {
		improved := false
		for ti, ts := range p.Tenants {
			cur := e.chosen[ti]
			base := e.used.Minus(ts.Menu[cur].Demand)
			bestMi := cur
			bestObj := e.objectiveWith(ti, cur)
			for mi := range ts.Menu {
				if mi == cur || !p.Budgets.Fits(base, ts.Menu[mi].Demand) {
					continue
				}
				e.evals++
				if obj := e.objectiveWith(ti, mi); obj < bestObj {
					bestObj, bestMi = obj, mi
				}
			}
			if bestMi != cur {
				e.chosen[ti] = bestMi
				e.used = base.Plus(ts.Menu[bestMi].Demand)
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// beamState is one partial assignment on the beam frontier. bound is the
// admissible completion bound; for a complete state it equals the exact
// objective (no unassigned floors remain).
type beamState struct {
	chosen []int
	used   Demand
	bound  float64
}

// completionBound computes the admissible bound of a state: assigned tenants
// contribute exactly; each unassigned tenant contributes the larger of its
// model-derived floor (core.PlacementBound over the whole space) and its
// fastest menu entry fitting the remaining capacity alone. Remaining
// capacity only shrinks as more tenants commit, so the per-tenant floor
// never exceeds the tenant's eventual slowdown — summed (or maxed) floors
// stay below any completion's objective. +Inf when some unassigned tenant
// cannot fit at all (no completion exists).
func (e *engine) completionBound(chosen []int, used Demand) float64 {
	p := e.p
	acc := objAcc{o: p.Objective}
	for i, ts := range p.Tenants {
		if chosen[i] >= 0 {
			acc.add(ts.Weight * ts.Menu[chosen[i]].PredictedNS / ts.BestNS)
			continue
		}
		fi := bestFitting(ts, used, p.Budgets)
		if fi < 0 {
			return math.Inf(1)
		}
		floor := ts.Menu[fi].PredictedNS
		if ts.FloorNS > floor {
			floor = ts.FloorNS
		}
		acc.add(ts.Weight * floor / ts.BestNS)
	}
	return acc.v
}

// beamSolver is the fleet-level beam search.
type beamSolver struct{ width int }

func (b beamSolver) Spec() string { return "beam-" + strconv.Itoa(b.width) }

func (b beamSolver) solve(e *engine) error {
	p := e.p
	root := beamState{chosen: make([]int, len(p.Tenants))}
	for i := range root.chosen {
		root.chosen[i] = -1
	}
	root.bound = e.completionBound(root.chosen, root.used)
	if math.IsInf(root.bound, 1) {
		// Some tenant cannot fit even into an empty machine.
		for _, ti := range e.order {
			if bestFitting(p.Tenants[ti], Demand{}, p.Budgets) < 0 {
				return infeasiblef(p.Tenants[ti].Name)
			}
		}
	}
	frontier := []beamState{root}

	for _, ti := range e.order {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		ts := p.Tenants[ti]
		var children []beamState
		for _, st := range frontier {
			for mi := range ts.Menu {
				if !p.Budgets.Fits(st.used, ts.Menu[mi].Demand) {
					continue
				}
				e.evals++
				child := beamState{
					chosen: append([]int(nil), st.chosen...),
					used:   st.used.Plus(ts.Menu[mi].Demand),
				}
				child.chosen[ti] = mi
				child.bound = e.completionBound(child.chosen, child.used)
				if math.IsInf(child.bound, 1) {
					// No completion fits under this child; joint feasibility
					// is monotone in used capacity, so the subtree is dead.
					e.pruned++
					continue
				}
				children = append(children, child)
			}
		}
		if len(children) == 0 {
			return infeasiblef(ts.Name)
		}
		// Rank by (bound, lexicographic chosen vector): the chosen vectors of
		// one level assign the same tenant set, so the comparison is total
		// and the frontier — hence the result — is deterministic.
		sort.Slice(children, func(x, y int) bool {
			if children[x].bound != children[y].bound {
				return children[x].bound < children[y].bound
			}
			for k := range children[x].chosen {
				if children[x].chosen[k] != children[y].chosen[k] {
					return children[x].chosen[k] < children[y].chosen[k]
				}
			}
			return false
		})
		if len(children) > b.width {
			e.pruned += len(children) - b.width
			children = children[:b.width]
		}
		frontier = children
	}

	// Every frontier state is complete, so bound == exact objective and the
	// sort above already put the best (and lexicographically smallest among
	// ties) first.
	best := frontier[0]
	copy(e.chosen, best.chosen)
	e.used = best.used
	return nil
}
