package fleet

import (
	"sort"

	"gpuhms/internal/gpu"
)

// Mix is a bundled synthetic tenant mix: a named fleet scenario with
// optional per-space budget overrides on top of DefaultBudgets. Mixes give
// the service, the CLI, the benchmarks, and the golden tests one shared
// vocabulary of reproducible fleet problems.
type Mix struct {
	Name        string
	Description string
	Tenants     []Tenant
	// Budgets overrides individual spaces of DefaultBudgets (keyed by
	// space; absent spaces keep the architecture default).
	Budgets map[gpu.MemSpace]int64
}

// BudgetsOn resolves the mix's budgets against an architecture.
func (m Mix) BudgetsOn(cfg *gpu.Config) Budgets {
	b := DefaultBudgets(cfg)
	for sp, v := range m.Budgets {
		b[sp] = v
	}
	return b
}

// The bundled mixes. Demands quoted below are the K80 scale-1 best-placement
// shared footprints the golden tests pin.
var mixes = map[string]Mix{
	"balanced": {
		Name: "balanced",
		Description: "four small kernels whose unconstrained best placements " +
			"coexist within the K80's capacities; the fleet answer matches " +
			"independent ranking (objective 1.0)",
		Tenants: []Tenant{
			{Kernel: "md"}, {Kernel: "histogram"}, {Kernel: "vecadd"}, {Kernel: "reduction"},
		},
	},
	"shared-squeeze": {
		Name: "shared-squeeze",
		Description: "four kernels whose aggregate best-placement shared demand " +
			"(~14.1 KiB) overflows a 12 KiB shared budget, so capacity pressure " +
			"changes the optimum: naive first-fit starves the shared-hungry " +
			"tail while the fleet solvers starve the tenant that barely cares",
		Tenants: []Tenant{
			{Kernel: "spmv"}, {Kernel: "vecadd"}, {Kernel: "fft"}, {Kernel: "sort"},
		},
		Budgets: map[gpu.MemSpace]int64{gpu.Shared: 12 << 10},
	},
	"shared-storm": {
		Name: "shared-storm",
		Description: "six tenants contending for a 4 KiB shared budget — the " +
			"larger benchmark scenario for solver comparisons",
		Tenants: []Tenant{
			{Kernel: "sort"}, {Kernel: "fft"}, {Kernel: "reduction"},
			{Kernel: "kmeans"}, {Kernel: "vecadd"}, {Kernel: "md"},
		},
		Budgets: map[gpu.MemSpace]int64{gpu.Shared: 4 << 10},
	},
}

// MixNames lists the bundled mixes, sorted.
func MixNames() []string {
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GetMix returns a bundled mix by name. The returned value's slices and maps
// are copies: callers may mutate them freely.
func GetMix(name string) (Mix, bool) {
	m, ok := mixes[name]
	if !ok {
		return Mix{}, false
	}
	cp := m
	cp.Tenants = append([]Tenant(nil), m.Tenants...)
	if m.Budgets != nil {
		cp.Budgets = make(map[gpu.MemSpace]int64, len(m.Budgets))
		for k, v := range m.Budgets {
			cp.Budgets[k] = v
		}
	}
	return cp, true
}
