package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"gpuhms/internal/advisor"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
)

// sharedAdvisor trains one K80 advisor for the whole package's tests (model
// training is the expensive part and the advisor is read-only afterwards).
var (
	advOnce sync.Once
	advK80  *advisor.Advisor
	advErr  error
)

func testAdvisor(t *testing.T) *advisor.Advisor {
	t.Helper()
	advOnce.Do(func() {
		advK80, advErr = advisor.New(gpu.KeplerK80())
	})
	if advErr != nil {
		t.Fatalf("training advisor: %v", advErr)
	}
	return advK80
}

// squeezeProblem builds the shared-squeeze mix's problem once; solving it is
// cheap and side-effect-free, so tests share the instance.
var (
	squeezeOnce sync.Once
	squeezeProb *Problem
	squeezeErr  error
)

func testSqueezeProblem(t *testing.T) *Problem {
	t.Helper()
	adv := testAdvisor(t)
	squeezeOnce.Do(func() {
		mix, _ := GetMix("shared-squeeze")
		b := mix.BudgetsOn(adv.Cfg)
		squeezeProb, squeezeErr = NewProblem(context.Background(), adv, mix.Tenants, Options{Budgets: &b})
	})
	if squeezeErr != nil {
		t.Fatalf("building shared-squeeze problem: %v", squeezeErr)
	}
	return squeezeProb
}

// TestGoldenSharedSqueeze is the acceptance golden: on the bundled mix whose
// aggregate best-placement shared demand exceeds the 12 KiB shared budget,
// both fleet solvers must return capacity-feasible placements whose min-max
// slowdown beats naive independent first-fit placement.
func TestGoldenSharedSqueeze(t *testing.T) {
	p := testSqueezeProblem(t)

	var aggregate Demand
	for _, ts := range p.Tenants {
		aggregate = aggregate.Plus(ts.Menu[0].Demand)
	}
	if p.Budgets.Fits(Demand{}, aggregate) {
		t.Fatalf("mix is not contended: aggregate best demand %v fits budgets %v",
			aggregate, p.Budgets)
	}

	for _, solver := range []Solver{Greedy(), Beam(DefaultBeamWidth)} {
		res, err := p.Solve(context.Background(), solver, nil)
		if err != nil {
			t.Fatalf("%s: %v", solver.Spec(), err)
		}
		// Capacity-feasible: usage within every bounded budget.
		for i := range p.Budgets {
			if p.Budgets[i] >= 0 && res.Usage[i] > p.Budgets[i] {
				t.Errorf("%s: usage[%s] = %d exceeds budget %d",
					solver.Spec(), gpu.Spaces[i].LongString(), res.Usage[i], p.Budgets[i])
			}
		}
		if !res.Independent.Feasible {
			t.Fatalf("%s: first-fit baseline unexpectedly infeasible", solver.Spec())
		}
		if res.Independent.UnconstrainedFits {
			t.Errorf("%s: baseline claims unconstrained bests fit on a contended mix", solver.Spec())
		}
		// Golden bounds: the naive baseline starves a shared-hungry tenant
		// (sort suffers ~1.8x without shared memory), the fleet solvers
		// starve the tenant that barely cares (spmv, ~1.01x).
		if res.Independent.ObjectiveValue < 1.5 {
			t.Errorf("%s: naive baseline objective %.4f, want >= 1.5 (mix not contended enough)",
				solver.Spec(), res.Independent.ObjectiveValue)
		}
		if res.ObjectiveValue > 1.10 {
			t.Errorf("%s: fleet objective %.4f, want <= 1.10", solver.Spec(), res.ObjectiveValue)
		}
		if res.ObjectiveValue >= res.Independent.ObjectiveValue {
			t.Errorf("%s: fleet objective %.4f does not beat naive %.4f",
				solver.Spec(), res.ObjectiveValue, res.Independent.ObjectiveValue)
		}
		if len(res.Assignments) != len(p.Tenants) {
			t.Fatalf("%s: %d assignments for %d tenants", solver.Spec(), len(res.Assignments), len(p.Tenants))
		}
	}
}

// TestBeamAtLeastAsGoodAsGreedy: with a wide beam the search is closer to
// exhaustive over menus, so its objective must not exceed greedy's.
func TestBeamAtLeastAsGoodAsGreedy(t *testing.T) {
	p := testSqueezeProblem(t)
	g, err := p.Solve(context.Background(), Greedy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Solve(context.Background(), Beam(64), nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.ObjectiveValue > g.ObjectiveValue+1e-9 {
		t.Errorf("beam-64 objective %.6f worse than greedy %.6f", b.ObjectiveValue, g.ObjectiveValue)
	}
}

// TestBalancedMixUncontended: when every tenant's best fits, both solvers
// give everyone their unconstrained best (objective exactly 1.0) and the
// baseline agrees.
func TestBalancedMixUncontended(t *testing.T) {
	adv := testAdvisor(t)
	mix, ok := GetMix("balanced")
	if !ok {
		t.Fatal("balanced mix missing")
	}
	b := mix.BudgetsOn(adv.Cfg)
	p, err := NewProblem(context.Background(), adv, mix.Tenants, Options{Budgets: &b})
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []Solver{Greedy(), Beam(DefaultBeamWidth)} {
		res, err := p.Solve(context.Background(), solver, nil)
		if err != nil {
			t.Fatalf("%s: %v", solver.Spec(), err)
		}
		if !res.Independent.UnconstrainedFits {
			t.Errorf("%s: balanced mix should fit unconstrained", solver.Spec())
		}
		if res.ObjectiveValue != 1.0 {
			t.Errorf("%s: objective %.6f, want exactly 1.0", solver.Spec(), res.ObjectiveValue)
		}
		for _, a := range res.Assignments {
			if a.Slowdown != 1.0 {
				t.Errorf("%s: tenant %s slowdown %.4f, want 1.0", solver.Spec(), a.Tenant, a.Slowdown)
			}
		}
	}
}

// TestFleetDeterminismAcrossWorkers: the acceptance determinism suite — the
// whole pipeline (menus built at parallelism 1, 2, 8; then each solver) must
// produce byte-identical results for every worker count.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	adv := testAdvisor(t)
	// A cheap contended mix (no spmv): shared budget 2 KiB forces choices.
	tenants := []Tenant{{Kernel: "sort"}, {Kernel: "fft"}, {Kernel: "vecadd"}, {Kernel: "reduction"}}
	budgets := DefaultBudgets(adv.Cfg)
	budgets[gpu.Shared] = 2 << 10

	type run struct {
		workers int
		bytes   map[string][]byte
	}
	var runs []run
	for _, workers := range []int{1, 2, 8} {
		p, err := NewProblem(context.Background(), adv, tenants, Options{
			Budgets: &budgets, Parallelism: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		r := run{workers: workers, bytes: map[string][]byte{}}
		for _, solver := range []Solver{Greedy(), Beam(2), Beam(DefaultBeamWidth)} {
			res, err := p.Solve(context.Background(), solver, nil)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, solver.Spec(), err)
			}
			// Serialize everything determinism-relevant.
			type row struct {
				Tenant string
				Spec   string
				NS     float64
			}
			var rows []row
			for _, a := range res.Assignments {
				rows = append(rows, row{a.Tenant, a.Spec, a.PredictedNS})
			}
			blob, err := json.Marshal(struct {
				Objective float64
				Rows      []row
				Usage     Demand
			}{res.ObjectiveValue, rows, res.Usage})
			if err != nil {
				t.Fatal(err)
			}
			r.bytes[solver.Spec()] = blob
		}
		runs = append(runs, r)
	}
	for _, r := range runs[1:] {
		for spec, blob := range r.bytes {
			if string(blob) != string(runs[0].bytes[spec]) {
				t.Errorf("%s: workers=%d result differs from workers=1:\n%s\nvs\n%s",
					spec, r.workers, blob, runs[0].bytes[spec])
			}
		}
	}
}

// TestFleetInfeasible: a budget nobody fits under must surface
// ErrCapacityExceeded (and, via the chain, ErrIllegalPlacement) from both
// solvers — never a panic or a silent bad assignment.
func TestFleetInfeasible(t *testing.T) {
	adv := testAdvisor(t)
	budgets := DefaultBudgets(adv.Cfg)
	budgets[gpu.Global] = 4 // every space gets 4 bytes: no array fits anywhere
	budgets[gpu.Shared] = 4
	budgets[gpu.Texture1D] = 4
	budgets[gpu.Texture2D] = 4
	budgets[gpu.Constant] = 4
	p, err := NewProblem(context.Background(), adv, []Tenant{{Kernel: "vecadd"}}, Options{Budgets: &budgets})
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []Solver{Greedy(), Beam(DefaultBeamWidth)} {
		_, err := p.Solve(context.Background(), solver, nil)
		if !errors.Is(err, hmserr.ErrCapacityExceeded) {
			t.Errorf("%s: err = %v, want ErrCapacityExceeded", solver.Spec(), err)
		}
		if !errors.Is(err, hmserr.ErrIllegalPlacement) {
			t.Errorf("%s: capacity error must chain onto ErrIllegalPlacement", solver.Spec())
		}
	}
}

// TestFleetUnknownKernel: unknown tenant kernels surface the fleet sentinel.
func TestFleetUnknownKernel(t *testing.T) {
	adv := testAdvisor(t)
	_, err := NewProblem(context.Background(), adv, []Tenant{{Kernel: "nosuch"}}, Options{})
	if !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("err = %v, want ErrUnknownKernel", err)
	}
}

// TestFleetMenuBudget: a MaxCandidates budget too small to build the menus
// returns a *hmserr.BudgetError, not a partial problem.
func TestFleetMenuBudget(t *testing.T) {
	adv := testAdvisor(t)
	_, err := NewProblem(context.Background(), adv,
		[]Tenant{{Kernel: "fft"}, {Kernel: "sort"}}, Options{MaxCandidates: 3})
	var be *hmserr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *hmserr.BudgetError", err)
	}
	if !errors.Is(err, hmserr.ErrBudgetExceeded) {
		t.Error("budget error must wrap ErrBudgetExceeded")
	}
}

// TestFleetCancellation: a canceled context aborts menu building promptly.
func TestFleetCancellation(t *testing.T) {
	adv := testAdvisor(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewProblem(ctx, adv, []Tenant{{Kernel: "vecadd"}}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestWeightedObjective: under WeightedSum, weights shift the optimum —
// a heavily-weighted shared-hungry tenant must keep its shared placement.
func TestWeightedObjective(t *testing.T) {
	adv := testAdvisor(t)
	budgets := DefaultBudgets(adv.Cfg)
	budgets[gpu.Shared] = 2 << 10 // sort (1088 B) and fft (2048 B) cannot both fit
	heavy := []Tenant{{Name: "light", Kernel: "fft"}, {Name: "heavy", Kernel: "sort", Weight: 100}}
	p, err := NewProblem(context.Background(), adv, heavy, Options{
		Budgets: &budgets, Objective: WeightedSum,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(context.Background(), Beam(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	var heavySlow, lightSlow float64
	for _, a := range res.Assignments {
		switch a.Tenant {
		case "heavy":
			heavySlow = a.Slowdown
		case "light":
			lightSlow = a.Slowdown
		}
	}
	if heavySlow > lightSlow {
		t.Errorf("weight-100 tenant slowed %.4fx more than weight-1 tenant (%.4fx)",
			heavySlow, lightSlow)
	}
}

// TestParseSolver pins the wire grammar.
func TestParseSolver(t *testing.T) {
	for spec, want := range map[string]string{
		"":        "greedy",
		"greedy":  "greedy",
		" GREEDY": "greedy",
		"beam":    "beam-4",
		"beam-2":  "beam-2",
		"beam-64": "beam-64",
	} {
		s, err := ParseSolver(spec)
		if err != nil {
			t.Errorf("ParseSolver(%q): %v", spec, err)
			continue
		}
		if s.Spec() != want {
			t.Errorf("ParseSolver(%q).Spec() = %q, want %q", spec, s.Spec(), want)
		}
	}
	for _, spec := range []string{"annealing", "beam-0", "beam-x", "beam-999999999"} {
		if _, err := ParseSolver(spec); !errors.Is(err, hmserr.ErrUnknownStrategy) {
			t.Errorf("ParseSolver(%q) = %v, want ErrUnknownStrategy", spec, err)
		}
	}
}

// TestParseObjective pins the objective grammar.
func TestParseObjective(t *testing.T) {
	for spec, want := range map[string]Objective{
		"": MinMax, "minmax": MinMax, "min-max": MinMax,
		"weighted": WeightedSum, "sum": WeightedSum,
	} {
		o, err := ParseObjective(spec)
		if err != nil || o != want {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", spec, o, err, want)
		}
	}
	if _, err := ParseObjective("fairness"); !errors.Is(err, hmserr.ErrUnknownStrategy) {
		t.Errorf("unknown objective must wrap ErrUnknownStrategy, got %v", err)
	}
}

// TestMixRegistry pins the bundled mixes and GetMix's copy semantics.
func TestMixRegistry(t *testing.T) {
	names := MixNames()
	if len(names) < 3 {
		t.Fatalf("want >= 3 bundled mixes, got %v", names)
	}
	for _, n := range names {
		m, ok := GetMix(n)
		if !ok || len(m.Tenants) == 0 {
			t.Errorf("mix %q unavailable or empty", n)
		}
	}
	m1, _ := GetMix("shared-squeeze")
	m1.Tenants[0].Kernel = "mutated"
	m1.Budgets[gpu.Shared] = 1
	m2, _ := GetMix("shared-squeeze")
	if m2.Tenants[0].Kernel == "mutated" || m2.Budgets[gpu.Shared] == 1 {
		t.Error("GetMix must return independent copies")
	}
	if _, ok := GetMix("nosuch"); ok {
		t.Error("unknown mix must not resolve")
	}
}

// TestDemandOf pins the demand accounting: shared entries are per-block
// footprints, others raw bytes, each charged to its own space.
func TestDemandOf(t *testing.T) {
	p := testSqueezeProblem(t)
	for _, ts := range p.Tenants {
		for _, c := range ts.Menu {
			var want Demand
			for i, sp := range c.Placement.Spaces {
				if sp == gpu.Shared {
					continue // checked via the placement package directly below
				}
				want[sp] += int64(ts.Trace.Arrays[i].Bytes())
			}
			for i := range gpu.Spaces {
				if gpu.Spaces[i] == gpu.Shared {
					continue
				}
				if c.Demand[i] != want[i] {
					t.Fatalf("tenant %s: demand[%s] = %d, want %d",
						ts.Name, gpu.Spaces[i].LongString(), c.Demand[i], want[i])
				}
			}
		}
	}
}
