package fleet

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"
)

// fleetLatencyStats mirrors the advisor bench artifact's latency shape so the
// BENCH_*.json reports read alike.
type fleetLatencyStats struct {
	N      int     `json:"n"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	MeanNS float64 `json:"mean_ns"`
}

func fleetSummarize(samples []time.Duration) fleetLatencyStats {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return float64(samples[i].Nanoseconds())
	}
	return fleetLatencyStats{
		N:      len(samples),
		P50NS:  pct(0.50),
		P99NS:  pct(0.99),
		MeanNS: float64(sum.Nanoseconds()) / float64(len(samples)),
	}
}

// fleetSolverReport is one (mix, solver) row in BENCH_fleet.json.
type fleetSolverReport struct {
	AssignEvals int               `json:"assign_evals"`
	Pruned      int               `json:"pruned,omitempty"`
	Wall        fleetLatencyStats `json:"wall"`
	Objective   float64           `json:"objective"`
	// Regret is this solver's objective / the best objective any bundled
	// solver reached on the mix (1.0 = matched the best).
	Regret float64 `json:"regret"`
	// BaselineObjective is the naive independent first-fit objective — the
	// number the fleet solvers exist to beat under contention.
	BaselineObjective float64 `json:"baseline_objective"`
}

// fleetMixReport is one mix's section of BENCH_fleet.json.
type fleetMixReport struct {
	Tenants   int                          `json:"tenants"`
	MenuEvals int                          `json:"menu_evals"`
	Budgets   string                       `json:"budgets"`
	Contended bool                         `json:"contended"`
	Solvers   map[string]fleetSolverReport `json:"solvers"`
}

// TestBenchFleetArtifact runs every bundled mix through the fleet solvers and
// writes BENCH_fleet.json: menu evaluations per mix, assignment evaluations
// and wall time per solver, and each solver's objective with greedy-vs-beam
// regret. Gated by BENCH_FLEET_OUT so the ordinary test run stays fast;
// scripts/bench_fleet.sh drives it.
//
// Asserted acceptance: every result is capacity-feasible, and on the
// contended mixes the fleet objective beats the naive independent baseline.
func TestBenchFleetArtifact(t *testing.T) {
	out := os.Getenv("BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("set BENCH_FLEET_OUT=/path/to/BENCH_fleet.json to run")
	}
	adv := testAdvisor(t)
	ctx := context.Background()

	const rounds = 5
	solvers := []Solver{Greedy(), Beam(DefaultBeamWidth)}
	mixReports := map[string]fleetMixReport{}
	for _, name := range MixNames() {
		mix, _ := GetMix(name)
		b := mix.BudgetsOn(adv.Cfg)
		p, err := NewProblem(ctx, adv, mix.Tenants, Options{
			Budgets: &b, Parallelism: runtime.NumCPU(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var aggregate Demand
		for _, ts := range p.Tenants {
			aggregate = aggregate.Plus(ts.Menu[0].Demand)
		}
		mr := fleetMixReport{
			Tenants:   len(p.Tenants),
			MenuEvals: p.MenuEvaluated,
			Budgets:   p.Budgets.String(),
			Contended: !p.Budgets.Fits(Demand{}, aggregate),
			Solvers:   map[string]fleetSolverReport{},
		}
		bestObjective := 0.0
		for _, solver := range solvers {
			var res *Result
			wall := make([]time.Duration, 0, rounds)
			for i := 0; i < rounds; i++ {
				start := time.Now()
				res, err = p.Solve(ctx, solver, nil)
				wall = append(wall, time.Since(start))
				if err != nil {
					t.Fatalf("%s/%s: %v", name, solver.Spec(), err)
				}
			}
			for sp := range p.Budgets {
				if p.Budgets[sp] >= 0 && res.Usage[sp] > p.Budgets[sp] {
					t.Errorf("%s/%s: infeasible result (usage %d > budget %d)",
						name, solver.Spec(), res.Usage[sp], p.Budgets[sp])
				}
			}
			if res.Independent.Feasible && res.ObjectiveValue > res.Independent.ObjectiveValue {
				t.Errorf("%s/%s: objective %.4f worse than naive baseline %.4f",
					name, solver.Spec(), res.ObjectiveValue, res.Independent.ObjectiveValue)
			}
			if name == "shared-squeeze" && res.ObjectiveValue >= res.Independent.ObjectiveValue {
				t.Errorf("shared-squeeze/%s: objective %.4f does not beat naive baseline %.4f",
					solver.Spec(), res.ObjectiveValue, res.Independent.ObjectiveValue)
			}
			if bestObjective == 0 || res.ObjectiveValue < bestObjective {
				bestObjective = res.ObjectiveValue
			}
			mr.Solvers[solver.Spec()] = fleetSolverReport{
				AssignEvals:       res.AssignEvaluated,
				Pruned:            res.Pruned,
				Wall:              fleetSummarize(wall),
				Objective:         res.ObjectiveValue,
				BaselineObjective: res.Independent.ObjectiveValue,
			}
		}
		for spec, sr := range mr.Solvers {
			sr.Regret = sr.Objective / bestObjective
			mr.Solvers[spec] = sr
		}
		mixReports[name] = mr
	}

	report := struct {
		Bench  string                    `json:"bench"`
		Arch   string                    `json:"arch"`
		NumCPU int                       `json:"num_cpu"`
		Mixes  map[string]fleetMixReport `json:"mixes"`
	}{
		Bench:  "fleet_solvers_bundled_mixes",
		Arch:   adv.Cfg.Name,
		NumCPU: runtime.NumCPU(),
		Mixes:  mixReports,
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	sq := mixReports["shared-squeeze"]
	t.Logf("wrote %s (shared-squeeze: greedy obj %.4f p50 %.2fµs, beam-%d obj %.4f p50 %.2fµs, baseline %.4f)",
		out, sq.Solvers["greedy"].Objective, sq.Solvers["greedy"].Wall.P50NS/1e3,
		DefaultBeamWidth, sq.Solvers["beam-4"].Objective, sq.Solvers["beam-4"].Wall.P50NS/1e3,
		sq.Solvers["greedy"].BaselineObjective)
}
