package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpuhms/internal/advisor"
	"gpuhms/internal/gpu"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
	"gpuhms/internal/sim"
	"gpuhms/internal/trace"
)

// Training the advisor takes ~1.5s; every test shares one. The Advisor is
// documented safe for concurrent use, which is exactly the service's
// operating mode.
var (
	advOnce   sync.Once
	sharedAdv *advisor.Advisor
	advErr    error
)

func testAdvisor(t testing.TB) *advisor.Advisor {
	t.Helper()
	advOnce.Do(func() { sharedAdv, advErr = advisor.New(gpu.MustLookup("k80")) })
	if advErr != nil {
		t.Fatalf("training advisor: %v", advErr)
	}
	return sharedAdv
}

// newTestServer builds a server over the shared advisor.
func newTestServer(t testing.TB, opt Options) *Server {
	t.Helper()
	s, err := New(map[string]*advisor.Advisor{"k80": testAdvisor(t)}, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// blockingMeasurer blocks every profiling run until release is closed (or
// the run's context ends), then delegates to a real simulator. It makes
// deadline, backpressure, and shutdown behavior deterministic.
type blockingMeasurer struct {
	cfg     *gpu.Config
	started chan struct{} // one tick per run that began
	release chan struct{}
}

func newBlockingMeasurer(cfg *gpu.Config) *blockingMeasurer {
	return &blockingMeasurer{cfg: cfg, started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (m *blockingMeasurer) Run(t *trace.Trace, sample, target *placement.Placement) (*sim.Measurement, error) {
	return m.RunContext(context.Background(), t, sample, target)
}

func (m *blockingMeasurer) RunContext(ctx context.Context, t *trace.Trace, sample, target *placement.Placement) (*sim.Measurement, error) {
	select {
	case m.started <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-m.release:
		return sim.New(m.cfg).RunContext(ctx, t, sample, target)
	}
}

// blockingServer builds a server whose advisor blocks in the profiling run.
func blockingServer(t testing.TB, opt Options) (*Server, *blockingMeasurer) {
	t.Helper()
	base := testAdvisor(t)
	m := newBlockingMeasurer(base.Cfg)
	adv := &advisor.Advisor{Cfg: base.Cfg, Model: base.Model, Measurer: m}
	s, err := New(map[string]*advisor.Advisor{"k80": adv}, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		m.releaseAll()
		s.Close()
	})
	return s, m
}

// releaseAll unblocks every current and future run (idempotent).
func (m *blockingMeasurer) releaseAll() {
	defer func() { recover() }() // double-close across cleanup paths is fine
	close(m.release)
}

// doJSON posts a JSON body to the server's handler and returns the
// recorded response.
func doJSON(t testing.TB, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	return doJSONCtx(t, context.Background(), s, method, path, body)
}

func doJSONCtx(t testing.TB, ctx context.Context, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if raw, ok := body.(string); ok {
			buf.WriteString(raw)
		} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf).WithContext(ctx)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func decodeRank(t testing.TB, rr *httptest.ResponseRecorder) *RankResponse {
	t.Helper()
	var resp RankResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding rank response %q: %v", rr.Body.String(), err)
	}
	return &resp
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "GET", "/healthz", nil)
	if rr.Code != 200 {
		t.Fatalf("healthz status %d", rr.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Archs) != 1 || h.Archs[0] != "k80" {
		t.Fatalf("healthz body %+v", h)
	}
}

func TestKernelsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "GET", "/v1/kernels", nil)
	if rr.Code != 200 {
		t.Fatalf("kernels status %d", rr.Code)
	}
	var resp KernelsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Kernels) < 10 {
		t.Fatalf("only %d kernels listed", len(resp.Kernels))
	}
	seen := false
	for _, k := range resp.Kernels {
		if k.Name == "matrixMul" {
			seen = true
		}
	}
	if !seen {
		t.Fatal("matrixMul missing from /v1/kernels")
	}
}

func TestRankOK(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft"})
	if rr.Code != 200 {
		t.Fatalf("rank status %d: %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("X-HMS-Cache"); got != cacheMiss {
		t.Fatalf("X-HMS-Cache = %q, want %q", got, cacheMiss)
	}
	resp := decodeRank(t, rr)
	if resp.Arch != "k80" || resp.Kernel != "fft" || resp.Scale != 1 {
		t.Fatalf("echoed fields wrong: %+v", resp)
	}
	if len(resp.Ranked) == 0 {
		t.Fatal("empty ranking")
	}
	sampleRows := 0
	for i, r := range resp.Ranked {
		if r.PredictedNS <= 0 {
			t.Fatalf("row %d has non-positive prediction", i)
		}
		if i > 0 && r.PredictedNS < resp.Ranked[i-1].PredictedNS {
			t.Fatalf("ranking not ascending at row %d", i)
		}
		if r.IsSample {
			sampleRows++
			if r.SpeedupVsSample < 0.999 || r.SpeedupVsSample > 1.001 {
				t.Fatalf("sample row speedup %.3f, want 1.0", r.SpeedupVsSample)
			}
		}
	}
	if sampleRows != 1 {
		t.Fatalf("%d sample rows, want 1", sampleRows)
	}
}

func TestPredictOK(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/predict", PredictRequest{Kernel: "fft", Target: "smem:G"})
	if rr.Code != 200 {
		t.Fatalf("predict status %d: %s", rr.Code, rr.Body.String())
	}
	var resp PredictResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PredictedNS <= 0 {
		t.Fatalf("predicted %f ns", resp.PredictedNS)
	}
}

// TestStatusMapping drives every client-error path end to end: hostile or
// wrong requests map to 4xx, never 5xx, with the taxonomy code attached.
func TestStatusMapping(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name string
		body any
		want int
		code string
	}{
		{"malformed JSON", `{"kernel": `, 400, "bad_request"},
		{"empty body", ``, 400, "bad_request"},
		{"missing kernel", RankRequest{}, 400, "bad_request"},
		{"unknown kernel", RankRequest{Kernel: "no-such-kernel"}, 404, "unknown_kernel"},
		{"unknown arch", RankRequest{Kernel: "fft", Arch: "h100"}, 404, "unknown_arch"},
		{"bad sample spec", RankRequest{Kernel: "fft", Sample: "nosucharray:G"}, 400, "illegal_placement"},
		{"bad space", RankRequest{Kernel: "fft", Sample: "smem:Q"}, 400, "illegal_placement"},
		{"huge scale", RankRequest{Kernel: "fft", Scale: 1 << 30}, 400, "bad_request"},
		{"negative scale", RankRequest{Kernel: "fft", Scale: -4}, 400, "bad_request"},
		{"negative budget", RankRequest{Kernel: "fft", MaxCandidates: -1}, 400, "bad_request"},
		{"negative top_k", RankRequest{Kernel: "fft", TopK: -2}, 400, "bad_request"},
		{"negative timeout", RankRequest{Kernel: "fft", TimeoutMS: -100}, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := doJSON(t, s, "POST", "/v1/rank", tc.body)
			if rr.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", rr.Code, tc.want, rr.Body.String())
			}
			var er ErrorResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body not JSON: %v", err)
			}
			if er.Code != tc.code {
				t.Fatalf("code %q, want %q", er.Code, tc.code)
			}
		})
	}
	if rr := doJSON(t, s, "GET", "/v1/rank", nil); rr.Code != 405 {
		t.Fatalf("GET /v1/rank status %d, want 405", rr.Code)
	}
}

func TestRankBudgetPartial206(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", MaxCandidates: 2})
	if rr.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rr.Code, rr.Body.String())
	}
	resp := decodeRank(t, rr)
	if !resp.Partial || resp.Coverage == nil {
		t.Fatalf("partial metadata missing: %+v", resp)
	}
	if resp.Coverage.Evaluated != 2 || resp.Coverage.Total <= 2 {
		t.Fatalf("coverage %+v, want 2 of >2", resp.Coverage)
	}
	if len(resp.Ranked) == 0 || len(resp.Ranked) > 2 {
		t.Fatalf("%d ranked rows for a 2-candidate budget", len(resp.Ranked))
	}
}

// TestRankDeadline504 maps a search that exceeds its requested timeout_ms
// onto 504 and verifies the worker goroutines drain rather than leak.
func TestRankDeadline504(t *testing.T) {
	before := runtime.NumGoroutine()
	s, _ := blockingServer(t, Options{Workers: 2, QueueCap: 4})
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TimeoutMS: 50})
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rr.Code, rr.Body.String())
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Code != "deadline" {
		t.Fatalf("error body %s (unmarshal %v)", rr.Body.String(), err)
	}
	// A failed search must not be negatively cached: the key is free again.
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("failed search cached (%d entries)", n)
	}
	s.Close()
	waitGoroutines(t, before)
}

// TestRankClientCancel499 verifies a departed client maps to 499 while the
// search keeps running and still lands in the cache for the next caller.
func TestRankClientCancel499(t *testing.T) {
	s, m := blockingServer(t, Options{Workers: 2, QueueCap: 4})
	ctx, cancel := context.WithCancel(context.Background())
	codes := make(chan int, 1)
	go func() {
		rr := doJSONCtx(t, ctx, s, "POST", "/v1/rank", RankRequest{Kernel: "fft"})
		codes <- rr.Code
	}()
	<-m.started // the search is on a worker
	cancel()    // the client goes away
	select {
	case code := <-codes:
		if code != StatusClientClosedRequest {
			t.Fatalf("status %d, want %d", code, StatusClientClosedRequest)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client cancel")
	}
	// The abandoned search completes and is cached: the next identical
	// request is a hit without a second search.
	m.releaseAll()
	deadline := time.Now().Add(5 * time.Second)
	for s.cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned search never cached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft"})
	if rr.Code != 200 || rr.Header().Get("X-HMS-Cache") != cacheHit {
		t.Fatalf("follow-up status %d cache %q, want 200 hit", rr.Code, rr.Header().Get("X-HMS-Cache"))
	}
}

// TestQueueFull429 fills the single worker and the one-slot queue, then
// verifies the next distinct request is shed with 429 + Retry-After.
func TestQueueFull429(t *testing.T) {
	s, m := blockingServer(t, Options{Workers: 1, QueueCap: 1, RetryAfter: 7})
	var running sync.WaitGroup
	running.Add(1)
	go func() { // occupies the worker
		defer running.Done()
		doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TopK: 1})
	}()
	<-m.started // the first search is on the worker, so the queue is free
	running.Add(1)
	go func() { // distinct TopK = distinct cache key: occupies the queue slot
		defer running.Done()
		doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TopK: 2})
	}()
	// Wait until the second request's job occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TopK: 3})
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rr.Code, rr.Body.String())
	}
	// Retry-After is full-jitter over the queue-scaled base: with base 7
	// and a full one-slot queue the exponent is maxed, so the value lands
	// in [1, 7<<4]. Exact values vary by design; the bounds must hold.
	ra, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 7<<4 {
		t.Fatalf("Retry-After %q outside jitter bounds [1,%d]", rr.Header().Get("Retry-After"), 7<<4)
	}
	if counterVal(s, obs.MetricServiceRejectedTotal) == 0 {
		t.Fatal("service_rejected_total not incremented")
	}
	m.releaseAll()
	running.Wait()
}

// TestGracefulShutdownCancelsInflight verifies Shutdown with an expired
// grace aborts in-flight searches via context cancellation instead of
// hanging, and that the drained pool refuses new work with 503.
func TestGracefulShutdownCancelsInflight(t *testing.T) {
	s, m := blockingServer(t, Options{Workers: 1, QueueCap: 4})
	codes := make(chan int, 1)
	go func() {
		rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft"})
		codes <- rr.Code
	}()
	<-m.started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("shutdown took %v despite cancellation", elapsed)
	}
	select {
	case code := <-codes:
		// The canceled search maps to 499 (base context canceled).
		if code != StatusClientClosedRequest {
			t.Fatalf("in-flight request status %d, want %d", code, StatusClientClosedRequest)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight handler never returned")
	}
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TopK: 9})
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d, want 503", rr.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TopK: 1})
	rr := doJSON(t, s, "GET", "/metrics", nil)
	if rr.Code != 200 {
		t.Fatalf("metrics status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		obs.MetricServiceRequestsTotal,
		obs.MetricServiceSearchesTotal,
		obs.MetricServiceRequestNS + "_bucket",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Fatalf("metrics output missing %s:\n%s", want, body)
		}
	}
}

// waitGoroutines waits for the goroutine count to settle back near the
// baseline, failing if worker or search goroutines leaked.
func waitGoroutines(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// countingMeasurer counts profiling runs (= searches actually executed)
// and delegates to a real simulator.
type countingMeasurer struct {
	cfg  *gpu.Config
	runs atomic.Int64
}

func (m *countingMeasurer) Run(t *trace.Trace, sample, target *placement.Placement) (*sim.Measurement, error) {
	return m.RunContext(context.Background(), t, sample, target)
}

func (m *countingMeasurer) RunContext(ctx context.Context, t *trace.Trace, sample, target *placement.Placement) (*sim.Measurement, error) {
	m.runs.Add(1)
	return sim.New(m.cfg).RunContext(ctx, t, sample, target)
}

// countingServer builds a server whose profiling runs are counted.
func countingServer(t testing.TB, opt Options) (*Server, *countingMeasurer) {
	t.Helper()
	base := testAdvisor(t)
	m := &countingMeasurer{cfg: base.Cfg}
	adv := &advisor.Advisor{Cfg: base.Cfg, Model: base.Model, Measurer: m}
	s, err := New(map[string]*advisor.Advisor{"k80": adv}, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, m
}

// counterVal reads one counter from the server's metrics snapshot.
func counterVal(s *Server, name string) int64 {
	for _, c := range s.Collector().Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
