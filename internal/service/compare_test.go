package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gpuhms/internal/advisor"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
)

// The multi-arch tests need a chiplet advisor next to the shared K80 one.
// Training takes ~1.5s, so every test shares a single instance.
var (
	chipletOnce sync.Once
	chipletAdv  *advisor.Advisor
	chipletErr  error
)

func chipletAdvisor(t testing.TB) *advisor.Advisor {
	t.Helper()
	chipletOnce.Do(func() { chipletAdv, chipletErr = advisor.New(gpu.MustLookup("chiplet")) })
	if chipletErr != nil {
		t.Fatalf("training chiplet advisor: %v", chipletErr)
	}
	return chipletAdv
}

// multiArchServer builds a server warm on both k80 and chiplet.
func multiArchServer(t testing.TB, opt Options) *Server {
	t.Helper()
	s, err := New(map[string]*advisor.Advisor{
		"k80":     testAdvisor(t),
		"chiplet": chipletAdvisor(t),
	}, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// hostileCompareBodies are the /v1/compare adversarial seeds: arch-list
// abuse (too many, duplicates under canonicalization, empty names, oversized
// names) layered on the rank endpoint's hostile knobs. Shared by
// FuzzDecodeCompareRequest and the end-to-end 4xx sweep.
var hostileCompareBodies = []string{
	``,
	`{`,
	`null`,
	`{}`,
	`{"kernel":""}`,
	`{"kernel":"no-such-kernel"}`,
	`{"kernel":"fft","arches":"k80"}`,
	`{"kernel":"fft","arches":[42]}`,
	`{"kernel":"fft","arches":[""]}`,
	`{"kernel":"fft","arches":["   "]}`,
	`{"kernel":"fft","arches":["k80","k80"]}`,
	`{"kernel":"fft","arches":["k80","KEPLER"]}`,
	`{"kernel":"fft","arches":["k80"," Tesla-K80 "]}`,
	`{"kernel":"fft","arches":["` + strings.Repeat("x", 1000) + `"]}`,
	`{"kernel":"fft","arches":[` + strings.Repeat(`"a",`, 8) + `"b"]}`,
	`{"kernel":"fft","scale":-1}`,
	`{"kernel":"fft","scale":2147483647}`,
	`{"kernel":"fft","sample":"not-a-spec"}`,
	`{"kernel":"fft","top_k":-1}`,
	`{"kernel":"fft","max_candidates":-7}`,
	`{"kernel":"fft","parallelism":9999}`,
	`{"kernel":"fft","strategy":"annealing"}`,
	`{"kernel":"fft","strategy":"beam-0"}`,
	`{"kernel":"fft","timeout_ms":-50}`,
}

// FuzzDecodeCompareRequest asserts the compare decode surface never panics
// and that accepted requests are bounded, deduplicated, and canonical —
// hostile bodies become ErrBadRequest or ErrUnknownStrategy (4xx), never a
// 5xx or a crash.
func FuzzDecodeCompareRequest(f *testing.F) {
	for _, seed := range hostileCompareBodies {
		f.Add([]byte(seed))
	}
	for _, seed := range hostileRankBodies {
		f.Add([]byte(seed))
	}
	f.Add([]byte(`{"kernel":"tablelookup","arches":["k80","chiplet"],"top_k":3}`))
	f.Add([]byte(`{"kernel":"fft","arches":["KEPLER","hbm"],"strategy":"beam-4"}`))
	f.Add([]byte(`{"kernel":"fft"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeCompareRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) && !errors.Is(err, hmserr.ErrUnknownStrategy) {
				t.Fatalf("decode error %v wraps neither ErrBadRequest nor ErrUnknownStrategy", err)
			}
			if s := statusOf(err); s < 400 || s >= 500 {
				t.Fatalf("decode error %v maps to status %d (want 4xx)", err, s)
			}
			return
		}
		if req.Kernel == "" || len(req.Kernel) > 256 {
			t.Fatalf("accepted kernel %q", req.Kernel)
		}
		if req.Scale < 1 || req.Scale > MaxScale {
			t.Fatalf("accepted scale %d", req.Scale)
		}
		if len(req.Arches) > MaxCompareArches {
			t.Fatalf("accepted %d arches", len(req.Arches))
		}
		seen := map[string]bool{}
		for _, a := range req.Arches {
			if a == "" || len(a) > 64 {
				t.Fatalf("accepted arch %q", a)
			}
			if a != canonicalArch(a) {
				t.Fatalf("accepted non-canonical arch %q", a)
			}
			if seen[a] {
				t.Fatalf("accepted duplicate arch %q", a)
			}
			seen[a] = true
		}
		if req.TopK < 0 || req.TopK > MaxTopK || req.MaxCandidates < 0 {
			t.Fatalf("accepted options k=%d c=%d", req.TopK, req.MaxCandidates)
		}
		if req.TimeoutMS < 0 || req.TimeoutMS > MaxTimeoutMS {
			t.Fatalf("accepted timeout %d", req.TimeoutMS)
		}
		if req.Strategy != "" {
			strat, serr := advisor.ParseStrategy(req.Strategy)
			if serr != nil || strat.Spec() != req.Strategy {
				t.Fatalf("accepted non-canonical strategy %q (%v)", req.Strategy, serr)
			}
		}
	})
}

// TestArchesEndpoint checks the GET /v1/arches capacity table: one entry
// per warm arch in sorted order, registry metadata attached, and remote
// spaces listed only for chiplet architectures.
func TestArchesEndpoint(t *testing.T) {
	s := multiArchServer(t, Options{})
	rr := doJSON(t, s, "GET", "/v1/arches", nil)
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp ArchesResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Arches) != 2 || resp.Arches[0].Name != "chiplet" || resp.Arches[1].Name != "k80" {
		t.Fatalf("arches = %+v, want [chiplet k80] in sorted order", resp.Arches)
	}
	byName := map[string]ArchInfo{}
	for _, a := range resp.Arches {
		byName[a.Name] = a
		if a.Model == "" || a.Description == "" {
			t.Errorf("%s: missing model/description: %+v", a.Name, a)
		}
		caps := map[string]int64{}
		for _, c := range a.Capacities {
			sp, err := gpu.ParseSpace(c.Space)
			if err != nil || sp.LongString() != c.Space {
				t.Errorf("%s: non-canonical space %q", a.Name, c.Space)
			}
			caps[c.Space] = c.CapacityBytes
		}
		if caps["shared"] <= 0 || caps["constant"] <= 0 {
			t.Errorf("%s: missing bounded shared/constant capacities: %v", a.Name, caps)
		}
	}
	k80, chiplet := byName["k80"], byName["chiplet"]
	if k80.HasRemote || k80.InterposerNS != 0 {
		t.Errorf("k80 advertises remote stacks: %+v", k80)
	}
	if !chiplet.HasRemote || chiplet.InterposerNS <= 0 {
		t.Errorf("chiplet missing remote metadata: %+v", chiplet)
	}
	for _, c := range k80.Capacities {
		if sp, _ := gpu.ParseSpace(c.Space); sp.Remote() {
			t.Errorf("k80 capacity table lists remote space %q", c.Space)
		}
	}
	var remotes int
	for _, c := range chiplet.Capacities {
		if sp, _ := gpu.ParseSpace(c.Space); sp.Remote() {
			remotes++
			if c.Space == "constantRemote" && c.CapacityBytes != 64<<10 {
				t.Errorf("chiplet constantRemote capacity = %d, want %d", c.CapacityBytes, 64<<10)
			}
		}
	}
	if remotes != 4 {
		t.Errorf("chiplet lists %d remote spaces, want 4", remotes)
	}

	// Deterministic: repeated calls are byte-identical.
	rr2 := doJSON(t, s, "GET", "/v1/arches", nil)
	if rr.Body.String() != rr2.Body.String() {
		t.Error("repeated /v1/arches responses differ")
	}
}

// TestCompareEndpoint drives the cross-arch scenario end to end: one
// /v1/compare call ranks tablelookup on both warm arches and the top-1
// placements must diverge (the golden behavior pinned in
// internal/advisor/arch_divergence_test.go, observed through the wire).
func TestCompareEndpoint(t *testing.T) {
	s := multiArchServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/compare",
		`{"kernel":"tablelookup","arches":["k80","chiplet"],"top_k":1}`)
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp CompareResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kernel != "tablelookup" || len(resp.Results) != 2 {
		t.Fatalf("response %+v, want 2 results for tablelookup", resp)
	}
	if resp.Results[0].Arch != "k80" || resp.Results[1].Arch != "chiplet" {
		t.Fatalf("results out of request order: %s, %s", resp.Results[0].Arch, resp.Results[1].Arch)
	}
	var tops []string
	for _, r := range resp.Results {
		if len(r.Ranked) != 1 {
			t.Fatalf("%s: %d ranked entries, want 1", r.Arch, len(r.Ranked))
		}
		tops = append(tops, r.Ranked[0].Placement)
	}
	if tops[0] == tops[1] {
		t.Errorf("k80 and chiplet agree on %q; the bundled kernel must diverge", tops[0])
	}
	if want := "table:T,in:S,out:S"; tops[0] != want {
		t.Errorf("k80 top-1 = %q, want %q", tops[0], want)
	}
	if want := "table:S,in:S,out:S"; tops[1] != want {
		t.Errorf("chiplet top-1 = %q, want %q", tops[1], want)
	}

	// Empty arch list means every warm arch, in sorted name order.
	rr = doJSON(t, s, "POST", "/v1/compare", `{"kernel":"tablelookup","top_k":1}`)
	if rr.Code != 200 {
		t.Fatalf("empty-arches status %d: %s", rr.Code, rr.Body.String())
	}
	var all CompareResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Results) != 2 || all.Results[0].Arch != "chiplet" || all.Results[1].Arch != "k80" {
		t.Fatalf("empty-arches results %+v, want [chiplet k80]", all.Results)
	}

	// Aliases reach the same advisors as canonical names.
	rr = doJSON(t, s, "POST", "/v1/compare",
		`{"kernel":"tablelookup","arches":[" Tesla-K80 "],"top_k":1}`)
	if rr.Code != 200 {
		t.Fatalf("alias status %d: %s", rr.Code, rr.Body.String())
	}
}

// TestCompareUnknownArch checks a compare naming a cold arch maps to 404
// and the error body names the warm arches a client could retry with.
func TestCompareUnknownArch(t *testing.T) {
	s := multiArchServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/compare", `{"kernel":"fft","arches":["hbm"]}`)
	if rr.Code != 404 {
		t.Fatalf("status %d, want 404: %s", rr.Code, rr.Body.String())
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "unknown_arch" {
		t.Errorf("code %q, want unknown_arch", er.Code)
	}
	if !strings.Contains(er.Error, "k80") || !strings.Contains(er.Error, "chiplet") {
		t.Errorf("error %q does not list the warm arches", er.Error)
	}
}

// TestCompareHostileBodiesNever5xx drives the compare seeds through the
// real handler stack on a multi-arch server: each must map to a 4xx.
func TestCompareHostileBodiesNever5xx(t *testing.T) {
	s := multiArchServer(t, Options{})
	for i, body := range hostileCompareBodies {
		rr := doJSON(t, s, "POST", "/v1/compare", body)
		if rr.Code < 400 || rr.Code >= 500 {
			t.Errorf("compare seed %d: status %d (want 4xx): %.120s",
				i, rr.Code, rr.Body.String())
		}
	}
	// The rank endpoint's seeds must never 5xx here either. A few are only
	// hostile through rank-specific fields (compare ignores "arch"), so they
	// may legally succeed — but they must not crash or error internally.
	for i, body := range hostileRankBodies {
		rr := doJSON(t, s, "POST", "/v1/compare", body)
		if rr.Code >= 500 {
			t.Errorf("rank seed %d on /v1/compare: status %d (want <500): %.120s",
				i, rr.Code, rr.Body.String())
		}
	}
}

// TestCompareDeterminism is the acceptance contract of ISSUE PR 10: the
// /v1/compare response over the chiplet's grown placement space is
// byte-identical across ranking worker counts. Caching is disabled so both
// requests genuinely recompute.
func TestCompareDeterminism(t *testing.T) {
	s := multiArchServer(t, Options{CacheCap: -1})
	body := func(par int) string {
		return fmt.Sprintf(
			`{"kernel":"tablelookup","arches":["chiplet","k80"],"top_k":10,"parallelism":%d}`, par)
	}
	seq := doJSON(t, s, "POST", "/v1/compare", body(1))
	par := doJSON(t, s, "POST", "/v1/compare", body(8))
	if seq.Code != 200 || par.Code != 200 {
		t.Fatalf("status %d / %d: %s %s", seq.Code, par.Code, seq.Body.String(), par.Body.String())
	}
	if seq.Body.String() != par.Body.String() {
		t.Errorf("compare responses differ across worker counts:\n1 worker:  %s\n8 workers: %s",
			seq.Body.String(), par.Body.String())
	}
}
