package service

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"gpuhms/internal/advisor"
)

// latencyStats summarizes one measured request population.
type latencyStats struct {
	N        int     `json:"n"`
	P50NS    float64 `json:"p50_ns"`
	P99NS    float64 `json:"p99_ns"`
	MeanNS   float64 `json:"mean_ns"`
	StddevNS float64 `json:"stddev_ns"`
	RPS      float64 `json:"req_per_s"`
}

func summarize(samples []time.Duration) latencyStats {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return float64(samples[i].Nanoseconds())
	}
	mean := float64(sum.Nanoseconds()) / float64(len(samples))
	var sq float64
	for _, d := range samples {
		diff := float64(d.Nanoseconds()) - mean
		sq += diff * diff
	}
	var stddev float64
	if len(samples) > 1 {
		stddev = math.Sqrt(sq / float64(len(samples)-1))
	}
	return latencyStats{
		N:        len(samples),
		P50NS:    pct(0.50),
		P99NS:    pct(0.99),
		MeanNS:   mean,
		StddevNS: stddev,
		RPS:      1e9 / mean,
	}
}

// TestBenchServiceArtifact measures cold (distinct-key search) versus cached
// request latency through the full handler stack and writes the
// BENCH_service.json artifact. Gated by BENCH_SERVICE_OUT so the ordinary
// test run stays fast; scripts/bench_service.sh drives it.
//
// The acceptance bound — cached at least 10x faster than cold at the median —
// is asserted whenever the test runs.
func TestBenchServiceArtifact(t *testing.T) {
	out := os.Getenv("BENCH_SERVICE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVICE_OUT=/path/to/BENCH_service.json to run")
	}
	s := newTestServer(t, Options{})

	timeOne := func(req RankRequest, wantCache string) time.Duration {
		start := time.Now()
		rr := doJSON(t, s, "POST", "/v1/rank", req)
		elapsed := time.Since(start)
		if rr.Code != 200 {
			t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
		}
		if got := rr.Header().Get("X-HMS-Cache"); got != wantCache {
			t.Fatalf("X-HMS-Cache %q, want %q", got, wantCache)
		}
		return elapsed
	}

	// Cold: every request is a distinct cache key, so each one runs a full
	// profile-and-rank search. 40 samples keep the p99 index off the max
	// sample and give the stddev column something real to measure — 12 was
	// too few for either.
	const coldN = 40
	cold := make([]time.Duration, 0, coldN)
	for i := 0; i < coldN; i++ {
		cold = append(cold, timeOne(RankRequest{Kernel: "fft", TopK: i + 1}, cacheMiss))
	}

	// Cached: one warm key replayed; served straight from the LRU.
	warm := RankRequest{Kernel: "fft", TopK: 1}
	const cachedN = 500
	cached := make([]time.Duration, 0, cachedN)
	for i := 0; i < cachedN; i++ {
		cached = append(cached, timeOne(warm, cacheHit))
	}

	// Warm boot: time-to-first-cached-response of a process restored from a
	// snapshot (load model + restore cache + serve a hit) versus a cold one
	// (train + full search). This is the number the -snapshot flag buys.
	snapPath := filepath.Join(t.TempDir(), "bench.snap")
	if err := s.SaveSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	cfg := testAdvisor(t).Cfg
	firstResponse := func(boot func() *Server, wantCache string) time.Duration {
		start := time.Now()
		srv := boot()
		defer srv.Close()
		rr := doJSON(t, srv, "POST", "/v1/rank", warm)
		if rr.Code != 200 || rr.Header().Get("X-HMS-Cache") != wantCache {
			t.Fatalf("boot request: status %d cache %q, want 200 %q", rr.Code, rr.Header().Get("X-HMS-Cache"), wantCache)
		}
		return time.Since(start)
	}
	coldBoot := firstResponse(func() *Server {
		adv, err := advisor.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(map[string]*advisor.Advisor{"k80": adv}, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}, cacheMiss)
	warmBoot := firstResponse(func() *Server {
		contents, err := ReadSnapshotFile(snapPath)
		if err != nil || contents.Skipped != 0 {
			t.Fatalf("bench snapshot read: err %v, %d skipped", err, contents.Skipped)
		}
		adv, err := advisor.NewFromSaved(cfg, bytes.NewReader(contents.Models["k80"]))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(map[string]*advisor.Advisor{"k80": adv}, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv.RestoreCache(contents.Cache)
		return srv
	}, cacheHit)

	report := struct {
		Bench    string       `json:"bench"`
		Kernel   string       `json:"kernel"`
		Cold     latencyStats `json:"cold"`
		Cached   latencyStats `json:"cached"`
		Speedup  float64      `json:"speedup_p50"`
		WarmBoot struct {
			ColdBootNS    float64 `json:"cold_boot_ns"`
			RestoredNS    float64 `json:"restored_boot_ns"`
			SpeedupFactor float64 `json:"speedup"`
		} `json:"warm_boot_first_response"`
	}{
		Bench:  "service_rank_cold_vs_cached",
		Kernel: "fft",
		Cold:   summarize(cold),
		Cached: summarize(cached),
	}
	report.Speedup = report.Cold.P50NS / report.Cached.P50NS
	report.WarmBoot.ColdBootNS = float64(coldBoot.Nanoseconds())
	report.WarmBoot.RestoredNS = float64(warmBoot.Nanoseconds())
	report.WarmBoot.SpeedupFactor = report.WarmBoot.ColdBootNS / report.WarmBoot.RestoredNS

	if report.Speedup < 10 {
		t.Errorf("cached p50 only %.1fx faster than cold (want >= 10x): cold %.0fns cached %.0fns",
			report.Speedup, report.Cold.P50NS, report.Cached.P50NS)
	}
	if report.WarmBoot.SpeedupFactor < 5 {
		t.Errorf("warm boot only %.1fx faster to first cached response than cold boot (want >= 5x): cold %v restored %v",
			report.WarmBoot.SpeedupFactor, coldBoot, warmBoot)
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (cold p50 %.2fms, cached p50 %.1fµs, %.0fx; warm boot %.0fms vs cold boot %.0fms, %.0fx)",
		out, report.Cold.P50NS/1e6, report.Cached.P50NS/1e3, report.Speedup,
		report.WarmBoot.RestoredNS/1e6, report.WarmBoot.ColdBootNS/1e6, report.WarmBoot.SpeedupFactor)
}
