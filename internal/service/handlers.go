package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"gpuhms/internal/kernels"
	"gpuhms/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/rank        rank the legal placements of a kernel (cached)
//	POST /v1/compare     rank one kernel across several architectures in a
//	                     single call (per-arch searches share the rank cache;
//	                     docs/ARCHES.md)
//	POST /v1/fleet/rank  place N tenant kernels under capacity budgets
//	                     (cached; docs/FLEET.md)
//	POST /v1/predict     predict one target placement
//	GET  /v1/kernels     list the bundled workloads
//	GET  /v1/arches      list the warm architectures with capacity tables
//	GET  /healthz        liveness + warm architectures
//	GET  /readyz         readiness: 503 until advisors are trained and any
//	                     snapshot restore has finished (MarkReady)
//	GET  /metrics        Prometheus text exposition of the obs registry
//
// Every response body is JSON; non-2xx bodies are ErrorResponse. See
// docs/SERVICE.md for the status-code mapping.
//
// The whole mux is wrapped in the tracing middleware (reqtrace.go), so
// every response — including mux-level 404/405 — carries X-Request-ID and
// produces an access-log line when access logging is configured.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rank", s.instrument(s.handleRank))
	mux.HandleFunc("POST /v1/compare", s.instrument(s.handleCompare))
	mux.HandleFunc("POST /v1/fleet/rank", s.instrument(s.handleFleetRank))
	mux.HandleFunc("POST /v1/predict", s.instrument(s.handlePredict))
	mux.HandleFunc("GET /v1/kernels", s.instrument(s.handleKernels))
	mux.HandleFunc("GET /v1/arches", s.instrument(s.handleArches))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.traceMiddleware(mux)
}

// instrument wraps a handler with the request counter and the
// whole-request latency histogram, and counts 5xx outcomes.
func (s *Server) instrument(h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.col.Add(obs.MetricServiceRequestsTotal, 1)
		status := h(w, r)
		s.col.Observe(obs.MetricServiceRequestNS, float64(time.Since(start).Nanoseconds()))
		// 503/504/499 are flow-control outcomes (shedding, deadlines,
		// departed clients); only genuine server faults count as errors.
		if status == http.StatusInternalServerError {
			s.col.Add(obs.MetricServiceErrorsTotal, 1)
		}
	}
}

// writeJSON writes one JSON response. The encoding of a given value is
// deterministic, so cached rank responses stay byte-identical to the
// search that produced them.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError maps err onto its status (attaching backpressure headers) and
// writes the ErrorResponse body, echoing the request ID into it. It returns
// the status for instrumentation. Shed responses (429, 503) carry a
// queue-depth-derived, full-jitter Retry-After so a synchronized herd of
// retries decorrelates; shed reasons land in the access log via SetShed.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) int {
	rt := TraceFrom(r.Context())
	status := statusOf(err)
	code := codeOf(err)
	switch code {
	case "queue_full", "shed_deadline", "shutting_down":
		rt.SetShed(code)
	}
	if status == http.StatusTooManyRequests {
		s.col.Add(obs.MetricServiceRejectedTotal, 1)
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	}
	body := ErrorResponse{Error: err.Error(), Code: code}
	if rt != nil {
		body.RequestID = rt.ID
	}
	writeJSON(w, status, body)
	return status
}

// readBody drains a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		return nil, badf("reading body: %v", err)
	}
	return body, nil
}

// handleRank serves POST /v1/rank: decode → advisor lookup → cache /
// singleflight / pool → 200 (or 206 for a budget-limited partial ranking).
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) int {
	rt := TraceFrom(r.Context())
	endDecode := rt.BeginStage(StageDecode)
	body, err := readBody(w, r)
	if err != nil {
		endDecode()
		return s.writeError(w, r, err)
	}
	req, err := DecodeRankRequest(body)
	endDecode()
	if err != nil {
		return s.writeError(w, r, err)
	}
	adv, arch, err := s.advisorFor(req.Arch)
	if err != nil {
		return s.writeError(w, r, err)
	}
	req.Arch = arch // normalize before keying the cache
	if req.Strategy == "" {
		// Apply the server's default strategy before keying the cache, so
		// an explicit "exhaustive" and an empty field share one entry.
		req.Strategy = s.opt.DefaultStrategy
	}
	rt.SetStrategy(req.Strategy)
	if _, ok := kernels.Get(req.Kernel); !ok {
		return s.writeError(w, r, badKernel(req.Kernel))
	}
	resp, outcome, err := s.doRank(r.Context(), adv, req)
	if outcome != "" {
		// The cache verdict rides on errors too: a 504 that joined a shared
		// flight and a 504 that led its own search triage differently.
		w.Header().Set(HeaderCache, outcome)
	}
	if err != nil {
		return s.writeError(w, r, err)
	}
	status := http.StatusOK
	if resp.Partial {
		status = http.StatusPartialContent
	}
	endEncode := rt.BeginStage(StageEncode)
	writeJSON(w, status, resp)
	endEncode()
	return status
}

// handleCompare serves POST /v1/compare: decode → per-arch fan-out through
// doRank (each sub-search flows through the rank cache, singleflight, and
// worker pool exactly as a standalone /v1/rank would) → 200, or 206 when
// any per-arch ranking was budget-truncated.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) int {
	rt := TraceFrom(r.Context())
	endDecode := rt.BeginStage(StageDecode)
	body, err := readBody(w, r)
	if err != nil {
		endDecode()
		return s.writeError(w, r, err)
	}
	req, err := DecodeCompareRequest(body)
	endDecode()
	if err != nil {
		return s.writeError(w, r, err)
	}
	if req.Strategy == "" {
		req.Strategy = s.opt.DefaultStrategy
	}
	rt.SetStrategy(req.Strategy)
	if _, ok := kernels.Get(req.Kernel); !ok {
		return s.writeError(w, r, badKernel(req.Kernel))
	}
	resp, outcome, err := s.doCompare(r.Context(), req)
	if outcome != "" {
		w.Header().Set(HeaderCache, outcome)
	}
	if err != nil {
		return s.writeError(w, r, err)
	}
	status := http.StatusOK
	if resp.Partial {
		status = http.StatusPartialContent
	}
	endEncode := rt.BeginStage(StageEncode)
	writeJSON(w, status, resp)
	endEncode()
	return status
}

// handleArches serves GET /v1/arches: the warm architectures with their
// per-space capacity tables, sorted by name.
func (s *Server) handleArches(w http.ResponseWriter, r *http.Request) int {
	writeJSON(w, http.StatusOK, s.archInfos())
	return http.StatusOK
}

// badKernel wraps an unknown kernel name.
func badKernel(name string) error {
	return &unknownKernelError{name: name}
}

// unknownKernelError carries the name while wrapping ErrUnknownKernel.
type unknownKernelError struct{ name string }

func (e *unknownKernelError) Error() string { return ErrUnknownKernel.Error() + ": " + e.name }
func (e *unknownKernelError) Unwrap() error { return ErrUnknownKernel }

// handlePredict serves POST /v1/predict through the worker pool (no
// cache: a single prediction is dominated by the sample profiling run,
// which repeats per request by design — rank with top_k=1 for the cached
// path).
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	rt := TraceFrom(r.Context())
	endDecode := rt.BeginStage(StageDecode)
	body, err := readBody(w, r)
	if err != nil {
		endDecode()
		return s.writeError(w, r, err)
	}
	req, err := DecodePredictRequest(body)
	endDecode()
	if err != nil {
		return s.writeError(w, r, err)
	}
	adv, arch, err := s.advisorFor(req.Arch)
	if err != nil {
		return s.writeError(w, r, err)
	}
	req.Arch = arch
	type result struct {
		resp *PredictResponse
		err  error
	}
	ch := make(chan result, 1) // buffered: the worker never blocks on an absent reader
	searchCtx, cancelSearch := s.searchContext(req.TimeoutMS)
	deadline, _ := searchCtx.Deadline()
	rt.MarkSubmit()
	if err := s.pool.SubmitDeadline(deadline, func() {
		defer cancelSearch()
		rt.MarkPickup(s.col)
		searchStart := s.col.Now()
		resp, err := s.runPredict(searchCtx, adv, req)
		rt.SearchSpan(s.col, searchStart, s.col.Now()-searchStart)
		ch <- result{resp, err}
	}, func(err error) {
		cancelSearch()
		ch <- result{nil, err}
	}); err != nil {
		cancelSearch()
		return s.writeError(w, r, err)
	}
	endWait := rt.BeginStage(StageWait)
	select {
	case res := <-ch:
		endWait()
		if res.err != nil {
			return s.writeError(w, r, res.err)
		}
		endEncode := rt.BeginStage(StageEncode)
		writeJSON(w, http.StatusOK, res.resp)
		endEncode()
		return http.StatusOK
	case <-r.Context().Done():
		endWait()
		return s.writeError(w, r, r.Context().Err())
	}
}

// handleKernels serves GET /v1/kernels.
func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) int {
	resp := KernelsResponse{}
	for _, name := range kernels.Names() {
		spec := kernels.MustGet(name)
		resp.Kernels = append(resp.Kernels, KernelInfo{
			Name:        spec.Name,
			Suite:       spec.Suite,
			KernelName:  spec.KernelName,
			Sample:      spec.Sample,
			Description: spec.Description,
		})
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Archs:   s.archs,
		UptimeS: time.Since(s.start).Seconds(),
	})
}

// handleReadyz serves GET /readyz: 200 once the server is ready to take
// traffic (advisors trained, snapshot restored), 503 with a jittered
// Retry-After before that. Distinct from /healthz, which reports liveness
// and stays 200 throughout warmup.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{
			Ready:  false,
			Reason: "warming: advisors training or snapshot restore in progress",
		})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Ready: true, Archs: s.archs})
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.col.WriteMetricsText(w)
}

// ServeHTTP makes *Server an http.Handler directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.Handler().ServeHTTP(w, r)
}
