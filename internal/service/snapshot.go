package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"gpuhms/internal/obs"
	"gpuhms/internal/snapshot"
)

// Snapshot entry kinds (snapshot.Entry.Kind). The framing layer is
// content-agnostic; these identify the service's payload schemas.
const (
	// SnapKindModel frames a snapModelPayload: one architecture's trained
	// model (core.SavedModel JSON), so a restarted server skips retraining.
	SnapKindModel uint8 = 1
	// SnapKindCache frames a snapCachePayload: one LRU result-cache entry,
	// so a restarted server answers warm keys from the first request on.
	SnapKindCache uint8 = 2
	// SnapKindFleet frames a snapFleetPayload: one fleet result-cache
	// entry, restored into the fleet cache on warm boot.
	SnapKindFleet uint8 = 3
)

// MaxSnapshotKeyLen caps a restored cache key. Legitimate keys are built
// from decode-bounded fields (arch <= 64, kernel <= 256, sample <= 4096
// bytes), so anything bigger is damage or forgery.
const MaxSnapshotKeyLen = 8192

// snapModelPayload is the JSON body of a SnapKindModel entry.
type snapModelPayload struct {
	Arch string `json:"arch"`
	// Model is the core.SavedModel document, kept raw so the snapshot layer
	// does not parse what advisor.NewFromSaved validates anyway.
	Model json.RawMessage `json:"model"`
}

// snapCachePayload is the JSON body of a SnapKindCache entry.
type snapCachePayload struct {
	Key string `json:"key"`
	// Response is the cached RankResponse document. Stored and restored as
	// JSON, it re-encodes byte-identically (encoding a RankResponse is a
	// deterministic function of its fields), which is what lets the verify
	// smoke diff pre-crash and post-restore bodies.
	Response json.RawMessage `json:"response"`
}

// snapFleetPayload is the JSON body of a SnapKindFleet entry, mirroring
// snapCachePayload for the fleet cache.
type snapFleetPayload struct {
	Key      string          `json:"key"`
	Response json.RawMessage `json:"response"`
}

// SnapshotContents is a decoded and schema-validated snapshot file: the
// trained models by architecture, the cache entries in LRU order, and the
// count of entries dropped on the way (framing, checksum, version, or
// schema damage). Any level of damage — up to and including a missing or
// unreadable file — yields emptier contents, never a boot failure.
type SnapshotContents struct {
	// Models maps architecture name to its core.SavedModel JSON.
	Models map[string]json.RawMessage
	// Cache lists restorable result-cache entries, least recently used
	// first.
	Cache []CachedResponse
	// Fleet lists restorable fleet-cache entries, least recently used
	// first.
	Fleet []FleetCachedResponse
	// Skipped counts dropped entries across every validation layer.
	Skipped int
}

// ReadSnapshotFile loads and validates the snapshot at path. A missing file
// returns empty contents and a nil error; a corrupt or truncated one
// returns whatever survived plus the skip count, with the error (non-nil
// only for header-level damage or I/O trouble) for the caller to log before
// booting cold.
func ReadSnapshotFile(path string) (*SnapshotContents, error) {
	entries, st, err := snapshot.Load(path)
	c := &SnapshotContents{Models: make(map[string]json.RawMessage), Skipped: st.Skipped}
	for _, e := range entries {
		switch e.Kind {
		case SnapKindModel:
			var p snapModelPayload
			if json.Unmarshal(e.Payload, &p) != nil || p.Arch == "" || len(p.Arch) > 64 || len(p.Model) == 0 {
				c.Skipped++
				continue
			}
			c.Models[p.Arch] = p.Model
		case SnapKindCache:
			var p snapCachePayload
			if json.Unmarshal(e.Payload, &p) != nil || p.Key == "" || len(p.Key) > MaxSnapshotKeyLen {
				c.Skipped++
				continue
			}
			var resp RankResponse
			if json.Unmarshal(p.Response, &resp) != nil || resp.Kernel == "" {
				c.Skipped++
				continue
			}
			c.Cache = append(c.Cache, CachedResponse{Key: p.Key, Resp: &resp})
		case SnapKindFleet:
			var p snapFleetPayload
			if json.Unmarshal(e.Payload, &p) != nil || p.Key == "" || len(p.Key) > MaxSnapshotKeyLen {
				c.Skipped++
				continue
			}
			var resp FleetRankResponse
			if json.Unmarshal(p.Response, &resp) != nil || len(resp.Tenants) == 0 || resp.Solver == "" {
				c.Skipped++
				continue
			}
			c.Fleet = append(c.Fleet, FleetCachedResponse{Key: p.Key, Resp: &resp})
		default:
			c.Skipped++ // unknown kind: written by a future schema, not for us
		}
	}
	return c, err
}

// WriteSnapshot streams the server's warm state — every trained model, then
// the result cache in LRU order — as a framed snapshot onto w.
func (s *Server) WriteSnapshot(w io.Writer) error {
	sw, err := snapshot.NewWriter(w)
	if err != nil {
		return err
	}
	return s.appendSnapshotEntries(sw)
}

// appendSnapshotEntries frames the warm state onto an already-headered
// snapshot writer (shared by WriteSnapshot and the atomic save path).
func (s *Server) appendSnapshotEntries(sw *snapshot.Writer) error {
	for _, arch := range s.archs {
		var model bytes.Buffer
		if err := s.advisors[arch].Save(&model); err != nil {
			return fmt.Errorf("service: saving model %s: %w", arch, err)
		}
		payload, err := json.Marshal(snapModelPayload{Arch: arch, Model: model.Bytes()})
		if err != nil {
			return err
		}
		if err := sw.Append(SnapKindModel, payload); err != nil {
			return err
		}
	}
	for _, e := range s.cache.Entries() {
		resp, err := json.Marshal(e.Resp)
		if err != nil {
			return err
		}
		payload, err := json.Marshal(snapCachePayload{Key: e.Key, Response: resp})
		if err != nil {
			return err
		}
		if err := sw.Append(SnapKindCache, payload); err != nil {
			return err
		}
	}
	for _, e := range s.fleetCache.Entries() {
		resp, err := json.Marshal(e.Resp)
		if err != nil {
			return err
		}
		payload, err := json.Marshal(snapFleetPayload{Key: e.Key, Response: resp})
		if err != nil {
			return err
		}
		if err := sw.Append(SnapKindFleet, payload); err != nil {
			return err
		}
	}
	return nil
}

// SaveSnapshot writes the server's warm state to path atomically (temp file
// + fsync + rename): a crash — or an injected fault from
// Options.SnapshotFaults — mid-write leaves the previous snapshot intact.
// Outcomes land in the snapshot write/error counters and the size gauge.
func (s *Server) SaveSnapshot(path string) error {
	size, err := snapshot.WriteAtomic(path, s.opt.SnapshotFaults, s.appendSnapshotEntries)
	if err != nil {
		s.col.Add(obs.MetricServiceSnapshotWriteErrorsTotal, 1)
		return err
	}
	s.col.Add(obs.MetricServiceSnapshotWritesTotal, 1)
	s.col.Gauge(obs.MetricServiceSnapshotBytes, float64(size))
	return nil
}

// RestoreCache warms the LRU result cache from snapshot contents, skipping
// (and counting) entries that fail revalidation against the current limits.
// It reports how many entries were restored and how many skipped; both also
// land on the snapshot restore counters.
func (s *Server) RestoreCache(entries []CachedResponse) (restored, skipped int) {
	for _, e := range entries {
		if e.Resp == nil || e.Key == "" || len(e.Key) > MaxSnapshotKeyLen || e.Resp.Kernel == "" {
			skipped++
			continue
		}
		s.cache.Restore(e.Key, e.Resp)
		restored++
	}
	if restored > 0 {
		s.col.Add(obs.MetricServiceSnapshotRestoredTotal, int64(restored))
	}
	if skipped > 0 {
		s.col.Add(obs.MetricServiceSnapshotSkippedTotal, int64(skipped))
	}
	return restored, skipped
}

// RestoreFleetCache warms the fleet result cache from snapshot contents
// under the same contract as RestoreCache: entries failing revalidation
// against the current schema are skipped and counted, never fatal.
func (s *Server) RestoreFleetCache(entries []FleetCachedResponse) (restored, skipped int) {
	for _, e := range entries {
		if e.Resp == nil || e.Key == "" || len(e.Key) > MaxSnapshotKeyLen ||
			len(e.Resp.Tenants) == 0 || e.Resp.Solver == "" {
			skipped++
			continue
		}
		s.fleetCache.Restore(e.Key, e.Resp)
		restored++
	}
	if restored > 0 {
		s.col.Add(obs.MetricServiceSnapshotRestoredTotal, int64(restored))
	}
	if skipped > 0 {
		s.col.Add(obs.MetricServiceSnapshotSkippedTotal, int64(skipped))
	}
	return restored, skipped
}

// Snapshotter periodically persists a server's warm state, with an
// out-of-band trigger for SIGHUP. Start with StartSnapshotter; Stop is
// idempotent and waits for the writer goroutine to exit, so tests can
// assert no leak.
type Snapshotter struct {
	s        *Server
	path     string
	interval time.Duration
	logf     func(format string, args ...any)

	trigger  chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartSnapshotter begins writing snapshots of s to path every interval
// (interval <= 0 disables the timer; Trigger still works). Write failures
// are logged through logf (nil discards) and counted; the previous snapshot
// survives them.
func (s *Server) StartSnapshotter(path string, interval time.Duration, logf func(string, ...any)) *Snapshotter {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sn := &Snapshotter{
		s:        s,
		path:     path,
		interval: interval,
		logf:     logf,
		trigger:  make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go sn.run()
	return sn
}

// Trigger requests one snapshot write outside the timer (the SIGHUP path).
// A write already pending coalesces with it.
func (sn *Snapshotter) Trigger() {
	select {
	case sn.trigger <- struct{}{}:
	default:
	}
}

// Stop ends the periodic writer and waits for it to exit. It does not write
// a final snapshot — the shutdown sequence saves one explicitly after the
// drain, when the cache has stopped changing.
func (sn *Snapshotter) Stop() {
	sn.stopOnce.Do(func() { close(sn.stop) })
	<-sn.done
}

// run is the writer goroutine.
func (sn *Snapshotter) run() {
	defer close(sn.done)
	var tick <-chan time.Time
	if sn.interval > 0 {
		t := time.NewTicker(sn.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-sn.stop:
			return
		case <-tick:
		case <-sn.trigger:
		}
		if err := sn.s.SaveSnapshot(sn.path); err != nil {
			sn.logf("snapshot write failed (previous snapshot intact): %v", err)
		} else {
			sn.logf("snapshot written to %s", sn.path)
		}
	}
}
