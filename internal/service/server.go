package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpuhms/internal/advisor"
	"gpuhms/internal/fleet"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/kernels"
	"gpuhms/internal/obs"
	"gpuhms/internal/placement"
	"gpuhms/internal/snapshot"
	"gpuhms/internal/trace"
)

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// Workers is the number of concurrent searches (default GOMAXPROCS).
	Workers int
	// QueueCap is the pending-request queue; a full queue sheds load with
	// 429 (default 64).
	QueueCap int
	// CacheCap is the LRU result-cache capacity in responses (default 256;
	// negative disables caching but keeps singleflight).
	CacheCap int
	// DefaultTimeout bounds a search's wall clock when the request carries
	// no timeout_ms (default 60s; negative means unlimited).
	DefaultTimeout time.Duration
	// RetryAfter is the base Retry-After value (seconds) for shed responses
	// (default 1). The value actually sent on 429/503 is full-jitter
	// exponential: uniform in [1, RetryAfter << k], where k grows with the
	// queue's fullness — synchronized client retries decorrelate instead of
	// re-stampeding the pool.
	RetryAfter int
	// SnapshotFaults optionally injects chaos (write failures, torn writes,
	// slow I/O) into SaveSnapshot; nil disables injection. Wired by the soak
	// harness via internal/faults.Points.
	SnapshotFaults snapshot.FaultHooks
	// Parallelism is the ranking worker count for requests that don't ask
	// for one. The default is queue-aware: NumCPU divided by the pool's
	// Workers (at least 1), so pool × parallelism never oversubscribes the
	// machine. Negative forces sequential ranking.
	Parallelism int
	// DefaultStrategy is the search strategy applied when a request carries
	// no "strategy" field: "exhaustive" (the default when empty), "greedy",
	// or "beam-W". It is normalized to its canonical spec at New, so cache
	// keys are stable across spellings.
	DefaultStrategy string
	// DefaultFleetSolver is the fleet assignment solver applied when a
	// /v1/fleet/rank request carries no "solver" field: "greedy" (the
	// default when empty) or "beam-W". Normalized like DefaultStrategy.
	DefaultFleetSolver string
	// AccessLog, when set, receives one structured JSON record per request
	// (id, route, status, cache state, per-stage nanoseconds — the schema
	// documented in docs/OBSERVABILITY.md and pinned by TestAccessLogSchema).
	// Nil disables access logging.
	AccessLog *slog.Logger
	// TraceSampleEvery records every Nth request's per-stage spans into the
	// collector's Chrome-trace timeline (0 disables span sampling). Request
	// IDs and access logs are unaffected: every request gets those.
	TraceSampleEvery int
	// SLOTargetP99 is the latency SLO target fed to the rolling-window
	// tracker behind the service_slo_* gauges (default 250ms).
	SLOTargetP99 time.Duration
	// SLOAvailability is the availability SLO target (default 0.999).
	SLOAvailability float64
	// SLOWindow is the rolling window of the SLO quantiles and burn rates
	// (default 60s).
	SLOWindow time.Duration
	// SLONow injects the SLO tracker's clock; tests use a fake one so
	// window expiry is testable without sleeping. Nil uses the wall clock.
	SLONow func() time.Time
}

// withDefaults fills unset options and normalizes the default strategy.
func (o Options) withDefaults() (Options, error) {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism == 0 {
		o.Parallelism = max(1, runtime.NumCPU()/o.Workers)
	} else if o.Parallelism < 0 {
		o.Parallelism = 1
	}
	if o.QueueCap == 0 {
		o.QueueCap = 64
	}
	if o.CacheCap == 0 {
		o.CacheCap = 256
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = 1
	}
	strat, err := advisor.ParseStrategy(o.DefaultStrategy)
	if err != nil {
		return o, err
	}
	o.DefaultStrategy = strat.Spec()
	solver, err := fleet.ParseSolver(o.DefaultFleetSolver)
	if err != nil {
		return o, err
	}
	o.DefaultFleetSolver = solver.Spec()
	return o, nil
}

// Server is the placement-advisory service: warm trained Advisors (one per
// architecture name) behind a worker pool, an LRU result cache with
// singleflight, and the HTTP API of docs/SERVICE.md. Construct with New,
// expose Handler(), and stop with Shutdown.
type Server struct {
	advisors map[string]*advisor.Advisor
	archs    []string // sorted advisor keys
	opt      Options
	col      *obs.Collector
	pool     *Pool
	cache    *Cache[*RankResponse]
	// fleetCache is the fleet endpoint's own LRU+singleflight instance:
	// fleet results are larger and keyed differently, so they never evict
	// single-kernel rankings (and vice versa).
	fleetCache *Cache[*FleetRankResponse]
	start      time.Time

	// slo tracks rolling-window latency/availability against the configured
	// targets; its Publish runs as a scrape hook on the collector.
	slo *obs.SLOTracker
	// reqSeq numbers requests for trace sampling (every Nth is sampled).
	reqSeq atomic.Int64

	// ready gates GET /readyz: false (503) until MarkReady, which the boot
	// sequence calls once every advisor is trained and any snapshot restore
	// has finished. Liveness (/healthz) is independent of it.
	ready atomic.Bool

	// jitter drives the full-jitter Retry-After values; guarded because
	// math/rand.Rand is not concurrency-safe.
	jitterMu sync.Mutex
	jitter   *rand.Rand

	// baseCtx parents every search; cancel aborts all in-flight work
	// (the forced-drain path of Shutdown).
	baseCtx context.Context
	cancel  context.CancelFunc
}

// New builds a server over trained advisors keyed by architecture name
// ("k80", "fermi"). The collector backs GET /metrics and all service
// telemetry; nil creates a private one. Advisors must not be mutated after
// New.
func New(advisors map[string]*advisor.Advisor, opt Options, col *obs.Collector) (*Server, error) {
	if len(advisors) == 0 {
		return nil, fmt.Errorf("service: no advisors")
	}
	if col == nil {
		col = obs.NewCollector()
	}
	obs.RegisterServiceMetrics(col.Registry())
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	archs := make([]string, 0, len(advisors))
	for name, adv := range advisors {
		if adv == nil || adv.Cfg == nil || adv.Model == nil {
			return nil, fmt.Errorf("service: advisor %q is not initialized", name)
		}
		archs = append(archs, name)
	}
	sort.Strings(archs)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		advisors:   advisors,
		archs:      archs,
		opt:        opt,
		col:        col,
		pool:       NewPool(opt.Workers, opt.QueueCap, col),
		cache:      NewCache[*RankResponse](opt.CacheCap, col),
		fleetCache: NewCache[*FleetRankResponse](opt.CacheCap, col),
		start:      time.Now(),
		baseCtx:    ctx,
		cancel:     cancel,
		jitter:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	s.slo = obs.NewSLOTracker(obs.SLOOptions{
		Window:             opt.SLOWindow,
		TargetP99:          opt.SLOTargetP99,
		TargetAvailability: opt.SLOAvailability,
		Now:                opt.SLONow,
	})
	col.AddScrapeHook(s.slo.Publish)
	obs.RegisterRuntimeHealth(col)
	return s, nil
}

// SLO exposes the server's rolling-window SLO tracker (tests and the load
// harness read WindowStats from it).
func (s *Server) SLO() *obs.SLOTracker { return s.slo }

// MarkReady flips GET /readyz to 200. The boot sequence calls it once every
// advisor is trained and any snapshot restore has finished; until then the
// probe answers 503 so an orchestrator keeps traffic away from a still-cold
// instance.
func (s *Server) MarkReady() {
	s.ready.Store(true)
	s.col.Gauge(obs.MetricServiceReady, 1)
}

// Ready reports whether MarkReady has run.
func (s *Server) Ready() bool { return s.ready.Load() }

// retryAfterSeconds computes one full-jitter Retry-After value: the base
// doubles as the queue fills (exponent 0..4 over the depth/capacity ratio)
// and the reply is uniform in [1, base<<k]. Randomizing the whole interval
// — not just a fraction of it — is what decorrelates a synchronized herd:
// clients that were rejected together retry spread across the window.
func retryAfterSeconds(depth, queueCap, base int, intn func(int) int) int {
	if base < 1 {
		base = 1
	}
	k := 0
	if queueCap > 0 {
		k = 4 * depth / queueCap
		if k > 4 {
			k = 4
		}
	}
	return 1 + intn(base<<k)
}

// retryAfter derives the Retry-After for one shed response from the current
// queue depth.
func (s *Server) retryAfter() int {
	s.jitterMu.Lock()
	defer s.jitterMu.Unlock()
	return retryAfterSeconds(s.pool.QueueDepth(), s.opt.QueueCap, s.opt.RetryAfter, s.jitter.Intn)
}

// Collector exposes the server's telemetry (the /metrics backing store).
func (s *Server) Collector() *obs.Collector { return s.col }

// advisorFor resolves an architecture name ("" defaults to "k80" when
// warm, else the only/first advisor).
func (s *Server) advisorFor(arch string) (*advisor.Advisor, string, error) {
	if arch == "" {
		if _, ok := s.advisors["k80"]; ok {
			arch = "k80"
		} else {
			arch = s.archs[0]
		}
	}
	adv, ok := s.advisors[arch]
	if !ok {
		return nil, arch, fmt.Errorf("%w: %q (have %v)", ErrUnknownArch, arch, s.archs)
	}
	return adv, arch, nil
}

// searchContext derives the context a search runs under: a child of the
// server's base context (so Shutdown can abort it), bounded by the
// client-requested timeout or the server default.
func (s *Server) searchContext(timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opt.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(s.baseCtx, d)
	}
	return context.WithCancel(s.baseCtx)
}

// Cache outcomes for the X-HMS-Cache response header.
const (
	cacheHit    = "hit"    // served from the LRU cache
	cacheMiss   = "miss"   // this request led the search
	cacheShared = "shared" // joined an identical search in flight
)

// doCached serves one request through a cache, singleflight, and the worker
// pool — the shared engine behind doRank and doFleet. The search runs
// detached from the caller: it is bounded by the search context (server base
// + request timeout), not by the caller's presence, so a client that gives
// up waiting does not waste the work — the result still lands in the cache.
// The caller's reqCtx only bounds the wait: when it fires first, the mapped
// error (499/504) is returned while the flight completes behind the scenes.
func doCached[V any](s *Server, reqCtx context.Context, cache *Cache[V], key string,
	timeoutMS int, run func(ctx context.Context) (V, error)) (V, string, error) {
	var zero V
	rt := TraceFrom(reqCtx)
	endCache := rt.BeginStage(StageCache)
	resp, fl, leader := cache.Begin(key)
	endCache()
	outcome := cacheShared
	switch {
	case fl == nil:
		s.col.Add(obs.MetricServiceCacheHitsTotal, 1)
		rt.SetCache(cacheHit)
		return resp, cacheHit, nil
	case leader:
		outcome = cacheMiss
		s.col.Add(obs.MetricServiceCacheMissesTotal, 1)
		searchCtx, cancelSearch := s.searchContext(timeoutMS)
		// The search deadline rides along to the pool so a job whose
		// remaining budget cannot cover the observed service time is shed
		// with 504 instead of starting a doomed search.
		deadline, _ := searchCtx.Deadline()
		rt.MarkSubmit()
		err := s.pool.SubmitDeadline(deadline, func() {
			defer cancelSearch()
			rt.MarkPickup(s.col)
			searchStart := s.col.Now()
			resp, err := run(searchCtx)
			rt.SearchSpan(s.col, searchStart, s.col.Now()-searchStart)
			cache.Complete(key, resp, err)
		}, func(err error) {
			cancelSearch()
			cache.Complete(key, zero, err)
		})
		if err != nil {
			// The queue rejected the job: complete the flight so every
			// waiter sheds with the same backpressure error.
			cancelSearch()
			cache.Complete(key, zero, err)
		}
	default:
		s.col.Add(obs.MetricServiceSingleflightSharedTotal, 1)
	}
	rt.SetCache(outcome)
	endWait := rt.BeginStage(StageWait)
	select {
	case <-fl.done:
		endWait()
		return fl.resp, outcome, fl.err
	case <-reqCtx.Done():
		endWait()
		return zero, outcome, reqCtx.Err()
	}
}

// doRank serves one rank request through the rank cache.
func (s *Server) doRank(reqCtx context.Context, adv *advisor.Advisor, req *RankRequest) (*RankResponse, string, error) {
	return doCached(s, reqCtx, s.cache, RankKey(req), req.TimeoutMS,
		func(ctx context.Context) (*RankResponse, error) {
			return s.runRank(ctx, adv, req)
		})
}

// doFleet serves one fleet request through the fleet cache.
func (s *Server) doFleet(reqCtx context.Context, adv *advisor.Advisor, req *FleetRankRequest) (*FleetRankResponse, string, error) {
	return doCached(s, reqCtx, s.fleetCache, FleetKey(req), req.TimeoutMS,
		func(ctx context.Context) (*FleetRankResponse, error) {
			return s.runFleet(ctx, adv, req)
		})
}

// archInfos builds the GET /v1/arches body from the warm advisor set: every
// served architecture with its capacity table, in sorted name order. The
// reply is a pure function of the advisor set, so it is byte-identical
// across calls and worker counts.
func (s *Server) archInfos() *ArchesResponse {
	out := &ArchesResponse{Arches: make([]ArchInfo, 0, len(s.archs))}
	for _, name := range s.archs {
		cfg := s.advisors[name].Cfg
		info := ArchInfo{
			Name:        name,
			Model:       cfg.Name,
			Description: gpu.Describe(name),
			HasRemote:   cfg.HasRemote(),
			Capacities:  make([]SpaceCapacity, 0, gpu.NumSpaces),
		}
		if cfg.HasRemote() {
			info.InterposerNS = cfg.Interposer.LatencyNS
		}
		for _, sp := range gpu.Spaces {
			if sp.Remote() && !cfg.HasRemote() {
				continue // the space is not legal on this architecture
			}
			info.Capacities = append(info.Capacities, SpaceCapacity{
				Space:         sp.LongString(),
				CapacityBytes: int64(cfg.CapacityBytes(sp)),
			})
		}
		out.Arches = append(out.Arches, info)
	}
	return out
}

// compareArches resolves a compare request's arch list: empty means every
// warm arch in sorted order; otherwise each (already canonicalized) name
// must have a warm advisor.
func (s *Server) compareArches(req *CompareRequest) ([]string, error) {
	if len(req.Arches) == 0 {
		return s.archs, nil
	}
	for _, a := range req.Arches {
		if _, ok := s.advisors[a]; !ok {
			return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownArch, a, s.archs)
		}
	}
	return req.Arches, nil
}

// doCompare ranks one kernel across several architectures by fanning out to
// doRank — one sub-request per arch, in list order, each flowing through the
// rank cache, singleflight, worker pool, and budget semantics exactly as a
// standalone /v1/rank would. Because each per-arch ranking is deterministic
// and the assembly order is the request order, a compare body is
// byte-identical across worker counts and cache states. The second return is
// the aggregated cache outcome: "hit" only when every sub-ranking hit.
func (s *Server) doCompare(reqCtx context.Context, req *CompareRequest) (*CompareResponse, string, error) {
	arches, err := s.compareArches(req)
	if err != nil {
		return nil, cacheMiss, err
	}
	resp := &CompareResponse{
		Kernel:  req.Kernel,
		Scale:   req.Scale,
		Results: make([]CompareArchResult, 0, len(arches)),
	}
	outcome := cacheHit
	for _, arch := range arches {
		adv, name, err := s.advisorFor(arch)
		if err != nil {
			return nil, outcome, err
		}
		sub := &RankRequest{
			Arch:          name,
			Kernel:        req.Kernel,
			Scale:         req.Scale,
			Sample:        req.Sample,
			TopK:          req.TopK,
			MaxCandidates: req.MaxCandidates,
			Parallelism:   req.Parallelism,
			Strategy:      req.Strategy,
			TimeoutMS:     req.TimeoutMS,
		}
		rr, oc, err := s.doRank(reqCtx, adv, sub)
		if err != nil {
			return nil, outcome, fmt.Errorf("arch %q: %w", name, err)
		}
		if oc == cacheMiss || (oc == cacheShared && outcome == cacheHit) {
			outcome = oc
		}
		resp.Results = append(resp.Results, CompareArchResult{
			Arch:     name,
			Sample:   rr.Sample,
			Ranked:   rr.Ranked,
			Partial:  rr.Partial,
			Coverage: rr.Coverage,
		})
		if rr.Partial {
			resp.Partial = true
		}
	}
	return resp, outcome, nil
}

// runRank executes one ranking search on a worker.
func (s *Server) runRank(ctx context.Context, adv *advisor.Advisor, req *RankRequest) (*RankResponse, error) {
	s.col.Add(obs.MetricServiceSearchesTotal, 1)
	tr, sample, err := s.resolve(adv, req.Kernel, req.Scale, req.Sample)
	if err != nil {
		return nil, err
	}
	parallelism := s.opt.Parallelism
	if req.Parallelism > 0 {
		parallelism = req.Parallelism
	}
	// The request strategy was canonicalized at decode and defaulted by the
	// rank handler; ParseStrategy here only rebuilds the Strategy value.
	strat, err := advisor.ParseStrategy(req.Strategy)
	if err != nil {
		return nil, err
	}
	res, err := adv.RankPlacements(ctx, tr, sample, advisor.RankOptions{
		TopK:          req.TopK,
		MaxCandidates: req.MaxCandidates,
		Parallelism:   parallelism,
		Strategy:      strat,
	})
	resp := &RankResponse{
		Arch:   req.Arch,
		Kernel: req.Kernel,
		Scale:  req.Scale,
		Sample: sample.Format(tr),
	}
	if err != nil {
		if !errors.Is(err, hmserr.ErrBudgetExceeded) {
			return nil, err
		}
		resp.Partial = true
	}
	if res != nil {
		// Coverage accompanies every partial or sub-exhaustive ranking, so
		// the response records what the search actually looked at (and what
		// the beam's bound pruned).
		if resp.Partial || res.Strategy != "exhaustive" {
			resp.Coverage = &Coverage{
				Evaluated: res.Evaluated,
				Total:     res.Total,
				Strategy:  res.Strategy,
				Pruned:    res.Pruned,
			}
		}
		resp.Ranked = BuildRanked(tr, sample, res.Ranked)
	}
	return resp, nil
}

// runPredict executes one single-placement prediction on a worker.
func (s *Server) runPredict(ctx context.Context, adv *advisor.Advisor, req *PredictRequest) (*PredictResponse, error) {
	tr, sample, err := s.resolve(adv, req.Kernel, req.Scale, req.Sample)
	if err != nil {
		return nil, err
	}
	target, err := placement.Parse(tr, req.Target)
	if err != nil {
		return nil, err
	}
	if err := placement.Check(tr, target, adv.Cfg); err != nil {
		return nil, err
	}
	pr, err := adv.PredictorContext(ctx, tr, sample)
	if err != nil {
		return nil, err
	}
	p, err := pr.Predict(target)
	if err != nil {
		return nil, err
	}
	return &PredictResponse{
		Arch:        req.Arch,
		Kernel:      req.Kernel,
		Scale:       req.Scale,
		Sample:      sample.Format(tr),
		Target:      target.Format(tr),
		PredictedNS: p.TimeNS,
	}, nil
}

// resolve turns (kernel, scale, sample spec) into a generated trace and a
// checked sample placement.
func (s *Server) resolve(adv *advisor.Advisor, kernel string, scale int, sampleSpec string) (*trace.Trace, *placement.Placement, error) {
	spec, ok := kernels.Get(kernel)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownKernel, kernel)
	}
	tr := spec.Trace(scale)
	var sample *placement.Placement
	var err error
	if sampleSpec != "" {
		sample, err = placement.Parse(tr, sampleSpec)
	} else {
		sample, err = spec.SamplePlacement(tr)
	}
	if err != nil {
		return nil, nil, err
	}
	if err := placement.Check(tr, sample, adv.Cfg); err != nil {
		return nil, nil, err
	}
	return tr, sample, nil
}

// BuildRanked converts an advisor ranking into wire rows, marking the
// sample placement's own row and computing speedups against its prediction
// when the sample appears in the ranking. It is shared by the server and
// `hmsplace -json`, so CLI and service outputs are interchangeable.
func BuildRanked(tr *trace.Trace, sample *placement.Placement, ranked []advisor.Ranked) []RankedPlacement {
	sampleNS := 0.0
	for _, r := range ranked {
		if r.Placement.Equal(sample) {
			sampleNS = r.PredictedNS
			break
		}
	}
	rows := make([]RankedPlacement, len(ranked))
	for i, r := range ranked {
		rows[i] = RankedPlacement{
			Placement:   r.Placement.Format(tr),
			PredictedNS: r.PredictedNS,
			IsSample:    r.Placement.Equal(sample),
		}
		if sampleNS > 0 && r.PredictedNS > 0 {
			rows[i].SpeedupVsSample = sampleNS / r.PredictedNS
		}
	}
	return rows
}

// Shutdown drains the server gracefully: no new work is accepted, queued
// and running searches are given until ctx expires to finish, then the
// base context is canceled so the rest abort promptly (their waiters
// receive the mapped cancellation errors). It returns once every worker
// has exited; the HTTP listener itself is the caller's to stop first
// (http.Server.Shutdown in cmd/hmsserved).
func (s *Server) Shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel() // force in-flight searches to abort via context cancellation
		<-done
	}
	s.cancel()
	return nil
}

// Close shuts the server down immediately: in-flight searches are
// canceled, not drained.
func (s *Server) Close() {
	s.cancel()
	s.pool.Close()
}
