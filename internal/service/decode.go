package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"strings"

	"gpuhms/internal/advisor"
	"gpuhms/internal/fleet"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
)

// Request-hardening limits. A public endpoint sees hostile bodies; these
// bounds keep a single request from allocating unbounded traces or spinning
// forever, and are enforced at decode time so the worker pool only ever sees
// sane work.
const (
	// MaxBodyBytes caps a request body.
	MaxBodyBytes = 1 << 20
	// MaxScale caps the workload scale factor: trace size grows linearly
	// with scale, so this bounds per-request memory.
	MaxScale = 64
	// MaxSpecLen caps a placement spec string.
	MaxSpecLen = 4096
	// MaxTopK caps the kept ranking length.
	MaxTopK = 100000
	// MaxTimeoutMS caps the client-requested search deadline (10 minutes).
	MaxTimeoutMS = 600000
	// MaxParallelism caps the per-request ranking worker count: enough for
	// any machine this serves on, small enough that a hostile request
	// cannot ask for an absurd goroutine fan-out.
	MaxParallelism = 64
	// MaxCompareArches caps the architectures one /v1/compare call may fan
	// out over: each arch is a full ranking search.
	MaxCompareArches = 8
)

// Service-level error classes, alongside the hmserr taxonomy. Handlers map
// them (and the hmserr sentinels, and context errors) onto HTTP statuses
// with statusOf; see docs/SERVICE.md for the full table.
var (
	// ErrBadRequest: the body is not valid JSON or a field is out of range.
	ErrBadRequest = errors.New("bad request")
	// ErrUnknownKernel: the named workload is not registered.
	ErrUnknownKernel = errors.New("unknown kernel")
	// ErrUnknownArch: the named architecture has no warm advisor.
	ErrUnknownArch = errors.New("unknown architecture")
	// ErrQueueFull: the worker queue is at capacity (backpressure; 429).
	ErrQueueFull = errors.New("queue full")
	// ErrShuttingDown: the server is draining and accepts no new work.
	ErrShuttingDown = errors.New("server shutting down")
	// ErrDeadlineBudget: load shedding rejected the request because its
	// remaining deadline could not cover the observed median service time.
	// It wraps context.DeadlineExceeded, so it maps to 504 like the timeout
	// it was about to become — but without wasting a worker first.
	ErrDeadlineBudget = fmt.Errorf("deadline budget below observed service time: %w", context.DeadlineExceeded)
)

// StatusClientClosedRequest is the non-standard 499 status (nginx lineage)
// for requests whose client went away before the advisor finished.
const StatusClientClosedRequest = 499

// badf builds an ErrBadRequest with detail.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// decodeJSON unmarshals a bounded body into dst, folding every failure mode
// (oversize, syntax, wrong types) into ErrBadRequest.
func decodeJSON(data []byte, dst any) error {
	if len(data) == 0 {
		return badf("empty body")
	}
	if err := json.Unmarshal(data, dst); err != nil {
		return badf("%v", err)
	}
	return nil
}

// canonicalArch normalizes a user-facing architecture string at decode
// time: trimmed, lowercased, and — when the registry knows the name or one
// of its aliases — replaced by the canonical registry name, so
// "  Tesla-K80 " and "k80" resolve to one advisor key and one cache key.
// Unknown names pass through normalized; existence is checked later against
// the warm advisor set (advisorFor), which maps misses to 404 with the
// available names in the message.
func canonicalArch(arch string) string {
	if canon, err := gpu.Canonical(arch); err == nil {
		return canon
	}
	return strings.ToLower(strings.TrimSpace(arch))
}

// DecodeRankRequest parses and validates a /v1/rank body. It is the fuzzed
// surface of the service (FuzzDecodeRankRequest): on any input it either
// returns a request whose fields are within the limits above, or an error
// wrapping ErrBadRequest — it never panics, and a handler never turns its
// error into a 5xx. Kernel and architecture existence are checked later,
// against the server's registry.
func DecodeRankRequest(data []byte) (*RankRequest, error) {
	var req RankRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if req.Kernel == "" {
		return nil, badf("missing kernel")
	}
	if req.Scale == 0 {
		req.Scale = 1
	}
	if err := validateCommon(req.Arch, req.Kernel, req.Scale, req.Sample, req.TimeoutMS); err != nil {
		return nil, err
	}
	req.Arch = canonicalArch(req.Arch)
	if err := validateSearchKnobs(req.TopK, req.MaxCandidates, req.Parallelism, &req.Strategy); err != nil {
		return nil, err
	}
	return &req, nil
}

// validateSearchKnobs screens the search-shaping fields shared by rank and
// compare requests, canonicalizing the strategy spec in place.
func validateSearchKnobs(topK, maxCandidates, parallelism int, strategy *string) error {
	if topK < 0 || topK > MaxTopK {
		return badf("top_k %d out of [0,%d]", topK, MaxTopK)
	}
	if maxCandidates < 0 {
		return badf("negative max_candidates %d", maxCandidates)
	}
	if parallelism < 0 || parallelism > MaxParallelism {
		return badf("parallelism %d out of [0,%d]", parallelism, MaxParallelism)
	}
	if *strategy != "" {
		// Normalize to the canonical spec ("Beam" → error, "beam" →
		// "beam-4") so equivalent spellings share one cache key. Unknown
		// strategies wrap hmserr.ErrUnknownStrategy — a 400, never a 5xx.
		strat, err := advisor.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		*strategy = strat.Spec()
	}
	return nil
}

// DecodeCompareRequest parses and validates a /v1/compare body under the
// same contract as DecodeRankRequest: any input yields either a request
// whose fields are within limits (arches deduplicated and canonicalized) or
// an error wrapping ErrBadRequest / ErrUnknownStrategy — never a panic,
// never a 5xx. An empty arch list is legal and means "every warm arch".
func DecodeCompareRequest(data []byte) (*CompareRequest, error) {
	var req CompareRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if req.Kernel == "" {
		return nil, badf("missing kernel")
	}
	if req.Scale == 0 {
		req.Scale = 1
	}
	if len(req.Arches) > MaxCompareArches {
		return nil, badf("%d arches out of [0,%d]", len(req.Arches), MaxCompareArches)
	}
	seen := make(map[string]bool, len(req.Arches))
	for i, a := range req.Arches {
		if len(a) > 64 {
			return nil, badf("arch name longer than 64 bytes")
		}
		canon := canonicalArch(a)
		if canon == "" {
			return nil, badf("empty arch name in arches")
		}
		if seen[canon] {
			return nil, badf("duplicate arch %q", canon)
		}
		seen[canon] = true
		req.Arches[i] = canon
	}
	if err := validateCommon("", req.Kernel, req.Scale, req.Sample, req.TimeoutMS); err != nil {
		return nil, err
	}
	if err := validateSearchKnobs(req.TopK, req.MaxCandidates, req.Parallelism, &req.Strategy); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodePredictRequest parses and validates a /v1/predict body under the
// same contract as DecodeRankRequest.
func DecodePredictRequest(data []byte) (*PredictRequest, error) {
	var req PredictRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if req.Kernel == "" {
		return nil, badf("missing kernel")
	}
	if req.Target == "" {
		return nil, badf("missing target placement")
	}
	if len(req.Target) > MaxSpecLen {
		return nil, badf("target spec longer than %d bytes", MaxSpecLen)
	}
	if req.Scale == 0 {
		req.Scale = 1
	}
	if err := validateCommon(req.Arch, req.Kernel, req.Scale, req.Sample, req.TimeoutMS); err != nil {
		return nil, err
	}
	req.Arch = canonicalArch(req.Arch)
	return &req, nil
}

// validateCommon screens the fields shared by rank and predict requests.
func validateCommon(arch, kernel string, scale int, sample string, timeoutMS int) error {
	if len(kernel) > 256 {
		return badf("kernel name longer than 256 bytes")
	}
	if len(arch) > 64 {
		return badf("arch name longer than 64 bytes")
	}
	if scale < 1 || scale > MaxScale {
		return badf("scale %d out of [1,%d]", scale, MaxScale)
	}
	if len(sample) > MaxSpecLen {
		return badf("sample spec longer than %d bytes", MaxSpecLen)
	}
	if timeoutMS < 0 || timeoutMS > MaxTimeoutMS {
		return badf("timeout_ms %d out of [0,%d]", timeoutMS, MaxTimeoutMS)
	}
	return nil
}

// statusOf maps the error taxonomy onto HTTP statuses:
//
//	ErrBadRequest, ErrIllegalPlacement, ErrUnknownStrategy,
//	ErrInvalidTrace, ErrInvalidProfile,
//	ErrBudgetExceeded                   → 400 Bad Request
//	ErrUnknownKernel, ErrUnknownArch,
//	fleet.ErrUnknownKernel,
//	fleet.ErrUnknownMix                 → 404 Not Found
//	ErrCapacityExceeded                 → 422 Unprocessable Entity
//	ErrQueueFull                        → 429 Too Many Requests
//	context.Canceled                    → 499 Client Closed Request
//	ErrShuttingDown                     → 503 Service Unavailable
//	context.DeadlineExceeded,
//	ErrDeadlineBudget                   → 504 Gateway Timeout
//	anything else                       → 500 Internal Server Error
//
// ErrBudgetExceeded never reaches this map from a single-kernel ranking —
// a budget-stopped search is a successful partial result (206), assembled
// by the rank handler — but a fleet solve with half-built menus has no
// meaningful partial answer, so there it is a 400. ErrCapacityExceeded
// chains onto ErrIllegalPlacement, so the capacity case must test first:
// the request was well-formed, the placement just does not fit (422).
func statusOf(err error) int {
	switch {
	case errors.Is(err, hmserr.ErrCapacityExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, hmserr.ErrIllegalPlacement),
		errors.Is(err, hmserr.ErrUnknownStrategy),
		errors.Is(err, hmserr.ErrInvalidTrace),
		errors.Is(err, hmserr.ErrInvalidProfile),
		errors.Is(err, hmserr.ErrBudgetExceeded):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownKernel), errors.Is(err, ErrUnknownArch),
		errors.Is(err, fleet.ErrUnknownKernel), errors.Is(err, fleet.ErrUnknownMix):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// codeOf names the error class for the machine-readable ErrorResponse.Code.
func codeOf(err error) string {
	switch {
	case errors.Is(err, ErrUnknownKernel), errors.Is(err, fleet.ErrUnknownKernel):
		return "unknown_kernel"
	case errors.Is(err, fleet.ErrUnknownMix):
		return "unknown_mix"
	case errors.Is(err, ErrUnknownArch):
		return "unknown_arch"
	case errors.Is(err, ErrBadRequest):
		return "bad_request"
	case errors.Is(err, hmserr.ErrUnknownStrategy):
		return "unknown_strategy"
	case errors.Is(err, hmserr.ErrCapacityExceeded):
		return "capacity_exceeded"
	case errors.Is(err, hmserr.ErrBudgetExceeded):
		return "budget_exceeded"
	case errors.Is(err, hmserr.ErrIllegalPlacement):
		return "illegal_placement"
	case errors.Is(err, hmserr.ErrInvalidTrace):
		return "invalid_trace"
	case errors.Is(err, hmserr.ErrInvalidProfile):
		return "invalid_profile"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrShuttingDown):
		return "shutting_down"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, ErrDeadlineBudget):
		return "shed_deadline"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "internal"
	}
}
