// Package service implements the placement-advisory HTTP server behind
// cmd/hmsserved: a JSON API over warm, trained Advisors (one per
// architecture) with a bounded worker pool, an LRU result cache with
// singleflight collapsing of concurrent identical searches, structured
// error → status-code mapping, and graceful shutdown that drains in-flight
// searches via context cancellation. See docs/SERVICE.md for the protocol.
package service

// RankRequest is the body of POST /v1/rank: rank the legal placements of a
// bundled kernel from one profiled sample placement. The zero value of every
// optional field means "default" (k80, scale 1, the kernel's own sample
// placement, unbounded search).
type RankRequest struct {
	// Arch selects the modeled architecture: "k80" (default) or "fermi".
	Arch string `json:"arch,omitempty"`
	// Kernel is the bundled workload name (GET /v1/kernels).
	Kernel string `json:"kernel"`
	// Scale is the workload scale factor (default 1, capped at MaxScale).
	Scale int `json:"scale,omitempty"`
	// Sample overrides the kernel's sample placement, in "name:space,…"
	// notation.
	Sample string `json:"sample,omitempty"`
	// TopK keeps only the K fastest placements (0 = whole ranking).
	TopK int `json:"top_k,omitempty"`
	// MaxCandidates stops the search after that many predictions; the
	// response is then 206 Partial Content with coverage attached.
	MaxCandidates int `json:"max_candidates,omitempty"`
	// Parallelism is the number of ranking workers for this search (0 uses
	// the server's configured default, capped at MaxParallelism). Complete
	// rankings are identical for every value; only the subset covered by a
	// max_candidates budget depends on it.
	Parallelism int `json:"parallelism,omitempty"`
	// Strategy selects the search strategy: "exhaustive" (default),
	// "greedy", or "beam-W" (docs/SEARCH.md). Unknown values are rejected
	// with 400 and code "unknown_strategy". Empty uses the server's
	// configured default strategy. Sub-exhaustive responses carry the
	// effective strategy and coverage in RankResponse.Coverage.
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS bounds the search wall-clock; an exceeded deadline maps to
	// 504 Gateway Timeout. 0 uses the server's default timeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RankedPlacement is one row of a RankResponse.
type RankedPlacement struct {
	// Placement is the placement spec in "name:space,…" notation.
	Placement string `json:"placement"`
	// PredictedNS is the model's predicted execution time.
	PredictedNS float64 `json:"predicted_ns"`
	// IsSample marks the profiled sample placement's own row.
	IsSample bool `json:"is_sample,omitempty"`
	// SpeedupVsSample is sample-predicted / this-predicted, when the sample
	// placement appears in the ranking (0 otherwise).
	SpeedupVsSample float64 `json:"speedup_vs_sample,omitempty"`
	// MeasuredNS is the ground-truth simulator time, only filled by
	// `hmsplace -json -measure` (the server never simulates candidates).
	MeasuredNS float64 `json:"measured_ns,omitempty"`
}

// Coverage reports how much of the legal candidate space a search predicted:
// attached whenever the ranking is partial (budget-stopped) or produced by a
// sub-exhaustive strategy, so a response never silently looks exhaustive.
type Coverage struct {
	Evaluated int `json:"evaluated"`
	Total     int `json:"total"`
	// Strategy is the effective search strategy ("exhaustive", "greedy",
	// "beam-4") after server defaults were applied.
	Strategy string `json:"strategy,omitempty"`
	// Pruned counts candidates the beam search's admissible bound skipped.
	Pruned int `json:"pruned,omitempty"`
}

// RankResponse is the reply of POST /v1/rank and of `hmsplace -json`:
// candidate placements fastest-first. Responses are deterministic functions
// of the request (no timestamps), so a cached reply is byte-identical to
// the search that populated it; freshness is reported out-of-band in the
// X-HMS-Cache header.
type RankResponse struct {
	Arch   string `json:"arch"`
	Kernel string `json:"kernel"`
	Scale  int    `json:"scale"`
	// Sample is the profiled sample placement, formatted.
	Sample string `json:"sample"`
	// Ranked lists candidate placements fastest-first.
	Ranked []RankedPlacement `json:"ranked"`
	// Partial marks a ranking truncated by MaxCandidates (HTTP 206).
	Partial bool `json:"partial,omitempty"`
	// Coverage carries the evaluated/total counts, effective strategy, and
	// pruned-candidate count; attached for partial rankings and for every
	// sub-exhaustive strategy.
	Coverage *Coverage `json:"coverage,omitempty"`
}

// PredictRequest is the body of POST /v1/predict: predict one target
// placement instead of ranking the space.
type PredictRequest struct {
	Arch   string `json:"arch,omitempty"`
	Kernel string `json:"kernel"`
	Scale  int    `json:"scale,omitempty"`
	Sample string `json:"sample,omitempty"`
	// Target is the placement to predict, in "name:space,…" notation
	// (required).
	Target    string `json:"target"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// PredictResponse is the reply of POST /v1/predict.
type PredictResponse struct {
	Arch        string  `json:"arch"`
	Kernel      string  `json:"kernel"`
	Scale       int     `json:"scale"`
	Sample      string  `json:"sample"`
	Target      string  `json:"target"`
	PredictedNS float64 `json:"predicted_ns"`
}

// KernelInfo is one bundled workload in a KernelsResponse.
type KernelInfo struct {
	Name        string `json:"name"`
	Suite       string `json:"suite"`
	KernelName  string `json:"kernel_name"`
	Sample      string `json:"sample,omitempty"`
	Description string `json:"description"`
}

// KernelsResponse is the reply of GET /v1/kernels.
type KernelsResponse struct {
	Kernels []KernelInfo `json:"kernels"`
}

// SpaceCapacity is one row of an architecture's capacity table.
type SpaceCapacity struct {
	// Space is the canonical long space name ("global", "constantRemote", …).
	Space string `json:"space"`
	// CapacityBytes is the byte capacity of the space; -1 means unbounded
	// for placement purposes.
	CapacityBytes int64 `json:"capacity_bytes"`
}

// ArchInfo is one warm architecture in an ArchesResponse.
type ArchInfo struct {
	// Name is the canonical registry name the arch is served under ("k80").
	Name string `json:"name"`
	// Model is the Config's human-readable hardware name.
	Model string `json:"model"`
	// Description is the registry's one-line summary (empty for synthetic
	// advisors registered outside the registry).
	Description string `json:"description,omitempty"`
	// HasRemote marks chiplet architectures whose off-chip spaces split into
	// local/remote variants.
	HasRemote bool `json:"has_remote,omitempty"`
	// InterposerNS is the one-way interposer crossing latency (chiplet only).
	InterposerNS float64 `json:"interposer_ns,omitempty"`
	// Capacities lists the placement capacity of every space legal on this
	// architecture, in declaration order.
	Capacities []SpaceCapacity `json:"capacities"`
}

// ArchesResponse is the reply of GET /v1/arches: the warm architectures, in
// sorted name order. Deterministic, so repeated calls are byte-identical.
type ArchesResponse struct {
	Arches []ArchInfo `json:"arches"`
}

// CompareRequest is the body of POST /v1/compare: rank one kernel's
// placements on several architectures in a single call. Every per-search
// knob matches RankRequest and applies uniformly to each arch.
type CompareRequest struct {
	// Arches lists the architectures to compare (registry aliases accepted).
	// Empty means every warm arch, in sorted name order.
	Arches []string `json:"arches,omitempty"`
	Kernel string   `json:"kernel"`
	Scale  int      `json:"scale,omitempty"`
	// Sample overrides the kernel's sample placement on every arch; it must
	// be legal on each (local spaces only, unless every compared arch is a
	// chiplet).
	Sample        string `json:"sample,omitempty"`
	TopK          int    `json:"top_k,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	Parallelism   int    `json:"parallelism,omitempty"`
	Strategy      string `json:"strategy,omitempty"`
	TimeoutMS     int    `json:"timeout_ms,omitempty"`
}

// CompareArchResult is one architecture's ranking in a CompareResponse.
type CompareArchResult struct {
	Arch   string `json:"arch"`
	Sample string `json:"sample"`
	// Ranked lists this arch's candidate placements fastest-first (top_k
	// applied per arch).
	Ranked   []RankedPlacement `json:"ranked"`
	Partial  bool              `json:"partial,omitempty"`
	Coverage *Coverage         `json:"coverage,omitempty"`
}

// CompareResponse is the reply of POST /v1/compare: per-arch rankings in
// request order (or sorted warm-arch order when the request listed none),
// so responses are deterministic and byte-identical across worker counts.
type CompareResponse struct {
	Kernel  string              `json:"kernel"`
	Scale   int                 `json:"scale"`
	Results []CompareArchResult `json:"results"`
	// Partial is true when any per-arch ranking was budget-truncated.
	Partial bool `json:"partial,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Code is the machine-readable error class, mirroring the hmserr
	// taxonomy: "bad_request", "unknown_kernel", "unknown_arch",
	// "unknown_strategy", "illegal_placement", "invalid_trace",
	// "invalid_profile", "queue_full", "canceled", "deadline", "internal".
	Code string `json:"code"`
	// RequestID echoes the request's identity (the X-Request-ID header) so
	// an error body quoted in a bug report is traceable to its access-log
	// line and sampled spans even when the headers were dropped.
	RequestID string `json:"request_id,omitempty"`
}

// ReadyResponse is the reply of GET /readyz: the readiness probe, distinct
// from /healthz liveness. Ready is false (and the status 503) until every
// per-arch advisor is trained and any snapshot restore has finished.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reason explains a not-ready reply.
	Reason string `json:"reason,omitempty"`
	// Archs lists the warm architectures once ready.
	Archs []string `json:"archs,omitempty"`
}

// HealthResponse is the reply of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	// Archs lists the architectures with a warm advisor.
	Archs []string `json:"archs"`
	// UptimeS is seconds since the server started.
	UptimeS float64 `json:"uptime_s"`
}
