package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"gpuhms/internal/advisor"
	"gpuhms/internal/fleet"
	"gpuhms/internal/gpu"
	"gpuhms/internal/kernels"
	"gpuhms/internal/obs"
)

// MaxTenants caps the tenant count of one fleet request: enough for any
// realistic co-location scenario, small enough that a hostile request cannot
// demand dozens of exhaustive rankings in one call.
const MaxTenants = 16

// FleetTenant is one tenant kernel in a FleetRankRequest.
type FleetTenant struct {
	// Name identifies the tenant in the response ("t0", "t1", … when empty).
	Name string `json:"name,omitempty"`
	// Kernel is the bundled workload name (GET /v1/kernels).
	Kernel string `json:"kernel"`
	// Scale is the workload scale factor (default 1, capped at MaxScale).
	Scale int `json:"scale,omitempty"`
	// Sample overrides the kernel's sample placement.
	Sample string `json:"sample,omitempty"`
	// Weight scales the tenant's slowdown in the objective (default 1).
	Weight float64 `json:"weight,omitempty"`
}

// FleetRankRequest is the body of POST /v1/fleet/rank: place N tenant
// kernels onto one GPU under per-space byte budgets, minimizing the worst
// (or weighted sum of) predicted slowdown versus each tenant's unconstrained
// best. Exactly one of Tenants or Mix must be given; a mix expands to its
// bundled tenants and budget overrides at decode.
type FleetRankRequest struct {
	// Arch selects the modeled architecture: "k80" (default) or "fermi".
	Arch string `json:"arch,omitempty"`
	// Tenants lists the kernels to co-locate (at most MaxTenants).
	Tenants []FleetTenant `json:"tenants,omitempty"`
	// Mix names a bundled tenant mix instead of explicit tenants
	// (fleet.MixNames: "balanced", "shared-squeeze", "shared-storm").
	Mix string `json:"mix,omitempty"`
	// Solver selects the assignment search: "greedy" or "beam-W". Empty uses
	// the server's configured default solver.
	Solver string `json:"solver,omitempty"`
	// Objective selects "minmax" (default) or "weighted".
	Objective string `json:"objective,omitempty"`
	// Budgets overrides per-space byte capacities, keyed by space name
	// ("shared", "global", "constant", "tex1d", "tex2d"); -1 means
	// unbounded. Unlisted spaces keep the architecture-derived default (or
	// the mix's override).
	Budgets map[string]int64 `json:"budgets,omitempty"`
	// MenuSize caps each tenant's candidate menu (0 = fleet.DefaultMenuSize).
	MenuSize int `json:"menu_size,omitempty"`
	// MaxCandidates bounds total model evaluations across all tenant menus;
	// exhaustion is a 400, not a partial result.
	MaxCandidates int `json:"max_candidates,omitempty"`
	// Parallelism is the per-tenant ranking worker count (results are
	// identical for every value).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS bounds the solve wall-clock (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// FleetAssignment is one tenant's placement in a FleetRankResponse.
type FleetAssignment struct {
	Tenant string `json:"tenant"`
	Kernel string `json:"kernel"`
	Scale  int    `json:"scale"`
	// Weight is echoed when it differs from 1.
	Weight float64 `json:"weight,omitempty"`
	// Placement is the assigned placement spec ("name:space,…").
	Placement   string  `json:"placement"`
	PredictedNS float64 `json:"predicted_ns"`
	// BestNS is the tenant's unconstrained best prediction.
	BestNS float64 `json:"best_ns"`
	// Slowdown is PredictedNS / BestNS (1.0 = got its best).
	Slowdown float64 `json:"slowdown"`
}

// FleetUsage reports one bounded space's consumption.
type FleetUsage struct {
	Space string `json:"space"`
	Used  int64  `json:"used"`
	Limit int64  `json:"limit"`
}

// FleetBaseline is the naive independent-ranking reference in a response.
type FleetBaseline struct {
	// UnconstrainedFits: every tenant's unconstrained best fits at once.
	UnconstrainedFits bool `json:"unconstrained_fits"`
	// Feasible: first-fit independent placement found any assignment.
	Feasible bool `json:"feasible"`
	// ObjectiveValue is the naive assignment's objective (0 if infeasible).
	ObjectiveValue float64 `json:"objective_value,omitempty"`
}

// FleetCoverage reports the solve's search effort.
type FleetCoverage struct {
	// MenuEvaluated / MenuTotal are model evaluations spent building menus
	// over the aggregate candidate space.
	MenuEvaluated int `json:"menu_evaluated"`
	MenuTotal     int `json:"menu_total"`
	// AssignEvaluated counts assignment-search objective evaluations.
	AssignEvaluated int `json:"assign_evaluated"`
	// Pruned counts beam children discarded by bound or width.
	Pruned int `json:"pruned,omitempty"`
}

// FleetRankResponse is the reply of POST /v1/fleet/rank and of
// `hmsplace -fleet -json`. Like RankResponse it is a deterministic function
// of the request, so cached replies are byte-identical.
type FleetRankResponse struct {
	Arch string `json:"arch"`
	// Solver is the effective assignment solver after server defaults.
	Solver string `json:"solver"`
	// Objective is the canonical objective spelling ("minmax", "weighted").
	Objective string `json:"objective"`
	// ObjectiveValue is the solved objective (min-max: the worst weighted
	// slowdown; weighted: the sum).
	ObjectiveValue float64 `json:"objective_value"`
	// Tenants lists the assignments in request order.
	Tenants []FleetAssignment `json:"tenants"`
	// Usage lists consumption of every bounded space.
	Usage []FleetUsage `json:"usage,omitempty"`
	// Independent is the naive independent-placement baseline the fleet
	// solve is measured against.
	Independent *FleetBaseline `json:"independent,omitempty"`
	// Coverage reports search effort.
	Coverage *FleetCoverage `json:"coverage,omitempty"`
}

// DecodeFleetRequest parses and validates a /v1/fleet/rank body under the
// same contract as DecodeRankRequest (FuzzDecodeFleetRequest): any input
// yields either a bounded, normalized request or an error wrapping
// ErrBadRequest / hmserr.ErrUnknownStrategy / fleet.ErrUnknownMix — never a
// panic, never a 5xx. A mix expands to its tenants here so the cache key and
// the solver see one canonical form. Kernel existence is checked later
// against the registry.
func DecodeFleetRequest(data []byte) (*FleetRankRequest, error) {
	var req FleetRankRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if len(req.Arch) > 64 {
		return nil, badf("arch name longer than 64 bytes")
	}
	// Budgets: canonicalize keys to the long space names first, so
	// equivalent spellings ("S" vs "shared") share one cache key and the mix
	// merge below sees canonical names.
	if len(req.Budgets) > gpu.NumSpaces {
		return nil, badf("budgets lists %d spaces (max %d)", len(req.Budgets), gpu.NumSpaces)
	}
	if len(req.Budgets) > 0 {
		canon := make(map[string]int64, len(req.Budgets))
		for name, v := range req.Budgets {
			if len(name) > 64 {
				return nil, badf("budget space name longer than 64 bytes")
			}
			sp, err := gpu.ParseSpace(name)
			if err != nil {
				return nil, badf("budget space %q: %v", name, err)
			}
			if v < -1 {
				return nil, badf("budget %s=%d below -1 (unbounded)", sp.LongString(), v)
			}
			if _, dup := canon[sp.LongString()]; dup {
				return nil, badf("budget space %q given twice", sp.LongString())
			}
			canon[sp.LongString()] = v
		}
		req.Budgets = canon
	}
	if req.Mix != "" {
		if len(req.Tenants) > 0 {
			return nil, badf("tenants and mix are mutually exclusive")
		}
		if len(req.Mix) > 256 {
			return nil, badf("mix name longer than 256 bytes")
		}
		m, ok := fleet.GetMix(req.Mix)
		if !ok {
			return nil, fmt.Errorf("%w: %q (have %v)", fleet.ErrUnknownMix, req.Mix, fleet.MixNames())
		}
		for _, t := range m.Tenants {
			req.Tenants = append(req.Tenants, FleetTenant{
				Name: t.Name, Kernel: t.Kernel, Scale: t.Scale,
				Sample: t.Sample, Weight: t.Weight,
			})
		}
		// Mix budget overrides fold into the request unless the caller set
		// the space explicitly (caller wins).
		if len(m.Budgets) > 0 && req.Budgets == nil {
			req.Budgets = make(map[string]int64, len(m.Budgets))
		}
		for sp, v := range m.Budgets {
			name := sp.LongString()
			if _, ok := req.Budgets[name]; !ok {
				req.Budgets[name] = v
			}
		}
	}
	if len(req.Tenants) == 0 {
		return nil, badf("missing tenants (or mix)")
	}
	if len(req.Tenants) > MaxTenants {
		return nil, badf("%d tenants exceeds max %d", len(req.Tenants), MaxTenants)
	}
	names := make(map[string]bool, len(req.Tenants))
	for i := range req.Tenants {
		t := &req.Tenants[i]
		if t.Name == "" {
			t.Name = "t" + strconv.Itoa(i)
		}
		if len(t.Name) > 64 {
			return nil, badf("tenant %d: name longer than 64 bytes", i)
		}
		if names[t.Name] {
			return nil, badf("duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
		if t.Kernel == "" {
			return nil, badf("tenant %q: missing kernel", t.Name)
		}
		if t.Scale == 0 {
			t.Scale = 1
		}
		if err := validateCommon(req.Arch, t.Kernel, t.Scale, t.Sample, req.TimeoutMS); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", t.Name, err)
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.Weight < 0 || t.Weight > 1000 || t.Weight != t.Weight {
			return nil, badf("tenant %q: weight %v out of (0,1000]", t.Name, t.Weight)
		}
	}
	if req.MenuSize < 0 || req.MenuSize > fleet.MaxMenuSize {
		return nil, badf("menu_size %d out of [0,%d]", req.MenuSize, fleet.MaxMenuSize)
	}
	if req.MenuSize == 0 {
		req.MenuSize = fleet.DefaultMenuSize
	}
	if req.MaxCandidates < 0 {
		return nil, badf("negative max_candidates %d", req.MaxCandidates)
	}
	if req.Parallelism < 0 || req.Parallelism > MaxParallelism {
		return nil, badf("parallelism %d out of [0,%d]", req.Parallelism, MaxParallelism)
	}
	if req.Solver != "" {
		solver, err := fleet.ParseSolver(req.Solver)
		if err != nil {
			return nil, err
		}
		req.Solver = solver.Spec()
	}
	// Normalize the objective to its canonical spelling (default "minmax").
	obj, err := fleet.ParseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	req.Objective = obj.String()
	req.Mix = "" // fully expanded; the canonical form is tenants+budgets
	return &req, nil
}

// FleetKey is the fleet cache/singleflight key: every request field that
// changes the computed result, canonically spelled. Tenant samples and names
// are %q-quoted so field boundaries cannot be forged by crafted strings;
// budgets render in gpu.Spaces order; weights use the shortest exact float
// form. Timeout is excluded (it bounds, not defines, the result);
// parallelism is excluded for unbudgeted solves (worker-count-invariant) and
// keyed when max_candidates > 0, like RankKey.
func FleetKey(req *FleetRankRequest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet|%s|o%s|v%s|m%d|c%d", req.Arch, req.Objective, req.Solver, req.MenuSize, req.MaxCandidates)
	if req.MaxCandidates > 0 && req.Parallelism > 0 {
		fmt.Fprintf(&sb, "|p%d", req.Parallelism)
	}
	for _, t := range req.Tenants {
		fmt.Fprintf(&sb, "|t%q:%s:%d:%q:w%s", t.Name, t.Kernel, t.Scale, t.Sample,
			strconv.FormatFloat(t.Weight, 'g', -1, 64))
	}
	if len(req.Budgets) > 0 {
		sb.WriteString("|b")
		for _, sp := range gpu.Spaces {
			if v, ok := req.Budgets[sp.LongString()]; ok {
				fmt.Fprintf(&sb, "%s=%d,", sp.LongString(), v)
			}
		}
	}
	return sb.String()
}

// handleFleetRank serves POST /v1/fleet/rank: decode → advisor lookup →
// fleet cache / singleflight / pool → 200.
func (s *Server) handleFleetRank(w http.ResponseWriter, r *http.Request) int {
	rt := TraceFrom(r.Context())
	endDecode := rt.BeginStage(StageDecode)
	body, err := readBody(w, r)
	if err != nil {
		endDecode()
		return s.writeError(w, r, err)
	}
	req, err := DecodeFleetRequest(body)
	endDecode()
	if err != nil {
		return s.writeError(w, r, err)
	}
	adv, arch, err := s.advisorFor(req.Arch)
	if err != nil {
		return s.writeError(w, r, err)
	}
	req.Arch = arch // normalize before keying the cache
	if req.Solver == "" {
		req.Solver = s.opt.DefaultFleetSolver
	}
	rt.SetStrategy("fleet:" + req.Solver)
	for _, t := range req.Tenants {
		if _, ok := kernels.Get(t.Kernel); !ok {
			return s.writeError(w, r, badKernel(t.Kernel))
		}
	}
	resp, outcome, err := s.doFleet(r.Context(), adv, req)
	if outcome != "" {
		w.Header().Set(HeaderCache, outcome)
	}
	if err != nil {
		return s.writeError(w, r, err)
	}
	endEncode := rt.BeginStage(StageEncode)
	writeJSON(w, http.StatusOK, resp)
	endEncode()
	return http.StatusOK
}

// runFleet executes one fleet solve on a worker.
func (s *Server) runFleet(ctx context.Context, adv *advisor.Advisor, req *FleetRankRequest) (*FleetRankResponse, error) {
	s.col.Add(obs.MetricServiceFleetSolvesTotal, 1)
	tenants := make([]fleet.Tenant, len(req.Tenants))
	for i, t := range req.Tenants {
		tenants[i] = fleet.Tenant{
			Name: t.Name, Kernel: t.Kernel, Scale: t.Scale,
			Sample: t.Sample, Weight: t.Weight,
		}
	}
	budgets := fleet.DefaultBudgets(adv.Cfg)
	for name, v := range req.Budgets {
		sp, err := gpu.ParseSpace(name) // decode canonicalized; re-parse for the index
		if err != nil {
			return nil, badf("budget space %q: %v", name, err)
		}
		budgets[sp] = v
	}
	objective, err := fleet.ParseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	solver, err := fleet.ParseSolver(req.Solver)
	if err != nil {
		return nil, err
	}
	parallelism := s.opt.Parallelism
	if req.Parallelism > 0 {
		parallelism = req.Parallelism
	}
	res, err := fleet.Solve(ctx, adv, tenants, fleet.Options{
		Budgets:       &budgets,
		Objective:     objective,
		MenuSize:      req.MenuSize,
		MaxCandidates: req.MaxCandidates,
		Parallelism:   parallelism,
		Solver:        solver,
		Recorder:      s.col,
	})
	if err != nil {
		return nil, err
	}
	return BuildFleetResponse(req.Arch, res), nil
}

// BuildFleetResponse converts a fleet result into the wire form. It is
// shared by the server and `hmsplace -fleet -json`, so CLI and service
// outputs are interchangeable.
func BuildFleetResponse(arch string, res *fleet.Result) *FleetRankResponse {
	resp := &FleetRankResponse{
		Arch:           arch,
		Solver:         res.Solver,
		Objective:      res.Objective.String(),
		ObjectiveValue: res.ObjectiveValue,
		Independent: &FleetBaseline{
			UnconstrainedFits: res.Independent.UnconstrainedFits,
			Feasible:          res.Independent.Feasible,
			ObjectiveValue:    res.Independent.ObjectiveValue,
		},
		Coverage: &FleetCoverage{
			MenuEvaluated:   res.MenuEvaluated,
			MenuTotal:       res.MenuTotal,
			AssignEvaluated: res.AssignEvaluated,
			Pruned:          res.Pruned,
		},
	}
	for _, a := range res.Assignments {
		fa := FleetAssignment{
			Tenant:      a.Tenant,
			Kernel:      a.Kernel,
			Scale:       a.Scale,
			Placement:   a.Spec,
			PredictedNS: a.PredictedNS,
			BestNS:      a.BestNS,
			Slowdown:    a.Slowdown,
		}
		if a.Weight != 1 {
			fa.Weight = a.Weight
		}
		resp.Tenants = append(resp.Tenants, fa)
	}
	for i, sp := range gpu.Spaces {
		if res.Budgets[i] < 0 {
			continue
		}
		resp.Usage = append(resp.Usage, FleetUsage{
			Space: sp.LongString(),
			Used:  res.Usage[i],
			Limit: res.Budgets[i],
		})
	}
	return resp
}
