package service

import "testing"

// TestRankWireBytesParallelismInvariant pins the determinism guarantee at
// the outermost boundary: the JSON bytes a client reads from /v1/rank are
// identical whatever parallelism the search ran with. The cache is disabled
// so every request truly recomputes its ranking.
func TestRankWireBytesParallelismInvariant(t *testing.T) {
	s := newTestServer(t, Options{CacheCap: -1})
	var base string
	for _, parallelism := range []int{1, 2, 8} {
		rr := doJSON(t, s, "POST", "/v1/rank",
			RankRequest{Kernel: "neuralnet", Parallelism: parallelism})
		if rr.Code != 200 {
			t.Fatalf("parallelism=%d: status %d: %s", parallelism, rr.Code, rr.Body.String())
		}
		if parallelism == 1 {
			base = rr.Body.String()
			continue
		}
		if got := rr.Body.String(); got != base {
			t.Errorf("parallelism=%d response differs from sequential:\n%s\nvs\n%s",
				parallelism, got, base)
		}
	}
}

// TestRankParallelismValidation pins the request-side bounds: negative or
// over-cap parallelism is a 400, never a 5xx or a goroutine fan-out.
func TestRankParallelismValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, p := range []int{-1, MaxParallelism + 1} {
		rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", Parallelism: p})
		if rr.Code != 400 {
			t.Errorf("parallelism=%d: status %d, want 400", p, rr.Code)
		}
	}
}

// TestRankKeyParallelism pins the cache-key policy: complete rankings share
// one key across worker counts (their results are identical), budgeted
// rankings key the worker count (their covered subset is not).
func TestRankKeyParallelism(t *testing.T) {
	complete1 := RankKey(&RankRequest{Kernel: "fft", Parallelism: 1})
	complete8 := RankKey(&RankRequest{Kernel: "fft", Parallelism: 8})
	if complete1 != complete8 {
		t.Errorf("complete-ranking keys differ: %q vs %q", complete1, complete8)
	}
	budget1 := RankKey(&RankRequest{Kernel: "fft", MaxCandidates: 2, Parallelism: 1})
	budget8 := RankKey(&RankRequest{Kernel: "fft", MaxCandidates: 2, Parallelism: 8})
	if budget1 == budget8 {
		t.Errorf("budgeted-ranking keys collide: %q", budget1)
	}
}
