package service

import (
	"context"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"

	"gpuhms/internal/obs"
)

// NewAccessLogger builds the JSON access logger Options.AccessLog expects:
// one slog JSON record per request on w. cmd/hmsserved points it at the
// -access-log file; tests point it at a buffer and assert the schema.
func NewAccessLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo}))
}

// Wire headers of the request-tracing layer (docs/OBSERVABILITY.md).
const (
	// HeaderRequestID carries the request's ID on every response — success,
	// error, and shed alike — so a client can quote the exact server-side
	// identity of a 429 or 504 when correlating with access logs and traces.
	HeaderRequestID = "X-Request-ID"
	// HeaderTraceparent is the W3C trace-context header (traceparent). When
	// a request carries a valid one, its trace-id becomes the request ID,
	// so the service's logs and spans join the caller's distributed trace.
	HeaderTraceparent = "traceparent"
	// HeaderCache reports the cache outcome (hit/miss/shared) of a rank
	// request, on errors too once a cache decision was made.
	HeaderCache = "X-HMS-Cache"
)

// Stage indexes one phase of a request's per-stage timeline.
type Stage int

const (
	// StageDecode is body read + JSON decode + validation.
	StageDecode Stage = iota
	// StageCache is the result-cache lookup / singleflight election.
	StageCache
	// StageQueue is submit-to-pickup time in the worker pool (leader only).
	StageQueue
	// StageSearch is the advisor search on the worker (leader only).
	StageSearch
	// StageWait is the handler's wait for the flight result.
	StageWait
	// StageEncode is response encode + write.
	StageEncode

	numStages
)

// stageNames are the span names and the access-log field stems, in Stage
// order. The access-log schema test pins them.
var stageNames = [numStages]string{"decode", "cache", "queue", "search", "wait", "encode"}

// stageSpan is one recorded stage interval on the collector's timebase.
type stageSpan struct{ startNS, durNS float64 }

// ReqTrace is one request's identity and per-stage timeline. The tracing
// middleware creates it, stores it in the request context, and renders it
// into an access-log line (every request) and Chrome-trace spans (sampled
// requests) when the handler returns. Handlers and pool closures record
// stages into it concurrently — a detached search keeps writing its stage
// after an abandoned client's middleware already logged — so all mutation
// is mutex-guarded. Every method is nil-receiver-safe: code paths reached
// without the middleware (direct handler calls in tests) degrade to no
// tracing instead of panicking.
type ReqTrace struct {
	// ID identifies the request: the trace-id of a valid incoming
	// traceparent, the client's own X-Request-ID (sanitized), or a fresh
	// random 32-hex ID.
	ID string
	// Traceparent is the propagated W3C header; empty when ID was locally
	// generated or client-supplied.
	Traceparent string
	// Route is the short route name ("rank", "predict", "healthz", ...).
	Route string

	sampled bool
	flowID  uint64
	startNS float64
	now     func() float64 // the collector clock

	mu       sync.Mutex
	stages   [numStages]stageSpan
	cache    string
	strategy string
	shed     string
	status   int
}

type traceCtxKey struct{}

// withTrace stores rt in ctx.
func withTrace(ctx context.Context, rt *ReqTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, rt)
}

// TraceFrom returns the request's ReqTrace, or nil outside the tracing
// middleware.
func TraceFrom(ctx context.Context) *ReqTrace {
	rt, _ := ctx.Value(traceCtxKey{}).(*ReqTrace)
	return rt
}

// newReqTrace builds the trace of one incoming request: ID extraction /
// generation and the flow ID that links its pool handoff arrows.
func newReqTrace(route string, r *http.Request, now func() float64, sampled bool) *ReqTrace {
	rt := &ReqTrace{Route: route, sampled: sampled, now: now, startNS: now()}
	if tp := r.Header.Get(HeaderTraceparent); tp != "" {
		if traceID, ok := parseTraceparent(tp); ok {
			rt.ID, rt.Traceparent = traceID, tp
		}
	}
	if rt.ID == "" {
		if id := sanitizeRequestID(r.Header.Get(HeaderRequestID)); id != "" {
			rt.ID = id
		} else {
			rt.ID = newRequestID()
		}
	}
	rt.flowID = fnv64(rt.ID)
	return rt
}

// newRequestID generates a 32-hex (128-bit) request ID. math/rand/v2's
// global source is ChaCha8-based and randomly seeded per process — cheap
// enough for the hot path, unique enough for log correlation.
func newRequestID() string {
	var buf [32]byte
	hexEncode(buf[:16], rand.Uint64())
	hexEncode(buf[16:], rand.Uint64())
	return string(buf[:])
}

const hexDigits = "0123456789abcdef"

// hexEncode writes v as 16 lowercase hex digits into dst.
func hexEncode(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// parseTraceparent validates a W3C traceparent header
// (version-traceid-parentid-flags, lowercase hex) and extracts the 32-hex
// trace-id. Invalid headers are ignored, never an error: tracing is
// best-effort and a hostile header must not change request handling.
func parseTraceparent(h string) (traceID string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	ver, tid, pid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isLowerHex(ver) || !isLowerHex(tid) || !isLowerHex(pid) || !isLowerHex(flags) {
		return "", false
	}
	// ff is forbidden by the spec; all-zero IDs mean "no trace".
	if ver == "ff" || allZero(tid) || allZero(pid) {
		return "", false
	}
	return tid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// sanitizeRequestID accepts a client-chosen X-Request-ID when it is 1..64
// bytes of [A-Za-z0-9._-]; anything else (too long, control bytes, header
// injection attempts) is discarded in favor of a generated ID.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// fnv64 is FNV-1a over s: the flow ID linking a request's handoff arrows.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// shortID is the track-name prefix of the request (first 8 hex chars).
func (rt *ReqTrace) shortID() string {
	if len(rt.ID) > 8 {
		return rt.ID[:8]
	}
	return rt.ID
}

// Sampled reports whether this request's spans go to the timeline.
func (rt *ReqTrace) Sampled() bool { return rt != nil && rt.sampled }

// BeginStage starts timing one stage and returns the closure that ends it.
func (rt *ReqTrace) BeginStage(s Stage) func() {
	if rt == nil {
		return func() {}
	}
	start := rt.now()
	return func() {
		end := rt.now()
		rt.mu.Lock()
		rt.stages[s] = stageSpan{startNS: start, durNS: end - start}
		rt.mu.Unlock()
	}
}

// MarkSubmit records the instant a search was handed to the pool: the
// queue stage opens here and the flow arrow starts here.
func (rt *ReqTrace) MarkSubmit() {
	if rt == nil {
		return
	}
	start := rt.now()
	rt.mu.Lock()
	rt.stages[StageQueue].startNS = start
	rt.mu.Unlock()
}

// MarkPickup closes the queue stage when a pool worker dequeues the job
// and, for sampled requests, terminates the handoff flow arrow on the pool
// track — the Perfetto rendering of "this worker picked that request up".
func (rt *ReqTrace) MarkPickup(col *obs.Collector) {
	if rt == nil {
		return
	}
	end := rt.now()
	rt.mu.Lock()
	q := &rt.stages[StageQueue]
	if q.startNS > 0 {
		q.durNS = end - q.startNS
	}
	rt.mu.Unlock()
	if rt.sampled && col != nil {
		col.Timeline().FlowEnd(trackPool, "handoff", rt.flowID, end)
	}
}

// SetCache records the cache outcome (hit/miss/shared).
func (rt *ReqTrace) SetCache(state string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.cache = state
	rt.mu.Unlock()
}

// CacheState returns the recorded cache outcome.
func (rt *ReqTrace) CacheState() string {
	if rt == nil {
		return ""
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.cache
}

// SetStrategy records the effective search strategy.
func (rt *ReqTrace) SetStrategy(strategy string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.strategy = strategy
	rt.mu.Unlock()
}

// SetShed records why a request was shed (queue_full, shed_deadline,
// shutting_down) for the access log.
func (rt *ReqTrace) SetShed(reason string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.shed = reason
	rt.mu.Unlock()
}

// setStatus records the response status (written by the middleware's
// status-capturing writer).
func (rt *ReqTrace) setStatus(status int) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.status = status
	rt.mu.Unlock()
}

// Timeline track names. Sampled requests each get their own
// "req/<shortID>" track (a per-request swimlane in Perfetto); pool-side
// search spans share the "pool" track, linked back by flow arrows.
const trackPool = "pool"

// trackName is the sampled request's own track.
func (rt *ReqTrace) trackName() string { return "req/" + rt.shortID() }

// SearchSpan records the search stage and, for sampled requests, the
// pool-track span a flow arrow lands on. It runs on the worker goroutine.
func (rt *ReqTrace) SearchSpan(col *obs.Collector, startNS, durNS float64) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.stages[StageSearch] = stageSpan{startNS: startNS, durNS: durNS}
	rt.mu.Unlock()
	if rt.sampled && col != nil {
		col.Span(trackPool, "search "+rt.shortID(), startNS, durNS)
	}
}

// emitSpans renders a sampled request's timeline: one whole-request span
// plus its recorded stages on the request's own track, and the handoff
// flow arrow pointing at the pool. Runs once, from the middleware, when
// the handler returns.
func (rt *ReqTrace) emitSpans(col *obs.Collector, endNS float64) {
	if rt == nil || !rt.sampled || col == nil {
		return
	}
	rt.mu.Lock()
	stages := rt.stages
	rt.mu.Unlock()
	track := rt.trackName()
	col.Add(obs.MetricServiceTraceSampledTotal, 1)
	col.Span(track, rt.Route+" "+rt.ID, rt.startNS, endNS-rt.startNS)
	for s := Stage(0); s < numStages; s++ {
		sp := stages[s]
		if sp.startNS > 0 || sp.durNS > 0 {
			col.Span(track, stageNames[s], sp.startNS, sp.durNS)
		}
	}
	if q := stages[StageQueue]; q.startNS > 0 {
		col.Timeline().FlowStart(track, "handoff", rt.flowID, q.startNS)
	}
}

// snapshotLog copies the fields the access-log line needs in one lock.
func (rt *ReqTrace) snapshotLog() (stages [numStages]stageSpan, cache, strategy, shed string, status int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stages, rt.cache, rt.strategy, rt.shed, rt.status
}

// logAccess emits the one-line JSON access log record of a finished
// request. The field set and types are pinned by TestAccessLogSchema —
// log consumers parse these lines, so the schema is an API.
func (s *Server) logAccess(rt *ReqTrace, durNS int64) {
	lg := s.opt.AccessLog
	if lg == nil || rt == nil {
		return
	}
	stages, cache, strategy, shed, status := rt.snapshotLog()
	lg.LogAttrs(context.Background(), slog.LevelInfo, "request",
		slog.String("id", rt.ID),
		slog.String("route", rt.Route),
		slog.Int("status", status),
		slog.String("cache", cache),
		slog.String("strategy", strategy),
		slog.String("shed", shed),
		slog.Int64("dur_ns", durNS),
		slog.Int64("decode_ns", int64(stages[StageDecode].durNS)),
		slog.Int64("cache_ns", int64(stages[StageCache].durNS)),
		slog.Int64("queue_ns", int64(stages[StageQueue].durNS)),
		slog.Int64("search_ns", int64(stages[StageSearch].durNS)),
		slog.Int64("wait_ns", int64(stages[StageWait].durNS)),
		slog.Int64("encode_ns", int64(stages[StageEncode].durNS)),
	)
}

// statusWriter captures the response status for the middleware (the
// handlers' int returns stay internal to instrument).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// routeName maps a request path onto its short route name for logs, SLO
// keys, and span names.
func routeName(path string) string {
	switch path {
	case "/v1/rank":
		return "rank"
	case "/v1/predict":
		return "predict"
	case "/v1/kernels":
		return "kernels"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

// traceMiddleware wraps the whole API: it mints the request identity
// before any handler runs (so even a 404/405 from the mux carries
// X-Request-ID), threads the ReqTrace through the context, and renders the
// access-log line, SLO sample, and (for every TraceSampleEvery-th request)
// the Chrome-trace spans when the handler returns.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seq := s.reqSeq.Add(1)
		sampled := s.opt.TraceSampleEvery > 0 && seq%int64(s.opt.TraceSampleEvery) == 0
		rt := newReqTrace(routeName(r.URL.Path), r, s.col.Now, sampled)
		w.Header().Set(HeaderRequestID, rt.ID)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(withTrace(r.Context(), rt)))
		endNS := s.col.Now()
		if sw.code == 0 {
			sw.code = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		rt.setStatus(sw.code)
		durNS := int64(endNS - rt.startNS)
		if s.slo != nil {
			s.slo.Record(rt.Route, rt.CacheState(), float64(durNS), sw.code < 500)
		}
		s.logAccess(rt, durNS)
		rt.emitSpans(s.col, endNS)
	})
}
