package service

import (
	"errors"
	"net/http"
	"sync"
	"testing"

	"gpuhms/internal/obs"
)

// TestCacheBeginComplete exercises the cache/singleflight state machine
// without a server around it.
func TestCacheBeginComplete(t *testing.T) {
	c := NewCache[*RankResponse](2, nil)

	// First caller leads.
	resp, fl, leader := c.Begin("a")
	if resp != nil || !leader || fl == nil {
		t.Fatalf("first Begin: resp=%v leader=%v", resp, leader)
	}
	// Second caller with the same key joins the flight.
	resp2, fl2, leader2 := c.Begin("a")
	if resp2 != nil || leader2 || fl2 != fl {
		t.Fatal("second Begin should join the first flight")
	}
	want := &RankResponse{Kernel: "a"}
	c.Complete("a", want, nil)
	<-fl.done
	if fl.resp != want || fl.err != nil {
		t.Fatalf("flight carries %v/%v", fl.resp, fl.err)
	}
	// Third caller hits the cache.
	resp3, _, leader3 := c.Begin("a")
	if resp3 != want || leader3 {
		t.Fatal("third Begin should hit the cache")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache[*RankResponse](2, nil)
	_, fl, leader := c.Begin("a")
	if !leader {
		t.Fatal("want leadership")
	}
	c.Complete("a", nil, errors.New("boom"))
	<-fl.done
	if fl.err == nil {
		t.Fatal("flight should carry the error")
	}
	if c.Len() != 0 {
		t.Fatal("errors must not be cached")
	}
	// The key is free again: the next caller leads a fresh flight.
	if _, _, leader := c.Begin("a"); !leader {
		t.Fatal("key should be retryable after a failed flight")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	col := obs.NewCollector()
	obs.RegisterServiceMetrics(col.Registry())
	c := NewCache[*RankResponse](2, col)
	for _, key := range []string{"a", "b", "c"} { // c evicts a
		_, _, leader := c.Begin(key)
		if !leader {
			t.Fatalf("want leadership for %q", key)
		}
		c.Complete(key, &RankResponse{Kernel: key}, nil)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if resp, _, _ := c.Begin("a"); resp != nil {
		t.Fatal("oldest entry should have been evicted")
	}
	c.Complete("a", &RankResponse{Kernel: "a"}, nil) // retire the flight
	var evictions int64
	for _, cs := range col.Snapshot().Counters {
		if cs.Name == obs.MetricServiceCacheEvictionsTotal {
			evictions = cs.Value
		}
	}
	if evictions == 0 {
		t.Fatal("eviction counter not incremented")
	}
}

func TestCacheDisabledKeepsSingleflight(t *testing.T) {
	c := NewCache[*RankResponse](-1, nil)
	_, fl, leader := c.Begin("a")
	if !leader {
		t.Fatal("want leadership")
	}
	// A second caller still collapses into the flight even with caching off.
	_, fl2, leader2 := c.Begin("a")
	if leader2 || fl2 != fl {
		t.Fatal("singleflight should survive a disabled cache")
	}
	c.Complete("a", &RankResponse{}, nil)
	if c.Len() != 0 {
		t.Fatal("disabled cache must stay empty")
	}
}

// TestSingleflightCollapsesIdenticalRequests fires N identical rank
// requests concurrently and asserts exactly one search ran (profiling-run
// count and obs counters agree) while every caller got a byte-identical
// body.
func TestSingleflightCollapsesIdenticalRequests(t *testing.T) {
	s, m := countingServer(t, Options{Workers: 4, QueueCap: 16})
	const n = 8
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft"})
			codes[i], bodies[i] = rr.Code, rr.Body.String()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if runs := m.runs.Load(); runs != 1 {
		t.Fatalf("%d profiling runs for %d identical requests, want 1", runs, n)
	}
	if searches := counterVal(s, obs.MetricServiceSearchesTotal); searches != 1 {
		t.Fatalf("service_searches_total = %d, want 1", searches)
	}
	// Every non-leading request either joined the flight or hit the cache.
	shared := counterVal(s, obs.MetricServiceSingleflightSharedTotal)
	hits := counterVal(s, obs.MetricServiceCacheHitsTotal)
	if shared+hits != n-1 {
		t.Fatalf("shared %d + hits %d, want %d", shared, hits, n-1)
	}
}

// TestCacheHitIsByteIdentical replays a request (including a budget-limited
// 206) and asserts the cached body is bit-for-bit the original.
func TestCacheHitIsByteIdentical(t *testing.T) {
	s, m := countingServer(t, Options{})
	for _, req := range []RankRequest{
		{Kernel: "fft"},
		{Kernel: "fft", MaxCandidates: 2}, // partial responses are cached too
	} {
		first := doJSON(t, s, "POST", "/v1/rank", req)
		if first.Code != 200 && first.Code != 206 {
			t.Fatalf("cold status %d: %s", first.Code, first.Body.String())
		}
		second := doJSON(t, s, "POST", "/v1/rank", req)
		if second.Code != first.Code {
			t.Fatalf("cached status %d, cold was %d", second.Code, first.Code)
		}
		if got := second.Header().Get("X-HMS-Cache"); got != cacheHit {
			t.Fatalf("X-HMS-Cache %q, want hit", got)
		}
		if second.Body.String() != first.Body.String() {
			t.Fatalf("cached body differs:\ncold   %s\ncached %s",
				first.Body.String(), second.Body.String())
		}
	}
	if runs := m.runs.Load(); runs != 2 {
		t.Fatalf("%d profiling runs, want 2 (one per distinct key)", runs)
	}
}

// TestCacheKeyIncludesOptions asserts requests differing only in search
// options do not share cache entries.
func TestCacheKeyIncludesOptions(t *testing.T) {
	s, m := countingServer(t, Options{})
	reqs := []RankRequest{
		{Kernel: "fft"},
		{Kernel: "fft", TopK: 1},
		{Kernel: "fft", MaxCandidates: 3},
		{Kernel: "fft", Scale: 2},
	}
	for i, req := range reqs {
		rr := doJSON(t, s, "POST", "/v1/rank", req)
		if rr.Code != 200 && rr.Code != 206 {
			t.Fatalf("request %d status %d: %s", i, rr.Code, rr.Body.String())
		}
		if got := rr.Header().Get("X-HMS-Cache"); got != cacheMiss {
			t.Fatalf("request %d X-HMS-Cache %q, want miss", i, got)
		}
	}
	if runs := m.runs.Load(); runs != int64(len(reqs)) {
		t.Fatalf("%d profiling runs, want %d distinct searches", runs, len(reqs))
	}
	// Timeout is excluded from the key: same search, different deadline → hit.
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TimeoutMS: 30000})
	if got := rr.Header().Get("X-HMS-Cache"); got != cacheHit {
		t.Fatalf("timeout-only variant X-HMS-Cache %q, want hit", got)
	}
}

// TestServerLRUEviction drives eviction through the HTTP path with a
// one-entry cache.
func TestServerLRUEviction(t *testing.T) {
	s, m := countingServer(t, Options{CacheCap: 1})
	reqA := RankRequest{Kernel: "fft", TopK: 1}
	reqB := RankRequest{Kernel: "fft", TopK: 2}
	doJSON(t, s, "POST", "/v1/rank", reqA) // miss, cached
	doJSON(t, s, "POST", "/v1/rank", reqB) // miss, evicts A
	rr := doJSON(t, s, "POST", "/v1/rank", reqA)
	if got := rr.Header().Get("X-HMS-Cache"); got != cacheMiss {
		t.Fatalf("evicted key served as %q, want miss", got)
	}
	if runs := m.runs.Load(); runs != 3 {
		t.Fatalf("%d profiling runs, want 3", runs)
	}
	if counterVal(s, obs.MetricServiceCacheEvictionsTotal) == 0 {
		t.Fatal("eviction counter not incremented")
	}
}

func TestRankKeyShape(t *testing.T) {
	a := RankKey(&RankRequest{Arch: "k80", Kernel: "fft", Scale: 1})
	b := RankKey(&RankRequest{Arch: "k80", Kernel: "fft", Scale: 1, TimeoutMS: 500})
	if a != b {
		t.Fatal("timeout_ms must not be part of the cache key")
	}
	c := RankKey(&RankRequest{Arch: "k80", Kernel: "fft", Scale: 1, TopK: 1})
	if a == c {
		t.Fatal("top_k must be part of the cache key")
	}
}
