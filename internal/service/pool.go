package service

import (
	"sync"
	"time"

	"gpuhms/internal/obs"
)

// poolJob is one queued unit of work.
type poolJob struct {
	run      func()
	enqueued time.Time
}

// Pool is a bounded worker pool with an explicit queue: Submit never
// blocks — when the queue is full it returns ErrQueueFull, which the
// handlers surface as 429 with Retry-After (load shedding instead of
// unbounded goroutine growth). The pool reports queue depth and in-flight
// gauges and a queue-wait histogram through the service metric names in
// internal/obs.
type Pool struct {
	rec   obs.Recorder
	queue chan poolJob
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	inflightMu sync.Mutex
	inflight   int
}

// NewPool starts workers goroutines consuming a queue of queueCap pending
// jobs (queueCap 0 means Submit succeeds only when a worker is free to take
// the job soon; the channel still needs one slot per handoff, so a minimum
// capacity of 1 is used).
func NewPool(workers, queueCap int, rec obs.Recorder) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	p := &Pool{rec: obs.OrNop(rec), queue: make(chan poolJob, queueCap)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues a job. It returns ErrQueueFull when the queue is at
// capacity and ErrShuttingDown after Close.
func (p *Pool) Submit(run func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrShuttingDown
	}
	select {
	case p.queue <- poolJob{run: run, enqueued: time.Now()}:
		p.rec.Gauge(obs.MetricServiceQueueDepth, float64(len(p.queue)))
		return nil
	default:
		return ErrQueueFull
	}
}

// worker drains the queue until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		if p.rec.Enabled() {
			p.rec.Observe(obs.MetricServiceQueueWaitNS, float64(time.Since(job.enqueued).Nanoseconds()))
			p.rec.Gauge(obs.MetricServiceQueueDepth, float64(len(p.queue)))
		}
		p.setInflight(+1)
		job.run()
		p.setInflight(-1)
	}
}

// setInflight adjusts the running-jobs gauge.
func (p *Pool) setInflight(d int) {
	p.inflightMu.Lock()
	p.inflight += d
	n := p.inflight
	p.inflightMu.Unlock()
	p.rec.Gauge(obs.MetricServiceInflight, float64(n))
}

// QueueDepth reports the currently queued (not yet running) jobs.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Close stops accepting jobs, lets the workers drain what is already
// queued, and returns when every worker has exited. Callers that need a
// faster drain cancel the context their jobs run under before (or while)
// calling Close.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
