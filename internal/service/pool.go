package service

import (
	"sort"
	"sync"
	"time"

	"gpuhms/internal/obs"
)

// poolJob is one queued unit of work. Jobs submitted with a deadline carry
// a shed callback: when the pool decides the job cannot finish in time, it
// invokes shed(ErrDeadlineBudget) instead of run, so the waiters are
// answered immediately rather than after a doomed search.
type poolJob struct {
	run      func()
	shed     func(error)
	deadline time.Time
	enqueued time.Time
}

// serviceTimeWindow is the ring of recent job service times backing the
// pool's p50 estimate; 128 samples is enough to track the workload mix
// while forgetting a cold-start transient quickly.
const serviceTimeWindow = 128

// Pool is a bounded worker pool with an explicit queue: Submit never
// blocks — when the queue is full it returns ErrQueueFull, which the
// handlers surface as 429 with Retry-After (load shedding instead of
// unbounded goroutine growth). Deadline-aware jobs (SubmitDeadline) are
// additionally shed with ErrDeadlineBudget — at submit and again at
// dequeue — when their remaining deadline budget cannot cover the observed
// median service time: a request that would time out anyway is answered
// 504 immediately instead of occupying a worker. The pool reports queue
// depth and in-flight gauges and a queue-wait histogram through the service
// metric names in internal/obs.
type Pool struct {
	rec   obs.Recorder
	queue chan poolJob
	wg    sync.WaitGroup

	// now is the pool's clock, swappable by tests driving shed decisions
	// with a fake time.
	now func() time.Time

	mu     sync.Mutex
	closed bool

	inflightMu sync.Mutex
	inflight   int

	svcMu    sync.Mutex
	svcTimes [serviceTimeWindow]time.Duration
	svcLen   int // samples recorded, capped at the window
	svcNext  int // ring cursor
}

// NewPool starts workers goroutines consuming a queue of queueCap pending
// jobs (queueCap 0 means Submit succeeds only when a worker is free to take
// the job soon; the channel still needs one slot per handoff, so a minimum
// capacity of 1 is used).
func NewPool(workers, queueCap int, rec obs.Recorder) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	p := &Pool{rec: obs.OrNop(rec), queue: make(chan poolJob, queueCap), now: time.Now}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues a job with no deadline. It returns ErrQueueFull when the
// queue is at capacity and ErrShuttingDown after Close.
func (p *Pool) Submit(run func()) error {
	return p.SubmitDeadline(time.Time{}, run, nil)
}

// SubmitDeadline enqueues a job that must finish by deadline (zero means
// none). When the remaining budget already cannot cover the observed median
// service time, the job is rejected with ErrDeadlineBudget without being
// queued; if the budget runs out while the job waits in the queue, the
// worker that dequeues it calls shed(ErrDeadlineBudget) instead of run.
// Other errors are ErrQueueFull and ErrShuttingDown, as for Submit.
func (p *Pool) SubmitDeadline(deadline time.Time, run func(), shed func(error)) error {
	if p.doomed(deadline) {
		p.rec.Add(obs.MetricServiceShedDeadlineTotal, 1)
		return ErrDeadlineBudget
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrShuttingDown
	}
	select {
	case p.queue <- poolJob{run: run, shed: shed, deadline: deadline, enqueued: p.now()}:
		p.rec.Gauge(obs.MetricServiceQueueDepth, float64(len(p.queue)))
		return nil
	default:
		return ErrQueueFull
	}
}

// doomed reports whether a job with this deadline is not worth running:
// the time remaining is shorter than the observed median service time.
// With no deadline or no service-time history yet, nothing is doomed.
func (p *Pool) doomed(deadline time.Time) bool {
	if deadline.IsZero() {
		return false
	}
	p50 := p.ObservedP50()
	return p50 > 0 && deadline.Sub(p.now()) < p50
}

// worker drains the queue until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		if p.rec.Enabled() {
			p.rec.Observe(obs.MetricServiceQueueWaitNS, float64(p.now().Sub(job.enqueued).Nanoseconds()))
			p.rec.Gauge(obs.MetricServiceQueueDepth, float64(len(p.queue)))
		}
		if job.shed != nil && p.doomed(job.deadline) {
			p.rec.Add(obs.MetricServiceShedDeadlineTotal, 1)
			job.shed(ErrDeadlineBudget)
			continue
		}
		p.setInflight(+1)
		start := p.now()
		job.run()
		p.observeService(p.now().Sub(start))
		p.setInflight(-1)
	}
}

// observeService records one job's service time into the ring.
func (p *Pool) observeService(d time.Duration) {
	p.svcMu.Lock()
	p.svcTimes[p.svcNext] = d
	p.svcNext = (p.svcNext + 1) % serviceTimeWindow
	if p.svcLen < serviceTimeWindow {
		p.svcLen++
	}
	p.svcMu.Unlock()
}

// ObservedP50 is the median service time over the recent window (0 until
// the first job completes) — the pool's estimate of what one more search
// will cost, and the bar a queued request's remaining deadline must clear.
func (p *Pool) ObservedP50() time.Duration {
	p.svcMu.Lock()
	n := p.svcLen
	buf := make([]time.Duration, n)
	copy(buf, p.svcTimes[:n])
	p.svcMu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[n/2]
}

// setInflight adjusts the running-jobs gauge.
func (p *Pool) setInflight(d int) {
	p.inflightMu.Lock()
	p.inflight += d
	n := p.inflight
	p.inflightMu.Unlock()
	p.rec.Gauge(obs.MetricServiceInflight, float64(n))
}

// QueueDepth reports the currently queued (not yet running) jobs.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// Close stops accepting jobs, lets the workers drain what is already
// queued, and returns when every worker has exited. Callers that need a
// faster drain cancel the context their jobs run under before (or while)
// calling Close.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
