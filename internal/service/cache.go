package service

import (
	"container/list"
	"fmt"

	"gpuhms/internal/obs"
	"sync"
)

// RankKey is the cache/singleflight key of a rank request:
// (arch, kernel, scale, sample, options, strategy). The client-requested
// timeout is deliberately excluded — it bounds how long a search may run,
// not what it computes — so identical searches with different deadlines
// collapse into one flight. Parallelism is likewise excluded for complete
// rankings — the engine guarantees worker-count-invariant output for every
// strategy — but keyed for budgeted ones (max_candidates > 0), where the
// covered subset follows the shard interleaving. Strategy is always keyed
// (callers must normalize it first: decode canonicalizes the spelling and
// the rank handler applies the server default), since different strategies
// legitimately produce different rankings. The sample spec is keyed as
// written; two spellings of the same placement ("a:G,b:T" vs "b:T,a:G") are
// distinct keys and at worst cost one redundant search.
func RankKey(req *RankRequest) string {
	key := fmt.Sprintf("%s|%s|%d|%s|k%d|c%d|s%s",
		req.Arch, req.Kernel, req.Scale, req.Sample, req.TopK, req.MaxCandidates, req.Strategy)
	if req.MaxCandidates > 0 && req.Parallelism > 0 {
		key += fmt.Sprintf("|p%d", req.Parallelism)
	}
	return key
}

// flight is one in-progress search shared by every request with its key.
// Complete fills resp/err and then closes done; waiters read the fields
// only after <-done, so the channel close publishes them.
type flight struct {
	done chan struct{}
	resp *RankResponse
	err  error
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key  string
	resp *RankResponse
}

// Cache is the LRU result cache with singleflight collapsing. Begin either
// answers from the cache, joins an in-flight search, or elects the caller
// leader of a new flight; Complete publishes a flight's outcome (caching it
// on success) and wakes every waiter. All methods are safe for concurrent
// use. Only successful (including partial/206) responses are cached; errors
// are never negatively cached, so a failed search is retried by the next
// request.
type Cache struct {
	rec obs.Recorder

	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight
}

// NewCache returns a cache keeping at most capacity responses (capacity
// <= 0 disables caching but keeps singleflight collapsing). The recorder
// receives the eviction counter.
func NewCache(capacity int, rec obs.Recorder) *Cache {
	return &Cache{
		rec:     obs.OrNop(rec),
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Begin routes one request. Exactly one of the returns is meaningful:
//
//   - resp != nil: served from cache (fl is nil).
//   - leader true: the caller must run the search and call Complete; fl is
//     the flight it must complete.
//   - otherwise: an identical search is in flight; wait on fl.done.
func (c *Cache) Begin(key string) (resp *RankResponse, fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).resp, nil, false
	}
	if fl, ok := c.flights[key]; ok {
		return nil, fl, false
	}
	fl = &flight{done: make(chan struct{})}
	c.flights[key] = fl
	return nil, fl, true
}

// Complete publishes a leader's outcome: the response is cached when err is
// nil, the flight is retired, and every waiter wakes with the shared
// result.
func (c *Cache) Complete(key string, resp *RankResponse, err error) {
	c.mu.Lock()
	if err == nil {
		c.insert(key, resp)
	}
	fl := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if fl != nil {
		fl.resp, fl.err = resp, err
		close(fl.done)
	}
}

// insert adds a response under c.mu, evicting from the LRU tail.
func (c *Cache) insert(key string, resp *RankResponse) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.rec.Add(obs.MetricServiceCacheEvictionsTotal, 1)
	}
}

// Len reports the number of cached responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CachedResponse is one (key, response) pair of the cache's snapshot view.
type CachedResponse struct {
	Key  string
	Resp *RankResponse
}

// Entries returns the cached responses least-recently-used first, so
// replaying them through Restore in order reproduces the recency order
// (the most recently used entry is re-inserted last and evicted last).
func (c *Cache) Entries() []CachedResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedResponse, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		out = append(out, CachedResponse{Key: e.key, Resp: e.resp})
	}
	return out
}

// Restore inserts one entry as if it had just been served, subject to the
// normal LRU capacity. It is the warm-boot path; callers validate entries
// (service.RestoreCache) before handing them over.
func (c *Cache) Restore(key string, resp *RankResponse) {
	c.mu.Lock()
	c.insert(key, resp)
	c.mu.Unlock()
}
