package service

import (
	"container/list"
	"fmt"

	"gpuhms/internal/obs"
	"sync"
)

// RankKey is the cache/singleflight key of a rank request:
// (arch, kernel, scale, sample, options, strategy). The client-requested
// timeout is deliberately excluded — it bounds how long a search may run,
// not what it computes — so identical searches with different deadlines
// collapse into one flight. Parallelism is likewise excluded for complete
// rankings — the engine guarantees worker-count-invariant output for every
// strategy — but keyed for budgeted ones (max_candidates > 0), where the
// covered subset follows the shard interleaving. Strategy is always keyed
// (callers must normalize it first: decode canonicalizes the spelling and
// the rank handler applies the server default), since different strategies
// legitimately produce different rankings. The sample spec is keyed as
// written; two spellings of the same placement ("a:G,b:T" vs "b:T,a:G") are
// distinct keys and at worst cost one redundant search.
func RankKey(req *RankRequest) string {
	key := fmt.Sprintf("%s|%s|%d|%s|k%d|c%d|s%s",
		req.Arch, req.Kernel, req.Scale, req.Sample, req.TopK, req.MaxCandidates, req.Strategy)
	if req.MaxCandidates > 0 && req.Parallelism > 0 {
		key += fmt.Sprintf("|p%d", req.Parallelism)
	}
	return key
}

// flight is one in-progress search shared by every request with its key.
// Complete fills resp/err and then closes done; waiters read the fields
// only after <-done, so the channel close publishes them.
type flight[V any] struct {
	done chan struct{}
	resp V
	err  error
}

// cacheEntry is one LRU slot.
type cacheEntry[V any] struct {
	key  string
	resp V
}

// Cache is the LRU result cache with singleflight collapsing, generic over
// the cached response type — the rank and fleet caches are two
// instantiations of the same machinery. Begin either answers from the cache,
// joins an in-flight search, or elects the caller leader of a new flight;
// Complete publishes a flight's outcome (caching it on success) and wakes
// every waiter. All methods are safe for concurrent use. Only successful
// (including partial/206) responses are cached; errors are never negatively
// cached, so a failed search is retried by the next request.
type Cache[V any] struct {
	rec obs.Recorder

	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight[V]
}

// NewCache returns a cache keeping at most capacity responses (capacity
// <= 0 disables caching but keeps singleflight collapsing). The recorder
// receives the eviction counter.
func NewCache[V any](capacity int, rec obs.Recorder) *Cache[V] {
	return &Cache[V]{
		rec:     obs.OrNop(rec),
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight[V]),
	}
}

// Begin routes one request. Exactly one of the returns is meaningful:
//
//   - fl == nil: served from cache, resp holds the answer (the type
//     parameter need not be nil-comparable, so the nil flight — not the
//     response — is the hit signal).
//   - leader true: the caller must run the search and call Complete; fl is
//     the flight it must complete.
//   - otherwise: an identical search is in flight; wait on fl.done.
func (c *Cache[V]) Begin(key string) (resp V, fl *flight[V], leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry[V]).resp, nil, false
	}
	if fl, ok := c.flights[key]; ok {
		return resp, fl, false
	}
	fl = &flight[V]{done: make(chan struct{})}
	c.flights[key] = fl
	return resp, fl, true
}

// Complete publishes a leader's outcome: the response is cached when err is
// nil, the flight is retired, and every waiter wakes with the shared
// result.
func (c *Cache[V]) Complete(key string, resp V, err error) {
	c.mu.Lock()
	if err == nil {
		c.insert(key, resp)
	}
	fl := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if fl != nil {
		fl.resp, fl.err = resp, err
		close(fl.done)
	}
}

// insert adds a response under c.mu, evicting from the LRU tail.
func (c *Cache[V]) insert(key string, resp V) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry[V]).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry[V]{key: key, resp: resp})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry[V]).key)
		c.rec.Add(obs.MetricServiceCacheEvictionsTotal, 1)
	}
}

// Len reports the number of cached responses.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CachedEntry is one (key, response) pair of a cache's snapshot view.
type CachedEntry[V any] struct {
	Key  string
	Resp V
}

// CachedResponse is the rank cache's snapshot entry.
type CachedResponse = CachedEntry[*RankResponse]

// FleetCachedResponse is the fleet cache's snapshot entry.
type FleetCachedResponse = CachedEntry[*FleetRankResponse]

// Entries returns the cached responses least-recently-used first, so
// replaying them through Restore in order reproduces the recency order
// (the most recently used entry is re-inserted last and evicted last).
func (c *Cache[V]) Entries() []CachedEntry[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedEntry[V], 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry[V])
		out = append(out, CachedEntry[V]{Key: e.key, Resp: e.resp})
	}
	return out
}

// Restore inserts one entry as if it had just been served, subject to the
// normal LRU capacity. It is the warm-boot path; callers validate entries
// (service.RestoreCache, service.RestoreFleetCache) before handing them
// over.
func (c *Cache[V]) Restore(key string, resp V) {
	c.mu.Lock()
	c.insert(key, resp)
	c.mu.Unlock()
}
