package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 8, nil)
	defer p.Close()
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := p.Submit(func() { done.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if done.Load() != 8 {
		t.Fatalf("%d jobs ran, want 8", done.Load())
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1, nil)
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the worker...
	if err := p.Submit(func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...and the queue slot.
	if err := p.Submit(func() {}); err != nil {
		t.Fatal(err)
	}
	// The next job is shed.
	if err := p.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(block)
	p.Close()
}

// TestPoolCloseDrains verifies Close waits for queued jobs to finish.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(1, 4, nil)
	var done atomic.Int64
	for i := 0; i < 4; i++ {
		if err := p.Submit(func() { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if done.Load() != 4 {
		t.Fatalf("Close returned with %d of 4 jobs done", done.Load())
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-Close Submit err = %v, want ErrShuttingDown", err)
	}
}

// TestPoolCloseIdempotent guards the Close/Close and Close/Submit races.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2, 2, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
		wg.Add(1)
		go func() { defer wg.Done(); _ = p.Submit(func() {}) }()
	}
	wg.Wait()
}
