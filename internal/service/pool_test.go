package service

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 8, nil)
	defer p.Close()
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := p.Submit(func() { done.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if done.Load() != 8 {
		t.Fatalf("%d jobs ran, want 8", done.Load())
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1, nil)
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the worker...
	if err := p.Submit(func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...and the queue slot.
	if err := p.Submit(func() {}); err != nil {
		t.Fatal(err)
	}
	// The next job is shed.
	if err := p.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(block)
	p.Close()
}

// TestPoolCloseDrains verifies Close waits for queued jobs to finish.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(1, 4, nil)
	var done atomic.Int64
	for i := 0; i < 4; i++ {
		if err := p.Submit(func() { done.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if done.Load() != 4 {
		t.Fatalf("Close returned with %d of 4 jobs done", done.Load())
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-Close Submit err = %v, want ErrShuttingDown", err)
	}
}

// fakeClock is a manually advanced time source for deterministic shedding
// tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// seedP50 loads the pool's service-time window with a known median.
func seedP50(p *Pool, d time.Duration) {
	for i := 0; i < 8; i++ {
		p.observeService(d)
	}
}

// TestPoolObservedP50 pins the estimator: the median of the recorded
// window, 0 before any job completes.
func TestPoolObservedP50(t *testing.T) {
	p := NewPool(1, 1, nil)
	defer p.Close()
	if got := p.ObservedP50(); got != 0 {
		t.Fatalf("empty window p50 = %v, want 0", got)
	}
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 100 * time.Millisecond} {
		p.observeService(d)
	}
	if got := p.ObservedP50(); got != 5*time.Millisecond {
		t.Fatalf("p50 = %v, want 5ms", got)
	}
}

// TestPoolShedsAtSubmit verifies deadline-aware shedding at the door: a
// request whose whole budget is below the observed median service time is
// rejected with ErrDeadlineBudget without occupying queue or worker.
func TestPoolShedsAtSubmit(t *testing.T) {
	clk := newFakeClock()
	p := NewPool(1, 4, nil)
	defer p.Close()
	p.now = clk.Now
	seedP50(p, 100*time.Millisecond)

	// 10ms of budget against a 100ms median: doomed, shed at submit.
	err := p.SubmitDeadline(clk.Now().Add(10*time.Millisecond),
		func() { t.Error("doomed job ran") }, func(error) { t.Error("doomed job reached the queue") })
	if !errors.Is(err, ErrDeadlineBudget) {
		t.Fatalf("err = %v, want ErrDeadlineBudget", err)
	}
	// An ample budget is accepted and runs.
	done := make(chan struct{})
	if err := p.SubmitDeadline(clk.Now().Add(time.Hour), func() { close(done) }, func(error) {}); err != nil {
		t.Fatal(err)
	}
	<-done
	// No deadline means no shedding regardless of history.
	ran := make(chan struct{})
	if err := p.SubmitDeadline(time.Time{}, func() { close(ran) }, nil); err != nil {
		t.Fatal(err)
	}
	<-ran
}

// TestPoolShedsAtDequeue verifies the second shed gate: a job that was
// viable at submit but whose budget evaporated while queued is answered
// through its shed callback instead of running.
func TestPoolShedsAtDequeue(t *testing.T) {
	clk := newFakeClock()
	p := NewPool(1, 4, nil)
	defer p.Close()
	p.now = clk.Now
	seedP50(p, 50*time.Millisecond)

	// Occupy the single worker so the next job waits in the queue.
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started

	shedErr := make(chan error, 1)
	deadline := clk.Now().Add(200 * time.Millisecond) // viable now...
	if err := p.SubmitDeadline(deadline,
		func() { t.Error("expired job ran") },
		func(err error) { shedErr <- err }); err != nil {
		t.Fatal(err)
	}
	clk.Advance(190 * time.Millisecond) // ...but the queue wait ate the budget
	close(block)
	select {
	case err := <-shedErr:
		if !errors.Is(err, ErrDeadlineBudget) {
			t.Fatalf("shed err = %v, want ErrDeadlineBudget", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued job neither ran nor shed")
	}
}

// TestRetryAfterJitterBounds pins the full-jitter backoff: always >= 1,
// bounded by base<<k, and the exponent k grows with queue fullness.
func TestRetryAfterJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for depth := 0; depth <= 64; depth += 8 {
		for i := 0; i < 200; i++ {
			got := retryAfterSeconds(depth, 64, 1, rng.Intn)
			k := 4 * depth / 64
			if k > 4 {
				k = 4
			}
			if got < 1 || got > 1<<k {
				t.Fatalf("depth %d: Retry-After %d outside [1,%d]", depth, got, 1<<k)
			}
		}
	}
	// An empty queue keeps the base: no pointless long waits after drain.
	for i := 0; i < 50; i++ {
		if got := retryAfterSeconds(0, 64, 1, rng.Intn); got != 1 {
			t.Fatalf("empty queue Retry-After %d, want 1", got)
		}
	}
	// A full queue must be able to reach beyond the base, or the herd
	// returns in lockstep.
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[retryAfterSeconds(64, 64, 1, rng.Intn)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("full-queue jitter produced only %d distinct values", len(seen))
	}
	// Degenerate configs stay sane.
	if got := retryAfterSeconds(0, 0, 0, rng.Intn); got < 1 {
		t.Fatalf("zero config Retry-After %d", got)
	}
}

// TestPoolCloseIdempotent guards the Close/Close and Close/Submit races.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2, 2, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
		wg.Add(1)
		go func() { defer wg.Done(); _ = p.Submit(func() {}) }()
	}
	wg.Wait()
}
