package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"gpuhms/internal/advisor"
	"gpuhms/internal/obs"
)

// warmServer builds a test server and warms one fft ranking into its cache,
// returning the served body bytes.
func warmServer(t *testing.T, opt Options) (*Server, RankRequest, []byte) {
	t.Helper()
	s := newTestServer(t, opt)
	req := RankRequest{Kernel: "fft", TopK: 5}
	rr := doJSON(t, s, "POST", "/v1/rank", req)
	if rr.Code != 200 {
		t.Fatalf("warming rank: status %d: %s", rr.Code, rr.Body.String())
	}
	return s, req, rr.Body.Bytes()
}

// TestSnapshotRoundTripByteIdentical pins the acceptance criterion: a
// ranking cached before a snapshot is served byte-identically — and as a
// cache hit — by a second server restored from that snapshot.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	s1, req, wantBody := warmServer(t, Options{})
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	contents, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if contents.Skipped != 0 {
		t.Fatalf("%d entries skipped loading a pristine snapshot", contents.Skipped)
	}
	if _, ok := contents.Models["k80"]; !ok {
		t.Fatal("snapshot missing the k80 model")
	}
	if len(contents.Cache) == 0 {
		t.Fatal("snapshot missing the cached ranking")
	}

	// The saved model must reconstruct a working advisor without training.
	adv2, err := advisor.NewFromSaved(testAdvisor(t).Cfg, bytes.NewReader(contents.Models["k80"]))
	if err != nil {
		t.Fatalf("restoring model: %v", err)
	}
	s2, err := New(map[string]*advisor.Advisor{"k80": adv2}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	if restored, skipped := s2.RestoreCache(contents.Cache); restored == 0 || skipped != 0 {
		t.Fatalf("restore: %d restored %d skipped", restored, skipped)
	}

	rr := doJSON(t, s2, "POST", "/v1/rank", req)
	if rr.Code != 200 {
		t.Fatalf("post-restore status %d: %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("X-HMS-Cache"); got != cacheHit {
		t.Fatalf("post-restore X-HMS-Cache %q, want %q (restored entry not served from cache)", got, cacheHit)
	}
	if string(rr.Body.Bytes()) != string(wantBody) {
		t.Fatalf("post-restore body differs from pre-snapshot body:\npre:  %s\npost: %s", wantBody, rr.Body.Bytes())
	}
	if counterVal(s2, obs.MetricServiceSnapshotRestoredTotal) == 0 {
		t.Fatal("snapshot restored counter not incremented")
	}
}

// TestCorruptSnapshotBootsCold pins the other acceptance criterion: a
// deliberately corrupted snapshot degrades to a cold boot — entries skipped
// and counted, the request path fully functional, zero 5xx.
func TestCorruptSnapshotBootsCold(t *testing.T) {
	s1, req, _ := warmServer(t, Options{})
	path := filepath.Join(t.TempDir(), "state.snap")
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes through the entry region: checksum damage everywhere.
	for i := 16; i < len(raw); i += 7 {
		raw[i] ^= 0x55
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	contents, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("corrupt snapshot must not error (cold boot, not failed boot): %v", err)
	}
	if contents.Skipped == 0 {
		t.Fatal("corruption went uncounted")
	}
	s2 := newTestServer(t, Options{})
	restored, _ := s2.RestoreCache(contents.Cache)
	if restored != 0 {
		// Unlikely but possible if some entry survived the stride; the
		// invariant that matters is Skipped > 0 and no failure.
		t.Logf("%d entries survived corruption", restored)
	}
	s2.col.Add(obs.MetricServiceSnapshotSkippedTotal, int64(contents.Skipped))
	if counterVal(s2, obs.MetricServiceSnapshotSkippedTotal) == 0 {
		t.Fatal("snapshot_entries_skipped counter is zero after corrupt restore")
	}
	rr := doJSON(t, s2, "POST", "/v1/rank", req)
	if rr.Code != 200 {
		t.Fatalf("cold-booted server status %d: %s", rr.Code, rr.Body.String())
	}
}

// TestRestoreCacheRejectsHostileEntries pins schema validation on the
// restore path: forged keys and empty responses are skipped and counted.
func TestRestoreCacheRejectsHostileEntries(t *testing.T) {
	s := newTestServer(t, Options{})
	longKey := string(make([]byte, MaxSnapshotKeyLen+1))
	restored, skipped := s.RestoreCache([]CachedResponse{
		{Key: "", Resp: &RankResponse{Kernel: "fft"}},
		{Key: "k", Resp: nil},
		{Key: longKey, Resp: &RankResponse{Kernel: "fft"}},
		{Key: "k2", Resp: &RankResponse{}}, // no kernel: schema-invalid
		{Key: "ok", Resp: &RankResponse{Kernel: "fft", Arch: "k80", Scale: 1}},
	})
	if restored != 1 || skipped != 4 {
		t.Fatalf("restored %d skipped %d, want 1 and 4", restored, skipped)
	}
	if counterVal(s, obs.MetricServiceSnapshotSkippedTotal) != 4 {
		t.Fatal("skip counter mismatch")
	}
}

// TestSnapshotterWritesAndStops covers the periodic writer end to end: it
// writes on the timer and on Trigger, and Stop leaves no goroutine behind.
func TestSnapshotterWritesAndStops(t *testing.T) {
	before := runtime.NumGoroutine()
	s, _, _ := warmServer(t, Options{})
	path := filepath.Join(t.TempDir(), "periodic.snap")

	sn := s.StartSnapshotter(path, 5*time.Millisecond, t.Logf)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sn.Stop()
	sn.Stop() // idempotent

	// Trigger-only snapshotter (no timer).
	path2 := filepath.Join(t.TempDir(), "triggered.snap")
	sn2 := s.StartSnapshotter(path2, 0, nil)
	sn2.Trigger()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("triggered snapshot never appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sn2.Stop()

	if counterVal(s, obs.MetricServiceSnapshotWritesTotal) < 2 {
		t.Fatal("snapshot write counter did not advance")
	}
	s.Close()
	waitGoroutines(t, before)
}

// TestReadyz pins readiness semantics: 503 (with Retry-After) until
// MarkReady, 200 with the warm arch list after; /healthz reports alive
// throughout.
func TestReadyz(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "GET", "/readyz", nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-ready /readyz status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("pre-ready /readyz missing Retry-After")
	}
	if rr := doJSON(t, s, "GET", "/healthz", nil); rr.Code != 200 {
		t.Fatalf("/healthz %d during warmup, want 200 (liveness is not readiness)", rr.Code)
	}

	s.MarkReady()
	rr = doJSON(t, s, "GET", "/readyz", nil)
	if rr.Code != 200 {
		t.Fatalf("post-ready /readyz status %d, want 200", rr.Code)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || len(ready.Archs) != 1 || ready.Archs[0] != "k80" {
		t.Fatalf("ready body %+v", ready)
	}
}
