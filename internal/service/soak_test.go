package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpuhms/internal/advisor"
	"gpuhms/internal/faults"
	"gpuhms/internal/obs"
	"gpuhms/internal/snapshot"
)

// soakDuration returns the hammer phase length: 1.2s by default, overridden
// by HMS_SOAK_MS for the full harness (scripts/soak.sh).
func soakDuration() time.Duration {
	if ms, err := strconv.Atoi(os.Getenv("HMS_SOAK_MS")); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return 1200 * time.Millisecond
}

// TestSoakChaos is the chaos soak harness (docs/ROBUSTNESS.md): it hammers a
// live server over real HTTP with mixed strategies, budgets, and client
// cancels while snapshot writes fail, tear, and stall under seeded fault
// injection and the snapshot is save/restore-cycled concurrently. It then
// asserts the robustness invariants: zero 500s (429/503/504 are documented
// flow control), a byte-identical ranking across a snapshot restore into a
// fresh server, and zero leaked goroutines.
//
// The fault seed is taken from HMS_FAULT_SEED when set; a failure always
// logs the seed, so any run can be replayed exactly.
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	baseGoroutines := runtime.NumGoroutine()

	seed, fromEnv := faults.EnvSeed(time.Now().UnixNano())
	t.Logf("soak: fault seed %d (replay with %s=%d)", seed, faults.EnvSeedVar, seed)
	if fromEnv {
		t.Logf("soak: seed pinned from %s", faults.EnvSeedVar)
	}
	pts := faults.NewPoints(seed).
		Set(snapshot.PointWrite, faults.PointOptions{FailProb: 0.2, TornProb: 0.2, DelayProb: 0.3, MaxDelay: 2 * time.Millisecond}).
		Set(snapshot.PointSync, faults.PointOptions{FailProb: 0.1, DelayProb: 0.2, MaxDelay: time.Millisecond}).
		Set(snapshot.PointRename, faults.PointOptions{FailProb: 0.1})

	s := newTestServer(t, Options{Workers: 2, QueueCap: 4, CacheCap: 64, SnapshotFaults: pts})
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	defer client.CloseIdleConnections()

	// The reference ranking: cached now, compared byte-for-byte after the
	// soak against a server restored from the survivor snapshot.
	refReq := `{"kernel":"fft","top_k":4}`
	refBody, status := soakPost(t, client, ts.URL+"/v1/rank", refReq, 0)
	if status != 200 {
		t.Fatalf("reference ranking status %d: %s", status, refBody)
	}

	stop := make(chan struct{})
	time.AfterFunc(soakDuration(), func() { close(stop) })

	var (
		wg         sync.WaitGroup
		got500     atomic.Int64
		first500   atomic.Value // string
		statuses   sync.Map     // status code -> *atomic.Int64
		cycleSaves atomic.Int64
	)
	count := func(code int) {
		v, _ := statuses.LoadOrStore(code, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}

	// Client hammer: mixed kernels, strategies, budgets, malformed bodies,
	// and mid-request cancels.
	kernels := []string{"fft", "fft", "fft", "nosuchkernel"}
	strategies := []string{"", "exhaustive", "greedy", "beam-2", "warp9"}
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var body, path string
				switch rng.Intn(10) {
				case 0:
					path, body = "/v1/predict", fmt.Sprintf(`{"kernel":%q,"target":"a:gm"}`, kernels[rng.Intn(len(kernels))])
				case 1:
					path, body = "/v1/rank", `{"kernel":`
				default:
					path = "/v1/rank"
					body = fmt.Sprintf(`{"kernel":%q,"top_k":%d,"strategy":%q,"timeout_ms":%d}`,
						kernels[rng.Intn(len(kernels))], 1+rng.Intn(6),
						strategies[rng.Intn(len(strategies))], []int{0, 1, 5, 50}[rng.Intn(4)])
				}
				cancelIn := time.Duration(0)
				if rng.Intn(4) == 0 {
					cancelIn = time.Duration(1+rng.Intn(5)) * time.Millisecond
				}
				resp, status := soakPost(t, client, ts.URL+path, body, cancelIn)
				if status == 0 {
					continue // client-side cancel before any response
				}
				count(status)
				if status >= 500 && status != 503 && status != 504 {
					got500.Add(1)
					first500.CompareAndSwap(nil, fmt.Sprintf("POST %s %s -> %d: %s", path, body, status, resp))
				}
			}
		}(c)
	}
	// Metrics/health poller: read endpoints must stay clean under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range []string{"/metrics", "/healthz", "/readyz", "/v1/kernels"} {
				if _, status := soakPost(t, client, ts.URL+p, "", 0); status >= 500 {
					got500.Add(1)
					first500.CompareAndSwap(nil, fmt.Sprintf("GET %s -> %d", p, status))
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Snapshot cycler: save under injected faults, read whatever survived,
	// and restore it onto the live server — all while traffic flows.
	snapDir := t.TempDir()
	cyclePath := filepath.Join(snapDir, "cycle.snap")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.SaveSnapshot(cyclePath); err == nil {
				cycleSaves.Add(1)
			}
			contents, err := ReadSnapshotFile(cyclePath)
			if err != nil {
				// Header-level damage would mean WriteAtomic let a torn file
				// replace a good one: the core crash-safety invariant.
				got500.Add(1)
				first500.CompareAndSwap(nil, fmt.Sprintf("snapshot cycle read: %v", err))
				return
			}
			s.RestoreCache(contents.Cache)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	var mix []string
	statuses.Range(func(k, v any) bool {
		mix = append(mix, fmt.Sprintf("%d:%d", k, v.(*atomic.Int64).Load()))
		return true
	})
	t.Logf("soak: status mix %v, %d fault injections, %d snapshot saves survived",
		mix, pts.Injected.Load(), cycleSaves.Load())
	if n := got500.Load(); n != 0 {
		t.Fatalf("soak: %d server faults (seed %d): first: %v", n, seed, first500.Load())
	}
	if n := counterVal(s, obs.MetricServiceErrorsTotal); n != 0 {
		t.Fatalf("soak: service_errors_total = %d, want 0 (seed %d)", n, seed)
	}

	// Survivor snapshot, written without faults: restoring it into a fresh
	// server must reproduce the reference ranking byte for byte.
	finalPath := filepath.Join(snapDir, "final.snap")
	if err := snapshotWithoutFaults(s, finalPath); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	contents, err := ReadSnapshotFile(finalPath)
	if err != nil {
		t.Fatalf("final snapshot read: %v", err)
	}
	adv2, err := advisor.NewFromSaved(testAdvisor(t).Cfg, bytes.NewReader(contents.Models["k80"]))
	if err != nil {
		t.Fatalf("restoring model from survivor snapshot: %v", err)
	}
	s2, err := New(map[string]*advisor.Advisor{"k80": adv2}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2.RestoreCache(contents.Cache)
	rr := doJSON(t, s2, "POST", "/v1/rank", json.RawMessage(refReq))
	if rr.Code != 200 || rr.Header().Get("X-HMS-Cache") != cacheHit {
		t.Fatalf("post-restore reference ranking: status %d cache %q (seed %d)", rr.Code, rr.Header().Get("X-HMS-Cache"), seed)
	}
	if !bytes.Equal(rr.Body.Bytes(), refBody) {
		t.Fatalf("ranking changed across snapshot restore (seed %d):\npre:  %s\npost: %s", seed, refBody, rr.Body.Bytes())
	}
	s2.Close()

	ts.Close()
	client.CloseIdleConnections()
	s.Close()
	waitGoroutines(t, baseGoroutines)

	// The runtime_goroutines gauge is sampled at scrape time, so a scrape
	// after the drain must see the same no-leak state waitGoroutines just
	// proved: the gauge returns to (near) the pre-soak baseline.
	if g := gaugeVal(t, s.Collector(), obs.MetricRuntimeGoroutines); int(g) > baseGoroutines+2 {
		t.Fatalf("runtime_goroutines gauge %v after drain, baseline %d", g, baseGoroutines)
	}
}

// gaugeVal scrapes one gauge from the collector.
func gaugeVal(t testing.TB, col *obs.Collector, name string) float64 {
	t.Helper()
	for _, g := range col.Snapshot().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %s not in snapshot", name)
	return 0
}

// soakPost issues one request (POST when body is non-empty, GET otherwise),
// optionally canceling it after cancelIn. Status 0 means the client gave up
// before a status arrived.
func soakPost(t *testing.T, client *http.Client, url, body string, cancelIn time.Duration) ([]byte, int) {
	t.Helper()
	ctx := context.Background()
	if cancelIn > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cancelIn)
		defer cancel()
	}
	method, rd := http.MethodGet, io.Reader(nil)
	if body != "" {
		method, rd = http.MethodPost, bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return b, resp.StatusCode
}

// snapshotWithoutFaults saves s's warm state bypassing the server's
// configured fault hooks (for the survivor snapshot the assertions read).
func snapshotWithoutFaults(s *Server, path string) error {
	_, err := snapshot.WriteAtomic(path, nil, s.appendSnapshotEntries)
	return err
}
