package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"sync"
	"testing"

	"gpuhms/internal/hmserr"
	"gpuhms/internal/snapshot"
)

func decodeFleet(t testing.TB, body []byte) *FleetRankResponse {
	t.Helper()
	var resp FleetRankResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding fleet response %q: %v", body, err)
	}
	return &resp
}

// cheapFleetBody is a contended fleet request over small placement spaces
// (no spmv) so tests stay fast.
const cheapFleetBody = `{"tenants":[{"kernel":"sort"},{"kernel":"fft"},{"kernel":"vecadd"},{"kernel":"reduction"}],"budgets":{"shared":2048}}`

// TestFleetEndpoint: POST /v1/fleet/rank on the bundled contended mix
// returns a feasible assignment whose objective beats the naive baseline,
// and repeats hit the fleet cache byte-identically.
func TestFleetEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/fleet/rank", `{"mix":"shared-squeeze"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get(HeaderCache); got != cacheMiss {
		t.Errorf("first request cache header %q, want %q", got, cacheMiss)
	}
	resp := decodeFleet(t, rr.Body.Bytes())
	if resp.Solver == "" || resp.Objective != "minmax" {
		t.Errorf("solver %q objective %q", resp.Solver, resp.Objective)
	}
	if len(resp.Tenants) != 4 {
		t.Fatalf("%d tenants, want 4", len(resp.Tenants))
	}
	if resp.ObjectiveValue <= 0 {
		t.Errorf("objective_value %v", resp.ObjectiveValue)
	}
	if resp.Independent == nil || resp.Independent.UnconstrainedFits {
		t.Errorf("independent baseline %+v, want contended", resp.Independent)
	}
	if resp.Independent != nil && resp.ObjectiveValue >= resp.Independent.ObjectiveValue {
		t.Errorf("fleet objective %.4f does not beat baseline %.4f",
			resp.ObjectiveValue, resp.Independent.ObjectiveValue)
	}
	for _, u := range resp.Usage {
		if u.Used > u.Limit {
			t.Errorf("usage %s: %d > limit %d", u.Space, u.Used, u.Limit)
		}
	}

	rr2 := doJSON(t, s, "POST", "/v1/fleet/rank", `{"mix":"shared-squeeze"}`)
	if rr2.Code != http.StatusOK {
		t.Fatalf("repeat status %d", rr2.Code)
	}
	if got := rr2.Header().Get(HeaderCache); got != cacheHit {
		t.Errorf("repeat cache header %q, want %q", got, cacheHit)
	}
	if !bytes.Equal(rr.Body.Bytes(), rr2.Body.Bytes()) {
		t.Error("cached fleet response differs from the original")
	}
}

// TestFleetEndpointSolverAndWeights: explicit solver/objective fields are
// honored and echoed canonically.
func TestFleetEndpointSolverAndWeights(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/fleet/rank",
		`{"tenants":[{"kernel":"fft","weight":3},{"kernel":"sort"}],"budgets":{"shared":2048},"solver":"beam","objective":"weighted-sum"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeFleet(t, rr.Body.Bytes())
	if resp.Solver != "beam-4" {
		t.Errorf("solver %q, want beam-4 (canonical)", resp.Solver)
	}
	if resp.Objective != "weighted" {
		t.Errorf("objective %q, want weighted (canonical)", resp.Objective)
	}
	if resp.Tenants[0].Weight != 3 {
		t.Errorf("tenant weight %v not echoed", resp.Tenants[0].Weight)
	}
}

// TestFleetEndpointErrors pins the fleet error taxonomy end to end.
func TestFleetEndpointErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"unknown mix", `{"mix":"nope"}`, http.StatusNotFound, "unknown_mix"},
		{"unknown kernel", `{"tenants":[{"kernel":"nope"}]}`, http.StatusNotFound, "unknown_kernel"},
		{"unknown solver", `{"mix":"balanced","solver":"annealing"}`, http.StatusBadRequest, "unknown_strategy"},
		{"unknown arch", `{"mix":"balanced","arch":"h100"}`, http.StatusNotFound, "unknown_arch"},
		{"mix and tenants", `{"mix":"balanced","tenants":[{"kernel":"fft"}]}`, http.StatusBadRequest, "bad_request"},
		{"infeasible budgets", `{"tenants":[{"kernel":"vecadd"}],"budgets":{"shared":4,"global":4,"constant":4,"texture1D":4,"texture2D":4}}`,
			http.StatusUnprocessableEntity, "capacity_exceeded"},
		{"menu budget", `{"mix":"balanced","max_candidates":2}`, http.StatusBadRequest, "budget_exceeded"},
	}
	for _, tc := range cases {
		rr := doJSON(t, s, "POST", "/v1/fleet/rank", tc.body)
		if rr.Code != tc.status {
			t.Errorf("%s: status %d, want %d: %.200s", tc.name, rr.Code, tc.status, rr.Body.String())
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: bad error body: %v", tc.name, err)
			continue
		}
		if er.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, er.Code, tc.code)
		}
	}
}

// TestCapacityStatusMapping pins the 422 unit mapping: the capacity sentinel
// chains onto ErrIllegalPlacement, so order in statusOf matters.
func TestCapacityStatusMapping(t *testing.T) {
	err := hmserr.Wrap(hmserr.ErrCapacityExceeded, "no fit")
	if got := statusOf(err); got != http.StatusUnprocessableEntity {
		t.Errorf("statusOf(capacity) = %d, want 422", got)
	}
	if got := codeOf(err); got != "capacity_exceeded" {
		t.Errorf("codeOf(capacity) = %q", got)
	}
	// Plain illegal placements still map to 400.
	if got := statusOf(hmserr.Wrap(hmserr.ErrIllegalPlacement, "bad")); got != http.StatusBadRequest {
		t.Errorf("statusOf(illegal) = %d, want 400", got)
	}
	// Fleet menu-budget exhaustion maps to 400, never 5xx.
	if got := statusOf(&hmserr.BudgetError{Evaluated: 3, What: "fleet menu evaluations"}); got != http.StatusBadRequest {
		t.Errorf("statusOf(budget) = %d, want 400", got)
	}
}

// TestFleetDeterministicAcrossServerParallelism: byte-identical fleet
// responses whatever the server's configured ranking parallelism.
func TestFleetDeterministicAcrossServerParallelism(t *testing.T) {
	var first []byte
	for _, par := range []int{1, 2, 8} {
		s := newTestServer(t, Options{Parallelism: par})
		rr := doJSON(t, s, "POST", "/v1/fleet/rank", cheapFleetBody)
		if rr.Code != http.StatusOK {
			t.Fatalf("parallelism %d: status %d: %s", par, rr.Code, rr.Body.String())
		}
		if first == nil {
			first = append([]byte(nil), rr.Body.Bytes()...)
		} else if !bytes.Equal(first, rr.Body.Bytes()) {
			t.Errorf("parallelism %d: response differs from parallelism 1:\n%s\nvs\n%s",
				par, rr.Body.Bytes(), first)
		}
	}
}

// TestFleetAndRankConcurrently is the -race hammer: fleet and single-kernel
// requests against one shared server, hitting both caches, the singleflight,
// and the pool at once.
func TestFleetAndRankConcurrently(t *testing.T) {
	s := newTestServer(t, Options{})
	bodies := []struct{ path, body string }{
		{"/v1/fleet/rank", cheapFleetBody},
		{"/v1/fleet/rank", `{"tenants":[{"kernel":"vecadd"},{"kernel":"reduction"}],"budgets":{"shared":1024}}`},
		{"/v1/rank", `{"kernel":"fft","top_k":3}`},
		{"/v1/rank", `{"kernel":"sort","top_k":3}`},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for round := 0; round < 4; round++ {
		for _, b := range bodies {
			wg.Add(1)
			go func(path, body string) {
				defer wg.Done()
				rr := doJSON(t, s, "POST", path, body)
				if rr.Code != http.StatusOK {
					errs <- rr.Body.String()
				}
			}(b.path, b.body)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("concurrent request failed: %.200s", e)
	}
}

// TestSnapshotRoundtripFleet: fleet cache entries survive the snapshot
// save/restore cycle and serve warm hits; corrupt fleet entries are skipped
// and counted, never fatal.
func TestSnapshotRoundtripFleet(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := doJSON(t, s, "POST", "/v1/fleet/rank", cheapFleetBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	rrRank := doJSON(t, s, "POST", "/v1/rank", `{"kernel":"vecadd","top_k":2}`)
	if rrRank.Code != http.StatusOK {
		t.Fatalf("rank status %d", rrRank.Code)
	}

	path := t.TempDir() + "/snap.hms"
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	contents, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(contents.Fleet) != 1 {
		t.Fatalf("%d fleet entries in snapshot, want 1", len(contents.Fleet))
	}
	if len(contents.Cache) != 1 {
		t.Fatalf("%d rank entries in snapshot, want 1", len(contents.Cache))
	}

	s2 := newTestServer(t, Options{})
	restored, skipped := s2.RestoreFleetCache(contents.Fleet)
	if restored != 1 || skipped != 0 {
		t.Fatalf("restored %d skipped %d, want 1/0", restored, skipped)
	}
	rr2 := doJSON(t, s2, "POST", "/v1/fleet/rank", cheapFleetBody)
	if rr2.Code != http.StatusOK {
		t.Fatalf("warm status %d", rr2.Code)
	}
	if got := rr2.Header().Get(HeaderCache); got != cacheHit {
		t.Errorf("warm-boot fleet request cache header %q, want %q", got, cacheHit)
	}
	if !bytes.Equal(rr.Body.Bytes(), rr2.Body.Bytes()) {
		t.Error("restored fleet response differs from the original")
	}

	// Damaged fleet entries are skipped at both validation layers.
	bad := []FleetCachedResponse{
		{Key: "", Resp: decodeFleet(t, rr.Body.Bytes())},
		{Key: "k", Resp: nil},
		{Key: "k2", Resp: &FleetRankResponse{}}, // no tenants, no solver
	}
	restored, skipped = s2.RestoreFleetCache(bad)
	if restored != 0 || skipped != 3 {
		t.Errorf("bad entries: restored %d skipped %d, want 0/3", restored, skipped)
	}
}

// TestSnapshotCorruptFleetEntrySkipped: a torn fleet entry inside the file
// drops only that entry.
func TestSnapshotCorruptFleetEntrySkipped(t *testing.T) {
	var buf bytes.Buffer
	sw, err := snapshot.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := json.Marshal(snapFleetPayload{Key: "k", Response: json.RawMessage(
		`{"arch":"k80","solver":"greedy","objective":"minmax","objective_value":1,"tenants":[{"tenant":"t0","kernel":"fft","scale":1,"placement":"x:G","predicted_ns":1,"best_ns":1,"slowdown":1}]}`)})
	if err := sw.Append(SnapKindFleet, good); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(SnapKindFleet, []byte(`{"key":"k2","response":{"tenants":[]}}`)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(SnapKindFleet, []byte(`not json`)); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/snap.hms"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	contents, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(contents.Fleet) != 1 || contents.Fleet[0].Key != "k" {
		t.Fatalf("fleet entries %+v, want only key k", contents.Fleet)
	}
	if contents.Skipped != 2 {
		t.Errorf("skipped %d, want 2", contents.Skipped)
	}
}

// TestFleetKeyDistinguishes pins that every result-changing field lands in
// the cache key and the excluded ones stay out.
func TestFleetKeyDistinguishes(t *testing.T) {
	base := func() *FleetRankRequest {
		req, err := DecodeFleetRequest([]byte(cheapFleetBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Arch = "k80"
		req.Solver = "greedy"
		return req
	}
	k0 := FleetKey(base())
	mutations := map[string]func(*FleetRankRequest){
		"solver":    func(r *FleetRankRequest) { r.Solver = "beam-4" },
		"objective": func(r *FleetRankRequest) { r.Objective = "weighted" },
		"budget":    func(r *FleetRankRequest) { r.Budgets["shared"] = 4096 },
		"weight":    func(r *FleetRankRequest) { r.Tenants[0].Weight = 2 },
		"scale":     func(r *FleetRankRequest) { r.Tenants[0].Scale = 2 },
		"menu":      func(r *FleetRankRequest) { r.MenuSize = 8 },
		"tenant":    func(r *FleetRankRequest) { r.Tenants = r.Tenants[:3] },
	}
	for name, mutate := range mutations {
		req := base()
		mutate(req)
		if FleetKey(req) == k0 {
			t.Errorf("mutation %q does not change the fleet key", name)
		}
	}
	same := base()
	same.TimeoutMS = 5000 // excluded: bounds, not defines, the result
	if FleetKey(same) != k0 {
		t.Error("timeout_ms leaked into the fleet key")
	}
	par := base()
	par.Parallelism = 8 // excluded while max_candidates == 0
	if FleetKey(par) != k0 {
		t.Error("parallelism leaked into an unbudgeted fleet key")
	}
}

// TestFleetDefaultSolverOption: the server default solver applies when the
// request has none, and is normalized at New.
func TestFleetDefaultSolverOption(t *testing.T) {
	s := newTestServer(t, Options{DefaultFleetSolver: "beam"})
	rr := doJSON(t, s, "POST", "/v1/fleet/rank", cheapFleetBody)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if resp := decodeFleet(t, rr.Body.Bytes()); resp.Solver != "beam-4" {
		t.Errorf("solver %q, want beam-4 from server default", resp.Solver)
	}
}
