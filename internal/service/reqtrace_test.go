package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gpuhms/internal/obs"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in     string
		wantID string
	}{
		{valid, "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"", ""},
		{"not-a-traceparent", ""},
		{strings.ToUpper(valid), ""}, // uppercase hex is invalid per spec
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", ""}, // forbidden version
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", ""}, // zero trace-id
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", ""}, // zero parent-id
		{valid + "0", ""},      // wrong length
		{valid[:54] + "g", ""}, // non-hex flag
	}
	for _, tc := range cases {
		id, ok := parseTraceparent(tc.in)
		if ok != (tc.wantID != "") || id != tc.wantID {
			t.Errorf("parseTraceparent(%q) = %q, %v; want %q", tc.in, id, ok, tc.wantID)
		}
	}
}

func TestSanitizeRequestID(t *testing.T) {
	if got := sanitizeRequestID("abc-123.DEF_x"); got != "abc-123.DEF_x" {
		t.Errorf("clean id rejected: %q", got)
	}
	for _, bad := range []string{"", "has space", "newline\n", "semi;colon", strings.Repeat("a", 65)} {
		if got := sanitizeRequestID(bad); got != "" {
			t.Errorf("sanitizeRequestID(%q) = %q, want rejection", bad, got)
		}
	}
}

// TestRequestIDOnEveryResponse asserts the traceability invariant: success,
// client errors, unknown routes, and error bodies all carry the request ID.
func TestRequestIDOnEveryResponse(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()

	do := func(method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// Success carries a generated 32-hex ID.
	rr := do("POST", "/v1/rank", `{"kernel":"fft","top_k":1}`, nil)
	if rr.Code != 200 {
		t.Fatalf("rank status %d: %s", rr.Code, rr.Body.String())
	}
	id := rr.Header().Get(HeaderRequestID)
	if len(id) != 32 {
		t.Fatalf("generated request id %q, want 32 hex chars", id)
	}

	// A valid traceparent's trace-id becomes the request ID.
	rr = do("POST", "/v1/rank", `{"kernel":"fft","top_k":1}`, map[string]string{
		HeaderTraceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	})
	if got := rr.Header().Get(HeaderRequestID); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("traceparent trace-id not propagated: got %q", got)
	}

	// A client-chosen X-Request-ID is echoed.
	rr = do("POST", "/v1/rank", `{"kernel":"fft","top_k":1}`, map[string]string{HeaderRequestID: "client-abc"})
	if got := rr.Header().Get(HeaderRequestID); got != "client-abc" {
		t.Fatalf("client request id not echoed: got %q", got)
	}

	// Error responses carry the header AND the id inside the body.
	rr = do("POST", "/v1/rank", `{"kernel":"nosuchkernel"}`, nil)
	if rr.Code != 400 && rr.Code != 404 {
		t.Fatalf("unknown kernel status %d", rr.Code)
	}
	id = rr.Header().Get(HeaderRequestID)
	if id == "" {
		t.Fatal("error response missing X-Request-ID header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != id {
		t.Fatalf("error body request_id %q != header %q", er.RequestID, id)
	}

	// Mux-level 404s (no handler at all) still carry the header.
	rr = do("GET", "/no/such/route", "", nil)
	if rr.Code != 404 {
		t.Fatalf("unknown route status %d", rr.Code)
	}
	if rr.Header().Get(HeaderRequestID) == "" {
		t.Fatal("mux 404 missing X-Request-ID header")
	}
}

// TestCacheHeaderOnError asserts the cache verdict also rides on errors once
// a cache decision was made (a canceled waiter still reports hit/miss/shared).
func TestCacheHeaderOnError(t *testing.T) {
	s, m := blockingServer(t, Options{Workers: 1, QueueCap: 4})
	defer m.releaseAll()
	req := httptest.NewRequest("POST", "/v1/rank", strings.NewReader(`{"kernel":"fft","top_k":1,"timeout_ms":1}`))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code == 200 {
		t.Fatalf("expected a deadline error, got 200")
	}
	if got := rr.Header().Get(HeaderCache); got != cacheMiss {
		t.Fatalf("X-HMS-Cache on error = %q, want %q", got, cacheMiss)
	}
}

// TestAccessLogSchema pins the access-log line's field set and JSON types:
// the schema is parsed by log consumers, so adding, renaming, or retyping a
// field is a breaking change this test makes explicit.
func TestAccessLogSchema(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Options{AccessLog: NewAccessLogger(&buf)})
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TopK: 1})
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	line := buf.Bytes()
	var rec map[string]any
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, line)
	}
	// Field -> JSON type. encoding/json decodes every number as float64.
	want := map[string]string{
		"time":      "string",
		"level":     "string",
		"msg":       "string",
		"id":        "string",
		"route":     "string",
		"status":    "float64",
		"cache":     "string",
		"strategy":  "string",
		"shed":      "string",
		"dur_ns":    "float64",
		"decode_ns": "float64",
		"cache_ns":  "float64",
		"queue_ns":  "float64",
		"search_ns": "float64",
		"wait_ns":   "float64",
		"encode_ns": "float64",
	}
	for field, typ := range want {
		v, ok := rec[field]
		if !ok {
			t.Errorf("access log missing field %q\n%s", field, line)
			continue
		}
		if got := fmt.Sprintf("%T", v); got != typ {
			t.Errorf("access log field %q is %s, want %s", field, got, typ)
		}
	}
	for field := range rec {
		if _, ok := want[field]; !ok {
			t.Errorf("access log has unpinned field %q — update the schema test and docs/OBSERVABILITY.md", field)
		}
	}
	// Spot-check values.
	if rec["route"] != "rank" || rec["status"] != float64(200) || rec["cache"] != cacheMiss {
		t.Fatalf("unexpected values in %s", line)
	}
	if rec["dur_ns"].(float64) <= 0 || rec["search_ns"].(float64) <= 0 {
		t.Fatalf("stage timings not recorded: %s", line)
	}
}

// TestSampledRequestSpans asserts a sampled request leaves a complete
// timeline: its own track with stage spans, the pool-side search span, and
// the flow arrow linking the two.
func TestSampledRequestSpans(t *testing.T) {
	s := newTestServer(t, Options{TraceSampleEvery: 1})
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", TopK: 1})
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	id := rr.Header().Get(HeaderRequestID)
	var trace bytes.Buffer
	if err := s.Collector().WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var wrapper struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &wrapper); err != nil {
		t.Fatal(err)
	}
	var haveReqSpan, havePoolSearch, haveFlowStart, haveFlowEnd bool
	for _, ev := range wrapper.TraceEvents {
		name, _ := ev["name"].(string)
		switch ev["ph"] {
		case "X":
			if strings.HasPrefix(name, "rank ") && strings.Contains(name, id) {
				haveReqSpan = true
			}
			if strings.HasPrefix(name, "search ") {
				havePoolSearch = true
			}
		case "s":
			haveFlowStart = name == "handoff"
		case "f":
			haveFlowEnd = name == "handoff"
		}
	}
	if !haveReqSpan || !havePoolSearch || !haveFlowStart || !haveFlowEnd {
		t.Fatalf("incomplete sampled timeline: req=%v search=%v flowStart=%v flowEnd=%v",
			haveReqSpan, havePoolSearch, haveFlowStart, haveFlowEnd)
	}
	if n := counterVal(s, obs.MetricServiceTraceSampledTotal); n < 1 {
		t.Fatalf("service_trace_sampled_total = %d, want >= 1", n)
	}
}

// TestReqTraceNilSafety: every ReqTrace method must be a no-op on nil — the
// degraded path for handlers invoked without the middleware.
func TestReqTraceNilSafety(t *testing.T) {
	var rt *ReqTrace
	rt.BeginStage(StageDecode)()
	rt.MarkSubmit()
	rt.MarkPickup(nil)
	rt.SetCache("hit")
	rt.SetStrategy("greedy")
	rt.SetShed("queue_full")
	rt.setStatus(200)
	rt.SearchSpan(nil, 0, 1)
	rt.emitSpans(nil, 0)
	if rt.Sampled() {
		t.Fatal("nil trace reports sampled")
	}
	if rt.CacheState() != "" {
		t.Fatal("nil trace reports cache state")
	}
}

// TestReqTraceRaceHammer hammers one shared ReqTrace and one shared
// Collector from many goroutines — the detached-search scenario where pool
// workers record stages and spans after the middleware already rendered the
// request. Run under -race (scripts/verify.sh does), this is the data-race
// regression net for the whole recording path.
func TestReqTraceRaceHammer(t *testing.T) {
	col := obs.NewCollector()
	req := httptest.NewRequest("POST", "/v1/rank", nil)
	rt := newReqTrace("rank", req, col.Now, true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				end := rt.BeginStage(Stage(i % int(numStages)))
				rt.MarkSubmit()
				rt.MarkPickup(col)
				rt.SetCache(cacheHit)
				rt.SetStrategy("greedy")
				rt.SetShed("queue_full")
				rt.setStatus(200)
				rt.SearchSpan(col, float64(i), 1)
				end()
				rt.emitSpans(col, col.Now())
				if i%16 == 0 {
					_ = rt.CacheState()
					_ = col.Snapshot() // scrape hooks race against recording
				}
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
