package service

import (
	"errors"
	"strings"
	"testing"

	"gpuhms/internal/advisor"
	"gpuhms/internal/fleet"
	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
)

// hostileRankBodies are the adversarial seeds: oversized scales, unknown
// kernels, malformed placement specs, negative budgets, wrong JSON types,
// and syntactic garbage. Shared by the fuzzer and the end-to-end 4xx test.
var hostileRankBodies = []string{
	``,
	`{`,
	`null`,
	`[]`,
	`"rank"`,
	`{}`,
	`{"kernel":""}`,
	`{"kernel":"fft","scale":2147483647}`,
	`{"kernel":"fft","scale":-1}`,
	`{"kernel":"no-such-kernel"}`,
	`{"kernel":"fft","sample":"smem:Q"}`,
	`{"kernel":"fft","sample":"not-a-spec"}`,
	`{"kernel":"fft","sample":":::"}`,
	`{"kernel":"fft","max_candidates":-7}`,
	`{"kernel":"fft","top_k":-1}`,
	`{"kernel":"fft","top_k":99999999}`,
	`{"kernel":"fft","timeout_ms":-50}`,
	`{"kernel":"fft","timeout_ms":99999999}`,
	`{"kernel":"fft","scale":"big"}`,
	`{"kernel":42}`,
	`{"kernel":"` + strings.Repeat("K", 10000) + `"}`,
	`{"kernel":"fft","sample":"` + strings.Repeat("a:G,", 5000) + `"}`,
	`{"kernel":"fft","arch":"` + strings.Repeat("x", 1000) + `"}`,
	`{"kernel":"fft","strategy":"annealing"}`,
	`{"kernel":"fft","strategy":"beam-"}`,
	`{"kernel":"fft","strategy":"beam-0"}`,
	`{"kernel":"fft","strategy":"beam-99999999"}`,
	`{"kernel":"fft","strategy":42}`,
	`{"kernel":"fft","strategy":"` + strings.Repeat("beam-", 2000) + `"}`,
}

// FuzzDecodeRankRequest asserts the decode surface never panics and that
// any accepted request is within the hardening limits — hostile bodies
// become ErrBadRequest (a 400), never a 5xx or a crash.
func FuzzDecodeRankRequest(f *testing.F) {
	for _, seed := range hostileRankBodies {
		f.Add([]byte(seed))
	}
	f.Add([]byte(`{"kernel":"fft","scale":2,"top_k":3,"max_candidates":10,"timeout_ms":1000}`))
	f.Add([]byte(`{"kernel":"fft","unknown_field":true}`))
	f.Add([]byte(`{"kernel":"fft","strategy":"beam-4"}`))
	f.Add([]byte(`{"kernel":"fft","strategy":"greedy","parallelism":8}`))
	f.Add([]byte(`{"kernel":"fft","strategy":"EXHAUSTIVE"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRankRequest(data)
		if err != nil {
			// Both classes map to 400: generic validation failures and
			// unknown search strategies.
			if !errors.Is(err, ErrBadRequest) && !errors.Is(err, hmserr.ErrUnknownStrategy) {
				t.Fatalf("decode error %v wraps neither ErrBadRequest nor ErrUnknownStrategy", err)
			}
			return
		}
		// Accepted requests must be within the hardening limits.
		if req.Kernel == "" || len(req.Kernel) > 256 {
			t.Fatalf("accepted kernel %q", req.Kernel)
		}
		if req.Scale < 1 || req.Scale > MaxScale {
			t.Fatalf("accepted scale %d", req.Scale)
		}
		if len(req.Sample) > MaxSpecLen || len(req.Arch) > 64 {
			t.Fatal("accepted oversized spec")
		}
		if req.TopK < 0 || req.TopK > MaxTopK || req.MaxCandidates < 0 {
			t.Fatalf("accepted options k=%d c=%d", req.TopK, req.MaxCandidates)
		}
		if req.TimeoutMS < 0 || req.TimeoutMS > MaxTimeoutMS {
			t.Fatalf("accepted timeout %d", req.TimeoutMS)
		}
		if req.Strategy != "" {
			// Accepted strategies are already canonical specs.
			strat, serr := advisor.ParseStrategy(req.Strategy)
			if serr != nil || strat.Spec() != req.Strategy {
				t.Fatalf("accepted non-canonical strategy %q (%v)", req.Strategy, serr)
			}
		}
	})
}

func FuzzDecodePredictRequest(f *testing.F) {
	for _, seed := range hostileRankBodies {
		f.Add([]byte(seed))
	}
	f.Add([]byte(`{"kernel":"fft","target":"smem:G"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePredictRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error %v does not wrap ErrBadRequest", err)
			}
			return
		}
		if req.Kernel == "" || req.Target == "" {
			t.Fatal("accepted request without kernel/target")
		}
	})
}

// hostileFleetBodies are the fleet endpoint's adversarial seeds: too many
// tenants, duplicate names, hostile weights and budgets, mix/tenants
// conflicts, unknown solvers and objectives. Shared by FuzzDecodeFleetRequest
// and the end-to-end 4xx sweep.
var hostileFleetBodies = []string{
	``,
	`{`,
	`null`,
	`{}`,
	`{"tenants":[]}`,
	`{"tenants":[{"kernel":""}]}`,
	`{"tenants":[{"kernel":"fft"}],"mix":"shared-squeeze"}`,
	`{"mix":"no-such-mix"}`,
	`{"mix":"` + strings.Repeat("m", 10000) + `"}`,
	`{"tenants":[` + strings.Repeat(`{"kernel":"fft"},`, 16) + `{"kernel":"fft"}]}`,
	`{"tenants":[{"kernel":"fft","name":"a"},{"kernel":"sort","name":"a"}]}`,
	`{"tenants":[{"kernel":"fft","name":"` + strings.Repeat("n", 1000) + `"}]}`,
	`{"tenants":[{"kernel":"fft","scale":-3}]}`,
	`{"tenants":[{"kernel":"fft","scale":2147483647}]}`,
	`{"tenants":[{"kernel":"fft","weight":-1}]}`,
	`{"tenants":[{"kernel":"fft","weight":1e308}]}`,
	`{"tenants":[{"kernel":"fft","sample":"` + strings.Repeat("a:G,", 5000) + `"}]}`,
	`{"tenants":[{"kernel":"fft"}],"budgets":{"warp":1}}`,
	`{"tenants":[{"kernel":"fft"}],"budgets":{"shared":-2}}`,
	`{"tenants":[{"kernel":"fft"}],"budgets":{"shared":1,"S":2}}`,
	`{"tenants":[{"kernel":"fft"}],"budgets":{"` + strings.Repeat("s", 1000) + `":1}}`,
	`{"tenants":[{"kernel":"fft"}],"solver":"annealing"}`,
	`{"tenants":[{"kernel":"fft"}],"solver":"beam-0"}`,
	`{"tenants":[{"kernel":"fft"}],"solver":"beam-99999999"}`,
	`{"tenants":[{"kernel":"fft"}],"objective":"fairness"}`,
	`{"tenants":[{"kernel":"fft"}],"menu_size":-1}`,
	`{"tenants":[{"kernel":"fft"}],"menu_size":99999}`,
	`{"tenants":[{"kernel":"fft"}],"max_candidates":-7}`,
	`{"tenants":[{"kernel":"fft"}],"parallelism":9999}`,
	`{"tenants":[{"kernel":"fft"}],"timeout_ms":-50}`,
	`{"tenants":"fft"}`,
	`{"tenants":[{"kernel":42}]}`,
	`{"budgets":[1,2,3]}`,
}

// FuzzDecodeFleetRequest asserts the fleet decode surface never panics and
// that accepted requests are bounded and canonical — hostile bodies become
// ErrBadRequest, ErrUnknownStrategy, or fleet.ErrUnknownMix (4xx all), never
// a 5xx or a crash.
func FuzzDecodeFleetRequest(f *testing.F) {
	for _, seed := range hostileFleetBodies {
		f.Add([]byte(seed))
	}
	f.Add([]byte(`{"mix":"shared-squeeze"}`))
	f.Add([]byte(`{"mix":"balanced","solver":"beam-8","objective":"weighted"}`))
	f.Add([]byte(`{"tenants":[{"kernel":"fft","weight":2.5},{"kernel":"sort"}],"budgets":{"shared":2048}}`))
	f.Add([]byte(`{"tenants":[{"kernel":"vecadd"}],"menu_size":8,"max_candidates":50,"parallelism":4}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeFleetRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) && !errors.Is(err, hmserr.ErrUnknownStrategy) &&
				!errors.Is(err, fleet.ErrUnknownMix) {
				t.Fatalf("decode error %v wraps none of ErrBadRequest/ErrUnknownStrategy/ErrUnknownMix", err)
			}
			if s := statusOf(err); s < 400 || s >= 500 {
				t.Fatalf("decode error %v maps to status %d (want 4xx)", err, s)
			}
			return
		}
		// Accepted requests are bounded and fully canonical.
		if len(req.Tenants) == 0 || len(req.Tenants) > MaxTenants {
			t.Fatalf("accepted %d tenants", len(req.Tenants))
		}
		if req.Mix != "" {
			t.Fatalf("accepted request still carries mix %q after expansion", req.Mix)
		}
		seen := map[string]bool{}
		for _, tn := range req.Tenants {
			if tn.Kernel == "" || len(tn.Kernel) > 256 || tn.Name == "" || len(tn.Name) > 64 {
				t.Fatalf("accepted tenant %+v", tn)
			}
			if seen[tn.Name] {
				t.Fatalf("accepted duplicate tenant name %q", tn.Name)
			}
			seen[tn.Name] = true
			if tn.Scale < 1 || tn.Scale > MaxScale || len(tn.Sample) > MaxSpecLen {
				t.Fatalf("accepted tenant bounds %+v", tn)
			}
			if !(tn.Weight > 0 && tn.Weight <= 1000) {
				t.Fatalf("accepted weight %v", tn.Weight)
			}
		}
		for name, v := range req.Budgets {
			sp, perr := gpu.ParseSpace(name)
			if perr != nil || sp.LongString() != name || v < -1 {
				t.Fatalf("accepted non-canonical budget %q=%d", name, v)
			}
		}
		if req.MenuSize < 1 || req.MenuSize > fleet.MaxMenuSize {
			t.Fatalf("accepted menu_size %d", req.MenuSize)
		}
		if req.Solver != "" {
			sv, serr := fleet.ParseSolver(req.Solver)
			if serr != nil || sv.Spec() != req.Solver {
				t.Fatalf("accepted non-canonical solver %q", req.Solver)
			}
		}
		if obj, oerr := fleet.ParseObjective(req.Objective); oerr != nil || obj.String() != req.Objective {
			t.Fatalf("accepted non-canonical objective %q", req.Objective)
		}
	})
}

// TestHostileBodiesNever5xx drives every hostile seed through the real
// handler stack: each must map to a 4xx — never a panic, never a 5xx.
func TestHostileBodiesNever5xx(t *testing.T) {
	s := newTestServer(t, Options{})
	for i, body := range hostileRankBodies {
		for _, path := range []string{"/v1/rank", "/v1/predict"} {
			rr := doJSON(t, s, "POST", path, body)
			if rr.Code < 400 || rr.Code >= 500 {
				t.Errorf("seed %d on %s: status %d (want 4xx): %.120s",
					i, path, rr.Code, rr.Body.String())
			}
		}
	}
	for i, body := range hostileFleetBodies {
		rr := doJSON(t, s, "POST", "/v1/fleet/rank", body)
		if rr.Code < 400 || rr.Code >= 500 {
			t.Errorf("fleet seed %d: status %d (want 4xx): %.120s",
				i, rr.Code, rr.Body.String())
		}
	}
}
