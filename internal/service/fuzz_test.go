package service

import (
	"errors"
	"strings"
	"testing"

	"gpuhms/internal/advisor"
	"gpuhms/internal/hmserr"
)

// hostileRankBodies are the adversarial seeds: oversized scales, unknown
// kernels, malformed placement specs, negative budgets, wrong JSON types,
// and syntactic garbage. Shared by the fuzzer and the end-to-end 4xx test.
var hostileRankBodies = []string{
	``,
	`{`,
	`null`,
	`[]`,
	`"rank"`,
	`{}`,
	`{"kernel":""}`,
	`{"kernel":"fft","scale":2147483647}`,
	`{"kernel":"fft","scale":-1}`,
	`{"kernel":"no-such-kernel"}`,
	`{"kernel":"fft","sample":"smem:Q"}`,
	`{"kernel":"fft","sample":"not-a-spec"}`,
	`{"kernel":"fft","sample":":::"}`,
	`{"kernel":"fft","max_candidates":-7}`,
	`{"kernel":"fft","top_k":-1}`,
	`{"kernel":"fft","top_k":99999999}`,
	`{"kernel":"fft","timeout_ms":-50}`,
	`{"kernel":"fft","timeout_ms":99999999}`,
	`{"kernel":"fft","scale":"big"}`,
	`{"kernel":42}`,
	`{"kernel":"` + strings.Repeat("K", 10000) + `"}`,
	`{"kernel":"fft","sample":"` + strings.Repeat("a:G,", 5000) + `"}`,
	`{"kernel":"fft","arch":"` + strings.Repeat("x", 1000) + `"}`,
	`{"kernel":"fft","strategy":"annealing"}`,
	`{"kernel":"fft","strategy":"beam-"}`,
	`{"kernel":"fft","strategy":"beam-0"}`,
	`{"kernel":"fft","strategy":"beam-99999999"}`,
	`{"kernel":"fft","strategy":42}`,
	`{"kernel":"fft","strategy":"` + strings.Repeat("beam-", 2000) + `"}`,
}

// FuzzDecodeRankRequest asserts the decode surface never panics and that
// any accepted request is within the hardening limits — hostile bodies
// become ErrBadRequest (a 400), never a 5xx or a crash.
func FuzzDecodeRankRequest(f *testing.F) {
	for _, seed := range hostileRankBodies {
		f.Add([]byte(seed))
	}
	f.Add([]byte(`{"kernel":"fft","scale":2,"top_k":3,"max_candidates":10,"timeout_ms":1000}`))
	f.Add([]byte(`{"kernel":"fft","unknown_field":true}`))
	f.Add([]byte(`{"kernel":"fft","strategy":"beam-4"}`))
	f.Add([]byte(`{"kernel":"fft","strategy":"greedy","parallelism":8}`))
	f.Add([]byte(`{"kernel":"fft","strategy":"EXHAUSTIVE"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRankRequest(data)
		if err != nil {
			// Both classes map to 400: generic validation failures and
			// unknown search strategies.
			if !errors.Is(err, ErrBadRequest) && !errors.Is(err, hmserr.ErrUnknownStrategy) {
				t.Fatalf("decode error %v wraps neither ErrBadRequest nor ErrUnknownStrategy", err)
			}
			return
		}
		// Accepted requests must be within the hardening limits.
		if req.Kernel == "" || len(req.Kernel) > 256 {
			t.Fatalf("accepted kernel %q", req.Kernel)
		}
		if req.Scale < 1 || req.Scale > MaxScale {
			t.Fatalf("accepted scale %d", req.Scale)
		}
		if len(req.Sample) > MaxSpecLen || len(req.Arch) > 64 {
			t.Fatal("accepted oversized spec")
		}
		if req.TopK < 0 || req.TopK > MaxTopK || req.MaxCandidates < 0 {
			t.Fatalf("accepted options k=%d c=%d", req.TopK, req.MaxCandidates)
		}
		if req.TimeoutMS < 0 || req.TimeoutMS > MaxTimeoutMS {
			t.Fatalf("accepted timeout %d", req.TimeoutMS)
		}
		if req.Strategy != "" {
			// Accepted strategies are already canonical specs.
			strat, serr := advisor.ParseStrategy(req.Strategy)
			if serr != nil || strat.Spec() != req.Strategy {
				t.Fatalf("accepted non-canonical strategy %q (%v)", req.Strategy, serr)
			}
		}
	})
}

func FuzzDecodePredictRequest(f *testing.F) {
	for _, seed := range hostileRankBodies {
		f.Add([]byte(seed))
	}
	f.Add([]byte(`{"kernel":"fft","target":"smem:G"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePredictRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error %v does not wrap ErrBadRequest", err)
			}
			return
		}
		if req.Kernel == "" || req.Target == "" {
			t.Fatal("accepted request without kernel/target")
		}
	})
}

// TestHostileBodiesNever5xx drives every hostile seed through the real
// handler stack: each must map to a 4xx — never a panic, never a 5xx.
func TestHostileBodiesNever5xx(t *testing.T) {
	s := newTestServer(t, Options{})
	for i, body := range hostileRankBodies {
		for _, path := range []string{"/v1/rank", "/v1/predict"} {
			rr := doJSON(t, s, "POST", path, body)
			if rr.Code < 400 || rr.Code >= 500 {
				t.Errorf("seed %d on %s: status %d (want 4xx): %.120s",
					i, path, rr.Code, rr.Body.String())
			}
		}
	}
}
