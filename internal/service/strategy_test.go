package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"gpuhms/internal/advisor"
)

// TestRankUnknownStrategy400 pins the wire contract: an unknown strategy is
// the client's fault — 400 with code "unknown_strategy", never a 5xx.
func TestRankUnknownStrategy400(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, spec := range []string{"annealing", "beam-0", "beam-99999999", "Beam 4"} {
		rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", Strategy: spec})
		if rr.Code != http.StatusBadRequest {
			t.Fatalf("strategy %q: status %d, want 400: %s", spec, rr.Code, rr.Body.String())
		}
		var er ErrorResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil {
			t.Fatalf("strategy %q: %v", spec, err)
		}
		if er.Code != "unknown_strategy" {
			t.Errorf("strategy %q: code %q, want unknown_strategy", spec, er.Code)
		}
	}
}

// TestRankStrategyCoverage pins the response contract: a sub-exhaustive
// strategy always attaches Coverage echoing the effective strategy, with
// Evaluated below the space size, while a complete exhaustive search stays
// coverage-free.
func TestRankStrategyCoverage(t *testing.T) {
	s := newTestServer(t, Options{})

	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "kmeans", Strategy: "beam-4", TopK: 1})
	if rr.Code != http.StatusOK {
		t.Fatalf("beam rank: status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeRank(t, rr)
	if resp.Partial {
		t.Error("beam rank marked partial without a budget")
	}
	if resp.Coverage == nil {
		t.Fatal("beam rank has no coverage")
	}
	if resp.Coverage.Strategy != "beam-4" {
		t.Errorf("coverage strategy %q, want beam-4", resp.Coverage.Strategy)
	}
	if resp.Coverage.Evaluated <= 0 || resp.Coverage.Evaluated >= resp.Coverage.Total {
		t.Errorf("coverage %d/%d, want a strict subset", resp.Coverage.Evaluated, resp.Coverage.Total)
	}

	rr = doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "kmeans", Strategy: "exhaustive", TopK: 1})
	if rr.Code != http.StatusOK {
		t.Fatalf("exhaustive rank: status %d: %s", rr.Code, rr.Body.String())
	}
	if resp := decodeRank(t, rr); resp.Coverage != nil {
		t.Errorf("complete exhaustive rank has coverage %+v", resp.Coverage)
	}
}

// TestRankStrategyCacheKey pins that the cache is keyed on the normalized
// strategy: different strategies never share an entry, equivalent spellings
// of the same strategy do, and the server default fills the empty field
// before keying.
func TestRankStrategyCacheKey(t *testing.T) {
	a := RankKey(&RankRequest{Kernel: "fft", Strategy: "exhaustive"})
	b := RankKey(&RankRequest{Kernel: "fft", Strategy: "greedy"})
	c := RankKey(&RankRequest{Kernel: "fft", Strategy: "beam-4"})
	if a == b || a == c || b == c {
		t.Fatalf("strategies share a cache key: %q %q %q", a, b, c)
	}

	s := newTestServer(t, Options{})
	// "beam" normalizes to "beam-4" at decode; the two spellings must share
	// one cache entry.
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", Strategy: "beam-4"})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if got := rr.Header().Get("X-HMS-Cache"); got != "miss" {
		t.Fatalf("first beam-4 request: cache %q, want miss", got)
	}
	rr = doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", Strategy: "beam"})
	if got := rr.Header().Get("X-HMS-Cache"); got != "hit" {
		t.Errorf(`"beam" after "beam-4": cache %q, want hit`, got)
	}
	// A different strategy on the same kernel is a different search.
	rr = doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", Strategy: "greedy"})
	if got := rr.Header().Get("X-HMS-Cache"); got != "miss" {
		t.Errorf("greedy after beam: cache %q, want miss", got)
	}
}

// TestRankDefaultStrategy pins the server-side default: an empty strategy
// field takes Options.DefaultStrategy (normalized), and shares its cache
// entry with the explicit spelling.
func TestRankDefaultStrategy(t *testing.T) {
	s := newTestServer(t, Options{DefaultStrategy: "beam"})
	rr := doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft"})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	resp := decodeRank(t, rr)
	if resp.Coverage == nil || resp.Coverage.Strategy != "beam-4" {
		t.Fatalf("coverage %+v, want strategy beam-4 from the server default", resp.Coverage)
	}
	rr = doJSON(t, s, "POST", "/v1/rank", RankRequest{Kernel: "fft", Strategy: "beam-4"})
	if got := rr.Header().Get("X-HMS-Cache"); got != "hit" {
		t.Errorf("explicit beam-4 after defaulted request: cache %q, want hit", got)
	}
}

// TestNewRejectsBadDefaultStrategy pins construction-time validation: a
// misconfigured default strategy fails fast instead of 400ing every request.
func TestNewRejectsBadDefaultStrategy(t *testing.T) {
	_, err := New(map[string]*advisor.Advisor{"k80": testAdvisor(t)}, Options{DefaultStrategy: "annealing"}, nil)
	if err == nil {
		t.Fatal("New accepted an unknown default strategy")
	}
}
