package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeFile builds a snapshot at path with the given entries.
func writeFile(t *testing.T, path string, entries []Entry) int64 {
	t.Helper()
	size, err := WriteAtomic(path, nil, func(w *Writer) error {
		for _, e := range entries {
			if err := w.Append(e.Kind, e.Payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return size
}

func testEntries() []Entry {
	return []Entry{
		{Kind: 1, Payload: []byte(`{"arch":"k80"}`)},
		{Kind: 2, Payload: []byte(`{"key":"a","response":{}}`)},
		{Kind: 2, Payload: []byte{}}, // empty payloads are legal
		{Kind: 7, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	want := testEntries()
	size := writeFile(t, path, want)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != size {
		t.Fatalf("WriteAtomic reported %d bytes, file has %d", size, fi.Size())
	}
	got, st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 0 || st.Restored != len(want) {
		t.Fatalf("stats %+v, want %d restored 0 skipped", st, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	entries, st, err := Load(filepath.Join(t.TempDir(), "nope.snap"))
	if err != nil || len(entries) != 0 || st != (Stats{}) {
		t.Fatalf("missing file: entries=%v stats=%+v err=%v, want all empty", entries, st, err)
	}
}

// TestTruncatedTail pins the torn-write recovery policy: every prefix of a
// valid snapshot loads without error, restoring only the entries whose
// framing fully survived and counting the torn tail as skipped.
func TestTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	writeFile(t, path, testEntries())
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		entries, st, err := Read(bytes.NewReader(full[:cut]))
		if cut < headerLen {
			if !errors.Is(err, ErrBadHeader) {
				t.Fatalf("cut %d: err %v, want ErrBadHeader", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if cut < len(full) && st.Skipped == 0 && len(entries) == len(testEntries()) {
			t.Fatalf("cut %d: full restore from a truncated file", cut)
		}
		for _, e := range entries {
			if len(e.Payload) > MaxEntryBytes {
				t.Fatalf("cut %d: oversized payload restored", cut)
			}
		}
	}
}

// TestFlippedByteSkipsOnlyThatEntry pins that checksum damage confined to
// one entry's payload drops exactly that entry and restores the rest.
func TestFlippedByteSkipsOnlyThatEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	writeFile(t, path, testEntries())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second entry's payload: after the header and
	// the complete first entry, past the 5-byte frame.
	off := headerLen + entryOverhead + len(testEntries()[0].Payload) + 5 + 2
	raw[off] ^= 0xFF
	entries, st, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || st.Restored != len(testEntries())-1 {
		t.Fatalf("stats %+v, want 1 skipped %d restored", st, len(testEntries())-1)
	}
	if entries[1].Kind != testEntries()[2].Kind {
		t.Fatal("scan did not resync after the damaged entry")
	}
}

func TestWrongVersionAndMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.snap")
	writeFile(t, path, testEntries())
	raw, _ := os.ReadFile(path)

	wrongVersion := bytes.Clone(raw)
	binary.LittleEndian.PutUint32(wrongVersion[8:], 99)
	if _, _, err := Read(bytes.NewReader(wrongVersion)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("version 99: err %v, want ErrBadHeader", err)
	}

	wrongMagic := bytes.Clone(raw)
	wrongMagic[0] = 'X'
	if _, _, err := Read(bytes.NewReader(wrongMagic)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("bad magic: err %v, want ErrBadHeader", err)
	}
}

// TestGiantDeclaredLength pins the over-allocation guard: a length field
// claiming more than MaxEntryBytes ends the scan instead of allocating.
func TestGiantDeclaredLength(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 5)
	frame[0] = 2
	binary.LittleEndian.PutUint32(frame[1:], 0xFFFFFFF0)
	buf.Write(frame)
	entries, st, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || st.Skipped != 1 {
		t.Fatalf("entries=%d stats=%+v, want 1 entry 1 skipped", len(entries), st)
	}
}

func TestAppendRejectsOversizePayload(t *testing.T) {
	w, err := NewWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, make([]byte, MaxEntryBytes+1)); err == nil {
		t.Fatal("oversize Append accepted")
	}
}

// failHooks injects one failure at a named point.
type failHooks struct {
	point string
	torn  int // bytes a torn write persists; -1 means fail outright
}

func (h *failHooks) Fail(point string) error {
	if h.torn < 0 && point == h.point {
		return fmt.Errorf("injected failure at %s", point)
	}
	return nil
}

func (h *failHooks) TornLen(point string, n int) int {
	if h.torn >= 0 && point == h.point && n > h.torn {
		return h.torn
	}
	return n
}

func (h *failHooks) Delay(string) {}

// TestWriteAtomicPreservesOldSnapshot pins crash safety: a failed or torn
// rewrite leaves the previous snapshot intact and no temp litter behind.
func TestWriteAtomicPreservesOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	writeFile(t, path, testEntries())
	before, _ := os.ReadFile(path)

	for _, hooks := range []*failHooks{
		{point: PointWrite, torn: -1},
		{point: PointSync, torn: -1},
		{point: PointRename, torn: -1},
		{point: PointWrite, torn: 3}, // torn write: 3 bytes persist, then failure
	} {
		_, err := WriteAtomic(path, hooks, func(w *Writer) error {
			return w.Append(9, []byte("replacement"))
		})
		if err == nil {
			t.Fatalf("hooks %+v: write succeeded, want injected failure", hooks)
		}
		after, rerr := os.ReadFile(path)
		if rerr != nil || !bytes.Equal(before, after) {
			t.Fatalf("hooks %+v: old snapshot damaged by failed rewrite", hooks)
		}
		left, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
		if len(left) != 0 {
			t.Fatalf("hooks %+v: temp litter %v", hooks, left)
		}
	}
}
