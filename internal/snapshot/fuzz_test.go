package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// validSnapshot builds a well-formed two-entry snapshot for seeding.
func validSnapshot(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte(`{"arch":"k80","model":{}}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte(`{"key":"k80|fft|1||k3|c0|sexhaustive","response":{"kernel":"fft"}}`)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadSnapshot proves the loader's safety contract on hostile bytes:
// it never panics, never allocates past the declared-length cap, and on any
// damage falls back to fewer entries (cold state) with the loss counted.
func FuzzLoadSnapshot(f *testing.F) {
	valid := validSnapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerLen])    // header only
	f.Add(valid[:headerLen+3])  // torn mid-frame
	f.Add(valid[:len(valid)-2]) // torn mid-CRC
	f.Add(valid[:len(valid)/2]) // torn mid-payload
	f.Add([]byte("HMSSNAP1garbage that is not framed"))
	f.Add([]byte("not a snapshot at all"))

	flipped := bytes.Clone(valid)
	flipped[len(flipped)-1] ^= 0x01 // last CRC byte
	f.Add(flipped)

	wrongVersion := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(wrongVersion[8:], 2)
	f.Add(wrongVersion)

	giant := bytes.Clone(valid[:headerLen])
	giant = append(giant, 1)
	giant = binary.LittleEndian.AppendUint32(giant, 0xFFFFFFFF) // ~4GiB declared
	f.Add(giant)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, st, err := Read(bytes.NewReader(data))
		if err != nil {
			// The only post-open error class is a bad header, and it must
			// come with no restored entries: clean cold boot.
			if !errors.Is(err, ErrBadHeader) {
				t.Fatalf("non-header error %v", err)
			}
			if len(entries) != 0 {
				t.Fatalf("%d entries restored alongside ErrBadHeader", len(entries))
			}
			return
		}
		if st.Restored != len(entries) {
			t.Fatalf("stats claim %d restored, got %d entries", st.Restored, len(entries))
		}
		total := headerLen
		for i, e := range entries {
			if len(e.Payload) > MaxEntryBytes {
				t.Fatalf("entry %d payload %d bytes exceeds cap", i, len(e.Payload))
			}
			total += entryOverhead + len(e.Payload)
		}
		// Restored bytes are bounded by the input: the loader cannot invent
		// (or over-allocate) data a hostile length field merely declared.
		if total > len(data) {
			t.Fatalf("restored framing spans %d bytes from a %d-byte input", total, len(data))
		}
	})
}
