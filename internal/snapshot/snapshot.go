// Package snapshot implements the crash-safe on-disk state format behind
// hmsserved's warm boot: a versioned, length-prefixed, CRC-checksummed
// stream of opaque entries, written atomically (temp file + fsync + rename)
// and loaded tolerantly — a corrupt, truncated, or hostile snapshot degrades
// to fewer restored entries (each one counted), never to a panic, an
// unbounded allocation, or a failed boot.
//
// Wire layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "HMSSNAP1"
//	8       4     format version (currently 1)
//	12      —     entries, each:
//	                1   kind (application-defined entry type)
//	                4   payload length N (must be <= MaxEntryBytes)
//	                N   payload
//	                4   CRC-32 (IEEE) of kind || length || payload
//
// The payload encoding is the caller's business (internal/service stores
// JSON); this package guarantees only framing integrity. A reader that hits
// a CRC mismatch skips that entry and keeps going — the length field was
// covered by the checksum of a *well-framed* entry, so the stream stays in
// sync; a short read, an oversize declared length, or a bad header ends the
// scan (everything after an unframeable point is untrustworthy).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Format constants.
const (
	// Version is the current snapshot format version; readers reject
	// anything else (forward compatibility is a cold boot, not a crash).
	Version = 1
	// MaxEntryBytes caps one entry's declared payload length. A hostile or
	// corrupted length field can therefore allocate at most this much,
	// never the multi-gigabyte buffer a flipped high bit would ask for.
	MaxEntryBytes = 16 << 20
	// headerLen is magic + version.
	headerLen = 12
	// entryOverhead is kind + length + CRC framing around a payload.
	entryOverhead = 9
)

// magic identifies a snapshot file; the trailing '1' is a format
// generation, distinct from the version word that follows it.
var magic = [8]byte{'H', 'M', 'S', 'S', 'N', 'A', 'P', '1'}

// ErrBadHeader reports a stream that is not a snapshot at all (wrong magic,
// unsupported version, or shorter than a header). Callers treat it as an
// empty snapshot: cold boot, never failed boot.
var ErrBadHeader = errors.New("snapshot: bad header")

// Fault-point names the writer consults on its FaultHooks; a chaos harness
// (internal/faults.Points) keys injected failures, torn writes, and delays
// by these.
const (
	PointWrite  = "snapshot/write"
	PointSync   = "snapshot/sync"
	PointRename = "snapshot/rename"
)

// FaultHooks is the chaos-injection surface of the atomic writer,
// implemented by internal/faults.Points. A nil FaultHooks disables
// injection. Implementations must be safe for concurrent use.
type FaultHooks interface {
	// Fail returns a non-nil error to force the named operation to fail.
	Fail(point string) error
	// TornLen reports how many of n bytes a write persists before failing;
	// returning n means the write completes whole.
	TornLen(point string, n int) int
	// Delay blocks the named operation, modeling slow I/O.
	Delay(point string)
}

// Entry is one framed record of a snapshot stream.
type Entry struct {
	// Kind is the application-defined entry type.
	Kind uint8
	// Payload is the entry's opaque body.
	Payload []byte
}

// Stats reports a load's outcome: how many entries survived framing and
// checksum validation, and how many were dropped.
type Stats struct {
	// Restored counts entries returned to the caller.
	Restored int
	// Skipped counts entries (or unframeable tails) dropped by checksum,
	// length, or truncation damage.
	Skipped int
}

// Writer frames entries onto an io.Writer. Construct with NewWriter, which
// emits the header.
type Writer struct {
	w       io.Writer
	scratch [entryOverhead]byte
}

// NewWriter writes the snapshot header and returns a framing writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: writing header: %w", err)
	}
	return &Writer{w: w}, nil
}

// Append frames one entry: kind, length, payload, CRC.
func (sw *Writer) Append(kind uint8, payload []byte) error {
	if len(payload) > MaxEntryBytes {
		return fmt.Errorf("snapshot: entry payload %d bytes exceeds %d", len(payload), MaxEntryBytes)
	}
	sw.scratch[0] = kind
	binary.LittleEndian.PutUint32(sw.scratch[1:5], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(sw.scratch[:5])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(sw.scratch[5:9], crc.Sum32())
	if _, err := sw.w.Write(sw.scratch[:5]); err != nil {
		return err
	}
	if _, err := sw.w.Write(payload); err != nil {
		return err
	}
	_, err := sw.w.Write(sw.scratch[5:9])
	return err
}

// Read scans a snapshot stream, returning every entry whose framing and
// checksum validate. It never returns an error for damage past the header:
// a checksum mismatch skips that entry and continues (the frame itself was
// intact), while truncation or an oversize declared length counts one skip
// and ends the scan. ErrBadHeader means the stream is not a snapshot; the
// returned entries are then nil.
func Read(r io.Reader) ([]Entry, Stats, error) {
	var st Stats
	br := bufio.NewReader(r)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, Stats{Skipped: 1}, fmt.Errorf("%w: truncated before header end", ErrBadHeader)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, Stats{Skipped: 1}, fmt.Errorf("%w: wrong magic", ErrBadHeader)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return nil, Stats{Skipped: 1}, fmt.Errorf("%w: version %d (want %d)", ErrBadHeader, v, Version)
	}
	var entries []Entry
	var frame [entryOverhead]byte
	for {
		if _, err := io.ReadFull(br, frame[:5]); err != nil {
			if err == io.EOF {
				return entries, st, nil // clean end of stream
			}
			st.Skipped++ // torn mid-frame
			return entries, st, nil
		}
		n := binary.LittleEndian.Uint32(frame[1:5])
		if n > MaxEntryBytes {
			// A giant declared length is either corruption or an attack;
			// both leave the rest of the stream unframeable.
			st.Skipped++
			return entries, st, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			st.Skipped++
			return entries, st, nil
		}
		if _, err := io.ReadFull(br, frame[5:9]); err != nil {
			st.Skipped++
			return entries, st, nil
		}
		crc := crc32.NewIEEE()
		crc.Write(frame[:5])
		crc.Write(payload)
		if crc.Sum32() != binary.LittleEndian.Uint32(frame[5:9]) {
			st.Skipped++ // this entry is damaged, but the frame held: keep scanning
			continue
		}
		entries = append(entries, Entry{Kind: frame[0], Payload: payload})
		st.Restored++
	}
}

// Load reads the snapshot at path. A missing file is an empty snapshot
// (nil entries, zero stats, nil error); any other open error is returned
// as-is for the caller to log before booting cold.
func Load(path string) ([]Entry, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, Stats{}, nil
		}
		return nil, Stats{Skipped: 1}, err
	}
	defer f.Close()
	return Read(f)
}

// faultWriter threads FaultHooks through every file write.
type faultWriter struct {
	f     *os.File
	hooks FaultHooks
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.hooks != nil {
		fw.hooks.Delay(PointWrite)
		if err := fw.hooks.Fail(PointWrite); err != nil {
			return 0, err
		}
		if n := fw.hooks.TornLen(PointWrite, len(p)); n < len(p) {
			// A torn write persists a prefix and then fails — the temp file
			// is left truncated mid-entry, exactly what a crash produces.
			if n > 0 {
				fw.f.Write(p[:n])
			}
			return n, fmt.Errorf("snapshot: injected torn write (%d of %d bytes)", n, len(p))
		}
	}
	return fw.f.Write(p)
}

// WriteAtomic writes one snapshot to path with crash-safe semantics: the
// stream is produced into a temp file in the same directory, fsynced,
// closed, and renamed over path, and the directory is fsynced so the
// rename itself is durable. On any failure the temp file is removed and the
// previous snapshot at path is untouched — a half-written snapshot can
// never be observed under the final name. It returns the written size.
func WriteAtomic(path string, hooks FaultHooks, fn func(*Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	bw := bufio.NewWriter(&faultWriter{f: tmp, hooks: hooks})
	sw, err := NewWriter(bw)
	if err != nil {
		cleanup()
		return 0, err
	}
	if err := fn(sw); err != nil {
		cleanup()
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		cleanup()
		return 0, fmt.Errorf("snapshot: flushing: %w", err)
	}
	if hooks != nil {
		hooks.Delay(PointSync)
		if err := hooks.Fail(PointSync); err != nil {
			cleanup()
			return 0, err
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("snapshot: fsync: %w", err)
	}
	size, err := tmp.Seek(0, io.SeekEnd)
	if err != nil {
		cleanup()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("snapshot: closing temp file: %w", err)
	}
	if hooks != nil {
		hooks.Delay(PointRename)
		if err := hooks.Fail(PointRename); err != nil {
			os.Remove(tmpName)
			return 0, err
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("snapshot: renaming into place: %w", err)
	}
	// Durability of the rename itself; best-effort on filesystems that
	// reject directory fsync.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return size, nil
}
