package placement

import (
	"math"

	"gpuhms/internal/gpu"
	"gpuhms/internal/trace"
)

// Space is an indexed view of a trace's placement search space: the
// mixed-radix cross product of each array's legal memory spaces (the m^n
// space of the paper's introduction, before aggregate-capacity screening).
// Raw indices decode to placements with At; EnumerateShard streams a
// deterministic stride of the legal subset, so independent workers can
// partition the space without coordination and a merge by raw index
// reproduces the EnumerateSeq order exactly.
//
// A Space is immutable after NewSpace and safe for concurrent use; the
// scratch placements handed to each EnumerateShard call are private to that
// call.
type Space struct {
	t    *trace.Trace
	cfg  *gpu.Config
	opts [][]gpu.MemSpace
	raw  int64
}

// NewSpace builds the indexed placement space of a trace on an architecture.
// A zero-array trace has an empty space (RawSize 0): it has no placement
// decisions to rank, matching EnumerateSeq.
func NewSpace(t *trace.Trace, cfg *gpu.Config) *Space {
	s := &Space{t: t, cfg: cfg}
	if len(t.Arrays) == 0 {
		return s
	}
	s.opts = make([][]gpu.MemSpace, len(t.Arrays))
	s.raw = 1
	for i := range t.Arrays {
		s.opts[i] = Options(t, trace.ArrayID(i), cfg)
		n := int64(len(s.opts[i]))
		if s.raw > math.MaxInt64/n {
			s.raw = math.MaxInt64 // saturate; At still decodes exactly
		} else {
			s.raw *= n
		}
	}
	return s
}

// RawSize is the size of the unscreened cross product — the count of raw
// indices At accepts. Legal placements are a subset (aggregate capacity
// checks reject some combinations). Saturates at MaxInt64 for astronomically
// large spaces; At remains exact regardless.
func (s *Space) RawSize() int64 { return s.raw }

// At decodes raw index i into dst (which must hold len(t.Arrays) spaces) and
// reports whether i is in range. Index 0 is the first placement EnumerateSeq
// yields before legality screening; array 0 is the most significant digit,
// so ascending indices match the enumeration order. At does not check
// legality — pair it with Check, or use EnumerateShard which does.
func (s *Space) At(i int64, dst *Placement) bool {
	if i < 0 || len(s.opts) == 0 || len(dst.Spaces) != len(s.opts) {
		return false
	}
	// Mixed-radix decode, least significant digit (the last array) first.
	rem := i
	for j := len(s.opts) - 1; j >= 0; j-- {
		radix := int64(len(s.opts[j]))
		dst.Spaces[j] = s.opts[j][rem%radix]
		rem /= radix
	}
	return rem == 0
}

// IndexOf is the inverse of At: it encodes a placement back to its raw
// enumeration index, reporting false when any array uses a space outside its
// legal option set (or the arity mismatches). Sub-exhaustive searches use it
// to give every candidate they construct the same Index an enumeration would
// have assigned, so rankings from different strategies order ties identically
// and deduplicate by index.
func (s *Space) IndexOf(p *Placement) (int64, bool) {
	if len(s.opts) == 0 || len(p.Spaces) != len(s.opts) {
		return 0, false
	}
	var idx int64
	for j := range s.opts {
		digit := -1
		for d, sp := range s.opts[j] {
			if sp == p.Spaces[j] {
				digit = d
				break
			}
		}
		if digit < 0 {
			return 0, false
		}
		idx = idx*int64(len(s.opts[j])) + int64(digit)
	}
	return idx, true
}

// Arrays returns the number of arrays (mixed-radix digits) in the space.
func (s *Space) Arrays() int { return len(s.opts) }

// ArrayOptions returns the legal spaces of one array, in the digit order At
// decodes — the per-level alphabet a beam search expands over. The returned
// slice is the space's own; callers must not mutate it.
func (s *Space) ArrayOptions(i int) []gpu.MemSpace { return s.opts[i] }

// EnumerateShard streams shard number `shard` of `stride` total shards: the
// legal placements whose raw index ≡ shard (mod stride), in ascending index
// order. The union of shards 0..stride-1 is exactly the EnumerateSeq stream,
// with no duplicates and no gaps, and merging shard outputs by idx
// reproduces its order. The yielded placement is scratch owned by this call
// — clone to keep it. Returning false from yield stops the shard early.
func (s *Space) EnumerateShard(shard, stride int, yield func(idx int64, p *Placement) bool) {
	if len(s.opts) == 0 || shard < 0 || stride < 1 || int64(shard) >= s.raw {
		return
	}
	cur := New(len(s.opts))
	for idx := int64(shard); idx >= 0; idx += int64(stride) {
		if !s.At(idx, cur) {
			return
		}
		if Check(s.t, cur, s.cfg) != nil {
			continue
		}
		if !yield(idx, cur) {
			return
		}
	}
}
