package placement

import (
	"gpuhms/internal/gpu"
	"gpuhms/internal/trace"
)

// HeapBase is the first virtual address handed out for off-chip arrays,
// mimicking a cudaMalloc-style device heap.
const HeapBase uint64 = 0x7_0000_0000

// AllocAlign is the allocation alignment of the device heap (cudaMalloc
// guarantees at least 256-byte alignment).
const AllocAlign uint64 = 256

// Layout binds a placement to concrete addresses: a 64-bit device address
// for every off-chip array and a block-local byte offset for every
// shared-memory array. It implements §III-E of the paper:
//
//   - arrays moved between off-chip memories keep their sample address;
//   - arrays moved between shared and off-chip memory receive a fresh range
//     after the largest allocated address of the destination, respecting
//     alignment and object size.
type Layout struct {
	// Base[id] is the device address of off-chip arrays; unset (0) for
	// shared-memory arrays.
	Base []uint64
	// SharedOff[id] is the block-local shared-memory byte offset for
	// shared arrays.
	SharedOff []uint64
	// HeapEnd is one past the highest allocated off-chip byte.
	HeapEnd uint64
	// SharedEnd is one past the highest allocated shared byte per block.
	SharedEnd uint64
}

func alignUp(x, a uint64) uint64 { return (x + a - 1) / a * a }

// NewLayout allocates addresses for a placement from scratch, assigning
// off-chip arrays sequentially from HeapBase in array-ID order and shared
// arrays sequentially from offset 0. It is used for the sample placement.
func NewLayout(t *trace.Trace, p *Placement) *Layout {
	l := &Layout{
		Base:      make([]uint64, len(t.Arrays)),
		SharedOff: make([]uint64, len(t.Arrays)),
		HeapEnd:   HeapBase,
	}
	for i, a := range t.Arrays {
		if p.Spaces[i] == gpu.Shared {
			l.SharedOff[i] = alignUp(l.SharedEnd, uint64(a.Type.Bytes()))
			l.SharedEnd = l.SharedOff[i] + uint64(SharedFootprint(t, trace.ArrayID(i)))
			continue
		}
		l.Base[i] = alignUp(l.HeapEnd, AllocAlign)
		l.HeapEnd = l.Base[i] + uint64(a.Bytes())
	}
	return l
}

// Retarget derives the target placement's layout from the sample layout per
// the rules above.
func Retarget(t *trace.Trace, sample *Layout, samplePl, targetPl *Placement) *Layout {
	l := &Layout{
		Base:      make([]uint64, len(t.Arrays)),
		SharedOff: make([]uint64, len(t.Arrays)),
		HeapEnd:   sample.HeapEnd,
		SharedEnd: 0,
	}
	// First pass: arrays that stay in (any) off-chip memory keep their
	// address; arrays staying shared keep their offsets recomputed in order.
	for i, a := range t.Arrays {
		sSp, tSp := samplePl.Spaces[i], targetPl.Spaces[i]
		switch {
		case tSp == gpu.Shared && sSp == gpu.Shared:
			l.SharedOff[i] = alignUp(l.SharedEnd, uint64(a.Type.Bytes()))
			l.SharedEnd = l.SharedOff[i] + uint64(SharedFootprint(t, trace.ArrayID(i)))
		case tSp != gpu.Shared && sSp != gpu.Shared:
			l.Base[i] = sample.Base[i]
		}
	}
	// Second pass: arrays that crossed the on-chip/off-chip boundary get
	// fresh ranges after the largest allocated address of the destination.
	for i, a := range t.Arrays {
		sSp, tSp := samplePl.Spaces[i], targetPl.Spaces[i]
		switch {
		case tSp == gpu.Shared && sSp != gpu.Shared:
			l.SharedOff[i] = alignUp(l.SharedEnd, uint64(a.Type.Bytes()))
			l.SharedEnd = l.SharedOff[i] + uint64(SharedFootprint(t, trace.ArrayID(i)))
		case tSp != gpu.Shared && sSp == gpu.Shared:
			l.Base[i] = alignUp(l.HeapEnd, AllocAlign)
			l.HeapEnd = l.Base[i] + uint64(a.Bytes())
		}
	}
	return l
}

// Address resolves one element index of an array to a device address (for
// off-chip arrays) under this layout.
func (l *Layout) Address(t *trace.Trace, id trace.ArrayID, index int64) uint64 {
	return l.Base[id] + uint64(index)*uint64(t.Arrays[id].Type.Bytes())
}

// SharedAddress resolves an element index of a shared array to a block-local
// shared-memory byte address. Indices are wrapped into the per-block tile
// (the paper's conservative block-local index rewriting for arrays larger
// than a block's share).
func (l *Layout) SharedAddress(t *trace.Trace, id trace.ArrayID, index int64) uint64 {
	a := t.Arrays[id]
	foot := uint64(SharedFootprint(t, trace.ArrayID(id)))
	elems := foot / uint64(a.Type.Bytes())
	if elems == 0 {
		elems = 1
	}
	local := uint64(index) % elems
	return l.SharedOff[id] + local*uint64(a.Type.Bytes())
}
