package placement

import (
	"strings"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/trace"
)

// FuzzParse feeds arbitrary placement specs to the parser: no panics, and
// anything accepted must format back to a parseable spec assigning only the
// named arrays.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("in:T,w:C")
	f.Add("in:2T")
	f.Add("out:shared")
	f.Add("in:T,,w:C")
	f.Add("in : T , w : C")
	f.Add("in:T:extra")
	f.Add("🦆:G")
	f.Add("in:Q")                        // unknown space name
	f.Add("in:T,in:C")                   // duplicate assignment
	f.Add("nosucharray:G")               // array the trace does not declare
	f.Add("in:" + "T" + "T")             // space name with trailing junk
	f.Add(strings.Repeat("in:T,", 4096)) // pathological length
	f.Add("in:\x00G")
	f.Add(":G")
	f.Add("in:")

	b := trace.NewBuilder("k", trace.Launch{Blocks: 2, ThreadsPerBlock: 64, WarpSize: 32})
	in := b.DeclareArray(trace.Array{Name: "in", Type: trace.F32, Len: 256, Width: 16, ReadOnly: true})
	w := b.DeclareArray(trace.Array{Name: "w", Type: trace.F32, Len: 64, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "out", Type: trace.F32, Len: 256})
	for blk := 0; blk < 2; blk++ {
		wb := b.Warp(blk, 0)
		wb.LoadCoalesced(in, int64(blk*64), 32)
		wb.LoadBroadcast(w, 1, 32)
		wb.StoreCoalesced(out, int64(blk*64), 32)
	}
	tr := b.MustBuild()
	cfg := gpu.KeplerK80()

	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(tr, spec)
		if err != nil {
			return
		}
		// Accepted placements have one space per array…
		if len(p.Spaces) != len(tr.Arrays) {
			t.Fatalf("accepted placement with %d spaces", len(p.Spaces))
		}
		// …and the formatted form re-parses to the same placement.
		q, err := Parse(tr, p.Format(tr))
		if err != nil {
			t.Fatalf("formatted placement %q does not re-parse: %v", p.Format(tr), err)
		}
		if !p.Equal(q) {
			t.Fatalf("format/parse round trip changed %q", p.Format(tr))
		}
		// Check never panics either way.
		_ = Check(tr, p, cfg)
	})
}
