package placement

import (
	"sort"
	"strings"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/trace"
)

// FuzzParse feeds arbitrary placement specs to the parser: no panics, and
// anything accepted must format back to a parseable spec assigning only the
// named arrays.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("in:T,w:C")
	f.Add("in:2T")
	f.Add("out:shared")
	f.Add("in:T,,w:C")
	f.Add("in : T , w : C")
	f.Add("in:T:extra")
	f.Add("🦆:G")
	f.Add("in:Q")                        // unknown space name
	f.Add("in:T,in:C")                   // duplicate assignment
	f.Add("nosucharray:G")               // array the trace does not declare
	f.Add("in:" + "T" + "T")             // space name with trailing junk
	f.Add(strings.Repeat("in:T,", 4096)) // pathological length
	f.Add("in:\x00G")
	f.Add(":G")
	f.Add("in:")

	b := trace.NewBuilder("k", trace.Launch{Blocks: 2, ThreadsPerBlock: 64, WarpSize: 32})
	in := b.DeclareArray(trace.Array{Name: "in", Type: trace.F32, Len: 256, Width: 16, ReadOnly: true})
	w := b.DeclareArray(trace.Array{Name: "w", Type: trace.F32, Len: 64, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "out", Type: trace.F32, Len: 256})
	for blk := 0; blk < 2; blk++ {
		wb := b.Warp(blk, 0)
		wb.LoadCoalesced(in, int64(blk*64), 32)
		wb.LoadBroadcast(w, 1, 32)
		wb.StoreCoalesced(out, int64(blk*64), 32)
	}
	tr := b.MustBuild()
	cfg := gpu.KeplerK80()

	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(tr, spec)
		if err != nil {
			return
		}
		// Accepted placements have one space per array…
		if len(p.Spaces) != len(tr.Arrays) {
			t.Fatalf("accepted placement with %d spaces", len(p.Spaces))
		}
		// …and the formatted form re-parses to the same placement.
		q, err := Parse(tr, p.Format(tr))
		if err != nil {
			t.Fatalf("formatted placement %q does not re-parse: %v", p.Format(tr), err)
		}
		if !p.Equal(q) {
			t.Fatalf("format/parse round trip changed %q", p.Format(tr))
		}
		// Check never panics either way.
		_ = Check(tr, p, cfg)
	})
}

// FuzzEnumerateShard drives the sharded enumerator with arbitrary stride and
// shard-subset parameters: the union of all shards of a stride must equal the
// EnumerateSeq stream exactly — no duplicates, no gaps, indices ascending
// within a shard and congruent to the shard number.
func FuzzEnumerateShard(f *testing.F) {
	f.Add(1)
	f.Add(2)
	f.Add(3)
	f.Add(8)
	f.Add(31)
	f.Add(1 << 20)
	f.Add(0)
	f.Add(-4)

	b := trace.NewBuilder("k", trace.Launch{Blocks: 2, ThreadsPerBlock: 64, WarpSize: 32})
	in := b.DeclareArray(trace.Array{Name: "in", Type: trace.F32, Len: 256, Width: 16, ReadOnly: true})
	w := b.DeclareArray(trace.Array{Name: "w", Type: trace.F32, Len: 64, ReadOnly: true})
	out := b.DeclareArray(trace.Array{Name: "out", Type: trace.F32, Len: 256})
	for blk := 0; blk < 2; blk++ {
		wb := b.Warp(blk, 0)
		wb.LoadCoalesced(in, int64(blk*64), 32)
		wb.LoadBroadcast(w, 1, 32)
		wb.StoreCoalesced(out, int64(blk*64), 32)
	}
	tr := b.MustBuild()
	cfg := gpu.KeplerK80()

	// The reference stream, computed once.
	var want []*Placement
	EnumerateSeq(tr, cfg, func(p *Placement) bool {
		want = append(want, p.Clone())
		return true
	})
	space := NewSpace(tr, cfg)

	f.Fuzz(func(t *testing.T, stride int) {
		if stride < 1 || stride > 1<<20 {
			// Degenerate strides must yield nothing and never panic.
			n := 0
			space.EnumerateShard(0, stride, func(int64, *Placement) bool { n++; return true })
			if stride < 1 && n != 0 {
				t.Fatalf("stride %d yielded %d placements", stride, n)
			}
			return
		}
		shards := stride
		if int64(shards) > space.RawSize() {
			shards = int(space.RawSize())
		}
		type item struct {
			idx int64
			p   *Placement
		}
		var got []item
		seen := make(map[int64]bool)
		for shard := 0; shard < shards; shard++ {
			last := int64(-1)
			space.EnumerateShard(shard, stride, func(idx int64, p *Placement) bool {
				if idx%int64(stride) != int64(shard) || idx <= last {
					t.Fatalf("stride %d shard %d: bad idx %d after %d", stride, shard, idx, last)
				}
				last = idx
				if seen[idx] {
					t.Fatalf("stride %d: duplicate idx %d", stride, idx)
				}
				seen[idx] = true
				got = append(got, item{idx, p.Clone()})
				return true
			})
		}
		if len(got) != len(want) {
			t.Fatalf("stride %d: union has %d placements, want %d", stride, len(got), len(want))
		}
		sort.Slice(got, func(i, j int) bool { return got[i].idx < got[j].idx })
		for i := range got {
			if !got[i].p.Equal(want[i]) {
				t.Fatalf("stride %d: position %d is %v, want %v", stride, i, got[i].p.Spaces, want[i].Spaces)
			}
		}
	})
}
