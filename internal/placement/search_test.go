package placement

import (
	"context"
	"errors"
	"testing"

	"gpuhms/internal/hmserr"
	"gpuhms/internal/obs"

	"gpuhms/internal/gpu"
	"gpuhms/internal/trace"
)

// additiveCost is a separable cost: each (array, space) pair contributes
// independently, so greedy must find the global optimum.
func additiveCost(t *trace.Trace, weights map[gpu.MemSpace]float64) Cost {
	return func(p *Placement) (float64, error) {
		s := 0.0
		for i := range p.Spaces {
			s += weights[p.Spaces[i]] * float64(i+1)
		}
		return s, nil
	}
}

func TestGreedyFindsSeparableOptimum(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	weights := map[gpu.MemSpace]float64{
		gpu.Global: 5, gpu.Shared: 3, gpu.Constant: 2, gpu.Texture1D: 1, gpu.Texture2D: 4,
	}
	cost := additiveCost(tr, weights)

	gBest, gCost, gEvals, err := GreedySearch(tr, cfg, New(len(tr.Arrays)), cost)
	if err != nil {
		t.Fatal(err)
	}
	eBest, eCost, eEvals, err := ExhaustiveSearch(tr, cfg, cost)
	if err != nil {
		t.Fatal(err)
	}
	if gCost != eCost {
		t.Errorf("greedy cost %g vs optimum %g (%s vs %s)",
			gCost, eCost, gBest.Format(tr), eBest.Format(tr))
	}
	if gEvals >= eEvals {
		t.Errorf("greedy used %d evals, exhaustive %d — no savings", gEvals, eEvals)
	}
	if err := Check(tr, gBest, cfg); err != nil {
		t.Errorf("greedy returned illegal placement: %v", err)
	}
}

func TestGreedyStopsAtLocalOptimum(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	// A cost that is already minimal at the start.
	calls := 0
	cost := func(p *Placement) (float64, error) {
		calls++
		if p.Equal(New(len(tr.Arrays))) {
			return 0, nil
		}
		return 1, nil
	}
	best, c, _, err := GreedySearch(tr, cfg, New(len(tr.Arrays)), cost)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 || !best.Equal(New(len(tr.Arrays))) {
		t.Error("greedy should keep the already-optimal start")
	}
	// One full round of neighbor evaluations, no second round.
	if calls > 12 {
		t.Errorf("greedy evaluated %d candidates for an immediate stop", calls)
	}
}

func TestSearchPropagatesErrors(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	boom := errors.New("boom")
	cost := func(p *Placement) (float64, error) { return 0, boom }
	if _, _, _, err := GreedySearch(tr, cfg, New(len(tr.Arrays)), cost); !errors.Is(err, boom) {
		t.Errorf("greedy error = %v", err)
	}
	if _, _, _, err := ExhaustiveSearch(tr, cfg, cost); !errors.Is(err, boom) {
		t.Errorf("exhaustive error = %v", err)
	}
}

// TestExhaustiveBudgetErrorCarriesCoverage pins the budget-stop contract:
// the error is a typed *hmserr.BudgetError whose Evaluated/Total record the
// partial coverage (matching the advisor's RankContext), not just a bare
// wrapped sentinel.
func TestExhaustiveBudgetErrorCarriesCoverage(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	cost := additiveCost(tr, map[gpu.MemSpace]float64{
		gpu.Global: 5, gpu.Shared: 3, gpu.Constant: 2, gpu.Texture1D: 1, gpu.Texture2D: 4,
	})

	best, _, evals, err := ExhaustiveSearchContext(context.Background(), tr, cfg, cost, 3)
	if best == nil || evals != 3 {
		t.Fatalf("best=%v evals=%d, want partial best after 3 evals", best, evals)
	}
	var be *hmserr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T %v, want *hmserr.BudgetError", err, err)
	}
	if !errors.Is(err, hmserr.ErrBudgetExceeded) {
		t.Fatal("BudgetError must wrap ErrBudgetExceeded")
	}
	if be.Evaluated != 3 || be.Total != CountLegal(tr, cfg) {
		t.Errorf("coverage = %d/%d, want 3/%d", be.Evaluated, be.Total, CountLegal(tr, cfg))
	}
}

// TestExhaustiveEmptySpaceReportsDone pins the best == nil reporting path: a
// search over an empty placement space still closes out its progress with a
// Done report (Total 0), instead of leaving the obs stream dangling.
func TestExhaustiveEmptySpaceReportsDone(t *testing.T) {
	cfg := gpu.KeplerK80()
	b := trace.NewBuilder("empty", trace.Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	b.Warp(0, 0).FP32(1)
	tr := b.MustBuild()

	col := obs.NewCollectorWithClock(func() float64 { return 0 })
	best, _, evals, err := ExhaustiveSearchContext(context.Background(), tr, cfg, nil, 0, col)
	if best != nil || evals != 0 || err != nil {
		t.Fatalf("empty space: best=%v evals=%d err=%v", best, evals, err)
	}
	p, ok := col.Progress()
	if !ok || !p.Done || p.Evaluated != 0 || p.Total != 0 {
		t.Errorf("progress = %+v (ok=%v), want done with 0/0", p, ok)
	}
}
