package placement

import (
	"errors"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/trace"
)

// additiveCost is a separable cost: each (array, space) pair contributes
// independently, so greedy must find the global optimum.
func additiveCost(t *trace.Trace, weights map[gpu.MemSpace]float64) Cost {
	return func(p *Placement) (float64, error) {
		s := 0.0
		for i := range p.Spaces {
			s += weights[p.Spaces[i]] * float64(i+1)
		}
		return s, nil
	}
}

func TestGreedyFindsSeparableOptimum(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	weights := map[gpu.MemSpace]float64{
		gpu.Global: 5, gpu.Shared: 3, gpu.Constant: 2, gpu.Texture1D: 1, gpu.Texture2D: 4,
	}
	cost := additiveCost(tr, weights)

	gBest, gCost, gEvals, err := GreedySearch(tr, cfg, New(len(tr.Arrays)), cost)
	if err != nil {
		t.Fatal(err)
	}
	eBest, eCost, eEvals, err := ExhaustiveSearch(tr, cfg, cost)
	if err != nil {
		t.Fatal(err)
	}
	if gCost != eCost {
		t.Errorf("greedy cost %g vs optimum %g (%s vs %s)",
			gCost, eCost, gBest.Format(tr), eBest.Format(tr))
	}
	if gEvals >= eEvals {
		t.Errorf("greedy used %d evals, exhaustive %d — no savings", gEvals, eEvals)
	}
	if err := Check(tr, gBest, cfg); err != nil {
		t.Errorf("greedy returned illegal placement: %v", err)
	}
}

func TestGreedyStopsAtLocalOptimum(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	// A cost that is already minimal at the start.
	calls := 0
	cost := func(p *Placement) (float64, error) {
		calls++
		if p.Equal(New(len(tr.Arrays))) {
			return 0, nil
		}
		return 1, nil
	}
	best, c, _, err := GreedySearch(tr, cfg, New(len(tr.Arrays)), cost)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 || !best.Equal(New(len(tr.Arrays))) {
		t.Error("greedy should keep the already-optimal start")
	}
	// One full round of neighbor evaluations, no second round.
	if calls > 12 {
		t.Errorf("greedy evaluated %d candidates for an immediate stop", calls)
	}
}

func TestSearchPropagatesErrors(t *testing.T) {
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	boom := errors.New("boom")
	cost := func(p *Placement) (float64, error) { return 0, boom }
	if _, _, _, err := GreedySearch(tr, cfg, New(len(tr.Arrays)), cost); !errors.Is(err, boom) {
		t.Errorf("greedy error = %v", err)
	}
	if _, _, _, err := ExhaustiveSearch(tr, cfg, cost); !errors.Is(err, boom) {
		t.Errorf("exhaustive error = %v", err)
	}
}
