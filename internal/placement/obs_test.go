package placement

import (
	"context"
	"errors"
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/obs"
	"gpuhms/internal/trace"
)

func searchFixture(t *testing.T) (*trace.Trace, *gpu.Config, *Placement) {
	t.Helper()
	cfg := gpu.KeplerK80()
	tr := testTrace(t)
	return tr, cfg, New(len(tr.Arrays))
}

// sizeCost is a deterministic stand-in for a model prediction.
func sizeCost(tr *trace.Trace) Cost {
	return func(p *Placement) (float64, error) {
		c := 0.0
		for i, sp := range p.Spaces {
			c += float64(i+1) * float64(sp+1)
		}
		return c, nil
	}
}

func TestCountLegalMatchesEnumerate(t *testing.T) {
	tr, cfg, _ := searchFixture(t)
	if got, want := CountLegal(tr, cfg), len(Enumerate(tr, cfg)); got != want {
		t.Errorf("CountLegal = %d, Enumerate yields %d", got, want)
	}
}

func TestGreedySearchRecordsProgress(t *testing.T) {
	tr, cfg, sample := searchFixture(t)
	col := obs.NewCollectorWithClock(func() float64 { return 0 })
	_, _, evals, err := GreedySearchContext(context.Background(), tr, cfg, sample, sizeCost(tr), 0, col)
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap.Counter("search_evals_total"); got != int64(evals) {
		t.Errorf("search_evals_total = %d, want %d", got, evals)
	}
	p, ok := col.Progress()
	if !ok || !p.Done || p.Evaluated != evals || p.Best == "" {
		t.Errorf("final progress = %+v (ok=%v), want done with %d evals", p, ok, evals)
	}
	if snap.GaugeValue("search_best_ns") <= 0 {
		t.Error("search_best_ns gauge not set")
	}
}

func TestExhaustiveSearchBudgetRecordsPartialProgress(t *testing.T) {
	tr, cfg, _ := searchFixture(t)
	col := obs.NewCollectorWithClock(func() float64 { return 0 })
	_, _, evals, err := ExhaustiveSearchContext(context.Background(), tr, cfg, sizeCost(tr), 3, col)
	if !errors.Is(err, hmserr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if evals != 3 {
		t.Fatalf("evals = %d, want 3", evals)
	}
	p, ok := col.Progress()
	if !ok || !p.Done || p.Evaluated != 3 {
		t.Errorf("progress = %+v (ok=%v), want done at 3 evaluated", p, ok)
	}
	if p.Total != CountLegal(tr, cfg) {
		t.Errorf("progress total = %d, want the full legal space %d", p.Total, CountLegal(tr, cfg))
	}
}

func TestSearchWithoutRecorderUnchanged(t *testing.T) {
	tr, cfg, sample := searchFixture(t)
	p1, c1, e1, err1 := GreedySearchContext(context.Background(), tr, cfg, sample, sizeCost(tr), 0)
	p2, c2, e2, err2 := GreedySearchContext(context.Background(), tr, cfg, sample, sizeCost(tr), 0, obs.NewCollector())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !p1.Equal(p2) || c1 != c2 || e1 != e2 {
		t.Errorf("recorder changed the search outcome: (%v,%g,%d) vs (%v,%g,%d)",
			p1, c1, e1, p2, c2, e2)
	}
}
