// Package placement represents data placements — the assignment of each
// kernel array to one programmable memory space of the HMS — together with
// their legality rules, the address-assignment conventions of §III-E of the
// paper, and enumeration of the m^n placement search space.
package placement

import (
	"fmt"
	"sort"
	"strings"

	"gpuhms/internal/gpu"
	"gpuhms/internal/hmserr"
	"gpuhms/internal/trace"
)

// illegalf builds an error wrapping hmserr.ErrIllegalPlacement.
func illegalf(format string, args ...any) error {
	return hmserr.Wrap(hmserr.ErrIllegalPlacement, format, args...)
}

// capacityf builds an error wrapping hmserr.ErrCapacityExceeded (which
// itself chains onto ErrIllegalPlacement, so existing errors.Is checks on the
// broad sentinel keep matching capacity overflows).
func capacityf(format string, args ...any) error {
	return hmserr.Wrap(hmserr.ErrCapacityExceeded, format, args...)
}

// Placement assigns a memory space to every array of a trace, indexed by
// trace.ArrayID.
type Placement struct {
	Spaces []gpu.MemSpace
}

// New returns a placement with every array in global memory (the common
// default for CUDA kernels, and the usual sample placement).
func New(n int) *Placement {
	return &Placement{Spaces: make([]gpu.MemSpace, n)}
}

// Of returns the memory space of the array. Out-of-range IDs report global
// memory (the placement default) instead of panicking; use SpaceOf when the
// caller needs the range violation surfaced.
func (p *Placement) Of(id trace.ArrayID) gpu.MemSpace {
	if int(id) < 0 || int(id) >= len(p.Spaces) {
		return gpu.Global
	}
	return p.Spaces[id]
}

// SpaceOf returns the memory space of the array, or an error wrapping
// hmserr.ErrIllegalPlacement when id is out of range.
func (p *Placement) SpaceOf(id trace.ArrayID) (gpu.MemSpace, error) {
	if int(id) < 0 || int(id) >= len(p.Spaces) {
		return gpu.Global, hmserr.Wrap(hmserr.ErrIllegalPlacement,
			"array ID %d out of range [0,%d)", id, len(p.Spaces))
	}
	return p.Spaces[id], nil
}

// Clone returns an independent copy.
func (p *Placement) Clone() *Placement {
	cp := make([]gpu.MemSpace, len(p.Spaces))
	copy(cp, p.Spaces)
	return &Placement{Spaces: cp}
}

// WithMove returns a copy with one array moved to a new space. It is the
// sample→target transformation of the paper: "pick a data array as the
// target data object, then predict the kernel performance if we move the
// array to a new data placement". Out-of-range IDs yield an unchanged copy;
// use WithMoveChecked when the caller needs the violation surfaced.
func (p *Placement) WithMove(id trace.ArrayID, to gpu.MemSpace) *Placement {
	cp := p.Clone()
	if int(id) >= 0 && int(id) < len(cp.Spaces) {
		cp.Spaces[id] = to
	}
	return cp
}

// WithMoveChecked is WithMove with a typed error for out-of-range IDs.
func (p *Placement) WithMoveChecked(id trace.ArrayID, to gpu.MemSpace) (*Placement, error) {
	if int(id) < 0 || int(id) >= len(p.Spaces) {
		return nil, hmserr.Wrap(hmserr.ErrIllegalPlacement,
			"move of array ID %d out of range [0,%d)", id, len(p.Spaces))
	}
	return p.WithMove(id, to), nil
}

// Equal reports whether two placements assign identical spaces.
func (p *Placement) Equal(q *Placement) bool {
	if len(p.Spaces) != len(q.Spaces) {
		return false
	}
	for i := range p.Spaces {
		if p.Spaces[i] != q.Spaces[i] {
			return false
		}
	}
	return true
}

// String renders the placement in the paper's Table IV notation, e.g.
// "a:G,b:2T".
func (p *Placement) String() string { return p.Format(nil) }

// Format renders the placement with array names from the trace when
// available.
func (p *Placement) Format(t *trace.Trace) string {
	var b strings.Builder
	for i, s := range p.Spaces {
		if i > 0 {
			b.WriteByte(',')
		}
		if t != nil && i < len(t.Arrays) {
			b.WriteString(t.Arrays[i].Name)
		} else {
			fmt.Fprintf(&b, "a%d", i)
		}
		b.WriteByte(':')
		b.WriteString(s.String())
	}
	return b.String()
}

// Parse reads a placement spec of the form "name:S,name:S,…" against a
// trace's arrays; unspecified arrays default to global memory.
func Parse(t *trace.Trace, spec string) (*Placement, error) {
	p := New(len(t.Arrays))
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, illegalf("bad element %q (want name:space)", part)
		}
		id, ok := t.ArrayByName(kv[0])
		if !ok {
			return nil, illegalf("kernel %s has no array %q", t.Kernel, kv[0])
		}
		sp, err := gpu.ParseSpace(kv[1])
		if err != nil {
			// Classify as an illegal-placement error so callers (and the
			// service's status mapping) treat a bad spec as client error.
			return nil, illegalf("%v", err)
		}
		p.Spaces[id] = sp
	}
	return p, nil
}

// Check verifies the placement is legal for the trace on the architecture:
// read-only constraint for constant/texture, 2D texture requires a declared
// 2D shape, and per-space capacity (constant total, shared per block, and —
// when cfg bounds the device DRAM — the aggregate bytes of global- and
// texture-placed arrays). Capacity violations wrap
// hmserr.ErrCapacityExceeded, which chains onto ErrIllegalPlacement.
func Check(t *trace.Trace, p *Placement, cfg *gpu.Config) error {
	if len(p.Spaces) != len(t.Arrays) {
		return illegalf("%d spaces for %d arrays", len(p.Spaces), len(t.Arrays))
	}
	constBytes, sharedBytes, dramBytes := 0, 0, 0
	remoteConstBytes, remoteDramBytes := 0, 0
	for i, sp := range p.Spaces {
		a := t.Arrays[i]
		if !sp.Writable() && !a.ReadOnly {
			return illegalf("array %s is written but placed in read-only %s",
				a.Name, sp.LongString())
		}
		if sp.Remote() && !cfg.HasRemote() {
			return illegalf("array %s placed in %s but %s has no remote stacks",
				a.Name, sp.LongString(), cfg.Name)
		}
		switch sp.Base() {
		case gpu.Texture2D:
			if !a.Is2D() {
				return illegalf("array %s has no 2D shape for 2D texture", a.Name)
			}
		}
		switch sp {
		case gpu.Texture2D, gpu.Global, gpu.Texture1D:
			dramBytes += a.Bytes()
		case gpu.Constant:
			constBytes += a.Bytes()
		case gpu.Shared:
			sharedBytes += SharedFootprint(t, trace.ArrayID(i))
		case gpu.ConstantRemote:
			remoteConstBytes += a.Bytes()
		default: // GlobalRemote, Texture1DRemote, Texture2DRemote
			remoteDramBytes += a.Bytes()
		}
	}
	if constBytes > cfg.ConstantBytes {
		return capacityf("constant memory overflow: %d > %d bytes",
			constBytes, cfg.ConstantBytes)
	}
	if sharedBytes > cfg.SharedBytesPerSM {
		return capacityf("shared memory overflow: %d > %d bytes per block",
			sharedBytes, cfg.SharedBytesPerSM)
	}
	if limit := cfg.CapacityBytes(gpu.Global); limit >= 0 && dramBytes > limit {
		return capacityf("device memory overflow: %d > %d bytes", dramBytes, limit)
	}
	if remoteConstBytes > cfg.Interposer.RemoteConstantBytes {
		return capacityf("remote constant memory overflow: %d > %d bytes",
			remoteConstBytes, cfg.Interposer.RemoteConstantBytes)
	}
	if remoteDramBytes > cfg.Interposer.RemoteGlobalBytes {
		return capacityf("remote device memory overflow: %d > %d bytes",
			remoteDramBytes, cfg.Interposer.RemoteGlobalBytes)
	}
	return nil
}

// SharedFootprint returns the per-block bytes an array occupies when placed
// in shared memory. Arrays whose footprint exceeds one block's natural share
// are staged as per-block tiles (the paper conservatively rewrites the index
// to a block-local one); the tile is the array's footprint divided across
// blocks, rounded up to the bank width.
func SharedFootprint(t *trace.Trace, id trace.ArrayID) int {
	a := t.Arrays[id]
	blocks := t.Launch.Blocks
	if blocks < 1 {
		blocks = 1
	}
	per := (a.Bytes() + blocks - 1) / blocks
	if per < a.Type.Bytes() {
		per = a.Type.Bytes()
	}
	// Round to 4-byte bank words.
	return (per + 3) &^ 3
}

// SharedStagingBytes returns the total bytes copied from global to shared
// memory before the kernel proper runs: every shared-placed array is staged
// once per block. The paper estimates this initialization "based on memory
// bandwidth and data size instead of counting instructions" (§III-B); both
// the simulator and the models divide this quantity by the staging bandwidth.
func SharedStagingBytes(t *trace.Trace, p *Placement) float64 {
	var bytes float64
	for i := range t.Arrays {
		if p.Spaces[i] == gpu.Shared {
			bytes += float64(SharedFootprint(t, trace.ArrayID(i)) * t.Launch.Blocks)
		}
	}
	return bytes
}

// Options returns the legal memory spaces for one array (ignoring aggregate
// capacity, which Check enforces for the whole placement). On chiplet
// architectures (cfg.HasRemote()) each off-chip space additionally appears
// in its remote variant, appended after the local options so existing
// mixed-radix indices keep their meaning as a prefix.
func Options(t *trace.Trace, id trace.ArrayID, cfg *gpu.Config) []gpu.MemSpace {
	a := t.Arrays[id]
	out := []gpu.MemSpace{gpu.Global}
	if SharedFootprint(t, id) <= cfg.SharedBytesPerSM {
		out = append(out, gpu.Shared)
	}
	if a.ReadOnly {
		if a.Bytes() <= cfg.ConstantBytes {
			out = append(out, gpu.Constant)
		}
		out = append(out, gpu.Texture1D)
		if a.Is2D() {
			out = append(out, gpu.Texture2D)
		}
	}
	if cfg.HasRemote() {
		if a.Bytes() <= cfg.Interposer.RemoteGlobalBytes {
			out = append(out, gpu.GlobalRemote)
		}
		if a.ReadOnly {
			if a.Bytes() <= cfg.Interposer.RemoteConstantBytes {
				out = append(out, gpu.ConstantRemote)
			}
			if a.Bytes() <= cfg.Interposer.RemoteGlobalBytes {
				out = append(out, gpu.Texture1DRemote)
				if a.Is2D() {
					out = append(out, gpu.Texture2DRemote)
				}
			}
		}
	}
	return out
}

// EnumerateSeq streams every legal placement of the trace's arrays, in a
// deterministic order (lexicographic by array ID and space), calling yield
// for each one. The yielded placement is scratch space owned by the
// enumerator — it is only valid for the duration of the callback; callers
// keeping a candidate must Clone it. Returning false from yield stops the
// enumeration early.
//
// Streaming keeps the m^n exploration space of the paper's introduction out
// of memory: a budgeted or top-K consumer holds O(K) placements instead of
// the full space. A zero-array trace yields nothing: it has no placement
// decisions to rank.
func EnumerateSeq(t *trace.Trace, cfg *gpu.Config, yield func(*Placement) bool) {
	if len(t.Arrays) == 0 {
		return
	}
	opts := make([][]gpu.MemSpace, len(t.Arrays))
	for i := range t.Arrays {
		opts[i] = Options(t, trace.ArrayID(i), cfg)
	}
	cur := New(len(t.Arrays))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(opts) {
			if Check(t, cur, cfg) != nil {
				return true
			}
			return yield(cur)
		}
		for _, sp := range opts[i] {
			cur.Spaces[i] = sp
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// CountLegal returns the size of the legal placement space of a trace — the
// denominator of an "evaluated N of M candidates" progress report. It
// streams the space, so memory stays O(1); cost is one legality check per
// candidate (no model evaluations).
func CountLegal(t *trace.Trace, cfg *gpu.Config) int {
	n := 0
	EnumerateSeq(t, cfg, func(*Placement) bool {
		n++
		return true
	})
	return n
}

// Enumerate materializes the EnumerateSeq stream. Prefer EnumerateSeq for
// kernels with many arrays, where m^n placements may not fit in memory.
func Enumerate(t *trace.Trace, cfg *gpu.Config) []*Placement {
	var out []*Placement
	EnumerateSeq(t, cfg, func(p *Placement) bool {
		out = append(out, p.Clone())
		return true
	})
	return out
}

// Moves returns single-array moves from the sample placement, one target
// placement per (array, legal space ≠ current). This matches the paper's
// evaluation style ("kernel[array(G→T)]").
func Moves(t *trace.Trace, sample *Placement, cfg *gpu.Config) []*Placement {
	var out []*Placement
	for i := range t.Arrays {
		for _, sp := range Options(t, trace.ArrayID(i), cfg) {
			if sp == sample.Spaces[i] {
				continue
			}
			cand := sample.WithMove(trace.ArrayID(i), sp)
			if Check(t, cand, cfg) == nil {
				out = append(out, cand)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].String() < out[b].String() })
	return out
}
