package placement

import (
	"testing"

	"gpuhms/internal/gpu"
	"gpuhms/internal/trace"
)

// seqWithIndex collects the EnumerateSeq stream annotated with each legal
// placement's raw (unscreened) index — the reference EnumerateShard must
// reproduce.
func seqWithIndex(t *trace.Trace, cfg *gpu.Config) (idxs []int64, pls []*Placement) {
	s := NewSpace(t, cfg)
	scratch := New(len(t.Arrays))
	next := int64(0)
	EnumerateSeq(t, cfg, func(p *Placement) bool {
		// Advance next until it decodes to p (skipping illegal indices).
		for {
			if !s.At(next, scratch) {
				panic("EnumerateSeq yielded a placement beyond RawSize")
			}
			if scratch.Equal(p) {
				break
			}
			next++
		}
		idxs = append(idxs, next)
		pls = append(pls, p.Clone())
		next++
		return true
	})
	return idxs, pls
}

func TestSpaceAtMatchesEnumerateSeq(t *testing.T) {
	tr := testTrace(t)
	cfg := gpu.KeplerK80()
	s := NewSpace(tr, cfg)

	if s.RawSize() <= 0 {
		t.Fatalf("RawSize = %d, want > 0", s.RawSize())
	}
	// Raw size is the product of per-array option counts.
	want := int64(1)
	for i := range tr.Arrays {
		want *= int64(len(Options(tr, trace.ArrayID(i), cfg)))
	}
	if s.RawSize() != want {
		t.Fatalf("RawSize = %d, want %d", s.RawSize(), want)
	}

	// Every raw index decodes; one past the end does not.
	dst := New(len(tr.Arrays))
	for i := int64(0); i < s.RawSize(); i++ {
		if !s.At(i, dst) {
			t.Fatalf("At(%d) = false inside the space", i)
		}
	}
	if s.At(s.RawSize(), dst) {
		t.Fatalf("At(%d) = true past the end", s.RawSize())
	}
	if s.At(-1, dst) {
		t.Fatal("At(-1) = true")
	}
	if s.At(0, New(1)) {
		t.Fatal("At with a wrong-arity destination = true")
	}

	// Ascending raw indices, filtered by Check, reproduce EnumerateSeq.
	idxs, pls := seqWithIndex(tr, cfg)
	if len(pls) == 0 {
		t.Fatal("no legal placements")
	}
	for k, idx := range idxs {
		if !s.At(idx, dst) || !dst.Equal(pls[k]) {
			t.Fatalf("At(%d) = %v, want %v", idx, dst.Spaces, pls[k].Spaces)
		}
	}
}

func TestEnumerateShardUnionMatchesSeq(t *testing.T) {
	tr := testTrace(t)
	cfg := gpu.KeplerK80()
	s := NewSpace(tr, cfg)
	wantIdx, wantPl := seqWithIndex(tr, cfg)

	for _, stride := range []int{1, 2, 3, 7, 64, int(s.RawSize()) + 5} {
		got := make(map[int64]*Placement)
		for shard := 0; shard < stride; shard++ {
			lastIdx := int64(-1)
			s.EnumerateShard(shard, stride, func(idx int64, p *Placement) bool {
				if idx%int64(stride) != int64(shard) {
					t.Fatalf("stride %d shard %d yielded idx %d", stride, shard, idx)
				}
				if idx <= lastIdx {
					t.Fatalf("stride %d shard %d: idx %d after %d (not ascending)", stride, shard, idx, lastIdx)
				}
				lastIdx = idx
				if _, dup := got[idx]; dup {
					t.Fatalf("stride %d: duplicate idx %d", stride, idx)
				}
				got[idx] = p.Clone()
				return true
			})
		}
		if len(got) != len(wantIdx) {
			t.Fatalf("stride %d: %d placements, want %d", stride, len(got), len(wantIdx))
		}
		for k, idx := range wantIdx {
			p, ok := got[idx]
			if !ok || !p.Equal(wantPl[k]) {
				t.Fatalf("stride %d: idx %d missing or wrong", stride, idx)
			}
		}
	}
}

func TestEnumerateShardEarlyStopAndEdges(t *testing.T) {
	tr := testTrace(t)
	cfg := gpu.KeplerK80()
	s := NewSpace(tr, cfg)

	// Early stop: yield false after the first placement.
	n := 0
	s.EnumerateShard(0, 1, func(int64, *Placement) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop yielded %d placements", n)
	}

	// Degenerate shard parameters yield nothing.
	for _, bad := range [][2]int{{-1, 2}, {0, 0}, {0, -3}, {int(s.RawSize()), 1}} {
		n = 0
		s.EnumerateShard(bad[0], bad[1], func(int64, *Placement) bool { n++; return true })
		if n != 0 {
			t.Fatalf("EnumerateShard(%d, %d) yielded %d placements", bad[0], bad[1], n)
		}
	}

	// A zero-array trace has an empty space.
	empty := trace.NewBuilder("empty", trace.Launch{Blocks: 1, ThreadsPerBlock: 32, WarpSize: 32})
	empty.Warp(0, 0).FP32(1)
	es := NewSpace(empty.MustBuild(), cfg)
	if es.RawSize() != 0 {
		t.Fatalf("zero-array RawSize = %d", es.RawSize())
	}
	n = 0
	es.EnumerateShard(0, 1, func(int64, *Placement) bool { n++; return true })
	if n != 0 {
		t.Fatalf("zero-array shard yielded %d", n)
	}
	if es.At(0, New(0)) {
		t.Fatal("zero-array At(0) = true")
	}
}

// TestSpaceIndexOf pins the encode side of the space's index bijection: every
// enumerated legal placement round-trips through IndexOf back to the raw
// index that At decodes it from, and foreign shapes are rejected.
func TestSpaceIndexOf(t *testing.T) {
	tr := testTrace(t)
	cfg := gpu.KeplerK80()
	s := NewSpace(tr, cfg)

	if s.Arrays() != len(tr.Arrays) {
		t.Fatalf("Arrays() = %d, want %d", s.Arrays(), len(tr.Arrays))
	}
	for j := 0; j < s.Arrays(); j++ {
		if len(s.ArrayOptions(j)) == 0 {
			t.Fatalf("ArrayOptions(%d) is empty", j)
		}
	}

	// Round-trip every raw index: At(i) → IndexOf = i.
	dst := New(len(tr.Arrays))
	for i := int64(0); i < s.RawSize(); i++ {
		if !s.At(i, dst) {
			t.Fatalf("At(%d) = false", i)
		}
		got, ok := s.IndexOf(dst)
		if !ok || got != i {
			t.Fatalf("IndexOf(At(%d)) = %d, %v", i, got, ok)
		}
	}

	// A placement using a space outside an array's option set is rejected,
	// as is one of the wrong arity.
	if !s.At(0, dst) {
		t.Fatal("At(0) = false")
	}
	dst.Spaces[1] = gpu.Texture2D // "w" is 1D-only in this trace
	if _, ok := s.IndexOf(dst); ok {
		t.Error("IndexOf accepted a space outside the array's options")
	}
	if _, ok := s.IndexOf(New(len(tr.Arrays) + 1)); ok {
		t.Error("IndexOf accepted a placement of the wrong arity")
	}
}
